# Developer targets.
#
#   make tier1        - the gate every PR must keep green (build + vet + tests)
#   make race         - race-detector pass over the concurrent experiment
#                       runner, the simulator entry points, and the serve/
#                       HTTP service
#   make coverage     - full-module coverage profile (coverage.out); fails
#                       if the total drops below the recorded baseline
#   make bench        - run the kernel performance harness over the full
#                       nine-benchmark x seven-design matrix and write
#                       BENCH_PR6.json (with speedups vs BENCH_PR3.json)
#   make bench-smoke  - one-rep bench harness pass over the golden benchmark
#                       subset (CI's sanity check; numbers are noise there)
#   make bench-compare - re-measure the golden benchmark subset and fail if
#                       wall time regressed >25% geomean against the
#                       checked-in BENCH_PR6.json baseline
#   make gobench      - one `go test -bench` pass over the paper-reproduction
#                       benchmarks
#   make serve-diff   - the serve differential battery: streamed and
#                       non-streamed /run plus /sweep must produce
#                       byte-identical metrics across cold, cached, and
#                       coalesced paths
#   make serve-diff-noff - the same with HFSTREAM_NO_FASTFORWARD=1, proving
#                       progress/streaming delivery is invariant to the
#                       fast-forward optimization
#   make scaling      - the N-core scaling differential battery under the
#                       race detector: every cell of the 2/3/4-core grid
#                       (k-stage chains + parallel-stage points) must be
#                       byte-identical across serial vs parallel runners,
#                       fast-forward on vs off, and direct vs served
#   make serve-cluster - cluster correctness: consistent-hash ring
#                       properties, peer fill/store/replication, and the
#                       owner-death degradation race, under the race
#                       detector, plus the cluster differential rows
#   make load-smoke   - hfload against in-process 1- and 3-replica
#                       clusters; fails unless the 3-replica phase shows
#                       >=2x modeled throughput and live peer cache hits
#   make bench-serve  - regenerate BENCH_SERVE.json, the serving-tier SLO
#                       report (latency percentiles, shed rate, hit-ratio
#                       split, throughput vs replicas)
#   make ci           - everything CI runs: tier1, race, coverage, formatting,
#                       goldens (with fast-forward on and off), serve
#                       differentials, bench regression gate
#   make golden       - regenerate the metrics snapshots in testdata/golden/
#   make golden-check - rebuild the snapshots into a temp dir and diff them
#                       against the checked-in goldens
#   make golden-check-noff - the same with HFSTREAM_NO_FASTFORWARD=1, proving
#                       the fast-forward optimization is invisible in output
#   make chaos        - full fault-injection sweep (20 seeds, 6 plans each,
#                       all designs); see RESILIENCE.md for the contract
#   make chaos-smoke  - the CI corpus (seeds 1-6, 4 plans), fast-forward on
#                       and off
#   make chaos-cluster - service-tier chaos smoke: the cluster_seeds.json
#                       corpus subset under the race detector (faulted
#                       hfserve clusters; peer-fill integrity, breaker,
#                       retry/backoff under seeded network faults)
#   make fuzz-smoke   - 30s of native Go fuzzing per target (assembler parse,
#                       software-queue lowering)

GO ?= go

# Benchmarks covered by the golden metrics snapshots: the two fastest, so
# the check stays cheap enough to run on every push.
GOLDEN_BENCHES = bzip2,adpcmdec

# Total-statement coverage floor enforced by `make coverage`. The module
# measured 74.6% when the baseline was recorded (PR 7, with the streaming
# and sweep endpoints); the floor sits a couple of points under that so
# timing-dependent branches don't flake the job, while still catching any
# real regression. Raise it as coverage grows.
COVERAGE_BASELINE = 72.0

.PHONY: tier1 vet build test race coverage bench bench-smoke bench-compare bench-serve gobench ci fmtcheck golden golden-check golden-check-noff serve-diff serve-diff-noff serve-cluster load-smoke scaling chaos chaos-smoke chaos-cluster fuzz-smoke

tier1: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) vet ./...
	$(GO) test -race ./internal/exp/... ./internal/sim/... ./serve/...

# The profile lands in coverage.out, which is git-ignored (see
# .gitignore) — inspect it with `go tool cover -html=coverage.out`.
coverage:
	$(GO) test -count=1 -coverprofile=coverage.out ./...
	@total=$$($(GO) tool cover -func=coverage.out | awk '/^total:/ {sub(/%/, "", $$3); print $$3}'); \
	echo "total coverage: $$total% (baseline $(COVERAGE_BASELINE)%)"; \
	awk -v t="$$total" -v b="$(COVERAGE_BASELINE)" 'BEGIN { exit (t+0 >= b+0) ? 0 : 1 }' || \
		{ echo "coverage regressed below the $(COVERAGE_BASELINE)% baseline"; exit 1; }

bench:
	$(GO) run ./bench -out BENCH_PR6.json -baseline BENCH_PR3.json -label pr6

# Quick harness exercise for CI: one rep over the two fastest benchmarks.
bench-smoke:
	$(GO) run ./bench -benches $(GOLDEN_BENCHES) -reps 1 -out -

# CI regression gate: re-measure a benchmark subset and fail if wall
# time regressed more than 25% (geomean over matched pairs) against the
# checked-in BENCH_PR6.json. The subset is the two *slowest* benchmarks
# (unlike the golden pair, their multi-millisecond runs don't drown in
# timer noise) and the 25% headroom absorbs the rest; a real scheduling
# or allocation regression blows well past it.
BENCH_COMPARE_BENCHES = equake,mcf
bench-compare:
	$(GO) run ./bench -benches $(BENCH_COMPARE_BENCHES) -reps 5 -out - \
		-label compare -baseline BENCH_PR6.json -maxregress 25

gobench:
	$(GO) test -run '^$$' -bench . -benchtime 1x .

ci: tier1 race coverage fmtcheck golden-check golden-check-noff serve-diff serve-diff-noff serve-cluster load-smoke scaling bench-compare chaos-smoke chaos-cluster

fmtcheck:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

golden:
	$(GO) run ./cmd/hfexp -metrics testdata/golden -benches $(GOLDEN_BENCHES)

golden-check:
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) run ./cmd/hfexp -metrics "$$tmp" -benches $(GOLDEN_BENCHES) && \
	diff -ru testdata/golden "$$tmp" && echo "goldens match"

# The goldens were produced with fast-forwarding on; regenerating them
# with it off and diffing proves the optimization changes no number.
golden-check-noff:
	HFSTREAM_NO_FASTFORWARD=1 $(MAKE) golden-check

# The serve differential battery: every path through the HTTP service —
# blocking /run, streamed /run?stream=ndjson (cold, cached, coalesced),
# and /sweep cells — must produce metrics byte-identical to the direct
# library API, and re-submitted sweeps must only simulate cache misses.
serve-diff:
	$(GO) test -count=1 -run 'TestDifferential|TestStream|TestSweep|TestServe' . ./serve/

# The same battery with idle-cycle fast-forwarding disabled: streaming
# progress delivery and the FF optimization must both be invisible in
# the metrics bytes.
serve-diff-noff:
	HFSTREAM_NO_FASTFORWARD=1 $(MAKE) serve-diff

# Cluster correctness: ring balance/minimal-movement properties and the
# peering failure contract (owner death mid-fill degrades to local
# compute, zero request failures) under the race detector, then the
# cluster rows of the differential battery (3 replicas byte-identical to
# the direct API across cold/local-hit/peer-fill/coalesced, and a
# re-sweep across replicas simulating nothing).
serve-cluster:
	$(GO) test -count=1 -race ./serve/cluster/
	$(GO) test -count=1 -run 'TestDifferentialCluster' .

# hfload smoke: drive in-process 1- and 3-replica clusters and check the
# SLO report — the 3-replica phase must reach >=2x the single-replica
# modeled throughput and must have served some requests from the peer
# cache tier (ratio > 0). See the cmd/hfload doc comment for the
# per-replica capacity model behind -cap-rps.
load-smoke:
	$(GO) run ./cmd/hfload -scale 1,3 -duration 2s -conc 16 -cap-rps 200 \
		-out /tmp/hfload_smoke.json -min-speedup 2 -min-peer-ratio 0.0001

# Regenerate the checked-in serving-tier SLO report.
bench-serve:
	$(GO) run ./cmd/hfload -scale 1,3 -duration 3s -conc 24 -cap-rps 250 \
		-out BENCH_SERVE.json -label pr8

# The N-core scaling differential battery (scaling_differential_test.go):
# fft2/equake x {2,3,4}-core chains and parallel-stage points, every
# snapshot byte-identical across runner parallelism, fast-forward mode,
# and a serve round trip — under the race detector, so the parallel
# pool's interleavings are exercised while equality is asserted.
scaling:
	$(GO) test -count=1 -race -run 'TestScalingDifferential' .

# Full chaos sweep: 20 seeded workloads x 7 designs x (1 baseline +
# 6 fault plans). Any failure prints a single-case replay command.
chaos:
	$(GO) run ./cmd/hfchaos -seed0 1 -n 20 -plans 6

# CI corpus (chaos/testdata/seeds.json): 255 runs — 6 pair seeds on all
# 7 designs plus 3 MPMC shared-queue seeds (>= 100) on the 3
# ticket-discipline designs — with fast-forwarding on and off: fault
# triggers are occurrence-based, so both must agree.
chaos-smoke:
	$(GO) run ./cmd/hfchaos -seeds 1,2,3,4,5,6,101,102,103 -plans 4
	HFSTREAM_NO_FASTFORWARD=1 $(GO) run ./cmd/hfchaos -seeds 1,2,3,4,5,6,101,102,103 -plans 4

# Service-tier chaos smoke: the first corpus seed's scenario set (see
# chaos/testdata/cluster_seeds.json) against real faulted hfserve
# clusters, under the race detector and with a goroutine-leak check.
# The full corpus runs via `go run ./cmd/hfchaos -cluster -seeds 1,2,3`.
chaos-cluster:
	$(GO) test -count=1 -race -run 'TestClusterChaos' ./chaos/cluster/

# Short native-fuzz sessions over the user-reachable text pipelines. The
# checked-in corpora under testdata/fuzz/ replay as ordinary tests.
fuzz-smoke:
	$(GO) test -fuzz=FuzzParse -fuzztime 30s ./internal/asm
	$(GO) test -fuzz=FuzzLower -fuzztime 30s ./internal/lower
