# Developer targets.
#
#   make tier1        - the gate every PR must keep green (build + vet + tests)
#   make race         - race-detector pass over the concurrent experiment
#                       runner and the simulator entry points
#   make bench        - one pass over the paper-reproduction benchmarks
#   make ci           - everything CI runs: tier1, race, formatting, goldens
#   make golden       - regenerate the metrics snapshots in testdata/golden/
#   make golden-check - rebuild the snapshots into a temp dir and diff them
#                       against the checked-in goldens

GO ?= go

# Benchmarks covered by the golden metrics snapshots: the two fastest, so
# the check stays cheap enough to run on every push.
GOLDEN_BENCHES = bzip2,adpcmdec

.PHONY: tier1 vet build test race bench ci fmtcheck golden golden-check

tier1: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) vet ./...
	$(GO) test -race ./internal/exp/... ./internal/sim/...

bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x .

ci: tier1 race fmtcheck golden-check

fmtcheck:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

golden:
	$(GO) run ./cmd/hfexp -metrics testdata/golden -benches $(GOLDEN_BENCHES)

golden-check:
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) run ./cmd/hfexp -metrics "$$tmp" -benches $(GOLDEN_BENCHES) && \
	diff -ru testdata/golden "$$tmp" && echo "goldens match"
