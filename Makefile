# Developer targets.
#
#   make tier1   - the gate every PR must keep green (build + vet + tests)
#   make race    - race-detector pass over the concurrent experiment
#                  runner and the simulator entry points
#   make bench   - one pass over the paper-reproduction benchmarks

GO ?= go

.PHONY: tier1 vet build test race bench

tier1: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) vet ./...
	$(GO) test -race ./internal/exp/... ./internal/sim/...

bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x .
