module hfstream

go 1.22
