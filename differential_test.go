package hfstream_test

// The differential battery: one test file asserting, over a grid of
// small workloads x all seven designs, that every way of producing a
// metrics snapshot yields byte-identical JSON —
//
//	(a) serial vs parallel experiment runner,
//	(b) fast-forwarding kernel vs per-cycle kernel,
//	(c) direct library API vs a serve/ HTTP round trip (cold, cached,
//	    and the single-threaded and staged modes),
//	(d) a 3-replica peered cluster vs the direct API, across the cold,
//	    local-hit, peer-fill and coalesced provenances, with each cell
//	    simulated exactly once cluster-wide.
//
// Before this file the invariants were only checked pairwise in
// scattered places (golden-check-noff in CI, runner tests); here they
// are all pinned against one reference matrix. The grid uses the two
// benchmarks the golden snapshots cover — the fastest of the nine — so
// the battery stays cheap enough for tier 1. This file is an external
// test (package hfstream_test) because it imports serve, which itself
// imports hfstream. All HTTP traffic goes through the typed
// serve/client package — the battery doubles as that client's
// integration test.

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hfstream"
	"hfstream/internal/design"
	"hfstream/internal/exp"
	"hfstream/internal/sim"
	"hfstream/serve"
	"hfstream/serve/client"
	"hfstream/serve/cluster"
)

var diffBenches = []string{"bzip2", "adpcmdec"}

// diffConfigs mirrors hfstream.Designs() at the internal/design level,
// where the runner's Job type lives; TestDifferentialGridCoversDesigns
// pins the correspondence.
func diffConfigs() []design.Config {
	return []design.Config{
		design.ExistingConfig(), design.MemOptiConfig(), design.SyncOptiConfig(),
		design.SyncOptiQ64Config(), design.SyncOptiSCConfig(), design.SyncOptiSCQ64Config(),
		design.HeavyWTConfig(),
	}
}

func TestDifferentialGridCoversDesigns(t *testing.T) {
	designs := hfstream.Designs()
	cfgs := diffConfigs()
	if len(designs) != len(cfgs) {
		t.Fatalf("grid has %d configs, public API has %d designs", len(cfgs), len(designs))
	}
	for i, d := range designs {
		if cfgs[i].Name() != d.Name() {
			t.Fatalf("grid config %d is %q, public design is %q", i, cfgs[i].Name(), d.Name())
		}
	}
}

// annotatedJSON renders a runner result exactly as WithMetrics does for
// the same run: the snapshot plus benchmark/design annotations.
func annotatedJSON(t *testing.T, res *sim.Result, bench, designName string) []byte {
	t.Helper()
	m := res.Metrics()
	m.Benchmark = bench
	m.Design = designName
	buf, err := sim.MetricsJSON(m)
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

func diffJobs() []exp.Job {
	var jobs []exp.Job
	for _, bench := range diffBenches {
		jobs = append(jobs, exp.Job{Bench: bench, Single: true})
		for _, cfg := range diffConfigs() {
			jobs = append(jobs, exp.Job{Bench: bench, Config: cfg})
		}
	}
	return jobs
}

// jobLabel mirrors the design annotation finishRun applies.
func jobLabel(j exp.Job) string {
	if j.Single {
		return "SINGLE"
	}
	return j.Config.Name()
}

// referenceMatrix runs the full grid on a serial runner (the harness's
// original mode) and returns annotated snapshots keyed by
// "bench/design". The parallel, fast-forward-off and served variants are
// all diffed against these bytes.
func referenceMatrix(t *testing.T) map[string][]byte {
	t.Helper()
	jobs := diffJobs()
	results := (&exp.Runner{Workers: 1}).Run(context.Background(), jobs)
	if err := exp.FirstErr(results); err != nil {
		t.Fatal(err)
	}
	ref := make(map[string][]byte, len(results))
	for _, r := range results {
		ref[r.Job.Name()] = annotatedJSON(t, r.Res, r.Job.Bench, jobLabel(r.Job))
	}
	return ref
}

// diffSpecCases is the served view of the grid: the same cells as
// diffJobs, as public Specs keyed by the reference-matrix name.
func diffSpecCases() []struct {
	name string
	spec hfstream.Spec
} {
	var cases []struct {
		name string
		spec hfstream.Spec
	}
	for _, bench := range diffBenches {
		cases = append(cases, struct {
			name string
			spec hfstream.Spec
		}{bench + "/single", hfstream.Spec{Bench: bench, Single: true}})
		for _, d := range hfstream.Designs() {
			cases = append(cases, struct {
				name string
				spec hfstream.Spec
			}{bench + "/" + d.Name(), hfstream.Spec{Bench: bench, Design: d.Name()}})
		}
	}
	return cases
}

func TestDifferentialSerialVsParallelRunner(t *testing.T) {
	if testing.Short() {
		t.Skip("full grid")
	}
	ref := referenceMatrix(t)
	jobs := diffJobs()
	results := (&exp.Runner{Workers: 4}).Run(context.Background(), jobs)
	if err := exp.FirstErr(results); err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		got := annotatedJSON(t, r.Res, r.Job.Bench, jobLabel(r.Job))
		if !bytes.Equal(got, ref[r.Job.Name()]) {
			t.Errorf("%s: parallel runner snapshot differs from serial", r.Job.Name())
		}
	}
}

func TestDifferentialFastForwardInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("full grid")
	}
	ref := referenceMatrix(t)
	ctx := context.Background()
	for _, bench := range diffBenches {
		b, err := hfstream.BenchmarkByName(bench)
		if err != nil {
			t.Fatal(err)
		}
		var single bytes.Buffer
		if _, err := hfstream.RunSingleThreadedCtx(ctx, b,
			hfstream.WithMetrics(&single), hfstream.WithoutFastForward()); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(single.Bytes(), ref[bench+"/single"]) {
			t.Errorf("%s/single: fast-forward-off snapshot differs", bench)
		}
		for _, d := range hfstream.Designs() {
			var buf bytes.Buffer
			if _, err := hfstream.RunCtx(ctx, b, d,
				hfstream.WithMetrics(&buf), hfstream.WithoutFastForward()); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf.Bytes(), ref[bench+"/"+d.Name()]) {
				t.Errorf("%s/%s: fast-forward-off snapshot differs", bench, d.Name())
			}
		}
	}
}

// mustRun executes spec through the typed client and fails the test on
// any error.
func mustRun(t *testing.T, cl *client.Client, spec hfstream.Spec) *client.RunResult {
	t.Helper()
	res, err := cl.Run(context.Background(), spec)
	if err != nil {
		t.Fatalf("client.Run(%+v): %v", spec, err)
	}
	return res
}

func TestDifferentialServeRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("full grid")
	}
	ref := referenceMatrix(t)
	ts := httptest.NewServer(serve.New(serve.Config{Workers: 2}).Handler())
	defer ts.Close()
	cl := client.New(ts.URL)

	for _, c := range diffSpecCases() {
		cold := mustRun(t, cl, c.spec)
		if cold.Cache != "miss" {
			t.Fatalf("%s cold: cache=%q", c.name, cold.Cache)
		}
		if !bytes.Equal(cold.Body, ref[c.name]) {
			t.Errorf("%s: served body differs from direct API snapshot", c.name)
		}
		hot := mustRun(t, cl, c.spec)
		if hot.Cache != "hit" {
			t.Fatalf("%s hot: cache=%q", c.name, hot.Cache)
		}
		if !bytes.Equal(hot.Body, cold.Body) {
			t.Errorf("%s: cached body differs from cold body", c.name)
		}
	}
}

func TestDifferentialServeStaged(t *testing.T) {
	if testing.Short() {
		t.Skip("staged grid")
	}
	// adpcmdec partitions into three stages (see the multistage tests);
	// the served staged run must match RunStagedCtx byte for byte.
	b, err := hfstream.BenchmarkByName("adpcmdec")
	if err != nil {
		t.Fatal(err)
	}
	d := hfstream.SyncOptiSCQ64
	var direct bytes.Buffer
	if _, err := hfstream.RunStagedCtx(context.Background(), b, d, 3,
		hfstream.WithMetrics(&direct)); err != nil {
		t.Fatal(err)
	}

	ts := httptest.NewServer(serve.New(serve.Config{Workers: 1}).Handler())
	defer ts.Close()
	res := mustRun(t, client.New(ts.URL),
		hfstream.Spec{Bench: "adpcmdec", Design: d.Name(), Stages: 3})
	if !bytes.Equal(res.Body, direct.Bytes()) {
		t.Error("staged serve body differs from RunStagedCtx snapshot")
	}
}

// runStreamEvents streams one run through the typed client and returns
// every event.
func runStreamEvents(t *testing.T, cl *client.Client, spec hfstream.Spec, opts client.StreamOpts) []serve.StreamEvent {
	t.Helper()
	st, err := cl.RunStream(context.Background(), spec, opts)
	if err != nil {
		t.Fatalf("RunStream(%+v): %v", spec, err)
	}
	defer st.Close()
	events, err := st.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("empty run stream")
	}
	return events
}

// sweepEvents streams one sweep through the typed client and returns
// every event.
func sweepEvents(t *testing.T, cl *client.Client, req serve.SweepRequest) []serve.StreamEvent {
	t.Helper()
	st, err := cl.Sweep(context.Background(), req)
	if err != nil {
		t.Fatalf("Sweep(%+v): %v", req, err)
	}
	defer st.Close()
	events, err := st.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("empty sweep stream")
	}
	return events
}

// metricsEvents filters a stream down to its per-run result events.
func metricsEvents(events []serve.StreamEvent) []serve.StreamEvent {
	var out []serve.StreamEvent
	for _, ev := range events {
		if ev.Type == "metrics" {
			out = append(out, ev)
		}
	}
	return out
}

// cellName maps a sweep cell's spec back to the reference-matrix key.
func cellName(spec *hfstream.Spec) string {
	if spec.Single {
		return spec.Bench + "/single"
	}
	return spec.Bench + "/" + spec.Design
}

// TestDifferentialStreamedRun: the metrics event of a streamed /run
// carries, as a string, the exact bytes of the non-streaming response
// and of the direct-API snapshot — cold (with progress events
// interleaved, proving progress delivery does not perturb the metrics),
// cached, and under concurrent coalesced streams.
func TestDifferentialStreamedRun(t *testing.T) {
	if testing.Short() {
		t.Skip("full grid")
	}
	ref := referenceMatrix(t)
	ts := httptest.NewServer(serve.New(serve.Config{Workers: 2}).Handler())
	defer ts.Close()
	cl := client.New(ts.URL)

	for _, c := range diffSpecCases() {
		// Cold: a tight progress cadence maximizes interleaved events.
		events := runStreamEvents(t, cl, c.spec, client.StreamOpts{ProgressEvery: 5000})
		mev := metricsEvents(events)
		if len(mev) != 1 || mev[0].Cache != "miss" {
			t.Fatalf("%s cold: %d metrics events, cache=%q", c.name, len(mev), mev[0].Cache)
		}
		if !bytes.Equal([]byte(mev[0].Body), ref[c.name]) {
			t.Errorf("%s: streamed cold body differs from direct API snapshot", c.name)
		}
		// Cached: the hit must replay the identical bytes.
		events = runStreamEvents(t, cl, c.spec, client.StreamOpts{})
		mev = metricsEvents(events)
		if len(mev) != 1 || mev[0].Cache != "hit" {
			t.Fatalf("%s hot: %d metrics events, cache=%q", c.name, len(mev), mev[0].Cache)
		}
		if !bytes.Equal([]byte(mev[0].Body), ref[c.name]) {
			t.Errorf("%s: streamed cached body differs from direct API snapshot", c.name)
		}
		// Non-streaming /run must agree byte for byte with the stream.
		plain := mustRun(t, cl, c.spec)
		if !bytes.Equal(plain.Body, []byte(mev[0].Body)) {
			t.Errorf("%s: non-streaming body differs from streamed body", c.name)
		}
	}

	// Coalesced: concurrent streamed requests for one uncached spec all
	// deliver the same reference bytes, whichever of them led the flight.
	fresh := httptest.NewServer(serve.New(serve.Config{Workers: 2}).Handler())
	defer fresh.Close()
	fcl := client.New(fresh.URL)
	const fanIn = 6
	bodies := make([]string, fanIn)
	var wg sync.WaitGroup
	for i := 0; i < fanIn; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, err := fcl.RunStream(context.Background(),
				hfstream.Spec{Bench: "bzip2", Design: "EXISTING"}, client.StreamOpts{})
			if err != nil {
				return
			}
			defer st.Close()
			events, err := st.All()
			if err != nil {
				return
			}
			for _, ev := range metricsEvents(events) {
				bodies[i] = ev.Body
			}
		}(i)
	}
	wg.Wait()
	for i, body := range bodies {
		if !bytes.Equal([]byte(body), ref["bzip2/EXISTING"]) {
			t.Errorf("coalesced stream %d: body differs from direct API snapshot", i)
		}
	}
}

// TestDifferentialSweep: every cell of a /sweep grid matches the
// direct-API snapshot byte for byte, a sweep overlapping previously-run
// cells only simulates the new ones, and a re-submitted sweep runs
// nothing at all — pinned through the server's run counter, not just
// the per-event cache tags.
func TestDifferentialSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("full grid")
	}
	ref := referenceMatrix(t)
	srv := serve.New(serve.Config{Workers: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	cl := client.New(ts.URL)

	checkCells := func(events []serve.StreamEvent, wantCells int) {
		t.Helper()
		for _, ev := range metricsEvents(events) {
			if ev.Spec == nil {
				t.Fatal("sweep metrics event without a spec")
			}
			name := cellName(ev.Spec)
			if !bytes.Equal([]byte(ev.Body), ref[name]) {
				t.Errorf("%s: sweep cell body differs from direct API snapshot", name)
			}
		}
		done := events[len(events)-1]
		if done.Type != "done" || done.Cells != wantCells || done.Errors != 0 {
			t.Fatalf("done = %+v, want %d clean cells", done, wantCells)
		}
	}

	// Half the grid first: one bench across all designs plus single.
	perBench := len(hfstream.Designs()) + 1
	partial := sweepEvents(t, cl, serve.SweepRequest{
		Benches: []string{"bzip2"}, Designs: []string{"*"}, Single: true})
	checkCells(partial, perBench)
	if runs := srv.Metrics().Runs; runs != uint64(perBench) {
		t.Fatalf("partial sweep ran %d simulations, want %d", runs, perBench)
	}

	// The full grid: only the second bench's cells are cache misses.
	fullReq := serve.SweepRequest{
		Benches: []string{"bzip2", "adpcmdec"}, Designs: []string{"*"}, Single: true}
	full := sweepEvents(t, cl, fullReq)
	checkCells(full, 2*perBench)
	fullDone := full[len(full)-1]
	if fullDone.Ran != perBench || fullDone.Hits != perBench {
		t.Fatalf("full sweep ran=%d hits=%d, want only the new bench simulated (%d each)",
			fullDone.Ran, fullDone.Hits, perBench)
	}
	if runs := srv.Metrics().Runs; runs != uint64(2*perBench) {
		t.Fatalf("after full sweep: %d simulations, want %d", runs, 2*perBench)
	}

	// Re-submitting the identical sweep simulates nothing.
	again := sweepEvents(t, cl, fullReq)
	checkCells(again, 2*perBench)
	againDone := again[len(again)-1]
	if againDone.Ran != 0 || againDone.Hits != 2*perBench {
		t.Fatalf("re-sweep ran=%d hits=%d, want all cells cached", againDone.Ran, againDone.Hits)
	}
	if runs := srv.Metrics().Runs; runs != uint64(2*perBench) {
		t.Fatalf("re-sweep started new simulations: %d, want %d", runs, 2*perBench)
	}
}

// ---- cluster battery ------------------------------------------------

// swapHandler lets a replica's HTTP server exist (with a concrete URL)
// before the serve.Server it fronts — the peering layer needs every
// replica's URL, and each serve.Server needs its peering.
type swapHandler struct{ h atomic.Value }

func (s *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if h, ok := s.h.Load().(http.Handler); ok {
		h.ServeHTTP(w, r)
		return
	}
	http.Error(w, "replica not ready", http.StatusServiceUnavailable)
}

// diffCluster is an in-process peered cluster for the battery: n
// replicas with full-mesh membership over httptest servers.
type diffCluster struct {
	ids      []string
	servers  []*serve.Server
	peerings []*cluster.Peering
	ts       []*httptest.Server
	clients  []*client.Client
}

func newDiffCluster(t *testing.T, n int) *diffCluster {
	t.Helper()
	c := &diffCluster{}
	urls := make(map[string]string, n)
	swaps := make([]*swapHandler, n)
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("n%d", i)
		c.ids = append(c.ids, id)
		swaps[i] = &swapHandler{}
		ts := httptest.NewServer(swaps[i])
		c.ts = append(c.ts, ts)
		urls[id] = ts.URL
	}
	for i := 0; i < n; i++ {
		p, err := cluster.New(cluster.Config{Self: c.ids[i], Peers: urls})
		if err != nil {
			t.Fatal(err)
		}
		srv := serve.New(serve.Config{Workers: 1, Peer: p})
		swaps[i].h.Store(srv.Handler())
		c.peerings = append(c.peerings, p)
		c.servers = append(c.servers, srv)
		c.clients = append(c.clients, client.New(urls[c.ids[i]]))
	}
	t.Cleanup(func() {
		for i := range c.ts {
			c.ts[i].Close()
			c.peerings[i].Close()
		}
	})
	return c
}

// flush settles every replica's pending peer store publications.
func (c *diffCluster) flush(t *testing.T) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for _, p := range c.peerings {
		if err := p.Flush(ctx); err != nil {
			t.Fatal(err)
		}
	}
}

// index maps a replica ID back to its slot.
func (c *diffCluster) index(t *testing.T, id string) int {
	t.Helper()
	for i, have := range c.ids {
		if have == id {
			return i
		}
	}
	t.Fatalf("unknown replica %q", id)
	return -1
}

// totalRuns sums the simulation counters across the cluster.
func (c *diffCluster) totalRuns() uint64 {
	var total uint64
	for _, s := range c.servers {
		total += s.Metrics().Runs
	}
	return total
}

// TestDifferentialCluster pins the tentpole invariant: a 3-replica
// peered cluster answers byte-identically to the direct library API on
// every provenance path — cold miss on the key's owner, peer fill on a
// non-owner, local hit after the fill, and the replicated owner's copy
// — and the cluster as a whole simulates each cell exactly once.
func TestDifferentialCluster(t *testing.T) {
	if testing.Short() {
		t.Skip("full grid")
	}
	ref := referenceMatrix(t)
	c := newDiffCluster(t, 3)

	cases := diffSpecCases()
	for _, cse := range cases {
		norm, err := cse.spec.Normalize()
		if err != nil {
			t.Fatal(err)
		}
		key, err := norm.Key()
		if err != nil {
			t.Fatal(err)
		}
		// The ring is identical on every replica; route like a balancer
		// would: cold traffic lands on the key's primary owner.
		owners := c.peerings[0].Owners(key)
		if len(owners) != 2 {
			t.Fatalf("%s: %d owners, want replication 2", cse.name, len(owners))
		}
		primary := c.index(t, owners[0])
		secondary := c.index(t, owners[1])
		nonOwner := 3 - primary - secondary // the remaining replica of {0,1,2}

		cold := mustRun(t, c.clients[primary], cse.spec)
		if cold.Cache != "miss" || cold.Key != key {
			t.Fatalf("%s cold on owner: cache=%q key=%q want miss/%s", cse.name, cold.Cache, cold.Key, key)
		}
		if !bytes.Equal(cold.Body, ref[cse.name]) {
			t.Errorf("%s: owner body differs from direct API snapshot", cse.name)
		}

		// Let the async store publication reach the secondary owner, then
		// read the key everywhere.
		c.flush(t)

		peerRes := mustRun(t, c.clients[nonOwner], cse.spec)
		if peerRes.Cache != "peer" {
			t.Fatalf("%s on non-owner: cache=%q, want peer fill", cse.name, peerRes.Cache)
		}
		if !bytes.Equal(peerRes.Body, ref[cse.name]) {
			t.Errorf("%s: peer-filled body differs from direct API snapshot", cse.name)
		}

		local := mustRun(t, c.clients[nonOwner], cse.spec)
		if local.Cache != "hit" {
			t.Fatalf("%s non-owner replay: cache=%q, want local hit after fill", cse.name, local.Cache)
		}
		if !bytes.Equal(local.Body, ref[cse.name]) {
			t.Errorf("%s: post-fill local body differs from direct API snapshot", cse.name)
		}

		replicated := mustRun(t, c.clients[secondary], cse.spec)
		if replicated.Cache != "hit" {
			t.Fatalf("%s on secondary owner: cache=%q, want replicated local hit", cse.name, replicated.Cache)
		}
		if !bytes.Equal(replicated.Body, ref[cse.name]) {
			t.Errorf("%s: replicated body differs from direct API snapshot", cse.name)
		}
	}

	// Four requests per cell, one simulation per cell, cluster-wide.
	if got, want := c.totalRuns(), uint64(len(cases)); got != want {
		t.Errorf("cluster simulated %d times for %d cells, want one each", got, want)
	}

	// Coalesced under clustering: concurrent requests for one uncached
	// spec on one replica produce one flight and identical reference
	// bytes for every caller.
	b, err := hfstream.BenchmarkByName("adpcmdec")
	if err != nil {
		t.Fatal(err)
	}
	var direct bytes.Buffer
	if _, err := hfstream.RunStagedCtx(context.Background(), b, hfstream.SyncOptiSCQ64, 3,
		hfstream.WithMetrics(&direct)); err != nil {
		t.Fatal(err)
	}
	staged := hfstream.Spec{Bench: "adpcmdec", Design: hfstream.SyncOptiSCQ64.Name(), Stages: 3}
	before := c.servers[0].Metrics().Runs
	const fanIn = 6
	results := make([]*client.RunResult, fanIn)
	var wg sync.WaitGroup
	for i := 0; i < fanIn; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := c.clients[0].Run(context.Background(), staged)
			if err == nil {
				results[i] = res
			}
		}(i)
	}
	wg.Wait()
	for i, res := range results {
		if res == nil {
			t.Fatalf("coalesced cluster request %d failed", i)
		}
		if !bytes.Equal(res.Body, direct.Bytes()) {
			t.Errorf("coalesced cluster request %d: body differs from RunStagedCtx snapshot", i)
		}
	}
	if ran := c.servers[0].Metrics().Runs - before; ran != 1 {
		t.Errorf("coalesced fan-in simulated %d times, want 1", ran)
	}
}

// TestDifferentialClusterResweep: after one replica sweeps the full
// grid, re-running the sweep on a different replica simulates nothing —
// every cell arrives from that replica's own (replicated) cache or a
// peer fill, byte-identical to the direct API.
func TestDifferentialClusterResweep(t *testing.T) {
	if testing.Short() {
		t.Skip("full grid")
	}
	ref := referenceMatrix(t)
	c := newDiffCluster(t, 3)
	req := serve.SweepRequest{Benches: diffBenches, Designs: []string{"*"}, Single: true}
	cells := len(diffBenches) * (len(hfstream.Designs()) + 1)

	checkCells := func(events []serve.StreamEvent) {
		t.Helper()
		for _, ev := range metricsEvents(events) {
			if ev.Spec == nil {
				t.Fatal("sweep metrics event without a spec")
			}
			name := cellName(ev.Spec)
			if !bytes.Equal([]byte(ev.Body), ref[name]) {
				t.Errorf("%s: cluster sweep cell differs from direct API snapshot", name)
			}
		}
		done := events[len(events)-1]
		if done.Type != "done" || done.Cells != cells || done.Errors != 0 {
			t.Fatalf("done = %+v, want %d clean cells", done, cells)
		}
	}

	first := sweepEvents(t, c.clients[0], req)
	checkCells(first)
	if got := c.totalRuns(); got != uint64(cells) {
		t.Fatalf("first sweep simulated %d times for %d cells", got, cells)
	}

	// Settle the store publications, then sweep from the other replicas:
	// zero new simulations anywhere, and the done tallies show only local
	// hits and peer fills.
	c.flush(t)
	for _, idx := range []int{1, 2} {
		events := sweepEvents(t, c.clients[idx], req)
		checkCells(events)
		done := events[len(events)-1]
		if done.Ran != 0 {
			t.Errorf("replica %d re-sweep simulated %d cells, want 0", idx, done.Ran)
		}
		if done.Hits+done.PeerHits != cells {
			t.Errorf("replica %d re-sweep hits=%d peer_hits=%d, want %d total",
				idx, done.Hits, done.PeerHits, cells)
		}
	}
	if got := c.totalRuns(); got != uint64(cells) {
		t.Errorf("cluster re-sweeps simulated new cells: %d total runs for %d cells", got, cells)
	}
}
