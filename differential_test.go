package hfstream_test

// The differential battery: one test file asserting, over a grid of
// small workloads x all seven designs, that every way of producing a
// metrics snapshot yields byte-identical JSON —
//
//	(a) serial vs parallel experiment runner,
//	(b) fast-forwarding kernel vs per-cycle kernel,
//	(c) direct library API vs a serve/ HTTP round trip (cold, cached,
//	    and the single-threaded and staged modes).
//
// Before this file the invariants were only checked pairwise in
// scattered places (golden-check-noff in CI, runner tests); here they
// are all pinned against one reference matrix. The grid uses the two
// benchmarks the golden snapshots cover — the fastest of the nine — so
// the battery stays cheap enough for tier 1. This file is an external
// test (package hfstream_test) because it imports serve, which itself
// imports hfstream.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"hfstream"
	"hfstream/internal/design"
	"hfstream/internal/exp"
	"hfstream/internal/sim"
	"hfstream/serve"
)

var diffBenches = []string{"bzip2", "adpcmdec"}

// diffConfigs mirrors hfstream.Designs() at the internal/design level,
// where the runner's Job type lives; TestDifferentialGridCoversDesigns
// pins the correspondence.
func diffConfigs() []design.Config {
	return []design.Config{
		design.ExistingConfig(), design.MemOptiConfig(), design.SyncOptiConfig(),
		design.SyncOptiQ64Config(), design.SyncOptiSCConfig(), design.SyncOptiSCQ64Config(),
		design.HeavyWTConfig(),
	}
}

func TestDifferentialGridCoversDesigns(t *testing.T) {
	designs := hfstream.Designs()
	cfgs := diffConfigs()
	if len(designs) != len(cfgs) {
		t.Fatalf("grid has %d configs, public API has %d designs", len(cfgs), len(designs))
	}
	for i, d := range designs {
		if cfgs[i].Name() != d.Name() {
			t.Fatalf("grid config %d is %q, public design is %q", i, cfgs[i].Name(), d.Name())
		}
	}
}

// annotatedJSON renders a runner result exactly as WithMetrics does for
// the same run: the snapshot plus benchmark/design annotations.
func annotatedJSON(t *testing.T, res *sim.Result, bench, designName string) []byte {
	t.Helper()
	m := res.Metrics()
	m.Benchmark = bench
	m.Design = designName
	buf, err := sim.MetricsJSON(m)
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

func diffJobs() []exp.Job {
	var jobs []exp.Job
	for _, bench := range diffBenches {
		jobs = append(jobs, exp.Job{Bench: bench, Single: true})
		for _, cfg := range diffConfigs() {
			jobs = append(jobs, exp.Job{Bench: bench, Config: cfg})
		}
	}
	return jobs
}

// jobLabel mirrors the design annotation finishRun applies.
func jobLabel(j exp.Job) string {
	if j.Single {
		return "SINGLE"
	}
	return j.Config.Name()
}

// referenceMatrix runs the full grid on a serial runner (the harness's
// original mode) and returns annotated snapshots keyed by
// "bench/design". The parallel, fast-forward-off and served variants are
// all diffed against these bytes.
func referenceMatrix(t *testing.T) map[string][]byte {
	t.Helper()
	jobs := diffJobs()
	results := (&exp.Runner{Workers: 1}).Run(context.Background(), jobs)
	if err := exp.FirstErr(results); err != nil {
		t.Fatal(err)
	}
	ref := make(map[string][]byte, len(results))
	for _, r := range results {
		ref[r.Job.Name()] = annotatedJSON(t, r.Res, r.Job.Bench, jobLabel(r.Job))
	}
	return ref
}

func TestDifferentialSerialVsParallelRunner(t *testing.T) {
	if testing.Short() {
		t.Skip("full grid")
	}
	ref := referenceMatrix(t)
	jobs := diffJobs()
	results := (&exp.Runner{Workers: 4}).Run(context.Background(), jobs)
	if err := exp.FirstErr(results); err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		got := annotatedJSON(t, r.Res, r.Job.Bench, jobLabel(r.Job))
		if !bytes.Equal(got, ref[r.Job.Name()]) {
			t.Errorf("%s: parallel runner snapshot differs from serial", r.Job.Name())
		}
	}
}

func TestDifferentialFastForwardInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("full grid")
	}
	ref := referenceMatrix(t)
	ctx := context.Background()
	for _, bench := range diffBenches {
		b, err := hfstream.BenchmarkByName(bench)
		if err != nil {
			t.Fatal(err)
		}
		var single bytes.Buffer
		if _, err := hfstream.RunSingleThreadedCtx(ctx, b,
			hfstream.WithMetrics(&single), hfstream.WithoutFastForward()); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(single.Bytes(), ref[bench+"/single"]) {
			t.Errorf("%s/single: fast-forward-off snapshot differs", bench)
		}
		for _, d := range hfstream.Designs() {
			var buf bytes.Buffer
			if _, err := hfstream.RunCtx(ctx, b, d,
				hfstream.WithMetrics(&buf), hfstream.WithoutFastForward()); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf.Bytes(), ref[bench+"/"+d.Name()]) {
				t.Errorf("%s/%s: fast-forward-off snapshot differs", bench, d.Name())
			}
		}
	}
}

func TestDifferentialServeRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("full grid")
	}
	ref := referenceMatrix(t)
	ts := httptest.NewServer(serve.New(serve.Config{Workers: 2}).Handler())
	defer ts.Close()

	postSpec := func(body string) (int, []byte, string) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/run", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, buf.Bytes(), resp.Header.Get("X-Hfserve-Cache")
	}

	for _, bench := range diffBenches {
		cases := []struct {
			name, body string
		}{
			{bench + "/single", `{"bench":"` + bench + `","single":true}`},
		}
		for _, d := range hfstream.Designs() {
			cases = append(cases, struct{ name, body string }{
				bench + "/" + d.Name(),
				`{"bench":"` + bench + `","design":"` + d.Name() + `"}`,
			})
		}
		for _, c := range cases {
			status, cold, src := postSpec(c.body)
			if status != 200 || src != "miss" {
				t.Fatalf("%s cold: status=%d src=%q (%s)", c.name, status, src, cold)
			}
			if !bytes.Equal(cold, ref[c.name]) {
				t.Errorf("%s: served body differs from direct API snapshot", c.name)
			}
			status, hot, src := postSpec(c.body)
			if status != 200 || src != "hit" {
				t.Fatalf("%s hot: status=%d src=%q", c.name, status, src)
			}
			if !bytes.Equal(hot, cold) {
				t.Errorf("%s: cached body differs from cold body", c.name)
			}
		}
	}
}

func TestDifferentialServeStaged(t *testing.T) {
	if testing.Short() {
		t.Skip("staged grid")
	}
	// adpcmdec partitions into three stages (see the multistage tests);
	// the served staged run must match RunStagedCtx byte for byte.
	b, err := hfstream.BenchmarkByName("adpcmdec")
	if err != nil {
		t.Fatal(err)
	}
	d := hfstream.SyncOptiSCQ64
	var direct bytes.Buffer
	if _, err := hfstream.RunStagedCtx(context.Background(), b, d, 3,
		hfstream.WithMetrics(&direct)); err != nil {
		t.Fatal(err)
	}

	ts := httptest.NewServer(serve.New(serve.Config{Workers: 1}).Handler())
	defer ts.Close()
	body := `{"bench":"adpcmdec","design":"` + d.Name() + `","stages":3}`
	resp, err := http.Post(ts.URL+"/run", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var served bytes.Buffer
	if _, err := served.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("staged serve: status %d (%s)", resp.StatusCode, served.Bytes())
	}
	if !bytes.Equal(served.Bytes(), direct.Bytes()) {
		t.Error("staged serve body differs from RunStagedCtx snapshot")
	}
}

// streamEvents posts a body to a streaming endpoint and decodes every
// NDJSON line.
func streamEvents(t *testing.T, url, path, body string) []serve.StreamEvent {
	t.Helper()
	resp, err := http.Post(url+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("%s: status %d", path, resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	var events []serve.StreamEvent
	for sc.Scan() {
		var ev serve.StreamEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad event line %q: %v", sc.Text(), err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatalf("%s: empty stream", path)
	}
	return events
}

// metricsEvents filters a stream down to its per-run result events.
func metricsEvents(events []serve.StreamEvent) []serve.StreamEvent {
	var out []serve.StreamEvent
	for _, ev := range events {
		if ev.Type == "metrics" {
			out = append(out, ev)
		}
	}
	return out
}

// cellName maps a sweep cell's spec back to the reference-matrix key.
func cellName(spec *hfstream.Spec) string {
	if spec.Single {
		return spec.Bench + "/single"
	}
	return spec.Bench + "/" + spec.Design
}

// TestDifferentialStreamedRun: the metrics event of a streamed /run
// carries, as a string, the exact bytes of the non-streaming response
// and of the direct-API snapshot — cold (with progress events
// interleaved, proving progress delivery does not perturb the metrics),
// cached, and under concurrent coalesced streams.
func TestDifferentialStreamedRun(t *testing.T) {
	if testing.Short() {
		t.Skip("full grid")
	}
	ref := referenceMatrix(t)
	ts := httptest.NewServer(serve.New(serve.Config{Workers: 2}).Handler())
	defer ts.Close()

	for _, bench := range diffBenches {
		cases := []struct {
			name, body string
		}{
			{bench + "/single", `{"bench":"` + bench + `","single":true}`},
		}
		for _, d := range hfstream.Designs() {
			cases = append(cases, struct{ name, body string }{
				bench + "/" + d.Name(),
				`{"bench":"` + bench + `","design":"` + d.Name() + `"}`,
			})
		}
		for _, c := range cases {
			// Cold: a tight progress cadence maximizes interleaved events.
			events := streamEvents(t, ts.URL, "/run?stream=ndjson&progress_every=5000", c.body)
			mev := metricsEvents(events)
			if len(mev) != 1 || mev[0].Cache != "miss" {
				t.Fatalf("%s cold: %d metrics events, cache=%q", c.name, len(mev), mev[0].Cache)
			}
			if !bytes.Equal([]byte(mev[0].Body), ref[c.name]) {
				t.Errorf("%s: streamed cold body differs from direct API snapshot", c.name)
			}
			// Cached: the hit must replay the identical bytes.
			events = streamEvents(t, ts.URL, "/run?stream=ndjson", c.body)
			mev = metricsEvents(events)
			if len(mev) != 1 || mev[0].Cache != "hit" {
				t.Fatalf("%s hot: %d metrics events, cache=%q", c.name, len(mev), mev[0].Cache)
			}
			if !bytes.Equal([]byte(mev[0].Body), ref[c.name]) {
				t.Errorf("%s: streamed cached body differs from direct API snapshot", c.name)
			}
			// Non-streaming /run must agree byte for byte with the stream.
			resp, err := http.Post(ts.URL+"/run", "application/json", strings.NewReader(c.body))
			if err != nil {
				t.Fatal(err)
			}
			var plain bytes.Buffer
			if _, err := plain.ReadFrom(resp.Body); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if !bytes.Equal(plain.Bytes(), []byte(mev[0].Body)) {
				t.Errorf("%s: non-streaming body differs from streamed body", c.name)
			}
		}
	}

	// Coalesced: concurrent streamed requests for one uncached spec all
	// deliver the same reference bytes, whichever of them led the flight.
	fresh := httptest.NewServer(serve.New(serve.Config{Workers: 2}).Handler())
	defer fresh.Close()
	const fanIn = 6
	bodies := make([]string, fanIn)
	var wg sync.WaitGroup
	for i := 0; i < fanIn; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(fresh.URL+"/run?stream=ndjson", "application/json",
				strings.NewReader(`{"bench":"bzip2","design":"EXISTING"}`))
			if err != nil {
				return
			}
			defer resp.Body.Close()
			sc := bufio.NewScanner(resp.Body)
			sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
			for sc.Scan() {
				var ev serve.StreamEvent
				if json.Unmarshal(sc.Bytes(), &ev) == nil && ev.Type == "metrics" {
					bodies[i] = ev.Body
				}
			}
		}(i)
	}
	wg.Wait()
	for i, body := range bodies {
		if !bytes.Equal([]byte(body), ref["bzip2/EXISTING"]) {
			t.Errorf("coalesced stream %d: body differs from direct API snapshot", i)
		}
	}
}

// TestDifferentialSweep: every cell of a /sweep grid matches the
// direct-API snapshot byte for byte, a sweep overlapping previously-run
// cells only simulates the new ones, and a re-submitted sweep runs
// nothing at all — pinned through the server's run counter, not just
// the per-event cache tags.
func TestDifferentialSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("full grid")
	}
	ref := referenceMatrix(t)
	srv := serve.New(serve.Config{Workers: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	checkCells := func(events []serve.StreamEvent, wantCells int) {
		t.Helper()
		for _, ev := range metricsEvents(events) {
			if ev.Spec == nil {
				t.Fatal("sweep metrics event without a spec")
			}
			name := cellName(ev.Spec)
			if !bytes.Equal([]byte(ev.Body), ref[name]) {
				t.Errorf("%s: sweep cell body differs from direct API snapshot", name)
			}
		}
		done := events[len(events)-1]
		if done.Type != "done" || done.Cells != wantCells || done.Errors != 0 {
			t.Fatalf("done = %+v, want %d clean cells", done, wantCells)
		}
	}

	// Half the grid first: one bench across all designs plus single.
	perBench := len(hfstream.Designs()) + 1
	partial := streamEvents(t, ts.URL, "/sweep", `{"benches":["bzip2"],"designs":["*"],"single":true}`)
	checkCells(partial, perBench)
	if runs := srv.Metrics().Runs; runs != uint64(perBench) {
		t.Fatalf("partial sweep ran %d simulations, want %d", runs, perBench)
	}

	// The full grid: only the second bench's cells are cache misses.
	full := streamEvents(t, ts.URL, "/sweep", `{"benches":["bzip2","adpcmdec"],"designs":["*"],"single":true}`)
	checkCells(full, 2*perBench)
	fullDone := full[len(full)-1]
	if fullDone.Ran != perBench || fullDone.Hits != perBench {
		t.Fatalf("full sweep ran=%d hits=%d, want only the new bench simulated (%d each)",
			fullDone.Ran, fullDone.Hits, perBench)
	}
	if runs := srv.Metrics().Runs; runs != uint64(2*perBench) {
		t.Fatalf("after full sweep: %d simulations, want %d", runs, 2*perBench)
	}

	// Re-submitting the identical sweep simulates nothing.
	again := streamEvents(t, ts.URL, "/sweep", `{"benches":["bzip2","adpcmdec"],"designs":["*"],"single":true}`)
	checkCells(again, 2*perBench)
	againDone := again[len(again)-1]
	if againDone.Ran != 0 || againDone.Hits != 2*perBench {
		t.Fatalf("re-sweep ran=%d hits=%d, want all cells cached", againDone.Ran, againDone.Hits)
	}
	if runs := srv.Metrics().Runs; runs != uint64(2*perBench) {
		t.Fatalf("re-sweep started new simulations: %d, want %d", runs, 2*perBench)
	}
}
