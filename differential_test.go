package hfstream_test

// The differential battery: one test file asserting, over a grid of
// small workloads x all seven designs, that every way of producing a
// metrics snapshot yields byte-identical JSON —
//
//	(a) serial vs parallel experiment runner,
//	(b) fast-forwarding kernel vs per-cycle kernel,
//	(c) direct library API vs a serve/ HTTP round trip (cold, cached,
//	    and the single-threaded and staged modes).
//
// Before this file the invariants were only checked pairwise in
// scattered places (golden-check-noff in CI, runner tests); here they
// are all pinned against one reference matrix. The grid uses the two
// benchmarks the golden snapshots cover — the fastest of the nine — so
// the battery stays cheap enough for tier 1. This file is an external
// test (package hfstream_test) because it imports serve, which itself
// imports hfstream.

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"hfstream"
	"hfstream/internal/design"
	"hfstream/internal/exp"
	"hfstream/internal/sim"
	"hfstream/serve"
)

var diffBenches = []string{"bzip2", "adpcmdec"}

// diffConfigs mirrors hfstream.Designs() at the internal/design level,
// where the runner's Job type lives; TestDifferentialGridCoversDesigns
// pins the correspondence.
func diffConfigs() []design.Config {
	return []design.Config{
		design.ExistingConfig(), design.MemOptiConfig(), design.SyncOptiConfig(),
		design.SyncOptiQ64Config(), design.SyncOptiSCConfig(), design.SyncOptiSCQ64Config(),
		design.HeavyWTConfig(),
	}
}

func TestDifferentialGridCoversDesigns(t *testing.T) {
	designs := hfstream.Designs()
	cfgs := diffConfigs()
	if len(designs) != len(cfgs) {
		t.Fatalf("grid has %d configs, public API has %d designs", len(cfgs), len(designs))
	}
	for i, d := range designs {
		if cfgs[i].Name() != d.Name() {
			t.Fatalf("grid config %d is %q, public design is %q", i, cfgs[i].Name(), d.Name())
		}
	}
}

// annotatedJSON renders a runner result exactly as WithMetrics does for
// the same run: the snapshot plus benchmark/design annotations.
func annotatedJSON(t *testing.T, res *sim.Result, bench, designName string) []byte {
	t.Helper()
	m := res.Metrics()
	m.Benchmark = bench
	m.Design = designName
	buf, err := sim.MetricsJSON(m)
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

func diffJobs() []exp.Job {
	var jobs []exp.Job
	for _, bench := range diffBenches {
		jobs = append(jobs, exp.Job{Bench: bench, Single: true})
		for _, cfg := range diffConfigs() {
			jobs = append(jobs, exp.Job{Bench: bench, Config: cfg})
		}
	}
	return jobs
}

// jobLabel mirrors the design annotation finishRun applies.
func jobLabel(j exp.Job) string {
	if j.Single {
		return "SINGLE"
	}
	return j.Config.Name()
}

// referenceMatrix runs the full grid on a serial runner (the harness's
// original mode) and returns annotated snapshots keyed by
// "bench/design". The parallel, fast-forward-off and served variants are
// all diffed against these bytes.
func referenceMatrix(t *testing.T) map[string][]byte {
	t.Helper()
	jobs := diffJobs()
	results := (&exp.Runner{Workers: 1}).Run(context.Background(), jobs)
	if err := exp.FirstErr(results); err != nil {
		t.Fatal(err)
	}
	ref := make(map[string][]byte, len(results))
	for _, r := range results {
		ref[r.Job.Name()] = annotatedJSON(t, r.Res, r.Job.Bench, jobLabel(r.Job))
	}
	return ref
}

func TestDifferentialSerialVsParallelRunner(t *testing.T) {
	if testing.Short() {
		t.Skip("full grid")
	}
	ref := referenceMatrix(t)
	jobs := diffJobs()
	results := (&exp.Runner{Workers: 4}).Run(context.Background(), jobs)
	if err := exp.FirstErr(results); err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		got := annotatedJSON(t, r.Res, r.Job.Bench, jobLabel(r.Job))
		if !bytes.Equal(got, ref[r.Job.Name()]) {
			t.Errorf("%s: parallel runner snapshot differs from serial", r.Job.Name())
		}
	}
}

func TestDifferentialFastForwardInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("full grid")
	}
	ref := referenceMatrix(t)
	ctx := context.Background()
	for _, bench := range diffBenches {
		b, err := hfstream.BenchmarkByName(bench)
		if err != nil {
			t.Fatal(err)
		}
		var single bytes.Buffer
		if _, err := hfstream.RunSingleThreadedCtx(ctx, b,
			hfstream.WithMetrics(&single), hfstream.WithoutFastForward()); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(single.Bytes(), ref[bench+"/single"]) {
			t.Errorf("%s/single: fast-forward-off snapshot differs", bench)
		}
		for _, d := range hfstream.Designs() {
			var buf bytes.Buffer
			if _, err := hfstream.RunCtx(ctx, b, d,
				hfstream.WithMetrics(&buf), hfstream.WithoutFastForward()); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf.Bytes(), ref[bench+"/"+d.Name()]) {
				t.Errorf("%s/%s: fast-forward-off snapshot differs", bench, d.Name())
			}
		}
	}
}

func TestDifferentialServeRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("full grid")
	}
	ref := referenceMatrix(t)
	ts := httptest.NewServer(serve.New(serve.Config{Workers: 2}).Handler())
	defer ts.Close()

	postSpec := func(body string) (int, []byte, string) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/run", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, buf.Bytes(), resp.Header.Get("X-Hfserve-Cache")
	}

	for _, bench := range diffBenches {
		cases := []struct {
			name, body string
		}{
			{bench + "/single", `{"bench":"` + bench + `","single":true}`},
		}
		for _, d := range hfstream.Designs() {
			cases = append(cases, struct{ name, body string }{
				bench + "/" + d.Name(),
				`{"bench":"` + bench + `","design":"` + d.Name() + `"}`,
			})
		}
		for _, c := range cases {
			status, cold, src := postSpec(c.body)
			if status != 200 || src != "miss" {
				t.Fatalf("%s cold: status=%d src=%q (%s)", c.name, status, src, cold)
			}
			if !bytes.Equal(cold, ref[c.name]) {
				t.Errorf("%s: served body differs from direct API snapshot", c.name)
			}
			status, hot, src := postSpec(c.body)
			if status != 200 || src != "hit" {
				t.Fatalf("%s hot: status=%d src=%q", c.name, status, src)
			}
			if !bytes.Equal(hot, cold) {
				t.Errorf("%s: cached body differs from cold body", c.name)
			}
		}
	}
}

func TestDifferentialServeStaged(t *testing.T) {
	if testing.Short() {
		t.Skip("staged grid")
	}
	// adpcmdec partitions into three stages (see the multistage tests);
	// the served staged run must match RunStagedCtx byte for byte.
	b, err := hfstream.BenchmarkByName("adpcmdec")
	if err != nil {
		t.Fatal(err)
	}
	d := hfstream.SyncOptiSCQ64
	var direct bytes.Buffer
	if _, err := hfstream.RunStagedCtx(context.Background(), b, d, 3,
		hfstream.WithMetrics(&direct)); err != nil {
		t.Fatal(err)
	}

	ts := httptest.NewServer(serve.New(serve.Config{Workers: 1}).Handler())
	defer ts.Close()
	body := `{"bench":"adpcmdec","design":"` + d.Name() + `","stages":3}`
	resp, err := http.Post(ts.URL+"/run", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var served bytes.Buffer
	if _, err := served.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("staged serve: status %d (%s)", resp.StatusCode, served.Bytes())
	}
	if !bytes.Equal(served.Bytes(), direct.Bytes()) {
		t.Error("staged serve body differs from RunStagedCtx snapshot")
	}
}
