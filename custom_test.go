package hfstream

import (
	"errors"
	"strings"
	"testing"
)

// mustCompile assembles src or fails the test.
func mustCompile(t *testing.T, name, src string) *Program {
	t.Helper()
	p, err := CompileAsm(name, src)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return p
}

func TestCompileAsmErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string // substring of the error
	}{
		{"unknown-mnemonic", "frobnicate r1, r2\nhalt\n", "unknown mnemonic"},
		{"bad-register", "movi r99, 1\nhalt\n", "bad register"},
		{"undefined-label", "b nowhere\nhalt\n", "undefined label"},
		{"duplicate-label", "x:\nmovi r1, 1\nx:\nhalt\n", "duplicate label"},
		{"bad-queue", "movi r1, 1\nproduce qx, r1\nhalt\n", "bad queue"},
		{"bad-memory-operand", "ld r1, oops\nhalt\n", "bad memory operand"},
		{"bad-memory-base", "ld r1, [oops+8]\nhalt\n", "bad register"},
		{"missing-operand", "add r1, r2\nhalt\n", "missing operand"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := CompileAsm(tc.name, tc.src)
			if err == nil {
				t.Fatalf("CompileAsm accepted %q", tc.src)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestRunProgramsCoreCount(t *testing.T) {
	p := mustCompile(t, "p", "movi r1, 1\nhalt\n")

	if _, err := RunPrograms(Existing, nil, nil); err == nil {
		t.Error("RunPrograms accepted an empty program list")
	}

	nine := make([]*Program, 9)
	for i := range nine {
		nine[i] = p
	}
	_, err := RunPrograms(Existing, nine, nil)
	if err == nil {
		t.Fatal("RunPrograms accepted 9 programs")
	}
	var cce *CoreCountError
	if !errors.As(err, &cce) {
		t.Fatalf("error %T is not *CoreCountError", err)
	}
	if cce.Programs != 9 || cce.Max != 8 {
		t.Errorf("CoreCountError = %+v, want Programs=9 Max=8", cce)
	}
	if !strings.Contains(err.Error(), "9 programs") || !strings.Contains(err.Error(), "at most 8") {
		t.Errorf("unhelpful message %q", err)
	}
}

// Three communicating programs must run on every design that can route
// them: the routes are auto-derived from a static scan, no explicit
// configuration needed. The result must match the functional oracle.
func TestRunProgramsThreeCoreAutoRoutes(t *testing.T) {
	src0 := `
	    movi r1, 0
	    movi r2, 10
	loop:
	    addi r1, r1, 3
	    produce q0, r1
	    addi r2, r2, -1
	    bnez r2, loop
	    halt
	`
	src1 := `
	    movi r2, 10
	loop:
	    consume r1, q0
	    addi r1, r1, 100
	    produce q1, r1
	    addi r2, r2, -1
	    bnez r2, loop
	    halt
	`
	src2 := `
	    movi r2, 10
	    movi r3, 0
	loop:
	    consume r1, q1
	    add  r3, r3, r1
	    addi r2, r2, -1
	    bnez r2, loop
	    st   [r0+32768], r3
	    halt
	`
	progs := []*Program{
		mustCompile(t, "stage0", src0),
		mustCompile(t, "stage1", src1),
		mustCompile(t, "stage2", src2),
	}
	oracle, err := Interpret(progs, nil)
	if err != nil {
		t.Fatalf("Interpret: %v", err)
	}
	want := oracle(32768)
	if want == 0 {
		t.Fatal("oracle computed 0; workload is broken")
	}
	for _, d := range Designs() {
		run, err := RunPrograms(d, progs, nil)
		if err != nil {
			t.Errorf("%s: RunPrograms on 3 cores: %v", d.Name(), err)
			continue
		}
		if got := run.Read(32768); got != want {
			t.Errorf("%s: result %d, oracle %d", d.Name(), got, want)
		}
	}
}

// A lowering failure anywhere in the slice must fail the whole call up
// front, identify the offending program, and leave the inputs untouched.
func TestRunProgramsLoweringFailure(t *testing.T) {
	good := mustCompile(t, "good", `
		movi r1, 7
		st   [r0+4096], r1
		halt
	`)
	// r60 collides with the scratch registers software-queue lowering
	// claims from the top of the file.
	bad := mustCompile(t, "bad", `
		movi r60, 1
		produce q0, r60
		halt
	`)
	goodAsm, badAsm := good.Disassemble(), bad.Disassemble()

	_, err := RunPrograms(Existing, []*Program{good, bad}, nil)
	if err == nil {
		t.Fatal("RunPrograms accepted a program colliding with lowering scratch registers")
	}
	if !strings.Contains(err.Error(), "program 1") {
		t.Errorf("error %q does not name the offending slice index", err)
	}
	if good.Disassemble() != goodAsm || bad.Disassemble() != badAsm {
		t.Error("RunPrograms mutated its input programs on failure")
	}

	// The same pair is fine on a hardware-queue design (no lowering).
	if _, err := RunPrograms(HeavyWT, []*Program{good, bad}, nil); err != nil {
		t.Errorf("HEAVYWT run failed: %v", err)
	}
}

// RunPrograms must agree with the functional interpreter on every design
// point, including the extension designs DesignByName resolves.
func TestRunProgramsMatchesInterpretEverywhere(t *testing.T) {
	prod := mustCompile(t, "prod", `
		movi r1, 1
		movi r2, 50
		movi r3, 1
	loop:
		produce q0, r1
		add  r1, r1, r3
		cmplt r4, r2, r1
		beqz r4, loop
		movi r5, 0
		produce q0, r5
		halt
	`)
	cons := mustCompile(t, "cons", `
		movi r1, 0
		movi r2, 8192
	loop:
		consume r3, q0
		beqz r3, done
		add  r1, r1, r3
		b loop
	done:
		st [r2+0], r1
		halt
	`)
	init := map[uint64]uint64{8192: 0xdead}

	oracle, err := Interpret([]*Program{prod, cons}, init)
	if err != nil {
		t.Fatal(err)
	}
	want := oracle(8192)
	if want != 50*51/2 {
		t.Fatalf("oracle sum = %d, want %d", want, 50*51/2)
	}

	names := make([]string, 0, len(Designs())+3)
	for _, d := range Designs() {
		names = append(names, d.Name())
	}
	// NETQUEUE_3hop's odd hop count exercises the QLU/depth fixup.
	names = append(names, "REGMAPPED", "NETQUEUE_2hop", "NETQUEUE_3hop", "HEAVYWT_CENTRAL")
	for _, name := range names {
		d, err := DesignByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		run, err := RunPrograms(d, []*Program{prod, cons}, init)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got := run.Read(8192); got != want {
			t.Errorf("%s: sum = %d, want %d", name, got, want)
		}
		if run.Cycles == 0 {
			t.Errorf("%s: zero cycles", name)
		}
	}
}

func TestDesignByNameExtensions(t *testing.T) {
	for name, want := range map[string]string{
		"REGMAPPED":       "REGMAPPED",
		"NETQUEUE_1hop":   "NETQUEUE_1hop",
		"NETQUEUE_8hop":   "NETQUEUE_8hop",
		"HEAVYWT_CENTRAL": "HEAVYWT_CENTRAL",
	} {
		d, err := DesignByName(name)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if d.Name() != want {
			t.Errorf("DesignByName(%q).Name() = %q", name, d.Name())
		}
	}
	for _, bad := range []string{"NETQUEUE_0hop", "NETQUEUE_xhop", "NETQUEUE_", "nope"} {
		_, err := DesignByName(bad)
		if err == nil {
			t.Errorf("DesignByName accepted %q", bad)
			continue
		}
		// The error must enumerate the valid names so callers can recover.
		for _, must := range []string{"EXISTING", "HEAVYWT", "REGMAPPED", "NETQUEUE_<h>hop", "HEAVYWT_CENTRAL"} {
			if !strings.Contains(err.Error(), must) {
				t.Errorf("DesignByName(%q) error %q omits %s", bad, err, must)
			}
		}
	}
}
