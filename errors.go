package hfstream

import "hfstream/internal/sim"

// The simulator's typed failure modes, re-exported so callers can
// errors.As against them without importing internal packages.
type (
	// DeadlockError reports a run that stopped making progress (queue or
	// coherence deadlock, or an exhausted cycle budget). Its Diag field
	// carries the structured machine snapshot taken at detection time.
	DeadlockError = sim.DeadlockError
	// CanceledError reports a run aborted through its context before
	// completion.
	CanceledError = sim.CanceledError
	// ValidationError reports a configuration or program the simulator
	// rejected before running a single cycle.
	ValidationError = sim.ValidationError
)

// Diagnosis is the structured machine snapshot attached to DeadlockError
// and to unquiesced results: per-core stall reason and PC, OzQ and stream
// queue state, in-flight bus transactions, synchronization-array
// occupancy, fired fault shots, and recent trace events.
type Diagnosis = sim.Diagnosis

// DiagnosisJSON serializes a diagnosis deterministically (two-space
// indentation, fixed field order, trailing newline) for golden tests and
// the CLIs' -diagnose flag.
func DiagnosisJSON(d *Diagnosis) ([]byte, error) { return sim.DiagnosisJSON(d) }
