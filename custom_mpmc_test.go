package hfstream

import (
	"errors"
	"fmt"
	"testing"
)

// mpmcWorkload builds P producer and C consumer programs sharing queue 0
// under the ticket discipline: N items total, producer i contributing
// values (i+nP)*3+1 for its tickets, consumer j storing an
// order-sensitive prefix checksum of its N/C tickets at 0x8000+8j. It
// also returns the expected checksums.
func mpmcWorkload(t *testing.T, p, c, n int) ([]*Program, []uint64) {
	t.Helper()
	if n%p != 0 || n%c != 0 {
		t.Fatalf("N=%d not divisible by P=%d and C=%d", n, p, c)
	}
	progs := make([]*Program, 0, p+c)
	for i := 0; i < p; i++ {
		src := fmt.Sprintf(`
		movi r1, %d
		movi r2, %d
		movi r3, %d
	loop:
		produce q0, r1
		add  r1, r1, r2
		addi r3, r3, -1
		bnez r3, loop
		halt
	`, i*3+1, p*3, n/p)
		progs = append(progs, mustCompile(t, fmt.Sprintf("p%d", i), src))
	}
	want := make([]uint64, c)
	for j := 0; j < c; j++ {
		src := fmt.Sprintf(`
		movi r1, 0
		movi r2, 0
		movi r5, %d
		movi r6, %d
	loop:
		consume r3, q0
		add  r1, r1, r3
		add  r2, r2, r1
		addi r5, r5, -1
		bnez r5, loop
		st   [r6+0], r2
		halt
	`, n/c, 0x8000+8*j)
		progs = append(progs, mustCompile(t, fmt.Sprintf("c%d", j), src))
		var acc uint64
		for i := 0; i < n/c; i++ {
			acc += uint64((i*c+j)*3 + 1)
			want[j] += acc
		}
	}
	return progs, want
}

// Every design that claims MPMC support must reproduce the functional
// interpreter's ticket semantics bit for bit, across fan-in, fan-out and
// full MPMC topologies; SYNCOPTI must refuse with the typed error rather
// than run its colliding slot counters.
func TestRunProgramsMPMCMatchesInterpret(t *testing.T) {
	if testing.Short() {
		t.Skip("MPMC design sweep")
	}
	topologies := []struct{ p, c, n int }{
		{2, 1, 24}, // fan-in
		{1, 2, 24}, // fan-out
		{2, 2, 24}, // full MPMC
		{4, 2, 24}, // wide fan-in, 6 cores
	}
	accept := []Design{Existing, MemOpti, HeavyWT, MPMCQ64}
	reject := []Design{SyncOpti, SyncOptiQ64, SyncOptiSC, SyncOptiSCQ64}
	for _, topo := range topologies {
		progs, want := mpmcWorkload(t, topo.p, topo.c, topo.n)
		oracle, err := Interpret(progs, nil)
		if err != nil {
			t.Fatalf("%dP%dC: oracle: %v", topo.p, topo.c, err)
		}
		for j, w := range want {
			if got := oracle(uint64(0x8000 + 8*j)); got != w || w == 0 {
				t.Fatalf("%dP%dC: oracle checksum %d = %d, want %d", topo.p, topo.c, j, got, w)
			}
		}
		for _, d := range accept {
			run, err := RunPrograms(d, progs, nil)
			if err != nil {
				t.Errorf("%dP%dC on %s: %v", topo.p, topo.c, d.Name(), err)
				continue
			}
			for j, w := range want {
				if got := run.Read(uint64(0x8000 + 8*j)); got != w {
					t.Errorf("%dP%dC on %s: consumer %d checksum = %d, want %d",
						topo.p, topo.c, d.Name(), j, got, w)
				}
			}
		}
		if topo.p == 1 && topo.c == 1 {
			continue
		}
		for _, d := range reject {
			_, err := RunPrograms(d, progs, nil)
			var me *MPMCUnsupportedError
			if !errors.As(err, &me) {
				t.Errorf("%dP%dC on %s: err = %v, want MPMCUnsupportedError",
					topo.p, topo.c, d.Name(), err)
				continue
			}
			if me.Design != d.Name() || len(me.Queues) != 1 || me.Queues[0] != 0 {
				t.Errorf("%dP%dC on %s: error detail %+v", topo.p, topo.c, d.Name(), me)
			}
		}
	}
}

// An endpoint count that does not divide the queue depth must fail
// cleanly everywhere: the software lowering and the syncarray both reject
// it instead of letting slot ownership drift across wraps.
func TestRunProgramsMPMCBadEndpointCount(t *testing.T) {
	progs, _ := mpmcWorkload(t, 3, 1, 24) // 3 does not divide 32 slots
	for _, d := range []Design{Existing, HeavyWT} {
		if _, err := RunPrograms(d, progs, nil); err == nil {
			t.Errorf("%s accepted 3 producers on a 32-slot queue", d.Name())
		}
	}
}
