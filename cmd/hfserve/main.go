// Command hfserve runs the simulation service: an HTTP JSON frontend
// over the deterministic simulator with content-addressed result
// caching, request coalescing, bounded-queue load shedding and graceful
// drain (see package serve and the README "Serving" section).
//
// Usage:
//
//	hfserve -addr :8080
//	hfserve -addr :8080 -workers 8 -queue 128 -cache-mb 256 -timeout 2m
//
// Endpoints:
//
//	POST /run                {"bench":"wc","design":"SYNCOPTI"} -> metrics JSON
//	POST /run?stream=ndjson  same spec -> NDJSON event stream: progress
//	                         heartbeats while the simulation runs
//	                         (?progress_every=N sets the cycle cadence),
//	                         then a metrics event whose body field holds
//	                         the exact non-streaming response bytes, then
//	                         done; failures arrive as typed error events.
//	                         Disconnecting cancels the simulation.
//	POST /sweep              {"benches":["*"],"designs":["*"],"single":true,
//	                         "stages":[3]} -> NDJSON stream of per-cell
//	                         metrics/error events in completion order plus
//	                         a closing done event with run/hit/coalesced
//	                         tallies. Cells share the /run result cache,
//	                         so re-submitting a sweep only simulates the
//	                         misses.
//	GET  /metrics            service counters
//	GET  /healthz            liveness (503 once draining)
//
// On SIGINT/SIGTERM the server stops accepting work (new /run requests
// get a typed 503), finishes queued and in-flight simulations within the
// grace period, then exits 0; if the grace period expires first the
// remaining jobs are canceled and the exit status is 1.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hfstream/serve"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		workers = flag.Int("workers", 0, "simulation worker pool size (0 = GOMAXPROCS)")
		queue   = flag.Int("queue", serve.DefaultQueueDepth, "max jobs queued before shedding with 429")
		cacheMB = flag.Int64("cache-mb", serve.DefaultCacheBytes>>20, "result cache budget in MiB (negative disables)")
		timeout = flag.Duration("timeout", serve.DefaultJobTimeout, "per-job wall-clock budget")
		grace   = flag.Duration("grace", 30*time.Second, "drain budget after SIGTERM before in-flight jobs are canceled")
	)
	flag.Parse()

	cacheBytes := *cacheMB << 20
	if *cacheMB < 0 {
		cacheBytes = -1
	}
	s := serve.New(serve.Config{
		Workers:    *workers,
		QueueDepth: *queue,
		CacheBytes: cacheBytes,
		JobTimeout: *timeout,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: s.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "hfserve: listening on %s\n", *addr)

	select {
	case err := <-errCh:
		fmt.Fprintln(os.Stderr, "hfserve:", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	// Graceful drain: reject new work first so load balancers see the
	// 503s, then wait out in-flight HTTP requests and queued jobs.
	fmt.Fprintln(os.Stderr, "hfserve: draining...")
	s.BeginDrain()
	graceCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	failed := false
	if err := httpSrv.Shutdown(graceCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "hfserve: http shutdown:", err)
		failed = true
	}
	if err := s.Drain(graceCtx); err != nil {
		fmt.Fprintln(os.Stderr, "hfserve: drain:", err)
		failed = true
	}
	if failed {
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "hfserve: drained cleanly")
}
