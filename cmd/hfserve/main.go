// Command hfserve runs the simulation service: an HTTP JSON frontend
// over the deterministic simulator with content-addressed result
// caching, request coalescing, bounded-queue load shedding, graceful
// drain, and optional cluster cache peering (see package serve, package
// serve/cluster, serve/API.md and the README "Serving" / "Cluster
// serving" sections).
//
// Usage:
//
//	hfserve -addr :8080
//	hfserve -addr :8080 -workers 8 -queue 128 -cache-mb 256 -timeout 2m
//	hfserve -addr :0 -id r0 -peers r1=http://h1:8080,r2=http://h2:8080
//
// Endpoints (versioned under /v1/, with the legacy unversioned paths
// kept as aliases; full wire contract in serve/API.md):
//
//	POST /v1/run                {"bench":"wc","design":"SYNCOPTI"} -> metrics JSON
//	POST /v1/run?stream=ndjson  same spec -> NDJSON event stream: progress
//	                            heartbeats while the simulation runs
//	                            (?progress_every=N sets the cycle cadence),
//	                            then a metrics event whose body field holds
//	                            the exact non-streaming response bytes, then
//	                            done; failures arrive as typed error events.
//	                            Disconnecting cancels the simulation.
//	POST /v1/sweep              {"benches":["*"],"designs":["*"],"single":true,
//	                            "stages":[3]} -> NDJSON stream of per-cell
//	                            metrics/error events in completion order plus
//	                            a closing done event with run/hit/peer/
//	                            coalesced tallies. Cells share the /v1/run
//	                            result cache, so re-submitting a sweep only
//	                            simulates the misses.
//	GET  /v1/metrics            service counters (incl. peering when clustered)
//	GET  /v1/healthz            liveness (503 once draining)
//	GET  /v1/peer/{key}         cluster-internal cache tier: cached bytes for
//	                            a Spec.Key (404 not_cached; never simulates)
//	PUT  /v1/peer/{key}         cluster-internal: install a peer's result
//
// Clustering: give each replica an -id and the full -peers membership
// list (id=url pairs). On a local cache miss the replica asks the key's
// consistent-hash owner shard for the bytes before simulating, and
// publishes fresh results back to the owners; a dead or slow peer only
// ever degrades a request to local compute (see RESILIENCE.md).
//
// With -addr :0 the kernel picks the port; the resolved address is
// printed to stdout as "hfserve: listening on HOST:PORT" so scripts and
// tests can spin up ephemeral-port replicas without races.
//
// On SIGINT/SIGTERM the server stops accepting work (new /run requests
// get a typed 503), finishes queued and in-flight simulations within the
// grace period, then exits 0; if the grace period expires first the
// remaining jobs are canceled and the exit status is 1.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"hfstream/serve"
	"hfstream/serve/cluster"
)

// parsePeers decodes the -peers flag: comma-separated id=url pairs.
func parsePeers(raw string) (map[string]string, error) {
	peers := make(map[string]string)
	for _, pair := range strings.Split(raw, ",") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		id, url, ok := strings.Cut(pair, "=")
		if !ok || id == "" || url == "" {
			return nil, fmt.Errorf("bad -peers entry %q (want id=url)", pair)
		}
		if _, dup := peers[id]; dup {
			return nil, fmt.Errorf("duplicate peer id %q", id)
		}
		peers[id] = url
	}
	return peers, nil
}

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address (:0 picks an ephemeral port and prints it)")
		workers = flag.Int("workers", 0, "simulation worker pool size (0 = GOMAXPROCS)")
		queue   = flag.Int("queue", serve.DefaultQueueDepth, "max jobs queued before shedding with 429")
		cacheMB = flag.Int64("cache-mb", serve.DefaultCacheBytes>>20, "result cache budget in MiB (negative disables)")
		timeout = flag.Duration("timeout", serve.DefaultJobTimeout, "per-job wall-clock budget")
		grace   = flag.Duration("grace", 30*time.Second, "drain budget after SIGTERM before in-flight jobs are canceled")

		id          = flag.String("id", "", "this replica's cluster id (required with -peers)")
		peersFlag   = flag.String("peers", "", "cluster membership as id=url,id=url (other replicas)")
		replication = flag.Int("replication", cluster.DefaultReplication, "owner shards per key for peer fill/store")
		peerTimeout = flag.Duration("peer-timeout", cluster.DefaultFillTimeout, "per-attempt peer cache fill budget")
	)
	flag.Parse()

	cacheBytes := *cacheMB << 20
	if *cacheMB < 0 {
		cacheBytes = -1
	}

	var peering *cluster.Peering
	if *peersFlag != "" {
		if *id == "" {
			fmt.Fprintln(os.Stderr, "hfserve: -peers requires -id")
			os.Exit(2)
		}
		peers, err := parsePeers(*peersFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hfserve:", err)
			os.Exit(2)
		}
		peering, err = cluster.New(cluster.Config{
			Self:        *id,
			Peers:       peers,
			Replication: *replication,
			FillTimeout: *peerTimeout,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "hfserve:", err)
			os.Exit(2)
		}
	}

	cfg := serve.Config{
		Workers:    *workers,
		QueueDepth: *queue,
		CacheBytes: cacheBytes,
		JobTimeout: *timeout,
	}
	if peering != nil {
		cfg.Peer = peering
	}
	s := serve.New(cfg)
	httpSrv := &http.Server{Handler: s.Handler()}

	// Listen before serving so -addr :0 resolves to a concrete port we
	// can announce; tests and hfload parse this line to find the replica.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hfserve:", err)
		os.Exit(1)
	}
	fmt.Printf("hfserve: listening on %s\n", ln.Addr())
	if peering != nil {
		fmt.Fprintf(os.Stderr, "hfserve: cluster replica %s, ring %v (replication %d)\n",
			*id, peering.Ring().IDs(), *replication)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	select {
	case err := <-errCh:
		fmt.Fprintln(os.Stderr, "hfserve:", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	// Graceful drain: reject new work first so load balancers see the
	// 503s, then wait out in-flight HTTP requests and queued jobs.
	fmt.Fprintln(os.Stderr, "hfserve: draining...")
	s.BeginDrain()
	graceCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	failed := false
	if err := httpSrv.Shutdown(graceCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "hfserve: http shutdown:", err)
		failed = true
	}
	if err := s.Drain(graceCtx); err != nil {
		fmt.Fprintln(os.Stderr, "hfserve: drain:", err)
		failed = true
	}
	if peering != nil {
		// Push any queued result publications out so the owners keep the
		// bytes this replica computed, then stop the store workers.
		if err := peering.Flush(graceCtx); err != nil {
			fmt.Fprintln(os.Stderr, "hfserve: peer store flush:", err)
		}
		peering.Close()
	}
	if failed {
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "hfserve: drained cleanly")
}
