// Command hfchaos runs the fault-injection chaos sweep: seeded generated
// workloads under seeded fault plans across design points, checking the
// robustness contract on every run (no panic, no hang, oracle-correct
// results for delay-class faults, typed detection with a diagnosis for
// loss-class faults). Everything derives from integer seeds, so a failure
// printed by one invocation replays bit-exactly with the command it
// names.
//
// With -cluster the sweep moves up a tier: instead of driving the sim
// kernel directly, each scenario spins up a peered hfserve cluster on
// loopback, injects seeded network faults (serve/faultnet) into the
// peering channels and the driving clients, and checks the service
// contract — byte-correct or typed-error responses, zero poisoned
// cache entries, bounded compute amplification.
//
// Usage:
//
//	hfchaos                          # default corpus: seeds 1..6, 4 plans each
//	hfchaos -seeds 1,2,3 -plans 8
//	hfchaos -seed0 100 -n 20         # seeds 100..119
//	hfchaos -seeds 4 -designs SYNCOPTI -plans 2 -v   # replay one case
//	hfchaos -cluster -seeds 1,2,3    # service-tier chaos: faulted hfserve clusters
//	hfchaos -cluster -seeds 2 -plans 4 -replicas 3 -v   # replay one scenario set
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"hfstream"
	"hfstream/chaos"
	clusterchaos "hfstream/chaos/cluster"
)

func main() {
	var (
		seedList = flag.String("seeds", "1,2,3,4,5,6", "comma-separated workload seeds")
		seed0    = flag.Int64("seed0", 0, "with -n: first seed of a contiguous range (overrides -seeds)")
		n        = flag.Int("n", 0, "with -seed0: number of seeds")
		plans    = flag.Int("plans", 4, "fault plans per (seed, design), on top of the fault-free baseline")
		designs  = flag.String("designs", "", "comma-separated design points (default: all seven)")
		jobs     = flag.Int("j", 0, "worker-pool width (0 = GOMAXPROCS)")
		timeout  = flag.Duration("timeout", 60*time.Second, "per-run wall-clock limit; exceeding it is a failure")
		verbose  = flag.Bool("v", false, "print every run as it completes")

		clusterMode = flag.Bool("cluster", false, "service-tier chaos: faulted hfserve clusters instead of kernel runs")
		replicas    = flag.Int("replicas", 3, "with -cluster: replicas per scenario")
		requests    = flag.Int("requests", 24, "with -cluster: driver requests per scenario")
	)
	flag.Parse()

	cfg := chaos.Config{
		PlansPerSeed: *plans,
		Jobs:         *jobs,
		Timeout:      *timeout,
	}
	if *n > 0 {
		for i := 0; i < *n; i++ {
			cfg.Seeds = append(cfg.Seeds, *seed0+int64(i))
		}
	} else {
		for _, s := range strings.Split(*seedList, ",") {
			v, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
			if err != nil {
				fmt.Fprintf(os.Stderr, "hfchaos: bad seed %q: %v\n", s, err)
				os.Exit(1)
			}
			cfg.Seeds = append(cfg.Seeds, v)
		}
	}
	if *clusterMode {
		runCluster(cfg.Seeds, *plans, *replicas, *requests, *timeout, *verbose)
		return
	}
	if *designs != "" {
		for _, name := range strings.Split(*designs, ",") {
			d, err := hfstream.DesignByName(strings.TrimSpace(name))
			if err != nil {
				fmt.Fprintln(os.Stderr, "hfchaos:", err)
				os.Exit(1)
			}
			cfg.Designs = append(cfg.Designs, d)
		}
	}
	if *verbose {
		cfg.Progress = func(done, total int, o chaos.Outcome) {
			plan := o.Plan
			if plan == "" {
				plan = "baseline"
			}
			detail := ""
			if o.Detail != "" {
				detail = " (" + o.Detail + ")"
			}
			fmt.Printf("[%3d/%3d] seed=%-4d %-16s %-40s %s%s\n",
				done, total, o.Seed, o.Design, plan, o.Class, detail)
			for _, s := range o.Shots {
				fmt.Printf("          shot: %s\n", s)
			}
		}
	} else {
		cfg.Progress = func(done, total int, o chaos.Outcome) {
			if o.Class == chaos.ClassFail {
				fmt.Fprintf(os.Stderr, "hfchaos: FAIL seed=%d design=%s plan=%q: %s\n",
					o.Seed, o.Design, o.Plan, o.Detail)
			}
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	start := time.Now()
	rep, err := chaos.Sweep(ctx, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hfchaos:", err)
		os.Exit(1)
	}
	fmt.Printf("%s(%v)\n", rep.String(), time.Since(start).Round(time.Millisecond))
	if rep.Failures > 0 {
		os.Exit(1)
	}
}

// runCluster executes the service-tier sweep and exits with the
// appropriate status.
func runCluster(seeds []int64, plans, replicas, requests int, timeout time.Duration, verbose bool) {
	cfg := clusterchaos.Config{
		Seeds:        seeds,
		PlansPerSeed: plans,
		Replicas:     replicas,
		Requests:     requests,
		Timeout:      timeout,
	}
	if verbose {
		cfg.Progress = func(done, total int, o clusterchaos.Outcome) {
			plan := o.Plan
			if plan == "" {
				plan = "baseline"
			}
			detail := ""
			if o.Detail != "" {
				detail = " (" + o.Detail + ")"
			}
			fmt.Printf("[%3d/%3d] seed=%-4d plan=%-2d %-14s errors=%d retries=%d %v%s\n        %s\n",
				done, total, o.Seed, o.PlanIndex, o.Class, o.Errors, o.Retries,
				o.Wall.Round(time.Millisecond), detail, plan)
		}
	} else {
		cfg.Progress = func(done, total int, o clusterchaos.Outcome) {
			if o.Class == clusterchaos.ClassFail {
				fmt.Fprintf(os.Stderr, "hfchaos: FAIL seed=%d plan=%d: %s\n", o.Seed, o.PlanIndex, o.Detail)
			}
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	start := time.Now()
	rep, err := clusterchaos.Sweep(ctx, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hfchaos:", err)
		os.Exit(1)
	}
	fmt.Printf("%s(%v)\n", rep.String(), time.Since(start).Round(time.Millisecond))
	if rep.Failures > 0 {
		os.Exit(1)
	}
}
