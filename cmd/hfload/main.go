// Command hfload drives an hfserve cluster at configurable offered load
// and Zipf key skew, and emits an SLO report (latency percentiles, shed
// rate, cache-hit ratio split local/peer, throughput vs replicas) as
// JSON — BENCH_SERVE.json when checked in, giving serving performance
// the same tracked trajectory the kernel has in BENCH_PR3/PR6.json.
//
// Two modes:
//
//	hfload -scale 1,3 ...        in-process mode (default): for each listed
//	                             replica count, spin up that many peered
//	                             serve.Server replicas on ephemeral ports,
//	                             drive the same seeded workload at each
//	                             scale, and report throughput scaling.
//	hfload -urls http://a,http://b ...
//	                             external mode: drive already-running
//	                             replicas (one phase, no capacity model).
//
// The workload is a closed loop: -conc workers each pick a spec from the
// (benches x designs x single x stages) cell universe via a seeded Zipf
// draw (-skew; sweeps make some specs orders of magnitude hotter than
// others, and Zipf models that), round-robin across replicas — a
// load-balancer's view of the cluster — and issue /v1/run through the
// typed serve/client package.
//
// Capacity model (-cap-rps, in-process mode only): the in-process
// harness co-locates every replica on one machine, so raw CPU cannot
// scale with the replica count — on a single box, three replicas share
// the same cores one replica had. What CAN be measured end to end is
// whether the cluster layer (consistent-hash routing, peer cache fill,
// hot-key convergence, failure degradation) preserves linear scaling of
// per-replica capacity, or taxes it. So each in-process replica admits
// client requests through a token-bucket pacer modeling a fixed
// per-instance capacity of -cap-rps requests/sec (peer-tier and metrics
// endpoints are never paced — they are cluster-internal). A 3-replica
// phase then sustains ~3x the single-replica throughput exactly when
// the cluster layer adds no serialization, sheds nothing, and serves
// every key from the shared cache tier — which is the claim under test,
// and what the checked-in BENCH_SERVE.json demonstrates. The model
// constant is recorded in the report as config.cap_rps.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"hfstream"
	"hfstream/serve"
	"hfstream/serve/client"
	"hfstream/serve/cluster"
)

func main() {
	var (
		scaleFlag   = flag.String("scale", "1,3", "in-process mode: comma list of replica counts to phase through")
		urlsFlag    = flag.String("urls", "", "external mode: comma list of replica base URLs (disables -scale)")
		benchesFlag = flag.String("benches", "bzip2,adpcmdec", "comma list of benchmarks, or *")
		designsFlag = flag.String("designs", "*", "comma list of design points, or *")
		single      = flag.Bool("single", true, "include each benchmark's single-threaded baseline cell")
		stagesFlag  = flag.String("stages", "", "comma list of staged-pipeline stage counts to add per (bench,design)")
		conc        = flag.Int("conc", 24, "closed-loop worker count (offered concurrency)")
		retries     = flag.Int("retries", 0, "retry attempts per request beyond the first (0 = no retry layer)")
		duration    = flag.Duration("duration", 3*time.Second, "measurement duration per phase")
		skew        = flag.Float64("skew", 1.2, "Zipf skew s (> 1) over the spec universe")
		seed        = flag.Int64("seed", 1, "workload seed (per-worker streams derive from it)")
		capRPS      = flag.Float64("cap-rps", 250, "modeled per-replica admission capacity in req/s (in-process mode; 0 disables)")
		workers     = flag.Int("workers", 1, "per-replica simulation pool size (in-process mode)")
		queueDepth  = flag.Int("queue", serve.DefaultQueueDepth, "per-replica job queue depth (in-process mode)")
		cacheMB     = flag.Int64("cache-mb", 64, "per-replica result cache budget in MiB (in-process mode)")
		replication = flag.Int("replication", cluster.DefaultReplication, "owner shards per key for peer fill/store")
		peerTimeout = flag.Duration("peer-timeout", cluster.DefaultFillTimeout, "per-attempt peer fill budget")
		outPath     = flag.String("out", "BENCH_SERVE.json", "report path, or - for stdout")
		label       = flag.String("label", "serve", "report label")
		minSpeedup  = flag.Float64("min-speedup", 0, "exit 1 unless the last phase's throughput is at least this multiple of the first's")
		minPeerHit  = flag.Float64("min-peer-ratio", 0, "exit 1 unless some multi-replica phase's peer-hit ratio exceeds this")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	cells, err := expandCells(*benchesFlag, *designsFlag, *single, *stagesFlag)
	if err != nil {
		fatal(err)
	}
	if *skew <= 1 {
		fatal(fmt.Errorf("-skew must be > 1 (Zipf s parameter), got %v", *skew))
	}

	load := loadConfig{
		cells:    cells,
		conc:     *conc,
		duration: *duration,
		skew:     *skew,
		seed:     *seed,
	}

	rep := report{
		Label:       *label,
		GoVersion:   runtime.Version(),
		FastForward: os.Getenv("HFSTREAM_NO_FASTFORWARD") == "",
	}
	rep.Config.Benches = splitList(*benchesFlag)
	rep.Config.Designs = splitList(*designsFlag)
	rep.Config.Single = *single
	rep.Config.Stages = mustStages(*stagesFlag)
	rep.Config.Cells = len(cells)
	rep.Config.Conc = *conc
	rep.Config.DurationSec = duration.Seconds()
	rep.Config.Skew = *skew
	rep.Config.Seed = *seed
	rep.Config.CapRPS = *capRPS
	rep.Config.WorkersPerReplica = *workers
	rep.Config.Replication = *replication
	rep.Config.Retries = *retries

	if *urlsFlag != "" {
		urls := splitList(*urlsFlag)
		clients := make([]*client.Client, len(urls))
		for i, u := range urls {
			opts := []client.Option{client.WithHTTPClient(loadHTTPClient(*conc))}
			opts = append(opts, retryOptions(*retries, *seed)...)
			clients[i] = client.New(u, opts...)
		}
		rep.Config.CapRPS = 0 // external replicas have real capacity
		ph := runPhase(ctx, clients, load)
		ph.Replicas = len(urls)
		rep.Phases = append(rep.Phases, ph)
	} else {
		scales, err := parseInts(*scaleFlag)
		if err != nil || len(scales) == 0 {
			fatal(fmt.Errorf("bad -scale %q: want a comma list of replica counts", *scaleFlag))
		}
		for _, n := range scales {
			ph, err := runInprocPhase(ctx, n, inprocConfig{
				workers:     *workers,
				queueDepth:  *queueDepth,
				cacheBytes:  *cacheMB << 20,
				replication: *replication,
				peerTimeout: *peerTimeout,
				capRPS:      *capRPS,
				retries:     *retries,
			}, load)
			if err != nil {
				fatal(err)
			}
			rep.Phases = append(rep.Phases, ph)
		}
	}

	for i := range rep.Phases {
		if base := rep.Phases[0].ThroughputRPS; base > 0 {
			rep.Phases[i].SpeedupVsFirst = rep.Phases[i].ThroughputRPS / base
		}
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	buf = append(buf, '\n')
	if *outPath == "-" {
		os.Stdout.Write(buf)
	} else {
		if err := os.WriteFile(*outPath, buf, 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "hfload: wrote %s\n", *outPath)
	}
	for _, ph := range rep.Phases {
		fmt.Fprintf(os.Stderr,
			"hfload: replicas=%d throughput=%.1f rps p50=%.2fms p95=%.2fms p99=%.2fms shed=%.3f local=%.3f peer=%.3f speedup=%.2fx\n",
			ph.Replicas, ph.ThroughputRPS, ph.P50Ms, ph.P95Ms, ph.P99Ms,
			ph.ShedRate, ph.HitRatioLocal, ph.HitRatioPeer, ph.SpeedupVsFirst)
		fmt.Fprintf(os.Stderr, "hfload: error-budget replicas=%d %s\n", ph.Replicas, ph.ErrorBudget.line())
	}

	// SLO checks (CI smoke): the report must demonstrate scaling and a
	// live peer cache tier, or the job fails loudly.
	ok := true
	if *minSpeedup > 0 {
		last := rep.Phases[len(rep.Phases)-1]
		if last.SpeedupVsFirst < *minSpeedup {
			fmt.Fprintf(os.Stderr, "hfload: FAIL speedup %.2fx < required %.2fx\n", last.SpeedupVsFirst, *minSpeedup)
			ok = false
		}
	}
	if *minPeerHit > 0 {
		best := 0.0
		for _, ph := range rep.Phases {
			if ph.Replicas > 1 && ph.HitRatioPeer > best {
				best = ph.HitRatioPeer
			}
		}
		if best <= *minPeerHit {
			fmt.Fprintf(os.Stderr, "hfload: FAIL peer-hit ratio %.4f <= required %.4f\n", best, *minPeerHit)
			ok = false
		}
	}
	if !ok {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hfload:", err)
	os.Exit(2)
}

func splitList(raw string) []string {
	var out []string
	for _, s := range strings.Split(raw, ",") {
		if s = strings.TrimSpace(s); s != "" {
			out = append(out, s)
		}
	}
	return out
}

func parseInts(raw string) ([]int, error) {
	var out []int
	for _, s := range splitList(raw) {
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad count %q", s)
		}
		out = append(out, n)
	}
	return out, nil
}

func mustStages(raw string) []int {
	st, err := parseInts(raw)
	if raw != "" && err != nil {
		fatal(fmt.Errorf("bad -stages: %v", err))
	}
	return st
}

// expandCells builds the normalized spec universe the Zipf draw indexes
// — the same grid semantics as /v1/sweep.
func expandCells(benchesRaw, designsRaw string, single bool, stagesRaw string) ([]hfstream.Spec, error) {
	benches := splitList(benchesRaw)
	if len(benches) == 1 && benches[0] == "*" {
		benches = benches[:0]
		for _, b := range hfstream.Benchmarks() {
			benches = append(benches, b.Name())
		}
	}
	designs := splitList(designsRaw)
	if len(designs) == 1 && designs[0] == "*" {
		designs = designs[:0]
		for _, d := range hfstream.Designs() {
			designs = append(designs, d.Name())
		}
	}
	stages := mustStages(stagesRaw)
	var cells []hfstream.Spec
	add := func(s hfstream.Spec) error {
		n, err := s.Normalize()
		if err != nil {
			return err
		}
		cells = append(cells, n)
		return nil
	}
	for _, bench := range benches {
		if single {
			if err := add(hfstream.Spec{Bench: bench, Single: true}); err != nil {
				return nil, err
			}
		}
		for _, design := range designs {
			if err := add(hfstream.Spec{Bench: bench, Design: design}); err != nil {
				return nil, err
			}
			for _, st := range stages {
				if err := add(hfstream.Spec{Bench: bench, Design: design, Stages: st}); err != nil {
					return nil, err
				}
			}
		}
	}
	if len(cells) == 0 {
		return nil, fmt.Errorf("empty spec universe: need benches and designs (or -single)")
	}
	return cells, nil
}

// retryOptions builds the client retry layer for -retries > 0: bounded
// attempts with seeded-jitter backoff, honoring server Retry-After.
func retryOptions(retries int, seed int64) []client.Option {
	if retries <= 0 {
		return nil
	}
	return []client.Option{client.WithRetry(client.RetryPolicy{
		MaxAttempts: retries + 1,
		Seed:        seed,
	})}
}

func loadHTTPClient(conc int) *http.Client {
	return &http.Client{Transport: &http.Transport{
		MaxIdleConns:        conc * 2,
		MaxIdleConnsPerHost: conc,
	}}
}

// ---- report schema --------------------------------------------------

type report struct {
	Label       string `json:"label"`
	GoVersion   string `json:"go_version"`
	FastForward bool   `json:"fast_forward"`
	Config      struct {
		Benches           []string `json:"benches"`
		Designs           []string `json:"designs"`
		Single            bool     `json:"single"`
		Stages            []int    `json:"stages,omitempty"`
		Cells             int      `json:"cells"`
		Conc              int      `json:"conc"`
		DurationSec       float64  `json:"duration_sec"`
		Skew              float64  `json:"zipf_skew"`
		Seed              int64    `json:"seed"`
		CapRPS            float64  `json:"cap_rps"`
		WorkersPerReplica int      `json:"workers_per_replica"`
		Replication       int      `json:"replication"`
		Retries           int      `json:"retries"`
	} `json:"config"`
	Phases []phaseReport `json:"phases"`
}

type phaseReport struct {
	Replicas  int `json:"replicas"`
	Requests  int `json:"requests"`
	Succeeded int `json:"succeeded"`

	ThroughputRPS  float64 `json:"throughput_rps"`
	SpeedupVsFirst float64 `json:"speedup_vs_first"`
	P50Ms          float64 `json:"p50_ms"`
	P95Ms          float64 `json:"p95_ms"`
	P99Ms          float64 `json:"p99_ms"`

	Shed     int     `json:"shed"`
	ShedRate float64 `json:"shed_rate"`
	Errors   int     `json:"errors"`

	// Cache provenance split over successful responses: Misses were
	// fresh simulations, HitsLocal served from the replica's own cache,
	// HitsPeer filled from the cluster cache tier, Coalesced joined a
	// concurrent identical request.
	Misses        int     `json:"misses"`
	HitsLocal     int     `json:"hits_local"`
	HitsPeer      int     `json:"hits_peer"`
	Coalesced     int     `json:"coalesced"`
	HitRatioLocal float64 `json:"hit_ratio_local"`
	HitRatioPeer  float64 `json:"hit_ratio_peer"`

	// ErrorBudget accounts for every failed request by typed error code
	// plus the resilience work spent absorbing transient failures.
	ErrorBudget errorBudget `json:"error_budget"`

	// Sims is the per-replica simulation count — across the phase, every
	// distinct key should be simulated once cluster-wide once peering
	// converges.
	Sims []uint64 `json:"sims_per_replica,omitempty"`
	// Peer aggregates the peering-tier counters over all replicas.
	Peer *serve.PeerStats `json:"peer,omitempty"`
}

// errorBudget is the per-phase resilience ledger: what failed (by
// typed code), what the retry layer absorbed, and how often circuit
// breakers opened on the peer tier.
type errorBudget struct {
	// ByCode counts failed requests by their typed error code
	// ("queue_full" entries are the shed requests; transport-level
	// failures appear under "transport").
	ByCode map[string]int `json:"by_code,omitempty"`
	// Retries is the total retry attempts the driver clients performed.
	Retries uint64 `json:"retries"`
	// BreakerOpens counts closed-to-open circuit-breaker transitions on
	// the peer tier (in-process mode, aggregated over replicas).
	BreakerOpens uint64 `json:"breaker_opens"`
}

// line renders the budget as the one-line stderr summary.
func (eb errorBudget) line() string {
	codes := make([]string, 0, len(eb.ByCode))
	for c := range eb.ByCode {
		codes = append(codes, c)
	}
	sort.Strings(codes)
	parts := make([]string, 0, len(codes))
	for _, c := range codes {
		parts = append(parts, fmt.Sprintf("%s=%d", c, eb.ByCode[c]))
	}
	byCode := "-"
	if len(parts) > 0 {
		byCode = strings.Join(parts, ",")
	}
	return fmt.Sprintf("codes=%s retries=%d breaker-opens=%d", byCode, eb.Retries, eb.BreakerOpens)
}

// ---- load loop ------------------------------------------------------

type loadConfig struct {
	cells    []hfstream.Spec
	conc     int
	duration time.Duration
	skew     float64
	seed     int64
}

type workerTally struct {
	latencies []float64 // ms, successes only
	succeeded int
	shed      int
	errors    int
	misses    int
	hitsLocal int
	hitsPeer  int
	coalesced int
	// error budget: failures split by typed error code, plus
	// transport-level failures that never produced an envelope.
	errCodes  map[string]int
	transport int
}

// runPhase drives the closed loop against the given replica clients and
// aggregates the SLO numbers.
func runPhase(ctx context.Context, clients []*client.Client, load loadConfig) phaseReport {
	var rr atomic.Uint64
	tallies := make([]workerTally, load.conc)
	start := time.Now()
	deadline := start.Add(load.duration)

	var wg sync.WaitGroup
	for w := 0; w < load.conc; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tally := &tallies[w]
			rng := rand.New(rand.NewSource(load.seed*1000 + int64(w)))
			zipf := rand.NewZipf(rng, load.skew, 1, uint64(len(load.cells)-1))
			for time.Now().Before(deadline) && ctx.Err() == nil {
				spec := load.cells[zipf.Uint64()]
				cl := clients[rr.Add(1)%uint64(len(clients))]
				t0 := time.Now()
				res, err := cl.Run(ctx, spec)
				lat := time.Since(t0)
				if err != nil {
					if ctx.Err() != nil {
						continue
					}
					var apiErr *client.APIError
					if errors.As(err, &apiErr) {
						if tally.errCodes == nil {
							tally.errCodes = make(map[string]int)
						}
						tally.errCodes[apiErr.Detail.Code]++
						if apiErr.Detail.Code == "queue_full" {
							tally.shed++
						} else {
							tally.errors++
						}
					} else {
						tally.transport++
						tally.errors++
					}
					continue
				}
				tally.succeeded++
				tally.latencies = append(tally.latencies, float64(lat.Microseconds())/1000)
				switch res.Cache {
				case "hit":
					tally.hitsLocal++
				case "peer":
					tally.hitsPeer++
				case "coalesced":
					tally.coalesced++
				default:
					tally.misses++
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var ph phaseReport
	ph.Replicas = len(clients)
	var all []float64
	for i := range tallies {
		t := &tallies[i]
		ph.Succeeded += t.succeeded
		ph.Shed += t.shed
		ph.Errors += t.errors
		ph.Misses += t.misses
		ph.HitsLocal += t.hitsLocal
		ph.HitsPeer += t.hitsPeer
		ph.Coalesced += t.coalesced
		all = append(all, t.latencies...)
	}
	for i := range tallies {
		t := &tallies[i]
		if t.transport > 0 {
			if ph.ErrorBudget.ByCode == nil {
				ph.ErrorBudget.ByCode = make(map[string]int)
			}
			ph.ErrorBudget.ByCode["transport"] += t.transport
		}
		for code, cnt := range t.errCodes {
			if ph.ErrorBudget.ByCode == nil {
				ph.ErrorBudget.ByCode = make(map[string]int)
			}
			ph.ErrorBudget.ByCode[code] += cnt
		}
	}
	for _, cl := range clients {
		ph.ErrorBudget.Retries += cl.Retries()
	}
	ph.Requests = ph.Succeeded + ph.Shed + ph.Errors
	ph.ThroughputRPS = float64(ph.Succeeded) / elapsed.Seconds()
	if ph.Requests > 0 {
		ph.ShedRate = float64(ph.Shed) / float64(ph.Requests)
	}
	if ph.Succeeded > 0 {
		ph.HitRatioLocal = float64(ph.HitsLocal) / float64(ph.Succeeded)
		ph.HitRatioPeer = float64(ph.HitsPeer) / float64(ph.Succeeded)
	}
	sort.Float64s(all)
	ph.P50Ms = percentile(all, 0.50)
	ph.P95Ms = percentile(all, 0.95)
	ph.P99Ms = percentile(all, 0.99)
	return ph
}

func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}

// ---- in-process cluster harness -------------------------------------

type inprocConfig struct {
	workers     int
	queueDepth  int
	cacheBytes  int64
	replication int
	peerTimeout time.Duration
	capRPS      float64
	retries     int
}

type replicaProc struct {
	id      string
	srv     *serve.Server
	peering *cluster.Peering
	httpSrv *http.Server
	url     string
}

// pacer is the per-replica admission capacity model: a token bucket at
// a fixed rate with single-token grain, implemented as virtual-time
// pacing. It applies only to client-facing run/sweep traffic.
type pacer struct {
	mu       sync.Mutex
	next     time.Time
	interval time.Duration
}

func (p *pacer) wait() {
	p.mu.Lock()
	now := time.Now()
	if p.next.Before(now) {
		p.next = now
	}
	sleep := p.next.Sub(now)
	p.next = p.next.Add(p.interval)
	p.mu.Unlock()
	if sleep > 0 {
		time.Sleep(sleep)
	}
}

func pacedHandler(h http.Handler, capRPS float64) http.Handler {
	if capRPS <= 0 {
		return h
	}
	p := &pacer{interval: time.Duration(float64(time.Second) / capRPS)}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case strings.HasSuffix(r.URL.Path, "/run"), strings.HasSuffix(r.URL.Path, "/sweep"):
			p.wait()
		}
		h.ServeHTTP(w, r)
	})
}

// runInprocPhase builds an n-replica peered cluster on ephemeral ports,
// drives the load, and tears the cluster down.
func runInprocPhase(ctx context.Context, n int, cfg inprocConfig, load loadConfig) (phaseReport, error) {
	listeners := make([]net.Listener, n)
	urls := make(map[string]string, n)
	ids := make([]string, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return phaseReport{}, err
		}
		listeners[i] = ln
		ids[i] = fmt.Sprintf("r%d", i)
		urls[ids[i]] = "http://" + ln.Addr().String()
	}

	replicas := make([]*replicaProc, n)
	for i := 0; i < n; i++ {
		var peering *cluster.Peering
		if n > 1 {
			var err error
			peering, err = cluster.New(cluster.Config{
				Self:        ids[i],
				Peers:       urls,
				Replication: cfg.replication,
				FillTimeout: cfg.peerTimeout,
				HTTPClient:  loadHTTPClient(load.conc),
			})
			if err != nil {
				return phaseReport{}, err
			}
		}
		sCfg := serve.Config{
			Workers:    cfg.workers,
			QueueDepth: cfg.queueDepth,
			CacheBytes: cfg.cacheBytes,
		}
		if peering != nil {
			sCfg.Peer = peering
		}
		srv := serve.New(sCfg)
		httpSrv := &http.Server{Handler: pacedHandler(srv.Handler(), cfg.capRPS)}
		replicas[i] = &replicaProc{
			id: ids[i], srv: srv, peering: peering, httpSrv: httpSrv, url: urls[ids[i]],
		}
		go httpSrv.Serve(listeners[i])
	}
	defer func() {
		for _, r := range replicas {
			shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			r.httpSrv.Shutdown(shutdownCtx)
			r.srv.Drain(shutdownCtx)
			if r.peering != nil {
				r.peering.Close()
			}
			cancel()
		}
	}()

	clients := make([]*client.Client, n)
	hc := loadHTTPClient(load.conc)
	for i, r := range replicas {
		opts := []client.Option{client.WithHTTPClient(hc)}
		opts = append(opts, retryOptions(cfg.retries, load.seed)...)
		clients[i] = client.New(r.url, opts...)
	}

	ph := runPhase(ctx, clients, load)
	ph.Replicas = n
	var peerAgg serve.PeerStats
	for _, r := range replicas {
		m := r.srv.Metrics()
		ph.Sims = append(ph.Sims, m.Runs)
		if m.Peer != nil {
			peerAgg.Replicas = m.Peer.Replicas
			peerAgg.Fills += m.Peer.Fills
			peerAgg.Hits += m.Peer.Hits
			peerAgg.Misses += m.Peer.Misses
			peerAgg.Errors += m.Peer.Errors
			peerAgg.Timeouts += m.Peer.Timeouts
			peerAgg.SkippedDown += m.Peer.SkippedDown
			peerAgg.Stores += m.Peer.Stores
			peerAgg.StoreErrors += m.Peer.StoreErrors
			peerAgg.StoreDropped += m.Peer.StoreDropped
			peerAgg.PeersDown += m.Peer.PeersDown
			peerAgg.BreakerOpens += m.Peer.BreakerOpens
			peerAgg.IntegrityDrops += m.Peer.IntegrityDrops
		}
	}
	if n > 1 {
		ph.Peer = &peerAgg
		ph.ErrorBudget.BreakerOpens = peerAgg.BreakerOpens
	}
	return ph, nil
}
