package main

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	hfstream "hfstream"
)

func TestSplitList(t *testing.T) {
	cases := []struct {
		raw  string
		want []string
	}{
		{"", nil},
		{" , ,", nil},
		{"a,b", []string{"a", "b"}},
		{" a , b ,", []string{"a", "b"}},
	}
	for _, c := range cases {
		got := splitList(c.raw)
		if len(got) != len(c.want) {
			t.Fatalf("splitList(%q) = %v, want %v", c.raw, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("splitList(%q) = %v, want %v", c.raw, got, c.want)
			}
		}
	}
}

func TestParseInts(t *testing.T) {
	got, err := parseInts("1, 3,8")
	if err != nil || len(got) != 3 || got[0] != 1 || got[1] != 3 || got[2] != 8 {
		t.Fatalf("parseInts = %v, %v", got, err)
	}
	for _, bad := range []string{"x", "0", "-2", "1,x"} {
		if _, err := parseInts(bad); err == nil {
			t.Fatalf("parseInts(%q) accepted", bad)
		}
	}
}

func TestExpandCells(t *testing.T) {
	// Explicit benches x designs, plus single and a staged variant:
	// 1 bench x (1 single + 2 designs + 2 staged) = 5 cells.
	cells, err := expandCells("bzip2", "EXISTING,SYNCOPTI", true, "3")
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 5 {
		t.Fatalf("got %d cells, want 5", len(cells))
	}
	for _, c := range cells {
		if _, err := c.Key(); err != nil {
			t.Fatalf("cell %+v has no key: %v", c, err)
		}
	}

	// Wildcards expand to the full registries.
	all, err := expandCells("*", "*", false, "")
	if err != nil {
		t.Fatal(err)
	}
	want := len(hfstream.Benchmarks()) * len(hfstream.Designs())
	if len(all) != want {
		t.Fatalf("wildcard universe = %d cells, want %d", len(all), want)
	}

	if _, err := expandCells("nosuchbench", "EXISTING", false, ""); err == nil {
		t.Fatal("unknown bench accepted")
	}
	if _, err := expandCells("bzip2", "", false, ""); err == nil {
		t.Fatal("empty universe accepted")
	}
}

func TestPercentile(t *testing.T) {
	if got := percentile(nil, 0.5); got != 0 {
		t.Fatalf("empty percentile = %v", got)
	}
	sorted := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := percentile(sorted, 0); got != 1 {
		t.Fatalf("p0 = %v", got)
	}
	if got := percentile(sorted, 1); got != 10 {
		t.Fatalf("p100 = %v", got)
	}
	if got := percentile(sorted, 0.5); got != 5 {
		t.Fatalf("p50 = %v", got)
	}
}

func TestPacerPacesToRate(t *testing.T) {
	// 1000 tokens/sec: 30 sequential waits past the first must take at
	// least ~29 ms of virtual time.
	p := &pacer{interval: time.Millisecond}
	start := time.Now()
	for i := 0; i < 30; i++ {
		p.wait()
	}
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Fatalf("30 waits at 1ms interval took only %v", elapsed)
	}
}

func TestPacedHandlerScopesToRunAndSweep(t *testing.T) {
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNoContent)
	})
	if got := pacedHandler(inner, 0); got == nil {
		t.Fatal("capRPS<=0 must still return a handler")
	}

	// 20 rps = 50 ms interval. Metrics-path requests are never paced;
	// back-to-back /run requests are.
	h := pacedHandler(inner, 20)
	get := func(path string) time.Duration {
		t0 := time.Now()
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		if rec.Code != http.StatusNoContent {
			t.Fatalf("GET %s = %d", path, rec.Code)
		}
		return time.Since(t0)
	}
	get("/v1/run") // may consume the initial token
	if d := get("/v1/metrics"); d > 25*time.Millisecond {
		t.Fatalf("metrics path was paced: %v", d)
	}
	if d := get("/v1/run"); d < 25*time.Millisecond {
		t.Fatalf("second /v1/run not paced: %v", d)
	}
}

// TestRunInprocPhases drives the same harness main uses: a 1-replica
// phase and a 3-replica peered phase over a tiny working set. This is a
// functional smoke (the SLO thresholds live in make load-smoke); here we
// only assert the closed loop works and the tallies are coherent.
func TestRunInprocPhases(t *testing.T) {
	if testing.Short() {
		t.Skip("drives real simulations")
	}
	cells, err := expandCells("bzip2", "EXISTING,MEMOPTI", true, "")
	if err != nil {
		t.Fatal(err)
	}
	load := loadConfig{cells: cells, conc: 4, duration: 400 * time.Millisecond, skew: 1.2, seed: 1}
	cfg := inprocConfig{
		workers:     1,
		queueDepth:  64,
		cacheBytes:  8 << 20,
		replication: 2,
		peerTimeout: 250 * time.Millisecond,
		capRPS:      0, // uncapped: this test is about correctness, not modeling
	}

	ph1, err := runInprocPhase(context.Background(), 1, cfg, load)
	if err != nil {
		t.Fatal(err)
	}
	if ph1.Replicas != 1 || ph1.Succeeded == 0 || ph1.Errors != 0 {
		t.Fatalf("1-replica phase: %+v", ph1)
	}
	if ph1.Requests != ph1.Succeeded+ph1.Shed+ph1.Errors {
		t.Fatalf("tally mismatch: %+v", ph1)
	}
	if ph1.Peer != nil {
		t.Fatal("single replica must not report peer stats")
	}
	if len(ph1.Sims) != 1 || ph1.Sims[0] == 0 || ph1.Sims[0] > uint64(len(cells)) {
		t.Fatalf("sims per replica = %v, want 1..%d sims on 1 replica", ph1.Sims, len(cells))
	}
	if ph1.P50Ms < 0 || ph1.P99Ms < ph1.P50Ms {
		t.Fatalf("percentiles incoherent: %+v", ph1)
	}

	ph3, err := runInprocPhase(context.Background(), 3, cfg, load)
	if err != nil {
		t.Fatal(err)
	}
	if ph3.Replicas != 3 || ph3.Succeeded == 0 || ph3.Errors != 0 {
		t.Fatalf("3-replica phase: %+v", ph3)
	}
	if len(ph3.Sims) != 3 {
		t.Fatalf("sims per replica = %v, want 3 entries", ph3.Sims)
	}
	if ph3.Peer == nil || ph3.Peer.Replicas != 3 {
		t.Fatalf("clustered phase must aggregate peer stats: %+v", ph3.Peer)
	}
	if got := ph3.Misses + ph3.HitsLocal + ph3.HitsPeer + ph3.Coalesced; got != ph3.Succeeded {
		t.Fatalf("provenance split %d != succeeded %d", got, ph3.Succeeded)
	}
}
