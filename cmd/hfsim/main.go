// Command hfsim runs one benchmark on one design point and prints the
// detailed result: cycles, per-core breakdowns, stall attribution,
// communication ratios and memory-system counters. It can also emit a
// Chrome trace_event JSON file of the run (load it in about:tracing or
// https://ui.perfetto.dev) and a machine-readable metrics snapshot.
//
// Usage:
//
//	hfsim -bench wc -design SYNCOPTI_SC+Q64
//	hfsim -bench mcf -design HEAVYWT -single
//	hfsim -bench wc -trace out.json
//	hfsim -bench wc -metrics -
//	hfsim -bench wc -diagnose diag.json
//	hfsim -list
//
// Exit status: 0 on success, 1 on usage or harness errors, 2 when the
// simulated machine deadlocked (the forensic diagnosis is printed and,
// with -diagnose, written as JSON), 3 when the run finished but the
// fabric never quiesced.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"hfstream"
	"hfstream/trace"
)

// writeDiagnosis serializes a forensic snapshot to path ("" = skip,
// "-" = stderr).
func writeDiagnosis(path string, d *hfstream.Diagnosis) {
	if path == "" || d == nil {
		return
	}
	buf, err := hfstream.DiagnosisJSON(d)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hfsim:", err)
		return
	}
	if path == "-" {
		os.Stderr.Write(buf)
		return
	}
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "hfsim:", err)
		return
	}
	fmt.Fprintf(os.Stderr, "hfsim: wrote diagnosis to %s\n", path)
}

func main() {
	var (
		benchName  = flag.String("bench", "wc", "benchmark name (see -list)")
		designName = flag.String("design", "SYNCOPTI", "design point (see -list)")
		single     = flag.Bool("single", false, "run the single-threaded baseline instead")
		list       = flag.Bool("list", false, "list benchmarks and design points")
		tracePath  = flag.String("trace", "", "write a Chrome trace_event JSON file of issue/stall/queue/bus events")
		traceCap   = flag.Int("tracecap", 0, "trace ring capacity in events (0 = default 64k; older events are dropped)")
		metrics    = flag.String("metrics", "", "write the metrics JSON snapshot to this file (\"-\" for stdout)")
		sample     = flag.Uint64("sample", 0, "sample throughput every N cycles and print sparklines")
		csv        = flag.Bool("csv", false, "with -sample: emit the samples as CSV instead")
		diagnose   = flag.String("diagnose", "", "write the structured deadlock/unquiesced diagnosis JSON to this file (\"-\" for stderr)")
	)
	flag.Parse()

	if *list {
		fmt.Println("benchmarks:")
		for _, b := range hfstream.Benchmarks() {
			fmt.Printf("  %-10s %-14s %s (%d%% of execution time)\n",
				b.Name(), b.Suite(), b.Function(), b.ExecPct())
		}
		fmt.Print("designs:")
		for _, d := range hfstream.Designs() {
			fmt.Printf(" %s", d.Name())
		}
		fmt.Println(" REGMAPPED NETQUEUE_<h>hop HEAVYWT_CENTRAL")
		return
	}

	b, err := hfstream.BenchmarkByName(*benchName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hfsim:", err)
		os.Exit(1)
	}
	d, err := hfstream.DesignByName(*designName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hfsim:", err)
		os.Exit(1)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var opts []hfstream.RunOpt
	if *sample > 0 {
		opts = append(opts, hfstream.WithSampleInterval(*sample))
	}
	var buf *trace.Sink
	if *tracePath != "" {
		buf = trace.NewBuffer(*traceCap)
		opts = append(opts, hfstream.WithTrace(buf))
	}
	if *metrics != "" {
		mf := os.Stdout
		if *metrics != "-" {
			mf, err = os.Create(*metrics)
			if err != nil {
				fmt.Fprintln(os.Stderr, "hfsim:", err)
				os.Exit(1)
			}
			defer mf.Close()
		}
		opts = append(opts, hfstream.WithMetrics(mf))
	}

	var res hfstream.Result
	if *single {
		res, err = hfstream.RunSingleThreadedCtx(ctx, b, opts...)
	} else {
		res, err = hfstream.RunCtx(ctx, b, d, opts...)
	}
	if err != nil {
		// A deadlock carries the full forensic snapshot: render it, write
		// the machine-readable form if asked, and exit with a dedicated
		// status so harnesses can tell "hung machine" from "bad flags".
		var dl *hfstream.DeadlockError
		if errors.As(err, &dl) && dl.Diag != nil {
			fmt.Fprintf(os.Stderr, "hfsim: deadlock detected\n%s", dl.Diag.String())
			writeDiagnosis(*diagnose, dl.Diag)
			os.Exit(2)
		}
		fmt.Fprintln(os.Stderr, "hfsim:", err)
		os.Exit(1)
	}
	unquiesced := false
	if res.UnquiescedExit {
		unquiesced = true
		fmt.Fprintf(os.Stderr, "hfsim: warning: cores done but fabric never quiesced\n%s", res.UnquiescedDetail)
		writeDiagnosis(*diagnose, res.Diagnosis)
	}
	for _, s := range res.FaultLog {
		fmt.Fprintf(os.Stderr, "hfsim: fault fired: %s\n", s)
	}
	defer func() {
		if unquiesced {
			os.Exit(3)
		}
	}()
	if buf != nil {
		f, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hfsim:", err)
			os.Exit(1)
		}
		werr := trace.WriteChrome(f, buf.Events(), buf.Dropped())
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintln(os.Stderr, "hfsim:", werr)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "hfsim: wrote %d trace events to %s (%d dropped)\n",
			buf.Len(), *tracePath, buf.Dropped())
	}
	if *metrics == "-" {
		return
	}
	if *sample > 0 && *csv {
		fmt.Print(res.TimeSeriesCSV(*sample))
		return
	}

	fmt.Printf("%s on %s: %d cycles (%d iterations, %.1f cycles/iter)\n",
		b.Name(), label(d, *single), res.Cycles, b.Iterations(),
		float64(res.Cycles)/float64(b.Iterations()))
	for i := range res.Breakdowns {
		role := "producer"
		if i == 1 {
			role = "consumer"
		}
		if *single {
			role = "single"
		}
		fmt.Printf("  core %d (%s): %s\n", i, role, res.Breakdowns[i].String())
		fmt.Printf("    instructions: %d (comm %d, ratio %.3f)\n",
			res.Instructions[i], res.CommInstructions[i], res.CommRatio(i))
		fmt.Printf("    issue cycles: %d of %d; stalls: %s\n",
			res.IssueCycles[i], res.CoreCycles[i], res.StallSummaries[i])
	}
	fmt.Printf("  bus: %d grants, %d beats, %d arbitration-wait cycles\n",
		res.BusGrants, res.BusBeats, res.BusArbWait)
	fmt.Printf("  L3: %d hits, %d misses; memory accesses: %d\n",
		res.L3Hits, res.L3Misses, res.MemAccesses)
	if !*single {
		fmt.Printf("  streaming: forwards %v, bulk ACKs %v, probes %v, stream-cache hits %v\n",
			res.WriteForwards, res.BulkAcks, res.Probes, res.StreamCacheHits)
		if res.SAFullStalls+res.SAEmptyStalls > 0 {
			fmt.Printf("  synchronization array: %d full stalls, %d empty stalls\n",
				res.SAFullStalls, res.SAEmptyStalls)
		}
	}
	if *sample > 0 {
		fmt.Print(res.TimeSeriesReport(*sample))
	}
}

func label(d hfstream.Design, single bool) string {
	if single {
		return "single-threaded baseline"
	}
	return d.Name()
}
