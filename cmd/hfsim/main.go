// Command hfsim runs one benchmark on one design point and prints the
// detailed result: cycles, per-core breakdowns, stall attribution,
// communication ratios and memory-system counters. It can also emit a
// Chrome trace_event JSON file of the run (load it in about:tracing or
// https://ui.perfetto.dev) and a machine-readable metrics snapshot.
//
// Usage:
//
//	hfsim -bench wc -design SYNCOPTI_SC+Q64
//	hfsim -bench mcf -design HEAVYWT -single
//	hfsim -bench wc -trace out.json
//	hfsim -bench wc -metrics -
//	hfsim -list
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"hfstream/internal/design"
	"hfstream/internal/exp"
	"hfstream/internal/sim"
	"hfstream/internal/trace"
	"hfstream/internal/workloads"
)

func designs() map[string]design.Config {
	m := map[string]design.Config{}
	for _, c := range design.StandardConfigs() {
		m[c.Name()] = c
	}
	return m
}

func main() {
	var (
		benchName  = flag.String("bench", "wc", "benchmark name (see -list)")
		designName = flag.String("design", "SYNCOPTI", "design point (see -list)")
		single     = flag.Bool("single", false, "run the single-threaded baseline instead")
		list       = flag.Bool("list", false, "list benchmarks and design points")
		tracePath  = flag.String("trace", "", "write a Chrome trace_event JSON file of issue/stall/queue/bus events")
		traceCap   = flag.Int("tracecap", 0, "trace ring capacity in events (0 = default 64k; older events are dropped)")
		metrics    = flag.String("metrics", "", "write the metrics JSON snapshot to this file (\"-\" for stdout)")
		sample     = flag.Uint64("sample", 0, "sample throughput every N cycles and print sparklines")
		csv        = flag.Bool("csv", false, "with -sample: emit the samples as CSV instead")
	)
	flag.Parse()

	ds := designs()
	if *list {
		fmt.Println("benchmarks:")
		for _, b := range workloads.All() {
			fmt.Printf("  %-10s %-14s %s (%d%% of execution time)\n", b.Name, b.Suite, b.Function, b.ExecPct)
		}
		names := make([]string, 0, len(ds))
		for n := range ds {
			names = append(names, n)
		}
		fmt.Println("designs:", strings.Join(names, " "))
		return
	}

	b, err := workloads.ByName(*benchName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hfsim:", err)
		os.Exit(1)
	}
	cfg, ok := ds[*designName]
	if !ok {
		fmt.Fprintf(os.Stderr, "hfsim: unknown design %q (try -list)\n", *designName)
		os.Exit(1)
	}

	opts := exp.RunOpts{SampleInterval: *sample}
	if *tracePath != "" {
		opts.Trace = trace.NewBuffer(*traceCap)
	}
	var res *sim.Result
	if *single {
		res, err = exp.RunSingleOpts(context.Background(), b, opts)
	} else {
		res, err = exp.RunBenchmarkOpts(context.Background(), b, cfg, opts)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "hfsim:", err)
		os.Exit(1)
	}
	if res.UnquiescedExit {
		fmt.Fprintf(os.Stderr, "hfsim: warning: cores done but fabric never quiesced\n%s", res.UnquiescedDetail)
	}
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hfsim:", err)
			os.Exit(1)
		}
		werr := trace.WriteChrome(f, res.Trace.Events(), res.Trace.Dropped())
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintln(os.Stderr, "hfsim:", werr)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "hfsim: wrote %d trace events to %s (%d dropped)\n",
			res.Trace.Len(), *tracePath, res.Trace.Dropped())
	}
	if *metrics != "" {
		m := res.Metrics()
		m.Benchmark = b.Name
		m.Design = label(cfg, *single)
		buf, err := sim.MetricsJSON(m)
		if err == nil && *metrics == "-" {
			_, err = os.Stdout.Write(buf)
		} else if err == nil {
			err = os.WriteFile(*metrics, buf, 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "hfsim:", err)
			os.Exit(1)
		}
		if *metrics == "-" {
			return
		}
	}
	if *sample > 0 && *csv {
		fmt.Print(res.CSV(*sample))
		return
	}

	fmt.Printf("%s on %s: %d cycles (%d iterations, %.1f cycles/iter)\n",
		b.Name, label(cfg, *single), res.Cycles, b.Iterations,
		float64(res.Cycles)/float64(b.Iterations))
	for i := range res.Breakdowns {
		role := "producer"
		if i == 1 {
			role = "consumer"
		}
		if *single {
			role = "single"
		}
		fmt.Printf("  core %d (%s): %s\n", i, role, res.Breakdowns[i].String())
		fmt.Printf("    instructions: %d (comm %d, ratio %.3f)\n",
			res.Issued[i], res.IssuedComm[i], res.CommRatio(i))
		fmt.Printf("    issue cycles: %d of %d; stalls: %s\n",
			res.IssueCycles[i], res.CoreCycles[i], res.Stalls[i].Summary())
	}
	fmt.Printf("  bus: %d grants, %d beats, %d arbitration-wait cycles\n",
		res.BusGrants, res.BusBeats, res.BusArbWait)
	fmt.Printf("  L3: %d hits, %d misses; memory accesses: %d\n",
		res.L3Hits, res.L3Misses, res.MemAccesses)
	if !*single {
		fmt.Printf("  streaming: forwards %v, bulk ACKs %v, probes %v, stream-cache hits %v\n",
			res.WrFwds, res.BulkAcks, res.Probes, res.SCHits)
		if res.SAFullStalls+res.SAEmptyStalls > 0 {
			fmt.Printf("  synchronization array: %d full stalls, %d empty stalls\n",
				res.SAFullStalls, res.SAEmptyStalls)
		}
	}
	if *sample > 0 {
		fmt.Print(res.TraceReport(*sample))
	}
}

func label(cfg design.Config, single bool) string {
	if single {
		return "single-threaded baseline"
	}
	return cfg.Name()
}
