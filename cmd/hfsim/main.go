// Command hfsim runs one benchmark on one design point and prints the
// detailed result: cycles, per-core breakdowns, communication ratios and
// memory-system counters.
//
// Usage:
//
//	hfsim -bench wc -design SYNCOPTI_SC+Q64
//	hfsim -bench mcf -design HEAVYWT -single
//	hfsim -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"hfstream/internal/design"
	"hfstream/internal/exp"
	"hfstream/internal/sim"
	"hfstream/internal/workloads"
)

func designs() map[string]design.Config {
	m := map[string]design.Config{}
	for _, c := range []design.Config{
		design.ExistingConfig(), design.MemOptiConfig(), design.SyncOptiConfig(),
		design.SyncOptiQ64Config(), design.SyncOptiSCConfig(),
		design.SyncOptiSCQ64Config(), design.HeavyWTConfig(),
	} {
		m[c.Name()] = c
	}
	return m
}

func main() {
	var (
		benchName  = flag.String("bench", "wc", "benchmark name (see -list)")
		designName = flag.String("design", "SYNCOPTI", "design point (see -list)")
		single     = flag.Bool("single", false, "run the single-threaded baseline instead")
		list       = flag.Bool("list", false, "list benchmarks and design points")
		trace      = flag.Uint64("trace", 0, "sample throughput every N cycles and print sparklines")
		csv        = flag.Bool("csv", false, "with -trace: emit the samples as CSV instead")
	)
	flag.Parse()

	ds := designs()
	if *list {
		fmt.Println("benchmarks:")
		for _, b := range workloads.All() {
			fmt.Printf("  %-10s %-14s %s (%d%% of execution time)\n", b.Name, b.Suite, b.Function, b.ExecPct)
		}
		names := make([]string, 0, len(ds))
		for n := range ds {
			names = append(names, n)
		}
		fmt.Println("designs:", strings.Join(names, " "))
		return
	}

	b, err := workloads.ByName(*benchName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hfsim:", err)
		os.Exit(1)
	}
	cfg, ok := ds[*designName]
	if !ok {
		fmt.Fprintf(os.Stderr, "hfsim: unknown design %q (try -list)\n", *designName)
		os.Exit(1)
	}

	var res *sim.Result
	if *single {
		res, err = exp.RunSingle(b)
	} else {
		res, err = exp.RunBenchmarkSampled(b, cfg, *trace)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "hfsim:", err)
		os.Exit(1)
	}
	if res.UnquiescedExit {
		fmt.Fprintf(os.Stderr, "hfsim: warning: cores done but fabric never quiesced\n%s", res.UnquiescedDetail)
	}
	if *trace > 0 && *csv {
		fmt.Print(res.CSV(*trace))
		return
	}

	fmt.Printf("%s on %s: %d cycles (%d iterations, %.1f cycles/iter)\n",
		b.Name, label(cfg, *single), res.Cycles, b.Iterations,
		float64(res.Cycles)/float64(b.Iterations))
	for i := range res.Breakdowns {
		role := "producer"
		if i == 1 {
			role = "consumer"
		}
		if *single {
			role = "single"
		}
		fmt.Printf("  core %d (%s): %s\n", i, role, res.Breakdowns[i].String())
		fmt.Printf("    instructions: %d (comm %d, ratio %.3f)\n",
			res.Issued[i], res.IssuedComm[i], res.CommRatio(i))
	}
	fmt.Printf("  bus: %d grants, %d beats, %d arbitration-wait cycles\n",
		res.BusGrants, res.BusBeats, res.BusArbWait)
	fmt.Printf("  L3: %d hits, %d misses; memory accesses: %d\n",
		res.L3Hits, res.L3Misses, res.MemAccesses)
	if !*single {
		fmt.Printf("  streaming: forwards %v, bulk ACKs %v, probes %v, stream-cache hits %v\n",
			res.WrFwds, res.BulkAcks, res.Probes, res.SCHits)
		if res.SAFullStalls+res.SAEmptyStalls > 0 {
			fmt.Printf("  synchronization array: %d full stalls, %d empty stalls\n",
				res.SAFullStalls, res.SAEmptyStalls)
		}
	}
	if *trace > 0 {
		fmt.Print(res.TraceReport(*trace))
	}
}

func label(cfg design.Config, single bool) string {
	if single {
		return "single-threaded baseline"
	}
	return cfg.Name()
}
