// Command hfdswp inspects the DSWP partitioner: for each benchmark (or a
// named one) it prints the pipeline partition — stage assignment, queue
// count, condition handling — and optionally the generated thread
// programs.
//
// Usage:
//
//	hfdswp                      # summary for every benchmark
//	hfdswp -bench wc -asm       # one benchmark with full listings
//	hfdswp -bench fft2 -stages 3
package main

import (
	"flag"
	"fmt"
	"os"

	"hfstream/internal/dswp"
	"hfstream/internal/workloads"
)

func main() {
	var (
		benchName = flag.String("bench", "", "benchmark to inspect (default: all)")
		stages    = flag.Int("stages", 2, "pipeline stages")
		showAsm   = flag.Bool("asm", false, "print the generated thread programs")
	)
	flag.Parse()

	var list []*workloads.Benchmark
	if *benchName != "" {
		b, err := workloads.ByName(*benchName)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hfdswp:", err)
			os.Exit(1)
		}
		list = []*workloads.Benchmark{b}
	} else {
		list = workloads.All()
	}

	for _, b := range list {
		if b.Loop == nil {
			fmt.Printf("%-10s hand-partitioned (nested loop); no IR to inspect\n", b.Name)
			continue
		}
		res, err := dswp.PartitionN(b.Loop, *stages)
		if err != nil {
			fmt.Printf("%-10s %v\n", b.Name, err)
			continue
		}
		counts := make([]int, *stages)
		for _, th := range res.Assignment {
			counts[th]++
		}
		fmt.Printf("%-10s stages=%d queues=%d condStreamed=%v replicated=%d nodes/stage=%v",
			b.Name, res.Stages, res.QueueCount, res.CondStreamed, len(res.Replicated), counts)
		sizes := ""
		for _, p := range res.Threads {
			sizes += fmt.Sprintf(" %d", len(p.Instrs))
		}
		fmt.Printf(" instrs/stage=[%s ]\n", sizes)
		if *showAsm {
			single, err := dswp.Single(b.Loop)
			if err == nil {
				fmt.Println(single)
			}
			for _, p := range res.Threads {
				fmt.Println(p)
			}
		}
	}
}
