// Command hfdswp inspects the DSWP partitioner: for each benchmark (or a
// named one) it prints the pipeline partition — stage assignment, queue
// count, condition handling — and optionally the generated thread
// programs.
//
// Usage:
//
//	hfdswp                      # summary for every benchmark
//	hfdswp -bench wc -asm       # one benchmark with full listings
//	hfdswp -bench fft2 -stages 3
//	hfdswp -bench wc -run       # also simulate the 2-stage pipeline and
//	                            # show where each stage stalls
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"hfstream"
	"hfstream/internal/dswp"
	"hfstream/internal/workloads"
)

func main() {
	var (
		benchName = flag.String("bench", "", "benchmark to inspect (default: all)")
		stages    = flag.Int("stages", 2, "pipeline stages")
		showAsm   = flag.Bool("asm", false, "print the generated thread programs")
		runSim    = flag.Bool("run", false, "simulate the 2-stage pipeline on SYNCOPTI and print per-stage stall attribution")
	)
	flag.Parse()

	var list []*workloads.Benchmark
	if *benchName != "" {
		b, err := workloads.ByName(*benchName)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hfdswp:", err)
			os.Exit(1)
		}
		list = []*workloads.Benchmark{b}
	} else {
		list = workloads.All()
	}

	for _, b := range list {
		if b.Loop == nil {
			fmt.Printf("%-10s hand-partitioned (nested loop); no IR to inspect\n", b.Name)
			if *runSim {
				simulate(b)
			}
			continue
		}
		res, err := dswp.PartitionN(b.Loop, *stages)
		if err != nil {
			fmt.Printf("%-10s %v\n", b.Name, err)
			continue
		}
		counts := make([]int, *stages)
		for _, th := range res.Assignment {
			counts[th]++
		}
		fmt.Printf("%-10s stages=%d queues=%d condStreamed=%v replicated=%d nodes/stage=%v",
			b.Name, res.Stages, res.QueueCount, res.CondStreamed, len(res.Replicated), counts)
		sizes := ""
		for _, p := range res.Threads {
			sizes += fmt.Sprintf(" %d", len(p.Instrs))
		}
		fmt.Printf(" instrs/stage=[%s ]\n", sizes)
		if *showAsm {
			single, err := dswp.Single(b.Loop)
			if err == nil {
				fmt.Println(single)
			}
			for _, p := range res.Threads {
				fmt.Println(p)
			}
		}
		if *runSim {
			simulate(b)
		}
	}
}

// simulate runs the standard 2-stage pipeline on SYNCOPTI and prints where
// each stage spends its cycles — the partition-quality view the stage
// assignment alone cannot give.
func simulate(b *workloads.Benchmark) {
	pb, err := hfstream.BenchmarkByName(b.Name)
	if err != nil {
		fmt.Printf("           run failed: %v\n", err)
		return
	}
	res, err := hfstream.RunCtx(context.Background(), pb, hfstream.SyncOpti)
	if err != nil {
		fmt.Printf("           run failed: %v\n", err)
		return
	}
	for i := range res.StallSummaries {
		fmt.Printf("           stage %d: %d cycles (%d issuing), stalls: %s\n",
			i, res.CoreCycles[i], res.IssueCycles[i], res.StallSummaries[i])
	}
}
