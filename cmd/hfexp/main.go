// Command hfexp regenerates the paper's evaluation: Tables 1-2 and
// Figures 3 and 6-12. With no flags it runs everything. Simulations are
// fanned across all cores by default; -j 1 reproduces the old serial
// behaviour (the figures are byte-identical either way). Ctrl-C cancels
// in-flight simulations cleanly.
//
// With -metrics it instead writes one machine-readable metrics JSON
// snapshot per (benchmark, design) pair — deterministic files CI diffs
// against the checked-in goldens in testdata/golden/.
//
// Usage:
//
//	hfexp [-j N] [-progress] [-table1] [-table2] [-fig3] [-fig6] [-fig7]
//	      [-fig8] [-fig9] [-fig10] [-fig11] [-fig12] [-scaling] [-stalls]
//	hfexp -metrics dir/ [-benches bzip2,adpcmdec]
//	hfexp -diagnose diag.json
//
// Exit status: 0 on success, 1 on usage or harness errors, 3 when any
// simulation in the grid deadlocked or finished without quiescing — the
// first machine diagnosis is printed to stderr and, with -diagnose,
// written as JSON.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"sync"

	"hfstream/internal/exp"
	"hfstream/internal/sim"
)

func main() {
	var (
		table1   = flag.Bool("table1", false, "benchmark loop information")
		table2   = flag.Bool("table2", false, "baseline simulator configuration")
		fig3     = flag.Bool("fig3", false, "transit vs COMM-OP delay illustration")
		fig6     = flag.Bool("fig6", false, "transit-delay tolerance (HEAVYWT)")
		fig7     = flag.Bool("fig7", false, "design-point execution time breakdowns")
		fig8     = flag.Bool("fig8", false, "communication frequency")
		fig9     = flag.Bool("fig9", false, "HEAVYWT speedup over single-threaded")
		fig10    = flag.Bool("fig10", false, "4-cycle bus sensitivity")
		fig11    = flag.Bool("fig11", false, "128-byte bus bandwidth")
		fig12    = flag.Bool("fig12", false, "stream cache and queue size optimizations")
		scaling  = flag.Bool("scaling", false, "N-core scaling curves: speedup vs core count per design")
		abl      = flag.Bool("ablations", false, "design-space ablations beyond the paper's figures")
		costs    = flag.Bool("costs", false, "hardware/OS cost vs performance summary")
		stalls   = flag.Bool("stalls", false, "per-design stall-cycle attribution table")
		charts   = flag.Bool("charts", false, "render breakdown figures as ASCII stacked bars")
		workers  = flag.Int("j", 0, "simulation worker count (0 = all cores, 1 = serial)")
		progress = flag.Bool("progress", false, "report each simulation's wall time and cycles to stderr")
		metrics  = flag.String("metrics", "", "write per-(benchmark,design) metrics JSON snapshots into this directory and exit")
		benches  = flag.String("benches", "", "comma-separated benchmark subset for -metrics (default: all)")
		diagnose = flag.String("diagnose", "", "write the first deadlock/unquiesced diagnosis JSON to this file (\"-\" for stderr)")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	exp.SetParallelism(*workers)
	exp.SetWarnHook(func(msg string) {
		fmt.Fprintln(os.Stderr, "hfexp: warning:", msg)
	})
	// Capture the first forensic snapshot any job produces: jobs run
	// concurrently, and one bad machine is enough to explain a grid
	// failure. Exit status 3 distinguishes "a simulation deadlocked or
	// never quiesced" from usage errors.
	var diagMu sync.Mutex
	var firstDiag *sim.Diagnosis
	var firstDiagJob string
	exp.SetDiagnosisHook(func(job string, d *sim.Diagnosis) {
		diagMu.Lock()
		defer diagMu.Unlock()
		if firstDiag == nil {
			firstDiag, firstDiagJob = d, job
		}
	})
	sawDiagnosis := func() bool {
		diagMu.Lock()
		defer diagMu.Unlock()
		if firstDiag == nil {
			return false
		}
		fmt.Fprintf(os.Stderr, "hfexp: %s produced a machine diagnosis:\n%s", firstDiagJob, firstDiag.String())
		if *diagnose != "" {
			buf, err := sim.DiagnosisJSON(firstDiag)
			if err != nil {
				fmt.Fprintln(os.Stderr, "hfexp:", err)
			} else if *diagnose == "-" {
				os.Stderr.Write(buf)
			} else if err := os.WriteFile(*diagnose, buf, 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "hfexp:", err)
			} else {
				fmt.Fprintf(os.Stderr, "hfexp: wrote diagnosis to %s\n", *diagnose)
			}
		}
		return true
	}
	if *progress {
		exp.SetProgress(func(done, total int, r exp.JobResult) {
			if r.Err != nil {
				fmt.Fprintf(os.Stderr, "[%d/%d] %-28s FAILED after %7.1fms: %v\n",
					done, total, r.Job.Name(), float64(r.Wall.Microseconds())/1000, r.Err)
				return
			}
			fmt.Fprintf(os.Stderr, "[%d/%d] %-28s %9d cycles  %7.1fms\n",
				done, total, r.Job.Name(), r.Res.Cycles, float64(r.Wall.Microseconds())/1000)
		})
	}

	if *metrics != "" {
		var names []string
		if *benches != "" {
			names = strings.Split(*benches, ",")
		}
		if err := exp.WriteMetricsDir(ctx, *metrics, names); err != nil {
			fmt.Fprintln(os.Stderr, "hfexp:", err)
			if sawDiagnosis() {
				os.Exit(3)
			}
			os.Exit(1)
		}
		if sawDiagnosis() {
			os.Exit(3)
		}
		return
	}

	all := !(*table1 || *table2 || *fig3 || *fig6 || *fig7 || *fig8 ||
		*fig9 || *fig10 || *fig11 || *fig12 || *scaling || *abl || *costs || *stalls)

	type job struct {
		on  bool
		run func() (string, error)
	}
	renderFig := tableCtx[*exp.BreakdownFigure](ctx)
	if *charts {
		renderFig = chartCtx(ctx)
	}
	jobs := []job{
		{*table1 || all, func() (string, error) { return exp.Table1(), nil }},
		{*table2 || all, func() (string, error) { return exp.Table2(), nil }},
		{*fig3 || all, func() (string, error) { return exp.Fig3().Table(), nil }},
		{*fig6 || all, tableCtx[*exp.Fig6Result](ctx)(exp.Fig6Ctx)},
		{*fig7 || all, renderFig(exp.Fig7Ctx)},
		{*fig8 || all, tableCtx[*exp.Fig8Result](ctx)(exp.Fig8Ctx)},
		{*fig9 || all, tableCtx[*exp.Fig9Result](ctx)(exp.Fig9Ctx)},
		{*fig10 || all, renderFig(exp.Fig10Ctx)},
		{*fig11 || all, renderFig(exp.Fig11Ctx)},
		{*fig12 || all, tableCtx[*exp.Fig12Result](ctx)(exp.Fig12Ctx)},
		{*scaling || all, tableCtx[*exp.ScalingResult](ctx)(exp.ScalingCtx)},
		{*stalls || all, tableOf(exp.StallBreakdown)},
		{*abl, tableOf(exp.AblationQLU)},
		{*abl, tableOf(exp.AblationBusPipelining)},
		{*abl, tableOf(exp.AblationRegMapped)},
		{*abl, tableOf(exp.AblationCentralizedStore)},
		{*abl, tableOf(exp.AblationStreamCacheSize)},
		{*abl, tableOf(exp.AblationNetQueue)},
		{*abl, tableOf(exp.AblationProbeTimeout)},
		{*abl, tableOf(exp.AblationStages)},
		{*costs, tableOf(exp.Costs)},
	}
	for _, j := range jobs {
		if !j.on {
			continue
		}
		out, err := j.run()
		if err != nil {
			fmt.Fprintln(os.Stderr, "hfexp:", err)
			if sawDiagnosis() {
				os.Exit(3)
			}
			os.Exit(1)
		}
		fmt.Println(out)
	}
	if sawDiagnosis() {
		os.Exit(3)
	}
}

// tabler is any experiment result that renders itself.
type tabler interface{ Table() string }

func tableOf[T tabler](f func() (T, error)) func() (string, error) {
	return func() (string, error) {
		r, err := f()
		if err != nil {
			return "", err
		}
		return r.Table(), nil
	}
}

// tableCtx is tableOf for the cancellable figure variants: it binds ctx
// and adapts a func(ctx) (T, error) into the job runner shape.
func tableCtx[T tabler](ctx context.Context) func(func(context.Context) (T, error)) func() (string, error) {
	return func(f func(context.Context) (T, error)) func() (string, error) {
		return func() (string, error) {
			r, err := f(ctx)
			if err != nil {
				return "", err
			}
			return r.Table(), nil
		}
	}
}

func chartCtx(ctx context.Context) func(func(context.Context) (*exp.BreakdownFigure, error)) func() (string, error) {
	return func(f func(context.Context) (*exp.BreakdownFigure, error)) func() (string, error) {
		return func() (string, error) {
			r, err := f(ctx)
			if err != nil {
				return "", err
			}
			return r.Chart(), nil
		}
	}
}
