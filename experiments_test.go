package hfstream

import (
	"context"
	"strings"
	"testing"
)

// pureExperiments are the table renderings that do no simulation.
var pureExperiments = map[string]bool{
	ExpTable1: true, ExpTable2: true, ExpFig3: true,
}

// TestRunExperimentAll smokes every registered experiment: each name must
// resolve, run, and render non-empty output mentioning no error text. The
// figure experiments simulate the full benchmark matrix, so -short keeps
// to the pure tables.
func TestRunExperimentAll(t *testing.T) {
	for _, name := range ExperimentNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			if testing.Short() && !pureExperiments[name] {
				t.Skipf("%s simulates the full matrix; skipped in -short", name)
			}
			out, err := RunExperiment(name)
			if err != nil {
				t.Fatal(err)
			}
			if strings.TrimSpace(out) == "" {
				t.Fatal("empty output")
			}
			if !strings.Contains(out, "\n") {
				t.Errorf("output is a single line: %q", out)
			}
		})
	}
}

func TestRunExperimentUnknown(t *testing.T) {
	_, err := RunExperiment("nope")
	if err == nil {
		t.Fatal("expected error for unknown experiment")
	}
	if !strings.Contains(err.Error(), "nope") {
		t.Errorf("error %q does not name the bad experiment", err)
	}
}

// A canceled context must abort figure experiments instead of running the
// full matrix; pure table experiments finish regardless.
func TestRunExperimentCtxCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunExperimentCtx(ctx, ExpFig9); err == nil {
		t.Error("canceled fig9 did not fail")
	}
	out, err := RunExperimentCtx(ctx, ExpTable1)
	if err != nil || out == "" {
		t.Errorf("canceled table1 = (%q, %v), want output", out, err)
	}
}
