package hfstream

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
)

// Spec describes one simulation request as plain data: which benchmark,
// which design point, and which run mode. It is the request schema of the
// serve package and the unit of result caching. Canonical renders a
// normalized byte form (names resolved to their canonical labels, zero
// fields dropped, fixed field order) and Key hashes it, so two Specs that
// mean the same run always produce the same key. The simulator is
// deterministic end to end (see RESILIENCE.md), so a Spec's key fully
// determines its metrics output — the property that makes caching served
// results sound.
type Spec struct {
	// Bench names the workload (see BenchmarkByName).
	Bench string `json:"bench"`
	// Design names the design point (see DesignByName). Required unless
	// Single is set, in which case it must be empty: the single-threaded
	// baseline always runs on the EXISTING machine, and silently accepting
	// a design would alias two different-looking requests.
	Design string `json:"design,omitempty"`
	// Single runs the unpartitioned single-threaded baseline instead of
	// the pipelined two-thread version.
	Single bool `json:"single,omitempty"`
	// Stages, when >= 2, partitions the kernel into that many pipeline
	// stages (see RunStaged); 0 is the standard two-thread run. 1 is
	// rejected rather than aliased to either mode.
	Stages int `json:"stages,omitempty"`
}

// Normalize validates the spec and returns a copy with every name
// resolved to its canonical label, so that any two specs describing the
// same run normalize to identical values.
func (s Spec) Normalize() (Spec, error) {
	b, err := BenchmarkByName(s.Bench)
	if err != nil {
		return Spec{}, err
	}
	s.Bench = b.Name()
	if s.Stages < 0 || s.Stages == 1 {
		return Spec{}, fmt.Errorf("hfstream: spec stages must be 0 (pipelined) or >= 2, got %d", s.Stages)
	}
	if s.Single {
		if s.Design != "" {
			return Spec{}, fmt.Errorf("hfstream: single-threaded spec must not name a design (got %q; the baseline always runs on EXISTING)", s.Design)
		}
		if s.Stages != 0 {
			return Spec{}, fmt.Errorf("hfstream: single-threaded spec cannot be staged (stages=%d)", s.Stages)
		}
		return s, nil
	}
	d, err := DesignByName(s.Design)
	if err != nil {
		return Spec{}, err
	}
	if s.Stages >= 2 && (d.cfg.Cores >= 3 || d.cfg.Parallel) {
		return Spec{}, fmt.Errorf("hfstream: spec stages=%d conflicts with multi-core design %q (its core count is part of the design name)", s.Stages, d.Name())
	}
	s.Design = d.Name()
	return s, nil
}

// Canonical returns the spec's canonical byte form: the normalized spec
// marshaled as compact JSON with struct-declaration field order. Two
// specs describing the same run — whatever field order, name alias or
// explicit zero value they were written with — canonicalize to the same
// bytes.
func (s Spec) Canonical() ([]byte, error) {
	n, err := s.Normalize()
	if err != nil {
		return nil, err
	}
	return json.Marshal(n)
}

// Key returns the spec's content address: the lowercase hex SHA-256 of
// its canonical form. Because the simulator is deterministic, the key
// fully determines the run's metrics snapshot.
func (s Spec) Key() (string, error) {
	c, err := s.Canonical()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(c)
	return hex.EncodeToString(sum[:]), nil
}

// RunCtx executes the described run: RunSingleThreadedCtx for Single,
// RunStagedCtx when Stages >= 2, and the standard pipelined RunCtx
// otherwise. Options pass through unchanged, so a Spec round-tripped
// through the serve package produces byte-identical WithMetrics output to
// calling the API directly.
func (s Spec) RunCtx(ctx context.Context, opts ...RunOpt) (Result, error) {
	n, err := s.Normalize()
	if err != nil {
		return Result{}, err
	}
	b, err := BenchmarkByName(n.Bench)
	if err != nil {
		return Result{}, err
	}
	if n.Single {
		return RunSingleThreadedCtx(ctx, b, opts...)
	}
	d, err := DesignByName(n.Design)
	if err != nil {
		return Result{}, err
	}
	if n.Stages >= 2 {
		return RunStagedCtx(ctx, b, d, n.Stages, opts...)
	}
	return RunCtx(ctx, b, d, opts...)
}
