// Package trace records cycle-level simulator events — instruction issue,
// operand writeback, queue operations, bus grants and stall runs — in a
// bounded ring buffer, and exports them in Chrome's trace_event JSON format
// so a run can be inspected in about:tracing or Perfetto.
//
// Recording is allocation-light and bounded: the ring keeps the most recent
// events and counts how many older ones it overwrote, so tracing a long run
// costs a fixed amount of memory and the tail of the execution (usually the
// interesting part for drain and deadlock analysis) is always retained.
package trace

// Kind classifies a trace event.
type Kind uint8

// Event kinds.
const (
	// KindIssue is one instruction leaving the issue stage.
	KindIssue Kind = iota
	// KindRetire is an in-flight token (load or consume result) writing back.
	KindRetire
	// KindQueueOp is a produce or consume accepted by the streaming device.
	KindQueueOp
	// KindBusGrant is a shared-bus address-phase grant.
	KindBusGrant
	// KindStall is a run of consecutive zero-issue cycles with one blocking
	// reason; Dur carries the run length.
	KindStall

	numKinds
)

// String names the kind (also the Chrome "cat" field).
func (k Kind) String() string {
	switch k {
	case KindIssue:
		return "issue"
	case KindRetire:
		return "retire"
	case KindQueueOp:
		return "queue-op"
	case KindBusGrant:
		return "bus-grant"
	case KindStall:
		return "stall"
	default:
		return "unknown"
	}
}

// KindFromString inverts Kind.String (ok=false for unknown names).
func KindFromString(s string) (Kind, bool) {
	for k := Kind(0); k < numKinds; k++ {
		if k.String() == s {
			return k, true
		}
	}
	return 0, false
}

// Event is one recorded occurrence. Fields not meaningful for a kind are
// zero (or -1 for PC/Q, which have meaningful zero values).
type Event struct {
	// Cycle is the CPU cycle the event occurred (for KindStall, the first
	// cycle of the run).
	Cycle uint64
	// Dur is the event length in cycles (0 renders as 1; stall runs use it).
	Dur uint64
	// Kind classifies the event.
	Kind Kind
	// Core is the core index, or the bus requester for KindBusGrant.
	Core int
	// PC is the program counter for issue events (-1 when not applicable).
	PC int
	// Q is the stream queue number for queue operations (-1 otherwise).
	Q int
	// Op is the instruction mnemonic, stall reason, or bus transaction kind.
	Op string
	// Val is a payload: writeback value, produced value, or bus address.
	Val uint64
}

// Sink is the event destination the top-level API's WithTrace option
// accepts. It is the ring buffer itself; the alias exists so call sites
// read as "where the trace goes" rather than "how it is stored".
type Sink = Buffer

// NewSink returns a Sink with the default capacity (see NewBuffer).
func NewSink() *Sink { return NewBuffer(0) }

// DefaultCap is the ring capacity used when NewBuffer is given a
// non-positive one (64k events).
const DefaultCap = 1 << 16

// Buffer is a bounded ring of events, safe for single-goroutine use (the
// simulator's cycle loop). When full it overwrites the oldest event.
type Buffer struct {
	evs     []Event
	start   int // index of the oldest event
	n       int // live event count
	dropped uint64
}

// NewBuffer returns a ring holding at most capacity events (DefaultCap if
// capacity <= 0).
func NewBuffer(capacity int) *Buffer {
	if capacity <= 0 {
		capacity = DefaultCap
	}
	return &Buffer{evs: make([]Event, capacity)}
}

// Add records an event, evicting the oldest if the ring is full.
func (b *Buffer) Add(e Event) {
	if b.n < len(b.evs) {
		b.evs[(b.start+b.n)%len(b.evs)] = e
		b.n++
		return
	}
	b.evs[b.start] = e
	b.start = (b.start + 1) % len(b.evs)
	b.dropped++
}

// Len returns the number of live events.
func (b *Buffer) Len() int { return b.n }

// Cap returns the ring capacity.
func (b *Buffer) Cap() int { return len(b.evs) }

// Dropped returns how many events were overwritten after the ring filled.
func (b *Buffer) Dropped() uint64 { return b.dropped }

// Events returns the live events oldest-first.
func (b *Buffer) Events() []Event {
	out := make([]Event, b.n)
	for i := 0; i < b.n; i++ {
		out[i] = b.evs[(b.start+i)%len(b.evs)]
	}
	return out
}
