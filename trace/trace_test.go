package trace

import (
	"encoding/json"
	"reflect"
	"testing"
)

func TestBufferKeepsLatest(t *testing.T) {
	b := NewBuffer(4)
	for i := 1; i <= 6; i++ {
		b.Add(Event{Cycle: uint64(i), Kind: KindIssue, PC: i, Q: -1, Op: "add"})
	}
	if b.Cap() != 4 {
		t.Errorf("cap = %d, want 4", b.Cap())
	}
	if b.Len() != 4 {
		t.Errorf("len = %d, want 4", b.Len())
	}
	if b.Dropped() != 2 {
		t.Errorf("dropped = %d, want 2", b.Dropped())
	}
	evs := b.Events()
	for i, want := range []uint64{3, 4, 5, 6} {
		if evs[i].Cycle != want {
			t.Errorf("event %d cycle = %d, want %d (oldest-first)", i, evs[i].Cycle, want)
		}
	}
}

func TestBufferDefaultCap(t *testing.T) {
	if got := NewBuffer(0).Cap(); got != DefaultCap {
		t.Errorf("cap = %d, want %d", got, DefaultCap)
	}
	if got := NewBuffer(-5).Cap(); got != DefaultCap {
		t.Errorf("cap = %d, want %d", got, DefaultCap)
	}
}

func TestKindStringRoundTrip(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		got, ok := KindFromString(k.String())
		if !ok || got != k {
			t.Errorf("KindFromString(%q) = %v, %v", k.String(), got, ok)
		}
	}
	if _, ok := KindFromString("bogus"); ok {
		t.Error("KindFromString accepted an unknown name")
	}
}

func TestChromeRoundTrip(t *testing.T) {
	events := []Event{
		{Cycle: 1, Kind: KindIssue, Core: 0, PC: 0, Q: -1, Op: "movi"},
		{Cycle: 2, Kind: KindQueueOp, Core: 0, PC: 1, Q: 3, Op: "produce", Val: 41},
		{Cycle: 2, Kind: KindBusGrant, Core: 1, PC: -1, Q: -1, Op: "BusRdX", Val: 0x1040},
		{Cycle: 3, Dur: 7, Kind: KindStall, Core: 1, PC: 2, Q: -1, Op: "queue-empty"},
		{Cycle: 9, Kind: KindRetire, Core: 1, PC: -1, Q: -1, Op: "writeback", Val: 41},
	}
	buf, err := ChromeJSON(events, 5)
	if err != nil {
		t.Fatal(err)
	}

	// The document must be the Chrome "JSON object format": a top-level
	// object whose traceEvents entries all carry ph and a dur >= 1 for
	// complete events.
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		Dropped     uint64           `json:"droppedEvents"`
	}
	if err := json.Unmarshal(buf, &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if doc.Dropped != 5 {
		t.Errorf("droppedEvents = %d, want 5", doc.Dropped)
	}
	var complete int
	for _, ce := range doc.TraceEvents {
		ph, _ := ce["ph"].(string)
		switch ph {
		case "M":
			continue
		case "X":
			complete++
			if dur, _ := ce["dur"].(float64); dur < 1 {
				t.Errorf("complete event %v has dur < 1", ce)
			}
		default:
			t.Errorf("unexpected phase %q in %v", ph, ce)
		}
	}
	if complete != len(events) {
		t.Errorf("%d complete events in JSON, want %d", complete, len(events))
	}

	got, dropped, err := ReadChrome(buf)
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 5 {
		t.Errorf("ReadChrome dropped = %d, want 5", dropped)
	}
	if !reflect.DeepEqual(got, events) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, events)
	}
}

func TestReadChromeRejectsGarbage(t *testing.T) {
	if _, _, err := ReadChrome([]byte("not json")); err == nil {
		t.Error("ReadChrome accepted garbage")
	}
	bad := []byte(`{"traceEvents":[{"ph":"X","cat":"martian","ts":1}]}`)
	if _, _, err := ReadChrome(bad); err == nil {
		t.Error("ReadChrome accepted an unknown category")
	}
}
