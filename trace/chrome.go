package trace

import (
	"encoding/json"
	"fmt"
	"io"
)

// The exporter emits the Chrome trace_event "JSON object format": a
// top-level object with a traceEvents array. Cores map to pid 0 (one tid
// per core), the bus to pid 1, and one cycle is rendered as one
// microsecond so Perfetto's zoom levels behave sensibly. Every payload
// field is mirrored into args so ReadChrome can reconstruct the events.

const (
	pidCores = 0
	pidBus   = 1
)

type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   uint64         `json:"ts"`
	Dur  uint64         `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	Dropped         uint64        `json:"droppedEvents,omitempty"`
}

func toChrome(e Event) chromeEvent {
	ce := chromeEvent{
		Name: e.Op,
		Cat:  e.Kind.String(),
		Ph:   "X",
		Ts:   e.Cycle,
		Dur:  e.Dur,
		Pid:  pidCores,
		Tid:  e.Core,
		Args: map[string]any{"cycle": e.Cycle},
	}
	if ce.Dur == 0 {
		ce.Dur = 1
	}
	if e.Kind == KindBusGrant {
		ce.Pid = pidBus
	}
	if e.Kind == KindStall {
		ce.Name = "stall:" + e.Op
	}
	ce.Args["op"] = e.Op
	if e.PC >= 0 {
		ce.Args["pc"] = e.PC
	}
	if e.Q >= 0 {
		ce.Args["q"] = e.Q
	}
	if e.Val != 0 {
		ce.Args["val"] = e.Val
	}
	return ce
}

// ChromeJSON serializes events (plus thread-naming metadata) as a Chrome
// trace_event JSON document. dropped, if non-zero, is recorded in the
// top-level droppedEvents field.
func ChromeJSON(events []Event, dropped uint64) ([]byte, error) {
	doc := chromeTrace{DisplayTimeUnit: "ms", Dropped: dropped}
	// Name the processes and the core threads that appear in the events.
	seen := map[int]bool{}
	meta := func(pid, tid int, key, name string) chromeEvent {
		return chromeEvent{
			Name: key, Ph: "M", Pid: pid, Tid: tid,
			Args: map[string]any{"name": name},
		}
	}
	doc.TraceEvents = append(doc.TraceEvents,
		meta(pidCores, 0, "process_name", "cores"),
		meta(pidBus, 0, "process_name", "bus"))
	for _, e := range events {
		if e.Kind == KindBusGrant || seen[e.Core] {
			continue
		}
		seen[e.Core] = true
		doc.TraceEvents = append(doc.TraceEvents,
			meta(pidCores, e.Core, "thread_name", fmt.Sprintf("core %d", e.Core)))
	}
	for _, e := range events {
		doc.TraceEvents = append(doc.TraceEvents, toChrome(e))
	}
	return json.MarshalIndent(&doc, "", " ")
}

// WriteChrome writes ChromeJSON(events, dropped) to w.
func WriteChrome(w io.Writer, events []Event, dropped uint64) error {
	buf, err := ChromeJSON(events, dropped)
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

// ReadChrome parses a document produced by ChromeJSON back into events
// (metadata records are skipped). It exists so tests and tools can
// round-trip traces without a browser.
func ReadChrome(data []byte) ([]Event, uint64, error) {
	var doc chromeTrace
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, 0, fmt.Errorf("trace: bad chrome document: %w", err)
	}
	var out []Event
	for _, ce := range doc.TraceEvents {
		if ce.Ph != "X" {
			continue
		}
		kind, ok := KindFromString(ce.Cat)
		if !ok {
			return nil, 0, fmt.Errorf("trace: unknown event category %q", ce.Cat)
		}
		e := Event{Cycle: ce.Ts, Kind: kind, Core: ce.Tid, PC: -1, Q: -1}
		if ce.Dur > 1 || kind == KindStall {
			e.Dur = ce.Dur
		}
		if op, ok := ce.Args["op"].(string); ok {
			e.Op = op
		}
		if pc, ok := ce.Args["pc"].(float64); ok {
			e.PC = int(pc)
		}
		if q, ok := ce.Args["q"].(float64); ok {
			e.Q = int(q)
		}
		if v, ok := ce.Args["val"].(float64); ok {
			e.Val = uint64(v)
		}
		out = append(out, e)
	}
	return out, doc.Dropped, nil
}
