package serve

// POST /sweep: a batch endpoint for the service's core use case —
// sweeping a (benchmarks × designs × options) grid. The grid expands
// into per-cell Specs, each cell is content-addressed exactly like a
// /run request (same cache, same singleflight group, same pool), and
// cell results stream back as NDJSON metrics/error events in completion
// order, closing with a done event that tallies the sweep.
//
// Because cells share the /run cache keys, a re-submitted sweep only
// simulates the cache misses, concurrent sweeps sharing cells coalesce
// onto one run per cell, and a sweep's cells are interchangeable with
// individual /run requests — byte for byte, which the differential
// battery asserts.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"

	"hfstream"
)

// maxSweepCells bounds one sweep's expanded grid; a larger request is
// rejected up front rather than half-streamed.
const maxSweepCells = 4096

// SweepRequest is the /sweep body: the grid axes. "*" in Benches or
// Designs expands to every registered benchmark or design point.
type SweepRequest struct {
	// Benches lists workload names (BenchmarkByName), or "*" for all.
	Benches []string `json:"benches"`
	// Designs lists design-point names (DesignByName), or "*" for all.
	// May be empty when Single is set.
	Designs []string `json:"designs,omitempty"`
	// Single additionally includes each benchmark's single-threaded
	// baseline cell.
	Single bool `json:"single,omitempty"`
	// Stages additionally includes, per (bench, design) pair, a staged
	// pipeline cell for each listed stage count (each must be >= 2).
	Stages []int `json:"stages,omitempty"`
}

// sweepCell is one grid position: its normalized spec and content key.
type sweepCell struct {
	spec hfstream.Spec
	key  string
}

// expandSweep turns the request into its deduplicated cell list, in
// deterministic grid order (benches outermost, then single, designs,
// stages). Any invalid name or stage count fails the whole sweep up
// front — nothing has streamed yet, so the client gets a plain 400.
func expandSweep(req SweepRequest) ([]sweepCell, error) {
	benches := req.Benches
	if len(benches) == 1 && benches[0] == "*" {
		benches = benches[:0]
		for _, b := range hfstream.Benchmarks() {
			benches = append(benches, b.Name())
		}
	}
	designs := req.Designs
	if len(designs) == 1 && designs[0] == "*" {
		designs = designs[:0]
		for _, d := range hfstream.Designs() {
			designs = append(designs, d.Name())
		}
	}
	if len(benches) == 0 {
		return nil, fmt.Errorf("sweep grid is empty: benches is required")
	}
	if len(designs) == 0 && !req.Single {
		return nil, fmt.Errorf("sweep grid is empty: designs or single is required")
	}
	if len(req.Stages) > 0 && len(designs) == 0 {
		return nil, fmt.Errorf("sweep stages require designs")
	}
	perBench := len(designs) * (1 + len(req.Stages))
	if req.Single {
		perBench++
	}
	if n := len(benches) * perBench; n > maxSweepCells {
		return nil, fmt.Errorf("sweep grid too large: up to %d cells, max %d", n, maxSweepCells)
	}

	var cells []sweepCell
	seen := make(map[string]bool)
	add := func(spec hfstream.Spec) error {
		n, err := spec.Normalize()
		if err != nil {
			return err
		}
		key, err := n.Key()
		if err != nil {
			return err
		}
		if !seen[key] {
			seen[key] = true
			cells = append(cells, sweepCell{spec: n, key: key})
		}
		return nil
	}
	for _, bench := range benches {
		if req.Single {
			if err := add(hfstream.Spec{Bench: bench, Single: true}); err != nil {
				return nil, err
			}
		}
		for _, design := range designs {
			if err := add(hfstream.Spec{Bench: bench, Design: design}); err != nil {
				return nil, err
			}
			for _, st := range req.Stages {
				if err := add(hfstream.Spec{Bench: bench, Design: design, Stages: st}); err != nil {
					return nil, err
				}
			}
		}
	}
	return cells, nil
}

// cellResult pairs a finished cell with its outcome and provenance.
type cellResult struct {
	cell sweepCell
	out  *outcome
	src  string
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeOutcome(w, "", "", errorOutcome(http.StatusMethodNotAllowed, codeBadRequest, "POST required", nil))
		return
	}
	s.requests.Add(1)
	s.sweeps.Add(1)
	var req SweepRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeOutcome(w, "", "", errorOutcome(http.StatusBadRequest, codeBadRequest, "request body: "+err.Error(), nil))
		return
	}
	cells, err := expandSweep(req)
	if err != nil {
		writeOutcome(w, "", "", errorOutcome(http.StatusBadRequest, codeBadRequest, err.Error(), nil))
		return
	}

	w.Header().Set("Content-Type", ndjsonContentType)
	sw := newStreamWriter(w)
	sw.begin()

	ctx, cancel := s.joinRequestContext(r)
	defer cancel()

	// Fan the cells out: a bounded set of coordinator goroutines pulls
	// grid positions and resolves each through the shared cache /
	// singleflight / pool path, so one sweep never floods the pool queue
	// past the worker count and every simulation still lands on the
	// exp.Pool with normal admission control.
	coordinators := s.cfg.Workers
	if coordinators > len(cells) {
		coordinators = len(cells)
	}
	work := make(chan sweepCell)
	results := make(chan cellResult)
	for i := 0; i < coordinators; i++ {
		go func() {
			for cell := range work {
				results <- s.resolveCell(ctx, cell)
			}
		}()
	}
	go func() {
		for _, cell := range cells {
			work <- cell
		}
		close(work)
	}()

	// Exactly one result arrives per cell: after a cancel, in-flight
	// cells stop through the run context and unstarted cells resolve to
	// immediate canceled outcomes, so this loop is bounded either way.
	done := StreamEvent{Type: eventDone, Status: http.StatusOK, Cells: len(cells)}
	for received := 0; received < len(cells); received++ {
		cr := <-results
		spec := cr.cell.spec
		sw.send(outcomeEvent(cr.out, cr.cell.key, cr.src, &spec))
		switch {
		case !cr.out.ok:
			done.Errors++
		case cr.src == "hit":
			done.Hits++
		case cr.src == "peer":
			done.PeerHits++
		case cr.src == "coalesced":
			done.Coalesced++
		default:
			done.Ran++
		}
	}
	sw.send(done)
}

// resolveCell serves one grid cell exactly as handleRun serves one spec:
// cache fast path, then singleflight onto the pool-executing runOne. A
// cell reached after the sweep's context died short-circuits to a
// canceled outcome — never cached, never submitted to the pool.
func (s *Server) resolveCell(ctx context.Context, cell sweepCell) cellResult {
	if body, ok := s.cache.Get(cell.key); ok {
		s.cacheHits.Add(1)
		return cellResult{cell, &outcome{status: http.StatusOK, body: body, ok: true}, "hit"}
	}
	if ctx.Err() != nil {
		return cellResult{cell, errorOutcome(statusClientClosed, codeCanceled,
			"sweep canceled before this cell ran", nil), "miss"}
	}
	out, joined := s.flights.do(cell.key, func() *outcome {
		return s.runOne(ctx, cell.key, cell.spec, nil)
	})
	src := out.source
	if joined {
		s.coalesced.Add(1)
		src = "coalesced"
	}
	return cellResult{cell, out, src}
}
