package serve

// Streaming mode: POST /run?stream=ndjson answers with line-delimited
// JSON events instead of one blocking body, so a client watching a long
// simulation sees signs of life (progress heartbeats) and the final
// metrics the moment they exist — the "results flow as they are
// produced" shape of the paper's streaming workloads, applied to the
// service itself.
//
// The stream is a sequence of typed events, one JSON object per line,
// with a strictly monotone seq starting at 0:
//
//	{"seq":0,"type":"progress","cycle":1000000,"instructions":83133}
//	{"seq":1,"type":"metrics","key":"ab12…","cache":"miss","status":200,"body":"{…}\n"}
//	{"seq":2,"type":"done","status":200}
//
// Event types:
//
//	progress  heartbeat from the running simulation (WithProgress); the
//	          cadence is the library default (every 1M simulated cycles)
//	          or the ?progress_every=N query parameter
//	metrics   one run's result: body carries, as a JSON string, the EXACT
//	          bytes the non-streaming /run response would have — the
//	          byte-equivalence the differential battery pins
//	done      terminal success marker (for /sweep it carries the tallies)
//	error     a failed run, same typed detail as the non-streaming error
//	          envelope; terminal for /run, per-cell for /sweep
//
// The body rides as a JSON string rather than embedded JSON because
// encoding/json compacts embedded RawMessage output, and the metrics
// snapshot is indented; string escaping round-trips the bytes exactly.
//
// Cancellation: the run is executed under a context joined to the HTTP
// request's, so a client disconnect closes sim.Config.Cancel and stops
// the simulation within its polling bound (1024 cycles) — a canceled
// run produces an error event with code "canceled" and is never cached.

import (
	"context"
	"encoding/json"
	"net/http"
	"strconv"

	"hfstream"
)

// ndjsonContentType labels streaming responses. Each line is one
// StreamEvent; the stream is flushed after every event.
const ndjsonContentType = "application/x-ndjson"

// streamEventBuffer bounds progress events queued between the simulation
// goroutine and the HTTP writer. The progress hook must never block the
// simulation, so events past the buffer are dropped — heartbeats are
// advisory; only metrics/done/error events are part of the contract.
const streamEventBuffer = 256

// Stream event types.
const (
	eventProgress = "progress"
	eventMetrics  = "metrics"
	eventDone     = "done"
	eventError    = "error"
)

// StreamEvent is one NDJSON line of a streaming response (see the
// package comment above for the per-type field population).
type StreamEvent struct {
	Seq  uint64 `json:"seq"`
	Type string `json:"type"`

	// progress fields.
	Cycle        uint64 `json:"cycle,omitempty"`
	Instructions uint64 `json:"instructions,omitempty"`

	// metrics / error fields. Spec is populated on /sweep cell events so
	// a client can tie a completion back to its grid cell; Key and Cache
	// are the X-Hfserve-Key / X-Hfserve-Cache equivalents; Body is the
	// exact non-streaming response body as a JSON string.
	Spec   *hfstream.Spec `json:"spec,omitempty"`
	Key    string         `json:"key,omitempty"`
	Cache  string         `json:"cache,omitempty"`
	Status int            `json:"status,omitempty"`
	Body   string         `json:"body,omitempty"`
	Error  *ErrorDetail   `json:"error,omitempty"`

	// done tallies (sweep): Cells is the grid size, Ran/Hits/PeerHits/
	// Coalesced its cache-provenance split, Errors the failed-cell count.
	Cells     int `json:"cells,omitempty"`
	Ran       int `json:"ran,omitempty"`
	Hits      int `json:"hits,omitempty"`
	PeerHits  int `json:"peer_hits,omitempty"`
	Coalesced int `json:"coalesced,omitempty"`
	Errors    int `json:"errors,omitempty"`
}

// streamHooks carries the per-request streaming knobs into the run seam:
// the progress callback (invoked on the simulation goroutine) and its
// cadence in cycles (0 = library default).
type streamHooks struct {
	progress func(hfstream.ProgressEvent)
	every    uint64
}

// streamWriter serializes events onto one HTTP response with monotone
// sequence numbers, flushing after each line. Writes after a client
// disconnect fail; the writer goes quiet rather than erroring out, and
// the simulation is stopped through the request context instead.
type streamWriter struct {
	w      http.ResponseWriter
	f      http.Flusher
	seq    uint64
	failed bool
}

func newStreamWriter(w http.ResponseWriter) *streamWriter {
	sw := &streamWriter{w: w}
	if f, ok := w.(http.Flusher); ok {
		sw.f = f
	}
	return sw
}

// begin commits the response: a stream is always HTTP 200 once event
// delivery starts (failures ride in error events), and the header flush
// must not wait for the first event — a client watching a long run
// needs the response open immediately.
func (sw *streamWriter) begin() {
	sw.w.WriteHeader(http.StatusOK)
	if sw.f != nil {
		sw.f.Flush()
	}
}

// send assigns the next sequence number and writes one event line. The
// seq still advances after a write failure so a partially-received
// stream never renumbers.
func (sw *streamWriter) send(ev StreamEvent) {
	ev.Seq = sw.seq
	sw.seq++
	if sw.failed {
		return
	}
	line, err := marshalEvent(ev)
	if err != nil {
		sw.failed = true
		return
	}
	if _, err := sw.w.Write(line); err != nil {
		sw.failed = true
		return
	}
	if sw.f != nil {
		sw.f.Flush()
	}
}

// marshalEvent renders one NDJSON line (object + newline).
func marshalEvent(ev StreamEvent) ([]byte, error) {
	b, err := json.Marshal(ev)
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// outcomeEvent converts a run outcome into its stream event: a metrics
// event carrying the exact response body on success, an error event
// carrying the typed detail otherwise.
func outcomeEvent(out *outcome, key, source string, spec *hfstream.Spec) StreamEvent {
	if out.ok {
		return StreamEvent{
			Type: eventMetrics, Spec: spec, Key: key, Cache: source,
			Status: out.status, Body: string(out.body),
		}
	}
	return StreamEvent{
		Type: eventError, Spec: spec, Key: key,
		Status: out.status, Error: decodeErrorDetail(out.body),
	}
}

// decodeErrorDetail recovers the typed detail from a rendered error
// envelope so stream events carry structure, not a quoted blob.
func decodeErrorDetail(body []byte) *ErrorDetail {
	var e ErrorEnvelope
	if err := json.Unmarshal(body, &e); err != nil || e.Error.Code == "" {
		return &ErrorDetail{Code: codeInternal, Message: string(body)}
	}
	return &e.Error
}

// parseProgressEvery reads the ?progress_every query parameter (cycles
// between progress events; 0 or absent keeps the library default).
func parseProgressEvery(r *http.Request) (uint64, bool) {
	raw := r.URL.Query().Get("progress_every")
	if raw == "" {
		return 0, true
	}
	n, err := strconv.ParseUint(raw, 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// joinRequestContext derives the job context for a streaming request:
// canceled when the client disconnects (request context) or when the
// server tears down jobs (baseCtx, the Drain-deadline path), whichever
// comes first.
func (s *Server) joinRequestContext(r *http.Request) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(r.Context())
	stop := context.AfterFunc(s.baseCtx, cancel)
	return ctx, func() { stop(); cancel() }
}

// streamRun is the streaming half of handleRun: same admission control,
// cache, coalescing and pool execution as the blocking path (runOne is
// shared), with progress events interleaved while the leader's
// simulation runs.
func (s *Server) streamRun(w http.ResponseWriter, r *http.Request, key string, spec hfstream.Spec) {
	every, ok := parseProgressEvery(r)
	if !ok {
		writeOutcome(w, key, "", errorOutcome(http.StatusBadRequest, codeBadRequest,
			"progress_every must be a non-negative integer", nil))
		return
	}
	s.streams.Add(1)

	w.Header().Set("Content-Type", ndjsonContentType)
	w.Header().Set("X-Hfserve-Key", key)
	sw := newStreamWriter(w)
	sw.begin()

	// Fast path: resident in the cache — one metrics event, no run, no
	// progress.
	if body, ok := s.cache.Get(key); ok {
		s.cacheHits.Add(1)
		sw.send(outcomeEvent(&outcome{status: http.StatusOK, body: body, ok: true}, key, "hit", nil))
		sw.send(StreamEvent{Type: eventDone, Status: http.StatusOK})
		return
	}

	ctx, cancel := s.joinRequestContext(r)
	defer cancel()

	// Progress events hop from the simulation goroutine to this writer
	// through a bounded buffer; the hook never blocks the simulation.
	events := make(chan hfstream.ProgressEvent, streamEventBuffer)
	hooks := &streamHooks{every: every, progress: func(ev hfstream.ProgressEvent) {
		select {
		case events <- ev:
		default:
		}
	}}

	type flightResult struct {
		out    *outcome
		joined bool
	}
	res := make(chan flightResult, 1)
	go func() {
		out, joined := s.flights.do(key, func() *outcome { return s.runOne(ctx, key, spec, hooks) })
		res <- flightResult{out, joined}
	}()

	var fr flightResult
	waiting := true
	for waiting {
		select {
		case ev := <-events:
			sw.send(StreamEvent{Type: eventProgress, Cycle: ev.Cycle, Instructions: ev.Instructions})
		case fr = <-res:
			waiting = false
		}
	}
	// The simulation finished before the flight resolved, so any events
	// still buffered precede the outcome; drain them so progress lines
	// never trail the result.
	for {
		select {
		case ev := <-events:
			sw.send(StreamEvent{Type: eventProgress, Cycle: ev.Cycle, Instructions: ev.Instructions})
			continue
		default:
		}
		break
	}

	src := fr.out.source
	if fr.joined {
		s.coalesced.Add(1)
		src = "coalesced"
	}
	sw.send(outcomeEvent(fr.out, key, src, nil))
	if fr.out.ok {
		sw.send(StreamEvent{Type: eventDone, Status: http.StatusOK})
	}
}
