package serve

// The cluster cache tier seam. A Server is clustered by handing Config a
// Peer implementation (serve/cluster provides the production one built
// on consistent-hash routing): on a local cache miss runOne calls
// Peer.Fill to ask the key's owner shard for the bytes before
// simulating, and publishes fresh local results through Peer.Store so
// the owners' caches converge. Determinism plus content addressing is
// what makes this sound — a Spec.Key fully determines its response
// bytes, so a peer's cached body is byte-identical to what a local
// simulation would produce, and no coherence protocol is needed.
//
// The server side of the tier is the /v1/peer/{key} endpoint below:
// GET serves the local cache only (it never simulates, so fill chains
// cannot recurse or amplify load), PUT installs a replica's fresh result
// into this shard's cache.

import (
	"context"
	"io"
	"net/http"
	"strings"
)

// Peer is the cluster cache tier a Server consults around its local
// cache. Implementations must be safe for concurrent use.
type Peer interface {
	// Fill fetches the cached bytes for key from the key's owner
	// shard(s). It must be bounded (its own timeout, independent of the
	// job budget) and must never fail a request: any error is reported
	// as a miss and the caller simulates locally.
	Fill(ctx context.Context, key string) ([]byte, bool)
	// Store publishes a locally computed result to the key's owner
	// shard(s). It must not block the serving path (queue or drop).
	Store(key string, body []byte)
	// Stats snapshots the tier's counters for /v1/metrics.
	Stats() PeerStats
}

// PeerStats is the peering tier's counter snapshot, surfaced under the
// "peer" field of /v1/metrics when clustering is enabled.
type PeerStats struct {
	// Replicas is the ring size including this replica.
	Replicas int `json:"replicas"`
	// Fills counts fill attempts (local misses that consulted a peer);
	// Hits/Misses split their outcomes. Errors counts transport
	// failures and Timeouts the subset that hit the fill deadline;
	// SkippedDown counts fills short-circuited because every candidate
	// owner was marked down.
	Fills       uint64 `json:"fills"`
	Hits        uint64 `json:"hits"`
	Misses      uint64 `json:"misses"`
	Errors      uint64 `json:"errors"`
	Timeouts    uint64 `json:"timeouts"`
	SkippedDown uint64 `json:"skipped_down"`
	// Stores counts successful publications to owner shards,
	// StoreErrors failed ones, StoreDropped publications dropped
	// because the async store queue was full.
	Stores       uint64 `json:"stores"`
	StoreErrors  uint64 `json:"store_errors"`
	StoreDropped uint64 `json:"store_dropped"`
	// PeersDown is the number of peers currently marked down.
	PeersDown int `json:"peers_down"`
}

// codeNotCached is the typed 404 of GET /v1/peer/{key}: the shard does
// not hold the key. Distinct from bad_request so a filling replica can
// tell "owner is healthy but cold" from "I sent garbage".
const codeNotCached = "not_cached"

// maxPeerBodyBytes bounds a PUT /v1/peer body; metrics snapshots are a
// few KiB, so anything near this bound is a protocol error.
const maxPeerBodyBytes = 8 << 20

// isSpecKey reports whether key has the shape of a Spec.Key: 64 bytes
// of lowercase hex. Peer endpoints reject anything else so junk keys
// can never occupy cache budget.
func isSpecKey(key string) bool {
	if len(key) != 64 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// handlePeer serves the cluster-internal cache tier: GET returns the
// locally cached bytes for a key (404 not_cached on miss — never a
// simulation), PUT installs a peer's freshly computed bytes.
func (s *Server) handlePeer(w http.ResponseWriter, r *http.Request) {
	key := strings.TrimPrefix(r.URL.Path, "/v1/peer/")
	if !isSpecKey(key) {
		writeOutcome(w, "", "", errorOutcome(http.StatusBadRequest, codeBadRequest,
			"peer key must be a 64-char lowercase hex Spec.Key", nil))
		return
	}
	switch r.Method {
	case http.MethodGet:
		if s.draining.Load() {
			// A draining replica stops answering fills so peers fail over
			// to local compute instead of racing its teardown.
			writeOutcome(w, key, "", errorOutcome(http.StatusServiceUnavailable, codeDraining,
				"server is draining", nil))
			return
		}
		body, ok := s.cache.Get(key)
		if !ok {
			writeOutcome(w, key, "", errorOutcome(http.StatusNotFound, codeNotCached,
				"key not cached on this shard", nil))
			return
		}
		writeOutcome(w, key, "local", &outcome{status: http.StatusOK, body: body, ok: true})
	case http.MethodPut:
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxPeerBodyBytes))
		if err != nil {
			writeOutcome(w, key, "", errorOutcome(http.StatusBadRequest, codeBadRequest,
				"peer body: "+err.Error(), nil))
			return
		}
		if len(body) == 0 {
			writeOutcome(w, key, "", errorOutcome(http.StatusBadRequest, codeBadRequest,
				"peer body must be non-empty", nil))
			return
		}
		// Determinism makes this idempotent: a re-put for a resident key
		// carries identical bytes, and resultCache.Put just refreshes
		// recency.
		s.cache.Put(key, body)
		w.WriteHeader(http.StatusNoContent)
	default:
		writeOutcome(w, "", "", errorOutcome(http.StatusMethodNotAllowed, codeBadRequest,
			"GET or PUT required", nil))
	}
}
