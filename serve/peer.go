package serve

// The cluster cache tier seam. A Server is clustered by handing Config a
// Peer implementation (serve/cluster provides the production one built
// on consistent-hash routing): on a local cache miss runOne calls
// Peer.Fill to ask the key's owner shard for the bytes before
// simulating, and publishes fresh local results through Peer.Store so
// the owners' caches converge. Determinism plus content addressing is
// what makes this sound — a Spec.Key fully determines its response
// bytes, so a peer's cached body is byte-identical to what a local
// simulation would produce, and no coherence protocol is needed.
//
// The server side of the tier is the /v1/peer/{key} endpoint below:
// GET serves the local cache only (it never simulates, so fill chains
// cannot recurse or amplify load), PUT installs a replica's fresh result
// into this shard's cache.

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"io"
	"net/http"
	"strings"

	"hfstream"
)

// Peer protocol headers. Every peer-tier body travels with its SHA-256
// so a transfer damaged in flight (truncated, bit-flipped) is detected
// before it can enter a cache; every PUT also declares the spec its
// key was derived from so the receiver can re-derive and verify the
// key↔body binding instead of trusting the sender.
const (
	// HeaderDigest carries the lowercase-hex SHA-256 of the body, on
	// peer GET responses and PUT requests.
	HeaderDigest = "X-Hfserve-Digest"
	// HeaderSpec carries the canonical spec JSON (hfstream.Spec
	// canonical form) on peer PUT requests.
	HeaderSpec = "X-Hfserve-Spec"
)

// Digest computes the peer-protocol body digest: lowercase hex
// SHA-256, the same derivation as Spec.Key so the whole protocol
// hashes one way.
func Digest(body []byte) string {
	sum := sha256.Sum256(body)
	return hex.EncodeToString(sum[:])
}

// Peer is the cluster cache tier a Server consults around its local
// cache. Implementations must be safe for concurrent use.
type Peer interface {
	// Fill fetches the cached bytes for key from the key's owner
	// shard(s). It must be bounded (its own timeout, independent of the
	// job budget) and must never fail a request: any error is reported
	// as a miss and the caller simulates locally. Implementations must
	// verify body integrity (HeaderDigest) before returning bytes.
	Fill(ctx context.Context, key string) ([]byte, bool)
	// Store publishes a locally computed result to the key's owner
	// shard(s), carrying the spec the key was derived from so receivers
	// can verify the binding. It must not block the serving path (queue
	// or drop).
	Store(key string, spec hfstream.Spec, body []byte)
	// Stats snapshots the tier's counters for /v1/metrics.
	Stats() PeerStats
}

// PeerStats is the peering tier's counter snapshot, surfaced under the
// "peer" field of /v1/metrics when clustering is enabled.
type PeerStats struct {
	// Replicas is the ring size including this replica.
	Replicas int `json:"replicas"`
	// Fills counts fill attempts (local misses that consulted a peer);
	// Hits/Misses split their outcomes. Errors counts transport
	// failures and Timeouts the subset that hit the fill deadline;
	// SkippedDown counts fills short-circuited because every candidate
	// owner was marked down.
	Fills       uint64 `json:"fills"`
	Hits        uint64 `json:"hits"`
	Misses      uint64 `json:"misses"`
	Errors      uint64 `json:"errors"`
	Timeouts    uint64 `json:"timeouts"`
	SkippedDown uint64 `json:"skipped_down"`
	// Stores counts successful publications to owner shards,
	// StoreErrors failed ones, StoreDropped publications dropped
	// because the async store queue was full.
	Stores       uint64 `json:"stores"`
	StoreErrors  uint64 `json:"store_errors"`
	StoreDropped uint64 `json:"store_dropped"`
	// PeersDown is the number of peers whose circuit breaker is not
	// closed (open or probing half-open).
	PeersDown int `json:"peers_down"`
	// BreakerOpens counts closed→open breaker transitions across all
	// peers (every reopen after a failed half-open probe counts too).
	BreakerOpens uint64 `json:"breaker_opens"`
	// IntegrityDrops counts peer fills discarded because the body
	// failed digest verification — detected corruption, never cached.
	IntegrityDrops uint64 `json:"integrity_drops"`
}

// codeNotCached is the typed 404 of GET /v1/peer/{key}: the shard does
// not hold the key. Distinct from bad_request so a filling replica can
// tell "owner is healthy but cold" from "I sent garbage".
const codeNotCached = "not_cached"

// maxPeerBodyBytes bounds a PUT /v1/peer body; metrics snapshots are a
// few KiB, so anything near this bound is a protocol error.
const maxPeerBodyBytes = 8 << 20

// isSpecKey reports whether key has the shape of a Spec.Key: 64 bytes
// of lowercase hex. Peer endpoints reject anything else so junk keys
// can never occupy cache budget.
func isSpecKey(key string) bool {
	if len(key) != 64 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// handlePeer serves the cluster-internal cache tier: GET returns the
// locally cached bytes for a key (404 not_cached on miss — never a
// simulation), PUT installs a peer's freshly computed bytes.
func (s *Server) handlePeer(w http.ResponseWriter, r *http.Request) {
	key := strings.TrimPrefix(r.URL.Path, "/v1/peer/")
	if !isSpecKey(key) {
		writeOutcome(w, "", "", errorOutcome(http.StatusBadRequest, codeBadRequest,
			"peer key must be a 64-char lowercase hex Spec.Key", nil))
		return
	}
	switch r.Method {
	case http.MethodGet:
		if s.draining.Load() {
			// A draining replica stops answering fills so peers fail over
			// to local compute instead of racing its teardown.
			writeOutcome(w, key, "", errorOutcome(http.StatusServiceUnavailable, codeDraining,
				"server is draining", nil).withRetryAfter(retryAfterDraining))
			return
		}
		body, ok := s.cache.Get(key)
		if !ok {
			writeOutcome(w, key, "", errorOutcome(http.StatusNotFound, codeNotCached,
				"key not cached on this shard", nil))
			return
		}
		w.Header().Set(HeaderDigest, Digest(body))
		writeOutcome(w, key, "local", &outcome{status: http.StatusOK, body: body, ok: true})
	case http.MethodPut:
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxPeerBodyBytes))
		if err != nil {
			writeOutcome(w, key, "", errorOutcome(http.StatusBadRequest, codeBadRequest,
				"peer body: "+err.Error(), nil))
			return
		}
		if len(body) == 0 {
			writeOutcome(w, key, "", errorOutcome(http.StatusBadRequest, codeBadRequest,
				"peer body must be non-empty", nil))
			return
		}
		if out := s.verifyPeerPut(key, r.Header, body); out != nil {
			s.peerPutBad.Add(1)
			writeOutcome(w, key, "", out)
			return
		}
		// Determinism makes this idempotent: a re-put for a resident key
		// carries identical bytes, and resultCache.Put just refreshes
		// recency.
		s.cache.Put(key, body)
		w.WriteHeader(http.StatusNoContent)
	default:
		writeOutcome(w, "", "", errorOutcome(http.StatusMethodNotAllowed, codeBadRequest,
			"GET or PUT required", nil))
	}
}

// verifyPeerPut decides whether a peer PUT may enter the cache; nil
// means verified. The cache is content-addressed and re-served without
// further checks, so this is the single gate keeping poisoned bytes
// out of the cluster:
//
//  1. the declared digest must match the received body (catches
//     truncation or corruption in flight — "integrity");
//  2. the declared spec must canonicalize to exactly the key being
//     PUT (catches a body filed under someone else's address);
//  3. the body's own benchmark/design annotations must agree with the
//     spec (catches a well-formed body for a different workload).
//
// A rejected PUT is counted and dropped — never cached; the sender
// falls back to recomputing locally, which determinism makes safe.
func (s *Server) verifyPeerPut(key string, h http.Header, body []byte) *outcome {
	wantDigest := h.Get(HeaderDigest)
	if wantDigest == "" {
		return errorOutcome(http.StatusBadRequest, codeBadRequest,
			"peer put requires "+HeaderDigest, nil)
	}
	if got := Digest(body); got != wantDigest {
		return errorOutcome(http.StatusBadRequest, codeIntegrity,
			"peer body failed digest verification (want "+wantDigest+", got "+got+"); dropped, not cached", nil)
	}
	specHdr := h.Get(HeaderSpec)
	if specHdr == "" {
		return errorOutcome(http.StatusBadRequest, codeBadRequest,
			"peer put requires "+HeaderSpec, nil)
	}
	var spec hfstream.Spec
	if err := json.Unmarshal([]byte(specHdr), &spec); err != nil {
		return errorOutcome(http.StatusBadRequest, codeBadRequest,
			HeaderSpec+": "+err.Error(), nil)
	}
	specKey, err := spec.Key()
	if err != nil {
		return errorOutcome(http.StatusBadRequest, codeBadRequest,
			HeaderSpec+": "+err.Error(), nil)
	}
	if specKey != key {
		return errorOutcome(http.StatusBadRequest, codeBadRequest,
			"declared spec hashes to "+specKey+", not the put key", nil)
	}
	norm, err := spec.Normalize()
	if err != nil {
		return errorOutcome(http.StatusBadRequest, codeBadRequest,
			HeaderSpec+": "+err.Error(), nil)
	}
	var ann struct {
		Benchmark string `json:"benchmark"`
		Design    string `json:"design"`
	}
	if err := json.Unmarshal(body, &ann); err != nil {
		return errorOutcome(http.StatusBadRequest, codeIntegrity,
			"peer body is not a metrics snapshot: "+err.Error(), nil)
	}
	wantDesign := norm.Design
	if norm.Single {
		wantDesign = "SINGLE"
	}
	if ann.Benchmark != norm.Bench || ann.Design != wantDesign {
		return errorOutcome(http.StatusBadRequest, codeIntegrity,
			"peer body annotations ("+ann.Benchmark+"/"+ann.Design+") do not match the declared spec ("+
				norm.Bench+"/"+wantDesign+"); dropped, not cached", nil)
	}
	return nil
}
