package serve

import (
	"fmt"
	"sync"
)

// flightGroup coalesces concurrent requests for the same content key
// onto one in-flight execution: the first caller (the leader) runs fn,
// every concurrent duplicate blocks until the leader finishes and then
// shares its outcome — including the exact response bytes, so a
// coalesced response is byte-identical to the leader's.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flight
}

type flight struct {
	done chan struct{}
	out  *outcome
}

// do runs fn for key, or joins an already-running fn for the same key.
// The second return reports whether this caller coalesced onto another
// caller's run. The flight is deregistered before done is signalled, and
// leaders publish successful results to the cache inside fn, so a
// request arriving after completion finds the cache populated rather
// than triggering a second run.
func (g *flightGroup) do(key string, fn func() *outcome) (*outcome, bool) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*flight)
	}
	if f, ok := g.m[key]; ok {
		g.mu.Unlock()
		<-f.done
		return f.out, true
	}
	f := &flight{done: make(chan struct{})}
	g.m[key] = f
	g.mu.Unlock()

	f.out = runProtected(fn)
	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(f.done)
	return f.out, false
}

// runProtected converts a panicking fn into an internal-error outcome so
// a leader crash can never strand its joiners on a never-closed channel.
func runProtected(fn func() *outcome) (out *outcome) {
	defer func() {
		if r := recover(); r != nil {
			out = errorOutcome(500, codeInternal, fmt.Sprintf("panic during run: %v", r), nil)
		}
	}()
	return fn()
}
