package serve

// Unit tests for the cluster seam at the serve layer: the /v1/peer
// cache-tier endpoint, the Peer fill/store hooks in runOne, and the
// /v1 <-> legacy path aliasing.

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"hfstream"
)

// peerURL builds the tier path for a key.
func peerURL(ts *httptest.Server, key string) string {
	return ts.URL + "/v1/peer/" + key
}

func doReq(t *testing.T, method, url string, body string) (int, []byte, http.Header) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, buf, resp.Header
}

func TestServePeerTier(t *testing.T) {
	s := New(Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	key := strings.Repeat("ab", 32)

	// Cold shard: typed not_cached, never a simulation.
	status, body, _ := doReq(t, http.MethodGet, peerURL(ts, key), "")
	if status != http.StatusNotFound || errCode(t, body) != codeNotCached {
		t.Fatalf("cold GET: status=%d code=%q", status, errCode(t, body))
	}
	if runs := s.Metrics().Runs; runs != 0 {
		t.Fatalf("peer GET started %d simulations", runs)
	}

	// Install bytes, read them back with the local provenance tag.
	payload := `{"fake":"metrics"}`
	status, _, _ = doReq(t, http.MethodPut, peerURL(ts, key), payload)
	if status != http.StatusNoContent {
		t.Fatalf("PUT: status=%d", status)
	}
	status, body, hdr := doReq(t, http.MethodGet, peerURL(ts, key), "")
	if status != http.StatusOK || string(body) != payload {
		t.Fatalf("GET after PUT: status=%d body=%q", status, body)
	}
	if hdr.Get("X-Hfserve-Cache") != "local" || hdr.Get("X-Hfserve-Key") != key {
		t.Fatalf("GET headers: cache=%q key=%q", hdr.Get("X-Hfserve-Cache"), hdr.Get("X-Hfserve-Key"))
	}

	// Malformed keys and bodies are rejected up front.
	for _, bad := range []string{"short", strings.Repeat("AB", 32), strings.Repeat("zz", 32)} {
		if status, body, _ = doReq(t, http.MethodGet, peerURL(ts, bad), ""); status != http.StatusBadRequest {
			t.Errorf("GET with key %q: status=%d %s", bad, status, body)
		}
	}
	if status, body, _ = doReq(t, http.MethodPut, peerURL(ts, key), ""); status != http.StatusBadRequest {
		t.Errorf("empty PUT: status=%d %s", status, body)
	}
	if status, body, _ = doReq(t, http.MethodPost, peerURL(ts, key), payload); status != http.StatusMethodNotAllowed {
		t.Errorf("POST: status=%d %s", status, body)
	}

	// A draining shard refuses fills so peers fail over to local compute.
	s.BeginDrain()
	status, body, _ = doReq(t, http.MethodGet, peerURL(ts, key), "")
	if status != http.StatusServiceUnavailable || errCode(t, body) != codeDraining {
		t.Fatalf("draining GET: status=%d code=%q", status, errCode(t, body))
	}
}

// fakePeer is a scripted Peer for exercising runOne's fill/store seam
// without the cluster package.
type fakePeer struct {
	mu     sync.Mutex
	fill   map[string][]byte
	stored map[string][]byte
	fills  int
}

func newFakePeer() *fakePeer {
	return &fakePeer{fill: make(map[string][]byte), stored: make(map[string][]byte)}
}

func (f *fakePeer) Fill(ctx context.Context, key string) ([]byte, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.fills++
	body, ok := f.fill[key]
	return body, ok
}

func (f *fakePeer) Store(key string, body []byte) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.stored[key] = append([]byte(nil), body...)
}

func (f *fakePeer) Stats() PeerStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return PeerStats{Replicas: 2, Fills: uint64(f.fills)}
}

func TestServePeerFillSeam(t *testing.T) {
	peer := newFakePeer()
	s := New(Config{Workers: 1, Peer: peer})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	spec := hfstream.Spec{Bench: "bzip2", Design: "EXISTING"}
	norm, err := spec.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	key, err := norm.Key()
	if err != nil {
		t.Fatal(err)
	}

	// Miss everywhere: the run simulates locally and publishes the fresh
	// bytes through Store.
	status, body, src := post(t, ts.URL, `{"bench":"bzip2","design":"EXISTING"}`)
	if status != http.StatusOK || src != "miss" {
		t.Fatalf("cold run: status=%d src=%q", status, src)
	}
	waitFor(t, func() bool {
		peer.mu.Lock()
		defer peer.mu.Unlock()
		return peer.stored[key] != nil
	})
	peer.mu.Lock()
	stored := peer.stored[key]
	peer.mu.Unlock()
	if !bytes.Equal(stored, body) {
		t.Error("stored bytes differ from the served response")
	}

	// A peer-supplied body short-circuits simulation and lands in the
	// local cache: provenance "peer" once, then "hit".
	spec2 := hfstream.Spec{Bench: "bzip2", Design: "MEMOPTI"}
	norm2, err := spec2.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	key2, err := norm2.Key()
	if err != nil {
		t.Fatal(err)
	}
	canned := []byte(`{"canned":"peer bytes"}`)
	peer.mu.Lock()
	peer.fill[key2] = canned
	peer.mu.Unlock()

	status, body, src = post(t, ts.URL, `{"bench":"bzip2","design":"MEMOPTI"}`)
	if status != http.StatusOK || src != "peer" || !bytes.Equal(body, canned) {
		t.Fatalf("peer fill: status=%d src=%q body=%q", status, src, body)
	}
	status, _, src = post(t, ts.URL, `{"bench":"bzip2","design":"MEMOPTI"}`)
	if status != http.StatusOK || src != "hit" {
		t.Fatalf("after fill: status=%d src=%q, want local hit", status, src)
	}
	if runs := s.Metrics().Runs; runs != 1 {
		t.Errorf("server simulated %d times, want only the first spec", runs)
	}

	// The tier's counters surface under /v1/metrics.
	m := s.Metrics()
	if m.PeerHits != 1 || m.Peer == nil || m.Peer.Replicas != 2 {
		t.Errorf("metrics peer view = hits:%d %+v", m.PeerHits, m.Peer)
	}
}

// TestServeV1Aliases: the versioned and legacy paths are one surface —
// same handlers, same bytes, same method policing.
func TestServeV1Aliases(t *testing.T) {
	s := New(Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := `{"bench":"bzip2","single":true}`
	resp, err := http.Post(ts.URL+"/run", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	legacy, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("legacy /run: status=%d err=%v", resp.StatusCode, err)
	}
	resp, err = http.Post(ts.URL+"/v1/run", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	versioned, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/run: status=%d err=%v", resp.StatusCode, err)
	}
	if !bytes.Equal(legacy, versioned) {
		t.Error("legacy and /v1 run bodies differ")
	}
	if resp.Header.Get("X-Hfserve-Cache") != "hit" {
		t.Errorf("/v1/run after /run: cache=%q, want shared cache hit", resp.Header.Get("X-Hfserve-Cache"))
	}

	for _, path := range []string{"/metrics", "/v1/metrics", "/healthz", "/v1/healthz"} {
		status, body, _ := doReq(t, http.MethodGet, ts.URL+path, "")
		if status != http.StatusOK {
			t.Errorf("GET %s: status=%d %s", path, status, body)
		}
	}
	for _, path := range []string{"/run", "/v1/run", "/sweep", "/v1/sweep"} {
		status, _, _ := doReq(t, http.MethodGet, ts.URL+path, "")
		if status != http.StatusMethodNotAllowed {
			t.Errorf("GET %s: status=%d, want 405", path, status)
		}
	}
}
