package serve

// Unit tests for the cluster seam at the serve layer: the /v1/peer
// cache-tier endpoint, the Peer fill/store hooks in runOne, and the
// /v1 <-> legacy path aliasing.

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"hfstream"
)

// peerURL builds the tier path for a key.
func peerURL(ts *httptest.Server, key string) string {
	return ts.URL + "/v1/peer/" + key
}

func doReq(t *testing.T, method, url string, body string) (int, []byte, http.Header) {
	t.Helper()
	return doReqH(t, method, url, body, nil)
}

// doReqH is doReq with request headers (the peer PUT protocol needs
// the digest and spec headers).
func doReqH(t *testing.T, method, url string, body string, hdr map[string]string) (int, []byte, http.Header) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, buf, resp.Header
}

// peerPayload builds a valid peer-PUT triple (key, headers, body) for
// a single-run bzip2 spec: the body carries matching annotations, the
// headers carry the true digest and the spec's canonical JSON.
func peerPayload(t *testing.T) (key string, hdr map[string]string, payload string) {
	t.Helper()
	spec := hfstream.Spec{Bench: "bzip2", Single: true}
	key, err := spec.Key()
	if err != nil {
		t.Fatal(err)
	}
	canon, err := spec.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	payload = `{"benchmark":"bzip2","design":"SINGLE","fake":true}`
	hdr = map[string]string{
		HeaderDigest: Digest([]byte(payload)),
		HeaderSpec:   string(canon),
	}
	return key, hdr, payload
}

func TestServePeerTier(t *testing.T) {
	s := New(Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	key, putHdr, payload := peerPayload(t)

	// Cold shard: typed not_cached, never a simulation.
	status, body, _ := doReq(t, http.MethodGet, peerURL(ts, key), "")
	if status != http.StatusNotFound || errCode(t, body) != codeNotCached {
		t.Fatalf("cold GET: status=%d code=%q", status, errCode(t, body))
	}
	if runs := s.Metrics().Runs; runs != 0 {
		t.Fatalf("peer GET started %d simulations", runs)
	}

	// Install bytes, read them back with the local provenance tag and
	// the body digest the filling side verifies.
	status, _, _ = doReqH(t, http.MethodPut, peerURL(ts, key), payload, putHdr)
	if status != http.StatusNoContent {
		t.Fatalf("PUT: status=%d", status)
	}
	status, body, hdr := doReq(t, http.MethodGet, peerURL(ts, key), "")
	if status != http.StatusOK || string(body) != payload {
		t.Fatalf("GET after PUT: status=%d body=%q", status, body)
	}
	if hdr.Get("X-Hfserve-Cache") != "local" || hdr.Get("X-Hfserve-Key") != key {
		t.Fatalf("GET headers: cache=%q key=%q", hdr.Get("X-Hfserve-Cache"), hdr.Get("X-Hfserve-Key"))
	}
	if got := hdr.Get(HeaderDigest); got != Digest([]byte(payload)) {
		t.Fatalf("GET digest header = %q, want body digest", got)
	}

	// A headerless PUT (the pre-digest protocol) is refused: the tier
	// never caches unverifiable bytes.
	status, body, _ = doReq(t, http.MethodPut, peerURL(ts, key), payload)
	if status != http.StatusBadRequest {
		t.Fatalf("headerless PUT: status=%d %s", status, body)
	}

	// Malformed keys and bodies are rejected up front.
	for _, bad := range []string{"short", strings.Repeat("AB", 32), strings.Repeat("zz", 32)} {
		if status, body, _ = doReq(t, http.MethodGet, peerURL(ts, bad), ""); status != http.StatusBadRequest {
			t.Errorf("GET with key %q: status=%d %s", bad, status, body)
		}
	}
	if status, body, _ = doReqH(t, http.MethodPut, peerURL(ts, key), "", putHdr); status != http.StatusBadRequest {
		t.Errorf("empty PUT: status=%d %s", status, body)
	}
	if status, body, _ = doReq(t, http.MethodPost, peerURL(ts, key), payload); status != http.StatusMethodNotAllowed {
		t.Errorf("POST: status=%d %s", status, body)
	}

	// A draining shard refuses fills (with a Retry-After hint) so peers
	// fail over to local compute.
	s.BeginDrain()
	status, body, hdr = doReq(t, http.MethodGet, peerURL(ts, key), "")
	if status != http.StatusServiceUnavailable || errCode(t, body) != codeDraining {
		t.Fatalf("draining GET: status=%d code=%q", status, errCode(t, body))
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("draining GET carries no Retry-After header")
	}
}

// cacheMiss asserts key is absent from s's local cache — the
// no-cache.Put-on-rejection invariant every integrity test relies on.
func cacheMiss(t *testing.T, s *Server, key string) {
	t.Helper()
	if _, ok := s.cache.Get(key); ok {
		t.Fatalf("rejected peer PUT still cached key %s", key)
	}
}

// TestPeerPutIntegrityRejections drives the poisoning attempts the
// digest protocol exists to stop: every one must be refused with a
// typed 400, counted, and — the load-bearing part — never cached.
func TestPeerPutIntegrityRejections(t *testing.T) {
	s := New(Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	key, putHdr, payload := peerPayload(t)

	corrupt := []byte(payload)
	corrupt[len(corrupt)/2] ^= 0xff
	truncated := payload[:len(payload)/2]

	otherSpec := hfstream.Spec{Bench: "bzip2", Design: "EXISTING"}
	otherCanon, err := otherSpec.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	// A body whose annotations disagree with the declared (key-matching)
	// spec: right shape, wrong workload.
	wrongAnn := `{"benchmark":"adpcmdec","design":"EXISTING","fake":true}`

	cases := []struct {
		name     string
		body     string
		hdr      map[string]string
		wantCode string
	}{
		{"corrupted body", string(corrupt), putHdr, codeIntegrity},
		{"truncated body", truncated, putHdr, codeIntegrity},
		{"missing digest", payload, map[string]string{HeaderSpec: putHdr[HeaderSpec]}, codeBadRequest},
		{"missing spec", payload, map[string]string{HeaderDigest: putHdr[HeaderDigest]}, codeBadRequest},
		{"spec does not hash to key", payload, map[string]string{
			HeaderDigest: putHdr[HeaderDigest], HeaderSpec: string(otherCanon)}, codeBadRequest},
		{"annotations disagree with spec", wrongAnn, map[string]string{
			HeaderDigest: Digest([]byte(wrongAnn)), HeaderSpec: putHdr[HeaderSpec]}, codeIntegrity},
		{"unparseable spec header", payload, map[string]string{
			HeaderDigest: putHdr[HeaderDigest], HeaderSpec: "{not json"}, codeBadRequest},
	}
	for i, tc := range cases {
		status, body, _ := doReqH(t, http.MethodPut, peerURL(ts, key), tc.body, tc.hdr)
		if status != http.StatusBadRequest || errCode(t, body) != tc.wantCode {
			t.Errorf("%s: status=%d code=%q, want 400 %q", tc.name, status, errCode(t, body), tc.wantCode)
		}
		cacheMiss(t, s, key)
		if got := s.Metrics().PeerPutRejected; got != uint64(i+1) {
			t.Errorf("%s: PeerPutRejected=%d, want %d", tc.name, got, i+1)
		}
	}

	// After all that abuse the honest PUT still lands.
	if status, body, _ := doReqH(t, http.MethodPut, peerURL(ts, key), payload, putHdr); status != http.StatusNoContent {
		t.Fatalf("honest PUT after rejections: status=%d %s", status, body)
	}
	if got, ok := s.cache.Get(key); !ok || string(got) != payload {
		t.Fatal("honest PUT did not cache the verified bytes")
	}
}

// TestPeerPutSizeBoundary pins the 8MiB cap: a body at exactly the cap
// is verified and cached; one byte past it is refused before
// verification (and never cached).
func TestPeerPutSizeBoundary(t *testing.T) {
	s := New(Config{Workers: 1, CacheBytes: 32 << 20})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	spec := hfstream.Spec{Bench: "bzip2", Single: true}
	key, err := spec.Key()
	if err != nil {
		t.Fatal(err)
	}
	canon, err := spec.Canonical()
	if err != nil {
		t.Fatal(err)
	}

	// Build a valid-annotation JSON body padded to exactly the cap.
	prefix := `{"benchmark":"bzip2","design":"SINGLE","pad":"`
	suffix := `"}`
	pad := strings.Repeat("x", maxPeerBodyBytes-len(prefix)-len(suffix))
	atCap := prefix + pad + suffix
	if len(atCap) != maxPeerBodyBytes {
		t.Fatalf("test bug: body is %d bytes, want %d", len(atCap), maxPeerBodyBytes)
	}
	hdr := map[string]string{HeaderDigest: Digest([]byte(atCap)), HeaderSpec: string(canon)}
	if status, body, _ := doReqH(t, http.MethodPut, peerURL(ts, key), atCap, hdr); status != http.StatusNoContent {
		t.Fatalf("PUT at cap: status=%d %s", status, body)
	}
	if _, ok := s.cache.Get(key); !ok {
		t.Fatal("at-cap body not cached")
	}

	// One byte over: MaxBytesReader trips, 400, nothing cached (a fresh
	// server, so the at-cap insert above can't mask the check).
	s2 := New(Config{Workers: 1, CacheBytes: 32 << 20})
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	overCap := prefix + pad + "x" + suffix
	hdr[HeaderDigest] = Digest([]byte(overCap))
	if status, body, _ := doReqH(t, http.MethodPut, peerURL(ts2, key), overCap, hdr); status != http.StatusBadRequest {
		t.Fatalf("PUT over cap: status=%d %s", status, body)
	}
	cacheMiss(t, s2, key)
}

// fakePeer is a scripted Peer for exercising runOne's fill/store seam
// without the cluster package.
type fakePeer struct {
	mu     sync.Mutex
	fill   map[string][]byte
	stored map[string][]byte
	fills  int
}

func newFakePeer() *fakePeer {
	return &fakePeer{fill: make(map[string][]byte), stored: make(map[string][]byte)}
}

func (f *fakePeer) Fill(ctx context.Context, key string) ([]byte, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.fills++
	body, ok := f.fill[key]
	return body, ok
}

func (f *fakePeer) Store(key string, spec hfstream.Spec, body []byte) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.stored[key] = append([]byte(nil), body...)
}

func (f *fakePeer) Stats() PeerStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return PeerStats{Replicas: 2, Fills: uint64(f.fills)}
}

func TestServePeerFillSeam(t *testing.T) {
	peer := newFakePeer()
	s := New(Config{Workers: 1, Peer: peer})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	spec := hfstream.Spec{Bench: "bzip2", Design: "EXISTING"}
	norm, err := spec.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	key, err := norm.Key()
	if err != nil {
		t.Fatal(err)
	}

	// Miss everywhere: the run simulates locally and publishes the fresh
	// bytes through Store.
	status, body, src := post(t, ts.URL, `{"bench":"bzip2","design":"EXISTING"}`)
	if status != http.StatusOK || src != "miss" {
		t.Fatalf("cold run: status=%d src=%q", status, src)
	}
	waitFor(t, func() bool {
		peer.mu.Lock()
		defer peer.mu.Unlock()
		return peer.stored[key] != nil
	})
	peer.mu.Lock()
	stored := peer.stored[key]
	peer.mu.Unlock()
	if !bytes.Equal(stored, body) {
		t.Error("stored bytes differ from the served response")
	}

	// A peer-supplied body short-circuits simulation and lands in the
	// local cache: provenance "peer" once, then "hit".
	spec2 := hfstream.Spec{Bench: "bzip2", Design: "MEMOPTI"}
	norm2, err := spec2.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	key2, err := norm2.Key()
	if err != nil {
		t.Fatal(err)
	}
	canned := []byte(`{"canned":"peer bytes"}`)
	peer.mu.Lock()
	peer.fill[key2] = canned
	peer.mu.Unlock()

	status, body, src = post(t, ts.URL, `{"bench":"bzip2","design":"MEMOPTI"}`)
	if status != http.StatusOK || src != "peer" || !bytes.Equal(body, canned) {
		t.Fatalf("peer fill: status=%d src=%q body=%q", status, src, body)
	}
	status, _, src = post(t, ts.URL, `{"bench":"bzip2","design":"MEMOPTI"}`)
	if status != http.StatusOK || src != "hit" {
		t.Fatalf("after fill: status=%d src=%q, want local hit", status, src)
	}
	if runs := s.Metrics().Runs; runs != 1 {
		t.Errorf("server simulated %d times, want only the first spec", runs)
	}

	// The tier's counters surface under /v1/metrics.
	m := s.Metrics()
	if m.PeerHits != 1 || m.Peer == nil || m.Peer.Replicas != 2 {
		t.Errorf("metrics peer view = hits:%d %+v", m.PeerHits, m.Peer)
	}
}

// TestServeV1Aliases: the versioned and legacy paths are one surface —
// same handlers, same bytes, same method policing.
func TestServeV1Aliases(t *testing.T) {
	s := New(Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := `{"bench":"bzip2","single":true}`
	resp, err := http.Post(ts.URL+"/run", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	legacy, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("legacy /run: status=%d err=%v", resp.StatusCode, err)
	}
	resp, err = http.Post(ts.URL+"/v1/run", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	versioned, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/run: status=%d err=%v", resp.StatusCode, err)
	}
	if !bytes.Equal(legacy, versioned) {
		t.Error("legacy and /v1 run bodies differ")
	}
	if resp.Header.Get("X-Hfserve-Cache") != "hit" {
		t.Errorf("/v1/run after /run: cache=%q, want shared cache hit", resp.Header.Get("X-Hfserve-Cache"))
	}

	for _, path := range []string{"/metrics", "/v1/metrics", "/healthz", "/v1/healthz"} {
		status, body, _ := doReq(t, http.MethodGet, ts.URL+path, "")
		if status != http.StatusOK {
			t.Errorf("GET %s: status=%d %s", path, status, body)
		}
	}
	for _, path := range []string{"/run", "/v1/run", "/sweep", "/v1/sweep"} {
		status, _, _ := doReq(t, http.MethodGet, ts.URL+path, "")
		if status != http.StatusMethodNotAllowed {
			t.Errorf("GET %s: status=%d, want 405", path, status)
		}
	}
}
