package serve

import (
	"encoding/json"
	"net/http"
	"time"
)

// Metrics is the /metrics snapshot: request-plane counters, queue and
// cache state, and the simulated work served so far, aggregated from the
// same sim.Metrics-backed result fields (issue/stall cycle counters from
// the observability layer) that each response body reports per run.
type Metrics struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	Draining      bool    `json:"draining"`
	Workers       int     `json:"workers"`

	// Request-plane counters. Requests counts POST /run and /sweep
	// bodies read; Streams counts the /run?stream=ndjson subset and
	// Sweeps the /sweep subset; Runs counts simulations actually started
	// (cache hits and coalesced duplicates never start one).
	Requests         uint64 `json:"requests"`
	Streams          uint64 `json:"streams"`
	Sweeps           uint64 `json:"sweeps"`
	Runs             uint64 `json:"runs"`
	Failures         uint64 `json:"failures"`
	CacheHits        uint64 `json:"cache_hits"`
	CacheMisses      uint64 `json:"cache_misses"`
	PeerHits         uint64 `json:"peer_hits"`
	PeerMisses       uint64 `json:"peer_misses"`
	Coalesced        uint64 `json:"coalesced"`
	ShedQueueFull    uint64 `json:"shed_queue_full"`
	RejectedDraining uint64 `json:"rejected_draining"`
	// PeerPutRejected counts PUT /v1/peer bodies refused by the
	// integrity gate (digest mismatch, key↔spec mismatch, inconsistent
	// annotations) — each one is a poisoning attempt that never reached
	// the cache.
	PeerPutRejected uint64 `json:"peer_put_rejected"`

	// Queue state at snapshot time.
	InFlight   int `json:"in_flight"`
	Queued     int `json:"queued"`
	QueueDepth int `json:"queue_depth"`

	Cache struct {
		Entries     int    `json:"entries"`
		Bytes       int64  `json:"bytes"`
		BudgetBytes int64  `json:"budget_bytes"`
		Evictions   uint64 `json:"evictions"`
	} `json:"cache"`

	// Peer is the cluster cache tier snapshot; nil when this replica is
	// not clustered.
	Peer *PeerStats `json:"peer,omitempty"`

	// Simulated totals across every completed run: machine cycles,
	// issued instructions, and zero-issue (stall) cycles summed over
	// cores — the service-level rollup of the per-run stall attribution.
	Simulated struct {
		Cycles       uint64 `json:"cycles"`
		Instructions uint64 `json:"instructions"`
		StallCycles  uint64 `json:"stall_cycles"`
	} `json:"simulated"`
}

// Metrics snapshots the service counters.
func (s *Server) Metrics() Metrics {
	var m Metrics
	m.UptimeSeconds = time.Since(s.start).Seconds()
	m.Draining = s.draining.Load()
	m.Workers = s.cfg.Workers
	m.Requests = s.requests.Load()
	m.Streams = s.streams.Load()
	m.Sweeps = s.sweeps.Load()
	m.Runs = s.runs.Load()
	m.Failures = s.failures.Load()
	m.CacheHits = s.cacheHits.Load()
	m.CacheMisses = s.cacheMisses.Load()
	m.PeerHits = s.peerHits.Load()
	m.PeerMisses = s.peerMisses.Load()
	m.Coalesced = s.coalesced.Load()
	m.ShedQueueFull = s.shed.Load()
	m.RejectedDraining = s.rejected.Load()
	m.PeerPutRejected = s.peerPutBad.Load()
	m.InFlight = s.inFlight()
	m.Queued = s.pool.QueueLen()
	m.QueueDepth = s.cfg.QueueDepth
	m.Cache.Entries, m.Cache.Bytes, m.Cache.BudgetBytes, m.Cache.Evictions = s.cache.Stats()
	if s.peer != nil {
		ps := s.peer.Stats()
		m.Peer = &ps
	}
	m.Simulated.Cycles = s.simCycles.Load()
	m.Simulated.Instructions = s.simInstrs.Load()
	m.Simulated.StallCycles = s.simStalls.Load()
	return m
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeOutcome(w, "", "", errorOutcome(http.StatusMethodNotAllowed, codeBadRequest, "GET required", nil))
		return
	}
	buf, err := json.MarshalIndent(s.Metrics(), "", "  ")
	if err != nil {
		writeOutcome(w, "", "", errorOutcome(http.StatusInternalServerError, codeInternal, err.Error(), nil))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(buf, '\n'))
}
