// Package client is the typed Go client for the hfserve /v1 HTTP API
// (wire contract in serve/API.md). It wraps the versioned endpoints in
// methods that speak the exported serve types — hfstream.Spec in,
// serve.StreamEvent / serve.Metrics / serve.ErrorDetail out — so
// callers (cmd/hfload, the cluster peer-fill path, the differential
// battery) never hand-roll HTTP or scrape response bodies.
//
// Every non-2xx response decodes into *APIError carrying the typed
// error envelope, so callers branch on Detail.Code ("queue_full",
// "draining", "timeout", "canceled", …) instead of status-code
// guessing.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"hfstream"
	"hfstream/serve"
)

// Client talks to one hfserve replica. The zero value is not usable;
// construct with New. Clients are safe for concurrent use.
type Client struct {
	base  string
	hc    *http.Client
	retry *retrier
}

// Option customizes a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (timeouts,
// transports, test doubles). The default is http.DefaultClient; callers
// bound individual calls through ctx.
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc }
}

// New builds a client for the replica at baseURL (scheme://host[:port],
// no trailing path).
func New(baseURL string, opts ...Option) *Client {
	c := &Client{base: strings.TrimRight(baseURL, "/"), hc: http.DefaultClient}
	for _, o := range opts {
		o(c)
	}
	return c
}

// BaseURL reports the replica address this client targets.
func (c *Client) BaseURL() string { return c.base }

// APIError is a non-2xx response decoded from the typed error envelope.
type APIError struct {
	// Status is the HTTP status code (including 499, the
	// client-closed-request convention, and 504 for job timeouts).
	Status int
	// Detail is the decoded envelope payload.
	Detail serve.ErrorDetail
	// RetryAfter is the response's Retry-After hint (zero when the
	// header was absent). The retry layer waits at least this long
	// before the next attempt.
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("hfserve: %s (%d): %s", e.Detail.Code, e.Status, e.Detail.Message)
}

// ErrNotCached reports a peer-tier GET for a key the shard does not
// hold. errors.Is(err, ErrNotCached) works on the *APIError PeerGet
// returns.
var ErrNotCached = errors.New("hfserve: key not cached on shard")

// Is makes APIError match ErrNotCached when it carries the not_cached
// code, so peer-fill callers can errors.Is instead of code-comparing.
func (e *APIError) Is(target error) bool {
	return target == ErrNotCached && e.Detail.Code == "not_cached"
}

// IntegrityError reports a peer-tier body that failed digest
// verification: the transfer was truncated or corrupted in flight.
// The caller must treat the bytes as garbage — count, drop, and fall
// back to local simulation; never cache.
type IntegrityError struct {
	// Key is the spec key whose body failed verification.
	Key string
	// Want is the digest the sender declared ("" = header missing).
	Want string
	// Got is the digest of the bytes actually received.
	Got string
}

func (e *IntegrityError) Error() string {
	if e.Want == "" {
		return fmt.Sprintf("hfserve: peer body for %s carries no digest", e.Key)
	}
	return fmt.Sprintf("hfserve: peer body for %s failed digest check (want %s, got %s)", e.Key, e.Want, e.Got)
}

// parseRetryAfter reads an integral-seconds Retry-After header
// (the only form hfserve emits); anything else reads as zero.
func parseRetryAfter(h http.Header) time.Duration {
	v := h.Get("Retry-After")
	if v == "" {
		return 0
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// decodeAPIError turns a non-2xx response into *APIError; a body that
// is not a well-formed envelope still produces a typed error with code
// "internal" and the raw body as message.
func decodeAPIError(resp *http.Response, body []byte) *APIError {
	var env serve.ErrorEnvelope
	if err := json.Unmarshal(body, &env); err != nil || env.Error.Code == "" {
		env.Error = serve.ErrorDetail{Code: "internal", Message: string(bytes.TrimSpace(body))}
	}
	return &APIError{Status: resp.StatusCode, Detail: env.Error, RetryAfter: parseRetryAfter(resp.Header)}
}

// RunResult is one successful /v1/run response: the exact metrics bytes
// the direct library API would have produced, plus cache provenance.
type RunResult struct {
	// Body is the metrics snapshot — byte-identical to
	// hfstream.WithMetrics output for the same spec.
	Body []byte
	// Key is the spec's content address (X-Hfserve-Key).
	Key string
	// Cache is the response provenance (X-Hfserve-Cache): "miss" (fresh
	// simulation), "hit" (local cache), "peer" (cluster cache tier), or
	// "coalesced" (joined a concurrent identical request).
	Cache string
}

func (c *Client) do(req *http.Request) (*http.Response, error) {
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("hfserve: %s %s: %w", req.Method, req.URL.Path, err)
	}
	return resp, nil
}

// Run executes spec on the replica (or serves it from cache) and
// returns the metrics bytes. Failures are *APIError. Under WithRetry,
// retryable failures are re-attempted with backoff.
func (c *Client) Run(ctx context.Context, spec hfstream.Spec) (*RunResult, error) {
	var res *RunResult
	err := c.withRetry(ctx, func() error {
		r, err := c.runOnce(ctx, spec)
		res = r
		return err
	})
	return res, err
}

func (c *Client) runOnce(ctx context.Context, spec hfstream.Spec) (*RunResult, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/run", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, decodeAPIError(resp, out)
	}
	return &RunResult{
		Body:  out,
		Key:   resp.Header.Get("X-Hfserve-Key"),
		Cache: resp.Header.Get("X-Hfserve-Cache"),
	}, nil
}

// StreamOpts tunes a streaming run.
type StreamOpts struct {
	// ProgressEvery is the progress-event cadence in simulated cycles
	// (0 = the library default, every 1M cycles).
	ProgressEvery uint64
}

// ErrTruncatedStream reports an NDJSON stream that ended without
// reaching a terminal event — the connection died (or the server was
// killed) mid-stream. Without this check a mid-stream disconnect is
// indistinguishable from a clean end: TCP FIN and a finished response
// look identical to the reader.
var ErrTruncatedStream = errors.New("hfserve: stream truncated before terminal event")

// EventStream iterates the typed NDJSON events of a streaming response.
// Always Close it (closing cancels the underlying run if the stream is
// abandoned mid-flight).
type EventStream struct {
	body io.ReadCloser
	sc   *bufio.Scanner
	// terminal flips when a stream-ending event has been seen, making
	// a subsequent EOF clean rather than a truncation.
	terminal bool
}

func newEventStream(body io.ReadCloser) *EventStream {
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 0, 64<<10), 4<<20)
	return &EventStream{body: body, sc: sc}
}

// Next returns the next event, or io.EOF when the stream ends cleanly.
// A stream that ends before its terminal event — the done event, or a
// run-level error event (which /run streams emit instead of done; a
// sweep's per-cell error events carry their cell's Spec and are not
// terminal) — returns an error matching ErrTruncatedStream instead of
// a silent clean end.
func (s *EventStream) Next() (*serve.StreamEvent, error) {
	if !s.sc.Scan() {
		err := s.sc.Err()
		if s.terminal {
			if err != nil {
				return nil, err
			}
			return nil, io.EOF
		}
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrTruncatedStream, err)
		}
		return nil, ErrTruncatedStream
	}
	var ev serve.StreamEvent
	if err := json.Unmarshal(s.sc.Bytes(), &ev); err != nil {
		return nil, fmt.Errorf("hfserve: bad stream event %q: %w", s.sc.Text(), err)
	}
	if ev.Type == "done" || (ev.Type == "error" && ev.Spec == nil) {
		s.terminal = true
	}
	return &ev, nil
}

// All drains the stream and returns every remaining event.
func (s *EventStream) All() ([]serve.StreamEvent, error) {
	var events []serve.StreamEvent
	for {
		ev, err := s.Next()
		if err == io.EOF {
			return events, nil
		}
		if err != nil {
			return events, err
		}
		events = append(events, *ev)
	}
}

// Close releases the stream's connection.
func (s *EventStream) Close() error { return s.body.Close() }

// stream POSTs body and hands back the NDJSON event iterator; non-200
// responses (which only happen before the first event) decode to
// *APIError.
func (c *Client) stream(ctx context.Context, path string, body []byte) (*EventStream, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		out, _ := io.ReadAll(resp.Body)
		return nil, decodeAPIError(resp, out)
	}
	return newEventStream(resp.Body), nil
}

// RunStream executes spec with live NDJSON events: progress heartbeats
// while the simulation runs, then a metrics (or error) event, then
// done. The metrics event's Body field carries the exact non-streaming
// response bytes.
func (c *Client) RunStream(ctx context.Context, spec hfstream.Spec, opts StreamOpts) (*EventStream, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return nil, err
	}
	q := url.Values{"stream": {"ndjson"}}
	if opts.ProgressEvery > 0 {
		q.Set("progress_every", strconv.FormatUint(opts.ProgressEvery, 10))
	}
	return c.stream(ctx, "/v1/run?"+q.Encode(), body)
}

// Sweep runs a (benches × designs × options) grid, streaming per-cell
// metrics/error events in completion order and a final done event with
// the sweep tallies.
func (c *Client) Sweep(ctx context.Context, req serve.SweepRequest) (*EventStream, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	return c.stream(ctx, "/v1/sweep", body)
}

// Metrics fetches the replica's /v1/metrics counter snapshot.
func (c *Client) Metrics(ctx context.Context) (*serve.Metrics, error) {
	var m *serve.Metrics
	err := c.withRetry(ctx, func() error {
		got, err := c.metricsOnce(ctx)
		m = got
		return err
	})
	return m, err
}

func (c *Client) metricsOnce(ctx context.Context) (*serve.Metrics, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, decodeAPIError(resp, out)
	}
	var m serve.Metrics
	if err := json.Unmarshal(out, &m); err != nil {
		return nil, err
	}
	return &m, nil
}

// Health is the /v1/healthz body.
type Health struct {
	Status   string `json:"status"`
	InFlight int    `json:"in_flight"`
}

// Health fetches liveness. A draining replica answers 503; that is
// reported as Health{Status:"draining"} with a nil error, since the
// body still decodes — transport failures and non-healthz bodies are
// the error cases.
func (c *Client) Health(ctx context.Context) (*Health, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/healthz", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var h Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return nil, err
	}
	return &h, nil
}

// PeerGet fetches the cached bytes for key from this replica's cache
// tier endpoint and verifies them against the X-Hfserve-Digest header
// before returning — a truncated or bit-flipped transfer surfaces as
// *IntegrityError, never as plausible-looking bytes. A cold shard
// returns an *APIError matching ErrNotCached; the endpoint never
// simulates.
func (c *Client) PeerGet(ctx context.Context, key string) ([]byte, error) {
	var out []byte
	err := c.withRetry(ctx, func() error {
		got, err := c.peerGetOnce(ctx, key)
		out = got
		return err
	})
	return out, err
}

func (c *Client) peerGetOnce(ctx context.Context, key string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/peer/"+key, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, decodeAPIError(resp, out)
	}
	want := resp.Header.Get(serve.HeaderDigest)
	if got := serve.Digest(out); want == "" || got != want {
		return nil, &IntegrityError{Key: key, Want: want, Got: serve.Digest(out)}
	}
	return out, nil
}

// PeerPut publishes a computed result into this replica's cache tier,
// declaring the body digest and the spec the key was derived from so
// the receiver can verify both before caching (a transfer damaged in
// flight is rejected with 400, never stored).
func (c *Client) PeerPut(ctx context.Context, key string, spec hfstream.Spec, body []byte) error {
	canon, err := spec.Canonical()
	if err != nil {
		return err
	}
	return c.withRetry(ctx, func() error {
		return c.peerPutOnce(ctx, key, canon, body)
	})
}

func (c *Client) peerPutOnce(ctx context.Context, key string, canon, body []byte) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, c.base+"/v1/peer/"+key, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(serve.HeaderDigest, serve.Digest(body))
	req.Header.Set(serve.HeaderSpec, string(canon))
	resp, err := c.do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		out, _ := io.ReadAll(resp.Body)
		return decodeAPIError(resp, out)
	}
	return nil
}
