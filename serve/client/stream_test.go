package client_test

// Truncation-detection tests: an NDJSON stream that dies mid-flight
// must surface as ErrTruncatedStream, never as a silent clean EOF.

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"hfstream"
	"hfstream/serve/client"
)

// streamServer serves the given NDJSON lines on any request, then
// either returns cleanly or kills the connection mid-stream.
func streamServer(t *testing.T, lines []string, kill bool) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		fl, _ := w.(http.Flusher)
		for _, ln := range lines {
			io.WriteString(w, ln+"\n")
			if fl != nil {
				fl.Flush()
			}
		}
		if kill {
			// Abort the handler: the server severs the connection without
			// a terminating chunk, exactly what a crashed replica does.
			panic(http.ErrAbortHandler)
		}
	}))
	t.Cleanup(ts.Close)
	return ts
}

func TestStreamTruncatedByServerKill(t *testing.T) {
	ts := streamServer(t, []string{
		`{"type":"progress","seq":1,"cycle":1000}`,
	}, true)
	st, err := client.New(ts.URL).RunStream(context.Background(), testSpec, client.StreamOpts{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	ev, err := st.Next()
	if err != nil || ev.Type != "progress" {
		t.Fatalf("first event: %+v, %v", ev, err)
	}
	if _, err := st.Next(); !errors.Is(err, client.ErrTruncatedStream) {
		t.Fatalf("after mid-stream kill: err = %v, want ErrTruncatedStream", err)
	}
}

func TestStreamTruncatedByCleanCloseWithoutDone(t *testing.T) {
	// The dangerous case: the response ends *cleanly* (proper chunked
	// terminator) but no terminal event was sent — e.g. a proxy timed the
	// backend out and closed the downstream politely. Byte-level nothing
	// is wrong; protocol-level the run never finished.
	ts := streamServer(t, []string{
		`{"type":"progress","seq":1,"cycle":1000}`,
		`{"type":"progress","seq":2,"cycle":2000}`,
	}, false)
	st, err := client.New(ts.URL).RunStream(context.Background(), testSpec, client.StreamOpts{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	events, err := st.All()
	if !errors.Is(err, client.ErrTruncatedStream) {
		t.Fatalf("All() err = %v, want ErrTruncatedStream", err)
	}
	if len(events) != 2 {
		t.Fatalf("All() kept %d events before the truncation", len(events))
	}
}

func TestStreamRunLevelErrorIsTerminal(t *testing.T) {
	// A /run stream that ends on a run-level error event (no done
	// follows it by design) is complete, not truncated.
	ts := streamServer(t, []string{
		`{"type":"progress","seq":1,"cycle":1000}`,
		`{"type":"error","seq":2,"error":{"code":"deadlock","message":"stalled"}}`,
	}, false)
	st, err := client.New(ts.URL).RunStream(context.Background(), testSpec, client.StreamOpts{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	events, err := st.All()
	if err != nil {
		t.Fatalf("run-level error stream: %v, want clean EOF", err)
	}
	if len(events) != 2 || events[1].Type != "error" {
		t.Fatalf("events = %+v", events)
	}
}

// TestStreamRealServerKilledMidRun drives a real serve.Server through a
// reverse proxy that cuts the connection after the first newline — the
// end-to-end version of the kill test.
func TestStreamRealServerKilledMidRun(t *testing.T) {
	_, cl := newServerAndClient(t)
	// Sanity: against the healthy server the same stream is complete.
	st, err := cl.RunStream(context.Background(), testSpec, client.StreamOpts{ProgressEvery: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.All(); err != nil {
		t.Fatalf("healthy stream: %v", err)
	}
	st.Close()

	// A sweep's per-cell error events carry their Spec and must NOT be
	// terminal: cells after a failed one still arrive.
	spec := hfstream.Spec{Bench: "bzip2", Design: "EXISTING"}
	cell, _ := json.Marshal(spec)
	ts := streamServer(t, []string{
		`{"type":"error","seq":1,"spec":` + string(cell) + `,"error":{"code":"run_failed","message":"cell failed"}}`,
		`{"type":"done","seq":2,"cells":1,"ran":0,"errors":1}`,
	}, false)
	st2, err := client.New(ts.URL).RunStream(context.Background(), testSpec, client.StreamOpts{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	events, err := st2.All()
	if err != nil {
		t.Fatalf("sweep-style stream with a per-cell error: %v", err)
	}
	if len(events) != 2 || events[1].Type != "done" {
		t.Fatalf("events = %+v", events)
	}
}
