package client_test

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"hfstream"
	"hfstream/serve"
	"hfstream/serve/client"
)

// flakyHandler answers failCode/failBody for the first failN requests,
// then delegates to ok.
func flakyHandler(failN int, failCode int, failBody string, hdr map[string]string, ok http.Handler) (http.Handler, *int) {
	n := 0
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n++
		if n <= failN {
			for k, v := range hdr {
				w.Header().Set(k, v)
			}
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(failCode)
			io.WriteString(w, failBody)
			return
		}
		ok.ServeHTTP(w, r)
	}), &n
}

const queueFullBody = `{"error":{"code":"queue_full","message":"admission queue full"}}` + "\n"

// TestClientRetriesQueueFull: two 429s then success — the retry layer
// absorbs the shed requests, and Retries() accounts for them.
func TestClientRetriesQueueFull(t *testing.T) {
	okSrv := serve.New(serve.Config{Workers: 1})
	h, attempts := flakyHandler(2, http.StatusTooManyRequests, queueFullBody,
		map[string]string{"Retry-After": "1"}, okSrv.Handler())
	ts := httptest.NewServer(h)
	defer ts.Close()

	var waits []time.Duration
	cl := client.New(ts.URL, client.WithRetry(client.RetryPolicy{
		MaxAttempts: 4, Seed: 42,
		Sleep: func(d time.Duration) { waits = append(waits, d) },
	}))
	res, err := cl.Run(context.Background(), hfstream.Spec{Bench: "bzip2", Design: "EXISTING"})
	if err != nil {
		t.Fatalf("run through two 429s: %v", err)
	}
	if len(res.Body) == 0 || res.Cache != "miss" {
		t.Fatalf("retried run result: cache=%q len=%d", res.Cache, len(res.Body))
	}
	if *attempts != 3 || cl.Retries() != 2 {
		t.Fatalf("attempts=%d retries=%d, want 3/2", *attempts, cl.Retries())
	}
	// Retry-After: 1 floors every backoff below one second.
	for i, w := range waits {
		if w < time.Second {
			t.Errorf("wait %d = %v, shorter than the server's Retry-After hint", i, w)
		}
	}
}

// TestClientRetryHonorsRetryAfter: a draining replica's Retry-After: 2
// stretches the wait past what exponential backoff alone would pick.
func TestClientRetryHonorsRetryAfter(t *testing.T) {
	okSrv := serve.New(serve.Config{Workers: 1})
	body := `{"error":{"code":"draining","message":"server is draining"}}` + "\n"
	h, _ := flakyHandler(1, http.StatusServiceUnavailable, body,
		map[string]string{"Retry-After": "2"}, okSrv.Handler())
	ts := httptest.NewServer(h)
	defer ts.Close()

	var waits []time.Duration
	cl := client.New(ts.URL, client.WithRetry(client.RetryPolicy{
		MaxAttempts: 2, Seed: 1,
		Sleep: func(d time.Duration) { waits = append(waits, d) },
	}))
	if _, err := cl.Metrics(context.Background()); err != nil {
		t.Fatalf("metrics through a drain blip: %v", err)
	}
	if len(waits) != 1 || waits[0] < 2*time.Second {
		t.Fatalf("waits = %v, want one wait ≥ 2s (the Retry-After floor)", waits)
	}
}

// TestClientNoRetryOnBadRequest: deterministic failures burn exactly
// one attempt — retrying a rejected spec would fail identically.
func TestClientNoRetryOnBadRequest(t *testing.T) {
	s := serve.New(serve.Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	slept := 0
	cl := client.New(ts.URL, client.WithRetry(client.RetryPolicy{
		MaxAttempts: 5, Sleep: func(time.Duration) { slept++ },
	}))
	_, err := cl.Run(context.Background(), hfstream.Spec{Bench: "no-such-bench"})
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.Detail.Code != "bad_request" {
		t.Fatalf("err = %v", err)
	}
	if slept != 0 || cl.Retries() != 0 {
		t.Fatalf("bad_request was retried: slept=%d retries=%d", slept, cl.Retries())
	}
}

// TestClientRetryAttemptsBounded: a server that never recovers costs
// exactly MaxAttempts requests, then the typed error surfaces.
func TestClientRetryAttemptsBounded(t *testing.T) {
	h, attempts := flakyHandler(1_000_000, http.StatusTooManyRequests, queueFullBody, nil,
		http.NotFoundHandler())
	ts := httptest.NewServer(h)
	defer ts.Close()

	cl := client.New(ts.URL, client.WithRetry(client.RetryPolicy{
		MaxAttempts: 3, Sleep: func(time.Duration) {},
	}))
	_, err := cl.Metrics(context.Background())
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.Detail.Code != "queue_full" {
		t.Fatalf("exhausted retries: err = %v", err)
	}
	if *attempts != 3 || cl.Retries() != 2 {
		t.Fatalf("attempts=%d retries=%d, want 3/2", *attempts, cl.Retries())
	}
}

// TestRetryableTable pins the one retryability table.
func TestRetryableTable(t *testing.T) {
	api := func(status int, code string) error {
		return &client.APIError{Status: status, Detail: serve.ErrorDetail{Code: code}}
	}
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"ctx-canceled", context.Canceled, false},
		{"ctx-deadline", fmt.Errorf("wrapped: %w", context.DeadlineExceeded), false},
		{"queue_full", api(429, "queue_full"), true},
		{"draining", api(503, "draining"), true},
		{"internal", api(500, "internal"), true},
		{"bad_request", api(400, "bad_request"), false},
		{"not_cached", api(404, "not_cached"), false},
		{"deadlock", api(422, "deadlock"), false},
		{"run_failed", api(500, "run_failed"), false},
		{"canceled", api(499, "canceled"), false},
		{"timeout", api(504, "timeout"), false},
		{"integrity", api(400, "integrity"), false},
		{"unknown-code-429", api(429, "rate_limited"), true},
		{"unknown-code-502", api(502, "upstream"), true},
		{"unknown-code-501", api(501, "not_impl"), false},
		{"unknown-code-403", api(403, "forbidden"), false},
		{"integrity-error", &client.IntegrityError{Key: "k"}, true},
		{"transport", errors.New("connection reset by peer"), true},
	}
	for _, c := range cases {
		if got := client.Retryable(c.err); got != c.want {
			t.Errorf("Retryable(%s) = %v, want %v", c.name, got, c.want)
		}
	}
}

// TestClientRetryCtxCancel: a dead context stops the loop even when the
// error class is retryable.
func TestClientRetryCtxCancel(t *testing.T) {
	h, attempts := flakyHandler(1_000_000, http.StatusTooManyRequests, queueFullBody, nil,
		http.NotFoundHandler())
	ts := httptest.NewServer(h)
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cl := client.New(ts.URL, client.WithRetry(client.RetryPolicy{
		MaxAttempts: 10, Sleep: func(time.Duration) { cancel() },
	}))
	_, err := cl.Metrics(ctx)
	if err == nil {
		t.Fatal("metrics succeeded against a 429-only server")
	}
	if *attempts > 2 {
		t.Fatalf("canceled retry loop made %d attempts", *attempts)
	}
}
