package client_test

// The client package's own tests run against a real serve.Server, so
// they double-check the wire contract in serve/API.md from the consumer
// side: typed results, typed error envelopes, NDJSON event iteration,
// and the peer-tier verbs.

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"hfstream"
	"hfstream/serve"
	"hfstream/serve/client"
)

func newServerAndClient(t *testing.T) (*serve.Server, *client.Client) {
	t.Helper()
	s := serve.New(serve.Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, client.New(ts.URL)
}

var testSpec = hfstream.Spec{Bench: "bzip2", Design: "EXISTING"}

func TestClientRun(t *testing.T) {
	_, cl := newServerAndClient(t)
	ctx := context.Background()

	res, err := cl.Run(ctx, testSpec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cache != "miss" || len(res.Key) != 64 || len(res.Body) == 0 {
		t.Fatalf("cold run: cache=%q key=%q len=%d", res.Cache, res.Key, len(res.Body))
	}
	hot, err := cl.Run(ctx, testSpec)
	if err != nil {
		t.Fatal(err)
	}
	if hot.Cache != "hit" || !bytes.Equal(hot.Body, res.Body) || hot.Key != res.Key {
		t.Fatalf("hot run: cache=%q, body match=%v", hot.Cache, bytes.Equal(hot.Body, res.Body))
	}
}

func TestClientRunAPIError(t *testing.T) {
	_, cl := newServerAndClient(t)
	_, err := cl.Run(context.Background(), hfstream.Spec{Bench: "no-such-bench"})
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("error type %T: %v", err, err)
	}
	if apiErr.Status != http.StatusBadRequest || apiErr.Detail.Code != "bad_request" {
		t.Fatalf("APIError = %+v", apiErr)
	}
	if !strings.Contains(apiErr.Error(), "bad_request") {
		t.Errorf("Error() = %q, want the code in the message", apiErr.Error())
	}
}

func TestClientRunStream(t *testing.T) {
	_, cl := newServerAndClient(t)
	st, err := cl.RunStream(context.Background(), testSpec, client.StreamOpts{ProgressEvery: 5000})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	events, err := st.All()
	if err != nil {
		t.Fatal(err)
	}
	var progress, metrics, done int
	var lastSeq uint64
	for i, ev := range events {
		if i > 0 && ev.Seq <= lastSeq {
			t.Fatalf("event %d: seq %d not monotone after %d", i, ev.Seq, lastSeq)
		}
		lastSeq = ev.Seq
		switch ev.Type {
		case "progress":
			progress++
		case "metrics":
			metrics++
			if ev.Cache != "miss" || ev.Body == "" {
				t.Errorf("metrics event: cache=%q body empty=%v", ev.Cache, ev.Body == "")
			}
		case "done":
			done++
		}
	}
	if progress == 0 || metrics != 1 || done != 1 {
		t.Fatalf("stream shape: %d progress, %d metrics, %d done", progress, metrics, done)
	}
	// After All, the iterator is exhausted.
	if _, err := st.Next(); err != io.EOF {
		t.Fatalf("Next after All: %v, want io.EOF", err)
	}
}

func TestClientSweep(t *testing.T) {
	srv, cl := newServerAndClient(t)
	st, err := cl.Sweep(context.Background(), serve.SweepRequest{
		Benches: []string{"bzip2"}, Designs: []string{"EXISTING", "MEMOPTI"}})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	events, err := st.All()
	if err != nil {
		t.Fatal(err)
	}
	last := events[len(events)-1]
	if last.Type != "done" || last.Cells != 2 || last.Ran != 2 || last.Errors != 0 {
		t.Fatalf("sweep done = %+v", last)
	}
	if runs := srv.Metrics().Runs; runs != 2 {
		t.Fatalf("sweep simulated %d cells", runs)
	}

	// A bad grid fails before any event streams: a typed *APIError.
	_, err = cl.Sweep(context.Background(), serve.SweepRequest{})
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest {
		t.Fatalf("empty sweep error = %v", err)
	}
}

func TestClientMetricsAndHealth(t *testing.T) {
	srv, cl := newServerAndClient(t)
	ctx := context.Background()
	if _, err := cl.Run(ctx, testSpec); err != nil {
		t.Fatal(err)
	}
	m, err := cl.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.Runs != 1 || m.Requests != 1 {
		t.Fatalf("metrics = %+v", m)
	}
	h, err := cl.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" {
		t.Fatalf("health = %+v", h)
	}
	srv.BeginDrain()
	if h, err = cl.Health(ctx); err != nil || h.Status != "draining" {
		t.Fatalf("draining health = %+v, err=%v", h, err)
	}
}

func TestClientPeerVerbs(t *testing.T) {
	// Two replicas: run on A for a real (key, body), publish to B, read
	// it back digest-verified.
	_, clA := newServerAndClient(t)
	_, clB := newServerAndClient(t)
	ctx := context.Background()

	res, err := clA.Run(ctx, testSpec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := clB.PeerGet(ctx, res.Key); !errors.Is(err, client.ErrNotCached) {
		t.Fatalf("cold PeerGet error = %v, want ErrNotCached match", err)
	}
	if err := clB.PeerPut(ctx, res.Key, testSpec, res.Body); err != nil {
		t.Fatal(err)
	}
	got, err := clB.PeerGet(ctx, res.Key)
	if err != nil || !bytes.Equal(got, res.Body) {
		t.Fatalf("PeerGet after put: %d bytes, %v", len(got), err)
	}
	if err := clB.PeerPut(ctx, "bogus-key", testSpec, res.Body); err == nil {
		t.Error("PeerPut with a malformed key succeeded")
	}
	// A body that doesn't belong to the key is refused server-side with
	// the typed integrity/bad_request envelope.
	otherKey := strings.Repeat("cd", 32)
	var apiErr *client.APIError
	if err := clB.PeerPut(ctx, otherKey, testSpec, res.Body); !errors.As(err, &apiErr) {
		t.Errorf("PeerPut under a foreign key: err=%v, want *APIError", err)
	}
}

// TestClientPeerGetDigestVerification: a server that serves bytes with
// a wrong (or missing) digest header gets caught client-side with a
// typed *IntegrityError — the bytes never reach the caller.
func TestClientPeerGetDigestVerification(t *testing.T) {
	body := []byte(`{"benchmark":"bzip2","design":"SINGLE"}`)
	var digest string // per-case
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if digest != "" {
			w.Header().Set(serve.HeaderDigest, digest)
		}
		w.Write(body)
	}))
	defer ts.Close()
	cl := client.New(ts.URL)
	ctx := context.Background()
	key := strings.Repeat("ab", 32)

	// Honest digest: bytes flow.
	digest = serve.Digest(body)
	got, err := cl.PeerGet(ctx, key)
	if err != nil || !bytes.Equal(got, body) {
		t.Fatalf("verified PeerGet: %v", err)
	}
	// Wrong digest (a corrupted or truncated transfer): typed error.
	digest = serve.Digest([]byte("other"))
	var ie *client.IntegrityError
	if _, err := cl.PeerGet(ctx, key); !errors.As(err, &ie) {
		t.Fatalf("corrupt PeerGet error = %v, want *IntegrityError", err)
	}
	// Missing digest (a legacy or hostile peer): also refused.
	digest = ""
	if _, err := cl.PeerGet(ctx, key); !errors.As(err, &ie) {
		t.Fatalf("digestless PeerGet error = %v, want *IntegrityError", err)
	}
}

// TestClientNonEnvelopeError: a proxy-style failure (non-JSON body)
// still surfaces as a typed *APIError instead of a decode error.
func TestClientNonEnvelopeError(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "bad gateway", http.StatusBadGateway)
	}))
	defer ts.Close()
	_, err := client.New(ts.URL).Run(context.Background(), testSpec)
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("error type %T", err)
	}
	if apiErr.Status != http.StatusBadGateway || apiErr.Detail.Code != "internal" ||
		apiErr.Detail.Message != "bad gateway" {
		t.Fatalf("APIError = %+v", apiErr)
	}
}
