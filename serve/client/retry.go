package client

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// RetryPolicy configures WithRetry: bounded attempts with exponential
// backoff and seeded jitter. The zero value of any field falls back to
// the defaults noted per field.
type RetryPolicy struct {
	// MaxAttempts bounds the total tries, first attempt included
	// (0 = 3). A policy never retries past this, whatever the server
	// hints.
	MaxAttempts int
	// BaseDelay is the first backoff step (0 = 50ms).
	BaseDelay time.Duration
	// MaxDelay caps the exponential growth (0 = 2s).
	MaxDelay time.Duration
	// Multiplier is the per-attempt growth factor (0 = 2).
	Multiplier float64
	// Seed feeds the jitter PRNG so a retry schedule replays exactly
	// (the same property every other seeded subsystem here has).
	Seed int64
	// Sleep is a test seam replacing the context-aware wait
	// (nil = real sleep).
	Sleep func(time.Duration)
}

// withDefaults resolves zero fields.
func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts == 0 {
		p.MaxAttempts = 3
	}
	if p.BaseDelay == 0 {
		p.BaseDelay = 50 * time.Millisecond
	}
	if p.MaxDelay == 0 {
		p.MaxDelay = 2 * time.Second
	}
	if p.Multiplier == 0 {
		p.Multiplier = 2
	}
	return p
}

// WithRetry enables transparent retries on the unary client calls
// (Run, Metrics, PeerGet, PeerPut). Streaming calls are never retried
// — a stream is not idempotent from the middle, and its failure mode
// is the typed ErrTruncatedStream. Whether an error is worth retrying
// is decided by Retryable, the one retryability table.
func WithRetry(p RetryPolicy) Option {
	return func(c *Client) {
		pol := p.withDefaults()
		c.retry = &retrier{policy: pol, rng: rand.New(rand.NewSource(pol.Seed))}
	}
}

// Retries reports how many retry attempts (beyond first tries) this
// client has performed — the error-budget currency cmd/hfload reports.
func (c *Client) Retries() uint64 {
	if c.retry == nil {
		return 0
	}
	return c.retry.retries.Load()
}

// Retryable is the per-class retryability table, in one place so every
// caller agrees on it. The rule mirrors the fault taxonomy: transient
// conditions (overload, drain, transport failure, a corrupted transfer
// that a re-fetch would redo) are retryable; deterministic outcomes
// (a rejected spec, a run that deadlocks, a key the shard simply does
// not hold) would fail identically again and are not.
func Retryable(err error) bool {
	if err == nil {
		return false
	}
	// A canceled or expired context belongs to the caller; retrying
	// against it only burns the deadline further.
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var apiErr *APIError
	if errors.As(err, &apiErr) {
		switch apiErr.Detail.Code {
		case "queue_full", "draining", "internal":
			return true
		case "bad_request", "not_cached", "deadlock", "run_failed",
			"canceled", "timeout", "integrity":
			// timeout (504) means the job itself exceeded its budget —
			// deterministic, a retry would burn the same budget again.
			// integrity on a PUT means the receiver saw damaged bytes;
			// the peer store path handles that by dropping, not
			// insisting.
			return false
		}
		// Unknown code (e.g. a proxy's non-envelope body decoded as
		// "internal" is handled above; anything else): judge by status.
		return apiErr.Status == 429 || (apiErr.Status >= 500 && apiErr.Status != 501)
	}
	// A body that failed digest verification was damaged in flight;
	// re-fetching redraws the channel.
	var ie *IntegrityError
	if errors.As(err, &ie) {
		return true
	}
	// Anything else is a transport-level failure (reset, refused,
	// EOF): the request may never have reached the server.
	return true
}

// retrier holds the per-client retry state.
type retrier struct {
	policy  RetryPolicy
	mu      sync.Mutex
	rng     *rand.Rand
	retries atomic.Uint64
}

// backoff computes the wait before attempt+2: jittered exponential
// backoff, floored by any server Retry-After hint.
func (r *retrier) backoff(attempt int, retryAfter time.Duration) time.Duration {
	d := float64(r.policy.BaseDelay) * math.Pow(r.policy.Multiplier, float64(attempt))
	if d > float64(r.policy.MaxDelay) {
		d = float64(r.policy.MaxDelay)
	}
	r.mu.Lock()
	jitter := 0.5 + 0.5*r.rng.Float64() // in [0.5, 1.0): full-jitter lower half
	r.mu.Unlock()
	wait := time.Duration(d * jitter)
	if retryAfter > wait {
		wait = retryAfter
	}
	return wait
}

// sleep waits for d or until ctx is done, whichever is first.
func (r *retrier) sleep(ctx context.Context, d time.Duration) {
	if r.policy.Sleep != nil {
		r.policy.Sleep(d)
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

// withRetry runs op under the client's retry policy (or once, when no
// policy is configured).
func (c *Client) withRetry(ctx context.Context, op func() error) error {
	if c.retry == nil {
		return op()
	}
	var err error
	for attempt := 0; ; attempt++ {
		err = op()
		if err == nil || !Retryable(err) {
			return err
		}
		if attempt+1 >= c.retry.policy.MaxAttempts || ctx.Err() != nil {
			return err
		}
		var ra time.Duration
		var apiErr *APIError
		if errors.As(err, &apiErr) {
			ra = apiErr.RetryAfter
		}
		c.retry.retries.Add(1)
		c.retry.sleep(ctx, c.retry.backoff(attempt, ra))
	}
}
