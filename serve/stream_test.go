package serve

// Streaming battery: the NDJSON /run mode and the /sweep grid endpoint.
// These run under -race via `make race` (the whole serve package does)
// and under both fast-forward modes via `make serve-diff` /
// `make serve-diff-noff` — the stream bodies are part of the
// byte-equivalence contract the differential battery pins at the root.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"hfstream"
)

// readStream posts a body to path and decodes every NDJSON line,
// asserting the content type and strictly monotone sequence numbers.
func readStream(t *testing.T, url, path, body string) []StreamEvent {
	t.Helper()
	resp, err := http.Post(url+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("%s: status %d (%s)", path, resp.StatusCode, raw)
	}
	if ct := resp.Header.Get("Content-Type"); ct != ndjsonContentType {
		t.Fatalf("%s: content type %q, want %q", path, ct, ndjsonContentType)
	}
	return decodeEvents(t, resp.Body)
}

func decodeEvents(t *testing.T, r io.Reader) []StreamEvent {
	t.Helper()
	var events []StreamEvent
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		var ev StreamEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("non-event stream line %q: %v", sc.Text(), err)
		}
		if want := uint64(len(events)); ev.Seq != want {
			t.Fatalf("event %d has seq %d, want strictly monotone from 0", len(events), ev.Seq)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return events
}

// terminal splits a stream into (progress..., result, done?) and
// returns the result event (metrics or error) plus whether a done
// event closed the stream.
func terminal(t *testing.T, events []StreamEvent) (StreamEvent, bool) {
	t.Helper()
	if len(events) == 0 {
		t.Fatal("empty stream")
	}
	last := events[len(events)-1]
	if last.Type == eventDone {
		if len(events) < 2 {
			t.Fatal("done event with no result event before it")
		}
		return events[len(events)-2], true
	}
	return last, false
}

func TestStreamRunEmitsTypedEvents(t *testing.T) {
	s := New(Config{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	spec := hfstream.Spec{Bench: "adpcmdec", Design: "SYNCOPTI"}
	var direct bytes.Buffer
	if _, err := spec.RunCtx(context.Background(), hfstream.WithMetrics(&direct)); err != nil {
		t.Fatal(err)
	}

	// Cold: a tight progress cadence must yield at least one heartbeat
	// before the metrics event, and the body must be the exact
	// non-streaming bytes.
	events := readStream(t, ts.URL, "/run?stream=ndjson&progress_every=100", `{"bench":"adpcmdec","design":"SYNCOPTI"}`)
	res, done := terminal(t, events)
	if !done {
		t.Fatalf("cold stream did not close with a done event: %+v", events[len(events)-1])
	}
	if res.Type != eventMetrics || res.Cache != "miss" || res.Status != 200 {
		t.Fatalf("cold result event = %+v, want metrics/miss/200", res)
	}
	if res.Body != direct.String() {
		t.Fatalf("cold stream body differs from direct API bytes:\n%q\nvs\n%q", res.Body, direct.String())
	}
	progress := 0
	for _, ev := range events[:len(events)-2] {
		if ev.Type != eventProgress {
			t.Fatalf("pre-result event of type %q, want only progress", ev.Type)
		}
		progress++
	}
	if progress == 0 {
		t.Fatal("no progress events at a 100-cycle cadence")
	}
	for i := 1; i < progress; i++ {
		if events[i].Cycle <= events[i-1].Cycle {
			t.Fatalf("progress cycles not increasing: %d then %d", events[i-1].Cycle, events[i].Cycle)
		}
	}

	// Hot: served straight from the cache — no progress, same bytes.
	events = readStream(t, ts.URL, "/run?stream=ndjson", `{"bench":"adpcmdec","design":"SYNCOPTI"}`)
	if len(events) != 2 {
		t.Fatalf("cached stream has %d events, want metrics+done", len(events))
	}
	if events[0].Type != eventMetrics || events[0].Cache != "hit" || events[0].Body != direct.String() {
		t.Fatalf("cached stream result = %+v, want hit with identical body", events[0])
	}
	if m := s.Metrics(); m.Runs != 1 || m.Streams != 2 {
		t.Fatalf("runs=%d streams=%d, want 1 run (the cold stream) across 2 streams", m.Runs, m.Streams)
	}
}

func TestStreamRunErrorsAreTypedEvents(t *testing.T) {
	// A run failure after the stream has started must arrive as an error
	// event carrying the same typed detail as the blocking envelope.
	s := New(Config{Workers: 1, JobTimeout: time.Nanosecond})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	events := readStream(t, ts.URL, "/run?stream=ndjson", `{"bench":"bzip2","design":"EXISTING"}`)
	res, done := terminal(t, events)
	if done {
		t.Fatal("failed stream must not emit done")
	}
	if res.Type != eventError || res.Status != http.StatusGatewayTimeout || res.Error == nil || res.Error.Code != codeTimeout {
		t.Fatalf("error event = %+v, want typed 504/timeout", res)
	}

	// Pre-stream failures are plain HTTP errors, not streams.
	resp, err := http.Post(ts.URL+"/run?stream=ndjson", "application/json", strings.NewReader(`{"bench":"nope"}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || errCode(t, body) != codeBadRequest {
		t.Fatalf("bad spec with stream=ndjson: status=%d body=%s, want plain 400", resp.StatusCode, body)
	}
	resp, err = http.Post(ts.URL+"/run?stream=sse", "application/json", strings.NewReader(`{"bench":"wc","design":"EXISTING"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unsupported stream mode: status %d, want 400", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/run?stream=ndjson&progress_every=x", "application/json", strings.NewReader(`{"bench":"wc","design":"EXISTING"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad progress_every: status %d, want 400", resp.StatusCode)
	}
}

// TestStreamClientCancelStopsRun: dropping a streaming request cancels
// the underlying job through the request context within a bounded wait,
// the canceled result is never cached, and no goroutine survives the
// request. Uses the gated seam so the cancel/complete race is
// deterministic.
func TestStreamClientCancelStopsRun(t *testing.T) {
	before := runtime.NumGoroutine()
	s, _ := gatedServer(Config{Workers: 1, QueueDepth: 4})
	ts := httptest.NewServer(s.Handler())

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/run?stream=ndjson",
		strings.NewReader(`{"bench":"wc","design":"EXISTING"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	// Headers arrive immediately; the gate holds the run open. Cancel the
	// request and the job context must die with it.
	waitFor(t, func() bool { return s.runs.Load() == 1 })
	cancel()
	resp.Body.Close()
	waitFor(t, func() bool { return s.pool.Pending() == 0 })

	key, err := hfstream.Spec{Bench: "wc", Design: "EXISTING"}.Key()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.cache.Get(key); ok {
		t.Fatal("canceled run was cached")
	}
	if m := s.Metrics(); m.Failures != 1 {
		t.Fatalf("failures = %d, want the canceled run counted once", m.Failures)
	}

	// Leak check: with the server closed and idle connections dropped,
	// the goroutine count returns to its pre-test level (small slack for
	// the runtime's own background goroutines).
	ts.Close()
	http.DefaultClient.CloseIdleConnections()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before+3 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestStreamClientCancelStopsRealSimulation: a dead request context
// must reach sim.Config.Cancel of a real simulation and surface as a
// CanceledError-backed 499 error event, never a cached body. The
// kernels are fast enough that racing a live run against an HTTP
// disconnect flakes, so the schedule is forced instead: streamRun is
// driven directly with a test-owned request context, a blocker holds
// the only worker until the context is canceled, and the simulation
// then starts against an already-dead context — the pre-closed-Cancel
// abort path the ffguard tests pin at the sim layer. (The HTTP-level
// disconnect plumbing itself is covered by
// TestStreamClientCancelStopsRun above.)
func TestStreamClientCancelStopsRealSimulation(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 4})
	gate := make(chan struct{})
	if err := s.pool.TrySubmit(func() { <-gate }); err != nil {
		t.Fatal(err)
	}

	spec, err := hfstream.Spec{Bench: "equake", Design: "EXISTING"}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	key, err := spec.Key()
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req := httptest.NewRequest(http.MethodPost, "/run?stream=ndjson", nil).WithContext(ctx)
	rec := httptest.NewRecorder()
	handlerDone := make(chan struct{})
	go func() {
		defer close(handlerDone)
		s.streamRun(rec, req, key, spec)
	}()

	// The stream is open and the job is queued behind the blocker. Kill
	// the request context, then let the simulation start: it polls its
	// already-closed Cancel channel at cycle 0 and aborts.
	waitFor(t, func() bool { return s.pool.Pending() == 2 })
	cancel()
	close(gate)
	<-handlerDone

	events := decodeEvents(t, rec.Body)
	last := events[len(events)-1]
	if last.Type != eventError || last.Status != statusClientClosed ||
		last.Error == nil || last.Error.Code != codeCanceled {
		t.Fatalf("terminal event = %+v, want a %d/%s error event", last, statusClientClosed, codeCanceled)
	}
	if _, ok := s.cache.Get(key); ok {
		t.Fatal("canceled simulation was cached")
	}
	if runs, fails := s.runs.Load(), s.failures.Load(); runs != 1 || fails != 1 {
		t.Fatalf("runs=%d failures=%d, want the simulation started once and canceled", runs, fails)
	}
}

func TestSweepStreamsCellsAndCachesByCell(t *testing.T) {
	s := New(Config{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := `{"benches":["adpcmdec"],"designs":["EXISTING","MEMOPTI"],"single":true}`
	events := readStream(t, ts.URL, "/sweep", body)
	if len(events) != 4 {
		t.Fatalf("sweep produced %d events, want 3 cells + done", len(events))
	}
	done := events[len(events)-1]
	if done.Type != eventDone || done.Cells != 3 || done.Ran != 3 || done.Hits != 0 || done.Errors != 0 {
		t.Fatalf("done tallies = %+v, want cells=3 ran=3", done)
	}
	byKey := map[string]StreamEvent{}
	for _, ev := range events[:3] {
		if ev.Type != eventMetrics || ev.Spec == nil || ev.Cache != "miss" {
			t.Fatalf("cell event = %+v, want a miss metrics event with its spec", ev)
		}
		byKey[ev.Key] = ev
	}
	if len(byKey) != 3 {
		t.Fatal("cells share keys")
	}

	// Each cell body is byte-identical to the /run response for the same
	// spec — a sweep is just /run cells under one request.
	for _, ev := range events[:3] {
		spec, err := json.Marshal(ev.Spec)
		if err != nil {
			t.Fatal(err)
		}
		status, runBody, src := post(t, ts.URL, string(spec))
		if status != 200 || src != "hit" {
			t.Fatalf("cell %s via /run: status=%d src=%q, want a 200 cache hit", spec, status, src)
		}
		if string(runBody) != ev.Body {
			t.Fatalf("cell %s: sweep body differs from /run body", spec)
		}
	}

	// Re-submitted sweep: zero new runs, every cell a hit with the same
	// bytes.
	runsBefore := s.Metrics().Runs
	again := readStream(t, ts.URL, "/sweep", body)
	doneAgain := again[len(again)-1]
	if doneAgain.Hits != 3 || doneAgain.Ran != 0 {
		t.Fatalf("re-sweep tallies = %+v, want 3 hits, 0 ran", doneAgain)
	}
	for _, ev := range again[:3] {
		want, ok := byKey[ev.Key]
		if !ok || ev.Body != want.Body {
			t.Fatalf("re-sweep cell %s bytes differ from first sweep", ev.Key)
		}
	}
	if runs := s.Metrics().Runs; runs != runsBefore {
		t.Fatalf("re-sweep started %d new runs, want 0", runs-runsBefore)
	}
}

func TestSweepValidation(t *testing.T) {
	s := New(Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []struct {
		name, body string
	}{
		{"empty grid", `{}`},
		{"no designs no single", `{"benches":["wc"]}`},
		{"unknown bench", `{"benches":["nope"],"designs":["EXISTING"]}`},
		{"unknown design", `{"benches":["wc"],"designs":["nope"]}`},
		{"stages without designs", `{"benches":["wc"],"single":true,"stages":[2]}`},
		{"stage one", `{"benches":["wc"],"designs":["EXISTING"],"stages":[1]}`},
		{"unknown field", `{"benches":["wc"],"designs":["EXISTING"],"turbo":true}`},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+"/sweep", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest || errCode(t, body) != codeBadRequest {
			t.Errorf("%s: status=%d body=%s, want typed 400", tc.name, resp.StatusCode, body)
		}
	}
	// Oversized grids are rejected before anything streams.
	stages := make([]string, 0, maxSweepCells)
	for i := 0; i < maxSweepCells; i++ {
		stages = append(stages, "2")
	}
	big := fmt.Sprintf(`{"benches":["wc","bzip2"],"designs":["EXISTING"],"stages":[%s]}`, strings.Join(stages, ","))
	resp, err := http.Post(ts.URL+"/sweep", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(body), "too large") {
		t.Fatalf("oversized grid: status=%d body=%s, want 400 too-large", resp.StatusCode, body)
	}
	if resp, err := http.Get(ts.URL + "/sweep"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("GET /sweep: %d, want 405", resp.StatusCode)
		}
	}
	if m := s.Metrics(); m.Runs != 0 {
		t.Fatalf("invalid sweeps started %d runs", m.Runs)
	}
}

// TestSweepCancelNeverCachesHalfWrittenCell: a client abandoning a
// sweep cancels in-flight cells and short-circuits unstarted ones; no
// partial cell may be published to the cache, and a later sweep re-runs
// every cell.
func TestSweepCancelNeverCachesHalfWrittenCell(t *testing.T) {
	s, gate := gatedServer(Config{Workers: 1, QueueDepth: 8})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	body := `{"benches":["wc"],"designs":["EXISTING","MEMOPTI","SYNCOPTI"]}`
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/sweep", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	// First cell is mid-simulation (gated); drop the client.
	waitFor(t, func() bool { return s.runs.Load() == 1 })
	cancel()
	resp.Body.Close()
	waitFor(t, func() bool { return s.pool.Pending() == 0 })

	for _, design := range []string{"EXISTING", "MEMOPTI", "SYNCOPTI"} {
		key, err := hfstream.Spec{Bench: "wc", Design: design}.Key()
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := s.cache.Get(key); ok {
			t.Fatalf("canceled sweep cached cell %s", design)
		}
	}

	// The same sweep afterwards runs every cell from scratch.
	close(gate)
	runsBefore := s.Metrics().Runs
	events := readStream(t, ts.URL, "/sweep", body)
	done := events[len(events)-1]
	if done.Type != eventDone || done.Ran != 3 || done.Hits != 0 {
		t.Fatalf("post-cancel sweep tallies = %+v, want 3 fresh runs", done)
	}
	if runs := s.Metrics().Runs; runs != runsBefore+3 {
		t.Fatalf("post-cancel sweep ran %d cells, want 3", runs-runsBefore)
	}
}

// TestSweepCoalescesAcrossConcurrentSweeps: two sweeps sharing a grid
// must trigger at most one simulation per unique cell between them.
func TestSweepCoalescesAcrossConcurrentSweeps(t *testing.T) {
	s := New(Config{Workers: 2, QueueDepth: 16})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := `{"benches":["adpcmdec","bzip2"],"designs":["SYNCOPTI_SC"]}`
	var wg sync.WaitGroup
	streams := make([][]StreamEvent, 2)
	for i := range streams {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			streams[i] = readStream(t, ts.URL, "/sweep", body)
		}(i)
	}
	wg.Wait()

	bodies := map[string]string{}
	for _, events := range streams {
		done := events[len(events)-1]
		if done.Type != eventDone || done.Cells != 2 || done.Errors != 0 {
			t.Fatalf("sweep done = %+v, want 2 clean cells", done)
		}
		for _, ev := range events[:len(events)-1] {
			if prev, ok := bodies[ev.Key]; ok && prev != ev.Body {
				t.Fatalf("cell %s served different bytes to concurrent sweeps", ev.Key)
			}
			bodies[ev.Key] = ev.Body
		}
	}
	if m := s.Metrics(); m.Runs != 2 {
		t.Fatalf("%d runs for 2 unique cells across 2 sweeps, want one each", m.Runs)
	}
}
