package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hfstream"
)

// post sends a /run request body and returns status, body and the cache
// provenance header.
func post(t *testing.T, url, body string) (int, []byte, string) {
	t.Helper()
	resp, err := http.Post(url+"/run", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, buf, resp.Header.Get("X-Hfserve-Cache")
}

func errCode(t *testing.T, body []byte) string {
	t.Helper()
	var e ErrorEnvelope
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatalf("non-envelope error body %q: %v", body, err)
	}
	return e.Error.Code
}

func TestServeRoundTripMatchesDirectAPI(t *testing.T) {
	s := New(Config{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	spec := hfstream.Spec{Bench: "adpcmdec", Design: "EXISTING"}
	var direct bytes.Buffer
	if _, err := spec.RunCtx(context.Background(), hfstream.WithMetrics(&direct)); err != nil {
		t.Fatal(err)
	}

	status, cold, src := post(t, ts.URL, `{"bench":"adpcmdec","design":"EXISTING"}`)
	if status != 200 || src != "miss" {
		t.Fatalf("cold: status=%d src=%q, want 200/miss", status, src)
	}
	if !bytes.Equal(cold, direct.Bytes()) {
		t.Fatalf("served body differs from direct API WithMetrics output:\nserve: %s\ndirect: %s", cold, direct.Bytes())
	}

	// Same request again: a cache hit with byte-identical body.
	status, hot, src := post(t, ts.URL, `{"bench":"adpcmdec","design":"EXISTING"}`)
	if status != 200 || src != "hit" {
		t.Fatalf("hot: status=%d src=%q, want 200/hit", status, src)
	}
	if !bytes.Equal(hot, cold) {
		t.Fatal("cache hit body differs from cold body")
	}

	// Canonicalization: field order and explicit zero values must land on
	// the same cache entry.
	status, alias, src := post(t, ts.URL, `{"design":"EXISTING","stages":0,"bench":"adpcmdec"}`)
	if status != 200 || src != "hit" {
		t.Fatalf("alias: status=%d src=%q, want 200/hit", status, src)
	}
	if !bytes.Equal(alias, cold) {
		t.Fatal("aliased request body differs")
	}
	if m := s.Metrics(); m.Runs != 1 {
		t.Fatalf("runs = %d after three identical requests, want 1", m.Runs)
	}
}

func TestServeBadRequests(t *testing.T) {
	s := New(Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []struct {
		name, body string
	}{
		{"malformed json", `{`},
		{"unknown field", `{"bench":"wc","design":"EXISTING","turbo":true}`},
		{"unknown bench", `{"bench":"nope","design":"EXISTING"}`},
		{"unknown design", `{"bench":"wc","design":"nope"}`},
		{"missing design", `{"bench":"wc"}`},
		{"stages one", `{"bench":"wc","design":"EXISTING","stages":1}`},
		{"negative stages", `{"bench":"wc","design":"EXISTING","stages":-2}`},
		{"single with design", `{"bench":"wc","design":"EXISTING","single":true}`},
		{"single with stages", `{"bench":"wc","single":true,"stages":3}`},
	}
	for _, tc := range cases {
		status, body, _ := post(t, ts.URL, tc.body)
		if status != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (body %s)", tc.name, status, body)
			continue
		}
		if code := errCode(t, body); code != codeBadRequest {
			t.Errorf("%s: code %q, want %q", tc.name, code, codeBadRequest)
		}
	}
	if m := s.Metrics(); m.Runs != 0 {
		t.Fatalf("bad requests started %d runs, want 0", m.Runs)
	}

	resp, err := http.Get(ts.URL + "/run")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /run: %d, want 405", resp.StatusCode)
	}
}

// gatedServer overrides the run seam with a job that blocks on a gate,
// so queue occupancy and drain ordering become deterministic. A run
// whose context dies before the gate opens resolves to the typed
// canceled outcome, mirroring execSpec's classification.
func gatedServer(cfg Config) (*Server, chan struct{}) {
	s := New(cfg)
	gate := make(chan struct{})
	s.run = func(ctx context.Context, spec hfstream.Spec, hooks *streamHooks) *outcome {
		s.runs.Add(1)
		select {
		case <-gate:
		case <-ctx.Done():
			if ctx.Err() == context.Canceled {
				s.failures.Add(1)
				return errorOutcome(statusClientClosed, codeCanceled, "gated run canceled", nil)
			}
		}
		return &outcome{status: 200, body: []byte(`{"gated":true}` + "\n"), source: "miss", ok: true}
	}
	return s, gate
}

func TestServeShedsWhenQueueFull(t *testing.T) {
	s, gate := gatedServer(Config{Workers: 1, QueueDepth: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Distinct specs so coalescing cannot absorb them: one in flight, one
	// queued, the rest shed.
	admitted := make(chan int, 2)
	go func() {
		status, _, _ := post(t, ts.URL, `{"bench":"wc","design":"EXISTING"}`)
		admitted <- status
	}()
	// Wait for the worker to take the first job so the queue slot is free.
	waitFor(t, func() bool { return s.pool.Pending() == 1 && s.pool.QueueLen() == 0 })
	go func() {
		status, _, _ := post(t, ts.URL, `{"bench":"wc","design":"MEMOPTI"}`)
		admitted <- status
	}()
	waitFor(t, func() bool { return s.pool.Pending() == 2 })

	// Worker busy and queue full: further distinct requests shed with the
	// typed 429 immediately, before the gate ever opens.
	for _, d := range []string{"SYNCOPTI", "HEAVYWT"} {
		status, body, _ := post(t, ts.URL, `{"bench":"wc","design":"`+d+`"}`)
		if status != http.StatusTooManyRequests || errCode(t, body) != codeQueueFull {
			t.Fatalf("%s: status=%d body=%s, want typed 429", d, status, body)
		}
	}
	close(gate)
	for i := 0; i < 2; i++ {
		if st := <-admitted; st != 200 {
			t.Fatalf("admitted request finished with %d, want 200", st)
		}
	}
	m := s.Metrics()
	if m.ShedQueueFull != 2 || m.Runs != 2 {
		t.Fatalf("shed=%d runs=%d, want 2/2", m.ShedQueueFull, m.Runs)
	}
}

func TestServeDrainRejectsNewAndFinishesInFlight(t *testing.T) {
	s, gate := gatedServer(Config{Workers: 1, QueueDepth: 4})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	inflight := make(chan struct {
		status int
		body   []byte
	}, 1)
	go func() {
		status, body, _ := post(t, ts.URL, `{"bench":"wc","design":"EXISTING"}`)
		inflight <- struct {
			status int
			body   []byte
		}{status, body}
	}()
	waitFor(t, func() bool { return s.inFlight() == 1 })

	s.BeginDrain()

	// healthz flips to draining and new work is rejected with the typed
	// 503, while the in-flight job is still running.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining: %d, want 503", resp.StatusCode)
	}
	status, body, _ := post(t, ts.URL, `{"bench":"wc","design":"MEMOPTI"}`)
	if status != http.StatusServiceUnavailable || errCode(t, body) != codeDraining {
		t.Fatalf("new request while draining: status=%d body=%s, want typed 503", status, body)
	}

	// Drain must block on the in-flight job, then complete cleanly.
	drained := make(chan error, 1)
	go func() { drained <- s.Drain(context.Background()) }()
	select {
	case err := <-drained:
		t.Fatalf("Drain returned (%v) while a job was still in flight", err)
	case <-time.After(50 * time.Millisecond):
	}
	close(gate)
	if err := <-drained; err != nil {
		t.Fatalf("Drain: %v", err)
	}
	r := <-inflight
	if r.status != 200 {
		t.Fatalf("in-flight request finished with %d (%s), want 200", r.status, r.body)
	}
	if m := s.Metrics(); m.RejectedDraining == 0 || !m.Draining {
		t.Fatalf("metrics after drain: rejected=%d draining=%v", m.RejectedDraining, m.Draining)
	}
}

func TestServeDrainDeadlineCancelsJobs(t *testing.T) {
	s, _ := gatedServer(Config{Workers: 1, QueueDepth: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	done := make(chan int, 1)
	go func() {
		status, _, _ := post(t, ts.URL, `{"bench":"wc","design":"EXISTING"}`)
		done <- status
	}()
	waitFor(t, func() bool { return s.inFlight() == 1 })

	// The gate never opens: an expired drain budget must cancel the job
	// through its context rather than hang forever.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); err != context.DeadlineExceeded {
		t.Fatalf("Drain = %v, want DeadlineExceeded", err)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("canceled job never finished")
	}
}

func TestServeJobTimeoutIsTyped(t *testing.T) {
	// A nanosecond budget cancels the simulation almost immediately; the
	// service must map that to the typed 504, not a generic failure.
	s := New(Config{Workers: 1, JobTimeout: time.Nanosecond})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	status, body, _ := post(t, ts.URL, `{"bench":"bzip2","design":"EXISTING"}`)
	if status != http.StatusGatewayTimeout || errCode(t, body) != codeTimeout {
		t.Fatalf("status=%d body=%s, want 504/timeout", status, body)
	}
	if m := s.Metrics(); m.Failures != 1 {
		t.Fatalf("failures = %d, want 1", m.Failures)
	}

	// Failed runs must not be cached: the same spec under a sane budget
	// succeeds.
	s.cfg.JobTimeout = DefaultJobTimeout
	status, _, src := post(t, ts.URL, `{"bench":"bzip2","design":"EXISTING"}`)
	if status != 200 || src != "miss" {
		t.Fatalf("retry after timeout: status=%d src=%q, want 200/miss", status, src)
	}
}

func TestServeMetricsEndpoint(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 2, CacheBytes: 1 << 20})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post(t, ts.URL, `{"bench":"adpcmdec","design":"EXISTING"}`)
	post(t, ts.URL, `{"bench":"adpcmdec","design":"EXISTING"}`)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m Metrics
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.Requests != 2 || m.Runs != 1 || m.CacheHits != 1 || m.CacheMisses != 1 {
		t.Fatalf("requests=%d runs=%d hits=%d misses=%d, want 2/1/1/1",
			m.Requests, m.Runs, m.CacheHits, m.CacheMisses)
	}
	if m.Cache.Entries != 1 || m.Cache.Bytes == 0 {
		t.Fatalf("cache entries=%d bytes=%d, want one resident entry", m.Cache.Entries, m.Cache.Bytes)
	}
	if m.Simulated.Cycles == 0 || m.Simulated.Instructions == 0 || m.Simulated.StallCycles == 0 {
		t.Fatalf("simulated totals not aggregated: %+v", m.Simulated)
	}
}

// waitFor polls cond with a deadline; used to sequence concurrent
// requests deterministically without sleeping blind.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never reached")
		}
		time.Sleep(time.Millisecond)
	}
}
