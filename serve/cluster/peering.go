package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"hfstream"
	"hfstream/serve"
	"hfstream/serve/client"
)

// Defaults for the zero-ish Config fields.
const (
	// DefaultReplication is how many owner shards a key is stored to and
	// fetched from: 2 means a key survives one replica death without
	// losing its cached bytes, and a fill has a failover candidate while
	// the primary owner is down.
	DefaultReplication = 2
	// DefaultFillTimeout bounds one peer-fill attempt. It is deliberately
	// tight: a fill races a local simulation that would take milliseconds
	// to minutes, but a healthy peer answers a cache lookup in
	// microseconds — so a slow peer should lose quickly and the request
	// degrade to local compute.
	DefaultFillTimeout = 250 * time.Millisecond
	// DefaultStoreTimeout bounds one async store publication.
	DefaultStoreTimeout = time.Second
	// DefaultFailThreshold is how many consecutive transport failures
	// open a peer's circuit breaker.
	DefaultFailThreshold = 3
	// DefaultDownDuration is the breaker cooldown: how long an open
	// breaker skips its peer before admitting one half-open probe.
	DefaultDownDuration = 2 * time.Second
	// storeQueueDepth bounds the async store queue; publications past it
	// are dropped (counted), never blocking the serving path.
	storeQueueDepth = 256
)

// Config describes this replica's view of the cluster.
type Config struct {
	// Self is this replica's ID. It must appear in the ring (it is added
	// implicitly if absent from Peers).
	Self string
	// Peers maps replica ID to base URL (http://host:port) for every
	// other replica; an entry for Self is allowed and ignored.
	Peers map[string]string
	// Replication is the owner count per key (see DefaultReplication);
	// clamped to the ring size.
	Replication int
	// VirtualNodes per replica on the ring (0 = DefaultVirtualNodes).
	VirtualNodes int
	// FillTimeout bounds one peer-fill attempt (0 = DefaultFillTimeout).
	FillTimeout time.Duration
	// StoreTimeout bounds one store publication (0 = DefaultStoreTimeout).
	StoreTimeout time.Duration
	// FailThreshold is the consecutive-failure count that opens a
	// peer's circuit breaker (0 = DefaultFailThreshold).
	FailThreshold int
	// DownDuration is the breaker cooldown before a half-open probe
	// (0 = DefaultDownDuration).
	DownDuration time.Duration
	// HTTPClient overrides the transport used for peer calls.
	HTTPClient *http.Client
	// Clock overrides time for breaker transitions (nil = real clock);
	// tests inject a manual clock to walk the breaker through
	// open/half-open/closed without sleeping.
	Clock Clock
}

// peerState is one remote replica: its typed client plus its circuit
// breaker. The breaker is advisory on the fill path — it only decides
// whether a fill/store bothers trying, so a stale state can never fail
// a request, only cost a local simulation.
type peerState struct {
	id string
	cl *client.Client
	br breaker
}

// Peering implements serve.Peer over the /v1/peer HTTP tier. Create it
// with New, hand it to serve.Config.Peer, and Close it after the server
// drains.
type Peering struct {
	cfg   Config
	ring  *Ring
	clock Clock
	peers map[string]*peerState // remote replicas only (Self excluded)

	storeMu     sync.RWMutex
	storeClosed bool
	storeQ      chan storeReq
	storeWG     sync.WaitGroup
	pending     atomic.Int64

	fills          atomic.Uint64
	hits           atomic.Uint64
	misses         atomic.Uint64
	errs           atomic.Uint64
	timeouts       atomic.Uint64
	skippedDown    atomic.Uint64
	integrityDrops atomic.Uint64
	stores         atomic.Uint64
	storeErrs      atomic.Uint64
	storeDrops     atomic.Uint64
}

type storeReq struct {
	key  string
	spec hfstream.Spec
	body []byte
}

// New builds the peering layer for one replica. The ring covers Self
// plus every key of Peers, so all replicas construct identical rings
// from the same membership list — routing agreement needs no
// coordination beyond consistent configuration.
func New(cfg Config) (*Peering, error) {
	if cfg.Self == "" {
		return nil, fmt.Errorf("cluster: Config.Self is required")
	}
	if cfg.Replication <= 0 {
		cfg.Replication = DefaultReplication
	}
	if cfg.FillTimeout <= 0 {
		cfg.FillTimeout = DefaultFillTimeout
	}
	if cfg.StoreTimeout <= 0 {
		cfg.StoreTimeout = DefaultStoreTimeout
	}
	if cfg.FailThreshold <= 0 {
		cfg.FailThreshold = DefaultFailThreshold
	}
	if cfg.DownDuration <= 0 {
		cfg.DownDuration = DefaultDownDuration
	}
	ids := []string{cfg.Self}
	for id := range cfg.Peers {
		if id != cfg.Self {
			ids = append(ids, id)
		}
	}
	ring, err := NewRing(ids, cfg.VirtualNodes)
	if err != nil {
		return nil, err
	}
	clock := cfg.Clock
	if clock == nil {
		clock = realClock{}
	}
	p := &Peering{
		cfg:    cfg,
		ring:   ring,
		clock:  clock,
		peers:  make(map[string]*peerState, len(cfg.Peers)),
		storeQ: make(chan storeReq, storeQueueDepth),
	}
	for id, baseURL := range cfg.Peers {
		if id == cfg.Self {
			continue
		}
		if baseURL == "" {
			return nil, fmt.Errorf("cluster: peer %q has no URL", id)
		}
		var opts []client.Option
		if cfg.HTTPClient != nil {
			opts = append(opts, client.WithHTTPClient(cfg.HTTPClient))
		}
		p.peers[id] = &peerState{id: id, cl: client.New(baseURL, opts...)}
	}
	// Two store workers: enough to keep publication latency off the
	// serving path without fanning out one goroutine per result.
	for i := 0; i < 2; i++ {
		p.storeWG.Add(1)
		go p.storeWorker()
	}
	return p, nil
}

// Ring exposes the membership ring (for tests and tooling).
func (p *Peering) Ring() *Ring { return p.ring }

// Owners returns key's owner list at the configured replication factor.
func (p *Peering) Owners(key string) []string {
	return p.ring.Owners(key, p.cfg.Replication)
}

// Fill implements serve.Peer: ask key's owner shards (in ring order,
// failing over across the replication set) for the cached bytes. Every
// attempt is bounded by FillTimeout and gated by the peer's circuit
// breaker (asked at attempt time, so a half-open probe is only
// consumed by a real request); any error is just a miss — the caller
// simulates locally, so a dead owner costs at most one bounded timeout
// per request until its breaker opens. Bodies are digest-verified by
// the client; damaged bytes surface as *client.IntegrityError, counted
// and dropped here, never returned.
func (p *Peering) Fill(ctx context.Context, key string) ([]byte, bool) {
	owned, tried := false, false
	for _, id := range p.Owners(key) {
		ps, ok := p.peers[id]
		if !ok { // Self
			continue
		}
		owned = true
		if !ps.br.allow(p.clock.Now(), p.cfg.DownDuration) {
			continue
		}
		if !tried {
			tried = true
			p.fills.Add(1)
		}
		attemptCtx, cancel := context.WithTimeout(ctx, p.cfg.FillTimeout)
		body, err := ps.cl.PeerGet(attemptCtx, key)
		cancel()
		switch {
		case err == nil:
			ps.br.success()
			p.hits.Add(1)
			return body, true
		case errors.Is(err, client.ErrNotCached):
			// A healthy owner that simply doesn't hold the key yet: not a
			// failure, but no point retrying this shard.
			ps.br.success()
		default:
			var ie *client.IntegrityError
			if errors.As(err, &ie) {
				// The transfer was damaged in flight; the bytes never
				// leave the client. A corrupt channel is as unhealthy as
				// a dead one, so it feeds the breaker like any failure.
				p.integrityDrops.Add(1)
			}
			if errors.Is(err, context.DeadlineExceeded) {
				p.timeouts.Add(1)
			}
			p.errs.Add(1)
			ps.br.failure(p.cfg.FailThreshold, p.clock.Now())
		}
	}
	switch {
	case tried:
		p.misses.Add(1)
	case owned:
		// Owners exist but every breaker refused: the fill never left
		// this process.
		p.skippedDown.Add(1)
	}
	return nil, false
}

// Store implements serve.Peer: publish a locally computed result to
// key's owner shards, asynchronously. The queue is bounded; under
// pressure publications are dropped (the owners stay cold and later
// fills miss — correctness is untouched because any replica can always
// recompute any key).
func (p *Peering) Store(key string, spec hfstream.Spec, body []byte) {
	p.storeMu.RLock()
	defer p.storeMu.RUnlock()
	if p.storeClosed {
		p.storeDrops.Add(1)
		return
	}
	select {
	case p.storeQ <- storeReq{key: key, spec: spec, body: body}:
		p.pending.Add(1)
	default:
		p.storeDrops.Add(1)
	}
}

func (p *Peering) storeWorker() {
	defer p.storeWG.Done()
	for req := range p.storeQ {
		for _, id := range p.Owners(req.key) {
			ps, ok := p.peers[id]
			if !ok || !ps.br.allow(p.clock.Now(), p.cfg.DownDuration) {
				continue
			}
			ctx, cancel := context.WithTimeout(context.Background(), p.cfg.StoreTimeout)
			err := ps.cl.PeerPut(ctx, req.key, req.spec, req.body)
			cancel()
			if err != nil {
				p.storeErrs.Add(1)
				ps.br.failure(p.cfg.FailThreshold, p.clock.Now())
				continue
			}
			ps.br.success()
			p.stores.Add(1)
		}
		p.pending.Add(-1)
	}
}

// Flush blocks until every queued store publication has been attempted
// (or ctx expires). Useful before tearing a replica down, and for tests
// that need the owners' caches settled.
func (p *Peering) Flush(ctx context.Context) error {
	for p.pending.Load() > 0 {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(time.Millisecond):
		}
	}
	return nil
}

// Close stops the store workers. Fill keeps working (it is stateless);
// Store calls after Close are counted as drops.
func (p *Peering) Close() {
	p.storeMu.Lock()
	if !p.storeClosed {
		p.storeClosed = true
		close(p.storeQ)
	}
	p.storeMu.Unlock()
	p.storeWG.Wait()
}

// Stats implements serve.Peer.
func (p *Peering) Stats() serve.PeerStats {
	downCount := 0
	var opens uint64
	for _, ps := range p.peers {
		state, o := ps.br.snapshot()
		if state != brClosed {
			downCount++
		}
		opens += o
	}
	return serve.PeerStats{
		Replicas:       p.ring.Size(),
		Fills:          p.fills.Load(),
		Hits:           p.hits.Load(),
		Misses:         p.misses.Load(),
		Errors:         p.errs.Load(),
		Timeouts:       p.timeouts.Load(),
		SkippedDown:    p.skippedDown.Load(),
		IntegrityDrops: p.integrityDrops.Load(),
		Stores:         p.stores.Load(),
		StoreErrors:    p.storeErrs.Load(),
		StoreDropped:   p.storeDrops.Load(),
		PeersDown:      downCount,
		BreakerOpens:   opens,
	}
}
