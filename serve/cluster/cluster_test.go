package cluster

// Integration tests for the peering layer against real serve.Server
// replicas: fill/store/replication provenance, and the failure contract
// — a peer that dies mid-fill, or stays dead under load, only ever
// degrades requests to local compute. These run under the race detector
// in the serve-cluster CI job.

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hfstream"
	"hfstream/serve"
	"hfstream/serve/client"
	"hfstream/serve/faultnet"
)

// swapHandler lets a replica's HTTP server exist (with a concrete URL)
// before the serve.Server it fronts: peering needs every URL up front.
type swapHandler struct{ v atomic.Value } // holds handlerBox

// handlerBox gives atomic.Value a single concrete type even as the
// boxed handler's type changes (ServeMux, test gates, ...).
type handlerBox struct{ h http.Handler }

func (s *swapHandler) set(h http.Handler) { s.v.Store(handlerBox{h}) }

func (s *swapHandler) get() http.Handler {
	if b, ok := s.v.Load().(handlerBox); ok {
		return b.h
	}
	return nil
}

func (s *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if h := s.get(); h != nil {
		h.ServeHTTP(w, r)
		return
	}
	http.Error(w, "replica not ready", http.StatusServiceUnavailable)
}

type testCluster struct {
	closed   bool
	ids      []string
	servers  []*serve.Server
	peerings []*Peering
	ts       []*httptest.Server
	swaps    []*swapHandler
	clients  []*client.Client
	hc       *http.Client
}

// newTestCluster builds an n-replica peered cluster. tweak, if non-nil,
// adjusts each replica's peering config before construction.
func newTestCluster(t *testing.T, n int, tweak func(*Config)) *testCluster {
	t.Helper()
	c := &testCluster{hc: &http.Client{Transport: &http.Transport{}}}
	urls := make(map[string]string, n)
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("n%d", i)
		c.ids = append(c.ids, id)
		sw := &swapHandler{}
		c.swaps = append(c.swaps, sw)
		ts := httptest.NewServer(sw)
		c.ts = append(c.ts, ts)
		urls[id] = ts.URL
	}
	for i := 0; i < n; i++ {
		cfg := Config{Self: c.ids[i], Peers: urls, HTTPClient: c.hc}
		if tweak != nil {
			tweak(&cfg)
		}
		p, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		srv := serve.New(serve.Config{Workers: 1, Peer: p})
		c.swaps[i].set(srv.Handler())
		c.peerings = append(c.peerings, p)
		c.servers = append(c.servers, srv)
		c.clients = append(c.clients, client.New(urls[c.ids[i]], client.WithHTTPClient(c.hc)))
	}
	t.Cleanup(func() { c.shutdown(t) })
	return c
}

func (c *testCluster) shutdown(t *testing.T) {
	t.Helper()
	if c.closed {
		return
	}
	c.closed = true
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for i := range c.ts {
		c.ts[i].Close()
		c.peerings[i].Close()
		c.servers[i].BeginDrain()
		if err := c.servers[i].Drain(ctx); err != nil {
			t.Errorf("replica %d drain: %v", i, err)
		}
	}
	c.hc.CloseIdleConnections()
}

func (c *testCluster) index(t *testing.T, id string) int {
	t.Helper()
	for i, have := range c.ids {
		if have == id {
			return i
		}
	}
	t.Fatalf("unknown replica %q", id)
	return -1
}

func (c *testCluster) flush(t *testing.T) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for _, p := range c.peerings {
		if err := p.Flush(ctx); err != nil {
			t.Fatal(err)
		}
	}
}

var clusterSpec = hfstream.Spec{Bench: "bzip2", Design: "EXISTING"}

func specKey(t *testing.T, spec hfstream.Spec) string {
	t.Helper()
	norm, err := spec.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	key, err := norm.Key()
	if err != nil {
		t.Fatal(err)
	}
	return key
}

// directBytes runs spec through the library API for a reference body.
func directBytes(t *testing.T, spec hfstream.Spec) []byte {
	t.Helper()
	norm, err := spec.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := norm.RunCtx(context.Background(), hfstream.WithMetrics(&buf)); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func mustRun(t *testing.T, cl *client.Client, spec hfstream.Spec) *client.RunResult {
	t.Helper()
	res, err := cl.Run(context.Background(), spec)
	if err != nil {
		t.Fatalf("client.Run: %v", err)
	}
	return res
}

// TestClusterFillStoreReplication walks one key through every
// provenance: cold miss on the primary owner, store replication to the
// secondary, peer fill on the non-owner, then a local hit.
func TestClusterFillStoreReplication(t *testing.T) {
	c := newTestCluster(t, 3, nil)
	want := directBytes(t, clusterSpec)
	key := specKey(t, clusterSpec)
	owners := c.peerings[0].Owners(key)
	primary := c.index(t, owners[0])
	secondary := c.index(t, owners[1])
	nonOwner := 3 - primary - secondary

	cold := mustRun(t, c.clients[primary], clusterSpec)
	if cold.Cache != "miss" || !bytes.Equal(cold.Body, want) {
		t.Fatalf("cold: cache=%q, body match=%v", cold.Cache, bytes.Equal(cold.Body, want))
	}
	c.flush(t)

	repl := mustRun(t, c.clients[secondary], clusterSpec)
	if repl.Cache != "hit" || !bytes.Equal(repl.Body, want) {
		t.Fatalf("secondary owner: cache=%q, want replicated hit", repl.Cache)
	}
	peer := mustRun(t, c.clients[nonOwner], clusterSpec)
	if peer.Cache != "peer" || !bytes.Equal(peer.Body, want) {
		t.Fatalf("non-owner: cache=%q, want peer fill", peer.Cache)
	}
	again := mustRun(t, c.clients[nonOwner], clusterSpec)
	if again.Cache != "hit" {
		t.Fatalf("non-owner replay: cache=%q, want local hit", again.Cache)
	}

	stats := c.peerings[nonOwner].Stats()
	if stats.Hits != 1 || stats.Replicas != 3 {
		t.Errorf("non-owner peer stats = %+v, want one fill hit on a 3-ring", stats)
	}
	var runs uint64
	for _, s := range c.servers {
		runs += s.Metrics().Runs
	}
	if runs != 1 {
		t.Errorf("cluster simulated %d times, want 1", runs)
	}
}

// fillGate wraps a replica's handler so the test can hold a peer-tier
// GET open (simulating a stalled owner) and then sever it.
type fillGate struct {
	inner   http.Handler
	hold    chan struct{}
	entered chan struct{}
	once    sync.Once
}

func (g *fillGate) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodGet && strings.HasPrefix(r.URL.Path, "/v1/peer/") {
		g.once.Do(func() { close(g.entered) })
		<-g.hold
	}
	g.inner.ServeHTTP(w, r)
}

// TestClusterOwnerDeathMidFill is the required failure race: the key's
// owner stalls and then drops the connection while a fill is in flight.
// The request must still succeed — served by local compute with the
// reference bytes — and the cluster must not leak the stalled fill's
// goroutines.
func TestClusterOwnerDeathMidFill(t *testing.T) {
	before := runtime.NumGoroutine()
	func() {
		c := newTestCluster(t, 3, func(cfg *Config) {
			cfg.FillTimeout = 5 * time.Second // the kill, not the timeout, must end the fill
		})
		want := directBytes(t, clusterSpec)
		key := specKey(t, clusterSpec)
		owners := c.peerings[0].Owners(key)
		primary := c.index(t, owners[0])
		secondary := c.index(t, owners[1])
		// The requester is the non-owner, so its miss goes to the ring.
		requester := 3 - primary - secondary

		gate := &fillGate{
			inner:   c.swaps[primary].get(),
			hold:    make(chan struct{}),
			entered: make(chan struct{}),
		}
		c.swaps[primary].set(gate)
		var release sync.Once
		defer release.Do(func() { close(gate.hold) }) // in case of early Fatal

		resCh := make(chan *client.RunResult, 1)
		errCh := make(chan error, 1)
		go func() {
			res, err := c.clients[requester].Run(context.Background(), clusterSpec)
			if err != nil {
				errCh <- err
				return
			}
			resCh <- res
		}()

		select {
		case <-gate.entered:
		case err := <-errCh:
			t.Fatalf("request failed before the fill started: %v", err)
		case <-time.After(10 * time.Second):
			t.Fatal("fill never reached the owner")
		}
		// Kill the owner mid-fill: sever every open connection.
		c.ts[primary].CloseClientConnections()

		select {
		case res := <-resCh:
			if res.Cache != "miss" {
				t.Errorf("degraded request provenance = %q, want local miss", res.Cache)
			}
			if !bytes.Equal(res.Body, want) {
				t.Error("degraded request body differs from direct API bytes")
			}
		case err := <-errCh:
			t.Fatalf("request failed after owner death: %v", err)
		case <-time.After(30 * time.Second):
			t.Fatal("request never completed after owner death")
		}

		stats := c.peerings[requester].Stats()
		if stats.Errors == 0 {
			t.Errorf("peer stats = %+v, want the severed fill counted as an error", stats)
		}

		// Tear the cluster down before the leak check below (t.Cleanup
		// would only run after the test body, including the check).
		release.Do(func() { close(gate.hold) })
		c.shutdown(t)
	}()

	// Leak check: everything the cluster started must wind down.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Errorf("goroutines: %d before, %d after teardown", before, runtime.NumGoroutine())
}

// TestClusterDeadOwnerUnderLoad: with one replica gone entirely, a
// burst of concurrent requests through the survivors sees zero
// failures; the dead peer trips the failure threshold and is skipped.
func TestClusterDeadOwnerUnderLoad(t *testing.T) {
	c := newTestCluster(t, 3, func(cfg *Config) {
		cfg.FillTimeout = 200 * time.Millisecond
		cfg.FailThreshold = 2
		cfg.DownDuration = time.Hour // stays down for the whole test
	})
	dead := 0
	c.ts[dead].Close() // replica n0 is gone before any traffic

	specs := []hfstream.Spec{
		{Bench: "bzip2", Design: "EXISTING"},
		{Bench: "bzip2", Design: "MEMOPTI"},
		{Bench: "bzip2", Design: "SYNCOPTI"},
		{Bench: "bzip2", Single: true},
		{Bench: "adpcmdec", Design: "EXISTING"},
		{Bench: "adpcmdec", Single: true},
	}
	survivors := []int{1, 2}
	var wg sync.WaitGroup
	errs := make([]error, len(specs)*4)
	for i := 0; i < len(errs); i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cl := c.clients[survivors[i%len(survivors)]]
			_, err := cl.Run(context.Background(), specs[i%len(specs)])
			errs[i] = err
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("request %d failed with a dead replica in the ring: %v", i, err)
		}
	}
	downSeen := false
	for _, idx := range survivors {
		if s := c.peerings[idx].Stats(); s.PeersDown > 0 || s.SkippedDown > 0 {
			downSeen = true
		}
	}
	if !downSeen {
		t.Error("no survivor ever marked the dead replica down")
	}
}

// TestClusterCorruptedFillNeverCached: a non-owner whose peer channel
// corrupts bytes in flight (faultnet corrupt-body on its fill
// transport) must detect every damaged transfer via the digest header,
// fall back to local simulation, and end up with the *correct* bytes
// in every cache — poisoning is impossible, not just unlikely.
func TestClusterCorruptedFillNeverCached(t *testing.T) {
	// Ownership is a pure function of the replica ids, so the non-owner
	// is computable before the real cluster (and its transports) exist.
	probe, err := New(Config{Self: "n0", Peers: map[string]string{
		"n0": "http://probe.invalid", "n1": "http://probe.invalid", "n2": "http://probe.invalid"}})
	if err != nil {
		t.Fatal(err)
	}
	key := specKey(t, clusterSpec)
	owners := probe.Owners(key)
	probe.Close()
	ownerSet := map[string]bool{owners[0]: true, owners[1]: true}
	nonOwnerID := ""
	for _, id := range []string{"n0", "n1", "n2"} {
		if !ownerSet[id] {
			nonOwnerID = id
		}
	}

	// The non-owner's peering transport corrupts its first two requests
	// — exactly the two owner GETs its fill will make.
	corrupt := faultnet.NewTransport(faultnet.Plan{Events: []faultnet.Event{
		{Kind: faultnet.CorruptBody, Nth: 1},
		{Kind: faultnet.CorruptBody, Nth: 2},
	}}, &http.Transport{})
	c := newTestCluster(t, 3, func(cfg *Config) {
		if cfg.Self == nonOwnerID {
			cfg.HTTPClient = corrupt.Client()
		}
	})
	want := directBytes(t, clusterSpec)
	primary := c.index(t, owners[0])
	nonOwner := c.index(t, nonOwnerID)

	// Prime the owners over clean channels.
	if res := mustRun(t, c.clients[primary], clusterSpec); !bytes.Equal(res.Body, want) {
		t.Fatal("priming run body differs from reference")
	}
	c.flush(t)

	// The non-owner's fill sees only damaged bytes: both owner GETs are
	// dropped on digest mismatch and the request degrades to local
	// compute — byte-correct, provenance "miss", never "peer".
	res := mustRun(t, c.clients[nonOwner], clusterSpec)
	if res.Cache != "miss" || !bytes.Equal(res.Body, want) {
		t.Fatalf("corrupted-fill request: cache=%q, body match=%v", res.Cache, bytes.Equal(res.Body, want))
	}
	stats := c.peerings[nonOwner].Stats()
	if stats.IntegrityDrops != 2 || stats.Hits != 0 {
		t.Fatalf("non-owner stats = %+v, want both corrupt transfers dropped", stats)
	}
	if len(corrupt.Shots()) != 2 {
		t.Fatalf("fault shots = %v, want both corruptions fired", corrupt.ShotStrings())
	}

	// Post-run audit: every replica that holds the key holds the
	// reference bytes — zero poisoned entries anywhere in the cluster.
	c.flush(t)
	for i := range c.clients {
		got, err := c.clients[i].PeerGet(context.Background(), key)
		if err != nil {
			continue // cold shard: nothing cached is also not poisoned
		}
		if !bytes.Equal(got, want) {
			t.Errorf("replica %d caches poisoned bytes for %s", i, key)
		}
	}
	// The dead channel cost exactly one extra local simulation.
	var runs uint64
	for _, s := range c.servers {
		runs += s.Metrics().Runs
	}
	if runs != 2 {
		t.Errorf("cluster simulated %d times, want 2 (prime + degraded fallback)", runs)
	}
}

// TestClusterStoreAfterClose: publications after Close are dropped and
// counted, never a panic or a block.
func TestClusterStoreAfterClose(t *testing.T) {
	c := newTestCluster(t, 2, nil)
	p := c.peerings[0]
	p.Close()
	p.Store("0000000000000000000000000000000000000000000000000000000000000000", hfstream.Spec{Bench: "bzip2", Single: true}, []byte("x"))
	if s := p.Stats(); s.StoreDropped == 0 {
		t.Errorf("stats = %+v, want the post-Close store counted as dropped", s)
	}
}

// TestClusterSelfOnly: a ring of one has no peers to ask; every fill is
// a local matter and nothing errors.
func TestClusterSelfOnly(t *testing.T) {
	p, err := New(Config{Self: "solo"})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if _, ok := p.Fill(context.Background(), "deadbeef"); ok {
		t.Error("fill succeeded with no peers")
	}
	p.Store("deadbeef", hfstream.Spec{Bench: "bzip2", Single: true}, []byte("x"))
	if s := p.Stats(); s.Replicas != 1 || s.Errors != 0 {
		t.Errorf("solo stats = %+v", s)
	}
}
