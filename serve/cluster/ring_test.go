package cluster

import (
	"fmt"
	"testing"
)

func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%d", i)
	}
	return keys
}

func mustRing(t *testing.T, ids []string) *Ring {
	t.Helper()
	r, err := NewRing(ids, 0)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRingValidation(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Error("empty ring accepted")
	}
	if _, err := NewRing([]string{"a", ""}, 0); err == nil {
		t.Error("empty id accepted")
	}
	if _, err := NewRing([]string{"a", "b", "a"}, 0); err == nil {
		t.Error("duplicate id accepted")
	}
	if _, err := mustRing(t, []string{"a"}).Remove("zzz"); err == nil {
		t.Error("removing an unknown replica succeeded")
	}
}

// TestRingDeterminism: the ring is a pure function of the membership
// set — construction order must not matter, because every replica
// builds its own ring from its own config and they all have to agree.
func TestRingDeterminism(t *testing.T) {
	a := mustRing(t, []string{"r0", "r1", "r2"})
	b := mustRing(t, []string{"r2", "r0", "r1"})
	for _, key := range ringKeys(1000) {
		ka, kb := a.Owners(key, 2), b.Owners(key, 2)
		if len(ka) != 2 || len(kb) != 2 || ka[0] != kb[0] || ka[1] != kb[1] {
			t.Fatalf("key %q: owners %v vs %v across construction orders", key, ka, kb)
		}
	}
}

func TestRingOwnersDistinct(t *testing.T) {
	r := mustRing(t, []string{"r0", "r1", "r2"})
	for _, key := range ringKeys(200) {
		owners := r.Owners(key, 3)
		if len(owners) != 3 {
			t.Fatalf("key %q: %d owners, want 3", key, len(owners))
		}
		if owners[0] == owners[1] || owners[0] == owners[2] || owners[1] == owners[2] {
			t.Fatalf("key %q: duplicate owners %v", key, owners)
		}
		if owners[0] != r.Owner(key) {
			t.Fatalf("key %q: Owners()[0]=%q but Owner()=%q", key, owners[0], r.Owner(key))
		}
		// Requests past the replica count clamp to it.
		if got := r.Owners(key, 99); len(got) != 3 {
			t.Fatalf("key %q: Owners(99) returned %d", key, len(got))
		}
	}
}

// TestRingBalance: with virtual nodes, no replica's ownership share
// strays wildly from fair. The bound is loose (half to double the fair
// share) — it catches a broken hash or placement, not statistical
// wobble.
func TestRingBalance(t *testing.T) {
	for _, n := range []int{2, 3, 5, 8} {
		ids := make([]string, n)
		for i := range ids {
			ids[i] = fmt.Sprintf("replica-%d", i)
		}
		r := mustRing(t, ids)
		keys := ringKeys(20000)
		counts := make(map[string]int, n)
		for _, key := range keys {
			counts[r.Owner(key)]++
		}
		fair := float64(len(keys)) / float64(n)
		for id, got := range counts {
			share := float64(got) / fair
			if share < 0.5 || share > 2.0 {
				t.Errorf("%d replicas: %s owns %.2fx its fair share (%d keys)", n, id, share, got)
			}
		}
		if len(counts) != n {
			t.Errorf("%d replicas: only %d ever own a key", n, len(counts))
		}
	}
}

// TestRingMinimalMovementOnJoin: when a replica joins, the only keys
// that change owner are the ones the joiner takes — no key moves
// between two pre-existing replicas. The moved fraction stays near
// 1/(n+1).
func TestRingMinimalMovementOnJoin(t *testing.T) {
	before := mustRing(t, []string{"r0", "r1", "r2"})
	after, err := before.Add("r3")
	if err != nil {
		t.Fatal(err)
	}
	keys := ringKeys(20000)
	moved := 0
	for _, key := range keys {
		was, now := before.Owner(key), after.Owner(key)
		if was == now {
			continue
		}
		moved++
		if now != "r3" {
			t.Fatalf("key %q moved %s -> %s, not to the joiner", key, was, now)
		}
	}
	frac := float64(moved) / float64(len(keys))
	if frac < 0.10 || frac > 0.45 {
		t.Errorf("join moved %.1f%% of keys, want roughly 1/4", 100*frac)
	}
}

// TestRingMinimalMovementOnLeave: when a replica leaves, only its keys
// move — everyone else's assignment is untouched, so a replica death
// invalidates no surviving replica's cache locality.
func TestRingMinimalMovementOnLeave(t *testing.T) {
	before := mustRing(t, []string{"r0", "r1", "r2", "r3"})
	after, err := before.Remove("r1")
	if err != nil {
		t.Fatal(err)
	}
	keys := ringKeys(20000)
	moved := 0
	for _, key := range keys {
		was, now := before.Owner(key), after.Owner(key)
		if was == "r1" {
			if now == "r1" {
				t.Fatalf("key %q still owned by removed replica", key)
			}
			moved++
			continue
		}
		if was != now {
			t.Fatalf("key %q moved %s -> %s though its owner stayed in the ring", key, was, now)
		}
	}
	frac := float64(moved) / float64(len(keys))
	if frac < 0.10 || frac > 0.45 {
		t.Errorf("leave moved %.1f%% of keys, want roughly 1/4", 100*frac)
	}
}

// TestRingAddRemoveRoundTrip: leaving and rejoining restores the exact
// assignment — placement depends only on membership, not history.
func TestRingAddRemoveRoundTrip(t *testing.T) {
	orig := mustRing(t, []string{"r0", "r1", "r2"})
	smaller, err := orig.Remove("r2")
	if err != nil {
		t.Fatal(err)
	}
	back, err := smaller.Add("r2")
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range ringKeys(2000) {
		if orig.Owner(key) != back.Owner(key) {
			t.Fatalf("key %q: owner changed across remove+add round trip", key)
		}
	}
}
