package cluster

// Deterministic breaker tests: the Clock seam means every
// open/half-open/closed transition here is driven by explicit
// Advance calls and scripted transports — no time.Sleep, no racing a
// real cooldown.

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"hfstream"
	"hfstream/serve"
)

// manualClock is an injectable Clock advanced by hand.
type manualClock struct {
	mu  sync.Mutex
	now time.Time
}

func newManualClock() *manualClock {
	return &manualClock{now: time.Unix(1_000_000, 0)}
}

func (c *manualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *manualClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func TestBreakerLifecycle(t *testing.T) {
	clk := newManualClock()
	var b breaker
	const threshold = 3
	const cooldown = 2 * time.Second

	// Closed: requests flow; failures below threshold keep it closed.
	for i := 0; i < threshold-1; i++ {
		if !b.allow(clk.Now(), cooldown) {
			t.Fatalf("closed breaker refused request %d", i)
		}
		b.failure(threshold, clk.Now())
	}
	if st, opens := b.snapshot(); st != brClosed || opens != 0 {
		t.Fatalf("below threshold: state=%d opens=%d", st, opens)
	}

	// Threshold-th failure opens.
	b.failure(threshold, clk.Now())
	if st, opens := b.snapshot(); st != brOpen || opens != 1 {
		t.Fatalf("at threshold: state=%d opens=%d", st, opens)
	}
	if b.allow(clk.Now(), cooldown) {
		t.Fatal("open breaker admitted a request before cooldown")
	}

	// Cooldown elapses: exactly one half-open probe.
	clk.Advance(cooldown)
	if !b.allow(clk.Now(), cooldown) {
		t.Fatal("cooldown elapsed but no probe admitted")
	}
	if b.allow(clk.Now(), cooldown) {
		t.Fatal("half-open breaker admitted a second request")
	}

	// Probe failure reopens (counted) and restarts the cooldown.
	b.failure(threshold, clk.Now())
	if st, opens := b.snapshot(); st != brOpen || opens != 2 {
		t.Fatalf("after failed probe: state=%d opens=%d", st, opens)
	}
	if b.allow(clk.Now(), cooldown) {
		t.Fatal("reopened breaker admitted a request immediately")
	}

	// Next probe succeeds: fully closed, failure count reset.
	clk.Advance(cooldown)
	if !b.allow(clk.Now(), cooldown) {
		t.Fatal("second probe refused")
	}
	b.success()
	if st, opens := b.snapshot(); st != brClosed || opens != 2 {
		t.Fatalf("after probe success: state=%d opens=%d", st, opens)
	}
	// A single new failure must not reopen (the count was reset).
	b.failure(threshold, clk.Now())
	if st, _ := b.snapshot(); st != brClosed {
		t.Fatal("one failure after recovery reopened the breaker")
	}
}

// scriptRT is a scripted peer: fail (transport error) or answer 404
// not_cached (a healthy, cold shard). It counts the calls that reach
// the wire — the breaker's whole job is keeping that count down.
type scriptRT struct {
	mu    sync.Mutex
	fail  bool
	calls int
}

func (rt *scriptRT) setFail(fail bool) {
	rt.mu.Lock()
	rt.fail = fail
	rt.mu.Unlock()
}

func (rt *scriptRT) callCount() int {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.calls
}

func (rt *scriptRT) RoundTrip(req *http.Request) (*http.Response, error) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.calls++
	if req.Body != nil {
		req.Body.Close()
	}
	if rt.fail {
		return nil, errors.New("scripted transport failure")
	}
	body := []byte(`{"error":{"code":"not_cached","message":"cold"}}` + "\n")
	h := http.Header{}
	h.Set("Content-Type", "application/json")
	return &http.Response{
		Status: "404 Not Found", StatusCode: http.StatusNotFound,
		Proto: "HTTP/1.1", ProtoMajor: 1, ProtoMinor: 1,
		Header: h, Body: io.NopCloser(bytes.NewReader(body)),
		ContentLength: int64(len(body)), Request: req,
	}, nil
}

// newScriptedPeering builds a 2-replica peering whose only peer is the
// scripted transport, on a manual clock.
func newScriptedPeering(t *testing.T, rt *scriptRT, clk Clock) *Peering {
	t.Helper()
	p, err := New(Config{
		Self:          "a",
		Peers:         map[string]string{"b": "http://peer-b.invalid"},
		Replication:   2,
		FailThreshold: 3,
		DownDuration:  2 * time.Second,
		HTTPClient:    &http.Client{Transport: rt},
		Clock:         clk,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	return p
}

// TestPeeringBreakerDeterministic drives the full breaker arc through
// Peering.Fill with a scripted peer and a manual clock: trip, skip,
// probe, recover.
func TestPeeringBreakerDeterministic(t *testing.T) {
	rt := &scriptRT{fail: true}
	clk := newManualClock()
	p := newScriptedPeering(t, rt, clk)
	ctx := context.Background()
	key := strings.Repeat("ab", 32)

	// Three failing fills trip the breaker.
	for i := 0; i < 3; i++ {
		if _, ok := p.Fill(ctx, key); ok {
			t.Fatal("failing fill reported a hit")
		}
	}
	s := p.Stats()
	if s.Errors != 3 || s.BreakerOpens != 1 || s.PeersDown != 1 {
		t.Fatalf("after trip: %+v", s)
	}
	wire := rt.callCount()

	// While open, fills are skipped without touching the wire.
	for i := 0; i < 4; i++ {
		p.Fill(ctx, key)
	}
	s = p.Stats()
	if rt.callCount() != wire {
		t.Fatalf("open breaker let %d requests through", rt.callCount()-wire)
	}
	if s.SkippedDown != 4 {
		t.Fatalf("skipped fills not counted: %+v", s)
	}

	// Cooldown passes and the peer heals: exactly one probe goes out,
	// its success (a clean not_cached answer) closes the breaker.
	clk.Advance(2 * time.Second)
	rt.setFail(false)
	p.Fill(ctx, key)
	if rt.callCount() != wire+1 {
		t.Fatalf("probe fill made %d wire calls, want 1", rt.callCount()-wire)
	}
	s = p.Stats()
	if s.PeersDown != 0 || s.BreakerOpens != 1 {
		t.Fatalf("after successful probe: %+v", s)
	}
	// Closed again: fills reach the wire normally.
	p.Fill(ctx, key)
	if rt.callCount() != wire+2 {
		t.Fatal("recovered peer not consulted")
	}
}

// TestPeeringBreakerFailedProbeReopens: a half-open probe that fails
// reopens the breaker for a full cooldown — one wire call per
// cooldown, not a thundering retry.
func TestPeeringBreakerFailedProbeReopens(t *testing.T) {
	rt := &scriptRT{fail: true}
	clk := newManualClock()
	p := newScriptedPeering(t, rt, clk)
	ctx := context.Background()
	key := strings.Repeat("ab", 32)

	for i := 0; i < 3; i++ {
		p.Fill(ctx, key)
	}
	wire := rt.callCount()

	// Probe after cooldown fails: breaker reopens, counted.
	clk.Advance(2 * time.Second)
	p.Fill(ctx, key)
	if rt.callCount() != wire+1 {
		t.Fatalf("failed probe made %d wire calls, want 1", rt.callCount()-wire)
	}
	s := p.Stats()
	if s.BreakerOpens != 2 || s.PeersDown != 1 {
		t.Fatalf("after failed probe: %+v", s)
	}

	// Still open for the new cooldown: no wire traffic.
	clk.Advance(time.Second)
	p.Fill(ctx, key)
	if rt.callCount() != wire+1 {
		t.Fatal("reopened breaker admitted traffic mid-cooldown")
	}
}

// TestPeeringStoreRespectsBreaker: the async store path consults the
// same breaker, so a dead peer stops receiving publications too.
func TestPeeringStoreRespectsBreaker(t *testing.T) {
	rt := &scriptRT{fail: true}
	clk := newManualClock()
	p := newScriptedPeering(t, rt, clk)
	ctx := context.Background()
	spec := hfstream.Spec{Bench: "bzip2", Single: true}
	key, err := spec.Key()
	if err != nil {
		t.Fatal(err)
	}

	// Trip the breaker via the fill path.
	for i := 0; i < 3; i++ {
		p.Fill(ctx, key)
	}
	wire := rt.callCount()

	// Stores while open never reach the wire (counted neither as stores
	// nor errors — the breaker refused, that's all).
	for i := 0; i < 3; i++ {
		p.Store(key, spec, []byte(`{"benchmark":"bzip2","design":"SINGLE"}`))
	}
	flushCtx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	if err := p.Flush(flushCtx); err != nil {
		t.Fatal(err)
	}
	if rt.callCount() != wire {
		t.Fatalf("open breaker let %d store PUTs through", rt.callCount()-wire)
	}
	if s := p.Stats(); s.Stores != 0 {
		t.Fatalf("stores counted despite open breaker: %+v", s)
	}
}

// TestPeerStatsIntegrityDrops: a peer whose GET answers with damaged
// bytes (digest mismatch) is counted as an integrity drop and feeds
// the breaker like any failure — and the damaged bytes never surface
// from Fill.
func TestPeeringIntegrityDropFeedsBreaker(t *testing.T) {
	// A transport that always 200s with a body whose digest header lies.
	lying := roundTripFunc(func(req *http.Request) (*http.Response, error) {
		body := []byte(`{"benchmark":"bzip2","design":"SINGLE"}`)
		h := http.Header{}
		h.Set("Content-Type", "application/json")
		h.Set(serve.HeaderDigest, serve.Digest([]byte("something else")))
		return &http.Response{
			Status: "200 OK", StatusCode: http.StatusOK,
			Proto: "HTTP/1.1", ProtoMajor: 1, ProtoMinor: 1,
			Header: h, Body: io.NopCloser(bytes.NewReader(body)),
			ContentLength: int64(len(body)), Request: req,
		}, nil
	})
	clk := newManualClock()
	p, err := New(Config{
		Self:          "a",
		Peers:         map[string]string{"b": "http://peer-b.invalid"},
		Replication:   2,
		FailThreshold: 3,
		DownDuration:  2 * time.Second,
		HTTPClient:    &http.Client{Transport: lying},
		Clock:         clk,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	ctx := context.Background()
	key := strings.Repeat("ab", 32)

	for i := 0; i < 3; i++ {
		if body, ok := p.Fill(ctx, key); ok {
			t.Fatalf("fill %d returned unverified bytes %q", i, body)
		}
	}
	s := p.Stats()
	if s.IntegrityDrops != 3 || s.Errors != 3 {
		t.Fatalf("integrity drops not counted: %+v", s)
	}
	if s.PeersDown != 1 || s.BreakerOpens != 1 {
		t.Fatalf("corrupt channel did not trip the breaker: %+v", s)
	}
}

type roundTripFunc func(*http.Request) (*http.Response, error)

func (f roundTripFunc) RoundTrip(req *http.Request) (*http.Response, error) { return f(req) }
