// Package cluster turns independent hfserve replicas into a sharded
// serving tier with cache peering. Determinism plus content addressing
// (hfstream.Spec.Key) is the whole trick: any replica can serve any
// key, and a peer's cached bytes are byte-identical to a local
// simulation, so the cluster needs routing and fill — never coherence.
//
// The package provides two pieces: Ring, a consistent-hash ring that
// assigns every Spec.Key an ordered owner list with minimal movement
// when replicas join or leave, and Peering, the serve.Peer
// implementation that fills local misses from owner shards over the
// /v1/peer HTTP tier and publishes fresh results back — with bounded
// timeouts, per-peer failure counters and down-marking so a dead or
// slow peer degrades to local compute instead of failing requests.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
)

// DefaultVirtualNodes is the per-replica virtual-node count. 64 points
// per replica keeps the balance spread within a few percent for small
// clusters while the ring stays tiny (a 16-replica ring is 1024
// points).
const DefaultVirtualNodes = 64

// Ring is an immutable consistent-hash ring over replica IDs. Build
// one with NewRing; derive changed memberships with Add/Remove (the
// property the tests pin: only keys adjacent to the changed replica's
// points move).
type Ring struct {
	vnodes int
	ids    []string
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash uint64
	id   string
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	// FNV avalanches poorly on short structured inputs ("r0#17"), which
	// skews vnode placement badly enough to unbalance small rings; a
	// splitmix64 finalizer restores uniform dispersion.
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// NewRing builds a ring over the given replica IDs with vnodes virtual
// nodes per replica (<= 0 selects DefaultVirtualNodes). IDs must be
// non-empty and unique.
func NewRing(ids []string, vnodes int) (*Ring, error) {
	if len(ids) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one replica")
	}
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	seen := make(map[string]bool, len(ids))
	sorted := make([]string, 0, len(ids))
	for _, id := range ids {
		if id == "" {
			return nil, fmt.Errorf("cluster: empty replica id")
		}
		if seen[id] {
			return nil, fmt.Errorf("cluster: duplicate replica id %q", id)
		}
		seen[id] = true
		sorted = append(sorted, id)
	}
	sort.Strings(sorted)
	r := &Ring{vnodes: vnodes, ids: sorted}
	r.points = make([]ringPoint, 0, len(sorted)*vnodes)
	for _, id := range sorted {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{hash: hash64(id + "#" + strconv.Itoa(i)), id: id})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash ties (vanishingly rare with 64-bit FNV) break on id so the
		// ring order is fully deterministic across replicas.
		return r.points[i].id < r.points[j].id
	})
	return r, nil
}

// IDs returns the ring's replica IDs in sorted order.
func (r *Ring) IDs() []string { return append([]string(nil), r.ids...) }

// Size reports the replica count.
func (r *Ring) Size() int { return len(r.ids) }

// Owner returns the replica that owns key: the first ring point at or
// after the key's hash, wrapping at the top.
func (r *Ring) Owner(key string) string { return r.Owners(key, 1)[0] }

// Owners returns up to n distinct replicas in ring order starting at
// the key's owner — the owner first, then the replicas a clustered
// store replicates to and a fill fails over to.
func (r *Ring) Owners(key string, n int) []string {
	if n <= 0 {
		n = 1
	}
	if n > len(r.ids) {
		n = len(r.ids)
	}
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	owners := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i := 0; len(owners) < n && i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.id] {
			seen[p.id] = true
			owners = append(owners, p.id)
		}
	}
	return owners
}

// Add returns a new ring with id joined.
func (r *Ring) Add(id string) (*Ring, error) {
	return NewRing(append(r.IDs(), id), r.vnodes)
}

// Remove returns a new ring with id removed.
func (r *Ring) Remove(id string) (*Ring, error) {
	ids := make([]string, 0, len(r.ids))
	for _, have := range r.ids {
		if have != id {
			ids = append(ids, have)
		}
	}
	if len(ids) == len(r.ids) {
		return nil, fmt.Errorf("cluster: replica %q not in ring", id)
	}
	return NewRing(ids, r.vnodes)
}
