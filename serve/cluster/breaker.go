package cluster

import (
	"sync"
	"time"
)

// Clock abstracts time for the peering layer so breaker transitions
// (open cooldowns, half-open probes) are unit-testable without
// time.Sleep. Production uses the real clock; tests inject a manual
// one and advance it deterministically.
type Clock interface {
	Now() time.Time
}

// realClock is the production Clock.
type realClock struct{}

func (realClock) Now() time.Time { return time.Now() }

// Breaker states.
const (
	brClosed = iota
	brOpen
	brHalfOpen
)

// breaker is a per-peer circuit breaker, replacing the old advisory
// down-marking with explicit closed → open → half-open transitions:
//
//   - closed: requests flow; FailThreshold consecutive failures open
//     the breaker.
//   - open: every request is skipped (the peer isn't even dialed)
//     until the cooldown elapses.
//   - half-open: after the cooldown, exactly one probe request is
//     admitted; its success closes the breaker, its failure reopens it
//     (counted as another open) and restarts the cooldown.
//
// Like the down-marking it replaces, the breaker is advisory on the
// fill path — it only decides whether a fill bothers trying, so a
// stale state costs a cache miss (one local simulation), never a
// failed request.
type breaker struct {
	mu       sync.Mutex
	state    int
	fails    int
	openedAt time.Time
	opens    uint64
}

// allow reports whether a request to this peer may proceed at time
// now. In the open state, the first allow after cooldown moves to
// half-open and admits the single probe.
func (b *breaker) allow(now time.Time, cooldown time.Duration) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case brClosed:
		return true
	case brOpen:
		if now.Sub(b.openedAt) >= cooldown {
			b.state = brHalfOpen
			return true
		}
		return false
	default: // brHalfOpen: the probe is already in flight
		return false
	}
}

// success records a completed request: any success fully closes the
// breaker.
func (b *breaker) success() {
	b.mu.Lock()
	b.state = brClosed
	b.fails = 0
	b.mu.Unlock()
}

// failure records a failed request at time now: a half-open probe
// failure reopens immediately; in the closed state the consecutive
// failure count opens at threshold.
func (b *breaker) failure(threshold int, now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case brHalfOpen:
		b.state = brOpen
		b.openedAt = now
		b.opens++
	case brClosed:
		b.fails++
		if b.fails >= threshold {
			b.state = brOpen
			b.openedAt = now
			b.opens++
			b.fails = 0
		}
	default: // already open (a straggler from before the trip): no-op
	}
}

// snapshot returns the current state and lifetime open count.
func (b *breaker) snapshot() (state int, opens uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state, b.opens
}
