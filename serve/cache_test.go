package serve

import (
	"bytes"
	"fmt"
	"testing"
)

func TestCacheLRUEviction(t *testing.T) {
	c := newResultCache(30)
	put := func(key string, n int) { c.Put(key, bytes.Repeat([]byte{'x'}, n)) }
	put("a", 10)
	put("b", 10)
	put("c", 10) // full: a, b, c resident
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a evicted while under budget")
	}
	// a is now most recent, so the next insertion evicts b.
	put("d", 10)
	if _, ok := c.Get("b"); ok {
		t.Fatal("b survived past the budget; LRU order not honored")
	}
	for _, key := range []string{"a", "c", "d"} {
		if _, ok := c.Get(key); !ok {
			t.Fatalf("%s missing after eviction round", key)
		}
	}
	entries, resident, budget, evictions := c.Stats()
	if entries != 3 || resident != 30 || budget != 30 || evictions != 1 {
		t.Fatalf("stats = (%d, %d, %d, %d), want (3, 30, 30, 1)",
			entries, resident, budget, evictions)
	}
}

func TestCacheRejectsOversizedValue(t *testing.T) {
	c := newResultCache(8)
	c.Put("small", []byte("1234"))
	c.Put("huge", bytes.Repeat([]byte{'x'}, 9))
	if _, ok := c.Get("huge"); ok {
		t.Fatal("value larger than the whole budget was cached")
	}
	if _, ok := c.Get("small"); !ok {
		t.Fatal("oversized put evicted an unrelated resident entry")
	}
}

func TestCacheRePutKeepsBytesStable(t *testing.T) {
	c := newResultCache(100)
	c.Put("k", []byte("body"))
	c.Put("k", []byte("body"))
	entries, resident, _, _ := c.Stats()
	if entries != 1 || resident != 4 {
		t.Fatalf("re-put accounting: entries=%d bytes=%d, want 1/4", entries, resident)
	}
	got, ok := c.Get("k")
	if !ok || string(got) != "body" {
		t.Fatalf("got %q, %v", got, ok)
	}
}

func TestCacheNilIsDisabled(t *testing.T) {
	var c *resultCache
	c.Put("k", []byte("body")) // must not panic
	if _, ok := c.Get("k"); ok {
		t.Fatal("nil cache returned a hit")
	}
	if entries, resident, budget, evictions := c.Stats(); entries != 0 || resident != 0 || budget != 0 || evictions != 0 {
		t.Fatal("nil cache stats non-zero")
	}
}

func TestCacheManyKeysStayConsistent(t *testing.T) {
	c := newResultCache(1 << 10)
	for i := 0; i < 200; i++ {
		c.Put(fmt.Sprintf("key-%d", i), bytes.Repeat([]byte{byte(i)}, 64))
	}
	entries, resident, _, evictions := c.Stats()
	if resident > 1<<10 {
		t.Fatalf("resident %d bytes over the %d budget", resident, 1<<10)
	}
	if entries != 16 || evictions != 184 {
		t.Fatalf("entries=%d evictions=%d, want 16/184", entries, evictions)
	}
	// The most recent keys are the survivors.
	for i := 184; i < 200; i++ {
		body, ok := c.Get(fmt.Sprintf("key-%d", i))
		if !ok {
			t.Fatalf("key-%d missing", i)
		}
		if !bytes.Equal(body, bytes.Repeat([]byte{byte(i)}, 64)) {
			t.Fatalf("key-%d body corrupted", i)
		}
	}
}

func TestCachePutCopiesBody(t *testing.T) {
	c := newResultCache(1 << 10)
	body := []byte(`{"cycles":42}`)
	c.Put("k", body)
	// The caller reuses its buffer after Put returns; the cached bytes
	// must not follow.
	for i := range body {
		body[i] = 'X'
	}
	got, ok := c.Get("k")
	if !ok {
		t.Fatal("key missing")
	}
	if want := `{"cycles":42}`; string(got) != want {
		t.Fatalf("cached body mutated through the caller's slice: got %q, want %q", got, want)
	}
}
