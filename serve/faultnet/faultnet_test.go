package faultnet

import (
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"
)

// newBackend serves a fixed body for every request and counts arrivals.
func newBackend(t *testing.T, body string) (*httptest.Server, *int) {
	t.Helper()
	n := 0
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n++
		if r.Body != nil {
			echo, _ := io.ReadAll(r.Body)
			if len(echo) > 0 { // echo endpoints let request-corruption tests observe the wire
				w.Write(echo)
				return
			}
		}
		io.WriteString(w, body)
	}))
	t.Cleanup(ts.Close)
	return ts, &n
}

func get(t *testing.T, hc *http.Client, url string) (string, error) {
	t.Helper()
	resp, err := hc.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		return string(b), errors.New(resp.Status)
	}
	b, err := io.ReadAll(resp.Body)
	return string(b), err
}

func TestPlanValidateAndString(t *testing.T) {
	p := Plan{Seed: 7, Events: []Event{
		{Kind: Delay, Nth: 3, DelayMs: 120},
		{Kind: Reset, Nth: 2, Count: 2},
	}}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	want := "seed=7[delay@3+120ms reset@2x2]"
	if got := p.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	if !p.HasLoss() || p.Class() != ClassLoss {
		t.Error("plan with a reset must classify as loss")
	}

	bad := []Event{
		{Kind: Delay, Nth: 0, DelayMs: 10},             // Nth < 1
		{Kind: Delay, Nth: 1},                          // no delay
		{Kind: Delay, Nth: 1, DelayMs: MaxDelayMs + 1}, // over bound
		{Kind: Reset, Nth: 1, Count: MaxBurst + 1},     // burst too long
		{Kind: Reset, Nth: 1, DelayMs: 5},              // loss takes no delay
		{Kind: Partition, Nth: 1, Count: 2},            // partition takes no count
		{Kind: Kind(99), Nth: 1},                       // unknown kind
	}
	for i, e := range bad {
		if err := e.Validate(); err == nil {
			t.Errorf("bad event %d validated: %+v", i, e)
		}
	}
}

func TestPlanSeededDeterminism(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		a, b := RandomDelay(seed, 3), RandomDelay(seed, 3)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("RandomDelay(%d) not deterministic", seed)
		}
		if err := a.Validate(); err != nil {
			t.Fatalf("RandomDelay(%d): %v", seed, err)
		}
		if a.HasLoss() {
			t.Fatalf("RandomDelay(%d) produced a loss event", seed)
		}
		l1, l2 := RandomLoss(seed), RandomLoss(seed)
		if !reflect.DeepEqual(l1, l2) {
			t.Fatalf("RandomLoss(%d) not deterministic", seed)
		}
		if err := l1.Validate(); err != nil {
			t.Fatalf("RandomLoss(%d): %v", seed, err)
		}
		if !l1.HasLoss() {
			t.Fatalf("RandomLoss(%d) produced no loss event", seed)
		}
		d := RandomDisconnect(seed)
		if err := d.Validate(); err != nil {
			t.Fatalf("RandomDisconnect(%d): %v", seed, err)
		}
		for _, e := range d.Events {
			if e.Kind == TruncateBody || e.Kind == CorruptBody {
				t.Fatalf("RandomDisconnect(%d) drew a body-damage kind %s", seed, e.Kind)
			}
		}
	}
}

func TestKindJSONRoundTrip(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		b, err := k.MarshalJSON()
		if err != nil {
			t.Fatal(err)
		}
		var back Kind
		if err := back.UnmarshalJSON(b); err != nil || back != k {
			t.Errorf("kind %s: round-trip = %v, %v", k, back, err)
		}
	}
	var k Kind
	if err := k.UnmarshalJSON([]byte(`"no-such-kind"`)); err == nil {
		t.Error("unknown kind name unmarshalled")
	}
}

// TestTransportOccurrenceFiring pins the trigger semantics: events fire
// on the Nth request through the transport, exactly once, and the shot
// log records firing order.
func TestTransportOccurrenceFiring(t *testing.T) {
	ts, served := newBackend(t, "body")
	tr := NewTransport(Plan{Events: []Event{{Kind: Reset, Nth: 2}}}, nil)
	hc := tr.Client()

	if _, err := get(t, hc, ts.URL); err != nil {
		t.Fatalf("req 1: %v", err)
	}
	if _, err := get(t, hc, ts.URL); err == nil {
		t.Fatal("req 2 survived the scheduled reset")
	}
	for i := 3; i <= 5; i++ {
		if _, err := get(t, hc, ts.URL); err != nil {
			t.Fatalf("req %d after one-shot reset: %v", i, err)
		}
	}
	if *served != 4 {
		t.Errorf("backend saw %d requests, want 4 (the reset never reached the wire)", *served)
	}
	shots := tr.Shots()
	if len(shots) != 1 || shots[0].Kind != Reset || shots[0].N != 2 {
		t.Errorf("shots = %+v", shots)
	}
}

func TestTransportBurst5xx(t *testing.T) {
	ts, served := newBackend(t, "body")
	tr := NewTransport(Plan{Events: []Event{{Kind: Burst5xx, Nth: 1, Count: 3}}}, nil)
	hc := tr.Client()

	for i := 1; i <= 3; i++ {
		resp, err := hc.Get(ts.URL)
		if err != nil {
			t.Fatalf("burst req %d: transport error %v", i, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("burst req %d: status %d", i, resp.StatusCode)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Error("synthetic 503 carries no Retry-After")
		}
		if !strings.Contains(string(body), `"draining"`) {
			t.Errorf("synthetic 503 body %q is not a typed envelope", body)
		}
	}
	if out, err := get(t, hc, ts.URL); err != nil || out != "body" {
		t.Fatalf("after burst: %q, %v", out, err)
	}
	if *served != 1 {
		t.Errorf("backend saw %d requests during a 3-burst, want 1", *served)
	}
}

func TestTransportPartitionSticky(t *testing.T) {
	ts, served := newBackend(t, "body")
	ts2, served2 := newBackend(t, "other")
	tr := NewTransport(Plan{Events: []Event{{Kind: Partition, Nth: 2}}}, nil)
	hc := tr.Client()

	if _, err := get(t, hc, ts.URL); err != nil {
		t.Fatal(err)
	}
	// Request 2 targets ts: its host is severed, now and forever.
	if _, err := get(t, hc, ts.URL); err == nil {
		t.Fatal("partitioned request succeeded")
	}
	for i := 0; i < 3; i++ {
		if _, err := get(t, hc, ts.URL); err == nil {
			t.Fatal("sticky partition healed")
		}
	}
	// The other host is unaffected.
	if out, err := get(t, hc, ts2.URL); err != nil || out != "other" {
		t.Fatalf("unpartitioned host: %q, %v", out, err)
	}
	if *served != 1 || *served2 != 1 {
		t.Errorf("backends saw %d/%d requests, want 1/1", *served, *served2)
	}
}

func TestTransportTruncateAndCorruptBody(t *testing.T) {
	const body = "0123456789abcdef"
	ts, _ := newBackend(t, body)

	tr := NewTransport(Plan{Events: []Event{{Kind: TruncateBody, Nth: 1}}}, nil)
	out, err := get(t, tr.Client(), ts.URL)
	if err != nil {
		t.Fatalf("truncated response must look complete, got %v", err)
	}
	if out != body[:len(body)/2] {
		t.Errorf("truncated body = %q, want the first half of %q", out, body)
	}

	tr = NewTransport(Plan{Events: []Event{{Kind: CorruptBody, Nth: 1}}}, nil)
	out, err = get(t, tr.Client(), ts.URL)
	if err != nil {
		t.Fatalf("corrupted response must look complete, got %v", err)
	}
	if len(out) != len(body) || out == body {
		t.Errorf("corrupt body = %q: want same length, different bytes", out)
	}

	// With a request body present (the PUT path), corruption hits the
	// request; the echo backend shows what arrived on the wire.
	tr = NewTransport(Plan{Events: []Event{{Kind: CorruptBody, Nth: 1}}}, nil)
	resp, err := tr.Client().Post(ts.URL, "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	echoed, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if len(echoed) != len(body) || string(echoed) == body {
		t.Errorf("echoed corrupt request = %q: want same length, different bytes", echoed)
	}
}

func TestTransportDelayClasses(t *testing.T) {
	ts, _ := newBackend(t, "body")
	plan := Plan{Events: []Event{
		{Kind: Delay, Nth: 1, DelayMs: 60},
		{Kind: ConnectJitter, Nth: 2, DelayMs: 60},
		{Kind: SlowBody, Nth: 3, DelayMs: 60},
	}}
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
	tr := NewTransport(plan, nil)
	hc := tr.Client()
	for i := 1; i <= 3; i++ {
		start := time.Now()
		out, err := get(t, hc, ts.URL)
		if err != nil || out != "body" {
			t.Fatalf("delay-class req %d: %q, %v — delay faults must stay latency-only", i, out, err)
		}
		if d := time.Since(start); d < 40*time.Millisecond {
			t.Errorf("req %d finished in %v, want the injected stretch", i, d)
		}
	}
	if shots := tr.Shots(); len(shots) != 3 {
		t.Errorf("shots = %+v, want all three delay events fired", shots)
	}
}

// TestListenerFaults exercises the listener-side wrapper: a reset
// closes the Nth accepted connection before the server sees it, a
// delay holds it.
func TestListenerFaults(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	wrapped := WrapListener(ln, Plan{Events: []Event{{Kind: Reset, Nth: 1}}})
	srv := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	})}
	go srv.Serve(wrapped)
	defer srv.Close()

	url := "http://" + ln.Addr().String()
	// Connection 1 is reset before any byte; a plain client with no
	// keepalive budget surfaces it as a transport error, and the next
	// connection goes through.
	hc := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}, Timeout: 5 * time.Second}
	if _, err := get(t, hc, url); err == nil {
		t.Fatal("request over the reset connection succeeded")
	}
	out, err := get(t, hc, url)
	if err != nil || out != "ok" {
		t.Fatalf("after listener reset: %q, %v", out, err)
	}
	if shots := wrapped.Shots(); len(shots) != 1 || shots[0].Kind != Reset {
		t.Errorf("listener shots = %+v", shots)
	}
}
