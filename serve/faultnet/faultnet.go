// Package faultnet provides deterministic, seeded network fault
// injection for the hfserve cluster — the service-tier twin of the
// sim-level fault package. A Plan is a schedule of injectable events;
// an HTTP channel honours it through a Transport (an
// http.RoundTripper wrapper, pluggable into cluster.Peering and
// serve/client via http.Client) or a wrapped net.Listener.
//
// Faults come in the same two classes as the sim taxonomy, with the
// same obligations:
//
//   - Delay-class faults (Delay, SlowBody, ConnectJitter) are
//     latency-only: the request still completes with the right bytes,
//     just slower. Delays are bounded (MaxDelayMs) so an injected
//     stretch degrades a peer fill into a timeout-and-local-simulate
//     at worst, never a hang.
//
//   - Loss-class faults (Reset, Burst5xx, TruncateBody, CorruptBody,
//     Partition) sever or damage the channel. The resilience layer
//     must *detect* them (digest verification, typed errors, breaker
//     trips) — a request may fail with a typed error or degrade to
//     local compute, but it must never complete with silently wrong
//     bytes. TruncateBody and CorruptBody are aimed at the
//     digest-protected peer tier; on channels without body digests
//     (the public /v1/run surface) use RandomDisconnect plans, whose
//     loss kinds are all connection-level and therefore always
//     detectable.
//
// Determinism mirrors the sim injector: triggers are occurrence-based
// — an event fires on the Nth request through its Transport (or the
// Nth accepted connection through a wrapped listener), never on wall
// time — so a plan's firing pattern is a pure function of the request
// sequence, and scenario classifications agree with fast-forwarding
// on or off.
package faultnet

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"
)

// Class separates latency-only faults from channel-loss faults.
type Class int

// The fault classes.
const (
	// ClassDelay faults stretch latencies; requests still complete
	// correctly.
	ClassDelay Class = iota
	// ClassLoss faults sever or damage the channel; the resilience
	// layer must detect them.
	ClassLoss
)

// String names the class.
func (c Class) String() string {
	if c == ClassLoss {
		return "loss"
	}
	return "delay"
}

// Kind identifies one injectable network fault type.
type Kind int

// The injectable fault kinds.
const (
	// Delay holds the Nth response for DelayMs after it arrives (a
	// slow peer that eventually answers).
	Delay Kind = iota
	// SlowBody trickles the Nth response's body, spreading DelayMs of
	// stall across small reads (a slow-loris peer).
	SlowBody
	// ConnectJitter holds the Nth request for DelayMs before sending
	// it (a congested connect path).
	ConnectJitter
	// Reset fails Count consecutive requests starting at the Nth with
	// an injected connection reset; the requests never reach the wire.
	Reset
	// Burst5xx answers Count consecutive requests starting at the Nth
	// with a synthetic 503 (Retry-After: 1) without reaching the wire
	// (an overloaded middlebox or crash-looping replica).
	Burst5xx
	// TruncateBody cuts the Nth response's body to a prefix and fixes
	// the framing so the response looks complete — only a digest
	// check can catch it.
	TruncateBody
	// CorruptBody flips one byte of the Nth request's body (when it
	// has one — the PUT path) or otherwise of its response body.
	CorruptBody
	// Partition is sticky: the host targeted by the Nth request
	// becomes unreachable from this transport for every later request
	// (a severed replica pair).
	Partition
	numKinds
)

// kindNames maps kinds to their stable wire names.
var kindNames = [numKinds]string{
	"delay", "slow-body", "connect-jitter",
	"reset", "burst-5xx", "truncate-body", "corrupt-body", "partition",
}

// String names the kind.
func (k Kind) String() string {
	if k < 0 || k >= numKinds {
		return fmt.Sprintf("Kind(%d)", int(k))
	}
	return kindNames[k]
}

// Class returns the kind's fault class.
func (k Kind) Class() Class {
	switch k {
	case Reset, Burst5xx, TruncateBody, CorruptBody, Partition:
		return ClassLoss
	}
	return ClassDelay
}

// MarshalJSON encodes the kind by its stable name.
func (k Kind) MarshalJSON() ([]byte, error) { return json.Marshal(k.String()) }

// UnmarshalJSON decodes a kind from its stable name.
func (k *Kind) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	for i, n := range kindNames {
		if n == s {
			*k = Kind(i)
			return nil
		}
	}
	return fmt.Errorf("faultnet: unknown kind %q", s)
}

// MaxDelayMs bounds every delay-class stretch. It sits above the
// cluster's default 250ms fill timeout on purpose: a stretched peer
// fill must sometimes lose its race and degrade into a local
// simulation — that degradation path is part of what chaos sweeps
// exercise — while staying far below job budgets and scenario
// timeouts so a delay can never masquerade as a hang.
const MaxDelayMs = 300

// MaxBurst bounds Reset/Burst5xx run lengths, keeping an injected
// outage shorter than a bounded retry policy's patience.
const MaxBurst = 3

// Event is one scheduled network fault.
type Event struct {
	Kind Kind `json:"kind"`
	// Nth is the 1-based request (or accepted-connection) count at
	// which the event fires, per Transport/Listener.
	Nth uint64 `json:"nth"`
	// DelayMs is the latency stretch for delay-class kinds.
	DelayMs uint64 `json:"delay_ms,omitempty"`
	// Count is the burst length for Reset/Burst5xx (0 = 1).
	Count uint64 `json:"count,omitempty"`
}

// Validate checks one event.
func (e Event) Validate() error {
	if e.Kind < 0 || e.Kind >= numKinds {
		return fmt.Errorf("faultnet: unknown kind %d", int(e.Kind))
	}
	if e.Nth < 1 {
		return fmt.Errorf("faultnet: %s: Nth must be >= 1, got %d", e.Kind, e.Nth)
	}
	switch e.Kind {
	case Delay, SlowBody, ConnectJitter:
		if e.DelayMs < 1 || e.DelayMs > MaxDelayMs {
			return fmt.Errorf("faultnet: %s: delay %dms outside [1, %d]", e.Kind, e.DelayMs, MaxDelayMs)
		}
		if e.Count != 0 {
			return fmt.Errorf("faultnet: %s: delay-class events take no count", e.Kind)
		}
	case Reset, Burst5xx:
		if e.Count > MaxBurst {
			return fmt.Errorf("faultnet: %s: count %d outside [0, %d]", e.Kind, e.Count, MaxBurst)
		}
		if e.DelayMs != 0 {
			return fmt.Errorf("faultnet: %s: loss-class events take no delay", e.Kind)
		}
	default: // TruncateBody, CorruptBody, Partition carry no parameters
		if e.DelayMs != 0 || e.Count != 0 {
			return fmt.Errorf("faultnet: %s: event takes no delay/count", e.Kind)
		}
	}
	return nil
}

// Plan is a reproducible schedule of network fault events.
type Plan struct {
	// Seed records how the plan was generated (provenance only;
	// replaying a plan uses its Events, not the seed).
	Seed int64 `json:"seed,omitempty"`
	// Events are the scheduled faults.
	Events []Event `json:"events"`
}

// Validate checks every event.
func (p Plan) Validate() error {
	for i, e := range p.Events {
		if err := e.Validate(); err != nil {
			return fmt.Errorf("event %d: %w", i, err)
		}
	}
	return nil
}

// HasLoss reports whether the plan contains any loss-class event.
func (p Plan) HasLoss() bool {
	for _, e := range p.Events {
		if e.Kind.Class() == ClassLoss {
			return true
		}
	}
	return false
}

// Class returns ClassLoss if any event is loss-class, else ClassDelay.
func (p Plan) Class() Class {
	if p.HasLoss() {
		return ClassLoss
	}
	return ClassDelay
}

// String renders the plan compactly, e.g.
// "seed=7[delay@3+120ms reset@2x2]".
func (p Plan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "seed=%d[", p.Seed)
	for i, e := range p.Events {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s@%d", e.Kind, e.Nth)
		if e.DelayMs > 0 {
			fmt.Fprintf(&b, "+%dms", e.DelayMs)
		}
		if e.Count > 0 {
			fmt.Fprintf(&b, "x%d", e.Count)
		}
	}
	b.WriteByte(']')
	return b.String()
}

// delayKinds are the candidates RandomDelay draws from.
var delayKinds = []Kind{Delay, SlowBody, ConnectJitter}

// lossKinds are the candidates RandomLoss draws from.
var lossKinds = []Kind{Reset, Burst5xx, TruncateBody, CorruptBody, Partition}

// disconnectKinds are the candidates RandomDisconnect draws from: the
// loss kinds that are connection-level and therefore detectable on
// any channel, digested or not.
var disconnectKinds = []Kind{Reset, Burst5xx, Partition}

// RandomDelay returns a seeded plan of n delay-class events. The same
// seed always yields the same plan.
func RandomDelay(seed int64, n int) Plan {
	rng := rand.New(rand.NewSource(seed))
	p := Plan{Seed: seed}
	for i := 0; i < n; i++ {
		p.Events = append(p.Events, Event{
			Kind:    delayKinds[rng.Intn(len(delayKinds))],
			Nth:     1 + uint64(rng.Intn(12)),
			DelayMs: 1 + uint64(rng.Intn(MaxDelayMs)),
		})
	}
	return p
}

// RandomLoss returns a seeded plan with exactly one loss-class event,
// triggered early (small Nth) so the damaged channel still has
// traffic left to hurt. The full loss alphabet includes body-damage
// kinds, so RandomLoss plans belong on digest-protected channels (the
// peer tier).
func RandomLoss(seed int64) Plan {
	rng := rand.New(rand.NewSource(seed))
	k := lossKinds[rng.Intn(len(lossKinds))]
	e := Event{Kind: k, Nth: 1 + uint64(rng.Intn(6))}
	if k == Reset || k == Burst5xx {
		e.Count = 1 + uint64(rng.Intn(MaxBurst))
	}
	return Plan{Seed: seed, Events: []Event{e}}
}

// RandomDisconnect returns a seeded plan with exactly one
// connection-level loss event (reset, 5xx burst, or partition) —
// safe on channels without body digests, where a truncation or
// bit-flip would be undetectable and therefore outside the contract.
func RandomDisconnect(seed int64) Plan {
	rng := rand.New(rand.NewSource(seed))
	k := disconnectKinds[rng.Intn(len(disconnectKinds))]
	e := Event{Kind: k, Nth: 1 + uint64(rng.Intn(6))}
	if k == Reset || k == Burst5xx {
		e.Count = 1 + uint64(rng.Intn(MaxBurst))
	}
	return Plan{Seed: seed, Events: []Event{e}}
}

// ErrInjectedReset is the error an injected Reset/Partition surfaces;
// the http.Client wraps it in *url.Error like any transport failure.
var ErrInjectedReset = errors.New("faultnet: injected connection reset")

// Shot records one fired network fault.
type Shot struct {
	Kind Kind `json:"kind"`
	// N is the request (or connection) count at which the shot fired.
	N uint64 `json:"n"`
	// Host is the target host of the affected request ("" for
	// listener shots).
	Host    string `json:"host,omitempty"`
	DelayMs uint64 `json:"delay_ms,omitempty"`
	Count   uint64 `json:"count,omitempty"`
}

// String renders the shot, e.g. "reset@req 3 host 127.0.0.1:4127".
func (s Shot) String() string {
	out := fmt.Sprintf("%s@req %d", s.Kind, s.N)
	if s.Host != "" {
		out += " host " + s.Host
	}
	if s.DelayMs > 0 {
		out += fmt.Sprintf(" +%dms", s.DelayMs)
	}
	if s.Count > 0 {
		out += fmt.Sprintf(" x%d", s.Count)
	}
	return out
}

// Transport is a fault-injecting http.RoundTripper: it counts the
// requests that traverse it and fires the plan's events on their Nth
// occurrence. Unlike the sim injector (one run, one goroutine), an
// HTTP transport is shared by concurrent requests, so Transport is
// safe for concurrent use; the occurrence order under concurrency is
// whatever order requests win the counter lock, which is exactly the
// order the shot log records.
type Transport struct {
	inner http.RoundTripper

	mu      sync.Mutex
	n       uint64
	pending []Event
	// burst is the live Reset/Burst5xx run: burstLeft more requests
	// get the synthetic failure.
	burstKind Kind
	burstLeft uint64
	// cut holds sticky partitioned hosts.
	cut   map[string]bool
	shots []Shot
}

// NewTransport wraps inner (nil = http.DefaultTransport) with the
// plan's fault schedule.
func NewTransport(p Plan, inner http.RoundTripper) *Transport {
	if inner == nil {
		inner = http.DefaultTransport
	}
	return &Transport{
		inner:   inner,
		pending: append([]Event(nil), p.Events...),
		cut:     map[string]bool{},
	}
}

// Client wraps the transport in an *http.Client, the form
// cluster.Config.HTTPClient and serve/client.WithHTTPClient take.
func (t *Transport) Client() *http.Client { return &http.Client{Transport: t} }

// Shots returns the log of fired faults in firing order. Sticky
// partitions log one shot per refused request.
func (t *Transport) Shots() []Shot {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Shot(nil), t.shots...)
}

// ShotStrings renders the shot log (nil when nothing fired).
func (t *Transport) ShotStrings() []string {
	shots := t.Shots()
	if len(shots) == 0 {
		return nil
	}
	out := make([]string, len(shots))
	for i, s := range shots {
		out[i] = s.String()
	}
	return out
}

// closeReqBody honours the RoundTripper contract on synthetic paths:
// the transport owns the request body and must close it even when the
// request never reaches the wire.
func closeReqBody(req *http.Request) {
	if req.Body != nil {
		req.Body.Close()
	}
}

// synth503 fabricates the Burst5xx response: a typed draining
// envelope with a Retry-After hint, indistinguishable on the wire
// from an overloaded replica.
func synth503(req *http.Request) *http.Response {
	body := []byte(`{"error":{"code":"draining","message":"faultnet: injected 503 burst"}}` + "\n")
	h := http.Header{}
	h.Set("Content-Type", "application/json")
	h.Set("Retry-After", "1")
	return &http.Response{
		Status:        "503 Service Unavailable",
		StatusCode:    http.StatusServiceUnavailable,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        h,
		Body:          io.NopCloser(bytes.NewReader(body)),
		ContentLength: int64(len(body)),
		Request:       req,
	}
}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	t.mu.Lock()
	t.n++
	n := t.n
	host := req.URL.Host

	if t.cut[host] {
		t.shots = append(t.shots, Shot{Kind: Partition, N: n, Host: host})
		t.mu.Unlock()
		closeReqBody(req)
		return nil, ErrInjectedReset
	}
	if t.burstLeft > 0 {
		t.burstLeft--
		k := t.burstKind
		t.shots = append(t.shots, Shot{Kind: k, N: n, Host: host})
		t.mu.Unlock()
		closeReqBody(req)
		if k == Reset {
			return nil, ErrInjectedReset
		}
		return synth503(req), nil
	}

	var ev Event
	fired := false
	for i, e := range t.pending {
		if e.Nth == n {
			ev = e
			t.pending = append(t.pending[:i], t.pending[i+1:]...)
			fired = true
			break
		}
	}
	if fired {
		t.shots = append(t.shots, Shot{Kind: ev.Kind, N: n, Host: host, DelayMs: ev.DelayMs, Count: ev.Count})
		switch ev.Kind {
		case Partition:
			t.cut[host] = true
			t.mu.Unlock()
			closeReqBody(req)
			return nil, ErrInjectedReset
		case Reset, Burst5xx:
			if ev.Count > 1 {
				t.burstKind, t.burstLeft = ev.Kind, ev.Count-1
			}
			t.mu.Unlock()
			closeReqBody(req)
			if ev.Kind == Reset {
				return nil, ErrInjectedReset
			}
			return synth503(req), nil
		}
	}
	t.mu.Unlock()
	if !fired {
		return t.inner.RoundTrip(req)
	}

	switch ev.Kind {
	case ConnectJitter:
		time.Sleep(time.Duration(ev.DelayMs) * time.Millisecond)
		return t.inner.RoundTrip(req)
	case Delay:
		resp, err := t.inner.RoundTrip(req)
		time.Sleep(time.Duration(ev.DelayMs) * time.Millisecond)
		return resp, err
	case SlowBody:
		resp, err := t.inner.RoundTrip(req)
		if err == nil && resp.Body != nil {
			resp.Body = &trickleReader{rc: resp.Body, budget: time.Duration(ev.DelayMs) * time.Millisecond}
		}
		return resp, err
	case TruncateBody:
		resp, err := t.inner.RoundTrip(req)
		if err != nil {
			return resp, err
		}
		return truncateResponse(resp), nil
	case CorruptBody:
		if req.Body != nil && req.ContentLength > 0 {
			if err := corruptRequest(req); err != nil {
				return nil, err
			}
			return t.inner.RoundTrip(req)
		}
		resp, err := t.inner.RoundTrip(req)
		if err != nil {
			return resp, err
		}
		return corruptResponse(resp), nil
	}
	return t.inner.RoundTrip(req) // unreachable: every kind is handled
}

// trickleReader is the SlowBody wrapper: it caps each read at a small
// chunk and stalls between chunks until the delay budget is spent.
type trickleReader struct {
	rc     io.ReadCloser
	budget time.Duration
}

func (r *trickleReader) Read(p []byte) (int, error) {
	const chunk = 256
	if len(p) > chunk {
		p = p[:chunk]
	}
	n, err := r.rc.Read(p)
	if r.budget > 0 {
		pause := r.budget / 4
		// Spend whatever remains when the body ends (or the next pause
		// would be negligible) so the injected stall always totals
		// DelayMs, however short the body.
		if err != nil || pause < time.Millisecond {
			pause = r.budget
		}
		r.budget -= pause
		time.Sleep(pause)
	}
	return n, err
}

func (r *trickleReader) Close() error { return r.rc.Close() }

// flipByte flips the middle byte so the damage is deterministic: no
// extra randomness enters at injection time.
func flipByte(b []byte) {
	if len(b) > 0 {
		b[len(b)/2] ^= 0xff
	}
}

// replaceBody swaps a response's body for raw and fixes the framing
// so the response looks complete and well-formed.
func replaceBody(resp *http.Response, raw []byte) *http.Response {
	resp.Body = io.NopCloser(bytes.NewReader(raw))
	resp.ContentLength = int64(len(raw))
	resp.Header.Del("Content-Length")
	resp.Header.Set("Content-Length", fmt.Sprint(len(raw)))
	resp.TransferEncoding = nil
	return resp
}

func truncateResponse(resp *http.Response) *http.Response {
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || len(raw) == 0 {
		return replaceBody(resp, raw)
	}
	return replaceBody(resp, raw[:len(raw)/2])
}

func corruptResponse(resp *http.Response) *http.Response {
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err == nil {
		flipByte(raw)
	}
	return replaceBody(resp, raw)
}

func corruptRequest(req *http.Request) error {
	raw, err := io.ReadAll(req.Body)
	req.Body.Close()
	if err != nil {
		return err
	}
	flipByte(raw)
	req.Body = io.NopCloser(bytes.NewReader(raw))
	req.ContentLength = int64(len(raw))
	return nil
}

// Listener wraps a net.Listener with the plan's connection-level
// events: Delay/ConnectJitter hold the Nth accepted connection before
// handing it to the server, Reset closes it immediately (the client
// sees a reset before any byte). Body-level kinds do not apply at the
// listener and are ignored.
type Listener struct {
	net.Listener

	mu      sync.Mutex
	n       uint64
	pending []Event
	shots   []Shot
}

// WrapListener applies plan to ln's accepted connections.
func WrapListener(ln net.Listener, p Plan) *Listener {
	return &Listener{Listener: ln, pending: append([]Event(nil), p.Events...)}
}

// Shots returns the log of fired listener faults in firing order.
func (l *Listener) Shots() []Shot {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Shot(nil), l.shots...)
}

// Accept implements net.Listener.
func (l *Listener) Accept() (net.Conn, error) {
	for {
		conn, err := l.Listener.Accept()
		if err != nil {
			return conn, err
		}
		l.mu.Lock()
		l.n++
		n := l.n
		var ev Event
		fired := false
		for i, e := range l.pending {
			if e.Nth != n {
				continue
			}
			switch e.Kind {
			case Delay, ConnectJitter, Reset:
				ev = e
				l.pending = append(l.pending[:i], l.pending[i+1:]...)
				fired = true
			}
			break
		}
		if fired {
			l.shots = append(l.shots, Shot{Kind: ev.Kind, N: n, DelayMs: ev.DelayMs, Count: ev.Count})
		}
		l.mu.Unlock()
		if !fired {
			return conn, nil
		}
		if ev.Kind == Reset {
			conn.Close()
			continue // the server never sees the connection
		}
		time.Sleep(time.Duration(ev.DelayMs) * time.Millisecond)
		return conn, nil
	}
}
