package serve

import (
	"container/list"
	"sync"
)

// resultCache is the content-addressed result store: canonical request
// key (hfstream.Spec.Key, a SHA-256 hex digest) to the exact response
// body served for it. Eviction is least-recently-used under a byte
// budget; a single value larger than the whole budget is rejected rather
// than evicting everything else. Caching bodies is sound because the
// simulator is deterministic (see RESILIENCE.md): a key fully determines
// its response bytes, so a hit can never serve a stale or divergent
// result.
type resultCache struct {
	mu        sync.Mutex
	budget    int64
	bytes     int64
	ll        *list.List // front = most recently used
	entries   map[string]*list.Element
	evictions uint64
}

type cacheEntry struct {
	key  string
	body []byte
}

func newResultCache(budget int64) *resultCache {
	return &resultCache{
		budget:  budget,
		ll:      list.New(),
		entries: make(map[string]*list.Element),
	}
}

// Get returns the body cached for key and refreshes its recency.
func (c *resultCache) Get(key string) ([]byte, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).body, true
}

// Put stores body under key, evicting least-recently-used entries until
// the byte budget holds. Bodies larger than the budget are not stored.
func (c *resultCache) Put(key string, body []byte) {
	if c == nil || int64(len(body)) > c.budget {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		// The simulator is deterministic, so a re-put carries the same
		// bytes; just refresh recency.
		c.ll.MoveToFront(el)
		return
	}
	// Copy the body: the caller may reuse or mutate its slice after Put
	// returns (response buffers are recycled), and a cache hit must serve
	// the bytes as they were stored.
	stored := make([]byte, len(body))
	copy(stored, body)
	c.entries[key] = c.ll.PushFront(&cacheEntry{key: key, body: stored})
	c.bytes += int64(len(body))
	for c.bytes > c.budget {
		back := c.ll.Back()
		if back == nil {
			break
		}
		e := back.Value.(*cacheEntry)
		c.ll.Remove(back)
		delete(c.entries, e.key)
		c.bytes -= int64(len(e.body))
		c.evictions++
	}
}

// Stats reports the current entry count, resident bytes, budget and
// lifetime eviction count.
func (c *resultCache) Stats() (entries int, bytes, budget int64, evictions uint64) {
	if c == nil {
		return 0, 0, 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries), c.bytes, c.budget, c.evictions
}
