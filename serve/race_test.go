package serve

// Race-mode battery: hammer the service with concurrent identical and
// distinct requests (run under -race via `make race`). The invariants
// under test are the serving contract: exactly one underlying simulation
// per unique request key, byte-identical bodies however a response was
// produced (cold, cached, coalesced), and a clean drain while requests
// are still in flight.

import (
	"bytes"
	"context"
	"net/http/httptest"
	"sync"
	"testing"

	"hfstream"
)

func TestRaceIdenticalRequestsCoalesceToOneRun(t *testing.T) {
	s := New(Config{Workers: 2, QueueDepth: 32})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const n = 16
	bodies := make([][]byte, n)
	statuses := make([]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			statuses[i], bodies[i], _ = post(t, ts.URL, `{"bench":"adpcmdec","design":"SYNCOPTI"}`)
		}(i)
	}
	wg.Wait()

	for i := 0; i < n; i++ {
		if statuses[i] != 200 {
			t.Fatalf("request %d: status %d (%s)", i, statuses[i], bodies[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("request %d body differs from request 0:\n%s\nvs\n%s", i, bodies[i], bodies[0])
		}
	}
	m := s.Metrics()
	if m.Runs != 1 {
		t.Fatalf("%d underlying runs for %d identical requests, want exactly 1", m.Runs, n)
	}
	// Every non-leader was either coalesced onto the flight or served
	// from the cache after it completed; none were dropped.
	if m.CacheHits+m.Coalesced != n-1 {
		t.Fatalf("hits(%d) + coalesced(%d) != %d", m.CacheHits, m.Coalesced, n-1)
	}
}

func TestRaceDistinctRequestsEachRunOnce(t *testing.T) {
	s := New(Config{Workers: 4, QueueDepth: 64})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	designs := hfstream.Designs()
	const dup = 3 // concurrent duplicates per design
	type res struct {
		design string
		status int
		body   []byte
	}
	results := make(chan res, len(designs)*dup)
	var wg sync.WaitGroup
	for _, d := range designs {
		for k := 0; k < dup; k++ {
			wg.Add(1)
			go func(name string) {
				defer wg.Done()
				status, body, _ := post(t, ts.URL, `{"bench":"adpcmdec","design":"`+name+`"}`)
				results <- res{name, status, body}
			}(d.Name())
		}
	}
	wg.Wait()
	close(results)

	byDesign := map[string][][]byte{}
	for r := range results {
		if r.status != 200 {
			t.Fatalf("%s: status %d (%s)", r.design, r.status, r.body)
		}
		byDesign[r.design] = append(byDesign[r.design], r.body)
	}
	var distinct [][]byte
	for name, bodies := range byDesign {
		for _, b := range bodies[1:] {
			if !bytes.Equal(b, bodies[0]) {
				t.Fatalf("%s: duplicate requests returned different bodies", name)
			}
		}
		distinct = append(distinct, bodies[0])
	}
	for i := range distinct {
		for j := i + 1; j < len(distinct); j++ {
			if bytes.Equal(distinct[i], distinct[j]) {
				t.Fatal("two different designs served identical bodies")
			}
		}
	}
	if m := s.Metrics(); m.Runs != uint64(len(designs)) {
		t.Fatalf("%d runs for %d unique specs, want one each", m.Runs, len(designs))
	}
}

func TestRaceDrainMidFlight(t *testing.T) {
	s := New(Config{Workers: 2, QueueDepth: 16})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Real simulations in flight while Drain lands: everything admitted
	// must finish with a well-formed 200, everything after the drain
	// begins must get the typed 503, and Drain itself must return clean.
	specs := []string{
		`{"bench":"adpcmdec","design":"EXISTING"}`,
		`{"bench":"adpcmdec","design":"MEMOPTI"}`,
		`{"bench":"bzip2","design":"SYNCOPTI"}`,
		`{"bench":"bzip2","design":"HEAVYWT"}`,
	}
	type res struct {
		status int
		body   []byte
	}
	results := make(chan res, len(specs))
	var wg sync.WaitGroup
	for _, spec := range specs {
		wg.Add(1)
		go func(spec string) {
			defer wg.Done()
			status, body, _ := post(t, ts.URL, spec)
			results <- res{status, body}
		}(spec)
	}
	// Wait on the monotonic run counter, not transient pool state: warm
	// simulations are fast enough to start and finish between polls.
	waitFor(t, func() bool { return s.runs.Load() > 0 })
	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	wg.Wait()
	close(results)

	admitted := 0
	for r := range results {
		switch r.status {
		case 200:
			admitted++
			if !bytes.Contains(r.body, []byte(`"cycles"`)) {
				t.Fatalf("drained 200 body is not a metrics snapshot: %s", r.body)
			}
		case 503:
			if errCode(t, r.body) != codeDraining {
				t.Fatalf("rejected request carries code %q, want %q", errCode(t, r.body), codeDraining)
			}
		default:
			t.Fatalf("unexpected status %d (%s)", r.status, r.body)
		}
	}
	if admitted == 0 {
		t.Fatal("no request was admitted before the drain")
	}
	// After a drain everything is rejected.
	status, body, _ := post(t, ts.URL, `{"bench":"wc","design":"EXISTING"}`)
	if status != 503 || errCode(t, body) != codeDraining {
		t.Fatalf("post-drain request: status=%d body=%s, want typed 503", status, body)
	}
}
