// Package serve turns the deterministic simulator into a long-lived HTTP
// JSON service. POST /run accepts an hfstream.Spec (benchmark + design +
// run mode), executes it on a bounded worker pool shared with the
// experiment harness (internal/exp.Pool), and responds with the run's
// metrics snapshot — the exact bytes hfstream.WithMetrics writes, so a
// served response is byte-identical to calling the library API directly.
//
// Three properties make the service safe to put in front of heavy
// traffic:
//
//   - Content-addressed caching: requests are canonicalized and hashed
//     (hfstream.Spec.Key), and successful response bodies are cached in a
//     byte-budgeted LRU. The simulator is deterministic (RESILIENCE.md),
//     so a cache hit is guaranteed byte-identical to a fresh run.
//   - Request coalescing: concurrent identical requests collapse onto one
//     in-flight simulation (singleflight); every caller gets the same
//     bytes, and exactly one underlying run happens per unique request.
//   - Backpressure: when the queue is full the service sheds load with a
//     typed 429 JSON error instead of queuing unboundedly, and
//     BeginDrain/Drain reject new work with 503 while letting in-flight
//     jobs finish — the SIGTERM path of cmd/hfserve.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"sync/atomic"
	"time"

	"hfstream"
	"hfstream/internal/exp"
)

// Defaults for the zero Config.
const (
	DefaultQueueDepth = 64
	DefaultCacheBytes = 64 << 20
	DefaultJobTimeout = 2 * time.Minute

	// maxRequestBytes bounds a /run request body; specs are tiny and an
	// unbounded read is a trivial memory DoS.
	maxRequestBytes = 1 << 20
)

// Config parameterizes a Server. The zero value picks the defaults
// above; CacheBytes < 0 disables caching (coalescing still applies).
type Config struct {
	// Workers is the simulation pool size (0 = GOMAXPROCS).
	Workers int
	// QueueDepth bounds jobs accepted but not yet running; a submission
	// past the bound is shed with 429 rather than queued.
	QueueDepth int
	// CacheBytes is the result cache budget (0 = default, < 0 = off).
	CacheBytes int64
	// JobTimeout caps each simulation's wall-clock time through the
	// ctx-first run API; an expired job fails with a typed 504.
	JobTimeout time.Duration
	// Peer, when non-nil, plugs this server into a cluster cache tier
	// (serve/cluster): on a local cache miss the server asks the key's
	// owner shard for the bytes before simulating, and publishes fresh
	// results back to the owners. See peer.go for the contract.
	Peer Peer
}

// Server is one service instance. Create it with New, mount Handler on
// an http.Server, and call Drain on shutdown.
type Server struct {
	cfg     Config
	pool    *exp.Pool
	cache   *resultCache // nil when disabled
	peer    Peer         // nil when not clustered
	flights flightGroup

	draining atomic.Bool
	start    time.Time
	baseCtx  context.Context // job lifetime: server-scoped, not request-scoped
	cancel   context.CancelFunc

	requests    atomic.Uint64
	streams     atomic.Uint64
	sweeps      atomic.Uint64
	cacheHits   atomic.Uint64
	cacheMisses atomic.Uint64
	coalesced   atomic.Uint64
	peerHits    atomic.Uint64
	peerMisses  atomic.Uint64
	runs        atomic.Uint64
	failures    atomic.Uint64
	shed        atomic.Uint64
	rejected    atomic.Uint64
	peerPutBad  atomic.Uint64
	simCycles   atomic.Uint64
	simInstrs   atomic.Uint64
	simStalls   atomic.Uint64

	// run executes one spec; overridable by tests to model slow or
	// failing jobs without real simulations (same seam as exp.Runner.run).
	// hooks, when non-nil, carries the streaming progress callback.
	run func(ctx context.Context, spec hfstream.Spec, hooks *streamHooks) *outcome
}

// New builds a Server and starts its worker pool.
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	if cfg.CacheBytes == 0 {
		cfg.CacheBytes = DefaultCacheBytes
	}
	if cfg.JobTimeout == 0 {
		cfg.JobTimeout = DefaultJobTimeout
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:     cfg,
		pool:    exp.NewPool(cfg.Workers, cfg.QueueDepth),
		peer:    cfg.Peer,
		start:   time.Now(),
		baseCtx: ctx,
		cancel:  cancel,
	}
	if cfg.CacheBytes > 0 {
		s.cache = newResultCache(cfg.CacheBytes)
	}
	s.run = s.execSpec
	return s
}

// Handler returns the service's HTTP surface. The wire contract is
// versioned under /v1/ (documented in full in serve/API.md); the
// original unversioned paths are kept as aliases for existing clients:
//
//	POST /v1/run            run a spec (or serve it from cache), body = metrics JSON
//	POST /v1/run?stream=ndjson  the same run as live NDJSON events (see stream.go)
//	POST /v1/sweep          run a (benches x designs x options) grid, cells
//	                        streamed as NDJSON events as they complete (see sweep.go)
//	GET  /v1/metrics        service counters (cache, queue, peering, simulated work)
//	GET  /v1/healthz        liveness; 503 once draining so balancers stop routing
//	GET  /v1/peer/{key}     cluster-internal: the cached bytes for a Spec.Key,
//	                        404 (not_cached) on miss — never simulates
//	PUT  /v1/peer/{key}     cluster-internal: publish a replica's fresh result
//	                        into this shard's cache
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	for _, prefix := range []string{"", "/v1"} {
		mux.HandleFunc(prefix+"/run", s.handleRun)
		mux.HandleFunc(prefix+"/sweep", s.handleSweep)
		mux.HandleFunc(prefix+"/metrics", s.handleMetrics)
		mux.HandleFunc(prefix+"/healthz", s.handleHealthz)
	}
	mux.HandleFunc("/v1/peer/", s.handlePeer)
	return mux
}

// BeginDrain flips the server into draining mode: new /run work is
// rejected with a typed 503 and /healthz reports draining, while queued
// and in-flight jobs keep running. Idempotent.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Drain is the graceful-shutdown path: it begins draining, closes the
// pool's intake, and waits for every queued and in-flight job to finish.
// If ctx expires first, in-flight simulations are canceled through the
// ctx-first run API and the ctx error is returned.
func (s *Server) Drain(ctx context.Context) error {
	s.BeginDrain()
	s.pool.Close()
	err := s.pool.Wait(ctx)
	if err != nil {
		s.cancel()
	}
	return err
}

// Error codes carried in the typed JSON error envelope.
const (
	codeBadRequest = "bad_request"
	codeQueueFull  = "queue_full"
	codeDraining   = "draining"
	codeTimeout    = "timeout"
	codeCanceled   = "canceled"
	codeDeadlock   = "deadlock"
	codeRunFailed  = "run_failed"
	codeInternal   = "internal"
	// codeIntegrity rejects a peer PUT whose body fails digest
	// verification: the bytes were damaged in flight (truncated or
	// corrupted) and must never enter the cache.
	codeIntegrity = "integrity"
)

// Retry-After hints on backpressure responses (seconds). Queue-full is
// transient — a breath usually clears it; draining is terminal for
// this replica, so the hint is longer and clients should prefer
// another instance.
const (
	retryAfterQueueFull = 1
	retryAfterDraining  = 2
)

// statusClientClosed reports a run stopped because its requester went
// away (the nginx 499 convention); streaming requests join the
// simulation to the request context, so a client disconnect cancels the
// run mid-flight rather than burning a worker on an unwatched result.
const statusClientClosed = 499

// ErrorEnvelope is the JSON envelope of every non-200 response. It is
// exported (with ErrorDetail) so typed clients — serve/client, the
// cluster peer-fill path, hfload — decode errors structurally instead
// of scraping bodies.
type ErrorEnvelope struct {
	Error ErrorDetail `json:"error"`
}

// ErrorDetail is the typed error payload inside an ErrorEnvelope (and
// inside streaming error events).
type ErrorDetail struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	// Diagnosis carries the structured machine snapshot for deadlock
	// detections (hfstream.DiagnosisJSON form).
	Diagnosis json.RawMessage `json:"diagnosis,omitempty"`
}

// outcome is one request's terminal state: either the cacheable metrics
// body or a rendered error envelope.
type outcome struct {
	status int
	body   []byte
	source string // "miss" (fresh run) or "hit" (leader found cache)
	ok     bool
	// retryAfter, when positive, emits a Retry-After header (seconds)
	// telling clients when the condition is worth re-probing.
	retryAfter int
}

// withRetryAfter attaches a Retry-After hint to an error outcome.
func (o *outcome) withRetryAfter(secs int) *outcome {
	o.retryAfter = secs
	return o
}

func errorOutcome(status int, code, msg string, diag json.RawMessage) *outcome {
	body, err := json.Marshal(ErrorEnvelope{Error: ErrorDetail{Code: code, Message: msg, Diagnosis: diag}})
	if err != nil {
		status, body = http.StatusInternalServerError,
			[]byte(`{"error":{"code":"internal","message":"error marshal failed"}}`)
	}
	return &outcome{status: status, body: append(body, '\n')}
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeOutcome(w, "", "", errorOutcome(http.StatusMethodNotAllowed, codeBadRequest, "POST required", nil))
		return
	}
	s.requests.Add(1)
	stream := r.URL.Query().Get("stream")
	if stream != "" && stream != "ndjson" {
		writeOutcome(w, "", "", errorOutcome(http.StatusBadRequest, codeBadRequest,
			fmt.Sprintf("unsupported stream mode %q (only ndjson)", stream), nil))
		return
	}
	var spec hfstream.Spec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeOutcome(w, "", "", errorOutcome(http.StatusBadRequest, codeBadRequest, "request body: "+err.Error(), nil))
		return
	}
	key, err := spec.Key()
	if err != nil {
		writeOutcome(w, "", "", errorOutcome(http.StatusBadRequest, codeBadRequest, err.Error(), nil))
		return
	}
	if stream == "ndjson" {
		s.streamRun(w, r, key, spec)
		return
	}

	// Fast path: previously served and still resident.
	if body, ok := s.cache.Get(key); ok {
		s.cacheHits.Add(1)
		writeOutcome(w, key, "hit", &outcome{status: http.StatusOK, body: body, ok: true})
		return
	}

	out, joined := s.flights.do(key, func() *outcome { return s.runOne(s.baseCtx, key, spec, nil) })
	src := out.source
	if joined {
		s.coalesced.Add(1)
		src = "coalesced"
	}
	writeOutcome(w, key, src, out)
}

// runOne is the flight leader's path: admission control, pool submit,
// and cache publication. It never runs concurrently for the same key.
// ctx bounds the job (baseCtx for blocking requests, the joined
// request context for streaming ones); hooks carries streaming
// progress delivery.
func (s *Server) runOne(ctx context.Context, key string, spec hfstream.Spec, hooks *streamHooks) *outcome {
	if s.draining.Load() {
		s.rejected.Add(1)
		return errorOutcome(http.StatusServiceUnavailable, codeDraining,
			"server is draining; retry against another instance", nil).withRetryAfter(retryAfterDraining)
	}
	// A flight for this key may have completed between the handler's
	// cache check and this one; the leader publishes to the cache before
	// the flight deregisters, so this re-check closes the gap.
	if body, ok := s.cache.Get(key); ok {
		s.cacheHits.Add(1)
		return &outcome{status: http.StatusOK, body: body, source: "hit", ok: true}
	}
	s.cacheMisses.Add(1)

	// Cluster cache tier: on a local miss, ask the key's owner shard for
	// the bytes before burning a worker on a simulation. Determinism makes
	// a peer's bytes indistinguishable from a local run, so a peer hit is
	// cached and served exactly like one. Fill is bounded (the peering
	// layer owns the timeout) and failure only means "simulate locally" —
	// a dead or slow peer can never fail the request.
	if s.peer != nil {
		if body, ok := s.peer.Fill(ctx, key); ok {
			s.peerHits.Add(1)
			s.cache.Put(key, body)
			return &outcome{status: http.StatusOK, body: body, source: "peer", ok: true}
		}
		s.peerMisses.Add(1)
	}

	ch := make(chan *outcome, 1)
	err := s.pool.TrySubmit(func() { ch <- runProtected(func() *outcome { return s.run(ctx, spec, hooks) }) })
	switch {
	case errors.Is(err, exp.ErrPoolFull):
		s.shed.Add(1)
		return errorOutcome(http.StatusTooManyRequests, codeQueueFull,
			fmt.Sprintf("queue full (%d jobs pending, depth %d); load shed rather than queued unboundedly",
				s.pool.Pending(), s.cfg.QueueDepth), nil).withRetryAfter(retryAfterQueueFull)
	case err != nil: // pool closed: drain won the race
		s.rejected.Add(1)
		return errorOutcome(http.StatusServiceUnavailable, codeDraining,
			"server is draining", nil).withRetryAfter(retryAfterDraining)
	}
	out := <-ch
	if out.ok {
		s.cache.Put(key, out.body)
		// Publish the fresh result to the key's owner shards (async,
		// best-effort) so any replica's future miss peer-hits instead of
		// re-simulating. The spec rides along so the receiving shard can
		// verify the key↔body binding before caching.
		if s.peer != nil {
			s.peer.Store(key, spec, out.body)
		}
	}
	return out
}

// execSpec runs one simulation and classifies its outcome. The response
// body is exactly what hfstream.WithMetrics writes, which is what makes
// direct-API and served results byte-comparable. A non-nil hooks wires
// the streaming progress callback into the run (progress delivery never
// changes the metrics bytes — the fast-forward invariant covers
// progress boundaries, and the differential battery asserts it).
func (s *Server) execSpec(ctx context.Context, spec hfstream.Spec, hooks *streamHooks) *outcome {
	s.runs.Add(1)
	if s.cfg.JobTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.JobTimeout)
		defer cancel()
	}
	opts := []hfstream.RunOpt{}
	var buf bytes.Buffer
	opts = append(opts, hfstream.WithMetrics(&buf))
	if hooks != nil && hooks.progress != nil {
		opts = append(opts, hfstream.WithProgress(hooks.progress))
		if hooks.every > 0 {
			opts = append(opts, hfstream.WithProgressInterval(hooks.every))
		}
	}
	res, err := spec.RunCtx(ctx, opts...)
	if err != nil {
		s.failures.Add(1)
		var dl *hfstream.DeadlockError
		var ce *hfstream.CanceledError
		var ve *hfstream.ValidationError
		switch {
		case errors.As(err, &dl):
			var diag json.RawMessage
			if dl.Diag != nil {
				diag, _ = hfstream.DiagnosisJSON(dl.Diag)
			}
			return errorOutcome(http.StatusUnprocessableEntity, codeDeadlock, err.Error(), diag)
		case errors.As(err, &ce):
			// Distinguish the two ways a run's context dies: an expired
			// per-job budget is a timeout; an upstream cancel (client
			// disconnect on a streaming request, or a drain deadline) is a
			// cancellation — the graceful-degradation path, not a fault.
			if ctx.Err() == context.Canceled {
				return errorOutcome(statusClientClosed, codeCanceled,
					"run canceled by its requester: "+err.Error(), nil)
			}
			return errorOutcome(http.StatusGatewayTimeout, codeTimeout,
				fmt.Sprintf("job exceeded its budget (%v): %v", s.cfg.JobTimeout, err), nil)
		case errors.As(err, &ve):
			return errorOutcome(http.StatusBadRequest, codeBadRequest, err.Error(), nil)
		default:
			return errorOutcome(http.StatusUnprocessableEntity, codeRunFailed, err.Error(), nil)
		}
	}
	s.simCycles.Add(res.Cycles)
	var instrs, stalls uint64
	for i := range res.Instructions {
		instrs += res.Instructions[i]
	}
	for i := range res.CoreCycles {
		stalls += res.CoreCycles[i] - res.IssueCycles[i]
	}
	s.simInstrs.Add(instrs)
	s.simStalls.Add(stalls)
	return &outcome{status: http.StatusOK, body: buf.Bytes(), source: "miss", ok: true}
}

// writeOutcome writes one terminal response. Cache provenance rides in
// headers, never the body, so hit/miss/coalesced bodies stay
// byte-identical.
func writeOutcome(w http.ResponseWriter, key, source string, out *outcome) {
	w.Header().Set("Content-Type", "application/json")
	if key != "" {
		w.Header().Set("X-Hfserve-Key", key)
	}
	if source != "" {
		w.Header().Set("X-Hfserve-Cache", source)
	}
	if out.retryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(out.retryAfter))
	}
	w.WriteHeader(out.status)
	w.Write(out.body)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status, code := "ok", http.StatusOK
	if s.draining.Load() {
		status, code = "draining", http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	fmt.Fprintf(w, "{\"status\":%q,\"in_flight\":%d}\n", status, s.inFlight())
}

func (s *Server) inFlight() int {
	n := s.pool.Pending() - s.pool.QueueLen()
	if n < 0 {
		n = 0
	}
	return n
}
