package port

import (
	"testing"

	"hfstream/internal/stats"
)

func TestTokenLifecycle(t *testing.T) {
	tok := NewToken(stats.L2)
	if tok.Done(100) {
		t.Error("fresh token done")
	}
	if tok.Loc != stats.L2 {
		t.Error("location lost")
	}
	tok.Complete(10, 42)
	if !tok.Done(10) || !tok.Done(11) {
		t.Error("completed token not done")
	}
	if tok.Done(9) {
		t.Error("token done before completion cycle")
	}
	if tok.Value != 42 {
		t.Error("value lost")
	}
}

func TestPendingSentinel(t *testing.T) {
	tok := NewToken(stats.Bus)
	if tok.DoneAt != Pending {
		t.Error("fresh token should be Pending")
	}
	if tok.Done(^uint64(0) - 1) {
		t.Error("pending token reported done near max cycle")
	}
}
