package port

import "hfstream/internal/stats"

// tokenSlabSize is the bump-allocation granularity of a TokenPool.
const tokenSlabSize = 256

// TokenPool is a per-run token arena: tokens are bump-allocated from
// slabs and recycled through a free list, replacing the per-operation
// heap allocation that dominated the simulator's profile. A nil pool is
// valid and falls back to plain allocation, so components can be built
// without one (unit tests, external callers).
//
// Ownership contract: exactly one party may Put a token, and only once
// it can never be read or written again — the core returns the tokens it
// tracks (pend/inflight) as it collects them, and the memory controller
// returns the doneless tokens of its hardware-generated work items when
// their OzQ slots retire. A completed token is never mutated by its
// producer, so recycling at the consumer is safe.
//
// Pools are not safe for concurrent use; each simulation run owns one.
type TokenPool struct {
	slab []Token
	free []*Token
}

// NewTokenPool returns an empty pool.
func NewTokenPool() *TokenPool {
	return &TokenPool{free: make([]*Token, 0, 64)}
}

// Get returns a pending token located in the given bucket, recycling a
// returned one when available. A nil pool allocates normally.
func (p *TokenPool) Get(loc stats.Bucket) *Token {
	if p == nil {
		return NewToken(loc)
	}
	if n := len(p.free); n > 0 {
		t := p.free[n-1]
		p.free = p.free[:n-1]
		*t = Token{DoneAt: Pending, Loc: loc}
		return t
	}
	if len(p.slab) == 0 {
		p.slab = make([]Token, tokenSlabSize)
	}
	t := &p.slab[0]
	p.slab = p.slab[1:]
	t.DoneAt = Pending
	t.Loc = loc
	return t
}

// Put returns a token to the pool. Nil pools and nil tokens are ignored.
func (p *TokenPool) Put(t *Token) {
	if p == nil || t == nil {
		return
	}
	p.free = append(p.free, t)
}
