// Package port defines the narrow interfaces between the core model and
// the memory/streaming subsystems, plus the completion token used to track
// in-flight operations and attribute stall cycles to machine regions.
package port

import (
	"math"

	"hfstream/internal/stats"
)

// Pending is the DoneAt value of a token that has not completed.
const Pending = math.MaxUint64

// Token tracks one in-flight memory or streaming operation. The owner
// (memory controller, synchronization array, ...) sets Value and DoneAt on
// completion and keeps Loc updated with the machine region the operation is
// currently waiting in, so a core stalled on the token can attribute the
// cycle correctly.
type Token struct {
	// DoneAt is the cycle at which the result became architecturally
	// available, or Pending.
	DoneAt uint64
	// Value is the load/consume result (undefined for stores/fences).
	Value uint64
	// Loc is the breakdown bucket describing where the operation currently
	// waits.
	Loc stats.Bucket
	// Due, when non-nil, points at the tracking core's earliest-completion
	// cache; Complete lowers it so the core can skip its per-cycle token
	// scans until something is actually due.
	Due *uint64
}

// NewToken returns a pending token located in the given bucket.
func NewToken(loc stats.Bucket) *Token {
	return &Token{DoneAt: Pending, Loc: loc}
}

// Done reports whether the token completed at or before cycle.
func (t *Token) Done(cycle uint64) bool { return t.DoneAt != Pending && t.DoneAt <= cycle }

// Complete marks the token done at the given cycle with the given value,
// notifying the tracking core's earliest-completion cache when one is
// attached.
func (t *Token) Complete(cycle, value uint64) {
	t.DoneAt = cycle
	t.Value = value
	if t.Due != nil && cycle < *t.Due {
		*t.Due = cycle
	}
}

// Mem is the load/store/fence interface offered by a core's memory
// subsystem (L1 + L2 controller + shared fabric).
type Mem interface {
	// CanAccept reports whether a new memory operation can be accepted this
	// cycle (i.e. the L2 controller's OzQ has a free slot).
	CanAccept() bool
	// Load starts a load of the 8-byte word at addr.
	Load(cycle, addr uint64) *Token
	// Store starts a store of val to the 8-byte word at addr.
	Store(cycle, addr, val uint64) *Token
	// Fence starts a full memory barrier; it completes when all prior
	// operations from this core have completed, and no later memory
	// operation may access the L2 before it completes.
	Fence(cycle uint64) *Token
}

// Stream is the produce/consume interface. Implementations differ per
// design point: SYNCOPTI routes through the L2 controller, HEAVYWT through
// the synchronization array. ok=false means the operation could not even
// be accepted this cycle (e.g. the HEAVYWT pipeline blocks on a full
// queue); the core must stall and retry.
type Stream interface {
	Produce(cycle uint64, q int, v uint64) (tok *Token, ok bool)
	Consume(cycle uint64, q int) (tok *Token, ok bool)
}
