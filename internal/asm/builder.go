// Package asm provides a programmatic builder and a text assembler for
// isa.Program values. Workload kernels and the DSWP code generator use the
// builder; tests and examples use the text form.
package asm

import (
	"fmt"

	"hfstream/internal/isa"
)

// Builder assembles a program instruction by instruction with symbolic
// labels for branch targets.
type Builder struct {
	name    string
	instrs  []isa.Instr
	labels  map[string]int
	fixups  []fixup
	errs    []error
	nextTmp int
	tagComm bool
}

type fixup struct {
	index int
	label string
}

// NewBuilder returns an empty builder for a program with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{name: name, labels: make(map[string]int)}
}

// Len returns the number of instructions emitted so far.
func (b *Builder) Len() int { return len(b.instrs) }

// Label binds name to the next instruction's index.
func (b *Builder) Label(name string) {
	if _, dup := b.labels[name]; dup {
		b.errs = append(b.errs, fmt.Errorf("asm: duplicate label %q", name))
		return
	}
	b.labels[name] = len(b.instrs)
}

// FreshLabel returns a unique label name with the given prefix.
func (b *Builder) FreshLabel(prefix string) string {
	b.nextTmp++
	return fmt.Sprintf(".%s%d", prefix, b.nextTmp)
}

// Emit appends a raw instruction, applying the current comm-overhead tag.
func (b *Builder) Emit(in isa.Instr) {
	if b.tagComm || in.Op == isa.Produce || in.Op == isa.Consume || in.Op == isa.Fence {
		in.Comm = true
	}
	b.instrs = append(b.instrs, in)
}

// BeginComm starts tagging emitted instructions as communication overhead
// (software-queue synchronization, data transfer and stream-address
// update sequences). Produce, consume and fence are always tagged.
func (b *Builder) BeginComm() { b.tagComm = true }

// EndComm stops the communication-overhead tagging started by BeginComm.
func (b *Builder) EndComm() { b.tagComm = false }

func (b *Builder) branch(op isa.Op, ra isa.Reg, label string) {
	b.fixups = append(b.fixups, fixup{index: len(b.instrs), label: label})
	b.instrs = append(b.instrs, isa.Instr{Op: op, Ra: ra})
}

// Nop emits a nop.
func (b *Builder) Nop() { b.Emit(isa.Instr{Op: isa.Nop}) }

// Halt emits a halt.
func (b *Builder) Halt() { b.Emit(isa.Instr{Op: isa.Halt}) }

// MovI emits rd = imm.
func (b *Builder) MovI(rd isa.Reg, imm int64) {
	b.Emit(isa.Instr{Op: isa.MovI, Rd: rd, Imm: imm})
}

// Mov emits rd = ra.
func (b *Builder) Mov(rd, ra isa.Reg) { b.Emit(isa.Instr{Op: isa.Mov, Rd: rd, Ra: ra}) }

// Add emits rd = ra + rb.
func (b *Builder) Add(rd, ra, rb isa.Reg) {
	b.Emit(isa.Instr{Op: isa.Add, Rd: rd, Ra: ra, Rb: rb})
}

// AddI emits rd = ra + imm.
func (b *Builder) AddI(rd, ra isa.Reg, imm int64) {
	b.Emit(isa.Instr{Op: isa.AddI, Rd: rd, Ra: ra, Imm: imm})
}

// Sub emits rd = ra - rb.
func (b *Builder) Sub(rd, ra, rb isa.Reg) {
	b.Emit(isa.Instr{Op: isa.Sub, Rd: rd, Ra: ra, Rb: rb})
}

// Mul emits rd = ra * rb.
func (b *Builder) Mul(rd, ra, rb isa.Reg) {
	b.Emit(isa.Instr{Op: isa.Mul, Rd: rd, Ra: ra, Rb: rb})
}

// Div emits rd = ra / rb.
func (b *Builder) Div(rd, ra, rb isa.Reg) {
	b.Emit(isa.Instr{Op: isa.Div, Rd: rd, Ra: ra, Rb: rb})
}

// And emits rd = ra & rb.
func (b *Builder) And(rd, ra, rb isa.Reg) {
	b.Emit(isa.Instr{Op: isa.And, Rd: rd, Ra: ra, Rb: rb})
}

// AndI emits rd = ra & imm.
func (b *Builder) AndI(rd, ra isa.Reg, imm int64) {
	b.Emit(isa.Instr{Op: isa.AndI, Rd: rd, Ra: ra, Imm: imm})
}

// Or emits rd = ra | rb.
func (b *Builder) Or(rd, ra, rb isa.Reg) {
	b.Emit(isa.Instr{Op: isa.Or, Rd: rd, Ra: ra, Rb: rb})
}

// Xor emits rd = ra ^ rb.
func (b *Builder) Xor(rd, ra, rb isa.Reg) {
	b.Emit(isa.Instr{Op: isa.Xor, Rd: rd, Ra: ra, Rb: rb})
}

// ShlI emits rd = ra << imm.
func (b *Builder) ShlI(rd, ra isa.Reg, imm int64) {
	b.Emit(isa.Instr{Op: isa.ShlI, Rd: rd, Ra: ra, Imm: imm})
}

// ShrI emits rd = ra >> imm.
func (b *Builder) ShrI(rd, ra isa.Reg, imm int64) {
	b.Emit(isa.Instr{Op: isa.ShrI, Rd: rd, Ra: ra, Imm: imm})
}

// CmpEQ emits rd = (ra == rb).
func (b *Builder) CmpEQ(rd, ra, rb isa.Reg) {
	b.Emit(isa.Instr{Op: isa.CmpEQ, Rd: rd, Ra: ra, Rb: rb})
}

// CmpNE emits rd = (ra != rb).
func (b *Builder) CmpNE(rd, ra, rb isa.Reg) {
	b.Emit(isa.Instr{Op: isa.CmpNE, Rd: rd, Ra: ra, Rb: rb})
}

// CmpLT emits rd = (ra < rb), signed.
func (b *Builder) CmpLT(rd, ra, rb isa.Reg) {
	b.Emit(isa.Instr{Op: isa.CmpLT, Rd: rd, Ra: ra, Rb: rb})
}

// FAdd emits rd = ra + rb (float64).
func (b *Builder) FAdd(rd, ra, rb isa.Reg) {
	b.Emit(isa.Instr{Op: isa.FAdd, Rd: rd, Ra: ra, Rb: rb})
}

// FSub emits rd = ra - rb (float64).
func (b *Builder) FSub(rd, ra, rb isa.Reg) {
	b.Emit(isa.Instr{Op: isa.FSub, Rd: rd, Ra: ra, Rb: rb})
}

// FMul emits rd = ra * rb (float64).
func (b *Builder) FMul(rd, ra, rb isa.Reg) {
	b.Emit(isa.Instr{Op: isa.FMul, Rd: rd, Ra: ra, Rb: rb})
}

// FDiv emits rd = ra / rb (float64).
func (b *Builder) FDiv(rd, ra, rb isa.Reg) {
	b.Emit(isa.Instr{Op: isa.FDiv, Rd: rd, Ra: ra, Rb: rb})
}

// I2F emits rd = float64(int64(ra)).
func (b *Builder) I2F(rd, ra isa.Reg) { b.Emit(isa.Instr{Op: isa.I2F, Rd: rd, Ra: ra}) }

// F2I emits rd = int64(float64(ra)).
func (b *Builder) F2I(rd, ra isa.Reg) { b.Emit(isa.Instr{Op: isa.F2I, Rd: rd, Ra: ra}) }

// Ld emits rd = mem[ra+imm].
func (b *Builder) Ld(rd, ra isa.Reg, imm int64) {
	b.Emit(isa.Instr{Op: isa.Ld, Rd: rd, Ra: ra, Imm: imm})
}

// St emits mem[ra+imm] = rb.
func (b *Builder) St(ra isa.Reg, imm int64, rb isa.Reg) {
	b.Emit(isa.Instr{Op: isa.St, Ra: ra, Imm: imm, Rb: rb})
}

// B emits an unconditional branch to label.
func (b *Builder) B(label string) { b.branch(isa.B, 0, label) }

// Beqz emits a branch to label if ra == 0.
func (b *Builder) Beqz(ra isa.Reg, label string) { b.branch(isa.Beqz, ra, label) }

// Bnez emits a branch to label if ra != 0.
func (b *Builder) Bnez(ra isa.Reg, label string) { b.branch(isa.Bnez, ra, label) }

// Produce emits queue q <- ra.
func (b *Builder) Produce(q int, ra isa.Reg) {
	b.Emit(isa.Instr{Op: isa.Produce, Q: q, Ra: ra})
}

// Consume emits rd <- queue q.
func (b *Builder) Consume(rd isa.Reg, q int) {
	b.Emit(isa.Instr{Op: isa.Consume, Rd: rd, Q: q})
}

// Fence emits a full memory barrier.
func (b *Builder) Fence() { b.Emit(isa.Instr{Op: isa.Fence}) }

// Program resolves labels and returns the assembled program.
func (b *Builder) Program() (*isa.Program, error) {
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	for _, f := range b.fixups {
		target, ok := b.labels[f.label]
		if !ok {
			return nil, fmt.Errorf("asm: undefined label %q in %s", f.label, b.name)
		}
		b.instrs[f.index].Imm = int64(target)
	}
	p := &isa.Program{Name: b.name, Instrs: append([]isa.Instr(nil), b.instrs...)}
	return p, nil
}

// MustProgram is Program but panics on error; for use in tests and
// statically-known-correct generators.
func (b *Builder) MustProgram() *isa.Program {
	p, err := b.Program()
	if err != nil {
		panic(err)
	}
	return p
}
