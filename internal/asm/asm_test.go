package asm

import (
	"strings"
	"testing"

	"hfstream/internal/isa"
)

func TestBuilderBranches(t *testing.T) {
	b := NewBuilder("t")
	b.MovI(1, 3)
	b.Label("loop")
	b.AddI(1, 1, -1)
	b.Bnez(1, "loop")
	b.Halt()
	p, err := b.Program()
	if err != nil {
		t.Fatal(err)
	}
	if p.Instrs[2].Imm != 1 {
		t.Errorf("branch target = %d, want 1", p.Instrs[2].Imm)
	}
}

func TestBuilderErrors(t *testing.T) {
	b := NewBuilder("dup")
	b.Label("x")
	b.Label("x")
	if _, err := b.Program(); err == nil {
		t.Error("duplicate label accepted")
	}
	b2 := NewBuilder("undef")
	b2.B("nowhere")
	if _, err := b2.Program(); err == nil {
		t.Error("undefined label accepted")
	}
}

func TestBuilderCommTagging(t *testing.T) {
	b := NewBuilder("comm")
	b.Add(1, 2, 3)
	b.BeginComm()
	b.Add(4, 5, 6)
	b.EndComm()
	b.Produce(0, 1)
	b.Fence()
	b.Consume(2, 0)
	b.Add(7, 8, 9)
	p := b.MustProgram()
	want := []bool{false, true, true, true, true, false}
	for i, w := range want {
		if p.Instrs[i].Comm != w {
			t.Errorf("instr %d Comm = %v, want %v", i, p.Instrs[i].Comm, w)
		}
	}
}

func TestFreshLabelUnique(t *testing.T) {
	b := NewBuilder("t")
	a, c := b.FreshLabel("spin"), b.FreshLabel("spin")
	if a == c {
		t.Errorf("FreshLabel returned duplicate %q", a)
	}
}

const sample = `
; a little loop
	movi r1, 10
	movi r2, 0
loop:
	add  r2, r2, r1
	addi r1, r1, -1
	bnez r1, loop
	movi r3, 0x1000
	st   [r3+8], r2
	ld   r4, [r3+8]
	produce q2, r4
	consume r5, q2
	fence
	halt
`

func TestParseSample(t *testing.T) {
	p, err := Parse("sample", sample)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(p.Instrs); got != 12 {
		t.Fatalf("got %d instrs, want 12", got)
	}
	if p.Instrs[4].Op != isa.Bnez || p.Instrs[4].Imm != 2 {
		t.Errorf("branch wrong: %v", p.Instrs[4])
	}
	if p.Instrs[5].Imm != 0x1000 {
		t.Errorf("hex immediate wrong: %v", p.Instrs[5])
	}
	if p.Instrs[8].Q != 2 || p.Instrs[9].Q != 2 {
		t.Errorf("queue numbers wrong")
	}
}

// TestParseDisassembleRoundTrip checks that disassembly output (with
// numeric branch targets rewritten as labels) re-parses to the same
// instructions.
func TestParseDisassembleRoundTrip(t *testing.T) {
	p := MustParse("rt", sample)
	// Rebuild source from instruction strings, emitting labels for
	// branch targets.
	targets := map[int]bool{}
	for _, in := range p.Instrs {
		if in.Op.IsBranch() && in.Op != isa.Halt {
			targets[int(in.Imm)] = true
		}
	}
	var sb strings.Builder
	for i, in := range p.Instrs {
		if targets[i] {
			sb.WriteString("L" + itoa(i) + ":\n")
		}
		s := in.String()
		if in.Op.IsBranch() && in.Op != isa.Halt {
			// replace the numeric target with its label
			idx := strings.LastIndexByte(s, ' ')
			s = s[:idx+1] + "L" + itoa(int(in.Imm))
		}
		sb.WriteString("\t" + s + "\n")
	}
	p2, err := Parse("rt2", sb.String())
	if err != nil {
		t.Fatalf("re-parse failed: %v\nsource:\n%s", err, sb.String())
	}
	if len(p2.Instrs) != len(p.Instrs) {
		t.Fatalf("length mismatch %d vs %d", len(p2.Instrs), len(p.Instrs))
	}
	for i := range p.Instrs {
		a, b := p.Instrs[i], p2.Instrs[i]
		a.Comm, b.Comm = false, false
		if a != b {
			t.Errorf("instr %d: %v != %v", i, a, b)
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	s := ""
	for n > 0 {
		s = string(rune('0'+n%10)) + s
		n /= 10
	}
	return s
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"frobnicate r1, r2",
		"add r1, r2",
		"ld r1, r2",
		"ld r1, [r99+0]",
		"produce x0, r1",
		"consume r1, r2",
		"beqz r1",
		"movi r1, notanumber",
		"st [r1+z], r2",
	}
	for _, src := range bad {
		if _, err := Parse("bad", src); err == nil {
			t.Errorf("accepted bad source %q", src)
		}
	}
}
