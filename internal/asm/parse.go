package asm

import (
	"fmt"
	"strconv"
	"strings"

	"hfstream/internal/isa"
)

// Parse assembles program text. The syntax mirrors the disassembler output
// with symbolic labels:
//
//	; comment
//	loop:
//	    ld   r2, [r1+0]
//	    addi r1, r1, 8
//	    produce q0, r2
//	    bnez r2, loop
//	    halt
//
// Operand order follows isa.Instr.String: destination first, branch target
// last (a label name), memory operands written [reg+disp].
func Parse(name, text string) (*isa.Program, error) {
	b := NewBuilder(name)
	for lineNo, raw := range strings.Split(text, "\n") {
		line := raw
		if i := strings.IndexByte(line, ';'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if strings.HasSuffix(line, ":") {
			b.Label(strings.TrimSuffix(line, ":"))
			continue
		}
		if err := parseInstr(b, line); err != nil {
			return nil, fmt.Errorf("asm: line %d: %v", lineNo+1, err)
		}
	}
	return b.Program()
}

// MustParse is Parse but panics on error.
func MustParse(name, text string) *isa.Program {
	p, err := Parse(name, text)
	if err != nil {
		panic(err)
	}
	return p
}

func parseInstr(b *Builder, line string) error {
	mnemonic := line
	rest := ""
	if i := strings.IndexAny(line, " \t"); i >= 0 {
		mnemonic, rest = line[:i], strings.TrimSpace(line[i+1:])
	}
	ops := splitOperands(rest)

	reg := func(i int) (isa.Reg, error) {
		if i >= len(ops) {
			return 0, fmt.Errorf("%s: missing operand %d", mnemonic, i)
		}
		return parseReg(ops[i])
	}
	imm := func(i int) (int64, error) {
		if i >= len(ops) {
			return 0, fmt.Errorf("%s: missing operand %d", mnemonic, i)
		}
		return strconv.ParseInt(ops[i], 0, 64)
	}

	switch mnemonic {
	case "nop":
		b.Nop()
	case "halt":
		b.Halt()
	case "fence":
		b.Fence()
	case "movi":
		rd, err := reg(0)
		if err != nil {
			return err
		}
		v, err := imm(1)
		if err != nil {
			return err
		}
		b.MovI(rd, v)
	case "mov", "i2f", "f2i":
		rd, err := reg(0)
		if err != nil {
			return err
		}
		ra, err := reg(1)
		if err != nil {
			return err
		}
		switch mnemonic {
		case "mov":
			b.Mov(rd, ra)
		case "i2f":
			b.I2F(rd, ra)
		case "f2i":
			b.F2I(rd, ra)
		}
	case "addi", "andi", "shli", "shri":
		rd, err := reg(0)
		if err != nil {
			return err
		}
		ra, err := reg(1)
		if err != nil {
			return err
		}
		v, err := imm(2)
		if err != nil {
			return err
		}
		switch mnemonic {
		case "addi":
			b.AddI(rd, ra, v)
		case "andi":
			b.AndI(rd, ra, v)
		case "shli":
			b.ShlI(rd, ra, v)
		case "shri":
			b.ShrI(rd, ra, v)
		}
	case "add", "sub", "mul", "div", "and", "or", "xor",
		"cmpeq", "cmpne", "cmplt", "fadd", "fsub", "fmul", "fdiv":
		rd, err := reg(0)
		if err != nil {
			return err
		}
		ra, err := reg(1)
		if err != nil {
			return err
		}
		rb, err := reg(2)
		if err != nil {
			return err
		}
		threeReg(b, mnemonic, rd, ra, rb)
	case "ld":
		rd, err := reg(0)
		if err != nil {
			return err
		}
		ra, disp, err := parseMem(ops, 1)
		if err != nil {
			return err
		}
		b.Ld(rd, ra, disp)
	case "st":
		ra, disp, err := parseMem(ops, 0)
		if err != nil {
			return err
		}
		rb, err := reg(1)
		if err != nil {
			return err
		}
		b.St(ra, disp, rb)
	case "b":
		if len(ops) < 1 {
			return fmt.Errorf("b: missing target")
		}
		b.B(ops[0])
	case "beqz", "bnez":
		ra, err := reg(0)
		if err != nil {
			return err
		}
		if len(ops) < 2 {
			return fmt.Errorf("%s: missing target", mnemonic)
		}
		if mnemonic == "beqz" {
			b.Beqz(ra, ops[1])
		} else {
			b.Bnez(ra, ops[1])
		}
	case "produce":
		q, err := parseQueue(ops, 0)
		if err != nil {
			return err
		}
		ra, err := reg(1)
		if err != nil {
			return err
		}
		b.Produce(q, ra)
	case "consume":
		rd, err := reg(0)
		if err != nil {
			return err
		}
		q, err := parseQueue(ops, 1)
		if err != nil {
			return err
		}
		b.Consume(rd, q)
	default:
		return fmt.Errorf("unknown mnemonic %q", mnemonic)
	}
	return nil
}

func threeReg(b *Builder, mnemonic string, rd, ra, rb isa.Reg) {
	switch mnemonic {
	case "add":
		b.Add(rd, ra, rb)
	case "sub":
		b.Sub(rd, ra, rb)
	case "mul":
		b.Mul(rd, ra, rb)
	case "div":
		b.Div(rd, ra, rb)
	case "and":
		b.And(rd, ra, rb)
	case "or":
		b.Or(rd, ra, rb)
	case "xor":
		b.Xor(rd, ra, rb)
	case "cmpeq":
		b.CmpEQ(rd, ra, rb)
	case "cmpne":
		b.CmpNE(rd, ra, rb)
	case "cmplt":
		b.CmpLT(rd, ra, rb)
	case "fadd":
		b.FAdd(rd, ra, rb)
	case "fsub":
		b.FSub(rd, ra, rb)
	case "fmul":
		b.FMul(rd, ra, rb)
	case "fdiv":
		b.FDiv(rd, ra, rb)
	}
}

func splitOperands(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p != "" {
			out = append(out, p)
		}
	}
	return out
}

func parseReg(s string) (isa.Reg, error) {
	if !strings.HasPrefix(s, "r") {
		return 0, fmt.Errorf("bad register %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n >= isa.NumRegs {
		return 0, fmt.Errorf("bad register %q", s)
	}
	return isa.Reg(n), nil
}

func parseMem(ops []string, i int) (isa.Reg, int64, error) {
	if i >= len(ops) {
		return 0, 0, fmt.Errorf("missing memory operand")
	}
	s := ops[i]
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return 0, 0, fmt.Errorf("bad memory operand %q", s)
	}
	inner := s[1 : len(s)-1]
	base := inner
	disp := int64(0)
	if j := strings.LastIndexAny(inner, "+-"); j > 0 {
		var err error
		disp, err = strconv.ParseInt(inner[j:], 0, 64)
		if err != nil {
			return 0, 0, fmt.Errorf("bad displacement in %q", s)
		}
		base = inner[:j]
	}
	ra, err := parseReg(strings.TrimSpace(base))
	if err != nil {
		return 0, 0, err
	}
	return ra, disp, nil
}

func parseQueue(ops []string, i int) (int, error) {
	if i >= len(ops) {
		return 0, fmt.Errorf("missing queue operand")
	}
	s := ops[i]
	if !strings.HasPrefix(s, "q") {
		return 0, fmt.Errorf("bad queue %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad queue %q", s)
	}
	return n, nil
}
