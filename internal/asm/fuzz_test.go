package asm

import (
	"testing"

	"hfstream/internal/isa"
)

// FuzzParse checks the text assembler never panics and that every
// program it accepts passes validation and disassembles to non-empty
// text. Run with `go test -fuzz=FuzzParse ./internal/asm` for a real
// fuzzing session; the seeds below run as ordinary tests.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"halt",
		"movi r1, 10\nloop:\naddi r1, r1, -1\nbnez r1, loop\nhalt",
		"ld r1, [r2+8]\nst [r2+16], r1",
		"produce q0, r1\nconsume r2, q0",
		"; comment only",
		"label:",
		"label:\nb label",
		"movi r63, 9223372036854775807",
		"add r1, r2",       // malformed
		"bogus r1, r2, r3", // unknown op
		"beqz r1, nowhere", // undefined label
		"ld r1, [r99+0]",   // bad register
		"movi r1, 0x10\n\n\nhalt",
		"st [r1-8], r2",
		"produce q63, r0\nfence\nhalt",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Parse("fuzz", src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		if err := p.Validate(64); err != nil {
			// Queue numbers above 63 are accepted by the parser and
			// rejected by validation; that's the documented split.
			for _, in := range p.Instrs {
				if (in.Op == isa.Produce || in.Op == isa.Consume) && in.Q >= 64 {
					return
				}
			}
			t.Fatalf("accepted program fails validation: %v", err)
		}
		if len(p.Instrs) > 0 && p.String() == "" {
			t.Fatal("empty disassembly")
		}
	})
}
