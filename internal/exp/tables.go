package exp

import (
	"fmt"

	"hfstream/internal/design"
	"hfstream/internal/memsys"
	"hfstream/internal/stats"
	"hfstream/internal/workloads"
)

// Table1 reproduces the paper's benchmark loop information table.
func Table1() string {
	t := stats.NewTable("Table 1: Benchmark Loop Information",
		"Benchmark", "Suite", "Function", "% Exec. Time", "Iterations (sim)")
	for _, b := range workloads.All() {
		t.AddRowf(b.Name, b.Suite, b.Function, fmt.Sprintf("%d%%", b.ExecPct), b.Iterations)
	}
	return t.String()
}

// Table2 reproduces the baseline simulator configuration table.
func Table2() string {
	p := memsys.DefaultParams(design.ExistingConfig().Layout())
	c := design.ExistingConfig()
	t := stats.NewTable("Table 2: Baseline Simulator", "Component", "Configuration")
	t.AddRow("Core", "6-issue; 6 ALU, 4 Memory, 2 FP, 3 Branch")
	t.AddRow("L1D Cache", fmt.Sprintf("%d cycle, %d KB, %d-way, %dB lines, write-through",
		p.L1.Latency, p.L1.SizeBytes>>10, p.L1.Ways, p.L1.LineBytes))
	t.AddRow("L2 Cache", fmt.Sprintf("%d cycles, %d KB, %d-way, %dB lines, write-back",
		p.L2.Latency, p.L2.SizeBytes>>10, p.L2.Ways, p.L2.LineBytes))
	t.AddRow("Max Outstanding Loads", "16")
	t.AddRow("OzQ (L2 transaction queue)", fmt.Sprintf("%d entries, %d ports", p.OzQSize, p.L2Ports))
	t.AddRow("Shared L3 Cache", fmt.Sprintf("%d cycles, %.1f MB, %d-way, %dB lines, write-back",
		p.L3.Latency, float64(p.L3.SizeBytes)/(1<<20), p.L3.Ways, p.L3.LineBytes))
	t.AddRow("Main Memory latency", fmt.Sprintf("%d cycles", p.MemLat))
	t.AddRow("Coherence", "Snoop-based, write-invalidate protocol")
	t.AddRow("L3 Bus", fmt.Sprintf("%d-byte, %d-cycle, 3-stage pipelined, split-transaction, round-robin arbitration",
		p.Bus.WidthBytes, p.Bus.CPB))
	t.AddRow("Queues", fmt.Sprintf("%d queues, depth %d, QLU %d", c.NumQueues, c.QueueDepth, c.QLU))
	return t.String()
}
