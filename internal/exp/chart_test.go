package exp

import (
	"strings"
	"testing"

	"hfstream/internal/stats"
)

func sampleFigure() *BreakdownFigure {
	mk := func(design string, total float64, parts [stats.NumBuckets]float64) BreakdownBar {
		return BreakdownBar{Design: design, Total: total, Parts: parts}
	}
	return &BreakdownFigure{
		Title: "test figure",
		Rows: []BreakdownRow{
			{Benchmark: "alpha", Bars: []BreakdownBar{
				mk("BASE", 1.0, [stats.NumBuckets]float64{stats.PreL2: 0.5, stats.Mem: 0.5}),
				mk("SLOW", 2.0, [stats.NumBuckets]float64{stats.PreL2: 0.5, stats.Bus: 1.0, stats.Mem: 0.5}),
			}},
		},
		Geomean: []BreakdownBar{
			{Design: "BASE", Total: 1.0},
			{Design: "SLOW", Total: 2.0},
		},
	}
}

func TestChartRendering(t *testing.T) {
	c := sampleFigure().Chart()
	for _, want := range []string{"test figure", "legend:", "alpha", "BASE", "SLOW", "geomean"} {
		if !strings.Contains(c, want) {
			t.Errorf("chart missing %q:\n%s", want, c)
		}
	}
	// The 2.0x bar must be about twice as long as the 1.0x bar.
	var baseLen, slowLen int
	for _, line := range strings.Split(c, "\n") {
		if strings.Contains(line, "BASE") && strings.Contains(line, "|") {
			baseLen = barLen(line)
		}
		if strings.Contains(line, "SLOW") && strings.Contains(line, "|") {
			slowLen = barLen(line)
		}
		if baseLen > 0 && slowLen > 0 {
			break
		}
	}
	if baseLen == 0 || slowLen < baseLen*2-2 || slowLen > baseLen*2+2 {
		t.Errorf("bar lengths base=%d slow=%d, want 2x relation", baseLen, slowLen)
	}
	// The SLOW bar must contain BUS glyphs ('%').
	if !strings.Contains(c, "%%%") {
		t.Errorf("BUS segment missing:\n%s", c)
	}
}

func barLen(line string) int {
	i := strings.IndexByte(line, '|')
	seg := line[i+1:]
	j := strings.IndexByte(seg, ' ')
	if j < 0 {
		j = len(seg)
	}
	return j
}

func TestRenderBarRounding(t *testing.T) {
	bar := BreakdownBar{Total: 1.0, Parts: [stats.NumBuckets]float64{
		stats.PreL2: 0.333, stats.L2: 0.333, stats.Bus: 0.334,
	}}
	s := renderBar(bar)
	if len(s) != chartScale {
		t.Errorf("bar length %d, want %d", len(s), chartScale)
	}
	counts := map[byte]int{}
	for i := 0; i < len(s); i++ {
		counts[s[i]]++
	}
	for _, g := range []byte{'#', '=', '%'} {
		if counts[g] < 9 || counts[g] > 11 {
			t.Errorf("glyph %c count %d, want ~10", g, counts[g])
		}
	}
}

func TestRenderBarZero(t *testing.T) {
	if s := renderBar(BreakdownBar{}); s != "" {
		t.Errorf("zero bar rendered %q", s)
	}
}
