package exp

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"hfstream/internal/design"
	"hfstream/internal/sim"
	"hfstream/internal/workloads"
)

// TestRunnerDeterministicOrder: a concurrent run must return the same
// results, in the same slots, as the serial run of the same job list.
func TestRunnerDeterministicOrder(t *testing.T) {
	var jobs []Job
	for _, bench := range []string{"wc", "fir"} {
		for _, cfg := range []design.Config{design.HeavyWTConfig(), design.SyncOptiConfig()} {
			jobs = append(jobs, Job{Bench: bench, Config: cfg})
		}
	}
	serial := (&Runner{Workers: 1}).Run(context.Background(), jobs)
	parallel := (&Runner{Workers: 4}).Run(context.Background(), jobs)
	if err := FirstErr(serial); err != nil {
		t.Fatal(err)
	}
	if err := FirstErr(parallel); err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		if serial[i].Job.Name() != jobs[i].Name() || parallel[i].Job.Name() != jobs[i].Name() {
			t.Errorf("slot %d: job order broken: serial=%s parallel=%s want %s",
				i, serial[i].Job.Name(), parallel[i].Job.Name(), jobs[i].Name())
		}
		if serial[i].Res.Cycles != parallel[i].Res.Cycles {
			t.Errorf("%s: serial %d cycles, parallel %d cycles",
				jobs[i].Name(), serial[i].Res.Cycles, parallel[i].Res.Cycles)
		}
	}
}

// TestRunnerCancellationMidFlight: canceling the context after the first
// completion fails the remaining jobs with ctx.Err() instead of hanging.
func TestRunnerCancellationMidFlight(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var once sync.Once
	r := &Runner{
		Workers: 2,
		run: func(jctx context.Context, j Job) (*sim.Result, error) {
			if j.Bench == "first" {
				once.Do(cancel) // cancel as soon as the first job runs
				return &sim.Result{Cycles: 1}, nil
			}
			<-jctx.Done() // the rest park until canceled
			return nil, jctx.Err()
		},
	}
	jobs := []Job{{Bench: "first"}, {Bench: "second"}, {Bench: "third"}, {Bench: "fourth"}}
	finished := make(chan []JobResult, 1)
	go func() { finished <- r.Run(ctx, jobs) }()
	var results []JobResult
	select {
	case results = <-finished:
	case <-time.After(10 * time.Second):
		t.Fatal("runner did not return after cancellation")
	}
	if results[0].Err != nil {
		t.Errorf("first job failed: %v", results[0].Err)
	}
	for i := 1; i < len(results); i++ {
		if !errors.Is(results[i].Err, context.Canceled) {
			t.Errorf("job %d: err = %v, want context.Canceled", i, results[i].Err)
		}
	}
}

// TestRunnerTimeoutBoundsDeadlockedJob: a per-job timeout cancels a job
// that never finishes on its own.
func TestRunnerTimeoutBoundsDeadlockedJob(t *testing.T) {
	r := &Runner{
		Workers: 2,
		Timeout: 20 * time.Millisecond,
		run: func(jctx context.Context, j Job) (*sim.Result, error) {
			if j.Bench == "hang" {
				<-jctx.Done()
				return nil, &sim.CanceledError{Cycle: 42}
			}
			return &sim.Result{Cycles: 7}, nil
		},
	}
	results := r.Run(context.Background(), []Job{{Bench: "hang"}, {Bench: "ok"}})
	var ce *sim.CanceledError
	if !errors.As(results[0].Err, &ce) {
		t.Errorf("hung job err = %v, want CanceledError", results[0].Err)
	}
	if results[1].Err != nil || results[1].Res.Cycles != 7 {
		t.Errorf("sibling perturbed: %+v", results[1])
	}
}

// TestRunnerJobFailureDoesNotPoisonSiblings: one invalid design fails its
// own slot only, and FirstErr surfaces it.
func TestRunnerJobFailureDoesNotPoisonSiblings(t *testing.T) {
	bad := design.MemOptiConfig() // flagless software-queue layout: rejected
	bad.QueueDepth = 64
	bad.QLU = 16
	jobs := []Job{
		{Bench: "wc", Config: design.HeavyWTConfig()},
		{Bench: "wc", Config: bad},
		{Bench: "wc", Single: true},
	}
	results := (&Runner{Workers: 3}).Run(context.Background(), jobs)
	if results[0].Err != nil || results[2].Err != nil {
		t.Errorf("healthy jobs failed: %v / %v", results[0].Err, results[2].Err)
	}
	if results[1].Err == nil {
		t.Error("invalid design accepted")
	}
	if FirstErr(results) != results[1].Err {
		t.Errorf("FirstErr = %v, want the bad job's error", FirstErr(results))
	}
}

// TestRunnerUnknownBenchmarkFails: a bogus benchmark name is an error, not
// a panic.
func TestRunnerUnknownBenchmarkFails(t *testing.T) {
	results := (&Runner{Workers: 1}).Run(context.Background(),
		[]Job{{Bench: "no-such-bench", Config: design.HeavyWTConfig()}})
	if results[0].Err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

// TestOracleRunsOncePerBenchmark: the memoized cache must run the
// functional interpreter exactly once per benchmark no matter how many
// simulations verify against it.
func TestOracleRunsOncePerBenchmark(t *testing.T) {
	resetOracleCache()
	defer resetOracleCache()
	b, err := workloads.ByName("wc")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunBenchmark(b, design.HeavyWTConfig()); err != nil {
		t.Fatal(err)
	}
	if _, err := RunBenchmark(b, design.SyncOptiConfig()); err != nil {
		t.Fatal(err)
	}
	if _, err := RunSingle(b); err != nil {
		t.Fatal(err)
	}
	if n := oracleRuns.Load(); n != 1 {
		t.Errorf("interpreter ran %d times for one benchmark, want 1", n)
	}
	// A second benchmark costs exactly one more run.
	fir, err := workloads.ByName("fir")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunSingle(fir); err != nil {
		t.Fatal(err)
	}
	if n := oracleRuns.Load(); n != 2 {
		t.Errorf("interpreter ran %d times for two benchmarks, want 2", n)
	}
}

// TestOracleCacheConcurrent hammers Expected from many goroutines (run
// under -race): one interpreter execution, one shared image, no races.
func TestOracleCacheConcurrent(t *testing.T) {
	resetOracleCache()
	defer resetOracleCache()
	b, err := workloads.ByName("wc")
	if err != nil {
		t.Fatal(err)
	}
	const n = 16
	imgs := make([]uint64, n) // first output word seen by each goroutine
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			img, err := Expected(b)
			if err != nil {
				t.Error(err)
				return
			}
			imgs[i] = img.Read8(b.Out.Base)
		}(i)
	}
	wg.Wait()
	if n := oracleRuns.Load(); n != 1 {
		t.Errorf("interpreter ran %d times under contention, want 1", n)
	}
	for i := 1; i < n; i++ {
		if imgs[i] != imgs[0] {
			t.Fatalf("goroutine %d saw different oracle output", i)
		}
	}
}

// TestRunnerProgressReporting: the progress callback sees every job
// exactly once with a monotonically increasing done count.
func TestRunnerProgressReporting(t *testing.T) {
	var mu sync.Mutex
	var dones []int
	seen := map[string]bool{}
	r := &Runner{
		Workers: 4,
		Progress: func(done, total int, jr JobResult) {
			mu.Lock()
			defer mu.Unlock()
			if total != 4 {
				t.Errorf("total = %d, want 4", total)
			}
			dones = append(dones, done)
			seen[jr.Job.Name()] = true
			if jr.Wall < 0 {
				t.Error("negative wall time")
			}
		},
		run: func(ctx context.Context, j Job) (*sim.Result, error) {
			return &sim.Result{Cycles: 1}, nil
		},
	}
	jobs := []Job{{Bench: "a"}, {Bench: "b"}, {Bench: "c"}, {Bench: "d"}}
	r.Run(context.Background(), jobs)
	if len(dones) != 4 || len(seen) != 4 {
		t.Fatalf("progress calls = %d over %d jobs, want 4 over 4", len(dones), len(seen))
	}
	for i, d := range dones {
		if d != i+1 {
			t.Errorf("done sequence %v not monotonic", dones)
			break
		}
	}
}

// TestRunMatrixShape: the matrix helper preserves the benchmark x config
// grid shape and order.
func TestRunMatrixShape(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full benchmark set")
	}
	configs := []design.Config{design.HeavyWTConfig(), design.SyncOptiConfig()}
	grid, err := runMatrix(context.Background(), configs)
	if err != nil {
		t.Fatal(err)
	}
	benches := workloads.All()
	if len(grid) != len(benches) {
		t.Fatalf("rows = %d, want %d", len(grid), len(benches))
	}
	for bi, row := range grid {
		if len(row) != len(configs) {
			t.Fatalf("row %d: cols = %d, want %d", bi, len(row), len(configs))
		}
		for ci, res := range row {
			if res == nil || res.Cycles == 0 {
				t.Errorf("%s/%s: missing result", benches[bi].Name, configs[ci].Name())
			}
		}
	}
}

// TestRunnerSerialMatchesLegacyPath: Workers=1 through the runner equals a
// direct RunBenchmark call (the old serial code path).
func TestRunnerSerialMatchesLegacyPath(t *testing.T) {
	b, err := workloads.ByName("fir")
	if err != nil {
		t.Fatal(err)
	}
	direct, err := RunBenchmark(b, design.HeavyWTConfig())
	if err != nil {
		t.Fatal(err)
	}
	results := (&Runner{Workers: 1}).Run(context.Background(),
		[]Job{{Bench: "fir", Config: design.HeavyWTConfig()}})
	if err := FirstErr(results); err != nil {
		t.Fatal(err)
	}
	if results[0].Res.Cycles != direct.Cycles {
		t.Errorf("runner %d cycles, direct %d", results[0].Res.Cycles, direct.Cycles)
	}
}

// TestWarnHookReceivesUnquiescedExit: a result flagged UnquiescedExit is
// surfaced through the warn hook with the job name.
func TestWarnHookReceivesUnquiescedExit(t *testing.T) {
	var mu sync.Mutex
	var msgs []string
	SetWarnHook(func(m string) { mu.Lock(); msgs = append(msgs, m); mu.Unlock() })
	defer SetWarnHook(nil)
	r := &Runner{
		Workers: 1,
		run: func(ctx context.Context, j Job) (*sim.Result, error) {
			return &sim.Result{Cycles: 9, UnquiescedExit: true, UnquiescedDetail: "junk"}, nil
		},
	}
	r.Run(context.Background(), []Job{{Bench: "wc", Config: design.HeavyWTConfig()}})
	mu.Lock()
	defer mu.Unlock()
	if len(msgs) != 1 {
		t.Fatalf("warn calls = %d, want 1", len(msgs))
	}
	if want := "wc/HEAVYWT"; !strings.Contains(msgs[0], want) {
		t.Errorf("warning %q missing job name %q", msgs[0], want)
	}
}
