package exp

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestPoolRunsEveryTask(t *testing.T) {
	p := NewPool(4, 32)
	var n atomic.Int64
	for i := 0; i < 32; i++ {
		if err := p.TrySubmit(func() { n.Add(1) }); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	p.Close()
	if err := p.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := n.Load(); got != 32 {
		t.Fatalf("ran %d tasks, want 32", got)
	}
	if p.Pending() != 0 {
		t.Fatalf("pending = %d after drain, want 0", p.Pending())
	}
}

func TestPoolShedsWhenFull(t *testing.T) {
	// One worker parked on a gate plus a single queue slot: the third
	// submission must shed instead of blocking or queuing unboundedly.
	gate := make(chan struct{})
	p := NewPool(1, 1)
	if err := p.TrySubmit(func() { <-gate }); err != nil {
		t.Fatal(err)
	}
	// The worker may not have picked the first task up yet; wait until
	// the queue slot is free so the occupancy below is deterministic.
	deadline := time.Now().Add(2 * time.Second)
	for p.QueueLen() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never picked up the gated task")
		}
		time.Sleep(time.Millisecond)
	}
	if err := p.TrySubmit(func() {}); err != nil {
		t.Fatalf("queue slot submit: %v", err)
	}
	if err := p.TrySubmit(func() {}); !errors.Is(err, ErrPoolFull) {
		t.Fatalf("over-capacity submit: got %v, want ErrPoolFull", err)
	}
	if got := p.Pending(); got != 2 {
		t.Fatalf("pending = %d, want 2", got)
	}
	close(gate)
	p.Close()
	if err := p.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestPoolClosedRejectsButDrains(t *testing.T) {
	gate := make(chan struct{})
	var ran atomic.Bool
	p := NewPool(1, 4)
	p.TrySubmit(func() { <-gate })
	p.TrySubmit(func() { ran.Store(true) })
	p.Close()
	p.Close() // idempotent
	if err := p.TrySubmit(func() {}); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("submit after close: got %v, want ErrPoolClosed", err)
	}

	// Wait must respect its context while the gate is held...
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := p.Wait(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("gated wait: got %v, want DeadlineExceeded", err)
	}
	// ...and the queued task must still run once the gate opens.
	close(gate)
	if err := p.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !ran.Load() {
		t.Fatal("task queued before Close never ran")
	}
}

// TestPoolWaitLeaksNothing exercises the bug where every Wait whose ctx
// was canceled before Close parked a goroutine on workers.Wait() forever:
// after many canceled Waits plus a full close+drain, the process must be
// back to its starting goroutine count.
func TestPoolWaitLeaksNothing(t *testing.T) {
	before := runtime.NumGoroutine()
	p := NewPool(4, 8)
	for i := 0; i < 25; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if err := p.Wait(ctx); !errors.Is(err, context.Canceled) {
			t.Fatalf("canceled wait %d: got %v, want context.Canceled", i, err)
		}
	}
	var n atomic.Int64
	for i := 0; i < 8; i++ {
		if err := p.TrySubmit(func() { n.Add(1) }); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	p.Close()
	if err := p.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if n.Load() != 8 {
		t.Fatalf("ran %d tasks, want 8", n.Load())
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after close+drain",
				before, runtime.NumGoroutine())
		}
		time.Sleep(time.Millisecond)
	}
}
