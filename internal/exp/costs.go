package exp

import (
	"fmt"

	"hfstream/internal/design"
	"hfstream/internal/stats"
)

// CostRow is one design's cost/performance summary.
type CostRow struct {
	Design          string
	AddedBytes      int
	OSContextBytes  int
	SwitchCycles    float64
	NormPerformance float64 // vs HEAVYWT (from Figure 7/12 data)
}

// CostResult reproduces the paper's cost/performance trade-off argument:
// SYNCOPTI_SC+Q64 achieves nearly HEAVYWT's performance with ~1% of its
// additional storage and a fraction of its OS context.
type CostResult struct {
	Rows []CostRow
	// StorageRatio is SYNCOPTI_SC+Q64's added storage as a fraction of
	// HEAVYWT's (the paper's "1%" claim).
	StorageRatio float64
}

// Costs computes the hardware/OS cost table and joins it with measured
// performance from the Figure 12 sweep.
func Costs() (*CostResult, error) {
	f12, err := Fig12()
	if err != nil {
		return nil, err
	}
	f7, err := Fig7()
	if err != nil {
		return nil, err
	}
	perf := func(name string) float64 {
		if v := f12.Producer.NormTotal(name); v != 0 {
			return v
		}
		return f7.NormTotal(name)
	}

	configs := []design.Config{
		design.ExistingConfig(),
		design.MemOptiConfig(),
		design.SyncOptiConfig(),
		design.SyncOptiSCQ64Config(),
		design.HeavyWTConfig(),
	}
	res := &CostResult{}
	var heavyBytes, scq64Bytes int
	for _, cfg := range configs {
		hc := cfg.Cost()
		row := CostRow{
			Design:         cfg.Name(),
			AddedBytes:     hc.TotalAddedBytes(),
			OSContextBytes: hc.OSContextBytes,
			// 16 bytes/cycle spill bandwidth (the L3 bus), 200 cycles to
			// drain in-flight interconnect state.
			SwitchCycles:    hc.ContextSwitchCycles(16, 200),
			NormPerformance: perf(cfg.Name()),
		}
		res.Rows = append(res.Rows, row)
		switch cfg.Point {
		case design.HeavyWT:
			heavyBytes = row.AddedBytes
		case design.SyncOpti:
			if cfg.StreamCacheEntries > 0 {
				scq64Bytes = row.AddedBytes
			}
		}
	}
	if heavyBytes > 0 {
		res.StorageRatio = float64(scq64Bytes) / float64(heavyBytes)
	}
	return res, nil
}

// Table renders the cost/performance summary.
func (r *CostResult) Table() string {
	t := stats.NewTable(
		"Cost vs performance (paper conclusion: 98% of the speedup at 1% of the storage)",
		"Design", "Added storage (B)", "OS context (B)", "Switch cost (cyc)", "Time vs HEAVYWT")
	for _, row := range r.Rows {
		t.AddRowf(row.Design, row.AddedBytes, row.OSContextBytes,
			fmt.Sprintf("%.0f", row.SwitchCycles), row.NormPerformance)
	}
	t.AddRowf("SC+Q64 / HEAVYWT storage", fmt.Sprintf("%.1f%%", r.StorageRatio*100), "", "", "")
	return t.String()
}
