package exp

import (
	"strings"
	"testing"
)

// TestAllFigureRenderers runs each figure once and checks its text
// rendering carries the expected structure (every benchmark row, a
// geomean line).
func TestAllFigureRenderers(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full experiment set")
	}
	checks := func(name, table string) {
		t.Helper()
		for _, want := range []string{"art", "bzip2", "wc", "fft2", "GeoMean"} {
			if !strings.Contains(table, want) {
				t.Errorf("%s rendering missing %q", name, want)
			}
		}
	}

	f6, err := Fig6()
	if err != nil {
		t.Fatal(err)
	}
	checks("fig6", f6.Table())

	f8, err := Fig8()
	if err != nil {
		t.Fatal(err)
	}
	checks("fig8", f8.Table())

	f9, err := Fig9()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(f9.Table(), "Speedup") {
		t.Error("fig9 rendering broken")
	}

	f12, err := Fig12()
	if err != nil {
		t.Fatal(err)
	}
	checks("fig12", f12.Table())
	if !strings.Contains(f12.Producer.Chart(), "legend:") {
		t.Error("fig12 chart broken")
	}
	if f12.Consumer == nil || len(f12.Consumer.Rows) != len(f12.Producer.Rows) {
		t.Error("fig12 consumer side missing")
	}

	costs, err := Costs()
	if err != nil {
		t.Fatal(err)
	}
	ct := costs.Table()
	for _, want := range []string{"HEAVYWT", "SYNCOPTI_SC+Q64", "%"} {
		if !strings.Contains(ct, want) {
			t.Errorf("cost table missing %q", want)
		}
	}
	if costs.StorageRatio <= 0 || costs.StorageRatio > 0.2 {
		t.Errorf("storage ratio %.3f out of the expected band", costs.StorageRatio)
	}
}
