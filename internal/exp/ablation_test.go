package exp

import "testing"

func TestAblationQLUShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full benchmark sweep")
	}
	r, err := AblationQLU()
	if err != nil {
		t.Fatal(err)
	}
	// The paper ran QLU 1 and found QLU 8 "uniformly better".
	for _, row := range r.Rows {
		if row.Values[1] <= 1.0 {
			t.Errorf("%s: QLU1 (%.3f) should be slower than QLU8", row.Benchmark, row.Values[1])
		}
	}
	if g := r.Value("QLU1"); g < 1.3 {
		t.Errorf("QLU1 geomean %.3f, expected a substantial slowdown", g)
	}
}

func TestAblationCentralizedStoreShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full benchmark sweep")
	}
	r, err := AblationCentralizedStore()
	if err != nil {
		t.Fatal(err)
	}
	c4 := r.Value("central (4cyc)")
	c8 := r.Value("central (8cyc)")
	if !(1.0 < c4 && c4 < c8) {
		t.Errorf("centralized store should monotonically hurt: 1.0 < %.3f < %.3f", c4, c8)
	}
}

func TestAblationRegMappedShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full benchmark sweep")
	}
	r, err := AblationRegMapped()
	if err != nil {
		t.Fatal(err)
	}
	// Folding queue ops into instructions can only help (§3.1.3 predicts
	// gains for resource-bound loops; others break even).
	if g := r.Value("REGMAPPED"); g > 1.001 {
		t.Errorf("REGMAPPED geomean %.4f should not be slower than HEAVYWT", g)
	}
	for _, row := range r.Rows {
		if row.Values[1] > 1.01 {
			t.Errorf("%s: REGMAPPED %.3f slower than HEAVYWT", row.Benchmark, row.Values[1])
		}
	}
}

func TestAblationStreamCacheSizeShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full benchmark sweep")
	}
	r, err := AblationStreamCacheSize()
	if err != nil {
		t.Fatal(err)
	}
	none := r.Value("none")
	paper := r.Value("64 (paper)")
	big := r.Value("128")
	if none != 1.0 {
		t.Errorf("baseline should be 1.0, got %v", none)
	}
	if paper >= 1.0 {
		t.Errorf("64-entry stream cache should help: %.3f", paper)
	}
	// Diminishing returns: doubling past the paper's choice buys little.
	if big < paper-0.03 {
		t.Errorf("128 entries (%.3f) should not be much better than 64 (%.3f)", big, paper)
	}
}

func TestAblationBusPipeliningShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full benchmark sweep")
	}
	r, err := AblationBusPipelining()
	if err != nil {
		t.Fatal(err)
	}
	cpb4 := r.Value("pipelined cpb4")
	unpiped := r.Value("unpipelined cpb4")
	if !(1.0 <= cpb4 && cpb4 < unpiped) {
		t.Errorf("unpipelined bus (%.3f) should be worse than pipelined (%.3f)", unpiped, cpb4)
	}
}

func TestAblationNetQueueShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full benchmark sweep")
	}
	r, err := AblationNetQueue()
	if err != nil {
		t.Fatal(err)
	}
	// §3.5.3: nearby cores give bursty pipelines insufficient decoupling;
	// the penalty must decay with separation. bzip2 is the bursty case.
	var bz []float64
	for _, row := range r.Rows {
		if row.Benchmark == "bzip2" {
			bz = row.Values
		}
	}
	if len(bz) != 5 {
		t.Fatal("bzip2 row missing")
	}
	oneHop, eightHops := bz[1], bz[4]
	if oneHop <= 1.005 {
		t.Errorf("bzip2 at 1 hop = %.3f, expected a visible decoupling penalty", oneHop)
	}
	if eightHops >= oneHop {
		t.Errorf("penalty should decay with separation: 1hop=%.3f 8hops=%.3f", oneHop, eightHops)
	}
	// Steady streams are insensitive: geomean near 1.
	if g := r.Geomean[1]; g > 1.05 {
		t.Errorf("1-hop geomean %.3f, steady streams should be largely unaffected", g)
	}
}

func TestAblationStagesShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full benchmark sweep")
	}
	r, err := AblationStages()
	if err != nil {
		t.Fatal(err)
	}
	improved := 0
	for _, row := range r.Rows {
		if !row.Supported[0] || !row.Supported[1] {
			t.Errorf("%s: 1/2-stage must always be supported", row.Benchmark)
			continue
		}
		if !row.Supported[2] {
			continue
		}
		// A deeper pipeline must never be drastically worse than two
		// stages, and should help at least some compute-rich kernels.
		if float64(row.Cycles[2]) > float64(row.Cycles[1])*1.2 {
			t.Errorf("%s: 3 stages (%d) much worse than 2 (%d)",
				row.Benchmark, row.Cycles[2], row.Cycles[1])
		}
		if float64(row.Cycles[2]) < float64(row.Cycles[1])*0.9 {
			improved++
		}
	}
	if improved < 2 {
		t.Errorf("only %d kernels improved with a third stage", improved)
	}
}

func TestAblationProbeTimeoutShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full benchmark sweep")
	}
	r, err := AblationProbeTimeout()
	if err != nil {
		t.Fatal(err)
	}
	// Longer timeouts delay stream-termination flushes; they must never
	// help and eventually hurt the nested benchmark.
	def := r.Value("50 (default)")
	long := r.Value("400")
	if long < def-0.01 {
		t.Errorf("longer probe timeout should not help: 400=%.3f vs 50=%.3f", long, def)
	}
}
