package exp

import (
	"context"
	"strings"
	"testing"

	"hfstream/internal/design"
	"hfstream/internal/mem"
	"hfstream/internal/workloads"
)

func TestTable1Contents(t *testing.T) {
	s := Table1()
	for _, b := range workloads.All() {
		if !strings.Contains(s, b.Name) || !strings.Contains(s, b.Function) {
			t.Errorf("Table 1 missing %s", b.Name)
		}
	}
}

func TestTable2Contents(t *testing.T) {
	s := Table2()
	for _, want := range []string{"6-issue", "16 KB", "256 KB", "1.5 MB", "141 cycles",
		"Snoop-based", "16-byte", "write-through", "write-back"} {
		if !strings.Contains(s, want) {
			t.Errorf("Table 2 missing %q", want)
		}
	}
}

func TestFig3Shape(t *testing.T) {
	r := Fig3()
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	a, b, c := r.Rows[0], r.Rows[1], r.Rows[2]
	// Pipelining with a queue multiplies throughput ~4x; halving COMM-OP
	// doubles it again (paper: 2 -> 7 -> 14 iterations).
	if !(a.Iterations < b.Iterations && b.Iterations < c.Iterations) {
		t.Errorf("throughput not increasing: %v %v %v", a.Iterations, b.Iterations, c.Iterations)
	}
	if ratio := b.Iterations / a.Iterations; ratio < 3 || ratio > 5 {
		t.Errorf("queue gain %v, want ~4x (paper: 3.5x)", ratio)
	}
	if ratio := c.Iterations / b.Iterations; ratio < 1.8 || ratio > 2.2 {
		t.Errorf("COMM-OP halving gain %v, want ~2x", ratio)
	}
	// More buffers are needed at higher throughput (paper: 4 -> 6).
	if c.MinBuffers <= b.MinBuffers {
		t.Errorf("buffer requirement should grow: %d vs %d", b.MinBuffers, c.MinBuffers)
	}
	if !strings.Contains(r.Table(), "single buffer") {
		t.Error("table rendering broken")
	}
}

func TestCheckOutputDetectsCorruption(t *testing.T) {
	b, err := workloads.ByName("epicdec")
	if err != nil {
		t.Fatal(err)
	}
	img := mem.New()
	b.Setup(img)
	// Unrun image: outputs are zero, oracle's are not.
	if err := CheckOutput(b, img); err == nil {
		t.Fatal("corrupted (empty) output accepted")
	}
	// A verified run passes.
	if _, err := RunBenchmark(b, design.HeavyWTConfig()); err != nil {
		t.Fatal(err)
	}
}

func TestExpectedIsDeterministic(t *testing.T) {
	b, err := workloads.ByName("wc")
	if err != nil {
		t.Fatal(err)
	}
	im1, err := Expected(b)
	if err != nil {
		t.Fatal(err)
	}
	im2, err := Expected(b)
	if err != nil {
		t.Fatal(err)
	}
	for a := b.Out.Base; a < b.Out.End(); a += 8 {
		if im1.Read8(a) != im2.Read8(a) {
			t.Fatalf("oracle nondeterministic at %#x", a)
		}
	}
}

func TestRunBenchmarkRejectsBadDesignCombination(t *testing.T) {
	// Software lowering requires flag space; the dense Q64 layout cannot
	// host software queues.
	cfg := design.MemOptiConfig()
	cfg.QueueDepth = 64
	cfg.QLU = 16
	b, err := workloads.ByName("epicdec")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunBenchmark(b, cfg); err == nil {
		t.Fatal("flagless software-queue layout accepted")
	}
}

func TestBreakdownFigureNormalization(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full benchmark set")
	}
	fig, err := breakdownFigure(context.Background(), "test", []design.Config{design.HeavyWTConfig(), design.SyncOptiConfig()}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range fig.Rows {
		if row.Bars[0].Total != 1.0 {
			t.Errorf("%s: baseline bar = %v", row.Benchmark, row.Bars[0].Total)
		}
		for _, bar := range row.Bars {
			sum := 0.0
			for _, p := range bar.Parts {
				sum += p
			}
			if diff := sum - bar.Total; diff > 1e-9 || diff < -1e-9 {
				t.Errorf("%s/%s: parts sum %v != total %v", row.Benchmark, bar.Design, sum, bar.Total)
			}
		}
	}
	if fig.NormTotal("HEAVYWT") != 1.0 {
		t.Error("geomean baseline != 1.0")
	}
	if fig.NormTotal("nope") != 0 {
		t.Error("unknown design should return 0")
	}
}
