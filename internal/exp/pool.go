package exp

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool is a long-lived bounded worker pool. Unlike Runner.Run, which
// spins workers for one job list and tears them down, a Pool outlives any
// single submission, so a service can keep one pool for its whole
// lifetime and shed load when the queue is full instead of queuing
// unboundedly. Runner.Run itself executes on a throwaway Pool, so the
// batch harness and the serving path share one worker implementation.
var (
	// ErrPoolFull reports a TrySubmit that found the queue at capacity;
	// the caller decides whether to retry, block or shed.
	ErrPoolFull = errors.New("exp: pool queue full")
	// ErrPoolClosed reports a TrySubmit after Close.
	ErrPoolClosed = errors.New("exp: pool closed")
)

// Pool runs submitted functions on a fixed set of worker goroutines fed
// from a bounded queue.
type Pool struct {
	tasks   chan func()
	workers sync.WaitGroup
	pending atomic.Int64 // queued + running tasks

	mu     sync.Mutex
	closed bool
}

// NewPool starts a pool with the given worker count (<= 0 means
// GOMAXPROCS) and queue depth (clamped to at least 1; a task occupies a
// queue slot from TrySubmit until a worker picks it up).
func NewPool(workers, depth int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if depth < 1 {
		depth = 1
	}
	p := &Pool{tasks: make(chan func(), depth)}
	for w := 0; w < workers; w++ {
		p.workers.Add(1)
		go func() {
			defer p.workers.Done()
			for fn := range p.tasks {
				fn()
				p.pending.Add(-1)
			}
		}()
	}
	return p
}

// TrySubmit enqueues fn without blocking: ErrPoolFull when the queue is
// at capacity, ErrPoolClosed after Close. fn runs exactly once on a
// worker goroutine on success.
func (p *Pool) TrySubmit(fn func()) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrPoolClosed
	}
	p.pending.Add(1)
	select {
	case p.tasks <- fn:
		return nil
	default:
		p.pending.Add(-1)
		return ErrPoolFull
	}
}

// Close stops intake: subsequent TrySubmit calls fail with ErrPoolClosed,
// while already-queued tasks still run. Idempotent.
func (p *Pool) Close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return
	}
	p.closed = true
	close(p.tasks)
}

// Wait blocks until every queued and running task has finished (which
// requires Close to have been called, or the workers never exit) or ctx
// is done, whichever comes first.
func (p *Pool) Wait(ctx context.Context) error {
	done := make(chan struct{})
	go func() {
		p.workers.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Pending returns the number of tasks accepted but not yet finished
// (queued plus running).
func (p *Pool) Pending() int { return int(p.pending.Load()) }

// QueueLen returns the number of tasks waiting for a worker.
func (p *Pool) QueueLen() int { return len(p.tasks) }
