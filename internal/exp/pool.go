package exp

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"

	"hfstream/internal/ring"
)

// Pool is a long-lived bounded worker pool. Unlike Runner.Run, which
// spins workers for one job list and tears them down, a Pool outlives any
// single submission, so a service can keep one pool for its whole
// lifetime and shed load when the queue is full instead of queuing
// unboundedly. Runner.Run itself executes on a throwaway Pool, so the
// batch harness and the serving path share one worker implementation.
var (
	// ErrPoolFull reports a TrySubmit that found the queue at capacity;
	// the caller decides whether to retry, block or shed.
	ErrPoolFull = errors.New("exp: pool queue full")
	// ErrPoolClosed reports a TrySubmit after Close.
	ErrPoolClosed = errors.New("exp: pool closed")
)

// Pool runs submitted functions on a fixed set of worker goroutines. The
// data path is wait-free SPSC rings (package ring) in the FastFlow
// emitter style: TrySubmit (serialized by mu, so a single logical
// producer) pushes into the intake ring; a dispatcher goroutine pops it
// and hands each task to an idle worker's one-slot mailbox ring, so a
// task is only ever committed to a worker that is free to run it.
// Channels carry only wakeup signals, never tasks.
type Pool struct {
	depth   int
	intake  *ring.SPSC[func()]
	workers []*poolWorker

	// submitted wakes the dispatcher (coalescing token: a pending token
	// means "re-scan intake", so lost duplicates are harmless). freed
	// wakes it when a worker finishes and may accept new work. stop is
	// closed by the dispatcher once the pool is closed and every accepted
	// task has been assigned; workers drain their mailbox and exit.
	submitted chan struct{}
	freed     chan struct{}
	stop      chan struct{}

	mu      sync.Mutex
	closed  bool
	queued  int // accepted, not yet picked up by a worker
	pending int // accepted, not yet finished
	// drained is lazily created by Wait and closed when the pool is
	// closed with no pending work; Wait never spawns a goroutine, so a
	// canceled Wait leaks nothing (the old implementation parked one
	// goroutine per call on workers.Wait() forever).
	drained chan struct{}
}

// poolWorker is one worker goroutine's endpoint: a one-slot mailbox ring
// (dispatcher is the producer, the worker the consumer) plus its wake
// signal. busy tells the dispatcher the worker is running a task; the
// instant between popping the mailbox and setting busy can at worst
// double-book a worker, never lose a task.
type poolWorker struct {
	box  *ring.SPSC[func()]
	wake chan struct{}
	busy atomic.Bool
}

// NewPool starts a pool with the given worker count (<= 0 means
// GOMAXPROCS) and queue depth (clamped to at least 1; a task occupies a
// queue slot from TrySubmit until a worker picks it up).
func NewPool(workers, depth int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if depth < 1 {
		depth = 1
	}
	p := &Pool{
		depth:     depth,
		intake:    ring.New[func()](depth),
		submitted: make(chan struct{}, 1),
		freed:     make(chan struct{}, 1),
		stop:      make(chan struct{}),
	}
	for w := 0; w < workers; w++ {
		pw := &poolWorker{box: ring.New[func()](1), wake: make(chan struct{}, 1)}
		p.workers = append(p.workers, pw)
		go p.work(pw)
	}
	go p.dispatch()
	return p
}

// TrySubmit enqueues fn without blocking: ErrPoolFull when the queue is
// at capacity, ErrPoolClosed after Close. fn runs exactly once on a
// worker goroutine on success.
func (p *Pool) TrySubmit(fn func()) error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return ErrPoolClosed
	}
	if p.queued >= p.depth {
		p.mu.Unlock()
		return ErrPoolFull
	}
	// Cannot fail: the intake ring holds >= depth items and never holds
	// more than queued (tasks leave it when the dispatcher pops them).
	p.intake.TryPush(fn)
	p.queued++
	p.pending++
	p.mu.Unlock()
	signal(p.submitted)
	return nil
}

// Close stops intake: subsequent TrySubmit calls fail with ErrPoolClosed,
// while already-queued tasks still run. Idempotent.
func (p *Pool) Close() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		if p.pending == 0 && p.drained != nil {
			close(p.drained)
			p.drained = nil
		}
	}
	p.mu.Unlock()
	signal(p.submitted) // let a parked dispatcher notice the close
}

// Wait blocks until the pool is closed and every accepted task has
// finished, or ctx is done, whichever comes first.
func (p *Pool) Wait(ctx context.Context) error {
	p.mu.Lock()
	if p.closed && p.pending == 0 {
		p.mu.Unlock()
		return nil
	}
	if p.drained == nil {
		p.drained = make(chan struct{})
	}
	ch := p.drained
	p.mu.Unlock()
	select {
	case <-ch:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Pending returns the number of tasks accepted but not yet finished
// (queued plus running).
func (p *Pool) Pending() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.pending
}

// QueueLen returns the number of tasks waiting for a worker.
func (p *Pool) QueueLen() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.queued
}

// signal performs a coalescing non-blocking send on a capacity-1 token
// channel: if a token is already pending the receiver will re-scan
// anyway, so dropping the duplicate is safe.
func signal(ch chan struct{}) {
	select {
	case ch <- struct{}{}:
	default:
	}
}

// dispatch is the emitter loop: it moves tasks from the intake ring to
// idle workers' mailboxes, parks when there is nothing to move, and
// closes stop once the pool is closed and fully assigned.
func (p *Pool) dispatch() {
	for {
		fn, ok := p.intake.TryPop()
		if !ok {
			p.mu.Lock()
			closed := p.closed
			p.mu.Unlock()
			if closed {
				// TrySubmit checks closed under mu before pushing, so after
				// observing closed one final pop sees every accepted task.
				if fn, ok := p.intake.TryPop(); ok {
					p.assign(fn)
					continue
				}
				close(p.stop)
				for _, w := range p.workers {
					signal(w.wake)
				}
				return
			}
			<-p.submitted
			continue
		}
		p.assign(fn)
	}
}

// assign hands fn to an idle worker, waiting for one to free up when all
// are busy. A worker with an empty mailbox and busy unset is claimed by
// the push itself: until the worker picks the task up, its non-empty
// mailbox keeps every later scan away.
func (p *Pool) assign(fn func()) {
	for {
		for _, w := range p.workers {
			if !w.busy.Load() && w.box.Len() == 0 {
				w.box.TryPush(fn)
				signal(w.wake)
				return
			}
		}
		<-p.freed
	}
}

// work is one worker's loop: pop the mailbox, run, repeat; park on wake
// when the mailbox is empty; after stop closes, drain and exit.
func (p *Pool) work(w *poolWorker) {
	for {
		fn, ok := w.box.TryPop()
		if !ok {
			select {
			case <-w.wake:
				continue
			case <-p.stop:
				// The dispatcher assigned everything before closing stop;
				// one final drain catches a task that raced the shutdown.
				for {
					fn, ok := w.box.TryPop()
					if !ok {
						return
					}
					p.run(w, fn)
				}
			}
		}
		p.run(w, fn)
	}
}

// run executes one task with the pickup/finish bookkeeping.
func (p *Pool) run(w *poolWorker, fn func()) {
	w.busy.Store(true)
	p.mu.Lock()
	p.queued--
	p.mu.Unlock()
	fn()
	w.busy.Store(false)
	p.mu.Lock()
	p.pending--
	if p.pending == 0 && p.closed && p.drained != nil {
		close(p.drained)
		p.drained = nil
	}
	p.mu.Unlock()
	signal(p.freed)
}
