// Package exp is the experiment harness: it runs benchmarks on design
// points and regenerates every table and figure of the paper's evaluation
// (Tables 1-2, Figures 3 and 6-12). Each experiment returns structured
// rows plus a rendered text table so the command-line tools, tests and
// Go benchmarks share one implementation. Independent simulations are
// fanned out across a worker pool (see runner.go) and verified against a
// memoized functional-interpreter oracle (see oracle.go).
package exp

import (
	"context"
	"fmt"

	"hfstream/fault"
	"hfstream/internal/design"
	"hfstream/internal/isa"
	"hfstream/internal/lower"
	"hfstream/internal/mem"
	"hfstream/internal/sim"
	"hfstream/internal/workloads"
	"hfstream/trace"
)

// RunBenchmark executes the pipelined version of b on the given design
// point and verifies the output region against the functional oracle.
func RunBenchmark(b *workloads.Benchmark, cfg design.Config) (*sim.Result, error) {
	return RunBenchmarkSampledCtx(context.Background(), b, cfg, 0)
}

// RunBenchmarkSampled is RunBenchmark with per-interval time-series
// collection (sampleInterval cycles per sample; 0 disables).
func RunBenchmarkSampled(b *workloads.Benchmark, cfg design.Config, sampleInterval uint64) (*sim.Result, error) {
	return RunBenchmarkSampledCtx(context.Background(), b, cfg, sampleInterval)
}

// RunOpts bundles the optional observability knobs a run can enable.
type RunOpts struct {
	// SampleInterval enables the per-interval time series (0 = off).
	SampleInterval uint64
	// Trace, when non-nil, receives the structured event trace.
	Trace *trace.Buffer
	// Progress, when non-nil, is called from the cycle loop every
	// ProgressEvery cycles (see sim.Config.Progress).
	Progress      func(cycle, issued uint64)
	ProgressEvery uint64
	// Faults, when non-nil, is the per-run fault injector (see
	// sim.Config.Faults); injectors carry per-run state.
	Faults *fault.Injector
	// DisableFastForward forces the per-cycle kernel loop (see
	// sim.Config.DisableFastForward); outputs are identical either way.
	DisableFastForward bool
}

// Apply copies the options onto a simulator config.
func (o RunOpts) Apply(simCfg *sim.Config) {
	simCfg.SampleInterval = o.SampleInterval
	simCfg.Trace = o.Trace
	simCfg.Progress = o.Progress
	simCfg.ProgressEvery = o.ProgressEvery
	simCfg.Faults = o.Faults
	simCfg.DisableFastForward = o.DisableFastForward
}

// RunBenchmarkSampledCtx is RunBenchmarkSampled with cancellation: the
// simulation aborts with a *sim.CanceledError once ctx is done, so a
// deadlocked or slow job cannot outlive its caller's deadline.
func RunBenchmarkSampledCtx(ctx context.Context, b *workloads.Benchmark, cfg design.Config, sampleInterval uint64) (*sim.Result, error) {
	return RunBenchmarkOpts(ctx, b, cfg, RunOpts{SampleInterval: sampleInterval})
}

// RunBenchmarkOpts runs the pipelined version of b on the given design
// point with the requested observability options and verifies the output
// region against the functional oracle. Multi-core configurations
// dispatch to the matching partition shape: Parallel runs Cores-1
// replicated workers plus a merger, Cores >= 3 runs a Cores-stage
// pipeline, and everything else is the paper's dual-core machine.
func RunBenchmarkOpts(ctx context.Context, b *workloads.Benchmark, cfg design.Config, opts RunOpts) (*sim.Result, error) {
	if cfg.Parallel {
		if cfg.Cores < 3 {
			return nil, fmt.Errorf("exp: %s/%s: parallel-stage designs need Cores >= 3 (got %d)", b.Name, cfg.Name(), cfg.Cores)
		}
		return RunParallelOpts(ctx, b, cfg, cfg.Cores-1, opts)
	}
	if cfg.Cores >= 3 {
		return RunStagedOpts(ctx, b, cfg, cfg.Cores, opts)
	}
	threads, _, err := b.Pipelined()
	if err != nil {
		return nil, err
	}
	progs := threads[:]
	if cfg.SoftwareQueues() {
		layout := cfg.Layout()
		lowered := make([]*isa.Program, len(progs))
		for i, p := range progs {
			lowered[i], err = lower.Lower(p, layout)
			if err != nil {
				return nil, fmt.Errorf("exp: %s/%s: %w", b.Name, cfg.Name(), err)
			}
		}
		progs = lowered
	}
	img := mem.New()
	b.Setup(img)
	var ths []sim.Thread
	for _, p := range progs {
		ths = append(ths, sim.Thread{Prog: p})
	}
	simCfg := cfg.SimConfig()
	simCfg.Preload = b.InputRegions
	opts.Apply(&simCfg)
	simCfg.Cancel = ctx.Done()
	res, err := sim.Run(simCfg, img, ths)
	if err != nil {
		return nil, fmt.Errorf("exp: %s/%s: %w", b.Name, cfg.Name(), err)
	}
	if err := CheckOutput(b, img); err != nil {
		return nil, fmt.Errorf("exp: %s/%s: %w", b.Name, cfg.Name(), err)
	}
	return res, nil
}

// RunSingle executes the single-threaded baseline of b on the EXISTING
// machine (one core) and verifies its output.
func RunSingle(b *workloads.Benchmark) (*sim.Result, error) {
	return RunSingleCtx(context.Background(), b)
}

// RunSingleCtx is RunSingle with cancellation (see RunBenchmarkSampledCtx).
func RunSingleCtx(ctx context.Context, b *workloads.Benchmark) (*sim.Result, error) {
	return RunSingleOpts(ctx, b, RunOpts{})
}

// RunSingleOpts is RunSingle with observability options.
func RunSingleOpts(ctx context.Context, b *workloads.Benchmark, opts RunOpts) (*sim.Result, error) {
	prog, err := b.Single()
	if err != nil {
		return nil, err
	}
	img := mem.New()
	b.Setup(img)
	simCfg := design.ExistingConfig().SimConfig()
	simCfg.Preload = b.InputRegions
	opts.Apply(&simCfg)
	simCfg.Cancel = ctx.Done()
	res, err := sim.Run(simCfg, img, []sim.Thread{{Prog: prog}})
	if err != nil {
		return nil, fmt.Errorf("exp: %s/single: %w", b.Name, err)
	}
	if err := CheckOutput(b, img); err != nil {
		return nil, fmt.Errorf("exp: %s/single: %w", b.Name, err)
	}
	return res, nil
}

// CheckOutput compares the benchmark's output region in img against the
// memoized functional oracle, word by word.
func CheckOutput(b *workloads.Benchmark, img *mem.Memory) error {
	want, err := Expected(b)
	if err != nil {
		return err
	}
	for a := b.Out.Base; a < b.Out.End(); a += 8 {
		if got, exp := img.Read8(a), want.Read8(a); got != exp {
			return fmt.Errorf("output mismatch at %#x: got %#x want %#x", a, got, exp)
		}
	}
	return nil
}
