package exp

import (
	"testing"

	"hfstream/internal/design"
	"hfstream/internal/dswp"
	"hfstream/internal/mem"
	"hfstream/internal/memsys"
	"hfstream/internal/sim"
	"hfstream/internal/workloads"
)

// TestThreeStageSyncOpti runs a 3-stage pipeline on a 3-core SYNCOPTI
// machine: the memory-side streaming (forwards, bulk ACKs, probes) must
// route by the partition's queue map rather than the dual-core default.
func TestThreeStageSyncOpti(t *testing.T) {
	for _, name := range []string{"adpcmdec", "fir", "fft2"} {
		name := name
		t.Run(name, func(t *testing.T) {
			b, err := workloads.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			res, err := dswp.PartitionN(b.Loop, 3)
			if err != nil {
				t.Skipf("not 3-stage partitionable: %v", err)
			}
			if len(res.Routes) != res.QueueCount {
				t.Fatalf("routes %d != queues %d", len(res.Routes), res.QueueCount)
			}

			cfg := design.SyncOptiSCQ64Config().SimConfig()
			cfg.Preload = b.InputRegions
			for _, rt := range res.Routes {
				cfg.Mem.QueueRoutes = append(cfg.Mem.QueueRoutes,
					memsys.QueueRoute{Producer: rt.Producer, Consumer: rt.Consumer})
			}
			img := mem.New()
			b.Setup(img)
			var threads []sim.Thread
			for _, p := range res.Threads {
				threads = append(threads, sim.Thread{Prog: p})
			}
			r, err := sim.Run(cfg, img, threads)
			if err != nil {
				t.Fatal(err)
			}
			if err := CheckOutput(b, img); err != nil {
				t.Fatal(err)
			}
			two, err := RunBenchmark(b, design.SyncOptiSCQ64Config())
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("%s SYNCOPTI_SC+Q64: 2 stages %d cycles, 3 stages %d cycles",
				name, two.Cycles, r.Cycles)
			if float64(r.Cycles) > float64(two.Cycles)*1.25 {
				t.Errorf("3-stage (%d) much worse than 2-stage (%d)", r.Cycles, two.Cycles)
			}
		})
	}
}

// TestRoutesMatchAssignments: every queue's producer stage must own its
// source node.
func TestRoutesMatchAssignments(t *testing.T) {
	for _, b := range workloads.All() {
		if b.Loop == nil {
			continue
		}
		res, err := dswp.Partition(b.Loop)
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		for qi, rt := range res.Routes {
			if rt.Producer == rt.Consumer {
				t.Errorf("%s q%d: degenerate route %+v", b.Name, qi, rt)
			}
			if rt.Producer < 0 || rt.Producer >= res.Stages ||
				rt.Consumer < 0 || rt.Consumer >= res.Stages {
				t.Errorf("%s q%d: route out of range %+v", b.Name, qi, rt)
			}
		}
	}
}
