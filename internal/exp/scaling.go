package exp

import (
	"context"
	"fmt"

	"hfstream/internal/design"
	"hfstream/internal/dswp"
	"hfstream/internal/stats"
	"hfstream/internal/workloads"
)

// The scaling study extends the paper's dual-core evaluation to N-core
// CMPs: each design point runs the same kernels at every core count and
// the figure plots speedup over the single-core baseline. Pipeline
// shapes come from the partitioners (PartitionN for k-stage chains,
// PartitionParallel for replicated workers + merger), so a cell is "n/a"
// exactly when the kernel's dependence structure cannot fill that shape.

// ScalingCores is the core-count axis of the scaling study.
var ScalingCores = []int{1, 2, 3, 4}

// ScalingBenches names the kernels of the study: two StreamIt/SPEC
// kernels with enough SCC structure to fill deep pipelines.
var ScalingBenches = []string{"fft2", "equake"}

// ScalingDesigns returns the design points of the scaling study: the
// paper's best lightweight point, the dedicated-storage point (both as
// k-stage chains), and the parallel-stage MPMC point.
func ScalingDesigns() []design.Config {
	return []design.Config{
		design.SyncOptiSCQ64Config(),
		design.HeavyWTConfig(),
		design.MPMCQ64Config(),
	}
}

// ScalingCell is one (benchmark, design, cores) measurement.
type ScalingCell struct {
	Cycles uint64
	// Supported marks shapes the kernel's dependence structure allows.
	Supported bool
}

// ScalingRow is one benchmark's curve on one design point, indexed like
// ScalingResult.Cores.
type ScalingRow struct {
	Benchmark string
	Design    string
	Cells     []ScalingCell
}

// ScalingResult holds the scaling-curve figure: speedup vs core count
// for every (benchmark, design) pair.
type ScalingResult struct {
	Cores []int
	Rows  []ScalingRow
}

// Scaling runs the full scaling study on the default runner.
func Scaling() (*ScalingResult, error) { return ScalingCtx(context.Background()) }

// ScalingCtx is Scaling with cancellation. The single-core baseline is
// run once per benchmark and shared across that benchmark's rows.
func ScalingCtx(ctx context.Context) (*ScalingResult, error) {
	res := &ScalingResult{Cores: ScalingCores}
	var jobs []Job
	type slot struct{ row, cell, job int }
	var slots []slot
	singleJob := map[string]int{}
	for _, bname := range ScalingBenches {
		b, err := workloads.ByName(bname)
		if err != nil {
			return nil, err
		}
		for _, cfg := range ScalingDesigns() {
			row := ScalingRow{Benchmark: bname, Design: cfg.Name(),
				Cells: make([]ScalingCell, len(ScalingCores))}
			ri := len(res.Rows)
			res.Rows = append(res.Rows, row)
			for ci, cores := range ScalingCores {
				if !scalingSupported(b, cfg, cores) {
					continue
				}
				var ji int
				switch {
				case cores == 1:
					idx, ok := singleJob[bname]
					if !ok {
						idx = len(jobs)
						jobs = append(jobs, Job{Bench: bname, Single: true})
						singleJob[bname] = idx
					}
					ji = idx
				case cores == 2:
					ji = len(jobs)
					jobs = append(jobs, Job{Bench: bname, Config: cfg})
				default:
					ji = len(jobs)
					jobs = append(jobs, Job{Bench: bname, Config: cfg.WithCores(cores)})
				}
				slots = append(slots, slot{row: ri, cell: ci, job: ji})
			}
		}
	}
	results := newRunner().Run(ctx, jobs)
	if err := FirstErr(results); err != nil {
		return nil, err
	}
	for _, s := range slots {
		res.Rows[s.row].Cells[s.cell] = ScalingCell{
			Cycles: results[s.job].Res.Cycles, Supported: true}
	}
	return res, nil
}

// scalingSupported reports whether the kernel's dependence structure can
// fill the requested shape on the given design; unsupported cells render
// "n/a" rather than failing the study.
func scalingSupported(b *workloads.Benchmark, cfg design.Config, cores int) bool {
	if cores == 1 {
		return true
	}
	if cores == 2 {
		// Every workload ships a working dual-core pipeline; a parallel
		// shape would leave a single worker, which PS-DSWP rejects.
		return !cfg.Parallel
	}
	if b.Loop == nil {
		return false // hand-partitioned kernels are dual-core only
	}
	if cfg.Parallel {
		_, err := dswp.PartitionParallel(b.Loop, cores-1)
		return err == nil
	}
	_, err := dswp.PartitionN(b.Loop, cores)
	return err == nil
}

// Table renders the scaling-curve figure.
func (r *ScalingResult) Table() string {
	hdr := []string{"Benchmark", "Design"}
	for _, c := range r.Cores {
		if c == 1 {
			hdr = append(hdr, "1 core")
		} else {
			hdr = append(hdr, fmt.Sprintf("%d cores", c))
		}
	}
	t := stats.NewTable(
		"Scaling: speedup vs core count per design (cycles; speedup vs 1 core)",
		hdr...)
	for _, row := range r.Rows {
		cells := []interface{}{row.Benchmark, row.Design}
		var base uint64
		if len(row.Cells) > 0 && row.Cells[0].Supported {
			base = row.Cells[0].Cycles
		}
		for i, c := range row.Cells {
			switch {
			case !c.Supported:
				cells = append(cells, "n/a")
			case i == 0 || base == 0 || c.Cycles == 0:
				cells = append(cells, fmt.Sprintf("%d", c.Cycles))
			default:
				cells = append(cells, fmt.Sprintf("%d (%.2fx)", c.Cycles,
					float64(base)/float64(c.Cycles)))
			}
		}
		t.AddRowf(cells...)
	}
	return t.String()
}
