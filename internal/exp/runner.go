package exp

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"hfstream/internal/design"
	"hfstream/internal/sim"
	"hfstream/internal/workloads"
)

// The runner fans independent (benchmark, design, variant) simulations
// across a goroutine pool. Every figure/table of the evaluation is a grid
// of share-nothing jobs — each worker resolves its own benchmark instance
// and memory image — so regeneration scales with cores while results stay
// in deterministic input order.

// Job is one simulation: a benchmark run on a design point, or (with
// Single) the single-threaded baseline on the EXISTING machine.
type Job struct {
	// Bench names the workload; each job resolves a fresh instance via
	// workloads.ByName so concurrent jobs share no mutable state.
	Bench  string
	Config design.Config
	// Single runs the unpartitioned baseline; Config is ignored.
	Single bool
	// SampleInterval enables per-interval time-series collection.
	SampleInterval uint64
}

// Name labels the job for progress reports and warnings.
func (j Job) Name() string {
	if j.Single {
		return j.Bench + "/single"
	}
	return j.Bench + "/" + j.Config.Name()
}

// JobResult pairs a job with its outcome and wall-clock cost.
type JobResult struct {
	Job  Job
	Res  *sim.Result // nil when Err != nil
	Err  error
	Wall time.Duration
}

// Runner executes job lists on a worker pool.
type Runner struct {
	// Workers is the pool size: 0 means GOMAXPROCS, 1 reproduces the old
	// serial behaviour exactly.
	Workers int
	// Timeout caps each job's wall-clock time (0 = none); an expired job
	// fails with a *sim.CanceledError without disturbing its siblings.
	Timeout time.Duration
	// Progress, when set, is called after each job completes with the
	// number of finished jobs so far; calls are serialized.
	Progress func(done, total int, r JobResult)

	// run overrides job execution (tests only; nil = runJob).
	run func(ctx context.Context, j Job) (*sim.Result, error)
}

// Run executes all jobs and returns their results in input order,
// regardless of completion order. Failed jobs carry their error in the
// corresponding slot; siblings are unaffected. Canceling ctx aborts
// in-flight simulations and fails not-yet-started jobs with ctx.Err().
// Execution happens on a throwaway Pool sized to the job list, so the
// batch harness and long-lived services (serve/) share one worker
// implementation.
func (r *Runner) Run(ctx context.Context, jobs []Job) []JobResult {
	results := make([]JobResult, len(jobs))
	if len(jobs) == 0 {
		return results
	}
	workers := r.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	exec := r.run
	if exec == nil {
		exec = runJob
	}

	var done atomic.Int64
	var progressMu sync.Mutex
	pool := NewPool(workers, len(jobs))
	for i := range jobs {
		// The pool is freshly created with room for every job, so
		// TrySubmit cannot fail here.
		pool.TrySubmit(func() {
			j := jobs[i]
			start := time.Now()
			var res *sim.Result
			err := ctx.Err()
			if err == nil {
				jctx := ctx
				var cancel context.CancelFunc
				if r.Timeout > 0 {
					jctx, cancel = context.WithTimeout(ctx, r.Timeout)
				}
				res, err = exec(jctx, j)
				if cancel != nil {
					cancel()
				}
			}
			results[i] = JobResult{Job: j, Res: res, Err: err, Wall: time.Since(start)}
			if res != nil && res.UnquiescedExit {
				warnf("%s: cores done but fabric never quiesced (run with hfsim for the fabric dump)", j.Name())
				diagnosef(j.Name(), res.Diagnosis)
			}
			var dl *sim.DeadlockError
			if errors.As(err, &dl) && dl.Diag != nil {
				diagnosef(j.Name(), dl.Diag)
			}
			n := int(done.Add(1))
			if r.Progress != nil {
				progressMu.Lock()
				r.Progress(n, len(jobs), results[i])
				progressMu.Unlock()
			}
		})
	}
	pool.Close()
	pool.Wait(context.Background())
	return results
}

// runJob executes one job on a freshly resolved benchmark.
func runJob(ctx context.Context, j Job) (*sim.Result, error) {
	b, err := workloads.ByName(j.Bench)
	if err != nil {
		return nil, err
	}
	if j.Single {
		return RunSingleCtx(ctx, b)
	}
	return RunBenchmarkSampledCtx(ctx, b, j.Config, j.SampleInterval)
}

// FirstErr returns the first error in input order, or nil.
func FirstErr(results []JobResult) error {
	for _, r := range results {
		if r.Err != nil {
			return r.Err
		}
	}
	return nil
}

// Package-level knobs let the CLIs tune every figure function without
// threading options through each call site.

var (
	defaultWorkers atomic.Int32 // 0 = GOMAXPROCS
	progressHook   atomic.Value // func(done, total int, r JobResult)
	warnHook       atomic.Value // func(string)
	diagHook       atomic.Value // func(job string, d *sim.Diagnosis)
)

// SetParallelism sets the worker count used by the package-level figure
// and ablation functions (0 = GOMAXPROCS, 1 = serial).
func SetParallelism(n int) { defaultWorkers.Store(int32(n)) }

// Parallelism returns the current default worker count (0 = GOMAXPROCS).
func Parallelism() int { return int(defaultWorkers.Load()) }

// SetProgress installs a per-job completion callback for the package-level
// figure functions (nil disables).
func SetProgress(f func(done, total int, r JobResult)) { progressHook.Store(&f) }

// SetWarnHook installs the sink for non-fatal harness warnings, e.g. a
// simulation that finished with an unquiesced fabric (nil discards them).
func SetWarnHook(f func(msg string)) { warnHook.Store(&f) }

func warnf(format string, args ...interface{}) {
	if p, _ := warnHook.Load().(*func(string)); p != nil && *p != nil {
		(*p)(fmt.Sprintf(format, args...))
	}
}

// SetDiagnosisHook installs the sink for structured deadlock forensics: it
// receives the job name and the *sim.Diagnosis whenever a job deadlocks or
// exits unquiesced (nil discards them). Calls may arrive concurrently from
// worker goroutines.
func SetDiagnosisHook(f func(job string, d *sim.Diagnosis)) { diagHook.Store(&f) }

func diagnosef(job string, d *sim.Diagnosis) {
	if d == nil {
		return
	}
	if p, _ := diagHook.Load().(*func(string, *sim.Diagnosis)); p != nil && *p != nil {
		(*p)(job, d)
	}
}

// newRunner returns a Runner honoring the package-level knobs.
func newRunner() *Runner {
	r := &Runner{Workers: Parallelism()}
	if p, _ := progressHook.Load().(*func(done, total int, r JobResult)); p != nil {
		r.Progress = *p
	}
	return r
}

// runMatrix runs every (benchmark, config) pair of the full workload set
// on the default runner and returns results indexed [benchmark][config]
// in workloads.All() x configs order.
func runMatrix(ctx context.Context, configs []design.Config) ([][]*sim.Result, error) {
	benches := workloads.All()
	jobs := make([]Job, 0, len(benches)*len(configs))
	for _, b := range benches {
		for _, cfg := range configs {
			jobs = append(jobs, Job{Bench: b.Name, Config: cfg})
		}
	}
	results := newRunner().Run(ctx, jobs)
	if err := FirstErr(results); err != nil {
		return nil, err
	}
	out := make([][]*sim.Result, len(benches))
	k := 0
	for bi := range benches {
		out[bi] = make([]*sim.Result, len(configs))
		for ci := range configs {
			out[bi][ci] = results[k].Res
			k++
		}
	}
	return out, nil
}
