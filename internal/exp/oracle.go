package exp

import (
	"fmt"
	"sync"
	"sync/atomic"

	"hfstream/internal/interp"
	"hfstream/internal/mem"
	"hfstream/internal/workloads"
)

// The oracle cache memoizes Expected per benchmark: the functional
// interpreter is deterministic, so its output image is a pure function of
// the benchmark name and one run per process suffices no matter how many
// simulations verify against it. Entries are created under a mutex and
// computed under a sync.Once, so concurrent runner workers asking for the
// same benchmark share a single interpreter run and block only on that
// benchmark's entry, never on the whole cache.

type oracleEntry struct {
	once sync.Once
	img  *mem.Memory
	err  error
}

var oracleCache = struct {
	sync.Mutex
	m map[string]*oracleEntry
}{m: make(map[string]*oracleEntry)}

// oracleRuns counts functional-interpreter executions; the regression
// tests assert exactly one per benchmark per process.
var oracleRuns atomic.Uint64

// resetOracleCache drops all memoized oracle images (tests only).
func resetOracleCache() {
	oracleCache.Lock()
	oracleCache.m = make(map[string]*oracleEntry)
	oracleRuns.Store(0)
	oracleCache.Unlock()
}

// Expected returns the oracle memory image for b: the single-threaded
// program run to completion on the functional interpreter. The image is
// memoized per benchmark name and shared across goroutines; callers must
// treat it as read-only.
func Expected(b *workloads.Benchmark) (*mem.Memory, error) {
	oracleCache.Lock()
	e := oracleCache.m[b.Name]
	if e == nil {
		e = &oracleEntry{}
		oracleCache.m[b.Name] = e
	}
	oracleCache.Unlock()
	e.once.Do(func() { e.img, e.err = computeOracle(b.Name) })
	return e.img, e.err
}

// computeOracle runs the interpreter on a fresh benchmark instance so the
// oracle never shares mutable state (programs, setup closures) with
// simulations of the same benchmark on sibling goroutines.
func computeOracle(name string) (*mem.Memory, error) {
	b, err := workloads.ByName(name)
	if err != nil {
		return nil, err
	}
	prog, err := b.Single()
	if err != nil {
		return nil, err
	}
	img := mem.New()
	b.Setup(img)
	oracleRuns.Add(1)
	m := interp.New(img, prog)
	if err := m.Run(0); err != nil {
		return nil, fmt.Errorf("exp: %s oracle: %w", b.Name, err)
	}
	return img, nil
}
