package exp

import (
	"context"
	"fmt"

	"hfstream/internal/core"
	"hfstream/internal/design"
	"hfstream/internal/stats"
	"hfstream/internal/workloads"
)

// StallRow is one (design, core) aggregate over the benchmark suite:
// total active cycles, issue cycles, and the stall cycles charged to each
// blocking reason. Stalls.Total() == Cycles - IssueCycles by construction
// (the paper's Figure 6 delay decomposition, extended with the core-local
// hazard reasons).
type StallRow struct {
	Design      string
	Core        int
	Cycles      uint64
	IssueCycles uint64
	Stalls      core.StallCycles
	// Regions charges the same stall cycles to the responsible machine
	// region (PreL2 for core-local hazards, the blocking token's location
	// otherwise).
	Regions stats.Breakdown
}

// StallFigure is the per-design stall attribution table, aggregated over
// every benchmark of the suite.
type StallFigure struct {
	Rows []StallRow
}

// StallBreakdown runs every benchmark on each standard design point and
// aggregates per-core stall attribution across the suite.
func StallBreakdown() (*StallFigure, error) {
	configs := design.StandardConfigs()
	grid, err := runMatrix(context.Background(), configs)
	if err != nil {
		return nil, err
	}
	fig := &StallFigure{}
	for ci, cfg := range configs {
		for coreIdx := 0; coreIdx < 2; coreIdx++ {
			row := StallRow{Design: cfg.Name(), Core: coreIdx}
			for bi := range workloads.All() {
				res := grid[bi][ci]
				row.Cycles += res.CoreCycles[coreIdx]
				row.IssueCycles += res.IssueCycles[coreIdx]
				for r := range res.Stalls[coreIdx] {
					row.Stalls[r] += res.Stalls[coreIdx][r]
				}
				for b := stats.Bucket(0); b < stats.NumBuckets; b++ {
					row.Regions.Add(b, res.StallRegions[coreIdx].Cycles[b])
				}
			}
			fig.Rows = append(fig.Rows, row)
		}
	}
	return fig, nil
}

// stallColumns lists the reasons in table order.
var stallColumns = []core.StallReason{
	core.StallOperand, core.StallToken, core.StallFU, core.StallOzQFull,
	core.StallLoadLimit, core.StallFence, core.StallQueueFull,
	core.StallQueueEmpty, core.StallWAW, core.StallHalted,
}

// Table renders the figure: one line per (design, core), stall cycles by
// reason plus the issue/stall/total accounting identity.
func (f *StallFigure) Table() string {
	headers := []string{"Design", "Core", "Cycles", "Issue", "Stall"}
	for _, r := range stallColumns {
		headers = append(headers, r.String())
	}
	t := stats.NewTable("Stall attribution (cycles summed over the benchmark suite)", headers...)
	for _, row := range f.Rows {
		cells := []string{
			row.Design,
			fmt.Sprintf("%d", row.Core),
			fmt.Sprintf("%d", row.Cycles),
			fmt.Sprintf("%d", row.IssueCycles),
			fmt.Sprintf("%d", row.Stalls.Total()),
		}
		for _, r := range stallColumns {
			cells = append(cells, fmt.Sprintf("%d", row.Stalls[r]))
		}
		t.AddRow(cells...)
	}
	return t.String()
}
