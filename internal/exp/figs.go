package exp

import (
	"context"
	"fmt"

	"hfstream/internal/design"
	"hfstream/internal/stats"
	"hfstream/internal/workloads"
)

// BreakdownBar is one normalized stacked bar: Total is execution time
// relative to the row's baseline design, split into the six machine
// components (paper Figures 7, 10, 11, 12).
type BreakdownBar struct {
	Design string
	Total  float64
	Parts  [stats.NumBuckets]float64
}

// BreakdownRow is one benchmark's bars.
type BreakdownRow struct {
	Benchmark string
	Bars      []BreakdownBar
}

// BreakdownFigure is a full stacked-bar figure plus the geomean of each
// design's normalized totals.
type BreakdownFigure struct {
	Title   string
	Core    int // 0 = producer thread, 1 = consumer thread
	Rows    []BreakdownRow
	Geomean []BreakdownBar
}

// breakdownFigure runs every benchmark on each config (fanned across the
// worker pool) and normalizes each bar to the first config's (the
// baseline's) execution time.
func breakdownFigure(ctx context.Context, title string, configs []design.Config, coreIdx int) (*BreakdownFigure, error) {
	fig := &BreakdownFigure{Title: title, Core: coreIdx}
	grid, err := runMatrix(ctx, configs)
	if err != nil {
		return nil, err
	}
	sums := make([][]float64, len(configs))
	for bi, b := range workloads.All() {
		row := BreakdownRow{Benchmark: b.Name}
		var base float64
		for ci, cfg := range configs {
			bd := grid[bi][ci].Breakdowns[coreIdx]
			total := float64(bd.Total())
			if ci == 0 {
				base = total
			}
			norm := total / base
			bar := BreakdownBar{Design: cfg.Name(), Total: norm, Parts: bd.Scaled(norm)}
			row.Bars = append(row.Bars, bar)
			sums[ci] = append(sums[ci], norm)
		}
		fig.Rows = append(fig.Rows, row)
	}
	for ci, cfg := range configs {
		fig.Geomean = append(fig.Geomean, BreakdownBar{
			Design: cfg.Name(), Total: stats.Geomean(sums[ci]),
		})
	}
	return fig, nil
}

// Table renders the figure as text: one line per (benchmark, design).
func (f *BreakdownFigure) Table() string {
	t := stats.NewTable(f.Title,
		"Benchmark", "Design", "Norm.Time", "PreL2", "L2", "BUS", "L3", "MEM", "PostL2")
	for _, row := range f.Rows {
		for _, bar := range row.Bars {
			t.AddRowf(row.Benchmark, bar.Design, bar.Total,
				bar.Parts[stats.PreL2], bar.Parts[stats.L2], bar.Parts[stats.Bus],
				bar.Parts[stats.L3], bar.Parts[stats.Mem], bar.Parts[stats.PostL2])
		}
	}
	for _, g := range f.Geomean {
		t.AddRowf("GeoMean", g.Design, g.Total, "", "", "", "", "", "")
	}
	return t.String()
}

// NormTotal returns the geomean normalized time of the named design.
func (f *BreakdownFigure) NormTotal(designName string) float64 {
	for _, g := range f.Geomean {
		if g.Design == designName {
			return g.Total
		}
	}
	return 0
}

// ---- Figure 6 ----

// Fig6Row holds one benchmark's normalized execution times for the three
// HEAVYWT interconnect variants.
type Fig6Row struct {
	Benchmark string
	// Lat1Q32 is the baseline (1.0 by construction), Lat10Q32 the
	// 10-cycle interconnect, Lat10Q64 the 10-cycle interconnect with
	// 64-entry queues.
	Lat1Q32, Lat10Q32, Lat10Q64 float64
}

// Fig6Result reproduces Figure 6: streaming codes tolerate transit delay.
type Fig6Result struct {
	Rows    []Fig6Row
	Geomean Fig6Row
}

// Fig6 runs the transit-delay tolerance experiment.
func Fig6() (*Fig6Result, error) { return Fig6Ctx(context.Background()) }

// Fig6Ctx is Fig6 with cancellation: in-flight simulations abort once ctx
// is done.
func Fig6Ctx(ctx context.Context) (*Fig6Result, error) {
	cfg1 := design.HeavyWTConfig()
	cfg10 := design.HeavyWTConfig()
	cfg10.InterconnectLat = 10
	cfg10.Label = "HEAVYWT_lat10"
	cfg10q64 := design.HeavyWTConfig()
	cfg10q64.InterconnectLat = 10
	cfg10q64.QueueDepth = 64
	cfg10q64.Label = "HEAVYWT_lat10_q64"

	res := &Fig6Result{Geomean: Fig6Row{Benchmark: "GeoMean"}}
	grid, err := runMatrix(ctx, []design.Config{cfg1, cfg10, cfg10q64})
	if err != nil {
		return nil, err
	}
	var g1, g10, g64 []float64
	for bi, b := range workloads.All() {
		base := float64(grid[bi][0].Cycles)
		row := Fig6Row{
			Benchmark: b.Name,
			Lat1Q32:   1.0,
			Lat10Q32:  float64(grid[bi][1].Cycles) / base,
			Lat10Q64:  float64(grid[bi][2].Cycles) / base,
		}
		res.Rows = append(res.Rows, row)
		g1 = append(g1, row.Lat1Q32)
		g10 = append(g10, row.Lat10Q32)
		g64 = append(g64, row.Lat10Q64)
	}
	res.Geomean.Lat1Q32 = stats.Geomean(g1)
	res.Geomean.Lat10Q32 = stats.Geomean(g10)
	res.Geomean.Lat10Q64 = stats.Geomean(g64)
	return res, nil
}

// Table renders Figure 6 as text.
func (r *Fig6Result) Table() string {
	t := stats.NewTable("Figure 6: Effect of transit delay on streaming codes (HEAVYWT, normalized)",
		"Benchmark", "1cyc/32q", "10cyc/32q", "10cyc/64q")
	for _, row := range r.Rows {
		t.AddRowf(row.Benchmark, row.Lat1Q32, row.Lat10Q32, row.Lat10Q64)
	}
	t.AddRowf(r.Geomean.Benchmark, r.Geomean.Lat1Q32, r.Geomean.Lat10Q32, r.Geomean.Lat10Q64)
	return t.String()
}

// ---- Figure 7 ----

// Fig7 runs the four primary design points and reports the producer
// thread's normalized execution-time breakdowns.
func Fig7() (*BreakdownFigure, error) { return Fig7Ctx(context.Background()) }

// Fig7Ctx is Fig7 with cancellation (see Fig6Ctx).
func Fig7Ctx(ctx context.Context) (*BreakdownFigure, error) {
	return breakdownFigure(ctx,
		"Figure 7: Normalized execution times for each design point (producer thread)",
		design.FourPoints(), 0)
}

// Fig7Consumer is the consumer-thread companion of Figure 7 — the paper
// omitted it "due to space constraints", noting overall consumer
// performance matched the producer with different component breakdowns.
func Fig7Consumer() (*BreakdownFigure, error) {
	return breakdownFigure(context.Background(),
		"Figure 7 (consumer thread; omitted in the paper for space)",
		design.FourPoints(), 1)
}

// ---- Figure 8 ----

// Fig8Row is one benchmark's dynamic communication-to-application
// instruction ratios.
type Fig8Row struct {
	Benchmark          string
	Producer, Consumer float64
}

// Fig8Result reproduces Figure 8 (ratio of communication to application
// instructions; the paper observes one communication per 5-20 application
// instructions on average).
type Fig8Result struct {
	Rows    []Fig8Row
	Geomean Fig8Row
}

// Fig8 measures communication frequency on the HEAVYWT design (the
// produce/consume instruction builds, as in the paper).
func Fig8() (*Fig8Result, error) { return Fig8Ctx(context.Background()) }

// Fig8Ctx is Fig8 with cancellation (see Fig6Ctx).
func Fig8Ctx(ctx context.Context) (*Fig8Result, error) {
	res := &Fig8Result{Geomean: Fig8Row{Benchmark: "GeoMean"}}
	grid, err := runMatrix(ctx, []design.Config{design.HeavyWTConfig()})
	if err != nil {
		return nil, err
	}
	var gp, gc []float64
	for bi, b := range workloads.All() {
		r := grid[bi][0]
		row := Fig8Row{Benchmark: b.Name, Producer: r.CommRatio(0), Consumer: r.CommRatio(1)}
		res.Rows = append(res.Rows, row)
		gp = append(gp, row.Producer)
		gc = append(gc, row.Consumer)
	}
	res.Geomean.Producer = stats.Geomean(gp)
	res.Geomean.Consumer = stats.Geomean(gc)
	return res, nil
}

// Table renders Figure 8 as text.
func (r *Fig8Result) Table() string {
	t := stats.NewTable("Figure 8: communication : application dynamic instruction ratio",
		"Benchmark", "Producer", "Consumer", "1 comm per N app (prod)", "(cons)")
	for _, row := range r.Rows {
		t.AddRowf(row.Benchmark, row.Producer, row.Consumer,
			perN(row.Producer), perN(row.Consumer))
	}
	t.AddRowf(r.Geomean.Benchmark, r.Geomean.Producer, r.Geomean.Consumer,
		perN(r.Geomean.Producer), perN(r.Geomean.Consumer))
	return t.String()
}

func perN(ratio float64) string {
	if ratio <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f", 1/ratio)
}

// ---- Figure 9 ----

// Fig9Row is one benchmark's loop speedup of HEAVYWT over the
// single-threaded baseline.
type Fig9Row struct {
	Benchmark    string
	SingleCycles uint64
	HeavyCycles  uint64
	Speedup      float64
}

// Fig9Result reproduces Figure 9 (geomean speedup of optimized loops in
// HEAVYWT over single-threaded execution; the paper reports 1.29).
type Fig9Result struct {
	Rows    []Fig9Row
	Geomean float64
}

// Fig9 runs the speedup experiment: each benchmark's single-threaded
// baseline and HEAVYWT run are independent jobs on the worker pool.
func Fig9() (*Fig9Result, error) { return Fig9Ctx(context.Background()) }

// Fig9Ctx is Fig9 with cancellation (see Fig6Ctx).
func Fig9Ctx(ctx context.Context) (*Fig9Result, error) {
	benches := workloads.All()
	heavy := design.HeavyWTConfig()
	jobs := make([]Job, 0, 2*len(benches))
	for _, b := range benches {
		jobs = append(jobs,
			Job{Bench: b.Name, Single: true},
			Job{Bench: b.Name, Config: heavy})
	}
	results := newRunner().Run(ctx, jobs)
	if err := FirstErr(results); err != nil {
		return nil, err
	}
	res := &Fig9Result{}
	var sp []float64
	for bi, b := range benches {
		single, heavyRes := results[2*bi].Res, results[2*bi+1].Res
		row := Fig9Row{
			Benchmark:    b.Name,
			SingleCycles: single.Cycles,
			HeavyCycles:  heavyRes.Cycles,
			Speedup:      float64(single.Cycles) / float64(heavyRes.Cycles),
		}
		res.Rows = append(res.Rows, row)
		sp = append(sp, row.Speedup)
	}
	res.Geomean = stats.Geomean(sp)
	return res, nil
}

// Table renders Figure 9 as text.
func (r *Fig9Result) Table() string {
	t := stats.NewTable("Figure 9: Speedup of optimized loops in HEAVYWT over single-threaded execution",
		"Benchmark", "Single (cycles)", "HEAVYWT (cycles)", "Speedup")
	for _, row := range r.Rows {
		t.AddRowf(row.Benchmark, row.SingleCycles, row.HeavyCycles, row.Speedup)
	}
	t.AddRowf("GeoMean", "", "", r.Geomean)
	return t.String()
}

// ---- Figures 10 and 11 ----

// Fig10 repeats Figure 7 with a 4-CPU-cycle bus (and a 4-cycle HEAVYWT
// interconnect), exposing arbitration backlog on the narrow bus.
func Fig10() (*BreakdownFigure, error) { return Fig10Ctx(context.Background()) }

// Fig10Ctx is Fig10 with cancellation (see Fig6Ctx).
func Fig10Ctx(ctx context.Context) (*BreakdownFigure, error) {
	configs := design.FourPoints()
	for i := range configs {
		configs[i].BusCPB = 4
		configs[i].InterconnectLat = 4
	}
	return breakdownFigure(ctx,
		"Figure 10: Effect of increased transit delay (bus latency = 4 CPU cycles)",
		configs, 0)
}

// Fig11 widens the 4-cycle bus to 128 bytes (a full line per beat),
// restoring most of the lost performance.
func Fig11() (*BreakdownFigure, error) { return Fig11Ctx(context.Background()) }

// Fig11Ctx is Fig11 with cancellation (see Fig6Ctx).
func Fig11Ctx(ctx context.Context) (*BreakdownFigure, error) {
	configs := design.FourPoints()
	for i := range configs {
		configs[i].BusCPB = 4
		configs[i].BusWidth = 128
		configs[i].InterconnectLat = 4
	}
	return breakdownFigure(ctx,
		"Figure 11: Effect of increased interconnect bandwidth (bus width = 128 bytes, latency = 4)",
		configs, 0)
}

// ---- Figure 12 ----

// Fig12Result holds the producer- and consumer-thread breakdowns for the
// SYNCOPTI optimization study.
type Fig12Result struct {
	Producer *BreakdownFigure
	Consumer *BreakdownFigure
}

// Fig12 evaluates the stream cache and queue-size optimizations:
// HEAVYWT vs SYNCOPTI_SC+Q64 vs SYNCOPTI_SC vs SYNCOPTI_Q64 vs SYNCOPTI.
func Fig12() (*Fig12Result, error) { return Fig12Ctx(context.Background()) }

// Fig12Ctx is Fig12 with cancellation (see Fig6Ctx).
func Fig12Ctx(ctx context.Context) (*Fig12Result, error) {
	configs := []design.Config{
		design.HeavyWTConfig(),
		design.SyncOptiSCQ64Config(),
		design.SyncOptiSCConfig(),
		design.SyncOptiQ64Config(),
		design.SyncOptiConfig(),
	}
	prod, err := breakdownFigure(ctx,
		"Figure 12 (producer): effect of streaming cache and queue size", configs, 0)
	if err != nil {
		return nil, err
	}
	cons, err := breakdownFigure(ctx,
		"Figure 12 (consumer): effect of streaming cache and queue size", configs, 1)
	if err != nil {
		return nil, err
	}
	return &Fig12Result{Producer: prod, Consumer: cons}, nil
}

// Table renders both halves of Figure 12.
func (r *Fig12Result) Table() string {
	return r.Producer.Table() + "\n" + r.Consumer.Table()
}
