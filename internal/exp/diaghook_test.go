package exp

import (
	"context"
	"sync"
	"testing"

	"hfstream/internal/sim"
)

// The diagnosis hook is the channel hfexp uses to surface deadlock
// forensics from a concurrent grid; both producer paths — a job failing
// with a *sim.DeadlockError and a job completing with UnquiescedExit —
// must reach it with the job's name attached.
func TestDiagnosisHookReceivesForensics(t *testing.T) {
	var mu sync.Mutex
	got := map[string]string{} // job name -> diagnosis reason
	SetDiagnosisHook(func(job string, d *sim.Diagnosis) {
		mu.Lock()
		defer mu.Unlock()
		got[job] = d.Reason
	})
	defer SetDiagnosisHook(nil)

	jobs := []Job{
		{Bench: "deadlocked"},
		{Bench: "unquiesced"},
		{Bench: "clean"},
	}
	r := &Runner{
		Workers: 2,
		run: func(ctx context.Context, j Job) (*sim.Result, error) {
			switch j.Bench {
			case "deadlocked":
				return nil, &sim.DeadlockError{
					Cycle: 42,
					Diag:  &sim.Diagnosis{Reason: "watchdog"},
				}
			case "unquiesced":
				return &sim.Result{
					UnquiescedExit: true,
					Diagnosis:      &sim.Diagnosis{Reason: "unquiesced"},
				}, nil
			default:
				return &sim.Result{}, nil
			}
		},
	}
	results := r.Run(context.Background(), jobs)
	if len(results) != len(jobs) {
		t.Fatalf("got %d results, want %d", len(results), len(jobs))
	}

	mu.Lock()
	defer mu.Unlock()
	if want := 2; len(got) != want {
		t.Fatalf("hook fired for %d jobs (%v), want %d", len(got), got, want)
	}
	if got[jobs[0].Name()] != "watchdog" {
		t.Errorf("deadlock diagnosis missing or wrong: %v", got)
	}
	if _, ok := got[jobs[1].Name()]; !ok {
		t.Errorf("unquiesced diagnosis missing: %v", got)
	}
	if _, ok := got[jobs[2].Name()]; ok {
		t.Errorf("clean job should not produce a diagnosis: %v", got)
	}
}
