package exp

import (
	"context"
	"fmt"
	"os"
	"path/filepath"

	"hfstream/internal/design"
	"hfstream/internal/sim"
	"hfstream/internal/workloads"
)

// Metrics collection: each (benchmark, design) pair becomes one annotated
// sim.Metrics snapshot, fanned across the worker pool. WriteMetricsDir
// serializes them one file per pair so CI can diff perf trajectories
// numerically against checked-in goldens.

// CollectMetrics runs every (benchmark, config) pair and returns the
// annotated snapshots in input order. benches of nil means every
// benchmark.
func CollectMetrics(ctx context.Context, benches []string, configs []design.Config) ([]*sim.Metrics, error) {
	if benches == nil {
		for _, b := range workloads.All() {
			benches = append(benches, b.Name)
		}
	}
	jobs := make([]Job, 0, len(benches)*len(configs))
	for _, name := range benches {
		if _, err := workloads.ByName(name); err != nil {
			return nil, err
		}
		for _, cfg := range configs {
			jobs = append(jobs, Job{Bench: name, Config: cfg})
		}
	}
	results := newRunner().Run(ctx, jobs)
	if err := FirstErr(results); err != nil {
		return nil, err
	}
	out := make([]*sim.Metrics, len(results))
	for i, r := range results {
		m := r.Res.Metrics()
		m.Benchmark = r.Job.Bench
		m.Design = r.Job.Config.Name()
		out[i] = m
	}
	return out, nil
}

// MetricsFileName names the snapshot file for one (benchmark, design)
// pair, e.g. "bzip2__SYNCOPTI_SC+Q64.json".
func MetricsFileName(bench, designName string) string {
	return fmt.Sprintf("%s__%s.json", bench, designName)
}

// WriteMetricsDir collects metrics for the given benchmarks (nil = all)
// across the standard design points and writes one JSON file per pair
// into dir, creating it if needed. The files are deterministic, so
// regenerating over an unchanged simulator is a no-op diff.
func WriteMetricsDir(ctx context.Context, dir string, benches []string) error {
	ms, err := CollectMetrics(ctx, benches, design.StandardConfigs())
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, m := range ms {
		buf, err := sim.MetricsJSON(m)
		if err != nil {
			return err
		}
		path := filepath.Join(dir, MetricsFileName(m.Benchmark, m.Design))
		if err := os.WriteFile(path, buf, 0o644); err != nil {
			return err
		}
	}
	return nil
}
