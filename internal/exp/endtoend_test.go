package exp

import (
	"reflect"
	"testing"
	"testing/quick"

	"hfstream/fault"
	"hfstream/internal/design"
	"hfstream/internal/dswp"
	"hfstream/internal/interp"
	"hfstream/internal/ir"
	"hfstream/internal/isa"
	"hfstream/internal/lower"
	"hfstream/internal/mem"
	"hfstream/internal/sim"
)

// genLoop builds a random valid counted loop (a small mix of ALU chains,
// accumulators and carried references over an input array) and returns it
// with its regions.
func genLoop(seed uint32, n int) (*ir.Loop, mem.Region, mem.Region) {
	a := mem.NewAllocator(0x20000, 128)
	in := a.Alloc("in", uint64(n*8))
	out := a.Alloc("out", 1024)

	rng := seed | 1
	next := func(m int) int {
		rng ^= rng << 13
		rng ^= rng >> 17
		rng ^= rng << 5
		return int(rng) & 0x7fffffff % m
	}

	l := ir.NewLoop("e2e")
	idx := l.Counter(-1, 1)
	cond := l.Op(isa.CmpLT, ir.V(idx), ir.C(int64(n-1)))
	l.SetExit(cond)
	off := l.Op(isa.ShlI, ir.V(idx), ir.C(3))
	addr := l.Op(isa.AddI, ir.V(off), ir.C(int64(in.Base)))
	v := l.Load(&in, ir.V(addr), 0)

	pool := []*ir.Node{v, off}
	ops := []isa.Op{isa.Add, isa.Sub, isa.Xor, isa.And, isa.Or, isa.Mul}
	k := 3 + next(8)
	for i := 0; i < k; i++ {
		op := ops[next(len(ops))]
		x := pool[next(len(pool))]
		var node *ir.Node
		switch next(3) {
		case 0:
			node = l.Op(op, ir.V(x), ir.V(pool[next(len(pool))]))
		case 1:
			node = l.Acc(op, ir.V(x), int64(next(100)))
		default:
			node = l.Op(op, ir.V(x), ir.Carried(pool[next(len(pool))], int64(next(50))))
		}
		pool = append(pool, node)
	}
	for i := 0; i < 2 && i < len(pool); i++ {
		l.Store(&out, ir.C(int64(out.Base)), int64(i*8), ir.V(pool[len(pool)-1-i]))
	}
	return l, in, out
}

func fillInput(img *mem.Memory, in mem.Region, n int) {
	for i := 0; i < n; i++ {
		img.Write8(in.Base+uint64(i*8), uint64(i*i*2654435761+7))
	}
}

// TestRandomLoopsSimMatchesOracle is the end-to-end correctness property:
// for random loops, the cycle-level machine (every mechanism: coherence,
// OzQ, forwarding, counters, stream cache, SA) finishes with exactly the
// memory image the timing-free interpreter computes — on a software-queue
// design, SYNCOPTI with stream cache, and HEAVYWT.
func TestRandomLoopsSimMatchesOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("runs many simulations")
	}
	configs := []design.Config{
		design.ExistingConfig(),
		design.SyncOptiSCQ64Config(),
		design.HeavyWTConfig(),
	}
	f := func(seed uint32) bool {
		const n = 30
		l, in, out := genLoop(seed, n)
		if err := l.Validate(); err != nil {
			return false
		}
		res, err := dswp.Partition(l)
		if err != nil {
			return true // single-SCC loops are legitimately unpartitionable
		}
		single, err := dswp.Single(l)
		if err != nil {
			return false
		}
		oracle := mem.New()
		fillInput(oracle, in, n)
		if err := interp.New(oracle, single).Run(0); err != nil {
			return false
		}

		for _, cfg := range configs {
			progs := res.Threads
			if cfg.SoftwareQueues() {
				var lowered []*isa.Program
				for _, p := range progs {
					lp, err := lower.Lower(p, cfg.Layout())
					if err != nil {
						t.Logf("seed %d/%s: lower: %v", seed, cfg.Name(), err)
						return false
					}
					lowered = append(lowered, lp)
				}
				progs = lowered
			}
			img := mem.New()
			fillInput(img, in, n)
			simCfg := cfg.SimConfig()
			simCfg.Preload = []mem.Region{in}
			var threads []sim.Thread
			for _, p := range progs {
				threads = append(threads, sim.Thread{Prog: p})
			}
			if _, err := sim.Run(simCfg, img, threads); err != nil {
				t.Logf("seed %d/%s: sim: %v", seed, cfg.Name(), err)
				return false
			}
			for o := uint64(0); o < 16; o += 8 {
				if img.Read8(out.Base+o) != oracle.Read8(out.Base+o) {
					t.Logf("seed %d/%s: out+%d sim %#x oracle %#x",
						seed, cfg.Name(), o, img.Read8(out.Base+o), oracle.Read8(out.Base+o))
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestRandomLoopsFastForwardDifferential is the event-driven scheduler's
// randomized referee: for random loops (with and without random delay
// faults layered on top), the fast-forwarding kernel must produce a
// Result identical field-for-field to the brute-force per-cycle scan
// (DisableFastForward), not just matching outputs. The fixed golden
// snapshots prove this for the paper benchmarks; this extends the proof
// to chaos workloads the goldens never see.
func TestRandomLoopsFastForwardDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("runs many simulations")
	}
	configs := []design.Config{
		design.ExistingConfig(),
		design.SyncOptiSCQ64Config(),
		design.HeavyWTConfig(),
	}
	f := func(seed uint32) bool {
		const n = 30
		l, in, out := genLoop(seed, n)
		if err := l.Validate(); err != nil {
			return false
		}
		res, err := dswp.Partition(l)
		if err != nil {
			return true // single-SCC loops are legitimately unpartitionable
		}
		for _, cfg := range configs {
			progs := res.Threads
			if cfg.SoftwareQueues() {
				var lowered []*isa.Program
				for _, p := range progs {
					lp, err := lower.Lower(p, cfg.Layout())
					if err != nil {
						t.Logf("seed %d/%s: lower: %v", seed, cfg.Name(), err)
						return false
					}
					lowered = append(lowered, lp)
				}
				progs = lowered
			}
			// withFaults=true layers a seeded random-delay plan on top, so
			// the differential also covers the injector's wake scheduling.
			for _, withFaults := range []bool{false, true} {
				run := func(noFF bool) (*sim.Result, *mem.Memory, error) {
					img := mem.New()
					fillInput(img, in, n)
					simCfg := cfg.SimConfig()
					simCfg.Preload = []mem.Region{in}
					simCfg.DisableFastForward = noFF
					if withFaults {
						// Injectors carry per-run state: fresh one per run,
						// same plan, so both modes see identical faults.
						simCfg.Faults = fault.RandomDelay(int64(seed), 3).Injector()
					}
					var threads []sim.Thread
					for _, p := range progs {
						threads = append(threads, sim.Thread{Prog: p})
					}
					r, err := sim.Run(simCfg, img, threads)
					return r, img, err
				}
				ff, ffImg, errFF := run(false)
				scan, scanImg, errScan := run(true)
				if (errFF == nil) != (errScan == nil) {
					t.Logf("seed %d/%s faults=%v: error mismatch: ff=%v scan=%v",
						seed, cfg.Name(), withFaults, errFF, errScan)
					return false
				}
				if errFF != nil {
					if errFF.Error() != errScan.Error() {
						t.Logf("seed %d/%s faults=%v: errors differ:\nff:   %v\nscan: %v",
							seed, cfg.Name(), withFaults, errFF, errScan)
						return false
					}
					continue
				}
				if !reflect.DeepEqual(ff, scan) {
					t.Logf("seed %d/%s faults=%v: results differ: ff cycles=%d scan cycles=%d",
						seed, cfg.Name(), withFaults, ff.Cycles, scan.Cycles)
					return false
				}
				for o := uint64(0); o < 16; o += 8 {
					a := ffImg.Read8(out.Base + o)
					b := scanImg.Read8(out.Base + o)
					if a != b {
						t.Logf("seed %d/%s faults=%v: out+%d ff %#x scan %#x",
							seed, cfg.Name(), withFaults, o, a, b)
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}
