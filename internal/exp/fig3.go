package exp

import (
	"fmt"

	"hfstream/internal/stats"
)

// Fig3Row is one scenario of the paper's Figure 3 pipelining illustration.
type Fig3Row struct {
	Scenario   string
	CommOp     int     // per-thread COMM-OP delay (cycles)
	Transit    int     // one-way transit delay (cycles)
	Buffers    int     // inter-thread buffer locations
	Iterations float64 // completed in the window (paper's diagram: 2 / 7 / 14)
	MinBuffers int     // buffers needed to sustain peak throughput
}

// Fig3Result reproduces Figure 3: with a single shared buffer every value
// pays two transit delays; a queue overlaps them; halving COMM-OP delay
// doubles throughput again (2 / 7 / 14 iterations in a 150-cycle window).
type Fig3Result struct {
	Window int
	Rows   []Fig3Row
}

// Fig3 evaluates the analytic pipeline model from Section 2 over the
// paper's 150-cycle window with 20-cycle COMM-OP and transit delays.
func Fig3() *Fig3Result {
	const window, transit = 150, 20
	r := &Fig3Result{Window: window}
	r.Rows = append(r.Rows,
		fig3Scenario("(a) single buffer", 20, transit, 1, window),
		fig3Scenario("(b) queue of buffers", 20, transit, 4, window),
		fig3Scenario("(c) queue + reduced COMM-OP", 10, transit, 6, window),
	)
	return r
}

// fig3Scenario computes steady-state iterations completed in the window.
func fig3Scenario(name string, commOp, transit, buffers, window int) Fig3Row {
	var perIter int
	if buffers == 1 {
		// COMM-OP of A and B plus two transit delays per value: produce,
		// data transit, consume, ack transit.
		perIter = 2*commOp + 2*transit
	} else {
		// Pipelined: only the COMM-OP delay recurs, provided the queue is
		// deep enough to cover the round trip.
		perIter = commOp
	}
	iters := float64(window) / float64(perIter)
	minBuf := 1
	if buffers > 1 {
		// Buffers needed to cover COMM-OP + round-trip transit.
		minBuf = (2*transit + 2*commOp) / commOp
	}
	return Fig3Row{
		Scenario: name, CommOp: commOp, Transit: transit,
		Buffers: buffers, Iterations: iters, MinBuffers: minBuf,
	}
}

// Table renders the figure as text.
func (r *Fig3Result) Table() string {
	t := stats.NewTable(
		fmt.Sprintf("Figure 3: transit vs COMM-OP delay (window = %d cycles)", r.Window),
		"Scenario", "COMM-OP", "Transit", "Buffers", "Iterations", "MinBuffers")
	for _, row := range r.Rows {
		t.AddRowf(row.Scenario, row.CommOp, row.Transit, row.Buffers, row.Iterations, row.MinBuffers)
	}
	return t.String()
}
