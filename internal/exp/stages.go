package exp

import (
	"context"
	"fmt"

	"hfstream/internal/design"
	"hfstream/internal/dswp"
	"hfstream/internal/isa"
	"hfstream/internal/lower"
	"hfstream/internal/mem"
	"hfstream/internal/memsys"
	"hfstream/internal/sim"
	"hfstream/internal/stats"
	"hfstream/internal/workloads"
)

// StageRow reports one benchmark's cycle counts per pipeline depth.
type StageRow struct {
	Benchmark string
	// Cycles[d] is the runtime with d+1 cores (index 0 = single).
	Cycles []uint64
	// Supported marks depths the kernel's SCC structure allows.
	Supported []bool
}

// StagesResult extends the paper's dual-core evaluation: DSWP depth 1-3
// on HEAVYWT machines with matching core counts (the paper argues its
// pairwise conclusions carry to larger-scale CMPs).
type StagesResult struct {
	Rows []StageRow
}

// AblationStages partitions each IR benchmark into 1, 2 and 3 pipeline
// stages and runs each on a HEAVYWT machine with that many cores.
// Kernels whose dependence structure cannot fill three stages are marked
// unsupported rather than failed.
func AblationStages() (*StagesResult, error) {
	res := &StagesResult{}
	for _, b := range workloads.All() {
		if b.Loop == nil {
			continue // hand-partitioned nested loop
		}
		row := StageRow{Benchmark: b.Name, Cycles: make([]uint64, 3), Supported: make([]bool, 3)}

		single, err := b.Single()
		if err != nil {
			return nil, err
		}
		c, err := runThreads(b, []sim.Thread{{Prog: single}})
		if err != nil {
			return nil, fmt.Errorf("exp: %s/1-stage: %w", b.Name, err)
		}
		row.Cycles[0], row.Supported[0] = c, true

		for _, stages := range []int{2, 3} {
			pr, err := dswp.PartitionN(b.Loop, stages)
			if err != nil {
				continue // structurally unsupported
			}
			var ths []sim.Thread
			for _, p := range pr.Threads {
				ths = append(ths, sim.Thread{Prog: p})
			}
			c, err := runThreads(b, ths)
			if err != nil {
				return nil, fmt.Errorf("exp: %s/%d-stage: %w", b.Name, stages, err)
			}
			row.Cycles[stages-1], row.Supported[stages-1] = c, true
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// runThreads executes prepared threads for the benchmark on a HEAVYWT
// machine with len(threads) cores, verifying the output.
func runThreads(b *workloads.Benchmark, threads []sim.Thread) (uint64, error) {
	img := mem.New()
	b.Setup(img)
	cfg := design.HeavyWTConfig().SimConfig()
	cfg.Preload = b.InputRegions
	r, err := sim.Run(cfg, img, threads)
	if err != nil {
		return 0, err
	}
	if err := CheckOutput(b, img); err != nil {
		return 0, err
	}
	return r.Cycles, nil
}

// RunStaged partitions b into the given number of pipeline stages with
// DSWP and runs it on the design point with that many cores, verifying
// the output against the oracle. Software-queue designs are lowered; the
// partition's queue routes steer SYNCOPTI's memory-side streaming.
func RunStaged(b *workloads.Benchmark, cfg design.Config, stages int) (*sim.Result, error) {
	return RunStagedOpts(context.Background(), b, cfg, stages, RunOpts{})
}

// RunStagedOpts is RunStaged with cancellation and observability options
// (see RunBenchmarkOpts).
func RunStagedOpts(ctx context.Context, b *workloads.Benchmark, cfg design.Config, stages int, opts RunOpts) (*sim.Result, error) {
	if b.Loop == nil {
		return nil, fmt.Errorf("exp: %s is hand-partitioned; staged runs need an IR kernel", b.Name)
	}
	pr, err := dswp.PartitionN(b.Loop, stages)
	if err != nil {
		return nil, fmt.Errorf("exp: %s: %w", b.Name, err)
	}
	progs := pr.Threads
	if cfg.SoftwareQueues() {
		lowered := make([]*isa.Program, len(progs))
		for i, p := range progs {
			lowered[i], err = lower.Lower(p, cfg.Layout())
			if err != nil {
				return nil, fmt.Errorf("exp: %s/%s: %w", b.Name, cfg.Name(), err)
			}
		}
		progs = lowered
	}
	simCfg := cfg.SimConfig()
	simCfg.Preload = b.InputRegions
	opts.Apply(&simCfg)
	simCfg.Cancel = ctx.Done()
	for _, rt := range pr.Routes {
		simCfg.Mem.QueueRoutes = append(simCfg.Mem.QueueRoutes,
			memsys.QueueRoute{Producer: rt.Producer, Consumer: rt.Consumer})
	}
	img := mem.New()
	b.Setup(img)
	var ths []sim.Thread
	for _, p := range progs {
		ths = append(ths, sim.Thread{Prog: p})
	}
	r, err := sim.Run(simCfg, img, ths)
	if err != nil {
		return nil, fmt.Errorf("exp: %s/%s/%d-stage: %w", b.Name, cfg.Name(), stages, err)
	}
	if err := CheckOutput(b, img); err != nil {
		return nil, fmt.Errorf("exp: %s/%s/%d-stage: %w", b.Name, cfg.Name(), stages, err)
	}
	return r, nil
}

// RunParallel partitions b into `workers` replicated parallel-stage
// workers plus a merger (PS-DSWP) and runs it on the design point with
// workers+1 cores, verifying the output against the oracle.
func RunParallel(b *workloads.Benchmark, cfg design.Config, workers int) (*sim.Result, error) {
	return RunParallelOpts(context.Background(), b, cfg, workers, RunOpts{})
}

// RunParallelOpts is RunParallel with cancellation and observability
// options. The partition emits only SPSC lanes (one per worker per
// crossing value), so every design point runs it; the lanes' routes are
// handed to the fabric for the designs that need explicit routing.
func RunParallelOpts(ctx context.Context, b *workloads.Benchmark, cfg design.Config, workers int, opts RunOpts) (*sim.Result, error) {
	if b.Loop == nil {
		return nil, fmt.Errorf("exp: %s is hand-partitioned; parallel-stage runs need an IR kernel", b.Name)
	}
	pr, err := dswp.PartitionParallel(b.Loop, workers)
	if err != nil {
		return nil, fmt.Errorf("exp: %s: %w", b.Name, err)
	}
	progs := pr.Threads
	if cfg.SoftwareQueues() {
		lowered := make([]*isa.Program, len(progs))
		for i, p := range progs {
			lowered[i], err = lower.Lower(p, cfg.Layout())
			if err != nil {
				return nil, fmt.Errorf("exp: %s/%s: %w", b.Name, cfg.Name(), err)
			}
		}
		progs = lowered
	}
	simCfg := cfg.SimConfig()
	simCfg.Preload = b.InputRegions
	opts.Apply(&simCfg)
	simCfg.Cancel = ctx.Done()
	for _, rt := range pr.Routes {
		simCfg.Mem.QueueRoutes = append(simCfg.Mem.QueueRoutes,
			memsys.QueueRoute{Producer: rt.Producer, Consumer: rt.Consumer})
	}
	img := mem.New()
	b.Setup(img)
	var ths []sim.Thread
	for _, p := range progs {
		ths = append(ths, sim.Thread{Prog: p})
	}
	r, err := sim.Run(simCfg, img, ths)
	if err != nil {
		return nil, fmt.Errorf("exp: %s/%s/%d-worker: %w", b.Name, cfg.Name(), workers, err)
	}
	if err := CheckOutput(b, img); err != nil {
		return nil, fmt.Errorf("exp: %s/%s/%d-worker: %w", b.Name, cfg.Name(), workers, err)
	}
	return r, nil
}

// Table renders the pipeline-depth comparison.
func (r *StagesResult) Table() string {
	t := stats.NewTable(
		"Ablation: DSWP pipeline depth on HEAVYWT (cycles; speedup vs 1 core)",
		"Benchmark", "1 core", "2 cores", "3 cores")
	for _, row := range r.Rows {
		cells := []interface{}{row.Benchmark}
		for d := 0; d < 3; d++ {
			if !row.Supported[d] {
				cells = append(cells, "n/a")
				continue
			}
			if d == 0 {
				cells = append(cells, fmt.Sprintf("%d", row.Cycles[0]))
			} else {
				cells = append(cells, fmt.Sprintf("%d (%.2fx)", row.Cycles[d],
					float64(row.Cycles[0])/float64(row.Cycles[d])))
			}
		}
		t.AddRowf(cells...)
	}
	return t.String()
}
