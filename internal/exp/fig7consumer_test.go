package exp

import "testing"

// TestFig7ConsumerMatchesProducerOverall reproduces the paper's remark:
// "the overall performance of the consumer core was the same as for the
// producer, except that its component breakdowns differed".
func TestFig7ConsumerMatchesProducerOverall(t *testing.T) {
	if testing.Short() {
		t.Skip("full matrix")
	}
	prod, err := Fig7()
	if err != nil {
		t.Fatal(err)
	}
	cons, err := Fig7Consumer()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"SYNCOPTI", "EXISTING"} {
		p, c := prod.NormTotal(name), cons.NormTotal(name)
		// Both cores finish the pipeline together, so totals track within
		// a modest band even though their breakdowns differ.
		if ratio := c / p; ratio < 0.75 || ratio > 1.33 {
			t.Errorf("%s: consumer/producer norm ratio %.3f, want near 1", name, ratio)
		}
	}
}
