package exp

import (
	"context"
	"fmt"

	"hfstream/internal/design"
	"hfstream/internal/stats"
	"hfstream/internal/workloads"
)

// The ablation studies cover design-space axes the paper discusses but
// does not plot: queue layout density (§4.3 mentions QLU 1 results were
// omitted), bus pipelining (§3.3), register-mapped queues (§3.1.3), the
// centralized dedicated store (§3.5.2), stream-cache sizing (§5) and the
// SYNCOPTI probe timeout (§4.2).

// AblationRow is one benchmark's normalized execution times across the
// ablation's variants.
type AblationRow struct {
	Benchmark string
	Values    []float64 // normalized to the first variant
}

// AblationResult is a generic multi-variant comparison.
type AblationResult struct {
	Title    string
	Variants []string
	Rows     []AblationRow
	Geomean  []float64
}

// Table renders the ablation as text.
func (r *AblationResult) Table() string {
	hdr := append([]string{"Benchmark"}, r.Variants...)
	t := stats.NewTable(r.Title, hdr...)
	for _, row := range r.Rows {
		cells := []interface{}{row.Benchmark}
		for _, v := range row.Values {
			cells = append(cells, v)
		}
		t.AddRowf(cells...)
	}
	cells := []interface{}{"GeoMean"}
	for _, v := range r.Geomean {
		cells = append(cells, v)
	}
	t.AddRowf(cells...)
	return t.String()
}

// Value returns the geomean for the named variant (0 if unknown).
func (r *AblationResult) Value(variant string) float64 {
	for i, v := range r.Variants {
		if v == variant {
			return r.Geomean[i]
		}
	}
	return 0
}

// ablate runs every benchmark over the variants on the worker pool,
// normalizing each row to the first variant's cycle count.
func ablate(title string, variants []string, configs []design.Config) (*AblationResult, error) {
	if len(variants) != len(configs) {
		return nil, fmt.Errorf("exp: %d variants vs %d configs", len(variants), len(configs))
	}
	grid, err := runMatrix(context.Background(), configs)
	if err != nil {
		return nil, err
	}
	res := &AblationResult{Title: title, Variants: variants}
	sums := make([][]float64, len(configs))
	for bi, b := range workloads.All() {
		row := AblationRow{Benchmark: b.Name}
		var base float64
		for ci := range configs {
			total := float64(grid[bi][ci].Cycles)
			if ci == 0 {
				base = total
			}
			norm := total / base
			row.Values = append(row.Values, norm)
			sums[ci] = append(sums[ci], norm)
		}
		res.Rows = append(res.Rows, row)
	}
	for ci := range configs {
		res.Geomean = append(res.Geomean, stats.Geomean(sums[ci]))
	}
	return res, nil
}

// AblationQLU compares software queues with one queue entry per line
// (no false sharing, no spatial locality) against the default dense
// layout. The paper ran this and reported QLU 8 "uniformly better",
// omitting the numbers; this regenerates them.
func AblationQLU() (*AblationResult, error) {
	qlu8 := design.ExistingConfig()
	qlu1 := design.ExistingConfig()
	qlu1.Label = "EXISTING_QLU1"
	qlu1.QLU = 1
	qlu1.QueueDepth = 16 // keep the region cache-resident at 128B slots
	qlu8b := qlu8
	qlu8b.Label = "EXISTING_QLU8"
	return ablate(
		"Ablation: queue layout unit for software queues (paper §4.3, results omitted there)",
		[]string{"QLU8", "QLU1"},
		[]design.Config{qlu8b, qlu1})
}

// AblationBusPipelining compares the baseline 3-stage pipelined bus with
// a non-pipelined bus of the same latency and width (paper §3.3).
func AblationBusPipelining() (*AblationResult, error) {
	piped := design.SyncOptiConfig()
	unpiped := design.SyncOptiConfig()
	unpiped.Label = "SYNCOPTI_UNPIPED"
	unpiped.BusPipelined = false
	unpiped.BusCPB = 4
	piped4 := design.SyncOptiConfig()
	piped4.Label = "SYNCOPTI_CPB4"
	piped4.BusCPB = 4
	return ablate(
		"Ablation: bus pipelining (paper §3.3) on SYNCOPTI",
		[]string{"pipelined cpb1", "pipelined cpb4", "unpipelined cpb4"},
		[]design.Config{piped, piped4, unpiped})
}

// AblationRegMapped compares HEAVYWT's produce/consume instructions with
// register-mapped queues (§3.1.3): folding queue access into the
// defining/using instructions helps exactly the resource-bound loops.
func AblationRegMapped() (*AblationResult, error) {
	return ablate(
		"Ablation: register-mapped queues (paper §3.1.3) vs produce/consume instructions",
		[]string{"HEAVYWT", "REGMAPPED"},
		[]design.Config{design.HeavyWTConfig(), design.RegMappedConfig()})
}

// AblationCentralizedStore compares the distributed dedicated store with
// a centralized one (§3.5.2): the central structure is farther from the
// consuming core, raising consume-to-use latency.
func AblationCentralizedStore() (*AblationResult, error) {
	return ablate(
		"Ablation: distributed vs centralized dedicated store (paper §3.5.2)",
		[]string{"distributed (1cyc)", "central (4cyc)", "central (8cyc)"},
		[]design.Config{
			design.HeavyWTConfig(),
			design.CentralizedStoreConfig(4),
			design.CentralizedStoreConfig(8),
		})
}

// AblationStreamCacheSize sweeps the SYNCOPTI stream cache capacity
// around the paper's 1 KB (64-entry) choice.
func AblationStreamCacheSize() (*AblationResult, error) {
	variants := []string{"none", "8", "16", "32", "64 (paper)", "128"}
	var configs []design.Config
	for _, entries := range []int{0, 8, 16, 32, 64, 128} {
		c := design.SyncOptiQ64Config()
		c.Label = fmt.Sprintf("SYNCOPTI_SC%d", entries)
		c.StreamCacheEntries = entries
		configs = append(configs, c)
	}
	return ablate(
		"Ablation: stream cache capacity (entries) on SYNCOPTI_Q64",
		variants, configs)
}

// AblationNetQueue evaluates §3.5.3's network-backed queues: with the
// interconnect's hop buffers as the only queue storage, decoupling is
// proportional to core separation. Nearby cores (1 hop = 4 buffers)
// starve bursty pipelines; distant cores approach dedicated-store
// performance while paying transit latency the streams tolerate anyway.
func AblationNetQueue() (*AblationResult, error) {
	variants := []string{"HEAVYWT (32q/1cyc)", "1 hop", "2 hops", "4 hops", "8 hops"}
	configs := []design.Config{design.HeavyWTConfig()}
	for _, hops := range []int{1, 2, 4, 8} {
		configs = append(configs, design.NetQueueConfig(hops))
	}
	return ablate(
		"Ablation: network-backed queues (paper §3.5.3) — buffering scales with core separation",
		variants, configs)
}

// AblationProbeTimeout sweeps the consume probe timeout that elicits
// partial-line flushes (§4.2 stream-termination handling).
func AblationProbeTimeout() (*AblationResult, error) {
	variants := []string{"25", "50 (default)", "150", "400"}
	var configs []design.Config
	for _, to := range []int{25, 50, 150, 400} {
		c := design.SyncOptiConfig()
		c.Label = fmt.Sprintf("SYNCOPTI_T%d", to)
		c.ProbeTimeout = to
		configs = append(configs, c)
	}
	return ablate(
		"Ablation: SYNCOPTI partial-line probe timeout (cycles)",
		variants, configs)
}
