package exp

import (
	"fmt"
	"strings"

	"hfstream/internal/stats"
)

// bucketGlyphs maps each breakdown bucket to the character filling its
// bar segment in the ASCII charts.
var bucketGlyphs = [stats.NumBuckets]byte{
	stats.PreL2:  '#',
	stats.L2:     '=',
	stats.Bus:    '%',
	stats.L3:     '+',
	stats.Mem:    '@',
	stats.PostL2: '*',
}

// chartScale is the bar length, in characters, of a normalized time of 1.0.
const chartScale = 30

// Chart renders the figure as horizontal ASCII stacked bars, the closest
// text analogue of the paper's stacked-bar plots.
func (f *BreakdownFigure) Chart() string {
	var sb strings.Builder
	sb.WriteString(f.Title + "\n")
	sb.WriteString("legend: ")
	for b := stats.Bucket(0); b < stats.NumBuckets; b++ {
		fmt.Fprintf(&sb, "%c=%s ", bucketGlyphs[b], b)
	}
	sb.WriteString("  (|---| = 1.0x baseline)\n")

	designWidth := 0
	for _, row := range f.Rows {
		for _, bar := range row.Bars {
			if len(bar.Design) > designWidth {
				designWidth = len(bar.Design)
			}
		}
	}
	for _, row := range f.Rows {
		fmt.Fprintf(&sb, "%s\n", row.Benchmark)
		for _, bar := range row.Bars {
			fmt.Fprintf(&sb, "  %-*s |%s %.2fx\n", designWidth, bar.Design, renderBar(bar), bar.Total)
		}
	}
	sb.WriteString("geomean\n")
	for _, g := range f.Geomean {
		n := int(g.Total*chartScale + 0.5)
		fmt.Fprintf(&sb, "  %-*s |%s %.2fx\n", designWidth, g.Design, strings.Repeat("#", n), g.Total)
	}
	return sb.String()
}

// renderBar converts one stacked bar into glyph segments, largest-
// remainder rounded so the total length tracks the normalized time.
func renderBar(bar BreakdownBar) string {
	total := int(bar.Total*chartScale + 0.5)
	if total <= 0 {
		return ""
	}
	// Initial allocation by truncation.
	segs := make([]int, stats.NumBuckets)
	used := 0
	fracs := make([]float64, stats.NumBuckets)
	for b := range segs {
		exact := bar.Parts[b] * chartScale
		segs[b] = int(exact)
		fracs[b] = exact - float64(segs[b])
		used += segs[b]
	}
	// Distribute the remainder to the largest fractional parts.
	for used < total {
		best := 0
		for b := 1; b < len(fracs); b++ {
			if fracs[b] > fracs[best] {
				best = b
			}
		}
		segs[best]++
		fracs[best] = -1
		used++
	}
	var sb strings.Builder
	for b, n := range segs {
		for i := 0; i < n; i++ {
			sb.WriteByte(bucketGlyphs[b])
		}
	}
	return sb.String()
}
