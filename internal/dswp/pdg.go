// Package dswp implements Decoupled Software Pipelining (Ottoni et al.,
// MICRO 2005), the parallelization substrate the paper's workloads were
// built with: it constructs the program dependence graph of a loop,
// collapses strongly connected components, partitions the SCC DAG into
// pipeline stages, and generates thread programs with produce/consume
// instructions on the cross-stage dependences.
package dswp

import (
	"sort"

	"hfstream/internal/ir"
	"hfstream/internal/isa"
)

// pdg is the program dependence graph over loop body nodes: data
// dependences (including loop-carried) plus conservative memory
// dependences that force same-region conflicting accesses into one SCC.
type pdg struct {
	loop  *ir.Loop
	nodes []*ir.Node
	succ  map[int][]int
}

func buildPDG(l *ir.Loop) *pdg {
	g := &pdg{loop: l, nodes: l.Body, succ: make(map[int][]int)}
	add := func(from, to int) {
		if from == to {
			return
		}
		for _, s := range g.succ[from] {
			if s == to {
				return
			}
		}
		g.succ[from] = append(g.succ[from], to)
	}
	// Data dependences.
	for _, n := range l.Body {
		for _, a := range n.Args {
			if a.Node != nil {
				add(a.Node.ID, n.ID)
			}
		}
	}
	// Memory dependences: conflicting accesses (at least one store) to the
	// same region are tied into a cycle so they stay in one thread. This
	// is conservative but matches how kernels are authored (thread-crossing
	// data flows through explicit dependences, not through memory).
	byRegion := map[string][]*ir.Node{}
	for _, n := range l.Body {
		if n.Region != nil {
			byRegion[n.Region.Name] = append(byRegion[n.Region.Name], n)
		}
	}
	for _, accs := range byRegion {
		hasStore := false
		for _, n := range accs {
			if n.Op == isa.St {
				hasStore = true
				break
			}
		}
		if !hasStore {
			continue
		}
		for i := 0; i < len(accs); i++ {
			for j := i + 1; j < len(accs); j++ {
				add(accs[i].ID, accs[j].ID)
				add(accs[j].ID, accs[i].ID)
			}
		}
	}
	return g
}

// sccs returns the strongly connected components in topological order of
// the condensation (every edge goes from an earlier to a later SCC).
func (g *pdg) sccs() [][]int {
	index := map[int]int{}
	low := map[int]int{}
	onStack := map[int]bool{}
	var stack []int
	var comps [][]int
	counter := 0

	var strongconnect func(v int)
	strongconnect = func(v int) {
		counter++
		index[v] = counter
		low[v] = counter
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range g.succ[v] {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var comp []int
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			sort.Ints(comp)
			comps = append(comps, comp)
		}
	}
	for _, n := range g.nodes {
		if _, seen := index[n.ID]; !seen {
			strongconnect(n.ID)
		}
	}
	// Tarjan emits SCCs in reverse topological order; reverse them.
	out := make([][]int, 0, len(comps))
	for i := len(comps) - 1; i >= 0; i-- {
		out = append(out, comps[i])
	}
	return sortByLevel(out, g)
}

// sortByLevel refines the topological order of the condensation by ASAP
// level (longest path from a source SCC), so that prefix cuts of the
// order correspond to natural pipeline stages: sources first, sinks
// (accumulators, stores) last. Ties break on smallest node ID, keeping
// the order deterministic.
func sortByLevel(comps [][]int, g *pdg) [][]int {
	compOf := map[int]int{}
	for ci, comp := range comps {
		for _, id := range comp {
			compOf[id] = ci
		}
	}
	level := make([]int, len(comps))
	// comps is already topological, so one forward pass suffices.
	for ci, comp := range comps {
		for _, id := range comp {
			for _, succ := range g.succ[id] {
				sc := compOf[succ]
				if sc != ci && level[ci]+1 > level[sc] {
					level[sc] = level[ci] + 1
				}
			}
		}
	}
	idx := make([]int, len(comps))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		if level[idx[a]] != level[idx[b]] {
			return level[idx[a]] < level[idx[b]]
		}
		return comps[idx[a]][0] < comps[idx[b]][0]
	})
	out := make([][]int, 0, len(comps))
	for _, i := range idx {
		out = append(out, comps[i])
	}
	return out
}
