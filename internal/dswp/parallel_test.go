package dswp

import (
	"testing"

	"hfstream/internal/interp"
	"hfstream/internal/ir"
	"hfstream/internal/isa"
	"hfstream/internal/mem"
)

// Parallel-stage partitions must be bit-equivalent to the sequential
// loop for every worker count: the merger reconstructs iteration order
// from the round-robin lanes.
func TestPartitionParallelMatchesSingle(t *testing.T) {
	const n = 61 // deliberately not a multiple of any worker count
	for workers := 2; workers <= 5; workers++ {
		l, in, out := buildCounted(n)
		res, err := PartitionParallel(l, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !res.Parallel || res.Workers != workers || res.Stages != workers+1 {
			t.Fatalf("workers=%d: result shape %+v", workers, res)
		}
		if len(res.Threads) != workers+1 {
			t.Fatalf("workers=%d: %d threads", workers, len(res.Threads))
		}
		if res.QueueCount%workers != 0 {
			t.Fatalf("workers=%d: queue count %d not a multiple of the worker count", workers, res.QueueCount)
		}
		for _, r := range res.Routes {
			if r.Consumer != workers {
				t.Fatalf("workers=%d: route %+v does not target the merger", workers, r)
			}
			if r.Producer < 0 || r.Producer >= workers {
				t.Fatalf("workers=%d: route %+v has no worker producer", workers, r)
			}
		}
		for _, th := range res.Threads {
			if err := th.Validate(64); err != nil {
				t.Fatalf("workers=%d: generated program invalid: %v", workers, err)
			}
		}

		single, err := Single(l)
		if err != nil {
			t.Fatal(err)
		}
		img1 := setupImage(in, n)
		if err := interp.New(img1, single).Run(0); err != nil {
			t.Fatalf("single: %v", err)
		}
		img2 := setupImage(in, n)
		if err := interp.New(img2, res.Threads...).Run(0); err != nil {
			t.Fatalf("workers=%d: parallel run: %v", workers, err)
		}
		if got, want := img2.Read8(out.Base), img1.Read8(out.Base); got != want {
			t.Fatalf("workers=%d: parallel %d != single %d", workers, got, want)
		}
		if img1.Read8(out.Base) == 0 {
			t.Fatal("suspicious zero result")
		}
	}
}

// Fewer iterations than workers: late workers never get a turn but must
// still halt, and the merger must still see every produced value.
func TestPartitionParallelFewIterations(t *testing.T) {
	const n = 3
	l, in, out := buildCounted(n)
	res, err := PartitionParallel(l, 5)
	if err != nil {
		t.Fatal(err)
	}
	single, err := Single(l)
	if err != nil {
		t.Fatal(err)
	}
	img1 := setupImage(in, n)
	if err := interp.New(img1, single).Run(0); err != nil {
		t.Fatal(err)
	}
	img2 := setupImage(in, n)
	if err := interp.New(img2, res.Threads...).Run(0); err != nil {
		t.Fatal(err)
	}
	if got, want := img2.Read8(out.Base), img1.Read8(out.Base); got != want {
		t.Fatalf("parallel %d != single %d", got, want)
	}
}

// A loop whose exit condition chases memory cannot replicate its control
// slice across workers.
func TestPartitionParallelRejectsMemorySlice(t *testing.T) {
	a := mem.NewAllocator(0x10000, 128)
	pool := a.Alloc("pool", 64*128)
	l := ir.NewLoop("chase")
	ptr := l.Load(&pool, ir.C(0), 0)
	ptr.Args[0] = ir.Operand{Node: ptr, Carried: true, Init: int64(pool.Base)}
	cond := l.Op(isa.CmpNE, ir.V(ptr), ir.C(0))
	l.SetExit(cond)
	if _, err := PartitionParallel(l, 2); err == nil {
		t.Fatal("accepted a memory-dependent exit slice")
	}
}

// A purely sequential loop (every node carried or control) has no
// parallel work to replicate.
func TestPartitionParallelRejectsSequentialLoop(t *testing.T) {
	l := ir.NewLoop("seq")
	idx := l.Counter(-1, 1)
	cond := l.Op(isa.CmpLT, ir.V(idx), ir.C(9))
	l.SetExit(cond)
	if _, err := PartitionParallel(l, 2); err == nil {
		t.Fatal("accepted a loop with no parallel work")
	}
	if _, err := PartitionParallel(l, 1); err == nil {
		t.Fatal("accepted a single worker")
	}
}
