package dswp

import (
	"fmt"
	"sort"

	"hfstream/internal/asm"
	"hfstream/internal/ir"
	"hfstream/internal/isa"
)

// PartitionParallel applies the parallel-stage DSWP transformation
// (PS-DSWP): instead of a chain of pipeline stages, it replicates the
// loop's independent per-iteration work across `workers` identical
// worker threads (threads 0..workers-1) that take iterations in
// round-robin turns, and funnels their results into one merger thread
// (thread `workers`) that executes the sequential remainder — stores,
// reductions, anything loop-carried. The FastFlow farm collapsed onto
// the DSWP queue substrate.
//
// Eligibility is decided per node, conservatively:
//
//   - The loop's exit slice must be replicable (pure arithmetic, no
//     memory operations); it is duplicated into every thread so each one
//     counts iterations locally. Partitioner pins are ignored — there
//     are no stages to pin to.
//   - A node is *parallel* ("pure") when it is not in the slice, has no
//     loop-carried operand, is not a store, loads only from regions the
//     loop never stores to, and every operand is a constant, a slice
//     node, or itself parallel.
//   - Everything else is *merge* work and runs on the merger thread in
//     original iteration order.
//
// Each value flowing from parallel work to merge work becomes W SPSC
// lanes, one per worker (queue eIdx*W + w, route worker w -> merger):
// iteration i's value travels on lane i mod W, and the merger walks the
// lanes round-robin. Only single-producer/single-consumer queues are
// emitted, so every design point — including SYNCOPTI, whose in-memory
// controller cannot serve MPMC queues — runs parallel partitions.
// Iteration order is fully reconstructed at the merger, which is what
// keeps results bit-identical to the sequential loop.
func PartitionParallel(l *ir.Loop, workers int) (*Result, error) {
	if workers < 2 {
		return nil, fmt.Errorf("dswp: parallel-stage needs at least 2 workers, got %d", workers)
	}
	if err := l.Validate(); err != nil {
		return nil, err
	}
	nodeByID := map[int]*ir.Node{}
	for _, nd := range l.Body {
		nodeByID[nd.ID] = nd
	}
	slice := exitSlice(l)
	for id := range slice {
		if op := nodeByID[id].Op; op == isa.Ld || op == isa.St {
			return nil, fmt.Errorf("dswp: loop %s: exit slice touches memory; cannot replicate control across workers", l.Name)
		}
	}

	// Regions the loop stores to: loads from them are ordered against the
	// stores (the same conservative rule buildPDG uses) and must stay on
	// the merger.
	storedRegion := map[string]bool{}
	for _, nd := range l.Body {
		if nd.Op == isa.St && nd.Region != nil {
			storedRegion[nd.Region.Name] = true
		}
	}

	// Classify in ID order (topological for same-iteration data deps).
	pure := map[int]bool{}
	for _, nd := range l.Body {
		if slice[nd.ID] || nd.Op == isa.St {
			continue
		}
		if nd.Op == isa.Ld && (nd.Region == nil || storedRegion[nd.Region.Name]) {
			continue
		}
		ok := true
		for _, a := range nd.Args {
			if a.Carried {
				ok = false
				break
			}
			if a.Node == nil || slice[a.Node.ID] || pure[a.Node.ID] {
				continue
			}
			ok = false
			break
		}
		if ok {
			pure[nd.ID] = true
		}
	}
	if len(pure) == 0 {
		return nil, fmt.Errorf("dswp: loop %s has no replicable parallel work (every node is control, memory-ordered, or loop-carried)", l.Name)
	}

	// Cross edges: distinct (parallel source, carried) pairs consumed by
	// merge nodes. Each expands to one lane per worker.
	type ekey struct {
		src     int
		carried bool
	}
	seen := map[ekey]bool{}
	var eks []ekey
	for _, nd := range l.Body {
		if slice[nd.ID] || pure[nd.ID] {
			continue
		}
		for _, a := range nd.Args {
			if a.Node == nil || !pure[a.Node.ID] {
				continue
			}
			k := ekey{src: a.Node.ID, carried: a.Carried}
			if !seen[k] {
				seen[k] = true
				eks = append(eks, k)
			}
		}
	}
	if len(eks) == 0 {
		return nil, fmt.Errorf("dswp: loop %s: parallel work feeds nothing on the merger; a parallel partition would be dead code", l.Name)
	}
	sort.Slice(eks, func(i, j int) bool {
		if eks[i].src != eks[j].src {
			return eks[i].src < eks[j].src
		}
		return !eks[i].carried && eks[j].carried
	})
	edges := make([]parEdge, len(eks))
	for i, k := range eks {
		edges[i] = parEdge{src: k.src, carried: k.carried, base: i * workers}
	}

	res := &Result{
		Stages:     workers + 1,
		Parallel:   true,
		Workers:    workers,
		Assignment: map[int]int{},
		QueueCount: len(edges) * workers,
	}
	for _, nd := range l.Body {
		switch {
		case slice[nd.ID]:
			res.Replicated = append(res.Replicated, nd.ID)
		case pure[nd.ID]:
			res.Assignment[nd.ID] = 0
		default:
			res.Assignment[nd.ID] = workers
		}
	}
	sort.Ints(res.Replicated)
	for range edges {
		for w := 0; w < workers; w++ {
			res.Routes = append(res.Routes, QueueRoute{Producer: w, Consumer: workers})
		}
	}

	for w := 0; w < workers; w++ {
		prog, err := genWorker(l, w, workers, pure, slice, edges)
		if err != nil {
			return nil, err
		}
		res.Threads = append(res.Threads, prog)
	}
	merger, err := genMerger(l, workers, pure, slice, edges)
	if err != nil {
		return nil, err
	}
	res.Threads = append(res.Threads, merger)
	return res, nil
}

// parEdge is one parallel-to-merge value flow; base is its first lane's
// queue number (worker w uses queue base+w).
type parEdge struct {
	src     int
	carried bool
	base    int
}

// genWorker emits worker w's program: the replicated exit slice runs
// every iteration; the parallel body runs only on this worker's turns
// (iterations congruent to w mod workers), gated by a countdown register
// so turn dispatch costs two instructions per skipped iteration.
func genWorker(l *ir.Loop, w, workers int, pure, slice map[int]bool, edges []parEdge) (*isa.Program, error) {
	name := fmt.Sprintf("%s.w%d", l.Name, w)
	b := asm.NewBuilder(name)

	local := map[int]bool{}
	for _, n := range l.Body {
		if slice[n.ID] || pure[n.ID] {
			local[n.ID] = true
		}
	}
	var sliceNodes, pureNodes []*ir.Node
	for _, n := range l.Body {
		switch {
		case slice[n.ID]:
			sliceNodes = append(sliceNodes, n)
		case pure[n.ID]:
			pureNodes = append(pureNodes, n)
		}
	}
	sliceNodes = scheduleASAP(sliceNodes, local)
	pureNodes = scheduleASAP(pureNodes, local)

	alloc := &regAlloc{next: 1}
	regOf := map[int]isa.Reg{}
	carryReg := map[carryKey]isa.Reg{}
	constReg := map[int64]isa.Reg{}
	collectRegs(append(append([]*ir.Node{}, sliceNodes...), pureNodes...), local, alloc, regOf, carryReg, constReg)
	rCnt := alloc.take()
	if alloc.next > maxGenReg {
		return nil, fmt.Errorf("dswp: %s needs %d registers, limit %d", name, alloc.next, maxGenReg)
	}

	emitConstProlog(b, constReg)
	emitCarryProlog(b, carryReg)
	b.MovI(rCnt, int64(w))

	b.Label("loop")
	operand := operandFn(regOf, carryReg, constReg)
	for _, n := range sliceNodes {
		if err := emitNode(b, n, regOf, operand); err != nil {
			return nil, err
		}
	}
	skip := b.FreshLabel("skip")
	b.Bnez(rCnt, skip)
	for _, n := range pureNodes {
		if err := emitNode(b, n, regOf, operand); err != nil {
			return nil, err
		}
	}
	// This worker's turns are exactly the iterations its lanes carry, so
	// every produce targets a static queue — no dispatch needed.
	for _, e := range edges {
		b.Produce(e.base+w, regOf[e.src])
	}
	b.MovI(rCnt, int64(workers))
	b.Label(skip)
	b.AddI(rCnt, rCnt, -1)

	emitCarryRefresh(b, carryReg, regOf, local)
	b.Bnez(regOf[l.Exit.ID], "loop")
	b.Halt()
	return b.Program()
}

// genMerger emits the merger's program (thread `workers`): replicated
// exit slice, round-robin lane consumes for every imported value, and
// the sequential merge body in original iteration order.
func genMerger(l *ir.Loop, workers int, pure, slice map[int]bool, edges []parEdge) (*isa.Program, error) {
	name := l.Name + ".m"
	b := asm.NewBuilder(name)

	local := map[int]bool{}
	var bodyNodes []*ir.Node
	for _, n := range l.Body {
		if !pure[n.ID] {
			local[n.ID] = true
			bodyNodes = append(bodyNodes, n)
		}
	}
	bodyNodes = scheduleASAP(bodyNodes, local)

	alloc := &regAlloc{next: 1}
	regOf := map[int]isa.Reg{}
	carryReg := map[carryKey]isa.Reg{}
	constReg := map[int64]isa.Reg{}
	collectRegs(bodyNodes, local, alloc, regOf, carryReg, constReg)
	// Lane dispatch compares the lane counter against 0..workers-2 and
	// wraps it against workers; materialize those constants.
	needConst := func(v int64) {
		if _, ok := constReg[v]; !ok {
			constReg[v] = alloc.take()
		}
	}
	for w := 0; w < workers-1; w++ {
		needConst(int64(w))
	}
	needConst(int64(workers))
	rLane := alloc.take()
	rT := alloc.take()
	if alloc.next > maxGenReg {
		return nil, fmt.Errorf("dswp: %s needs %d registers, limit %d", name, alloc.next, maxGenReg)
	}

	emitConstProlog(b, constReg)
	emitCarryProlog(b, carryReg)
	b.MovI(rLane, 0)

	laneConsume := func(dst isa.Reg, base int) {
		done := b.FreshLabel("qdone")
		for w := 0; w < workers-1; w++ {
			next := b.FreshLabel("qnext")
			b.CmpEQ(rT, rLane, constReg[int64(w)])
			b.Beqz(rT, next)
			b.Consume(dst, base+w)
			b.B(done)
			b.Label(next)
		}
		b.Consume(dst, base+workers-1)
		b.Label(done)
	}

	b.Label("loop")
	for _, e := range edges {
		if !e.carried {
			laneConsume(regOf[e.src], e.base)
		}
	}
	operand := operandFn(regOf, carryReg, constReg)
	for _, n := range bodyNodes {
		if err := emitNode(b, n, regOf, operand); err != nil {
			return nil, err
		}
	}
	emitCarryRefresh(b, carryReg, regOf, local)
	for _, e := range edges {
		if !e.carried {
			continue
		}
		var regs []isa.Reg
		for _, k := range sortedCarryKeys(carryReg) {
			if k.id == e.src {
				regs = append(regs, carryReg[k])
			}
		}
		laneConsume(regs[0], e.base)
		for _, r := range regs[1:] {
			b.Mov(r, regs[0])
		}
	}
	// Advance the lane counter, wrapping at workers.
	b.AddI(rLane, rLane, 1)
	b.CmpEQ(rT, rLane, constReg[int64(workers)])
	noWrap := b.FreshLabel("nowrap")
	b.Beqz(rT, noWrap)
	b.MovI(rLane, 0)
	b.Label(noWrap)

	b.Bnez(regOf[l.Exit.ID], "loop")
	b.Halt()
	return b.Program()
}

// collectRegs walks the given nodes (in emission order) and allocates
// value registers, carried registers, and constant registers, mirroring
// the allocation pass in generate.
func collectRegs(nodes []*ir.Node, local map[int]bool, alloc *regAlloc,
	regOf map[int]isa.Reg, carryReg map[carryKey]isa.Reg, constReg map[int64]isa.Reg) {

	for _, n := range nodes {
		if n.Op != isa.St {
			regOf[n.ID] = alloc.take()
		}
		for ai, a := range n.Args {
			switch {
			case a.Node == nil:
				if !immFoldable(n.Op, ai) {
					if _, ok := constReg[a.Const]; !ok {
						constReg[a.Const] = alloc.take()
					}
				}
			case a.Carried:
				k := carryKey{a.Node.ID, a.Init}
				if _, ok := carryReg[k]; !ok {
					carryReg[k] = alloc.take()
				}
			default:
				if !local[a.Node.ID] {
					if _, ok := regOf[a.Node.ID]; !ok {
						regOf[a.Node.ID] = alloc.take() // import target
					}
				}
			}
		}
	}
}

// operandFn returns the operand-register resolver shared by the
// parallel-stage generators.
func operandFn(regOf map[int]isa.Reg, carryReg map[carryKey]isa.Reg, constReg map[int64]isa.Reg) func(*ir.Node, int) isa.Reg {
	return func(n *ir.Node, ai int) isa.Reg {
		a := n.Args[ai]
		switch {
		case a.Node == nil:
			return constReg[a.Const]
		case a.Carried:
			return carryReg[carryKey{a.Node.ID, a.Init}]
		default:
			return regOf[a.Node.ID]
		}
	}
}

func emitConstProlog(b *asm.Builder, constReg map[int64]isa.Reg) {
	vals := make([]int64, 0, len(constReg))
	for v := range constReg {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	for _, v := range vals {
		b.MovI(constReg[v], v)
	}
}

func emitCarryProlog(b *asm.Builder, carryReg map[carryKey]isa.Reg) {
	for _, k := range sortedCarryKeys(carryReg) {
		b.MovI(carryReg[k], k.init)
	}
}

func emitCarryRefresh(b *asm.Builder, carryReg map[carryKey]isa.Reg, regOf map[int]isa.Reg, local map[int]bool) {
	for _, k := range sortedCarryKeys(carryReg) {
		if local[k.id] {
			b.Mov(carryReg[k], regOf[k.id])
		}
	}
}

func sortedCarryKeys(carryReg map[carryKey]isa.Reg) []carryKey {
	keys := make([]carryKey, 0, len(carryReg))
	for k := range carryReg {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].id != keys[j].id {
			return keys[i].id < keys[j].id
		}
		return keys[i].init < keys[j].init
	})
	return keys
}
