package dswp

import (
	"testing"
	"testing/quick"

	"hfstream/internal/interp"
	"hfstream/internal/ir"
	"hfstream/internal/isa"
	"hfstream/internal/mem"
)

// buildCounted makes a loop summing a[i]*3 into an accumulator stored to
// out, with an extra FP-ish tail for weight.
func buildCounted(n int) (*ir.Loop, mem.Region, mem.Region) {
	a := mem.NewAllocator(0x10000, 128)
	in := a.Alloc("in", uint64(n*8))
	out := a.Alloc("out", 128)
	l := ir.NewLoop("counted")
	idx := l.Counter(-1, 1)
	cond := l.Op(isa.CmpLT, ir.V(idx), ir.C(int64(n-1)))
	l.SetExit(cond)
	off := l.Op(isa.ShlI, ir.V(idx), ir.C(3))
	addr := l.Op(isa.AddI, ir.V(off), ir.C(int64(in.Base)))
	v := l.Load(&in, ir.V(addr), 0)
	scaled := l.Op(isa.Mul, ir.V(v), ir.C(3))
	acc := l.Acc(isa.Add, ir.V(scaled), 0)
	l.Store(&out, ir.C(int64(out.Base)), 0, ir.V(acc))
	return l, in, out
}

func setupImage(in mem.Region, n int) *mem.Memory {
	img := mem.New()
	for i := 0; i < n; i++ {
		img.Write8(in.Base+uint64(i*8), uint64(i*i%97))
	}
	return img
}

func TestPartitionCountedLoop(t *testing.T) {
	l, _, _ := buildCounted(50)
	res, err := Partition(l)
	if err != nil {
		t.Fatal(err)
	}
	if res.CondStreamed {
		t.Error("pure counted control should be replicated, not streamed")
	}
	if len(res.Replicated) == 0 {
		t.Error("no replicated control slice")
	}
	if res.QueueCount < 1 {
		t.Error("no queues")
	}
	for _, th := range res.Threads {
		if err := th.Validate(64); err != nil {
			t.Errorf("generated program invalid: %v", err)
		}
	}
}

func TestPartitionMatchesSingle(t *testing.T) {
	const n = 60
	l, in, out := buildCounted(n)
	res, err := Partition(l)
	if err != nil {
		t.Fatal(err)
	}
	single, err := Single(l)
	if err != nil {
		t.Fatal(err)
	}

	img1 := setupImage(in, n)
	m1 := interp.New(img1, single)
	if err := m1.Run(0); err != nil {
		t.Fatal(err)
	}
	img2 := setupImage(in, n)
	m2 := interp.New(img2, res.Threads[0], res.Threads[1])
	if err := m2.Run(0); err != nil {
		t.Fatal(err)
	}
	if img1.Read8(out.Base) != img2.Read8(out.Base) {
		t.Fatalf("single %d != pipelined %d", img1.Read8(out.Base), img2.Read8(out.Base))
	}
	if img1.Read8(out.Base) == 0 {
		t.Fatal("suspicious zero result")
	}
}

func TestPointerChaseStreamsCondition(t *testing.T) {
	a := mem.NewAllocator(0x10000, 128)
	pool := a.Alloc("pool", 64*128)
	out := a.Alloc("out", 128)
	l := ir.NewLoop("chase")
	ptr := l.Load(&pool, ir.C(0), 0)
	ptr.Args[0] = ir.Operand{Node: ptr, Carried: true, Init: int64(pool.Base)}
	val := l.Load(&pool, ir.V(ptr), 8)
	acc := l.Acc(isa.Add, ir.V(val), 0)
	l.Store(&out, ir.C(int64(out.Base)), 0, ir.V(acc))
	cond := l.Op(isa.CmpNE, ir.V(ptr), ir.C(0))
	l.SetExit(cond)

	res, err := Partition(l)
	if err != nil {
		t.Fatal(err)
	}
	if !res.CondStreamed {
		t.Error("load-dependent exit should stream the condition")
	}
	// The traversal must live in stage 0 (control flows forward only).
	if th := res.Assignment[ptr.ID]; th != 0 {
		t.Errorf("pointer chase assigned to stage %d", th)
	}

	// And it must run correctly.
	img := mem.New()
	for i := 0; i < 20; i++ {
		nodeAddr := pool.Base + uint64(i*128)
		next := uint64(0)
		if i < 19 {
			next = pool.Base + uint64((i+1)*128)
		}
		img.Write8(nodeAddr, next)
		img.Write8(nodeAddr+8, uint64(i+1))
	}
	m := interp.New(img, res.Threads[0], res.Threads[1])
	if err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	// Sum of 2..20 plus the final zero-node read (value at address 8 = 0).
	want := uint64(0)
	for i := 2; i <= 20; i++ {
		want += uint64(i)
	}
	if got := img.Read8(out.Base); got != want {
		t.Errorf("sum = %d, want %d", got, want)
	}
}

func TestSingleSCCNotPipelinable(t *testing.T) {
	l := ir.NewLoop("knot")
	// One self-contained recurrence, nothing else.
	acc := l.Acc(isa.Add, ir.C(1), 0)
	cond := l.Op(isa.CmpLT, ir.V(acc), ir.C(10))
	l.SetExit(cond)
	if _, err := Partition(l); err == nil {
		t.Error("expected not-pipelinable error")
	}
}

func TestPinsRespected(t *testing.T) {
	const n = 40
	l, _, _ := buildCounted(n)
	// Pin the multiply to stage 0 (it would naturally go to stage 1 with
	// the accumulator).
	var mul *ir.Node
	for _, nd := range l.Body {
		if nd.Op == isa.Mul {
			mul = nd
		}
	}
	l.Pin(mul, 0)
	res, err := Partition(l)
	if err != nil {
		t.Fatal(err)
	}
	if res.Assignment[mul.ID] != 0 {
		t.Errorf("pinned node landed in stage %d", res.Assignment[mul.ID])
	}
}

func TestScheduleRespectsDependences(t *testing.T) {
	const n = 30
	l, _, _ := buildCounted(n)
	res, err := Partition(l)
	if err != nil {
		t.Fatal(err)
	}
	// In each generated program, every register read must be preceded by
	// a write of that register (or an initial movi) — a cheap proxy for
	// schedule correctness beyond the interpreter equivalence test.
	for _, p := range res.Threads {
		written := map[isa.Reg]bool{}
		for _, in := range p.Instrs {
			if in.Op.ReadsRa() && !written[in.Ra] {
				t.Fatalf("%s: %v reads r%d before any write", p.Name, in, in.Ra)
			}
			if in.Op.ReadsRb() && !written[in.Rb] {
				t.Fatalf("%s: %v reads r%d before any write", p.Name, in, in.Rb)
			}
			if in.Op.WritesRd() {
				written[in.Rd] = true
			}
		}
	}
}

// randomLoop builds a random but valid counted loop from a seed:
// a mix of ALU chains, accumulators and carried references over a small
// input array, with the final values stored for comparison.
func randomLoop(seed uint32, n int) (*ir.Loop, mem.Region, mem.Region) {
	a := mem.NewAllocator(0x10000, 128)
	in := a.Alloc("in", uint64(n*8))
	out := a.Alloc("out", 1024)

	rng := seed | 1
	next := func(m int) int {
		rng ^= rng << 13
		rng ^= rng >> 17
		rng ^= rng << 5
		return int(rng) & 0x7fffffff % m
	}

	l := ir.NewLoop("rand")
	idx := l.Counter(-1, 1)
	cond := l.Op(isa.CmpLT, ir.V(idx), ir.C(int64(n-1)))
	l.SetExit(cond)
	off := l.Op(isa.ShlI, ir.V(idx), ir.C(3))
	addr := l.Op(isa.AddI, ir.V(off), ir.C(int64(in.Base)))
	v := l.Load(&in, ir.V(addr), 0)

	pool := []*ir.Node{v, off}
	ops := []isa.Op{isa.Add, isa.Sub, isa.Xor, isa.And, isa.Or, isa.Mul}
	k := 4 + next(10)
	for i := 0; i < k; i++ {
		op := ops[next(len(ops))]
		x := pool[next(len(pool))]
		var node *ir.Node
		switch next(3) {
		case 0: // binary with another pool node
			y := pool[next(len(pool))]
			node = l.Op(op, ir.V(x), ir.V(y))
		case 1: // accumulator
			node = l.Acc(op, ir.V(x), int64(next(100)))
		default: // carried use of an earlier node
			y := pool[next(len(pool))]
			node = l.Op(op, ir.V(x), ir.Carried(y, int64(next(50))))
		}
		pool = append(pool, node)
	}
	// Store the last few nodes so every chain's history is observable.
	for i := 0; i < 3 && i < len(pool); i++ {
		l.Store(&out, ir.C(int64(out.Base)), int64(i*8), ir.V(pool[len(pool)-1-i]))
	}
	return l, in, out
}

// TestRandomLoopsPartitionEquivalence is the DSWP correctness property:
// for random loops, the pipelined threads compute exactly what the
// single-threaded version computes.
func TestRandomLoopsPartitionEquivalence(t *testing.T) {
	f := func(seed uint32) bool {
		const n = 40
		l, in, out := randomLoop(seed, n)
		if err := l.Validate(); err != nil {
			t.Logf("seed %d: invalid loop: %v", seed, err)
			return false
		}
		res, err := Partition(l)
		if err != nil {
			// Some random loops collapse into one SCC; that is a valid
			// partitioner answer, not a correctness failure.
			return true
		}
		single, err := Single(l)
		if err != nil {
			t.Logf("seed %d: single codegen: %v", seed, err)
			return false
		}
		img1 := setupImage(in, n)
		if err := interp.New(img1, single).Run(0); err != nil {
			t.Logf("seed %d: single run: %v", seed, err)
			return false
		}
		img2 := setupImage(in, n)
		if err := interp.New(img2, res.Threads[0], res.Threads[1]).Run(0); err != nil {
			t.Logf("seed %d: pipelined run: %v", seed, err)
			return false
		}
		for o := uint64(0); o < 24; o += 8 {
			if img1.Read8(out.Base+o) != img2.Read8(out.Base+o) {
				t.Logf("seed %d: out+%d: single %#x != pipelined %#x",
					seed, o, img1.Read8(out.Base+o), img2.Read8(out.Base+o))
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}
