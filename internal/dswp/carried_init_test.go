package dswp

import (
	"testing"

	"hfstream/internal/interp"
	"hfstream/internal/ir"
	"hfstream/internal/isa"
	"hfstream/internal/mem"
)

// TestDistinctCarriedInits is the regression test for a codegen bug found
// by TestRandomLoopsPartitionEquivalence: two loop-carried uses of the
// same node with different iteration-zero values must get distinct carry
// registers. When they collapsed, whichever use was scanned first donated
// its init to both — and single-threaded and pipelined code could
// disagree whenever the uses landed in different threads.
func TestDistinctCarriedInits(t *testing.T) {
	const n = 10
	a := mem.NewAllocator(0x10000, 128)
	in := a.Alloc("in", n*8)
	out := a.Alloc("out", 128)

	l := ir.NewLoop("inits")
	idx := l.Counter(-1, 1)
	cond := l.Op(isa.CmpLT, ir.V(idx), ir.C(n-1))
	l.SetExit(cond)
	off := l.Op(isa.ShlI, ir.V(idx), ir.C(3))
	addr := l.Op(isa.AddI, ir.V(off), ir.C(int64(in.Base)))
	v := l.Load(&in, ir.V(addr), 0)
	// Two carried uses of v with different inits, kept in one thread...
	u1 := l.Op(isa.Add, ir.V(v), ir.Carried(v, 100))
	// ...and one with a third init that the balancer may move away.
	u2 := l.Op(isa.Mul, ir.V(u1), ir.Carried(v, 7))
	acc1 := l.Acc(isa.Add, ir.V(u1), 0)
	acc2 := l.Acc(isa.Add, ir.V(u2), 0)
	l.Store(&out, ir.C(int64(out.Base)), 0, ir.V(acc1))
	l.Store(&out, ir.C(int64(out.Base)), 8, ir.V(acc2))

	img := mem.New()
	for i := 0; i < n; i++ {
		img.Write8(in.Base+uint64(i*8), uint64(i+1))
	}

	// Hand-computed expectation for iteration 0: u1 = v0 + 100,
	// u2 = u1 * 7 (not *100!).
	single := MustSingle(l)
	m := interp.New(img, single)
	if err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	// Recompute in Go.
	var a1, a2, prevV uint64
	init1, init2 := uint64(100), uint64(7)
	for i := 0; i < n; i++ {
		v := uint64(i + 1)
		c1, c2 := prevV, prevV
		if i == 0 {
			c1, c2 = init1, init2
		}
		u1 := v + c1
		u2 := u1 * c2
		a1 += u1
		a2 += u2
		prevV = v
	}
	if got := img.Read8(out.Base); got != a1 {
		t.Errorf("single acc1 = %d, want %d", got, a1)
	}
	if got := img.Read8(out.Base + 8); got != a2 {
		t.Errorf("single acc2 = %d, want %d (distinct init lost)", got, a2)
	}

	// And the pipelined version must agree.
	res, err := Partition(l)
	if err != nil {
		t.Skipf("not pipelinable: %v", err)
	}
	img2 := mem.New()
	for i := 0; i < n; i++ {
		img2.Write8(in.Base+uint64(i*8), uint64(i+1))
	}
	if err := interp.New(img2, res.Threads...).Run(0); err != nil {
		t.Fatal(err)
	}
	if img2.Read8(out.Base) != a1 || img2.Read8(out.Base+8) != a2 {
		t.Errorf("pipelined accs = %d/%d, want %d/%d",
			img2.Read8(out.Base), img2.Read8(out.Base+8), a1, a2)
	}
}
