package dswp

import (
	"fmt"
	"sort"

	"hfstream/internal/ir"
	"hfstream/internal/isa"
)

// Result is a DSWP partition of a loop into pipeline-stage threads.
type Result struct {
	// Threads holds the generated stage programs in pipeline order.
	Threads []*isa.Program
	// Stages is the number of pipeline stages (threads).
	Stages int
	// Assignment maps node ID to its stage; replicated control-slice
	// nodes are listed in Replicated instead.
	Assignment map[int]int
	// Replicated lists node IDs duplicated into every thread (the loop
	// control slice, when it is pure arithmetic).
	Replicated []int
	// QueueCount is the number of inter-thread queues used (including
	// control queues when the exit condition is streamed).
	QueueCount int
	// Routes names the producing and consuming stage of each queue, in
	// queue-number order; machines with more than two cores need it to
	// route forwards, ACKs and probes.
	Routes []QueueRoute
	// CondStreamed reports whether the exit condition flows through
	// queues rather than being recomputed by every thread.
	CondStreamed bool
	// Parallel marks a parallel-stage (PS-DSWP) partition: threads
	// 0..Workers-1 are replicated round-robin workers and thread Workers
	// is the merger. Stages is then the thread count, Workers+1.
	Parallel bool
	// Workers is the replicated worker count of a parallel partition.
	Workers int
}

// QueueRoute names the stages on either end of one queue.
type QueueRoute struct {
	Producer int
	Consumer int
}

// crossEdge is a dependence crossing the partition: one queue carries the
// source node's value (of this or the previous iteration) to one
// consuming stage.
type crossEdge struct {
	src     int  // producing node
	carried bool // consumed by the next iteration
	dest    int  // consuming stage
	queue   int
}

// Partition applies the DSWP algorithm with the paper's two pipeline
// stages (its dual-core CMP).
func Partition(l *ir.Loop) (*Result, error) { return PartitionN(l, 2) }

// PartitionN partitions the loop into n pipeline stages: PDG, SCC
// condensation, a minimum-bottleneck monotone cut into n consecutive
// segments, and code generation with produce/consume on every crossing
// dependence. Stages beyond the paper's two exercise larger CMPs (the
// HEAVYWT substrate runs any number of cores).
func PartitionN(l *ir.Loop, n int) (*Result, error) {
	if n < 2 {
		return nil, fmt.Errorf("dswp: need at least 2 stages, got %d", n)
	}
	if err := l.Validate(); err != nil {
		return nil, err
	}
	g := buildPDG(l)
	comps := g.sccs()
	if len(comps) < n {
		return nil, fmt.Errorf("dswp: loop %s has %d SCCs; cannot form %d stages", l.Name, len(comps), n)
	}

	nodeByID := map[int]*ir.Node{}
	for _, nd := range l.Body {
		nodeByID[nd.ID] = nd
	}

	// Replicable control slice: the backward closure of the exit node, if
	// it contains no memory operations, is cheap to recompute in every
	// thread (the DSWP branch-replication rule).
	slice := exitSlice(l)
	replicable := true
	for id := range slice {
		op := nodeByID[id].Op
		if op == isa.Ld || op == isa.St {
			replicable = false
			break
		}
	}

	// Split SCCs into those pinned to stage 0 (a non-replicable control
	// slice: control flows forward only) and the freely assignable rest.
	var forced, free [][]int
	for _, comp := range comps {
		allSlice := true
		hasSlice := false
		for _, id := range comp {
			if slice[id] {
				hasSlice = true
			} else {
				allSlice = false
			}
		}
		switch {
		case replicable && allSlice:
			// Replicated into every thread at codegen.
		case !replicable && hasSlice:
			forced = append(forced, comp)
		default:
			free = append(free, comp)
		}
	}
	if len(free) < n-1 {
		return nil, fmt.Errorf("dswp: loop %s has too little partitionable work for %d stages", l.Name, n)
	}
	assign := bestCut(l, nodeByID, forced, free, slice, replicable, n)
	if assign == nil {
		return nil, fmt.Errorf("dswp: loop %s: no valid %d-stage cut (check pins)", l.Name, n)
	}

	// Cross-partition dependences become queues: one per
	// (source, carried, consuming stage) triple.
	type qkey struct {
		src     int
		carried bool
		dest    int
	}
	queueOf := map[qkey]int{}
	var edges []crossEdge
	for _, nd := range l.Body {
		nt, local := threadOf(nd.ID, assign, slice, replicable)
		if local {
			continue
		}
		for _, a := range nd.Args {
			if a.Node == nil || a.Node.ID == nd.ID {
				continue
			}
			st, slocal := threadOf(a.Node.ID, assign, slice, replicable)
			if slocal || st == nt {
				continue
			}
			k := qkey{src: a.Node.ID, carried: a.Carried, dest: nt}
			if _, ok := queueOf[k]; !ok {
				queueOf[k] = 0 // numbered below
				edges = append(edges, crossEdge{src: k.src, carried: k.carried, dest: k.dest})
			}
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].src != edges[j].src {
			return edges[i].src < edges[j].src
		}
		if edges[i].dest != edges[j].dest {
			return edges[i].dest < edges[j].dest
		}
		return !edges[i].carried && edges[j].carried
	})
	var routes []QueueRoute
	for i := range edges {
		edges[i].queue = i
		routes = append(routes, QueueRoute{Producer: assign[edges[i].src], Consumer: edges[i].dest})
	}
	queueCount := len(edges)

	// Control queues: when the exit condition is streamed, its owner
	// produces one copy per other stage.
	condStreamed := !replicable
	condQueues := make([]int, n)
	for i := range condQueues {
		condQueues[i] = -1
	}
	if condStreamed {
		owner := assign[l.Exit.ID]
		for t := 0; t < n; t++ {
			if t != owner {
				condQueues[t] = queueCount
				routes = append(routes, QueueRoute{Producer: owner, Consumer: t})
				queueCount++
			}
		}
	}

	res := &Result{
		Stages:       n,
		Assignment:   assign,
		QueueCount:   queueCount,
		Routes:       routes,
		CondStreamed: condStreamed,
	}
	for id := range slice {
		if replicable {
			res.Replicated = append(res.Replicated, id)
		}
	}
	sort.Ints(res.Replicated)

	for th := 0; th < n; th++ {
		prog, err := generate(l, th, n, assign, slice, replicable, edges, condQueues)
		if err != nil {
			return nil, err
		}
		res.Threads = append(res.Threads, prog)
	}
	return res, nil
}

// bestCut enumerates every monotone split of the free SCCs into n
// consecutive segments (forced SCCs always join stage 0) and returns the
// assignment minimizing the estimated bottleneck-stage time.
func bestCut(l *ir.Loop, nodeByID map[int]*ir.Node, forced, free [][]int,
	slice map[int]bool, replicable bool, n int) map[int]int {

	baseT0 := map[int]bool{}
	for _, comp := range forced {
		for _, id := range comp {
			baseT0[id] = true
		}
	}

	bestScore := -1.0
	var best map[int]int

	// cuts[i] is the first free-SCC index of stage i+1; enumerate all
	// strictly increasing (n-1)-tuples over [minFirst .. len(free)].
	cuts := make([]int, n-1)
	var enumerate func(level, from int)
	enumerate = func(level, from int) {
		if level == n-1 {
			assign := map[int]int{}
			for id := range baseT0 {
				assign[id] = 0
			}
			for i, comp := range free {
				th := 0
				for c := n - 2; c >= 0; c-- {
					if i >= cuts[c] {
						th = c + 1
						break
					}
				}
				for _, id := range comp {
					assign[id] = th
				}
			}
			// Stage 0 must be non-empty.
			if cuts[0] == 0 && len(baseT0) == 0 {
				return
			}
			if violatesPins(l, assign) {
				return
			}
			score := 0.0
			for th := 0; th < n; th++ {
				c := stageCost(l, nodeByID, assign, th, slice, replicable)
				if c > score {
					score = c
				}
			}
			if bestScore < 0 || score < bestScore {
				bestScore = score
				best = assign
			}
			return
		}
		// Strictly increasing cuts, with the last stage non-empty:
		// cuts[level] leaves room for the remaining n-2-level cuts and
		// cuts[n-2] <= len(free)-1.
		for p := from; p <= len(free)-1-(n-2-level); p++ {
			cuts[level] = p
			enumerate(level+1, p+1)
		}
	}
	enumerate(0, 0)
	return best
}

// violatesPins reports whether an assignment contradicts the loop's
// partitioner hints.
func violatesPins(l *ir.Loop, assign map[int]int) bool {
	for id, stage := range l.Pins {
		if th, ok := assign[id]; ok && th != stage {
			return true
		}
	}
	return false
}

// stageCost estimates one stage's per-iteration time: the maximum of its
// issue-bandwidth bound (total latency-weighted work over an effective
// width) and its dependence-chain bound, plus per-queue COMM-OP cost for
// the values it imports and exports.
func stageCost(l *ir.Loop, nodeByID map[int]*ir.Node, assign map[int]int,
	th int, slice map[int]bool, replicable bool) float64 {

	width := 3.0 // effective sustained issue on the in-order core
	work := 0
	depth := map[int]int{}
	maxChain := 0
	comm := map[[3]int]bool{} // (src, carriedBit, dest) endpoints touching th
	for _, n := range l.Body {
		nt, repl := threadOf(n.ID, assign, slice, replicable)
		if !repl && nt != th {
			// Still scan its operands for edges produced by this stage.
			if !repl {
				for _, a := range n.Args {
					if a.Node == nil || a.Node.ID == n.ID {
						continue
					}
					st, slocal := threadOf(a.Node.ID, assign, slice, replicable)
					if !slocal && st == th && st != nt {
						cb := 0
						if a.Carried {
							cb = 1
						}
						comm[[3]int{a.Node.ID, cb, nt}] = true
					}
				}
			}
			continue
		}
		work += n.Weight()
		d := 0
		for _, a := range n.Args {
			if a.Node == nil || a.Carried {
				continue
			}
			if pd, ok := depth[a.Node.ID]; ok && pd > d {
				d = pd
			}
			st, slocal := threadOf(a.Node.ID, assign, slice, replicable)
			if !repl && !slocal && st != th {
				cb := 0
				if a.Carried {
					cb = 1
				}
				comm[[3]int{a.Node.ID, cb, th}] = true
			}
		}
		d += n.Weight()
		depth[n.ID] = d
		if d > maxChain {
			maxChain = d
		}
	}
	cost := float64(work) / width
	if float64(maxChain) > cost {
		cost = float64(maxChain)
	}
	return cost + 1.5*float64(len(comm))
}

// threadOf returns the stage of a node and whether it is replicated
// (present in every thread).
func threadOf(id int, assign map[int]int, slice map[int]bool, replicable bool) (int, bool) {
	if replicable && slice[id] {
		return -1, true
	}
	return assign[id], false
}

// exitSlice returns the backward closure of the loop's exit node over data
// dependences (carried edges included).
func exitSlice(l *ir.Loop) map[int]bool {
	slice := map[int]bool{}
	var visit func(n *ir.Node)
	visit = func(n *ir.Node) {
		if slice[n.ID] {
			return
		}
		slice[n.ID] = true
		for _, a := range n.Args {
			if a.Node != nil {
				visit(a.Node)
			}
		}
	}
	visit(l.Exit)
	return slice
}
