package dswp

import (
	"fmt"
	"sort"

	"hfstream/internal/asm"
	"hfstream/internal/ir"
	"hfstream/internal/isa"
)

// maxGenReg bounds code-generation register use so the software-queue
// lowering pass (which claims registers from the top of the file) never
// collides with generated code.
const maxGenReg = 50

// generate emits the program for one pipeline stage of the partition.
func generate(l *ir.Loop, th, stages int, assign map[int]int, slice map[int]bool,
	replicable bool, edges []crossEdge, condQueues []int) (*isa.Program, error) {

	name := fmt.Sprintf("%s.t%d", l.Name, th)
	b := asm.NewBuilder(name)

	local := map[int]bool{}
	for _, n := range l.Body {
		t, repl := threadOf(n.ID, assign, slice, replicable)
		if repl || t == th {
			local[n.ID] = true
		}
	}

	// Queue lookup for this stage: which cross edges it produces, and
	// which it consumes (edges carry their consuming stage).
	produces := map[int][]crossEdge{} // src node -> edges (this stage is source)
	consumesDirect := []crossEdge{}
	consumesCarried := []crossEdge{}
	for _, e := range edges {
		switch {
		case local[e.src]:
			produces[e.src] = append(produces[e.src], e)
		case e.dest == th:
			if e.carried {
				consumesCarried = append(consumesCarried, e)
			} else {
				consumesDirect = append(consumesDirect, e)
			}
		}
	}
	sort.Slice(consumesDirect, func(i, j int) bool { return consumesDirect[i].queue < consumesDirect[j].queue })
	sort.Slice(consumesCarried, func(i, j int) bool { return consumesCarried[i].queue < consumesCarried[j].queue })

	// Register allocation. Carried values are keyed by (node, initial
	// value): two carried uses of the same node with different iteration-
	// zero values need distinct registers (they converge after the first
	// iteration but must not share an init).
	alloc := &regAlloc{next: 1}
	regOf := map[int]isa.Reg{} // node value (local or direct import)
	carryReg := map[carryKey]isa.Reg{}
	constReg := map[int64]isa.Reg{}

	needConst := func(v int64) {
		if _, ok := constReg[v]; !ok {
			constReg[v] = alloc.take()
		}
	}

	// Walk local nodes to decide what registers and constants we need.
	var bodyNodes []*ir.Node
	for _, n := range l.Body {
		if !local[n.ID] {
			continue
		}
		bodyNodes = append(bodyNodes, n)
	}
	// List-schedule the body by ASAP level so independent work fills the
	// latency shadows of FP and load chains — the in-order core stalls at
	// the first unready instruction, exactly as the paper's Itanium 2
	// does, so emission order matters the way compiler scheduling does.
	bodyNodes = scheduleASAP(bodyNodes, local)
	for _, n := range bodyNodes {
		if n.Op != isa.St {
			regOf[n.ID] = alloc.take()
		}
		for ai, a := range n.Args {
			switch {
			case a.Node == nil:
				if !immFoldable(n.Op, ai) {
					needConst(a.Const)
				}
			case a.Carried:
				k := carryKey{a.Node.ID, a.Init}
				if _, ok := carryReg[k]; !ok {
					carryReg[k] = alloc.take()
				}
			default:
				if !local[a.Node.ID] {
					if _, ok := regOf[a.Node.ID]; !ok {
						regOf[a.Node.ID] = alloc.take() // direct import target
					}
				}
			}
		}
	}
	condStreamed := condQueues != nil && !replicable
	condReg := isa.Reg(0)
	if condStreamed && !local[l.Exit.ID] {
		condReg = alloc.take()
	}
	if alloc.next > maxGenReg {
		return nil, fmt.Errorf("dswp: %s needs %d registers, limit %d", name, alloc.next, maxGenReg)
	}

	// Prologue: constants and carried initial values.
	constVals := make([]int64, 0, len(constReg))
	for v := range constReg {
		constVals = append(constVals, v)
	}
	sort.Slice(constVals, func(i, j int) bool { return constVals[i] < constVals[j] })
	for _, v := range constVals {
		b.MovI(constReg[v], v)
	}
	carryKeys := make([]carryKey, 0, len(carryReg))
	for k := range carryReg {
		carryKeys = append(carryKeys, k)
	}
	sort.Slice(carryKeys, func(i, j int) bool {
		if carryKeys[i].id != carryKeys[j].id {
			return carryKeys[i].id < carryKeys[j].id
		}
		return carryKeys[i].init < carryKeys[j].init
	})
	for _, k := range carryKeys {
		b.MovI(carryReg[k], k.init)
	}

	b.Label("loop")

	// Direct imports for this iteration.
	for _, e := range consumesDirect {
		b.Consume(regOf[e.src], e.queue)
	}

	// Body.
	operand := func(n *ir.Node, ai int) isa.Reg {
		a := n.Args[ai]
		switch {
		case a.Node == nil:
			return constReg[a.Const]
		case a.Carried:
			return carryReg[carryKey{a.Node.ID, a.Init}]
		default:
			return regOf[a.Node.ID]
		}
	}
	for _, n := range bodyNodes {
		if err := emitNode(b, n, regOf, operand); err != nil {
			return nil, err
		}
	}

	// Produces go at the end of the body, in queue order: a produce stalls
	// issue until its operand is ready, so emitting it mid-body would
	// serialize the independent work behind it on the in-order core.
	var sends []crossEdge
	for _, n := range bodyNodes {
		sends = append(sends, produces[n.ID]...)
	}
	sort.Slice(sends, func(i, j int) bool { return sends[i].queue < sends[j].queue })
	for _, e := range sends {
		b.Produce(e.queue, regOf[e.src])
	}
	if condStreamed && local[l.Exit.ID] {
		// The control owner feeds every other stage its copy.
		for t := 0; t < stages; t++ {
			if condQueues[t] >= 0 {
				b.Produce(condQueues[t], regOf[l.Exit.ID])
			}
		}
	}

	// End of body: refresh carried values for the next iteration. Local
	// sources copy from their result register; imported ones consume the
	// queue once and fan the value out to every carry register of that
	// source.
	for _, k := range carryKeys {
		if local[k.id] {
			b.Mov(carryReg[k], regOf[k.id])
		}
	}
	for _, e := range consumesCarried {
		var regs []isa.Reg
		for _, k := range carryKeys {
			if k.id == e.src {
				regs = append(regs, carryReg[k])
			}
		}
		b.Consume(regs[0], e.queue)
		for _, r := range regs[1:] {
			b.Mov(r, regs[0])
		}
	}

	// Loop back-edge.
	switch {
	case local[l.Exit.ID]:
		b.Bnez(regOf[l.Exit.ID], "loop")
	case condStreamed && condQueues[th] >= 0:
		b.Consume(condReg, condQueues[th])
		b.Bnez(condReg, "loop")
	default:
		return nil, fmt.Errorf("dswp: %s has no loop condition available", name)
	}
	b.Halt()
	return b.Program()
}

// scheduleASAP orders body nodes by earliest-start level over local
// same-iteration dependence chains, interleaving independent chains so
// the in-order pipeline can hide operation latency. Dependences are
// preserved: a consumer's level always exceeds its producer's.
func scheduleASAP(nodes []*ir.Node, local map[int]bool) []*ir.Node {
	level := make(map[int]int, len(nodes))
	for _, n := range nodes { // ID order is topological for these deps
		lv := 0
		for _, a := range n.Args {
			if a.Node == nil || a.Carried || !local[a.Node.ID] {
				continue
			}
			if d := level[a.Node.ID] + a.Node.Op.Latency(); d > lv {
				lv = d
			}
		}
		level[n.ID] = lv
	}
	out := append([]*ir.Node(nil), nodes...)
	sort.SliceStable(out, func(i, j int) bool {
		li, lj := level[out[i].ID], level[out[j].ID]
		if li != lj {
			return li < lj
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// carryKey identifies one carried-value register: two carried uses of
// the same node with different iteration-zero values need distinct
// registers.
type carryKey struct {
	id   int
	init int64
}

type regAlloc struct{ next isa.Reg }

func (r *regAlloc) take() isa.Reg {
	reg := r.next
	r.next++
	return reg
}

// immFoldable reports whether argument ai of op is encoded as an
// immediate rather than needing a materialized constant register.
func immFoldable(op isa.Op, ai int) bool {
	switch op {
	case isa.MovI:
		return ai == 0
	case isa.AddI, isa.AndI, isa.ShlI, isa.ShrI:
		return ai == 1
	default:
		return false
	}
}

// emitNode lowers one IR node to an instruction.
func emitNode(b *asm.Builder, n *ir.Node, regOf map[int]isa.Reg, operand func(*ir.Node, int) isa.Reg) error {
	rd := regOf[n.ID]
	switch n.Op {
	case isa.MovI:
		b.MovI(rd, n.Args[0].Const)
	case isa.Mov, isa.I2F, isa.F2I:
		b.Emit(isa.Instr{Op: n.Op, Rd: rd, Ra: operand(n, 0)})
	case isa.AddI, isa.AndI, isa.ShlI, isa.ShrI:
		b.Emit(isa.Instr{Op: n.Op, Rd: rd, Ra: operand(n, 0), Imm: n.Args[1].Const})
	case isa.Add, isa.Sub, isa.Mul, isa.Div, isa.And, isa.Or, isa.Xor,
		isa.CmpEQ, isa.CmpNE, isa.CmpLT,
		isa.FAdd, isa.FSub, isa.FMul, isa.FDiv:
		b.Emit(isa.Instr{Op: n.Op, Rd: rd, Ra: operand(n, 0), Rb: operand(n, 1)})
	case isa.Ld:
		b.Ld(rd, operand(n, 0), n.Off)
	case isa.St:
		b.St(operand(n, 0), n.Off, operand(n, 1))
	default:
		return fmt.Errorf("dswp: node %d: unsupported op %v", n.ID, n.Op)
	}
	return nil
}

// Single generates the single-threaded version of the loop: the Figure 9
// baseline against which pipelined speedup is measured.
func Single(l *ir.Loop) (*isa.Program, error) {
	if err := l.Validate(); err != nil {
		return nil, err
	}
	assign := map[int]int{}
	for _, n := range l.Body {
		assign[n.ID] = 0
	}
	return generate(l, 0, 1, assign, map[int]bool{}, false, nil, nil)
}

// MustPartition is Partition but panics on error.
func MustPartition(l *ir.Loop) *Result {
	r, err := Partition(l)
	if err != nil {
		panic(err)
	}
	return r
}

// MustSingle is Single but panics on error.
func MustSingle(l *ir.Loop) *isa.Program {
	p, err := Single(l)
	if err != nil {
		panic(err)
	}
	return p
}
