package dswp

import (
	"testing"

	"hfstream/internal/design"
	"hfstream/internal/interp"
	"hfstream/internal/ir"
	"hfstream/internal/isa"
	"hfstream/internal/mem"
	"hfstream/internal/sim"
)

// buildDeepLoop makes a loop with a long chain of independent compute
// phases, suitable for splitting into several pipeline stages.
func buildDeepLoop(n int) (*ir.Loop, mem.Region, mem.Region) {
	a := mem.NewAllocator(0x10000, 128)
	in := a.Alloc("in", uint64(n*8))
	out := a.Alloc("out", 128)
	l := ir.NewLoop("deep")
	idx := l.Counter(-1, 1)
	cond := l.Op(isa.CmpLT, ir.V(idx), ir.C(int64(n-1)))
	l.SetExit(cond)
	off := l.Op(isa.ShlI, ir.V(idx), ir.C(3))
	addr := l.Op(isa.AddI, ir.V(off), ir.C(int64(in.Base)))
	v := l.Load(&in, ir.V(addr), 0)

	// Phase 1: integer mix with its own accumulator.
	m1 := l.Op(isa.Mul, ir.V(v), ir.C(17))
	x1 := l.Op(isa.Xor, ir.V(m1), ir.V(v))
	a1 := l.Acc(isa.Add, ir.V(x1), 0)
	// Phase 2: a second dependent mix with its own accumulator.
	m2 := l.Op(isa.Mul, ir.V(x1), ir.C(31))
	s2 := l.Op(isa.ShrI, ir.V(m2), ir.C(3))
	a2 := l.Acc(isa.Xor, ir.V(s2), 0)
	// Phase 3: combine and store.
	m3 := l.Op(isa.Mul, ir.V(s2), ir.C(7))
	a3 := l.Acc(isa.Add, ir.V(m3), 0)
	l.Store(&out, ir.C(int64(out.Base)), 0, ir.V(a1))
	l.Store(&out, ir.C(int64(out.Base)), 8, ir.V(a2))
	l.Store(&out, ir.C(int64(out.Base)), 16, ir.V(a3))
	return l, in, out
}

func TestPartitionNThreeStages(t *testing.T) {
	const n = 60
	l, in, out := buildDeepLoop(n)
	res, err := PartitionN(l, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stages != 3 || len(res.Threads) != 3 {
		t.Fatalf("stages = %d, threads = %d", res.Stages, len(res.Threads))
	}
	stagesUsed := map[int]bool{}
	for _, th := range res.Assignment {
		stagesUsed[th] = true
	}
	for s := 0; s < 3; s++ {
		if !stagesUsed[s] {
			t.Errorf("stage %d empty", s)
		}
	}

	// Functional equivalence against the single-threaded version.
	single, err := Single(l)
	if err != nil {
		t.Fatal(err)
	}
	img1 := setupImage(in, n)
	if err := interp.New(img1, single).Run(0); err != nil {
		t.Fatal(err)
	}
	img2 := setupImage(in, n)
	if err := interp.New(img2, res.Threads...).Run(0); err != nil {
		t.Fatal(err)
	}
	for o := uint64(0); o < 24; o += 8 {
		if img1.Read8(out.Base+o) != img2.Read8(out.Base+o) {
			t.Fatalf("out+%d: single %#x != 3-stage %#x", o,
				img1.Read8(out.Base+o), img2.Read8(out.Base+o))
		}
	}
}

// TestThreeStagePipelineOnHEAVYWT runs a 3-stage pipeline on a 3-core
// HEAVYWT machine end to end (the substrate scales beyond the paper's
// dual-core configuration).
func TestThreeStagePipelineOnHEAVYWT(t *testing.T) {
	const n = 200
	l, in, out := buildDeepLoop(n)
	res, err := PartitionN(l, 3)
	if err != nil {
		t.Fatal(err)
	}
	img := setupImage(in, n)
	want := setupImage(in, n)
	single, err := Single(l)
	if err != nil {
		t.Fatal(err)
	}
	if err := interp.New(want, single).Run(0); err != nil {
		t.Fatal(err)
	}

	cfg := design.HeavyWTConfig().SimConfig()
	cfg.Preload = []mem.Region{in}
	var threads []sim.Thread
	for _, p := range res.Threads {
		threads = append(threads, sim.Thread{Prog: p})
	}
	r, err := sim.Run(cfg, img, threads)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cycles == 0 {
		t.Fatal("no cycles")
	}
	for o := uint64(0); o < 24; o += 8 {
		if img.Read8(out.Base+o) != want.Read8(out.Base+o) {
			t.Fatalf("out+%d mismatch", o)
		}
	}
}

// TestThreeStagesBeatTwoOnChainHeavyLoop: with enough independent phases
// the extra stage should not hurt and usually helps.
func TestThreeStagesBeatTwoOnChainHeavyLoop(t *testing.T) {
	const n = 400
	l, in, _ := buildDeepLoop(n)
	run := func(stages int) uint64 {
		res, err := PartitionN(l, stages)
		if err != nil {
			t.Fatal(err)
		}
		img := setupImage(in, n)
		cfg := design.HeavyWTConfig().SimConfig()
		cfg.Preload = []mem.Region{in}
		var threads []sim.Thread
		for _, p := range res.Threads {
			threads = append(threads, sim.Thread{Prog: p})
		}
		r, err := sim.Run(cfg, img, threads)
		if err != nil {
			t.Fatal(err)
		}
		return r.Cycles
	}
	two, three := run(2), run(3)
	t.Logf("2-stage: %d cycles, 3-stage: %d cycles", two, three)
	if float64(three) > float64(two)*1.15 {
		t.Errorf("3 stages (%d) much worse than 2 (%d)", three, two)
	}
}

func TestPartitionNErrors(t *testing.T) {
	l, _, _ := buildCounted(20)
	if _, err := PartitionN(l, 1); err == nil {
		t.Error("1 stage accepted")
	}
	if _, err := PartitionN(l, 50); err == nil {
		t.Error("more stages than SCCs accepted")
	}
}
