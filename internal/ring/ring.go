// Package ring provides a wait-free single-producer single-consumer ring
// buffer in the FastFlow style: head and tail live on their own cache
// lines so the producer and consumer never false-share, and each side
// keeps a cached copy of the other's index so the shared counters are
// only re-read when the cached view says the ring looks full or empty
// (batching the cross-core traffic to once per drain/fill instead of once
// per operation).
//
// The contract is strict SPSC: exactly one goroutine may call TryPush and
// exactly one may call TryPop. The two sides may run concurrently.
package ring

import "sync/atomic"

// pad is one cache line of padding (64 bytes covers the common case;
// adjacent-line prefetchers are defeated by the surrounding fields'
// natural separation).
type pad [64]byte

// SPSC is a bounded wait-free single-producer single-consumer queue.
type SPSC[T any] struct {
	_    pad
	head atomic.Uint64 // next slot to pop (consumer-owned)
	_    pad
	tail atomic.Uint64 // next slot to push (producer-owned)
	_    pad
	// cachedHead is the producer's last view of head: TryPush only reloads
	// the shared counter when tail-cachedHead says the ring may be full.
	cachedHead uint64
	_          pad
	// cachedTail is the consumer's last view of tail, symmetrically.
	cachedTail uint64
	_          pad

	buf  []T
	mask uint64
}

// New returns a ring holding at least capacity items (rounded up to a
// power of two, minimum 1).
func New[T any](capacity int) *SPSC[T] {
	n := 1
	for n < capacity {
		n <<= 1
	}
	return &SPSC[T]{buf: make([]T, n), mask: uint64(n - 1)}
}

// Cap returns the ring's capacity.
func (r *SPSC[T]) Cap() int { return len(r.buf) }

// Len returns the number of items currently queued. It is exact when
// called from either endpoint goroutine and a consistent snapshot
// otherwise.
func (r *SPSC[T]) Len() int { return int(r.tail.Load() - r.head.Load()) }

// TryPush enqueues v, reporting false when the ring is full. Producer
// side only.
func (r *SPSC[T]) TryPush(v T) bool {
	t := r.tail.Load()
	if t-r.cachedHead == uint64(len(r.buf)) {
		r.cachedHead = r.head.Load()
		if t-r.cachedHead == uint64(len(r.buf)) {
			return false
		}
	}
	r.buf[t&r.mask] = v
	r.tail.Store(t + 1)
	return true
}

// TryPop dequeues the oldest item, reporting false when the ring is
// empty. Consumer side only.
func (r *SPSC[T]) TryPop() (T, bool) {
	var zero T
	h := r.head.Load()
	if h == r.cachedTail {
		r.cachedTail = r.tail.Load()
		if h == r.cachedTail {
			return zero, false
		}
	}
	v := r.buf[h&r.mask]
	r.buf[h&r.mask] = zero // drop the reference so the GC can reclaim it
	r.head.Store(h + 1)
	return v, true
}
