package ring

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"
)

func TestCapacityRounding(t *testing.T) {
	for _, tc := range []struct{ ask, want int }{
		{0, 1}, {1, 1}, {2, 2}, {3, 4}, {4, 4}, {5, 8}, {1000, 1024},
	} {
		if got := New[int](tc.ask).Cap(); got != tc.want {
			t.Errorf("New(%d).Cap() = %d, want %d", tc.ask, got, tc.want)
		}
	}
}

func TestFIFOAndBounds(t *testing.T) {
	r := New[int](4)
	if _, ok := r.TryPop(); ok {
		t.Fatal("pop from empty ring succeeded")
	}
	for i := 0; i < 4; i++ {
		if !r.TryPush(i) {
			t.Fatalf("push %d rejected below capacity", i)
		}
	}
	if r.TryPush(99) {
		t.Fatal("push into full ring succeeded")
	}
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want 4", r.Len())
	}
	for i := 0; i < 4; i++ {
		v, ok := r.TryPop()
		if !ok || v != i {
			t.Fatalf("pop %d: got (%d, %v)", i, v, ok)
		}
	}
	if _, ok := r.TryPop(); ok {
		t.Fatal("pop from drained ring succeeded")
	}
}

// TestWraparoundAgainstModel drives random push/pop sequences through many
// wraparounds and checks the ring against a plain slice model.
func TestWraparoundAgainstModel(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	r := New[int](8)
	var model []int
	next := 0
	for step := 0; step < 100000; step++ {
		if rng.Intn(2) == 0 {
			ok := r.TryPush(next)
			if wantOK := len(model) < r.Cap(); ok != wantOK {
				t.Fatalf("step %d: push ok=%v, model says %v", step, ok, wantOK)
			}
			if ok {
				model = append(model, next)
				next++
			}
		} else {
			v, ok := r.TryPop()
			if wantOK := len(model) > 0; ok != wantOK {
				t.Fatalf("step %d: pop ok=%v, model says %v", step, ok, wantOK)
			}
			if ok {
				if v != model[0] {
					t.Fatalf("step %d: popped %d, want %d", step, v, model[0])
				}
				model = model[1:]
			}
		}
		if r.Len() != len(model) {
			t.Fatalf("step %d: Len=%d, model=%d", step, r.Len(), len(model))
		}
	}
}

// TestConcurrentTransfer checks the actual SPSC contract under the race
// detector: every value pushed arrives exactly once, in order. Both sides
// yield when the ring blocks them so the test also runs on GOMAXPROCS=1.
func TestConcurrentTransfer(t *testing.T) {
	const n = 50000
	r := New[uint64](64)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := uint64(0); i < n; {
			if r.TryPush(i) {
				i++
			} else {
				runtime.Gosched()
			}
		}
	}()
	for want := uint64(0); want < n; {
		v, ok := r.TryPop()
		if !ok {
			runtime.Gosched()
			continue
		}
		if v != want {
			t.Fatalf("received %d, want %d", v, want)
		}
		want++
	}
	wg.Wait()
	if r.Len() != 0 {
		t.Fatalf("ring not drained: Len=%d", r.Len())
	}
}
