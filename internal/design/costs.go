package design

import "fmt"

// HardwareCost quantifies a design point's additional on-chip state and
// OS impact relative to EXISTING — the cost side of the paper's
// cost/performance trade-off (§3.4-§3.5 and the conclusion's "98% of the
// speedup ... using only 1% of the additional on-chip storage hardware").
type HardwareCost struct {
	Design string

	// DedicatedStorageBytes is streaming-specific on-chip storage added
	// beyond the conventional memory hierarchy (the HEAVYWT
	// synchronization array, SYNCOPTI's stream cache).
	DedicatedStorageBytes int
	// CounterBytes is distributed synchronization-counter state
	// (SYNCOPTI occupancy counters, HEAVYWT credit counters).
	CounterBytes int
	// NewInterconnect reports whether the design adds a dedicated
	// core-to-core network beyond the existing memory bus.
	NewInterconnect bool
	// ISAChanges reports whether new instructions are required.
	ISAChanges bool

	// OSContextBytes is the architectural streaming state the OS must
	// save and restore on a context switch: queue contents for dedicated
	// stores, counters for SYNCOPTI, nothing for memory-backed software
	// queues (their state lives in ordinary pages).
	OSContextBytes int
	// OSDrainRequired reports whether in-flight network state must be
	// drained or spilled on a switch (HEAVYWT's interconnect packets).
	OSDrainRequired bool
}

// itemBytes is the architectural queue item size.
const itemBytes = 8

// Cost computes the hardware/OS cost model for the design point.
func (c Config) Cost() HardwareCost {
	hc := HardwareCost{Design: c.Name()}
	queueStateBytes := c.NumQueues * c.QueueDepth * itemBytes
	// One occupancy/credit counter per queue per core, two cores; a
	// counter is 2 bytes (counts to the queue depth).
	counterBytes := c.NumQueues * 2 * 2

	switch c.Point {
	case Existing:
		// Software queues in ordinary memory: no new state anywhere.
	case MemOpti:
		// Write-forwarding needs a per-line fill bitmap and the (N, entry
		// size) parameters in each L2 controller; count the bitmaps for
		// the queue-region lines as counter state.
		hc.CounterBytes = c.NumQueues * c.QueueDepth / c.QLU * 2 * 2
	case SyncOpti:
		hc.ISAChanges = true
		hc.CounterBytes = counterBytes
		hc.DedicatedStorageBytes = c.StreamCacheEntries * (itemBytes + 8) // data + tag
		hc.OSContextBytes = counterBytes
	case HeavyWT:
		hc.ISAChanges = true
		hc.NewInterconnect = true
		hc.CounterBytes = counterBytes
		hc.DedicatedStorageBytes = queueStateBytes
		// The queue contents and counters are process state.
		hc.OSContextBytes = queueStateBytes + counterBytes
		hc.OSDrainRequired = true
	}
	return hc
}

// TotalAddedBytes is the design's total additional on-chip storage.
func (h HardwareCost) TotalAddedBytes() int {
	return h.DedicatedStorageBytes + h.CounterBytes
}

// ContextSwitchCycles estimates the OS overhead of switching out a
// streaming process: draining in-flight state plus spilling/refilling the
// architectural streaming state at the given memory bandwidth.
func (h HardwareCost) ContextSwitchCycles(bytesPerCycle float64, drainCycles int) float64 {
	cycles := 2 * float64(h.OSContextBytes) / bytesPerCycle // save + restore
	if h.OSDrainRequired {
		cycles += float64(drainCycles)
	}
	return cycles
}

// String summarizes the cost model.
func (h HardwareCost) String() string {
	return fmt.Sprintf("%s: +%dB storage (+%dB counters), ISA=%v, new interconnect=%v, OS context=%dB",
		h.Design, h.DedicatedStorageBytes, h.CounterBytes, h.ISAChanges, h.NewInterconnect, h.OSContextBytes)
}
