package design

import "testing"

func TestCostModel(t *testing.T) {
	existing := ExistingConfig().Cost()
	if existing.TotalAddedBytes() != 0 || existing.OSContextBytes != 0 ||
		existing.ISAChanges || existing.NewInterconnect {
		t.Errorf("EXISTING should be free: %+v", existing)
	}

	heavy := HeavyWTConfig().Cost()
	if heavy.DedicatedStorageBytes != 64*32*8 {
		t.Errorf("HEAVYWT storage = %d, want %d", heavy.DedicatedStorageBytes, 64*32*8)
	}
	if !heavy.ISAChanges || !heavy.NewInterconnect || !heavy.OSDrainRequired {
		t.Error("HEAVYWT flags wrong")
	}
	if heavy.OSContextBytes <= heavy.DedicatedStorageBytes-1 {
		t.Error("HEAVYWT OS context must include the queue contents")
	}

	sc := SyncOptiSCQ64Config().Cost()
	if !sc.ISAChanges || sc.NewInterconnect || sc.OSDrainRequired {
		t.Error("SYNCOPTI flags wrong")
	}
	// The light-weight design uses a small fraction of HEAVYWT's storage
	// and context (the paper's trade-off headline).
	if ratio := float64(sc.TotalAddedBytes()) / float64(heavy.TotalAddedBytes()); ratio > 0.10 {
		t.Errorf("SC+Q64 storage ratio %.3f, want <= 0.10", ratio)
	}
	if ratio := float64(sc.OSContextBytes) / float64(heavy.OSContextBytes); ratio > 0.05 {
		t.Errorf("SC+Q64 OS context ratio %.3f, want <= 0.05", ratio)
	}
}

func TestContextSwitchCycles(t *testing.T) {
	heavy := HeavyWTConfig().Cost()
	cheap := SyncOptiConfig().Cost()
	h := heavy.ContextSwitchCycles(16, 200)
	s := cheap.ContextSwitchCycles(16, 200)
	if h <= s {
		t.Errorf("HEAVYWT switch (%v) should cost more than SYNCOPTI (%v)", h, s)
	}
	if s <= 0 {
		t.Error("SYNCOPTI still has counters to save")
	}
}
