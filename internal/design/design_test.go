package design

import (
	"testing"
)

func TestNames(t *testing.T) {
	cases := map[string]Config{
		"EXISTING":        ExistingConfig(),
		"MEMOPTI":         MemOptiConfig(),
		"SYNCOPTI":        SyncOptiConfig(),
		"SYNCOPTI_Q64":    SyncOptiQ64Config(),
		"SYNCOPTI_SC":     SyncOptiSCConfig(),
		"SYNCOPTI_SC+Q64": SyncOptiSCQ64Config(),
		"HEAVYWT":         HeavyWTConfig(),
	}
	for want, cfg := range cases {
		if cfg.Name() != want {
			t.Errorf("Name = %q, want %q", cfg.Name(), want)
		}
	}
}

func TestLayoutsValid(t *testing.T) {
	for _, cfg := range []Config{
		ExistingConfig(), MemOptiConfig(), SyncOptiConfig(),
		SyncOptiQ64Config(), SyncOptiSCConfig(), SyncOptiSCQ64Config(),
		HeavyWTConfig(),
	} {
		if err := cfg.Layout().Validate(); err != nil {
			t.Errorf("%s: %v", cfg.Name(), err)
		}
		sc := cfg.SimConfig()
		if err := sc.Mem.Validate(); err != nil {
			t.Errorf("%s sim config: %v", cfg.Name(), err)
		}
	}
}

func TestMechanismFlags(t *testing.T) {
	if !ExistingConfig().SoftwareQueues() || !MemOptiConfig().SoftwareQueues() {
		t.Error("EXISTING/MEMOPTI must lower to software queues")
	}
	if SyncOptiConfig().SoftwareQueues() || HeavyWTConfig().SoftwareQueues() {
		t.Error("SYNCOPTI/HEAVYWT must not lower")
	}
	if c := MemOptiConfig().SimConfig(); !c.Mem.WriteForward || !c.Mem.ForwardThroughOzQ {
		t.Error("MEMOPTI flags wrong")
	}
	if c := SyncOptiConfig().SimConfig(); !c.Mem.HWQueues || !c.Mem.WriteForward || c.Mem.ForwardThroughOzQ {
		t.Error("SYNCOPTI flags wrong")
	}
	if c := HeavyWTConfig().SimConfig(); !c.UseSyncArray || c.Mem.HWQueues {
		t.Error("HEAVYWT flags wrong")
	}
	if c := SyncOptiSCQ64Config(); c.QueueDepth != 64 || c.QLU != 16 || c.StreamCacheEntries != 64 {
		t.Error("SC+Q64 parameters wrong")
	}
}

func TestFourPointsOrder(t *testing.T) {
	pts := FourPoints()
	want := []string{"HEAVYWT", "SYNCOPTI", "MEMOPTI", "EXISTING"}
	if len(pts) != 4 {
		t.Fatalf("got %d points", len(pts))
	}
	for i, w := range want {
		if pts[i].Name() != w {
			t.Errorf("point %d = %s, want %s", i, pts[i].Name(), w)
		}
	}
}

func TestExtensionConfigs(t *testing.T) {
	rm := RegMappedConfig()
	if rm.Name() != "REGMAPPED" || !rm.SimConfig().Core.RegMappedQueues {
		t.Error("REGMAPPED config wrong")
	}
	cs := CentralizedStoreConfig(4)
	if cs.SimConfig().SA.ConsumeToUse != 4 {
		t.Error("centralized store latency not applied")
	}
	for _, hops := range []int{1, 2, 4, 8} {
		nq := NetQueueConfig(hops)
		if err := nq.Layout().Validate(); err != nil {
			t.Errorf("NETQUEUE %d hops: %v", hops, err)
		}
		sc := nq.SimConfig()
		if sc.SA.InterconnectLatency != hops {
			t.Errorf("NETQUEUE %d hops: latency %d", hops, sc.SA.InterconnectLatency)
		}
		if sc.SA.Depth != hops*netQueueBufsPerHop {
			t.Errorf("NETQUEUE %d hops: depth %d", hops, sc.SA.Depth)
		}
	}
	to := SyncOptiConfig()
	to.ProbeTimeout = 99
	if to.SimConfig().Mem.ConsumeTimeout != 99 {
		t.Error("probe timeout not applied")
	}
}

func TestBusKnobs(t *testing.T) {
	c := ExistingConfig()
	c.BusCPB = 4
	c.BusWidth = 128
	c.BusPipelined = false
	sc := c.SimConfig()
	if sc.Mem.Bus.CPB != 4 || sc.Mem.Bus.WidthBytes != 128 || sc.Mem.Bus.Pipelined {
		t.Error("bus knobs not forwarded")
	}
	h := HeavyWTConfig()
	h.InterconnectLat = 10
	if got := h.SimConfig().SA.InterconnectLatency; got != 10 {
		t.Errorf("interconnect latency = %d", got)
	}
}
