// Package design defines the paper's four design points and the SYNCOPTI
// optimization variants (Section 4.1, Section 5), mapping each to a
// concrete simulator configuration.
package design

import (
	"fmt"

	"hfstream/internal/core"
	"hfstream/internal/memsys"
	"hfstream/internal/queue"
	"hfstream/internal/sim"
)

// Point identifies a design point from the paper.
type Point int

// The design points.
const (
	// Existing models current commercial CMPs: software queues through the
	// conventional memory subsystem.
	Existing Point = iota
	// MemOpti adds QLU-aware write-forwarding of streaming lines to the
	// consumer's L2 (forwards compete for OzQ slots and L2 ports).
	MemOpti
	// SyncOpti adds produce/consume instructions, stream-address
	// generation, and distributed occupancy counters at the L2
	// controllers; queue data stays in the memory hierarchy.
	SyncOpti
	// HeavyWT uses a dedicated distributed queue backing store
	// (synchronization array) and a dedicated pipelined interconnect.
	HeavyWT
)

// String names the design point as the paper does.
func (p Point) String() string {
	switch p {
	case Existing:
		return "EXISTING"
	case MemOpti:
		return "MEMOPTI"
	case SyncOpti:
		return "SYNCOPTI"
	case HeavyWT:
		return "HEAVYWT"
	default:
		return fmt.Sprintf("Point(%d)", int(p))
	}
}

// Config is a fully-specified machine configuration.
type Config struct {
	Point Point
	// Label distinguishes variants (e.g. "SYNCOPTI_SC+Q64"); empty means
	// Point.String().
	Label string

	NumQueues  int // 64
	QueueDepth int // 32 (64 in the Q64 variants)
	QLU        int // 8 (16 in the Q64 variants)

	// StreamCacheEntries enables SYNCOPTI's stream cache when > 0
	// (paper: 1 KB fully associative = 64 items).
	StreamCacheEntries int

	// InterconnectLat is HEAVYWT's dedicated interconnect end-to-end
	// latency (Figure 6 varies 1 vs 10).
	InterconnectLat int

	// Bus sensitivity knobs (Figures 10 and 11).
	BusCPB       int  // CPU cycles per bus cycle (1 baseline, 4 in Fig 10)
	BusWidth     int  // bytes per beat (16 baseline, 128 in Fig 11)
	BusPipelined bool // baseline: true

	// RegMappedQueues upgrades HEAVYWT's produce/consume to
	// register-mapped queues (paper §3.1.3): the queue operations fold
	// into the defining/using instructions.
	RegMappedQueues bool
	// SAConsumeToUse overrides HEAVYWT's consume-to-use latency
	// (0 = default 1 cycle). A centralized dedicated store (paper
	// §3.5.2) sits farther from the cores than the distributed one.
	SAConsumeToUse int
	// ProbeTimeout overrides SYNCOPTI's partial-line probe timeout
	// (0 = default).
	ProbeTimeout int

	// Cores selects the machine's core count for pipelined benchmarks.
	// 0 and 2 mean the paper's dual-core machine; 3 and up run k-stage
	// DSWP pipelines (one stage per core). Single-threaded runs ignore
	// it.
	Cores int
	// Parallel selects the parallel-stage (PS-DSWP) shape instead of a
	// k-stage chain: Cores-1 replicated workers plus a merger. Requires
	// Cores >= 3.
	Parallel bool
}

// Name returns the variant label.
func (c Config) Name() string {
	if c.Label != "" {
		return c.Label
	}
	return c.Point.String()
}

func base(p Point) Config {
	return Config{
		Point:           p,
		NumQueues:       64,
		QueueDepth:      32,
		QLU:             8,
		InterconnectLat: 1,
		BusCPB:          1,
		BusWidth:        16,
		BusPipelined:    true,
	}
}

// ExistingConfig returns the EXISTING baseline.
func ExistingConfig() Config { return base(Existing) }

// MemOptiConfig returns the MEMOPTI design point.
func MemOptiConfig() Config { return base(MemOpti) }

// SyncOptiConfig returns the SYNCOPTI design point.
func SyncOptiConfig() Config { return base(SyncOpti) }

// SyncOptiQ64Config returns SYNCOPTI with 64-entry queues and QLU 16
// (paper Section 5, "Q64").
func SyncOptiQ64Config() Config {
	c := base(SyncOpti)
	c.Label = "SYNCOPTI_Q64"
	c.QueueDepth = 64
	c.QLU = 16
	return c
}

// SyncOptiSCConfig returns SYNCOPTI with the 1 KB stream cache ("SC").
func SyncOptiSCConfig() Config {
	c := base(SyncOpti)
	c.Label = "SYNCOPTI_SC"
	c.StreamCacheEntries = 64
	return c
}

// SyncOptiSCQ64Config returns the paper's best light-weight design:
// SYNCOPTI with both the stream cache and 64-entry queues ("SC+Q64").
func SyncOptiSCQ64Config() Config {
	c := SyncOptiQ64Config()
	c.Label = "SYNCOPTI_SC+Q64"
	c.StreamCacheEntries = 64
	return c
}

// HeavyWTConfig returns the HEAVYWT design point.
func HeavyWTConfig() Config { return base(HeavyWT) }

// netQueueBufsPerHop is the FIFO buffering each network hop contributes
// when the interconnect's own buffers back the queues (paper §3.5.3).
const netQueueBufsPerHop = 4

// NetQueueConfig returns the §3.5.3 network-backed-queue design: the
// pipelined interconnect's per-hop buffers are the only queue storage, so
// capacity and transit latency both scale with the physical separation of
// the communicating cores. Threads on nearby cores get little decoupling
// — the paper's scalability caveat for this design.
func NetQueueConfig(hops int) Config {
	c := base(HeavyWT)
	c.Label = fmt.Sprintf("NETQUEUE_%dhop", hops)
	c.QueueDepth = hops * netQueueBufsPerHop
	// The memory layout is unused but must stay valid: QLU has to divide
	// the depth (odd hop counts give depths like 12 that 8 does not).
	for c.QueueDepth%c.QLU != 0 {
		c.QLU /= 2
	}
	c.InterconnectLat = hops
	return c
}

// FourPoints returns the paper's four primary design points in Figure 7's
// bar order (HEAVYWT, SYNCOPTI, MEMOPTI, EXISTING).
func FourPoints() []Config {
	return []Config{HeavyWTConfig(), SyncOptiConfig(), MemOptiConfig(), ExistingConfig()}
}

// StandardConfigs returns every named design point of the evaluation —
// the four primary points plus the Figure 12 queue-size and stream-cache
// variants — in a fixed, CLI- and goldens-friendly order.
func StandardConfigs() []Config {
	return []Config{
		ExistingConfig(), MemOptiConfig(), SyncOptiConfig(),
		SyncOptiQ64Config(), SyncOptiSCConfig(), SyncOptiSCQ64Config(),
		HeavyWTConfig(),
	}
}

// Layout returns the queue layout implied by the configuration.
func (c Config) Layout() queue.Layout {
	return queue.Layout{
		NumQueues: c.NumQueues,
		Depth:     c.QueueDepth,
		QLU:       c.QLU,
		LineBytes: 128,
	}
}

// SimConfig lowers the design point to a simulator configuration.
func (c Config) SimConfig() sim.Config {
	layout := c.Layout()
	mp := memsys.DefaultParams(layout)
	mp.Bus.CPB = c.BusCPB
	mp.Bus.WidthBytes = c.BusWidth
	mp.Bus.Pipelined = c.BusPipelined

	cfg := sim.Config{Mem: mp, Core: core.DefaultParams()}
	switch c.Point {
	case Existing:
		// Conventional memory subsystem: nothing extra.
	case MemOpti:
		cfg.Mem.WriteForward = true
		cfg.Mem.ForwardThroughOzQ = true
	case SyncOpti:
		cfg.Mem.WriteForward = true
		cfg.Mem.HWQueues = true
		cfg.Mem.StreamCacheEntries = c.StreamCacheEntries
		if c.ProbeTimeout > 0 {
			cfg.Mem.ConsumeTimeout = c.ProbeTimeout
		}
	case HeavyWT:
		cfg.UseSyncArray = true
		sa := queue.DefaultSAParams(c.NumQueues, c.QueueDepth)
		sa.InterconnectLatency = c.InterconnectLat
		if c.SAConsumeToUse > 0 {
			sa.ConsumeToUse = c.SAConsumeToUse
		}
		cfg.SA = sa
		cfg.Core.RegMappedQueues = c.RegMappedQueues
	}
	return cfg
}

// RegMappedConfig returns the §3.1.3 register-mapped-queue design: the
// HEAVYWT substrate with zero-instruction-overhead queue operations.
func RegMappedConfig() Config {
	c := base(HeavyWT)
	c.Label = "REGMAPPED"
	c.RegMappedQueues = true
	return c
}

// CentralizedStoreConfig returns the §3.5.2 centralized dedicated store
// variant: HEAVYWT storage placed in one central structure, farther from
// the consuming cores (modeled as a larger consume-to-use latency).
func CentralizedStoreConfig(consumeToUse int) Config {
	c := base(HeavyWT)
	c.Label = "HEAVYWT_CENTRAL"
	c.SAConsumeToUse = consumeToUse
	return c
}

// SoftwareQueues reports whether programs must be lowered to software
// queue sequences for this design point.
func (c Config) SoftwareQueues() bool {
	return c.Point == Existing || c.Point == MemOpti
}

// WithCores returns the configuration retargeted to an n-core machine
// (n >= 3 runs n-stage pipelines) with the suffixed label the design
// registry uses, e.g. "SYNCOPTI_SC+Q64_4CORE".
func (c Config) WithCores(n int) Config {
	c.Cores = n
	c.Label = fmt.Sprintf("%s_%dCORE", c.Name(), n)
	return c
}

// MPMCConfig returns the parallel-stage design point: the HEAVYWT
// substrate running Cores-1 replicated workers and a merger over
// multi-producer/multi-consumer-capable queues. The name honours the
// queue semantics the topology exercises even though the DSWP
// parallel-stage partitioner realizes them as SPSC lanes — the syncarray
// and software lowerings accept true MPMC routes for custom programs.
func MPMCConfig() Config {
	c := base(HeavyWT)
	c.Label = "MPMC"
	c.Cores = 4
	c.Parallel = true
	return c
}

// MPMCQ64Config is MPMCConfig with 64-entry queues and QLU 16, matching
// the Q64 variants of the dual-core study.
func MPMCQ64Config() Config {
	c := MPMCConfig()
	c.Label = "MPMC_Q64"
	c.QueueDepth = 64
	c.QLU = 16
	return c
}
