package core

import (
	"testing"

	"hfstream/internal/asm"
	"hfstream/internal/isa"
	"hfstream/internal/stats"
	"hfstream/trace"
)

// checkStallInvariant asserts the accounting identity the observability
// layer promises: every cycle either issued or is charged to exactly one
// stall reason and one machine region.
func checkStallInvariant(t *testing.T, c *Core) {
	t.Helper()
	if got, want := c.Stalls.Total(), c.Cycles-c.IssueCycles; got != want {
		t.Errorf("Stalls.Total() = %d, want Cycles-IssueCycles = %d", got, want)
	}
	if c.StallRegions.Total() != c.Stalls.Total() {
		t.Errorf("StallRegions total %d != Stalls total %d",
			c.StallRegions.Total(), c.Stalls.Total())
	}
}

func TestStallOperandCounted(t *testing.T) {
	// mul (3 cycles) feeding an add leaves zero-issue cycles charged to
	// operand latency.
	b := asm.NewBuilder("op")
	b.MovI(1, 2)
	b.Mul(2, 1, 1)
	b.Add(3, 2, 2)
	b.Halt()
	c := New(0, DefaultParams(), b.MustProgram(), newFakeMem(1), nil)
	run(t, c, 100)
	if c.Stalls[StallOperand] == 0 {
		t.Errorf("no operand-latency stalls recorded: %s", c.Stalls.Summary())
	}
	checkStallInvariant(t, c)
}

func TestStallTokenChargedToRegion(t *testing.T) {
	// A use blocked on a slow load is a memory-token stall charged to the
	// token's location (fakeMem tokens live in L2).
	m := newFakeMem(20)
	b := asm.NewBuilder("tok")
	b.MovI(1, 0x100)
	b.Ld(2, 1, 0)
	b.Add(3, 2, 2)
	b.Halt()
	c := New(0, DefaultParams(), b.MustProgram(), m, nil)
	run(t, c, 200)
	if c.Stalls[StallToken] == 0 {
		t.Errorf("no memory-token stalls recorded: %s", c.Stalls.Summary())
	}
	if c.StallRegions.Cycles[stats.L2] == 0 {
		t.Error("token stalls not charged to the L2 region")
	}
	checkStallInvariant(t, c)
}

func TestStallFUCounted(t *testing.T) {
	// With zero FP units an FP op can never issue; every cycle is an FU
	// conflict.
	p := DefaultParams()
	p.FUs[isa.FUFP] = 0
	b := asm.NewBuilder("fu")
	b.FAdd(1, 0, 0)
	b.Halt()
	c := New(0, p, b.MustProgram(), newFakeMem(1), nil)
	for cycle := uint64(1); cycle <= 5; cycle++ {
		c.Tick(cycle)
	}
	if c.Stalls[StallFU] != 5 {
		t.Errorf("fu-conflict stalls = %d, want 5: %s", c.Stalls[StallFU], c.Stalls.Summary())
	}
	checkStallInvariant(t, c)
}

func TestStallOzQFullCounted(t *testing.T) {
	m := newFakeMem(1)
	m.accepts = false
	b := asm.NewBuilder("ozq")
	b.MovI(1, 0x100)
	b.Ld(2, 1, 0)
	b.Halt()
	c := New(0, DefaultParams(), b.MustProgram(), m, nil)
	for cycle := uint64(1); cycle <= 10; cycle++ {
		c.Tick(cycle)
	}
	if c.Stalls[StallOzQFull] == 0 {
		t.Errorf("no ozq-full stalls recorded: %s", c.Stalls.Summary())
	}
	checkStallInvariant(t, c)
	m.accepts = true
	run(t, c, 100)
	checkStallInvariant(t, c)
}

func TestStallLoadLimitCounted(t *testing.T) {
	p := DefaultParams()
	p.MaxOutstandingLoads = 1
	m := newFakeMem(30)
	b := asm.NewBuilder("ll")
	b.MovI(1, 0x100)
	b.Ld(2, 1, 0)
	b.Ld(3, 1, 8)
	b.Halt()
	c := New(0, p, b.MustProgram(), m, nil)
	run(t, c, 400)
	if c.Stalls[StallLoadLimit] == 0 {
		t.Errorf("no load-limit stalls recorded: %s", c.Stalls.Summary())
	}
	checkStallInvariant(t, c)
}

func TestStallFenceCounted(t *testing.T) {
	// A fence that the memory port refuses is its own stall reason, not
	// ozq-full.
	m := newFakeMem(1)
	m.accepts = false
	b := asm.NewBuilder("fence")
	b.Fence()
	b.Halt()
	c := New(0, DefaultParams(), b.MustProgram(), m, nil)
	for cycle := uint64(1); cycle <= 6; cycle++ {
		c.Tick(cycle)
	}
	if c.Stalls[StallFence] != 6 {
		t.Errorf("fence stalls = %d, want 6: %s", c.Stalls[StallFence], c.Stalls.Summary())
	}
	if c.Stalls[StallOzQFull] != 0 {
		t.Error("fence stall misclassified as ozq-full")
	}
	checkStallInvariant(t, c)
	m.accepts = true
	run(t, c, 100)
	checkStallInvariant(t, c)
}

func TestStallQueueFullCounted(t *testing.T) {
	s := newFakeStream()
	s.reject = true
	b := asm.NewBuilder("qf")
	b.MovI(1, 5)
	b.Produce(0, 1)
	b.Halt()
	c := New(0, DefaultParams(), b.MustProgram(), newFakeMem(1), s)
	for cycle := uint64(1); cycle <= 8; cycle++ {
		c.Tick(cycle)
	}
	if c.Stalls[StallQueueFull] == 0 {
		t.Errorf("no queue-full stalls recorded: %s", c.Stalls.Summary())
	}
	checkStallInvariant(t, c)
	s.reject = false
	run(t, c, 100)
	if c.Produces != 1 {
		t.Errorf("Produces = %d, want 1", c.Produces)
	}
	checkStallInvariant(t, c)
}

func TestStallQueueEmptyCounted(t *testing.T) {
	s := newFakeStream()
	b := asm.NewBuilder("qe")
	b.Consume(1, 0)
	b.Halt()
	c := New(0, DefaultParams(), b.MustProgram(), newFakeMem(1), s)
	for cycle := uint64(1); cycle <= 8; cycle++ {
		c.Tick(cycle)
	}
	if c.Stalls[StallQueueEmpty] != 8 {
		t.Errorf("queue-empty stalls = %d, want 8: %s", c.Stalls[StallQueueEmpty], c.Stalls.Summary())
	}
	checkStallInvariant(t, c)
	s.queues[0] = append(s.queues[0], 5)
	run(t, c, 100)
	if c.Consumes != 1 {
		t.Errorf("Consumes = %d, want 1", c.Consumes)
	}
	checkStallInvariant(t, c)
}

func TestStallWAWCounted(t *testing.T) {
	m := newFakeMem(30)
	b := asm.NewBuilder("waw")
	b.MovI(1, 0x100)
	b.Ld(2, 1, 0)
	b.MovI(2, 7)
	b.Halt()
	c := New(0, DefaultParams(), b.MustProgram(), m, nil)
	run(t, c, 200)
	if c.Stalls[StallWAW] == 0 {
		t.Errorf("no waw-hazard stalls recorded: %s", c.Stalls.Summary())
	}
	checkStallInvariant(t, c)
}

func TestStallHaltedDrainCounted(t *testing.T) {
	// Cycles between halt and the last store draining are charged to
	// StallHalted and to the store's region.
	m := newFakeMem(40)
	b := asm.NewBuilder("drain")
	b.MovI(1, 0x100)
	b.St(1, 0, 1)
	b.Halt()
	c := New(0, DefaultParams(), b.MustProgram(), m, nil)
	run(t, c, 200)
	if c.Stalls[StallHalted] == 0 {
		t.Errorf("no halted-drain stalls recorded: %s", c.Stalls.Summary())
	}
	if c.StallRegions.Cycles[stats.L2] == 0 {
		t.Error("drain stalls not charged to the store token's region")
	}
	checkStallInvariant(t, c)
}

func TestStallSummary(t *testing.T) {
	var s StallCycles
	if got := s.Summary(); got != "none" {
		t.Errorf("empty summary = %q", got)
	}
	s[StallOperand] = 3
	s[StallQueueEmpty] = 4
	want := "operand-latency=3 queue-empty=4 total=7"
	if got := s.Summary(); got != want {
		t.Errorf("summary = %q, want %q", got, want)
	}
	if s.Total() != 7 {
		t.Errorf("total = %d", s.Total())
	}
}

func TestTracerCoalescesStallRuns(t *testing.T) {
	s := newFakeStream()
	b := asm.NewBuilder("trace")
	b.Consume(1, 0)
	b.Halt()
	c := New(0, DefaultParams(), b.MustProgram(), newFakeMem(1), s)
	c.Tracer = trace.NewBuffer(64)
	for cycle := uint64(1); cycle <= 5; cycle++ {
		c.Tick(cycle)
	}
	s.queues[0] = append(s.queues[0], 9)
	end := uint64(0)
	for cycle := uint64(6); cycle <= 100; cycle++ {
		c.Tick(cycle)
		if c.Done(cycle) {
			end = cycle
			break
		}
	}
	if end == 0 {
		t.Fatal("core did not finish")
	}
	c.FinishTrace(end + 1)

	var stalls, queueOps int
	for _, e := range c.Tracer.Events() {
		switch e.Kind {
		case trace.KindStall:
			stalls++
			if e.Op != StallQueueEmpty.String() {
				t.Errorf("stall event op = %q", e.Op)
			}
			if e.Cycle != 1 || e.Dur != 5 {
				t.Errorf("stall run = [%d, +%d), want [1, +5)", e.Cycle, e.Dur)
			}
		case trace.KindQueueOp:
			queueOps++
			if e.Q != 0 || e.Op != "consume" {
				t.Errorf("queue op event = %+v", e)
			}
		}
	}
	if stalls != 1 {
		t.Errorf("got %d stall events, want 1 coalesced run", stalls)
	}
	if queueOps != 1 {
		t.Errorf("got %d queue-op events, want 1", queueOps)
	}
}
