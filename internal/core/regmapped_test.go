package core

import (
	"testing"

	"hfstream/internal/asm"
	"hfstream/internal/isa"
)

// TestRegMappedQueuesFreeIssue: with register-mapped queues, produce and
// consume take no memory-FU slot, so a group of 4 loads plus produces
// can issue in fewer cycles than with explicit instructions.
func TestRegMappedQueuesFreeIssue(t *testing.T) {
	build := func() *isa.Program {
		b := asm.NewBuilder("rm")
		b.MovI(1, 0x1000)
		b.MovI(2, 50)
		b.Label("loop")
		// 4 loads (saturating the 4 memory FUs) plus 2 produces: with
		// explicit instructions the produces spill into a second memory
		// issue cycle; register-mapped they ride free.
		b.Ld(3, 1, 0)
		b.Ld(4, 1, 8)
		b.Ld(5, 1, 16)
		b.Ld(6, 1, 24)
		b.Produce(0, 1)
		b.Produce(1, 1)
		b.AddI(2, 2, -1)
		b.Bnez(2, "loop")
		b.Halt()
		return b.MustProgram()
	}

	run := func(regMapped bool) uint64 {
		p := DefaultParams()
		p.RegMappedQueues = regMapped
		c := New(0, p, build(), newFakeMem(1), newFakeStream())
		for cycle := uint64(1); cycle < 100000; cycle++ {
			c.Tick(cycle)
			if c.Done(cycle) {
				return cycle
			}
		}
		t.Fatal("did not finish")
		return 0
	}
	explicit := run(false)
	mapped := run(true)
	if mapped >= explicit {
		t.Errorf("register-mapped (%d cycles) should beat explicit (%d)", mapped, explicit)
	}
}

// TestRegMappedStillBlocksOnFullQueue: folding the operations away does
// not remove queue semantics.
func TestRegMappedStillBlocksOnFullQueue(t *testing.T) {
	s := newFakeStream()
	s.reject = true
	b := asm.NewBuilder("blocked")
	b.Produce(0, 1)
	b.Halt()
	p := DefaultParams()
	p.RegMappedQueues = true
	c := New(0, p, b.MustProgram(), newFakeMem(1), s)
	for cycle := uint64(1); cycle <= 10; cycle++ {
		c.Tick(cycle)
	}
	if c.Halted() {
		t.Fatal("produce on a rejecting queue should block")
	}
	if c.LastStall != StallQueueFull {
		t.Errorf("stall = %v", c.LastStall)
	}
}
