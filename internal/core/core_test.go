package core

import (
	"testing"
	"testing/quick"

	"hfstream/internal/asm"
	"hfstream/internal/isa"
	"hfstream/internal/port"
	"hfstream/internal/stats"
)

// fakeMem is an ideal memory: fixed-latency loads/stores against a map.
type fakeMem struct {
	data    map[uint64]uint64
	latency uint64
	accepts bool
	loads   int
	stores  int
	pending []*port.Token
}

func newFakeMem(latency uint64) *fakeMem {
	return &fakeMem{data: map[uint64]uint64{}, latency: latency, accepts: true}
}

func (f *fakeMem) CanAccept() bool { return f.accepts }

func (f *fakeMem) Load(cycle, addr uint64) *port.Token {
	f.loads++
	tok := port.NewToken(stats.L2)
	tok.Complete(cycle+f.latency, f.data[addr&^7])
	return tok
}

func (f *fakeMem) Store(cycle, addr, val uint64) *port.Token {
	f.stores++
	f.data[addr&^7] = val
	tok := port.NewToken(stats.L2)
	tok.Complete(cycle+f.latency, val)
	return tok
}

func (f *fakeMem) Fence(cycle uint64) *port.Token {
	tok := port.NewToken(stats.L2)
	tok.Complete(cycle+1, 0)
	return tok
}

// fakeStream is an unbounded queue device with optional rejection.
type fakeStream struct {
	queues map[int][]uint64
	reject bool
}

func newFakeStream() *fakeStream { return &fakeStream{queues: map[int][]uint64{}} }

func (f *fakeStream) Produce(cycle uint64, q int, v uint64) (*port.Token, bool) {
	if f.reject {
		return nil, false
	}
	f.queues[q] = append(f.queues[q], v)
	tok := port.NewToken(stats.PreL2)
	tok.Complete(cycle+1, v)
	return tok, true
}

func (f *fakeStream) Consume(cycle uint64, q int) (*port.Token, bool) {
	if f.reject || len(f.queues[q]) == 0 {
		return nil, false
	}
	v := f.queues[q][0]
	f.queues[q] = f.queues[q][1:]
	tok := port.NewToken(stats.PreL2)
	tok.Complete(cycle+1, v)
	return tok, true
}

func run(t *testing.T, c *Core, maxCycles uint64) uint64 {
	t.Helper()
	for cycle := uint64(1); cycle <= maxCycles; cycle++ {
		c.Tick(cycle)
		if c.Done(cycle) {
			return cycle
		}
	}
	t.Fatalf("core did not finish in %d cycles (pc=%d stall=%v)", maxCycles, c.LastPC, c.LastStall)
	return 0
}

func TestStraightLineALU(t *testing.T) {
	b := asm.NewBuilder("alu")
	b.MovI(1, 6)
	b.MovI(2, 7)
	b.Mul(3, 1, 2)
	b.AddI(4, 3, 100)
	b.Halt()
	c := New(0, DefaultParams(), b.MustProgram(), newFakeMem(1), nil)
	run(t, c, 100)
	if got := c.Reg(4); got != 142 {
		t.Errorf("r4 = %d, want 142", got)
	}
}

func TestDependenceLatency(t *testing.T) {
	// mul (3 cycles) feeding an add: the add must wait.
	b := asm.NewBuilder("dep")
	b.MovI(1, 2)
	b.Mul(2, 1, 1)
	b.Add(3, 2, 2)
	b.Halt()
	c := New(0, DefaultParams(), b.MustProgram(), newFakeMem(1), nil)
	end := run(t, c, 100)
	// movi+mul issue cycle 1 (independent? mul needs r1 ready at cycle 2).
	// Lower bound: mul at 2, result at 5, add at 5, halt at 5 or later.
	if end < 4 {
		t.Errorf("finished at %d, too fast for a 3-cycle multiply chain", end)
	}
	if c.Reg(3) != 8 {
		t.Errorf("r3 = %d", c.Reg(3))
	}
}

func TestIssueWidthBound(t *testing.T) {
	// 12 independent ALU ops on a 6-wide machine need >= 2 busy cycles.
	b := asm.NewBuilder("width")
	for i := 1; i <= 12; i++ {
		b.MovI(isa.Reg(i), int64(i))
	}
	b.Halt()
	c := New(0, DefaultParams(), b.MustProgram(), newFakeMem(1), nil)
	end := run(t, c, 100)
	if end < 2 {
		t.Errorf("12 instructions finished in %d cycles on a 6-wide core", end)
	}
	if c.Issued != 13 {
		t.Errorf("issued %d, want 13", c.Issued)
	}
}

func TestFPFUBound(t *testing.T) {
	// 8 independent FP adds with 2 FP units need >= 4 issue cycles.
	b := asm.NewBuilder("fp")
	for i := 1; i <= 8; i++ {
		b.FAdd(isa.Reg(i), 0, 0)
	}
	b.Halt()
	c := New(0, DefaultParams(), b.MustProgram(), newFakeMem(1), nil)
	end := run(t, c, 100)
	if end < 4 {
		t.Errorf("8 FP ops finished in %d cycles with 2 FP units", end)
	}
}

func TestBranchLoop(t *testing.T) {
	b := asm.NewBuilder("loop")
	b.MovI(1, 10)
	b.MovI(2, 0)
	b.Label("top")
	b.Add(2, 2, 1)
	b.AddI(1, 1, -1)
	b.Bnez(1, "top")
	b.Halt()
	c := New(0, DefaultParams(), b.MustProgram(), newFakeMem(1), nil)
	run(t, c, 1000)
	if c.Reg(2) != 55 {
		t.Errorf("sum = %d, want 55", c.Reg(2))
	}
}

func TestLoadStore(t *testing.T) {
	m := newFakeMem(3)
	m.data[0x100] = 17
	b := asm.NewBuilder("mem")
	b.MovI(1, 0x100)
	b.Ld(2, 1, 0)
	b.AddI(3, 2, 1)
	b.St(1, 8, 3)
	b.Halt()
	c := New(0, DefaultParams(), b.MustProgram(), m, nil)
	run(t, c, 100)
	if m.data[0x108] != 18 {
		t.Errorf("store result %d, want 18", m.data[0x108])
	}
	if m.loads != 1 || m.stores != 1 {
		t.Errorf("loads=%d stores=%d", m.loads, m.stores)
	}
}

func TestOzQBackpressure(t *testing.T) {
	m := newFakeMem(1)
	m.accepts = false
	b := asm.NewBuilder("bp")
	b.MovI(1, 0x100)
	b.Ld(2, 1, 0)
	b.Halt()
	c := New(0, DefaultParams(), b.MustProgram(), m, nil)
	for cycle := uint64(1); cycle <= 10; cycle++ {
		c.Tick(cycle)
	}
	if c.Halted() {
		t.Fatal("core should be stuck behind the full OzQ")
	}
	if c.LastStall != StallOzQFull {
		t.Errorf("stall = %v, want %v", c.LastStall, StallOzQFull)
	}
	m.accepts = true
	run(t, c, 100)
}

func TestLoadLimit(t *testing.T) {
	p := DefaultParams()
	p.MaxOutstandingLoads = 2
	m := newFakeMem(50) // slow loads pile up
	b := asm.NewBuilder("ll")
	b.MovI(1, 0x100)
	for i := 2; i <= 6; i++ {
		b.Ld(isa.Reg(i), 1, int64(i*8))
	}
	b.Halt()
	c := New(0, p, b.MustProgram(), m, nil)
	hitLimit := false
	for cycle := uint64(1); cycle <= 400; cycle++ {
		c.Tick(cycle)
		if c.LastStall == StallLoadLimit {
			hitLimit = true
		}
		if c.Done(cycle) {
			break
		}
	}
	if !hitLimit {
		t.Error("never hit the outstanding-load limit")
	}
}

func TestProduceConsumeRoundTrip(t *testing.T) {
	s := newFakeStream()
	b := asm.NewBuilder("pc")
	b.MovI(1, 41)
	b.Produce(2, 1)
	b.Consume(3, 2)
	b.AddI(4, 3, 1)
	b.Halt()
	c := New(0, DefaultParams(), b.MustProgram(), newFakeMem(1), s)
	run(t, c, 100)
	if c.Reg(4) != 42 {
		t.Errorf("r4 = %d", c.Reg(4))
	}
	if c.IssuedComm != 2 {
		t.Errorf("comm issued = %d, want 2", c.IssuedComm)
	}
}

func TestConsumeEmptyStalls(t *testing.T) {
	s := newFakeStream()
	b := asm.NewBuilder("empty")
	b.Consume(1, 0)
	b.Halt()
	c := New(0, DefaultParams(), b.MustProgram(), newFakeMem(1), s)
	for cycle := uint64(1); cycle <= 5; cycle++ {
		c.Tick(cycle)
	}
	if c.LastStall != StallQueueEmpty {
		t.Errorf("stall = %v", c.LastStall)
	}
	s.queues[0] = append(s.queues[0], 5)
	run(t, c, 100)
	if c.Reg(1) != 5 {
		t.Errorf("r1 = %d", c.Reg(1))
	}
}

func TestBreakdownSumsToCycles(t *testing.T) {
	m := newFakeMem(5)
	b := asm.NewBuilder("bd")
	b.MovI(1, 0x100)
	b.MovI(4, 20)
	b.Label("top")
	b.Ld(2, 1, 0)
	b.Add(3, 3, 2)
	b.AddI(4, 4, -1)
	b.Bnez(4, "top")
	b.Halt()
	c := New(0, DefaultParams(), b.MustProgram(), m, nil)
	run(t, c, 10000)
	if c.Breakdown.Total() != c.Cycles {
		t.Errorf("breakdown total %d != cycles %d", c.Breakdown.Total(), c.Cycles)
	}
}

func TestCommOnlyCyclesArePostL2(t *testing.T) {
	// A program that issues only comm-tagged instructions accumulates
	// PostL2 busy cycles.
	b := asm.NewBuilder("comm")
	b.BeginComm()
	for i := 0; i < 12; i++ {
		b.AddI(1, 1, 1)
	}
	b.EndComm()
	b.Halt()
	c := New(0, DefaultParams(), b.MustProgram(), newFakeMem(1), nil)
	run(t, c, 100)
	if c.Breakdown.Cycles[stats.PostL2] == 0 {
		t.Error("expected PostL2 cycles for comm-only issue")
	}
}

// Property: the core's ALU semantics agree with isa.Eval for random
// operand values across every two-source integer opcode.
func TestExecMatchesEvalProperty(t *testing.T) {
	ops := []isa.Op{isa.Add, isa.Sub, isa.Mul, isa.Div, isa.And, isa.Or,
		isa.Xor, isa.CmpEQ, isa.CmpNE, isa.CmpLT, isa.FAdd, isa.FMul}
	f := func(opIdx uint8, a, b uint64) bool {
		op := ops[int(opIdx)%len(ops)]
		bl := asm.NewBuilder("p")
		bl.Emit(isa.Instr{Op: op, Rd: 3, Ra: 1, Rb: 2})
		bl.Halt()
		c := New(0, DefaultParams(), bl.MustProgram(), newFakeMem(1), nil)
		c.SetReg(1, a)
		c.SetReg(2, b)
		for cycle := uint64(1); cycle < 50; cycle++ {
			c.Tick(cycle)
			if c.Done(cycle) {
				break
			}
		}
		return c.Reg(3) == isa.Eval(op, a, b, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestWAWStall(t *testing.T) {
	// A slow load into r2 followed by an ALU write of r2 must not let the
	// stale load overwrite the newer value.
	m := newFakeMem(30)
	b := asm.NewBuilder("waw")
	b.MovI(1, 0x100)
	b.Ld(2, 1, 0)
	b.MovI(2, 7) // WAW on r2
	b.Halt()
	m.data[0x100] = 99
	c := New(0, DefaultParams(), b.MustProgram(), m, nil)
	run(t, c, 200)
	if c.Reg(2) != 7 {
		t.Errorf("r2 = %d, want 7 (WAW hazard mishandled)", c.Reg(2))
	}
}
