// Package core models an in-order multi-issue processor core patterned
// after the paper's Itanium 2 baseline: 6-issue with a 6 ALU / 4 memory /
// 2 FP / 3 branch functional-unit mix, scoreboarded register dependences,
// at most 16 outstanding loads, and fire-and-forget stores tracked through
// the memory subsystem's OzQ.
//
// Every cycle is attributed to exactly one breakdown bucket (paper
// Figures 7, 10-12): cycles that issue application work count as PreL2,
// cycles that issue only communication-overhead instructions count as
// PostL2 (the extra execute/commit bandwidth those instructions consume),
// and stall cycles are charged to the machine region the blocking
// operation currently waits in.
package core

import (
	"fmt"

	"hfstream/internal/isa"
	"hfstream/internal/port"
	"hfstream/internal/stats"
)

// Params configures a core.
type Params struct {
	IssueWidth          int
	FUs                 [isa.NumFUs]int
	MaxOutstandingLoads int

	// RegMappedQueues models the paper's §3.1.3 design option: a portion
	// of the register address space names inter-core queues, so produce
	// and consume fold into the instructions that define or use the
	// value. Modeled by letting produce/consume issue without consuming
	// an issue slot or memory functional unit (their dependence height
	// and queue semantics are unchanged).
	RegMappedQueues bool
}

// DefaultParams returns the paper's Itanium 2 core configuration.
func DefaultParams() Params {
	return Params{
		IssueWidth:          6,
		FUs:                 [isa.NumFUs]int{isa.FUALU: 6, isa.FUMem: 4, isa.FUFP: 2, isa.FUBranch: 3},
		MaxOutstandingLoads: 16,
	}
}

// StallReason summarises why issue stopped in a cycle (for debugging and
// deadlock reports).
type StallReason int

// Stall reasons.
const (
	StallNone StallReason = iota
	StallOperand
	StallToken
	StallFU
	StallOzQFull
	StallLoadLimit
	StallQueueFull
	StallQueueEmpty
	StallWAW
	StallHalted
)

// String names the stall reason.
func (s StallReason) String() string {
	switch s {
	case StallNone:
		return "none"
	case StallOperand:
		return "operand-latency"
	case StallToken:
		return "memory-token"
	case StallFU:
		return "fu-conflict"
	case StallOzQFull:
		return "ozq-full"
	case StallLoadLimit:
		return "load-limit"
	case StallQueueFull:
		return "queue-full"
	case StallQueueEmpty:
		return "queue-empty"
	case StallWAW:
		return "waw-hazard"
	case StallHalted:
		return "halted"
	default:
		return fmt.Sprintf("StallReason(%d)", int(s))
	}
}

// Core executes one thread program against a memory port and an optional
// streaming port.
type Core struct {
	id   int
	p    Params
	prog *isa.Program
	pc   int

	regs  [isa.NumRegs]uint64
	ready [isa.NumRegs]uint64
	pend  [isa.NumRegs]*port.Token

	memp port.Mem
	strm port.Stream

	inflight []*port.Token // fire-and-forget tokens (stores, fences, produces)
	loads    int           // outstanding load count

	halted bool

	// Stats.
	Cycles      uint64
	Issued      uint64
	IssuedComm  uint64
	IssuedLoads uint64
	Breakdown   stats.Breakdown
	LastStall   StallReason
	LastPC      int
}

// New builds a core running prog. strm may be nil for programs without
// produce/consume instructions.
func New(id int, p Params, prog *isa.Program, memp port.Mem, strm port.Stream) *Core {
	if p.IssueWidth <= 0 {
		p = DefaultParams()
	}
	return &Core{id: id, p: p, prog: prog, pc: 0, memp: memp, strm: strm}
}

// ID returns the core index.
func (c *Core) ID() int { return c.id }

// Reg returns the architectural value of register r (for tests).
func (c *Core) Reg(r isa.Reg) uint64 { return c.regs[r] }

// SetReg initializes register r before the program starts.
func (c *Core) SetReg(r isa.Reg, v uint64) { c.regs[r] = v }

// Halted reports whether the program executed its halt instruction.
func (c *Core) Halted() bool { return c.halted }

// Done reports whether the core halted and all its operations drained.
func (c *Core) Done(cycle uint64) bool {
	if !c.halted {
		return false
	}
	for r := range c.pend {
		if c.pend[r] != nil && !c.pend[r].Done(cycle) {
			return false
		}
	}
	for _, t := range c.inflight {
		if !t.Done(cycle) {
			return false
		}
	}
	return true
}

// AppIssued returns the dynamic application (non-overhead) instruction
// count.
func (c *Core) AppIssued() uint64 { return c.Issued - c.IssuedComm }

func (c *Core) collect(cycle uint64) {
	for r := range c.pend {
		if t := c.pend[r]; t != nil && t.Done(cycle) {
			c.regs[r] = t.Value
			c.ready[r] = t.DoneAt
			c.pend[r] = nil
		}
	}
	kept := c.inflight[:0]
	for _, t := range c.inflight {
		if !t.Done(cycle) {
			kept = append(kept, t)
		}
	}
	c.inflight = kept
}

// Tick advances the core one cycle. Call after the memory subsystem has
// ticked.
func (c *Core) Tick(cycle uint64) {
	c.collect(cycle)
	c.countLoads(cycle)
	if c.Done(cycle) {
		return
	}
	c.Cycles++
	if c.halted {
		// Draining: attribute to the oldest incomplete token's location.
		c.Breakdown.Add(c.drainBucket(cycle), 1)
		c.LastStall = StallHalted
		return
	}

	issued := 0
	commOnly := true
	var fuUsed [isa.NumFUs]int
	stall := StallNone
	var stallBucket stats.Bucket = stats.PreL2

issueLoop:
	for issued < c.p.IssueWidth {
		in := c.prog.Instrs[c.pc]
		fu := in.Op.FU()
		// Register-mapped queue operations ride on the instructions that
		// produce or use the value: no issue slot, no FU.
		free := c.p.RegMappedQueues && (in.Op == isa.Produce || in.Op == isa.Consume)
		if !free && fuUsed[fu] >= c.p.FUs[fu] {
			stall = StallFU
			break
		}
		// Operand readiness.
		if in.Op.ReadsRa() {
			if t := c.pend[in.Ra]; t != nil {
				stall, stallBucket = StallToken, t.Loc
				break
			}
			if c.ready[in.Ra] > cycle {
				stall = StallOperand
				break
			}
		}
		if in.Op.ReadsRb() {
			if t := c.pend[in.Rb]; t != nil {
				stall, stallBucket = StallToken, t.Loc
				break
			}
			if c.ready[in.Rb] > cycle {
				stall = StallOperand
				break
			}
		}
		if in.Op.WritesRd() && c.pend[in.Rd] != nil {
			stall = StallWAW
			break
		}

		switch in.Op {
		case isa.Halt:
			c.halted = true
			issued++
			c.note(in)
			break issueLoop

		case isa.B, isa.Beqz, isa.Bnez:
			taken := in.Op == isa.B ||
				(in.Op == isa.Beqz && c.regs[in.Ra] == 0) ||
				(in.Op == isa.Bnez && c.regs[in.Ra] != 0)
			fuUsed[fu]++
			issued++
			c.note(in)
			if !in.Comm {
				commOnly = false
			}
			if taken {
				c.pc = int(in.Imm)
				break issueLoop
			}
			c.pc++

		case isa.Ld:
			if c.loads >= c.p.MaxOutstandingLoads {
				stall = StallLoadLimit
				break issueLoop
			}
			if !c.memp.CanAccept() {
				stall = StallOzQFull
				break issueLoop
			}
			addr := c.regs[in.Ra] + uint64(in.Imm)
			tok := c.memp.Load(cycle, addr)
			c.pend[in.Rd] = tok
			c.loads++
			c.IssuedLoads++
			fuUsed[fu]++
			issued++
			c.note(in)
			if !in.Comm {
				commOnly = false
			}
			c.pc++

		case isa.St:
			if !c.memp.CanAccept() {
				stall = StallOzQFull
				break issueLoop
			}
			addr := c.regs[in.Ra] + uint64(in.Imm)
			tok := c.memp.Store(cycle, addr, c.regs[in.Rb])
			c.inflight = append(c.inflight, tok)
			fuUsed[fu]++
			issued++
			c.note(in)
			if !in.Comm {
				commOnly = false
			}
			c.pc++

		case isa.Fence:
			if !c.memp.CanAccept() {
				stall = StallOzQFull
				break issueLoop
			}
			tok := c.memp.Fence(cycle)
			c.inflight = append(c.inflight, tok)
			fuUsed[fu]++
			issued++
			c.note(in)
			c.pc++

		case isa.Produce:
			tok, ok := c.strm.Produce(cycle, in.Q, c.regs[in.Ra])
			if !ok {
				stall = StallQueueFull
				break issueLoop
			}
			c.inflight = append(c.inflight, tok)
			if !free {
				fuUsed[fu]++
				issued++
			}
			c.note(in)
			c.pc++

		case isa.Consume:
			tok, ok := c.strm.Consume(cycle, in.Q)
			if !ok {
				stall = StallQueueEmpty
				break issueLoop
			}
			c.pend[in.Rd] = tok
			if !free {
				fuUsed[fu]++
				issued++
			}
			c.note(in)
			c.pc++

		default:
			c.exec(in, cycle)
			fuUsed[fu]++
			issued++
			c.note(in)
			if !in.Comm {
				commOnly = false
			}
			c.pc++
		}
	}

	c.LastStall = stall
	c.LastPC = c.pc
	switch {
	case issued == 0:
		c.Breakdown.Add(stallBucket, 1)
	case commOnly:
		c.Breakdown.Add(stats.PostL2, 1)
	default:
		c.Breakdown.Add(stats.PreL2, 1)
	}
}

func (c *Core) note(in isa.Instr) {
	c.Issued++
	if in.Comm {
		c.IssuedComm++
	}
}

func (c *Core) countLoads(cycle uint64) {
	n := 0
	for r := range c.pend {
		if t := c.pend[r]; t != nil && !t.Done(cycle) {
			n++
		}
	}
	c.loads = n
}

func (c *Core) drainBucket(cycle uint64) stats.Bucket {
	for r := range c.pend {
		if t := c.pend[r]; t != nil && !t.Done(cycle) {
			return t.Loc
		}
	}
	for _, t := range c.inflight {
		if !t.Done(cycle) {
			return t.Loc
		}
	}
	return stats.PreL2
}

// exec evaluates a register-register instruction functionally and sets the
// destination's ready cycle from the opcode latency.
func (c *Core) exec(in isa.Instr, cycle uint64) {
	if in.Op == isa.Nop {
		return
	}
	c.regs[in.Rd] = isa.Eval(in.Op, c.regs[in.Ra], c.regs[in.Rb], in.Imm)
	c.ready[in.Rd] = cycle + uint64(in.Op.Latency())
}
