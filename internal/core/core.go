// Package core models an in-order multi-issue processor core patterned
// after the paper's Itanium 2 baseline: 6-issue with a 6 ALU / 4 memory /
// 2 FP / 3 branch functional-unit mix, scoreboarded register dependences,
// at most 16 outstanding loads, and fire-and-forget stores tracked through
// the memory subsystem's OzQ.
//
// Every cycle is attributed to exactly one breakdown bucket (paper
// Figures 7, 10-12): cycles that issue application work count as PreL2,
// cycles that issue only communication-overhead instructions count as
// PostL2 (the extra execute/commit bandwidth those instructions consume),
// and stall cycles are charged to the machine region the blocking
// operation currently waits in.
package core

import (
	"fmt"
	"math/bits"
	"strings"

	"hfstream/internal/isa"
	"hfstream/internal/port"
	"hfstream/internal/stats"
	"hfstream/trace"
)

// Params configures a core.
type Params struct {
	IssueWidth          int
	FUs                 [isa.NumFUs]int
	MaxOutstandingLoads int

	// RegMappedQueues models the paper's §3.1.3 design option: a portion
	// of the register address space names inter-core queues, so produce
	// and consume fold into the instructions that define or use the
	// value. Modeled by letting produce/consume issue without consuming
	// an issue slot or memory functional unit (their dependence height
	// and queue semantics are unchanged).
	RegMappedQueues bool
}

// DefaultParams returns the paper's Itanium 2 core configuration.
func DefaultParams() Params {
	return Params{
		IssueWidth:          6,
		FUs:                 [isa.NumFUs]int{isa.FUALU: 6, isa.FUMem: 4, isa.FUFP: 2, isa.FUBranch: 3},
		MaxOutstandingLoads: 16,
	}
}

// StallReason summarises why issue stopped in a cycle (for debugging and
// deadlock reports).
type StallReason int

// Stall reasons.
const (
	StallNone StallReason = iota
	StallOperand
	StallToken
	StallFU
	StallOzQFull
	StallLoadLimit
	StallFence
	StallQueueFull
	StallQueueEmpty
	StallWAW
	StallHalted

	// NumStallReasons sizes StallCycles.
	NumStallReasons
)

// String names the stall reason.
func (s StallReason) String() string {
	switch s {
	case StallNone:
		return "none"
	case StallOperand:
		return "operand-latency"
	case StallToken:
		return "memory-token"
	case StallFU:
		return "fu-conflict"
	case StallOzQFull:
		return "ozq-full"
	case StallLoadLimit:
		return "load-limit"
	case StallFence:
		return "fence"
	case StallQueueFull:
		return "queue-full"
	case StallQueueEmpty:
		return "queue-empty"
	case StallWAW:
		return "waw-hazard"
	case StallHalted:
		return "halted"
	default:
		return fmt.Sprintf("StallReason(%d)", int(s))
	}
}

// StallCycles accumulates zero-issue cycles by blocking reason. The
// StallNone slot is unused; reasons from StallOperand through StallHalted
// sum to the core's total stall cycles (Cycles - IssueCycles).
type StallCycles [NumStallReasons]uint64

// Total sums stall cycles across every reason.
func (s *StallCycles) Total() uint64 {
	var t uint64
	for _, c := range s {
		t += c
	}
	return t
}

// Summary renders the non-zero counters as "reason=n ..." plus the total.
func (s *StallCycles) Summary() string {
	var parts []string
	for r := StallReason(1); r < NumStallReasons; r++ {
		if s[r] > 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", r, s[r]))
		}
	}
	if len(parts) == 0 {
		return "none"
	}
	return fmt.Sprintf("%s total=%d", strings.Join(parts, " "), s.Total())
}

// imeta is the predecoded form of one instruction: the instruction itself
// plus the per-issue opcode property lookups (FU class, operand roles,
// latency, reg-mapped queue exemption) resolved once at core construction
// instead of per attempt, in one cache-friendly slot per PC.
type imeta struct {
	in       isa.Instr
	fu       isa.FU
	free     bool // reg-mapped queue op: no issue slot, no FU
	readsRa  bool
	readsRb  bool
	writesRd bool
	lat      uint64
}

// Core executes one thread program against a memory port and an optional
// streaming port.
type Core struct {
	id   int
	p    Params
	prog *isa.Program
	meta []imeta // predecoded Instrs, same indexing as prog.Instrs
	pc   int

	regs  [isa.NumRegs]uint64
	ready [isa.NumRegs]uint64
	pend  [isa.NumRegs]*port.Token
	// pendMask has bit r set iff pend[r] != nil, so the per-cycle collect
	// and outstanding-load scans touch only live registers.
	pendMask uint64

	memp port.Mem
	strm port.Stream

	inflight []*port.Token // fire-and-forget tokens (stores, fences, produces)
	loads    int           // outstanding load count

	halted bool

	// Stats.
	Cycles      uint64
	Issued      uint64
	IssuedComm  uint64
	IssuedLoads uint64
	Breakdown   stats.Breakdown
	LastStall   StallReason
	LastPC      int

	// IssueCycles counts cycles in which at least one instruction issued;
	// every other active cycle is a stall, so
	// Stalls.Total() == Cycles - IssueCycles always holds.
	IssueCycles uint64
	// Stalls attributes each zero-issue cycle to its blocking reason
	// (drain cycles after halt count as StallHalted).
	Stalls StallCycles
	// StallRegions attributes the same zero-issue cycles to the machine
	// region responsible (the blocking token's location; PreL2 for purely
	// core-local hazards), so StallRegions totals equal Stalls totals.
	StallRegions stats.Breakdown
	// Produces and Consumes count successfully issued queue operations.
	Produces uint64
	Consumes uint64

	// Tracer, when non-nil, receives issue/retire/queue-op/stall events.
	Tracer *trace.Buffer

	// Tokens, when non-nil, is the run-scoped token arena; the core owns
	// the tokens it tracks and returns each one as it collects it.
	Tokens *port.TokenPool

	// Stall-run coalescing for the tracer: consecutive zero-issue cycles
	// with one reason emit a single KindStall event with a duration.
	stallSince uint64
	stallCur   StallReason

	// Fast-forward bookkeeping: the bucket the last zero-issue cycle was
	// charged to, and (for operand stalls) the cycle the blocking register
	// becomes ready. See FastForward and NextWake.
	lastStallBucket stats.Bucket
	stallWake       uint64

	// nextDue is the exact earliest DoneAt over every tracked token:
	// issue updates it when a token is recorded, Token.Complete lowers it
	// through the token's Due pointer, and collect recomputes it. Cycles
	// before nextDue cannot collect anything, so the per-cycle token scans
	// are skipped entirely.
	nextDue uint64
}

// New builds a core running prog. strm may be nil for programs without
// produce/consume instructions.
func New(id int, p Params, prog *isa.Program, memp port.Mem, strm port.Stream) *Core {
	if p.IssueWidth <= 0 {
		p = DefaultParams()
	}
	meta := make([]imeta, len(prog.Instrs))
	for i, in := range prog.Instrs {
		meta[i] = imeta{
			in:       in,
			fu:       in.Op.FU(),
			free:     p.RegMappedQueues && (in.Op == isa.Produce || in.Op == isa.Consume),
			readsRa:  in.Op.ReadsRa(),
			readsRb:  in.Op.ReadsRb(),
			writesRd: in.Op.WritesRd(),
			lat:      uint64(in.Op.Latency()),
		}
	}
	return &Core{id: id, p: p, prog: prog, meta: meta, pc: 0, memp: memp, strm: strm,
		nextDue: port.Pending}
}

// ID returns the core index.
func (c *Core) ID() int { return c.id }

// Reg returns the architectural value of register r (for tests).
func (c *Core) Reg(r isa.Reg) uint64 { return c.regs[r] }

// SetReg initializes register r before the program starts.
func (c *Core) SetReg(r isa.Reg, v uint64) { c.regs[r] = v }

// Halted reports whether the program executed its halt instruction.
func (c *Core) Halted() bool { return c.halted }

// Done reports whether the core halted and all its operations drained.
func (c *Core) Done(cycle uint64) bool {
	if !c.halted {
		return false
	}
	// nextDue is the exact earliest completion over tracked tokens, so an
	// earlier cycle with anything still tracked cannot have drained.
	if cycle < c.nextDue && (c.pendMask != 0 || len(c.inflight) != 0) {
		return false
	}
	m := c.pendMask
	for m != 0 {
		r := bits.TrailingZeros64(m)
		m &= m - 1
		if !c.pend[r].Done(cycle) {
			return false
		}
	}
	for _, t := range c.inflight {
		if !t.Done(cycle) {
			return false
		}
	}
	return true
}

// AppIssued returns the dynamic application (non-overhead) instruction
// count.
func (c *Core) AppIssued() uint64 { return c.Issued - c.IssuedComm }

// track records a freshly issued token in the earliest-completion cache:
// the token notifies nextDue when it completes, and a token that already
// carries a completion cycle lowers it immediately.
func (c *Core) track(t *port.Token) {
	t.Due = &c.nextDue
	if t.DoneAt < c.nextDue {
		c.nextDue = t.DoneAt
	}
}

func (c *Core) collect(cycle uint64) {
	// nextDue is the exact earliest completion over every tracked token,
	// so an earlier cycle cannot collect anything and the scans below
	// would be no-ops.
	if cycle < c.nextDue {
		return
	}
	due := uint64(port.Pending)
	m := c.pendMask
	for m != 0 {
		r := bits.TrailingZeros64(m)
		m &= m - 1
		t := c.pend[r]
		if !t.Done(cycle) {
			if t.DoneAt < due {
				due = t.DoneAt
			}
			continue
		}
		c.regs[r] = t.Value
		c.ready[r] = t.DoneAt
		c.pend[r] = nil
		c.pendMask &^= 1 << uint(r)
		if c.Tracer != nil {
			c.Tracer.Add(trace.Event{Cycle: cycle, Kind: trace.KindRetire,
				Core: c.id, PC: -1, Q: -1, Op: "writeback", Val: t.Value})
		}
		c.Tokens.Put(t)
	}
	// Rebuild inflight only when something actually completed, so the
	// common nothing-due tick performs no pointer writes.
	i, n := 0, len(c.inflight)
	for i < n {
		t := c.inflight[i]
		if t.Done(cycle) {
			break
		}
		if t.DoneAt < due {
			due = t.DoneAt
		}
		i++
	}
	if i == n {
		c.nextDue = due
		return
	}
	kept := c.inflight[:i]
	for ; i < n; i++ {
		t := c.inflight[i]
		if !t.Done(cycle) {
			if t.DoneAt < due {
				due = t.DoneAt
			}
			kept = append(kept, t)
		} else {
			c.Tokens.Put(t)
		}
	}
	c.inflight = kept
	c.nextDue = due
}

// Tick advances the core one cycle. Call after the memory subsystem has
// ticked.
func (c *Core) Tick(cycle uint64) {
	c.collect(cycle)
	// Every pend token left is outstanding; that count is the core's
	// in-flight load/consume limit check, recomputed each tick exactly as
	// the old per-tick collect scan did.
	c.loads = bits.OnesCount64(c.pendMask)
	if c.Done(cycle) {
		return
	}
	c.Cycles++
	if c.halted {
		// Draining: attribute to the oldest incomplete token's location.
		b := c.drainBucket(cycle)
		c.Breakdown.Add(b, 1)
		c.Stalls[StallHalted]++
		c.StallRegions.Add(b, 1)
		c.noteStall(cycle, StallHalted)
		c.LastStall = StallHalted
		c.lastStallBucket = b
		return
	}

	issued := 0
	commOnly := true
	var fuUsed [isa.NumFUs]int
	stall := StallNone
	var stallBucket stats.Bucket = stats.PreL2
	var stallWake uint64

issueLoop:
	for issued < c.p.IssueWidth {
		m := &c.meta[c.pc]
		in := &m.in
		fu := m.fu
		// Register-mapped queue operations ride on the instructions that
		// produce or use the value: no issue slot, no FU.
		free := m.free
		if !free && fuUsed[fu] >= c.p.FUs[fu] {
			stall = StallFU
			break
		}
		// Operand readiness.
		if m.readsRa {
			if t := c.pend[in.Ra]; t != nil {
				stall, stallBucket = StallToken, t.Loc
				break
			}
			if c.ready[in.Ra] > cycle {
				stall, stallWake = StallOperand, c.ready[in.Ra]
				break
			}
		}
		if m.readsRb {
			if t := c.pend[in.Rb]; t != nil {
				stall, stallBucket = StallToken, t.Loc
				break
			}
			if c.ready[in.Rb] > cycle {
				stall, stallWake = StallOperand, c.ready[in.Rb]
				break
			}
		}
		if m.writesRd && c.pend[in.Rd] != nil {
			stall = StallWAW
			break
		}

		switch in.Op {
		case isa.Halt:
			c.halted = true
			issued++
			c.note(cycle, in)
			break issueLoop

		case isa.B, isa.Beqz, isa.Bnez:
			taken := in.Op == isa.B ||
				(in.Op == isa.Beqz && c.regs[in.Ra] == 0) ||
				(in.Op == isa.Bnez && c.regs[in.Ra] != 0)
			fuUsed[fu]++
			issued++
			c.note(cycle, in)
			if !in.Comm {
				commOnly = false
			}
			if taken {
				c.pc = int(in.Imm)
				break issueLoop
			}
			c.pc++

		case isa.Ld:
			if c.loads >= c.p.MaxOutstandingLoads {
				stall = StallLoadLimit
				break issueLoop
			}
			if !c.memp.CanAccept() {
				stall = StallOzQFull
				break issueLoop
			}
			addr := c.regs[in.Ra] + uint64(in.Imm)
			tok := c.memp.Load(cycle, addr)
			c.track(tok)
			c.pend[in.Rd] = tok
			c.pendMask |= 1 << uint(in.Rd)
			c.loads++
			c.IssuedLoads++
			fuUsed[fu]++
			issued++
			c.note(cycle, in)
			if !in.Comm {
				commOnly = false
			}
			c.pc++

		case isa.St:
			if !c.memp.CanAccept() {
				stall = StallOzQFull
				break issueLoop
			}
			addr := c.regs[in.Ra] + uint64(in.Imm)
			tok := c.memp.Store(cycle, addr, c.regs[in.Rb])
			c.track(tok)
			c.inflight = append(c.inflight, tok)
			fuUsed[fu]++
			issued++
			c.note(cycle, in)
			if !in.Comm {
				commOnly = false
			}
			c.pc++

		case isa.Fence:
			if !c.memp.CanAccept() {
				stall = StallFence
				break issueLoop
			}
			tok := c.memp.Fence(cycle)
			c.track(tok)
			c.inflight = append(c.inflight, tok)
			fuUsed[fu]++
			issued++
			c.note(cycle, in)
			c.pc++

		case isa.Produce:
			tok, ok := c.strm.Produce(cycle, in.Q, c.regs[in.Ra])
			if !ok {
				stall = StallQueueFull
				break issueLoop
			}
			c.track(tok)
			c.inflight = append(c.inflight, tok)
			if !free {
				fuUsed[fu]++
				issued++
			}
			c.note(cycle, in)
			c.pc++

		case isa.Consume:
			tok, ok := c.strm.Consume(cycle, in.Q)
			if !ok {
				stall = StallQueueEmpty
				break issueLoop
			}
			c.track(tok)
			c.pend[in.Rd] = tok
			c.pendMask |= 1 << uint(in.Rd)
			if !free {
				fuUsed[fu]++
				issued++
			}
			c.note(cycle, in)
			c.pc++

		default:
			c.exec(in, cycle, m.lat)
			fuUsed[fu]++
			issued++
			c.note(cycle, in)
			if !in.Comm {
				commOnly = false
			}
			c.pc++
		}
	}

	c.LastStall = stall
	c.LastPC = c.pc
	switch {
	case issued == 0:
		c.Breakdown.Add(stallBucket, 1)
		c.Stalls[stall]++
		c.StallRegions.Add(stallBucket, 1)
		c.lastStallBucket = stallBucket
		c.stallWake = stallWake
		c.noteStall(cycle, stall)
	case commOnly:
		c.Breakdown.Add(stats.PostL2, 1)
		c.IssueCycles++
		c.flushStallTrace(cycle)
	default:
		c.Breakdown.Add(stats.PreL2, 1)
		c.IssueCycles++
		c.flushStallTrace(cycle)
	}
}

// noteStall extends or starts the current stall run for the tracer.
func (c *Core) noteStall(cycle uint64, r StallReason) {
	if c.Tracer == nil {
		return
	}
	if c.stallSince != 0 && c.stallCur == r {
		return
	}
	c.flushStallTrace(cycle)
	c.stallSince = cycle
	c.stallCur = r
}

// flushStallTrace emits the in-progress stall run, if any, as one event
// covering [stallSince, endCycle).
func (c *Core) flushStallTrace(endCycle uint64) {
	if c.Tracer == nil || c.stallSince == 0 {
		return
	}
	dur := endCycle - c.stallSince
	if dur == 0 {
		dur = 1
	}
	c.Tracer.Add(trace.Event{Cycle: c.stallSince, Dur: dur, Kind: trace.KindStall,
		Core: c.id, PC: c.pc, Q: -1, Op: c.stallCur.String()})
	c.stallSince = 0
}

// FinishTrace flushes any in-progress stall run; the simulator calls it
// once after the final cycle so trailing drain stalls appear in the trace.
func (c *Core) FinishTrace(endCycle uint64) { c.flushStallTrace(endCycle) }

// FastForward accounts n skipped dead cycles exactly as n repetitions of
// the zero-issue Tick the core just executed would have: the same stall
// reason, breakdown bucket, and region are charged per cycle. The caller
// (the simulator's idle fast-forward) guarantees that nothing the core
// observes can change during the skipped cycles.
func (c *Core) FastForward(n uint64) {
	c.Cycles += n
	c.Breakdown.Add(c.lastStallBucket, n)
	c.Stalls[c.LastStall] += n
	c.StallRegions.Add(c.lastStallBucket, n)
}

// NextWake returns the earliest future cycle at which this core's issue or
// drain state can change without outside activity: the ready cycle of the
// operand it stalled on, or the completion of any outstanding memory/
// stream token (which can unblock issue, change the drain bucket, or
// finish the drain). Event-driven waits (queue full/empty, OzQ full,
// fence) contribute no wake of their own — the component that unblocks
// them reports one instead. Returns ^uint64(0) when only outside activity
// can wake the core.
func (c *Core) NextWake(cycle uint64) uint64 {
	// nextDue caches the exact earliest completion over every tracked
	// token, so the old pend/inflight scans reduce to one comparison.
	w := c.nextDue
	if c.LastStall == StallOperand && c.stallWake > cycle && c.stallWake < w {
		w = c.stallWake
	}
	if w <= cycle {
		return cycle + 1
	}
	return w
}

// ParkWake reports whether the kernel may park this core — skip its Tick
// entirely — until the returned cycle, charging the skipped cycles via
// FastForward. Parking is exact only when every skipped Tick is provably
// identical to the one just executed:
//
//   - an operand-latency stall: the stalled instruction and its register
//     checks cannot change until the blocking operand's ready cycle, and
//     tokens collected mid-span write the same regs/ready values whenever
//     collect runs;
//   - a halted drain in which every outstanding token already has a known
//     completion cycle: the drain bucket is then frozen until the earliest
//     completion (a Pending token's DoneAt and Loc can still change, so
//     any Pending token forbids parking).
//
// The caller must additionally ensure the core issued nothing this tick.
func (c *Core) ParkWake(cycle uint64) (uint64, bool) {
	if !c.halted {
		if c.LastStall != StallOperand || c.stallWake <= cycle+1 {
			return 0, false
		}
		return c.stallWake, true
	}
	w := uint64(port.Pending)
	m := c.pendMask
	for m != 0 {
		r := bits.TrailingZeros64(m)
		m &= m - 1
		t := c.pend[r]
		if t.DoneAt == port.Pending {
			return 0, false
		}
		if t.DoneAt > cycle && t.DoneAt < w {
			w = t.DoneAt
		}
	}
	for _, t := range c.inflight {
		if t.DoneAt == port.Pending {
			return 0, false
		}
		if t.DoneAt > cycle && t.DoneAt < w {
			w = t.DoneAt
		}
	}
	if w <= cycle+1 || w == port.Pending {
		return 0, false
	}
	return w, true
}

// note records one issued instruction. It runs before c.pc advances, so
// c.pc still names the issuing instruction.
func (c *Core) note(cycle uint64, in *isa.Instr) {
	c.Issued++
	if in.Comm {
		c.IssuedComm++
	}
	isQueueOp := in.Op == isa.Produce || in.Op == isa.Consume
	if in.Op == isa.Produce {
		c.Produces++
	} else if in.Op == isa.Consume {
		c.Consumes++
	}
	if c.Tracer != nil {
		e := trace.Event{Cycle: cycle, Kind: trace.KindIssue, Core: c.id,
			PC: c.pc, Q: -1, Op: in.Op.String()}
		if isQueueOp {
			e.Kind = trace.KindQueueOp
			e.Q = in.Q
		}
		c.Tracer.Add(e)
	}
}

func (c *Core) drainBucket(cycle uint64) stats.Bucket {
	m := c.pendMask
	for m != 0 {
		r := bits.TrailingZeros64(m)
		m &= m - 1
		if t := c.pend[r]; !t.Done(cycle) {
			return t.Loc
		}
	}
	for _, t := range c.inflight {
		if !t.Done(cycle) {
			return t.Loc
		}
	}
	return stats.PreL2
}

// exec evaluates a register-register instruction functionally and sets the
// destination's ready cycle from the opcode latency.
func (c *Core) exec(in *isa.Instr, cycle, lat uint64) {
	if in.Op == isa.Nop {
		return
	}
	c.regs[in.Rd] = isa.Eval(in.Op, c.regs[in.Ra], c.regs[in.Rb], in.Imm)
	c.ready[in.Rd] = cycle + lat
}
