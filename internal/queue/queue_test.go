package queue

import (
	"testing"
	"testing/quick"
)

func defaultLayout() Layout {
	return Layout{NumQueues: 64, Depth: 32, QLU: 8, LineBytes: 128}
}

func TestLayoutValidate(t *testing.T) {
	if err := defaultLayout().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Layout{
		{NumQueues: 0, Depth: 32, QLU: 8, LineBytes: 128},
		{NumQueues: 64, Depth: 30, QLU: 8, LineBytes: 128},  // depth % QLU
		{NumQueues: 64, Depth: 32, QLU: 7, LineBytes: 128},  // line % QLU
		{NumQueues: 64, Depth: 32, QLU: 32, LineBytes: 128}, // slot < 8B
	}
	for i, l := range bad {
		if err := l.Validate(); err == nil {
			t.Errorf("layout %d accepted: %+v", i, l)
		}
	}
}

func TestLayoutGeometry(t *testing.T) {
	l := defaultLayout()
	if l.SlotBytes() != 16 {
		t.Errorf("SlotBytes = %d", l.SlotBytes())
	}
	if l.QueueBytes() != 512 {
		t.Errorf("QueueBytes = %d", l.QueueBytes())
	}
	if l.LinesPerQueue() != 4 {
		t.Errorf("LinesPerQueue = %d", l.LinesPerQueue())
	}
	if !l.HasFlags() {
		t.Error("16B slots should carry flags")
	}
	dense := Layout{NumQueues: 64, Depth: 64, QLU: 16, LineBytes: 128}
	if dense.HasFlags() {
		t.Error("8B slots cannot carry flags")
	}
	if l.FlagAddr(0, 0) != l.SlotAddr(0, 0)+8 {
		t.Error("flag address wrong")
	}
	if l.LineOf(0, 7) != l.LineOf(0, 0) || l.LineOf(0, 8) == l.LineOf(0, 7) {
		t.Error("LineOf boundaries wrong")
	}
}

// Property: SlotOfAddr inverts SlotAddr for every valid (queue, slot).
func TestLayoutAddressRoundTrip(t *testing.T) {
	l := defaultLayout()
	f := func(q, s uint16) bool {
		qi := int(q) % l.NumQueues
		si := int(s) % l.Depth
		gq, gs, ok := l.SlotOfAddr(l.SlotAddr(qi, si))
		return ok && gq == qi && gs == si
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if _, _, ok := l.SlotOfAddr(Base - 8); ok {
		t.Error("address below region accepted")
	}
	if _, _, ok := l.SlotOfAddr(l.RegionEnd()); ok {
		t.Error("address past region accepted")
	}
	if !l.InRegion(l.SlotAddr(10, 3)) || l.InRegion(0x1000) {
		t.Error("InRegion wrong")
	}
}

func newSA(t *testing.T, p SAParams) *SyncArray {
	t.Helper()
	sa, err := NewSyncArray(p)
	if err != nil {
		t.Fatal(err)
	}
	return sa
}

func TestSyncArrayFIFO(t *testing.T) {
	sa := newSA(t, DefaultSAParams(4, 32))
	cycle := uint64(1)
	// Produce 10 values with ticks between (link rate limits per cycle).
	sent := []uint64{}
	for i := 0; i < 10; i++ {
		sa.Tick(cycle)
		v := uint64(i * 3)
		tok, ok := sa.Produce(cycle, 1, v)
		if !ok {
			t.Fatalf("produce %d rejected", i)
		}
		if !tok.Done(cycle + 1) {
			t.Errorf("produce token should complete next cycle")
		}
		sent = append(sent, v)
		cycle++
	}
	// Let everything arrive.
	for i := 0; i < 5; i++ {
		sa.Tick(cycle)
		cycle++
	}
	if sa.Occupancy(1) != 10 {
		t.Fatalf("occupancy = %d, want 10", sa.Occupancy(1))
	}
	for i := 0; i < 10; i++ {
		sa.Tick(cycle)
		tok, ok := sa.Consume(cycle, 1)
		if !ok {
			t.Fatalf("consume %d rejected", i)
		}
		if !tok.Done(cycle + 1) {
			t.Errorf("consume-to-use should be 1 cycle")
		}
		if tok.Value != sent[i] {
			t.Fatalf("consume %d = %d, want %d (FIFO violated)", i, tok.Value, sent[i])
		}
		cycle++
	}
	for i := 0; i < 5; i++ {
		sa.Tick(cycle)
		cycle++
	}
	if !sa.Drained() {
		t.Error("SA should be drained")
	}
}

func TestSyncArrayBlocksWhenFull(t *testing.T) {
	p := DefaultSAParams(1, 4)
	sa := newSA(t, p)
	cycle := uint64(1)
	accepted := 0
	for i := 0; i < 50; i++ {
		sa.Tick(cycle)
		if _, ok := sa.Produce(cycle, 0, uint64(i)); ok {
			accepted++
		}
		cycle++
	}
	// Capacity = depth + interconnect in-flight stages (1).
	want := p.Depth + p.InterconnectLatency
	if accepted != want {
		t.Errorf("accepted %d produces, want %d (capacity)", accepted, want)
	}
	if sa.FullStalls == 0 {
		t.Error("expected full stalls")
	}
	// Consuming frees credits after the round trip.
	sa.Tick(cycle)
	if _, ok := sa.Consume(cycle, 0); !ok {
		t.Fatal("consume rejected")
	}
	cycle += uint64(p.InterconnectLatency) + 1
	sa.Tick(cycle)
	if _, ok := sa.Produce(cycle, 0, 99); !ok {
		t.Error("produce should succeed after credit returns")
	}
}

func TestSyncArrayEmptyConsume(t *testing.T) {
	sa := newSA(t, DefaultSAParams(1, 4))
	sa.Tick(1)
	if _, ok := sa.Consume(1, 0); ok {
		t.Error("consume on empty queue accepted")
	}
	if sa.EmptyStalls != 1 {
		t.Errorf("EmptyStalls = %d", sa.EmptyStalls)
	}
}

func TestSyncArrayLatencyDelaysArrival(t *testing.T) {
	p := DefaultSAParams(1, 32)
	p.InterconnectLatency = 10
	sa := newSA(t, p)
	sa.Tick(1)
	if _, ok := sa.Produce(1, 0, 7); !ok {
		t.Fatal("produce rejected")
	}
	for c := uint64(2); c <= 10; c++ {
		sa.Tick(c)
		if sa.Occupancy(0) != 0 {
			t.Fatalf("value visible at cycle %d, before transit completes", c)
		}
	}
	sa.Tick(11)
	if sa.Occupancy(0) != 1 {
		t.Fatal("value should have arrived at cycle 11")
	}
}

func TestSyncArrayLinkRate(t *testing.T) {
	// A 12-cycle 3-stage pipelined link accepts a slot every 4 cycles
	// (LinkWidth messages per slot); bursts beyond the egress buffer are
	// rejected.
	p := DefaultSAParams(1, 1024)
	p.InterconnectLatency = 12
	sa := newSA(t, p)
	accepted := 0
	for i := 0; i < 40; i++ {
		if _, ok := sa.Produce(1, 0, uint64(i)); ok {
			accepted++
		}
	}
	// Same-cycle burst: capped by the dedicated store's port budget.
	if accepted != p.OpsPerCycle {
		t.Errorf("burst accepted %d, want %d", accepted, p.OpsPerCycle)
	}
	// Sustained overdrive (4 attempts per cycle) saturates the link: the
	// acceptance rate converges to width/interval = 2/4 msgs per cycle
	// once the egress buffer fills, and backpressure is recorded.
	accepted = 0
	for c := uint64(2); c < 122; c++ {
		sa.Tick(c)
		for i := 0; i < 4; i++ {
			if _, ok := sa.Produce(c, 0, 1); ok {
				accepted++
			}
		}
	}
	if accepted < 55 || accepted > 75 {
		t.Errorf("sustained acceptance %d over 120 cycles, want ~60-70", accepted)
	}
	if sa.LinkBackpressure == 0 {
		t.Error("expected link backpressure")
	}
}

func TestSyncArrayOpsPerCycleBudget(t *testing.T) {
	p := DefaultSAParams(8, 32)
	sa := newSA(t, p)
	// Fill several queues.
	cycle := uint64(1)
	for i := 0; i < 8; i++ {
		sa.Tick(cycle)
		for q := 0; q < 2; q++ {
			sa.Produce(cycle, q, 1)
		}
		cycle += 1
	}
	for i := 0; i < 4; i++ {
		sa.Tick(cycle)
		cycle++
	}
	// A single cycle admits at most OpsPerCycle operations.
	sa.Tick(cycle)
	ok := 0
	for i := 0; i < 10; i++ {
		if _, o := sa.Consume(cycle, i%2); o {
			ok++
		}
	}
	if ok > p.OpsPerCycle {
		t.Errorf("%d ops serviced in one cycle, budget %d", ok, p.OpsPerCycle)
	}
}

func TestSyncArrayBadParams(t *testing.T) {
	if _, err := NewSyncArray(SAParams{}); err == nil {
		t.Error("zero params accepted")
	}
}

// Property: any interleaving of produces and consumes preserves per-queue
// FIFO order.
func TestSyncArrayFIFOProperty(t *testing.T) {
	f := func(seed uint32) bool {
		sa, err := NewSyncArray(DefaultSAParams(2, 8))
		if err != nil {
			return false
		}
		rng := seed
		next := func() uint32 {
			rng = rng*1664525 + 1013904223
			return rng
		}
		sent := [2][]uint64{}
		got := [2][]uint64{}
		var vcount uint64
		for cycle := uint64(1); cycle < 400; cycle++ {
			sa.Tick(cycle)
			q := int(next() % 2)
			if next()%2 == 0 {
				vcount++
				if _, ok := sa.Produce(cycle, q, vcount); ok {
					sent[q] = append(sent[q], vcount)
				}
			} else {
				if tok, ok := sa.Consume(cycle, q); ok {
					got[q] = append(got[q], tok.Value)
				}
			}
		}
		for q := 0; q < 2; q++ {
			if len(got[q]) > len(sent[q]) {
				return false
			}
			for i, v := range got[q] {
				if sent[q][i] != v {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
