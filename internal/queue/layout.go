// Package queue provides the inter-thread queue machinery: the shared
// memory layout used by software queues and SYNCOPTI (paper Figure 5), the
// dedicated synchronization-array backing store and the dedicated pipelined
// interconnect used by HEAVYWT.
package queue

import "fmt"

// Base is the start of the reserved streaming ("queue") address region.
// The memory subsystem treats accesses to this region as streaming
// accesses (the paper's OS-marked stream pages).
const Base uint64 = 0x4000_0000_0000

// Layout describes how queue slots map onto cache lines (paper Figure 5).
// Each slot holds an 8-byte data item and an 8-byte full/empty flag when
// used by software queues; QLU slots share one cache line.
type Layout struct {
	NumQueues int
	Depth     int // slots per queue; must be a multiple of QLU
	QLU       int // queue layout unit: slots per cache line
	LineBytes int // cache line size of the backing store level (L2/L3)
}

// Validate checks the layout for internal consistency.
func (l Layout) Validate() error {
	if l.NumQueues <= 0 || l.Depth <= 0 || l.QLU <= 0 || l.LineBytes <= 0 {
		return fmt.Errorf("queue: non-positive layout field: %+v", l)
	}
	if l.Depth%l.QLU != 0 {
		return fmt.Errorf("queue: depth %d not a multiple of QLU %d", l.Depth, l.QLU)
	}
	if l.LineBytes%l.QLU != 0 {
		return fmt.Errorf("queue: line size %d not divisible by QLU %d", l.LineBytes, l.QLU)
	}
	if l.SlotBytes() < 8 {
		return fmt.Errorf("queue: slot size %dB below the 8B item size (QLU %d too dense for %dB lines)",
			l.SlotBytes(), l.QLU, l.LineBytes)
	}
	return nil
}

// HasFlags reports whether slots are wide enough to co-locate a full/empty
// flag with the data word, as software queues require. SYNCOPTI's densest
// layout (Q64: 16 items per 128-byte line) has no flag words; occupancy
// counters replace them.
func (l Layout) HasFlags() bool { return l.SlotBytes() >= 16 }

// SlotBytes returns the padded size of one queue slot.
func (l Layout) SlotBytes() int { return l.LineBytes / l.QLU }

// QueueBytes returns the memory footprint of one queue.
func (l Layout) QueueBytes() int { return l.Depth * l.SlotBytes() }

// LinesPerQueue returns the number of cache lines holding one queue.
func (l Layout) LinesPerQueue() int { return l.Depth / l.QLU }

// SlotAddr returns the address of slot's data word in queue q.
func (l Layout) SlotAddr(q, slot int) uint64 {
	return Base + uint64(q)*uint64(l.QueueBytes()) + uint64(slot)*uint64(l.SlotBytes())
}

// FlagAddr returns the address of slot's full/empty flag word.
func (l Layout) FlagAddr(q, slot int) uint64 { return l.SlotAddr(q, slot) + 8 }

// LineOf returns the line-aligned address containing slot of queue q.
func (l Layout) LineOf(q, slot int) uint64 {
	return l.SlotAddr(q, slot) &^ (uint64(l.LineBytes) - 1)
}

// SlotOfAddr inverts SlotAddr: it reverse-maps a streaming address to its
// (queue, slot) pair, as the stream cache's fill path does. ok is false if
// addr is outside the queue region.
func (l Layout) SlotOfAddr(addr uint64) (q, slot int, ok bool) {
	if addr < Base {
		return 0, 0, false
	}
	off := addr - Base
	q = int(off / uint64(l.QueueBytes()))
	if q >= l.NumQueues {
		return 0, 0, false
	}
	slot = int(off % uint64(l.QueueBytes()) / uint64(l.SlotBytes()))
	return q, slot, true
}

// RegionEnd returns the first address past the whole queue region.
func (l Layout) RegionEnd() uint64 {
	return Base + uint64(l.NumQueues)*uint64(l.QueueBytes())
}

// InRegion reports whether addr is a streaming (queue region) address.
func (l Layout) InRegion(addr uint64) bool {
	return addr >= Base && addr < l.RegionEnd()
}
