package queue

import (
	"fmt"

	"hfstream/internal/port"
)

// SAPort is a per-core view of the synchronization array. port.Stream
// carries no core identity, so MPMC dispatch — which must know *which*
// producer or consumer is operating — lives here: each core gets its own
// Port, and the Port translates (core, logical queue, per-core operation
// count) into the physical lane sub-queue that the ticket discipline
// assigns. For queues without an MPMC route the Port is a transparent
// pass-through, so SPSC behaviour is bit-for-bit the classic SyncArray.
type SAPort struct {
	sa   *SyncArray
	core int
	// prodTick / consTick count this core's completed produces/consumes
	// per logical MPMC queue. They advance only on success, so a stalled
	// operation retries the same lane — the dispatch is a pure function
	// of the core's own operation count, never of timing.
	prodTick map[int]uint64
	consTick map[int]uint64
}

// Port returns core's view of the array. The same SyncArray backs every
// port; per-core state is only the ticket counters.
func (sa *SyncArray) Port(core int) *SAPort {
	return &SAPort{
		sa:       sa,
		core:     core,
		prodTick: make(map[int]uint64),
		consTick: make(map[int]uint64),
	}
}

// LaneBase returns the physical ID of logical MPMC queue q's first lane,
// and whether q has lanes at all.
func (sa *SyncArray) LaneBase(q int) (int, bool) {
	base, ok := sa.laneBase[q]
	return base, ok
}

// Produce implements port.Stream. MPMC queues dispatch to the lane owning
// this producer's next ticket; others pass through unchanged.
func (p *SAPort) Produce(cycle uint64, q int, v uint64) (*port.Token, bool) {
	r, ok := p.sa.p.MPMC[q]
	if !ok || !r.IsMPMC() {
		return p.sa.Produce(cycle, q, v)
	}
	pIdx := r.ProducerIndex(p.core)
	if pIdx < 0 {
		panic(fmt.Sprintf("queue: core %d 'Produce q%d' but it is not a declared producer (route %v)", p.core, q, r.Producers))
	}
	n := p.prodTick[q]
	ticket := n*uint64(r.P()) + uint64(pIdx)
	lane := int(ticket % uint64(r.LaneCount()))
	tok, done := p.sa.Produce(cycle, p.sa.laneBase[q]+lane, v)
	if done {
		p.prodTick[q] = n + 1
	}
	return tok, done
}

// Consume implements port.Stream. MPMC queues dispatch to the lane owning
// this consumer's next ticket; others pass through unchanged.
func (p *SAPort) Consume(cycle uint64, q int) (*port.Token, bool) {
	r, ok := p.sa.p.MPMC[q]
	if !ok || !r.IsMPMC() {
		return p.sa.Consume(cycle, q)
	}
	cIdx := r.ConsumerIndex(p.core)
	if cIdx < 0 {
		panic(fmt.Sprintf("queue: core %d 'Consume q%d' but it is not a declared consumer (route %v)", p.core, q, r.Consumers))
	}
	n := p.consTick[q]
	ticket := n*uint64(r.C()) + uint64(cIdx)
	lane := int(ticket % uint64(r.LaneCount()))
	tok, done := p.sa.Consume(cycle, p.sa.laneBase[q]+lane)
	if done {
		p.consTick[q] = n + 1
	}
	return tok, done
}
