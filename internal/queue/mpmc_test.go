package queue

import (
	"testing"
	"testing/quick"
)

func TestMPMCRouteValidate(t *testing.T) {
	good := MPMCRoute{Producers: []int{0, 1}, Consumers: []int{2, 3}}
	if err := good.Validate(5, 32); err != nil {
		t.Fatal(err)
	}
	bad := []MPMCRoute{
		{Producers: nil, Consumers: []int{1}},
		{Producers: []int{0}, Consumers: nil},
		{Producers: []int{1, 0}, Consumers: []int{2}},    // unsorted
		{Producers: []int{0, 0}, Consumers: []int{2}},    // duplicate
		{Producers: []int{0, 1, 2}, Consumers: []int{3}}, // 3 !| 32
	}
	for i, r := range bad {
		if err := r.Validate(0, 32); err == nil {
			t.Errorf("route %d accepted: %+v", i, r)
		}
	}
}

func TestMPMCLaneCount(t *testing.T) {
	for _, c := range []struct{ p, n, want int }{
		{1, 1, 1}, {2, 1, 2}, {1, 2, 2}, {2, 2, 2},
		{2, 4, 4}, {4, 2, 4}, {2, 3, 6}, {3, 4, 12},
	} {
		r := MPMCRoute{Producers: make([]int, c.p), Consumers: make([]int, c.n)}
		if got := r.LaneCount(); got != c.want {
			t.Errorf("lcm(%d,%d) lanes = %d, want %d", c.p, c.n, got, c.want)
		}
	}
}

func TestSyncArrayMPMCLaneAllocation(t *testing.T) {
	p := DefaultSAParams(4, 32)
	p.MPMC = map[int]MPMCRoute{
		2: {Producers: []int{0, 1}, Consumers: []int{2, 3}},
	}
	sa := newSA(t, p)
	base, ok := sa.LaneBase(2)
	if !ok || base != 4 {
		t.Fatalf("LaneBase(2) = %d,%v, want 4,true (lanes append after NumQueues)", base, ok)
	}
	if _, ok := sa.LaneBase(0); ok {
		t.Error("SPSC queue has lanes")
	}
	// Invalid routes must be rejected at construction.
	for i, bad := range []map[int]MPMCRoute{
		{9: {Producers: []int{0, 1}, Consumers: []int{2}}},    // q out of range
		{1: {Producers: []int{0, 0}, Consumers: []int{2}}},    // duplicate core
		{1: {Producers: []int{0, 1, 2}, Consumers: []int{3}}}, // 3 !| 32
	} {
		bp := DefaultSAParams(4, 32)
		bp.MPMC = bad
		if _, err := NewSyncArray(bp); err == nil {
			t.Errorf("bad MPMC params %d accepted", i)
		}
	}
}

// A port on a queue without an MPMC route must be a transparent view of
// the array: produces through one core's port are consumable directly and
// vice versa, preserving SPSC behaviour bit for bit.
func TestSAPortSPSCPassThrough(t *testing.T) {
	sa := newSA(t, DefaultSAParams(4, 32))
	p0, p1 := sa.Port(0), sa.Port(1)
	cycle := uint64(1)
	for i := 0; i < 5; i++ {
		sa.Tick(cycle)
		if _, ok := p0.Produce(cycle, 1, uint64(10+i)); !ok {
			t.Fatalf("produce %d rejected", i)
		}
		cycle++
	}
	for i := 0; i < 5; i++ {
		sa.Tick(cycle)
		cycle++
	}
	for i := 0; i < 5; i++ {
		sa.Tick(cycle)
		tok, ok := p1.Consume(cycle, 1)
		if !ok {
			t.Fatalf("consume %d rejected", i)
		}
		if tok.Value != uint64(10+i) {
			t.Fatalf("consume %d = %d, want %d", i, tok.Value, 10+i)
		}
		cycle++
	}
}

// Property: under any randomized interleaving of P producers and C
// consumers on one MPMC queue, nothing is lost, duplicated, or reordered
// beyond the ticket discipline — consumer j's i-th consume is exactly
// global ticket i*C+j, and a consumer only ever waits for a ticket that
// has not been produced yet.
func TestSAPortMPMCTicketProperty(t *testing.T) {
	f := func(seed uint32, pc, cc uint8) bool {
		// Depth 24 is divisible by every endpoint count in range.
		P := 1 + int(pc)%3
		C := 1 + int(cc)%4
		params := DefaultSAParams(2, 24)
		route := MPMCRoute{}
		for i := 0; i < P; i++ {
			route.Producers = append(route.Producers, i)
		}
		for i := 0; i < C; i++ {
			route.Consumers = append(route.Consumers, P+i)
		}
		params.MPMC = map[int]MPMCRoute{1: route}
		sa, err := NewSyncArray(params)
		if err != nil {
			return false
		}
		ports := map[int]*SAPort{}
		for i := 0; i < P+C; i++ {
			ports[i] = sa.Port(i)
		}

		rng := seed
		next := func() uint32 {
			rng = rng*1664525 + 1013904223
			return rng
		}
		produced := make([]uint64, P) // per-producer completed count
		got := make([][]uint64, C)
		cycle := uint64(1)
		for ; cycle < 600; cycle++ {
			sa.Tick(cycle)
			who := int(next()) % (P + C)
			if who < P {
				// Value = the producer's own next global ticket.
				v := produced[who]*uint64(P) + uint64(who)
				if _, ok := ports[who].Produce(cycle, 1, v); ok {
					produced[who]++
				}
			} else {
				j := who - P
				if tok, ok := ports[P+j].Consume(cycle, 1); ok {
					got[j] = append(got[j], tok.Value)
				}
			}
		}
		// Drain: consume round-robin until nothing moves for a while.
		idle := 0
		for idle < 20 {
			sa.Tick(cycle)
			moved := false
			for j := 0; j < C; j++ {
				if tok, ok := ports[P+j].Consume(cycle, 1); ok {
					got[j] = append(got[j], tok.Value)
					moved = true
				}
			}
			cycle++
			if moved {
				idle = 0
			} else {
				idle++
			}
		}
		for j := 0; j < C; j++ {
			for i, v := range got[j] {
				if v != uint64(i*C+j) {
					return false // lost, duplicated or reordered
				}
			}
			// The consumer may only be stuck on an unproduced ticket.
			nextTicket := uint64(len(got[j])*C + j)
			owner := int(nextTicket % uint64(P))
			if nextTicket/uint64(P) < produced[owner] {
				return false // ticket produced but never delivered
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
