package queue

import (
	"fmt"
	"sort"
)

// MPMCRoute declares one logical queue's multi-producer/multi-consumer
// endpoints: the core IDs allowed to produce into it and to consume from
// it, each in ascending order. A queue with one producer and one consumer
// is ordinary SPSC and needs no route.
//
// MPMC queues follow a ticket discipline (Virtual-Link's per-link credit
// scheme, collapsed onto slot ownership): the item with global ticket k is
// produced by producer k mod P as its (k div P)-th produce and consumed by
// consumer k mod C as its (k div C)-th consume. Every endpoint's schedule
// is a pure function of its own operation count, so queue contents are
// independent of how the endpoints interleave in time — the property that
// keeps MPMC runs bit-reproducible and lets the functional interpreter
// serve as their oracle.
type MPMCRoute struct {
	Producers []int
	Consumers []int
}

// P returns the producer count.
func (r MPMCRoute) P() int { return len(r.Producers) }

// C returns the consumer count.
func (r MPMCRoute) C() int { return len(r.Consumers) }

// IsMPMC reports whether the route actually needs MPMC semantics (more
// than one endpoint on either side).
func (r MPMCRoute) IsMPMC() bool { return r.P() > 1 || r.C() > 1 }

// ProducerIndex returns core's position in the producer list, or -1.
func (r MPMCRoute) ProducerIndex(core int) int { return indexOf(r.Producers, core) }

// ConsumerIndex returns core's position in the consumer list, or -1.
func (r MPMCRoute) ConsumerIndex(core int) int { return indexOf(r.Consumers, core) }

func indexOf(s []int, v int) int {
	for i, x := range s {
		if x == v {
			return i
		}
	}
	return -1
}

// Validate checks the route against a queue depth: both endpoint lists
// must be non-empty, sorted, duplicate-free, and their sizes must divide
// the depth — ticket k's slot is k mod depth, and slot ownership is only
// stable across wraps when the endpoint count divides the depth.
func (r MPMCRoute) Validate(q, depth int) error {
	for side, list := range map[string][]int{"producer": r.Producers, "consumer": r.Consumers} {
		if len(list) == 0 {
			return fmt.Errorf("queue: MPMC route for q%d has no %ss", q, side)
		}
		if !sort.IntsAreSorted(list) {
			return fmt.Errorf("queue: MPMC route for q%d: %s cores %v not in ascending order", q, side, list)
		}
		for i := 1; i < len(list); i++ {
			if list[i] == list[i-1] {
				return fmt.Errorf("queue: MPMC route for q%d: duplicate %s core %d", q, side, list[i])
			}
		}
		if depth%len(list) != 0 {
			return fmt.Errorf("queue: MPMC route for q%d: %d %ss do not divide queue depth %d (slot ownership would drift across wraps)",
				q, len(list), side, depth)
		}
	}
	return nil
}

// LaneCount returns the number of SPSC lanes the route expands to:
// lcm(P, C). Lane l is a strict FIFO from producer l mod P to consumer
// l mod C, and ticket k travels on lane k mod LaneCount.
func (r MPMCRoute) LaneCount() int {
	return lcm(r.P(), r.C())
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func lcm(a, b int) int { return a / gcd(a, b) * b }
