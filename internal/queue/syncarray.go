package queue

import (
	"fmt"
	"sort"

	"hfstream/fault"
	"hfstream/internal/port"
	"hfstream/internal/stats"
)

// SAParams configures the HEAVYWT synchronization array and its dedicated
// interconnect.
type SAParams struct {
	NumQueues int
	Depth     int // dedicated storage entries per queue
	// OpsPerCycle is the number of concurrent operations the dedicated
	// store can service per cycle (paper: 4).
	OpsPerCycle int
	// ConsumeToUse is the consume-to-use latency within the consuming core
	// (paper: 1 cycle).
	ConsumeToUse int
	// InterconnectLatency is the end-to-end latency of the dedicated
	// interconnect in cycles (paper default: 1; 10 in Figure 6).
	InterconnectLatency int
	// Pipelined selects a pipelined interconnect. An M-stage pipelined
	// interconnect with end-to-end latency N accepts a new message every
	// N/M cycles, and its in-flight stages act as extra queue storage
	// (paper §3.3 and the Figure 6 discussion); a non-pipelined one
	// accepts a message only every N cycles.
	Pipelined bool
	// Stages is the pipeline depth of the dedicated interconnect (3,
	// matching the baseline bus).
	Stages int
	// LinkWidth is the number of messages one pipeline slot carries in
	// each direction.
	LinkWidth int
	// MPMC maps logical queue IDs to multi-producer/multi-consumer routes.
	// Each MPMC queue is realized as lcm(P,C) hidden SPSC lanes appended
	// after NumQueues; cores reach them through per-core Port adapters that
	// dispatch on the ticket discipline (see MPMCRoute). Queues without an
	// entry keep the classic single-FIFO behaviour.
	MPMC map[int]MPMCRoute
}

// DefaultSAParams returns the paper's HEAVYWT configuration.
func DefaultSAParams(numQueues, depth int) SAParams {
	return SAParams{
		NumQueues:           numQueues,
		Depth:               depth,
		OpsPerCycle:         4,
		ConsumeToUse:        1,
		InterconnectLatency: 1,
		Pipelined:           true,
		Stages:              3,
		LinkWidth:           2,
	}
}

type saMessage struct {
	deliverAt uint64
	q         int
	value     uint64
	credit    bool // true: ACK back to the producer, false: data to the SA
	fated     bool // fault injection already consulted for this message
}

type saQueue struct {
	// Producer-side view: items sent minus credits received. Conservative
	// (an item in flight counts as occupying the queue).
	outstanding int
	// Consumer-side FIFO resident in the dedicated store. head indexes the
	// front so pops reuse the backing array instead of sliding the slice
	// (fifo = fifo[1:] reallocates on nearly every push).
	fifo []uint64
	head int
}

// occ returns the queue's resident occupancy.
func (q *saQueue) occ() int { return len(q.fifo) - q.head }

// push appends to the FIFO, compacting consumed headroom first so the
// backing array is reused.
func (q *saQueue) push(v uint64) {
	if q.head > 0 && len(q.fifo) == cap(q.fifo) {
		n := copy(q.fifo, q.fifo[q.head:])
		q.fifo = q.fifo[:n]
		q.head = 0
	}
	q.fifo = append(q.fifo, v)
}

// pop removes and returns the front item (the caller checks occupancy).
func (q *saQueue) pop() uint64 {
	v := q.fifo[q.head]
	q.head++
	if q.head == len(q.fifo) {
		q.fifo = q.fifo[:0]
		q.head = 0
	}
	return v
}

// interconnect directions: data (producer to SA) and credits (back).
const (
	dirData = iota
	dirCredit
	numDirs
)

// SyncArray models HEAVYWT's distributed dedicated backing store: a FIFO
// array located at the consumer core, with replicated occupancy tracking at
// the producer (credit-based) and a dedicated interconnect carrying data
// one way and credits the other. It implements port.Stream for both cores.
type SyncArray struct {
	p        SAParams
	queues   []saQueue
	inflight []saMessage

	// depths holds each physical queue's dedicated-store depth: p.Depth
	// for the first NumQueues entries, Depth/lcm(P,C) (min 1) for MPMC
	// lane sub-queues appended after them.
	depths []int
	// laneBase maps a logical MPMC queue ID to the physical ID of its
	// first lane.
	laneBase map[int]int

	// linkFree tracks, per direction, the next quarter-cycle at which the
	// interconnect accepts a message (token bucket at the pipeline
	// initiation rate; paper §3.3).
	linkFree [numDirs]uint64
	// pendingCredits holds credits the link could not accept yet; they
	// drain in Tick so consumes never block on credit-path contention.
	// pcHead indexes the front (same capacity-reuse scheme as saQueue).
	pendingCredits []int
	pcHead         int
	// pendingData is the small network-interface egress buffer on the
	// data path: short produce bursts absorb here; once it fills, produce
	// operations back up in the processor pipeline (paper §3.2). pdHead
	// indexes the front.
	pendingData []saMessage
	pdHead      int

	// consumeBudget tracks dedicated-store port usage in the current cycle.
	budgetCycle uint64
	budgetUsed  int

	// wakeAt caches the earliest cycle at which Tick can do anything
	// (^uint64(0) when dormant). Produce/Consume lower it when they queue
	// work; Tick recomputes it. The sim kernel skips dormant arrays.
	wakeAt uint64

	// Tokens, when non-nil, recycles completion tokens from a run-scoped
	// arena instead of allocating each one.
	Tokens *port.TokenPool

	// LinkBackpressure counts produce attempts rejected by the
	// interconnect initiation rate.
	LinkBackpressure uint64

	// Faults, when non-nil, injects deterministic faults into the
	// interconnect delivery paths: credits may be delayed or dropped,
	// data messages may be dropped (see package fault).
	Faults *fault.Injector

	// Stats.
	Produces     uint64
	Consumes     uint64
	FullStalls   uint64 // produce attempts rejected (queue full)
	EmptyStalls  uint64 // consume attempts rejected (no data)
	MaxOccupancy int
	// OccHist is a histogram of dedicated-store occupancy, recorded after
	// every delivery and every consume.
	OccHist stats.Hist
}

// NewSyncArray builds a synchronization array.
func NewSyncArray(p SAParams) (*SyncArray, error) {
	if p.NumQueues <= 0 || p.Depth <= 0 {
		return nil, fmt.Errorf("queue: bad SA params %+v", p)
	}
	if p.OpsPerCycle <= 0 {
		p.OpsPerCycle = 4
	}
	if p.ConsumeToUse <= 0 {
		p.ConsumeToUse = 1
	}
	if p.InterconnectLatency <= 0 {
		p.InterconnectLatency = 1
	}
	total := p.NumQueues
	depths := make([]int, p.NumQueues, p.NumQueues)
	for i := range depths {
		depths[i] = p.Depth
	}
	laneBase := make(map[int]int, len(p.MPMC))
	mpmcQs := make([]int, 0, len(p.MPMC))
	for q := range p.MPMC {
		mpmcQs = append(mpmcQs, q)
	}
	sort.Ints(mpmcQs)
	for _, q := range mpmcQs {
		r := p.MPMC[q]
		if q < 0 || q >= p.NumQueues {
			return nil, fmt.Errorf("queue: MPMC route for q%d out of range [0,%d)", q, p.NumQueues)
		}
		if err := r.Validate(q, p.Depth); err != nil {
			return nil, err
		}
		if !r.IsMPMC() {
			continue // 1:1 route: the plain FIFO already has the semantics
		}
		lanes := r.LaneCount()
		laneCap := p.Depth / lanes
		if laneCap < 1 {
			laneCap = 1
		}
		laneBase[q] = total
		for l := 0; l < lanes; l++ {
			depths = append(depths, laneCap)
		}
		total += lanes
	}
	return &SyncArray{p: p, queues: make([]saQueue, total), depths: depths, laneBase: laneBase, wakeAt: ^uint64(0)}, nil
}

// capacityOf returns physical queue q's effective producer-visible
// capacity: its dedicated store depth plus, for a pipelined interconnect,
// the in-flight stages (which buffer data and effectively extend the
// queue).
func (sa *SyncArray) capacityOf(q int) int {
	if sa.p.Pipelined {
		return sa.depths[q] + sa.p.InterconnectLatency
	}
	return sa.depths[q]
}

// noteWake lowers the cached wake time; every mutation that queues future
// work for Tick must call it.
func (sa *SyncArray) noteWake(at uint64) {
	if at < sa.wakeAt {
		sa.wakeAt = at
	}
}

// WakeAt returns the earliest cycle at which Tick can do anything
// (^uint64(0) when the array is dormant).
func (sa *SyncArray) WakeAt() uint64 { return sa.wakeAt }

// Tick delivers interconnect messages due at the given cycle and drains
// queued credits as link bandwidth allows. It must be called once per
// cycle before the cores tick (the kernel may skip cycles where WakeAt
// says nothing can happen).
func (sa *SyncArray) Tick(cycle uint64) {
	sa.tick(cycle)
	sa.wakeAt = sa.NextWake(cycle)
}

func (sa *SyncArray) tick(cycle uint64) {
	for sa.pcHead < len(sa.pendingCredits) && sa.tryInject(cycle, dirCredit) {
		q := sa.pendingCredits[sa.pcHead]
		sa.pcHead++
		sa.inflight = append(sa.inflight, saMessage{
			deliverAt: cycle + uint64(sa.p.InterconnectLatency),
			q:         q,
			credit:    true,
		})
	}
	if sa.pcHead == len(sa.pendingCredits) {
		sa.pendingCredits = sa.pendingCredits[:0]
		sa.pcHead = 0
	}
	for sa.pdHead < len(sa.pendingData) && sa.tryInject(cycle, dirData) {
		m := sa.pendingData[sa.pdHead]
		sa.pdHead++
		m.deliverAt = cycle + uint64(sa.p.InterconnectLatency)
		sa.inflight = append(sa.inflight, m)
	}
	if sa.pdHead == len(sa.pendingData) {
		sa.pendingData = sa.pendingData[:0]
		sa.pdHead = 0
	}
	kept := sa.inflight[:0]
	for _, m := range sa.inflight {
		if m.deliverAt > cycle {
			kept = append(kept, m)
			continue
		}
		if m.credit && !m.fated {
			drop, delay := sa.Faults.CreditFate(cycle, m.q)
			if drop {
				// Injected loss: the producer's occupancy view stays
				// elevated forever.
				continue
			}
			if delay > 0 {
				// Credits are order-irrelevant counters, so delaying one
				// is safe; mark it fated so it is not consulted again.
				m.fated = true
				m.deliverAt = cycle + delay
				kept = append(kept, m)
				continue
			}
		}
		if !m.credit && sa.Faults.DataDropped(cycle, m.q) {
			// Injected loss: the item vanishes in flight. The producer's
			// credit is never returned (data messages carry the value, so
			// delaying them would reorder the FIFO — drops only).
			continue
		}
		q := &sa.queues[m.q]
		if m.credit {
			q.outstanding--
			if q.outstanding < 0 {
				panic(fmt.Sprintf("queue: SA credit underflow on q%d", m.q))
			}
		} else {
			q.push(m.value)
			if q.occ() > sa.MaxOccupancy {
				sa.MaxOccupancy = q.occ()
			}
			sa.OccHist.Observe(uint64(q.occ()))
		}
	}
	sa.inflight = kept
}

// NextWake returns the earliest future cycle at which the array can
// change state on its own: the next in-flight message delivery, or the
// very next cycle when queued credits/data are waiting to drain onto the
// link. Returns ^uint64(0) when the array is idle.
func (sa *SyncArray) NextWake(cycle uint64) uint64 {
	if sa.pcHead < len(sa.pendingCredits) || sa.pdHead < len(sa.pendingData) {
		return cycle + 1
	}
	w := ^uint64(0)
	for _, m := range sa.inflight {
		if m.deliverAt < w {
			w = m.deliverAt
		}
	}
	if w <= cycle {
		return cycle + 1
	}
	return w
}

// msgCostQ4 is the interconnect initiation interval per message in
// quarter-cycles: latency/stages for a pipelined network (one slot every
// initiation interval, LinkWidth messages per slot), the full latency for
// a non-pipelined one.
func (sa *SyncArray) msgCostQ4() uint64 {
	w := sa.p.LinkWidth
	if w <= 0 {
		w = 1
	}
	if !sa.p.Pipelined {
		// A non-pipelined link carries one message per full traversal.
		return uint64(4 * sa.p.InterconnectLatency)
	}
	stages := sa.p.Stages
	if stages <= 0 {
		stages = 3
	}
	interval := (sa.p.InterconnectLatency + stages - 1) / stages
	if interval < 1 {
		interval = 1
	}
	cost := uint64(4 * interval / w)
	if cost < 1 {
		cost = 1
	}
	return cost
}

// tryInject consumes link bandwidth in the given direction if available.
func (sa *SyncArray) tryInject(cycle uint64, dir int) bool {
	q4 := cycle * 4
	if sa.linkFree[dir] > q4+3 {
		return false
	}
	next := sa.linkFree[dir]
	if next < q4 {
		next = q4
	}
	sa.linkFree[dir] = next + sa.msgCostQ4()
	return true
}

func (sa *SyncArray) takeBudget(cycle uint64) bool {
	if sa.budgetCycle != cycle {
		sa.budgetCycle = cycle
		sa.budgetUsed = 0
	}
	if sa.budgetUsed >= sa.p.OpsPerCycle {
		return false
	}
	sa.budgetUsed++
	return true
}

// Produce implements port.Stream. A produce on a full queue blocks the
// pipeline: ok=false tells the core to stall issue and retry.
func (sa *SyncArray) Produce(cycle uint64, q int, v uint64) (*port.Token, bool) {
	qu := &sa.queues[q]
	if qu.outstanding >= sa.capacityOf(q) {
		sa.FullStalls++
		return nil, false
	}
	if !sa.takeBudget(cycle) {
		return nil, false
	}
	msg := saMessage{q: q, value: v}
	switch {
	case sa.pdHead == len(sa.pendingData) && sa.tryInject(cycle, dirData):
		msg.deliverAt = cycle + uint64(sa.p.InterconnectLatency)
		sa.inflight = append(sa.inflight, msg)
		sa.noteWake(msg.deliverAt)
	case len(sa.pendingData)-sa.pdHead < egressEntries:
		if sa.pdHead > 0 && len(sa.pendingData) == cap(sa.pendingData) {
			n := copy(sa.pendingData, sa.pendingData[sa.pdHead:])
			sa.pendingData = sa.pendingData[:n]
			sa.pdHead = 0
		}
		sa.pendingData = append(sa.pendingData, msg)
		sa.noteWake(cycle + 1)
	default:
		sa.LinkBackpressure++
		return nil, false
	}
	qu.outstanding++
	sa.Produces++
	tok := sa.Tokens.Get(stats.PreL2)
	tok.Complete(cycle+1, v)
	return tok, true
}

// egressEntries sizes the network-interface egress buffer.
const egressEntries = 4

// Consume implements port.Stream. ok=false when no data has arrived at the
// dedicated store yet.
func (sa *SyncArray) Consume(cycle uint64, q int) (*port.Token, bool) {
	qu := &sa.queues[q]
	if qu.occ() == 0 {
		sa.EmptyStalls++
		return nil, false
	}
	if !sa.takeBudget(cycle) {
		return nil, false
	}
	v := qu.pop()
	sa.Consumes++
	sa.OccHist.Observe(uint64(qu.occ()))
	// Return the credit to the producer over the interconnect; if the
	// credit path is saturated the credit queues without blocking the
	// consume itself.
	if sa.tryInject(cycle, dirCredit) {
		sa.inflight = append(sa.inflight, saMessage{
			deliverAt: cycle + uint64(sa.p.InterconnectLatency),
			q:         q,
			credit:    true,
		})
		sa.noteWake(cycle + uint64(sa.p.InterconnectLatency))
	} else {
		if sa.pcHead > 0 && len(sa.pendingCredits) == cap(sa.pendingCredits) {
			n := copy(sa.pendingCredits, sa.pendingCredits[sa.pcHead:])
			sa.pendingCredits = sa.pendingCredits[:n]
			sa.pcHead = 0
		}
		sa.pendingCredits = append(sa.pendingCredits, q)
		sa.noteWake(cycle + 1)
	}
	tok := sa.Tokens.Get(stats.PreL2)
	tok.Complete(cycle+uint64(sa.p.ConsumeToUse), v)
	return tok, true
}

// Occupancy returns the number of items resident in queue q's dedicated
// store (excludes in-flight items).
func (sa *SyncArray) Occupancy(q int) int { return sa.queues[q].occ() }

// Outstanding returns the producer-side occupancy view for queue q.
func (sa *SyncArray) Outstanding(q int) int { return sa.queues[q].outstanding }

// SAQueueInfo is a diagnostic snapshot of one queue's state.
type SAQueueInfo struct {
	Q           int
	Occupancy   int // items resident in the dedicated store
	Outstanding int // producer-side occupancy view (includes in-flight)
}

// SASnapshot is a diagnostic snapshot of the synchronization array, used
// for deadlock forensics.
type SASnapshot struct {
	InFlight       int
	PendingCredits int
	PendingData    int
	Queues         []SAQueueInfo // only queues with visible state
}

// Snapshot captures the array's current occupancy and in-flight state.
func (sa *SyncArray) Snapshot() SASnapshot {
	s := SASnapshot{
		InFlight:       len(sa.inflight),
		PendingCredits: len(sa.pendingCredits) - sa.pcHead,
		PendingData:    len(sa.pendingData) - sa.pdHead,
	}
	for i := range sa.queues {
		if sa.queues[i].occ() == 0 && sa.queues[i].outstanding == 0 {
			continue
		}
		s.Queues = append(s.Queues, SAQueueInfo{
			Q: i, Occupancy: sa.queues[i].occ(), Outstanding: sa.queues[i].outstanding,
		})
	}
	return s
}

// Drained reports whether all queues are empty with nothing in flight.
func (sa *SyncArray) Drained() bool {
	if len(sa.inflight) > 0 || sa.pcHead < len(sa.pendingCredits) || sa.pdHead < len(sa.pendingData) {
		return false
	}
	for i := range sa.queues {
		if sa.queues[i].occ() > 0 || sa.queues[i].outstanding > 0 {
			return false
		}
	}
	return true
}
