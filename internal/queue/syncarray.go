package queue

import (
	"fmt"

	"hfstream/fault"
	"hfstream/internal/port"
	"hfstream/internal/stats"
)

// SAParams configures the HEAVYWT synchronization array and its dedicated
// interconnect.
type SAParams struct {
	NumQueues int
	Depth     int // dedicated storage entries per queue
	// OpsPerCycle is the number of concurrent operations the dedicated
	// store can service per cycle (paper: 4).
	OpsPerCycle int
	// ConsumeToUse is the consume-to-use latency within the consuming core
	// (paper: 1 cycle).
	ConsumeToUse int
	// InterconnectLatency is the end-to-end latency of the dedicated
	// interconnect in cycles (paper default: 1; 10 in Figure 6).
	InterconnectLatency int
	// Pipelined selects a pipelined interconnect. An M-stage pipelined
	// interconnect with end-to-end latency N accepts a new message every
	// N/M cycles, and its in-flight stages act as extra queue storage
	// (paper §3.3 and the Figure 6 discussion); a non-pipelined one
	// accepts a message only every N cycles.
	Pipelined bool
	// Stages is the pipeline depth of the dedicated interconnect (3,
	// matching the baseline bus).
	Stages int
	// LinkWidth is the number of messages one pipeline slot carries in
	// each direction.
	LinkWidth int
}

// DefaultSAParams returns the paper's HEAVYWT configuration.
func DefaultSAParams(numQueues, depth int) SAParams {
	return SAParams{
		NumQueues:           numQueues,
		Depth:               depth,
		OpsPerCycle:         4,
		ConsumeToUse:        1,
		InterconnectLatency: 1,
		Pipelined:           true,
		Stages:              3,
		LinkWidth:           2,
	}
}

type saMessage struct {
	deliverAt uint64
	q         int
	value     uint64
	credit    bool // true: ACK back to the producer, false: data to the SA
	fated     bool // fault injection already consulted for this message
}

type saQueue struct {
	// Producer-side view: items sent minus credits received. Conservative
	// (an item in flight counts as occupying the queue).
	outstanding int
	// Consumer-side FIFO resident in the dedicated store.
	fifo []uint64
}

// interconnect directions: data (producer to SA) and credits (back).
const (
	dirData = iota
	dirCredit
	numDirs
)

// SyncArray models HEAVYWT's distributed dedicated backing store: a FIFO
// array located at the consumer core, with replicated occupancy tracking at
// the producer (credit-based) and a dedicated interconnect carrying data
// one way and credits the other. It implements port.Stream for both cores.
type SyncArray struct {
	p        SAParams
	queues   []saQueue
	inflight []saMessage

	// linkFree tracks, per direction, the next quarter-cycle at which the
	// interconnect accepts a message (token bucket at the pipeline
	// initiation rate; paper §3.3).
	linkFree [numDirs]uint64
	// pendingCredits holds credits the link could not accept yet; they
	// drain in Tick so consumes never block on credit-path contention.
	pendingCredits []int
	// pendingData is the small network-interface egress buffer on the
	// data path: short produce bursts absorb here; once it fills, produce
	// operations back up in the processor pipeline (paper §3.2).
	pendingData []saMessage

	// consumeBudget tracks dedicated-store port usage in the current cycle.
	budgetCycle uint64
	budgetUsed  int

	// LinkBackpressure counts produce attempts rejected by the
	// interconnect initiation rate.
	LinkBackpressure uint64

	// Faults, when non-nil, injects deterministic faults into the
	// interconnect delivery paths: credits may be delayed or dropped,
	// data messages may be dropped (see package fault).
	Faults *fault.Injector

	// Stats.
	Produces     uint64
	Consumes     uint64
	FullStalls   uint64 // produce attempts rejected (queue full)
	EmptyStalls  uint64 // consume attempts rejected (no data)
	MaxOccupancy int
	// OccHist is a histogram of dedicated-store occupancy, recorded after
	// every delivery and every consume.
	OccHist stats.Hist
}

// NewSyncArray builds a synchronization array.
func NewSyncArray(p SAParams) (*SyncArray, error) {
	if p.NumQueues <= 0 || p.Depth <= 0 {
		return nil, fmt.Errorf("queue: bad SA params %+v", p)
	}
	if p.OpsPerCycle <= 0 {
		p.OpsPerCycle = 4
	}
	if p.ConsumeToUse <= 0 {
		p.ConsumeToUse = 1
	}
	if p.InterconnectLatency <= 0 {
		p.InterconnectLatency = 1
	}
	return &SyncArray{p: p, queues: make([]saQueue, p.NumQueues)}, nil
}

// capacity returns the effective producer-visible capacity: the dedicated
// store depth plus, for a pipelined interconnect, its in-flight stages
// (which buffer data and effectively extend the queue).
func (sa *SyncArray) capacity() int {
	if sa.p.Pipelined {
		return sa.p.Depth + sa.p.InterconnectLatency
	}
	return sa.p.Depth
}

// Tick delivers interconnect messages due at the given cycle and drains
// queued credits as link bandwidth allows. It must be called once per
// cycle before the cores tick.
func (sa *SyncArray) Tick(cycle uint64) {
	for len(sa.pendingCredits) > 0 && sa.tryInject(cycle, dirCredit) {
		q := sa.pendingCredits[0]
		sa.pendingCredits = sa.pendingCredits[1:]
		sa.inflight = append(sa.inflight, saMessage{
			deliverAt: cycle + uint64(sa.p.InterconnectLatency),
			q:         q,
			credit:    true,
		})
	}
	for len(sa.pendingData) > 0 && sa.tryInject(cycle, dirData) {
		m := sa.pendingData[0]
		sa.pendingData = sa.pendingData[1:]
		m.deliverAt = cycle + uint64(sa.p.InterconnectLatency)
		sa.inflight = append(sa.inflight, m)
	}
	kept := sa.inflight[:0]
	for _, m := range sa.inflight {
		if m.deliverAt > cycle {
			kept = append(kept, m)
			continue
		}
		if m.credit && !m.fated {
			drop, delay := sa.Faults.CreditFate(cycle, m.q)
			if drop {
				// Injected loss: the producer's occupancy view stays
				// elevated forever.
				continue
			}
			if delay > 0 {
				// Credits are order-irrelevant counters, so delaying one
				// is safe; mark it fated so it is not consulted again.
				m.fated = true
				m.deliverAt = cycle + delay
				kept = append(kept, m)
				continue
			}
		}
		if !m.credit && sa.Faults.DataDropped(cycle, m.q) {
			// Injected loss: the item vanishes in flight. The producer's
			// credit is never returned (data messages carry the value, so
			// delaying them would reorder the FIFO — drops only).
			continue
		}
		q := &sa.queues[m.q]
		if m.credit {
			q.outstanding--
			if q.outstanding < 0 {
				panic(fmt.Sprintf("queue: SA credit underflow on q%d", m.q))
			}
		} else {
			q.fifo = append(q.fifo, m.value)
			if len(q.fifo) > sa.MaxOccupancy {
				sa.MaxOccupancy = len(q.fifo)
			}
			sa.OccHist.Observe(uint64(len(q.fifo)))
		}
	}
	sa.inflight = kept
}

// NextWake returns the earliest future cycle at which the array can
// change state on its own: the next in-flight message delivery, or the
// very next cycle when queued credits/data are waiting to drain onto the
// link. Returns ^uint64(0) when the array is idle.
func (sa *SyncArray) NextWake(cycle uint64) uint64 {
	if len(sa.pendingCredits) > 0 || len(sa.pendingData) > 0 {
		return cycle + 1
	}
	w := ^uint64(0)
	for _, m := range sa.inflight {
		if m.deliverAt < w {
			w = m.deliverAt
		}
	}
	if w <= cycle {
		return cycle + 1
	}
	return w
}

// msgCostQ4 is the interconnect initiation interval per message in
// quarter-cycles: latency/stages for a pipelined network (one slot every
// initiation interval, LinkWidth messages per slot), the full latency for
// a non-pipelined one.
func (sa *SyncArray) msgCostQ4() uint64 {
	w := sa.p.LinkWidth
	if w <= 0 {
		w = 1
	}
	if !sa.p.Pipelined {
		// A non-pipelined link carries one message per full traversal.
		return uint64(4 * sa.p.InterconnectLatency)
	}
	stages := sa.p.Stages
	if stages <= 0 {
		stages = 3
	}
	interval := (sa.p.InterconnectLatency + stages - 1) / stages
	if interval < 1 {
		interval = 1
	}
	cost := uint64(4 * interval / w)
	if cost < 1 {
		cost = 1
	}
	return cost
}

// tryInject consumes link bandwidth in the given direction if available.
func (sa *SyncArray) tryInject(cycle uint64, dir int) bool {
	q4 := cycle * 4
	if sa.linkFree[dir] > q4+3 {
		return false
	}
	next := sa.linkFree[dir]
	if next < q4 {
		next = q4
	}
	sa.linkFree[dir] = next + sa.msgCostQ4()
	return true
}

func (sa *SyncArray) takeBudget(cycle uint64) bool {
	if sa.budgetCycle != cycle {
		sa.budgetCycle = cycle
		sa.budgetUsed = 0
	}
	if sa.budgetUsed >= sa.p.OpsPerCycle {
		return false
	}
	sa.budgetUsed++
	return true
}

// Produce implements port.Stream. A produce on a full queue blocks the
// pipeline: ok=false tells the core to stall issue and retry.
func (sa *SyncArray) Produce(cycle uint64, q int, v uint64) (*port.Token, bool) {
	qu := &sa.queues[q]
	if qu.outstanding >= sa.capacity() {
		sa.FullStalls++
		return nil, false
	}
	if !sa.takeBudget(cycle) {
		return nil, false
	}
	msg := saMessage{q: q, value: v}
	switch {
	case len(sa.pendingData) == 0 && sa.tryInject(cycle, dirData):
		msg.deliverAt = cycle + uint64(sa.p.InterconnectLatency)
		sa.inflight = append(sa.inflight, msg)
	case len(sa.pendingData) < egressEntries:
		sa.pendingData = append(sa.pendingData, msg)
	default:
		sa.LinkBackpressure++
		return nil, false
	}
	qu.outstanding++
	sa.Produces++
	tok := port.NewToken(stats.PreL2)
	tok.Complete(cycle+1, v)
	return tok, true
}

// egressEntries sizes the network-interface egress buffer.
const egressEntries = 4

// Consume implements port.Stream. ok=false when no data has arrived at the
// dedicated store yet.
func (sa *SyncArray) Consume(cycle uint64, q int) (*port.Token, bool) {
	qu := &sa.queues[q]
	if len(qu.fifo) == 0 {
		sa.EmptyStalls++
		return nil, false
	}
	if !sa.takeBudget(cycle) {
		return nil, false
	}
	v := qu.fifo[0]
	qu.fifo = qu.fifo[1:]
	sa.Consumes++
	sa.OccHist.Observe(uint64(len(qu.fifo)))
	// Return the credit to the producer over the interconnect; if the
	// credit path is saturated the credit queues without blocking the
	// consume itself.
	if sa.tryInject(cycle, dirCredit) {
		sa.inflight = append(sa.inflight, saMessage{
			deliverAt: cycle + uint64(sa.p.InterconnectLatency),
			q:         q,
			credit:    true,
		})
	} else {
		sa.pendingCredits = append(sa.pendingCredits, q)
	}
	tok := port.NewToken(stats.PreL2)
	tok.Complete(cycle+uint64(sa.p.ConsumeToUse), v)
	return tok, true
}

// Occupancy returns the number of items resident in queue q's dedicated
// store (excludes in-flight items).
func (sa *SyncArray) Occupancy(q int) int { return len(sa.queues[q].fifo) }

// Outstanding returns the producer-side occupancy view for queue q.
func (sa *SyncArray) Outstanding(q int) int { return sa.queues[q].outstanding }

// SAQueueInfo is a diagnostic snapshot of one queue's state.
type SAQueueInfo struct {
	Q           int
	Occupancy   int // items resident in the dedicated store
	Outstanding int // producer-side occupancy view (includes in-flight)
}

// SASnapshot is a diagnostic snapshot of the synchronization array, used
// for deadlock forensics.
type SASnapshot struct {
	InFlight       int
	PendingCredits int
	PendingData    int
	Queues         []SAQueueInfo // only queues with visible state
}

// Snapshot captures the array's current occupancy and in-flight state.
func (sa *SyncArray) Snapshot() SASnapshot {
	s := SASnapshot{
		InFlight:       len(sa.inflight),
		PendingCredits: len(sa.pendingCredits),
		PendingData:    len(sa.pendingData),
	}
	for i := range sa.queues {
		if len(sa.queues[i].fifo) == 0 && sa.queues[i].outstanding == 0 {
			continue
		}
		s.Queues = append(s.Queues, SAQueueInfo{
			Q: i, Occupancy: len(sa.queues[i].fifo), Outstanding: sa.queues[i].outstanding,
		})
	}
	return s
}

// Drained reports whether all queues are empty with nothing in flight.
func (sa *SyncArray) Drained() bool {
	if len(sa.inflight) > 0 || len(sa.pendingCredits) > 0 || len(sa.pendingData) > 0 {
		return false
	}
	for i := range sa.queues {
		if len(sa.queues[i].fifo) > 0 || sa.queues[i].outstanding > 0 {
			return false
		}
	}
	return true
}
