// Package isa defines the small RISC instruction set interpreted by the
// timing simulator.
//
// The ISA stands in for the paper's Itanium 2 target: what matters to the
// study is instruction counts, dependence heights, functional-unit classes
// and the presence of produce/consume/fence primitives, all of which are
// preserved. Registers are 64 untyped 64-bit values; floating-point
// operations reinterpret register bits as float64.
package isa

import "fmt"

// Reg names one of the 64 general registers r0..r63.
type Reg uint8

// NumRegs is the architectural register count.
const NumRegs = 64

// String returns the assembly name of the register.
func (r Reg) String() string { return fmt.Sprintf("r%d", int(r)) }

// Op is an opcode.
type Op uint8

// Opcodes. Immediate variants fold a constant into the instruction to keep
// dynamic instruction counts comparable to the paper's hand-tuned
// sequences.
const (
	Nop Op = iota
	Halt

	// Integer ALU.
	MovI // rd = imm
	Mov  // rd = ra
	Add  // rd = ra + rb
	AddI // rd = ra + imm
	Sub  // rd = ra - rb
	Mul  // rd = ra * rb
	Div  // rd = ra / rb (0 if rb == 0)
	And  // rd = ra & rb
	AndI // rd = ra & imm
	Or   // rd = ra | rb
	Xor  // rd = ra ^ rb
	ShlI // rd = ra << imm
	ShrI // rd = ra >> imm (logical)
	CmpEQ
	CmpNE
	CmpLT // signed
	Sel   // rd = ra if rb != 0 else imm (simple conditional move)

	// Floating point (bits of the registers reinterpreted as float64).
	FAdd
	FSub
	FMul
	FDiv
	I2F // rd = float64(int64(ra))
	F2I // rd = int64(float64(ra))

	// Memory. Effective address is ra + imm.
	Ld // rd = mem[ra+imm]
	St // mem[ra+imm] = rb

	// Branches. The target is the resolved instruction index in Imm.
	B    // unconditional
	Beqz // if ra == 0
	Bnez // if ra != 0

	// Streaming and ordering primitives.
	Produce // queue Q <- ra
	Consume // rd <- queue Q
	Fence   // full memory barrier

	numOps
)

var opNames = [numOps]string{
	Nop: "nop", Halt: "halt",
	MovI: "movi", Mov: "mov", Add: "add", AddI: "addi", Sub: "sub",
	Mul: "mul", Div: "div", And: "and", AndI: "andi", Or: "or",
	Xor: "xor", ShlI: "shli", ShrI: "shri",
	CmpEQ: "cmpeq", CmpNE: "cmpne", CmpLT: "cmplt", Sel: "sel",
	FAdd: "fadd", FSub: "fsub", FMul: "fmul", FDiv: "fdiv",
	I2F: "i2f", F2I: "f2i",
	Ld: "ld", St: "st",
	B: "b", Beqz: "beqz", Bnez: "bnez",
	Produce: "produce", Consume: "consume", Fence: "fence",
}

// String returns the mnemonic.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// FU identifies a functional-unit class, matching the paper's Itanium 2
// issue constraints (6 ALU, 4 memory, 2 FP, 3 branch per cycle).
type FU int

// Functional-unit classes.
const (
	FUALU FU = iota
	FUMem
	FUFP
	FUBranch
	NumFUs
)

// String names the FU class.
func (f FU) String() string {
	switch f {
	case FUALU:
		return "ALU"
	case FUMem:
		return "MEM"
	case FUFP:
		return "FP"
	case FUBranch:
		return "BR"
	default:
		return fmt.Sprintf("FU(%d)", int(f))
	}
}

// FUOf returns the functional unit class needed by the opcode.
func (o Op) FU() FU {
	switch o {
	case Ld, St, Fence, Produce, Consume:
		return FUMem
	case FAdd, FSub, FMul, FDiv, I2F, F2I:
		return FUFP
	case B, Beqz, Bnez, Halt:
		return FUBranch
	default:
		return FUALU
	}
}

// Latency returns the fixed execution latency in cycles for non-memory
// operations. Memory operations have variable latency determined by the
// memory system; this returns their minimum (issue-to-use of 1).
func (o Op) Latency() int {
	switch o {
	case Mul:
		return 3
	case Div:
		return 12
	case FAdd, FSub, FMul, I2F, F2I:
		return 4
	case FDiv:
		return 16
	default:
		return 1
	}
}

// IsBranch reports whether the opcode redirects control flow.
func (o Op) IsBranch() bool { return o == B || o == Beqz || o == Bnez }

// IsMem reports whether the opcode accesses the memory system (including
// streaming primitives, which occupy memory issue slots).
func (o Op) IsMem() bool { return o.FU() == FUMem }

// WritesRd reports whether the opcode writes a destination register.
func (o Op) WritesRd() bool {
	switch o {
	case Nop, Halt, St, B, Beqz, Bnez, Produce, Fence:
		return false
	default:
		return true
	}
}

// ReadsRa reports whether Ra is a source operand.
func (o Op) ReadsRa() bool {
	switch o {
	case Nop, Halt, MovI, B, Consume, Fence:
		return false
	default:
		return true
	}
}

// ReadsRb reports whether Rb is a source operand.
func (o Op) ReadsRb() bool {
	switch o {
	case Add, Sub, Mul, Div, And, Or, Xor, CmpEQ, CmpNE, CmpLT, Sel,
		FAdd, FSub, FMul, FDiv, St:
		return true
	default:
		return false
	}
}

// Instr is one decoded instruction.
type Instr struct {
	Op  Op
	Rd  Reg
	Ra  Reg
	Rb  Reg
	Imm int64 // immediate, displacement, or resolved branch target
	Q   int   // queue number for Produce/Consume

	// Comm marks communication/synchronization overhead instructions
	// (produce/consume themselves, and the software-queue sequences the
	// lowering pass emits). The ratio of dynamic Comm to application
	// instructions is the paper's Figure 8 metric, and overhead-only
	// issue cycles are attributed to the PostL2 bucket (the extra commit
	// bandwidth those instructions consume).
	Comm bool
}

// String disassembles the instruction.
func (in Instr) String() string {
	switch in.Op {
	case Nop, Halt, Fence:
		return in.Op.String()
	case MovI:
		return fmt.Sprintf("%s %s, %d", in.Op, in.Rd, in.Imm)
	case Mov, I2F, F2I:
		return fmt.Sprintf("%s %s, %s", in.Op, in.Rd, in.Ra)
	case AddI, AndI, ShlI, ShrI:
		return fmt.Sprintf("%s %s, %s, %d", in.Op, in.Rd, in.Ra, in.Imm)
	case Sel:
		return fmt.Sprintf("%s %s, %s, %s, %d", in.Op, in.Rd, in.Ra, in.Rb, in.Imm)
	case Ld:
		return fmt.Sprintf("ld %s, [%s+%d]", in.Rd, in.Ra, in.Imm)
	case St:
		return fmt.Sprintf("st [%s+%d], %s", in.Ra, in.Imm, in.Rb)
	case B:
		return fmt.Sprintf("b %d", in.Imm)
	case Beqz, Bnez:
		return fmt.Sprintf("%s %s, %d", in.Op, in.Ra, in.Imm)
	case Produce:
		return fmt.Sprintf("produce q%d, %s", in.Q, in.Ra)
	case Consume:
		return fmt.Sprintf("consume %s, q%d", in.Rd, in.Q)
	default:
		return fmt.Sprintf("%s %s, %s, %s", in.Op, in.Rd, in.Ra, in.Rb)
	}
}

// Program is a sequence of instructions ready for execution.
type Program struct {
	Name   string
	Instrs []Instr
}

// String disassembles the whole program with instruction indices.
func (p *Program) String() string {
	s := fmt.Sprintf("; program %s (%d instrs)\n", p.Name, len(p.Instrs))
	for i, in := range p.Instrs {
		s += fmt.Sprintf("%4d: %s\n", i, in.String())
	}
	return s
}

// Validate checks branch targets and queue numbers, returning the first
// problem found.
func (p *Program) Validate(numQueues int) error {
	for i, in := range p.Instrs {
		if in.Op.IsBranch() && in.Op != Halt {
			if in.Imm < 0 || in.Imm >= int64(len(p.Instrs)) {
				return fmt.Errorf("%s: instr %d (%s): branch target %d out of range [0,%d)",
					p.Name, i, in, in.Imm, len(p.Instrs))
			}
		}
		if in.Op == Produce || in.Op == Consume {
			if in.Q < 0 || in.Q >= numQueues {
				return fmt.Errorf("%s: instr %d (%s): queue %d out of range [0,%d)",
					p.Name, i, in, in.Q, numQueues)
			}
		}
	}
	return nil
}
