package isa

import (
	"fmt"
	"math"
)

// Eval computes the result of a register-register (non-memory, non-branch)
// instruction from its operand values. It is shared by the timing core and
// the functional interpreter so both agree on semantics.
func Eval(op Op, a, b uint64, imm int64) uint64 {
	switch op {
	case Nop:
		return 0
	case MovI:
		return uint64(imm)
	case Mov:
		return a
	case Add:
		return a + b
	case AddI:
		return a + uint64(imm)
	case Sub:
		return a - b
	case Mul:
		return a * b
	case Div:
		if b == 0 {
			return 0
		}
		return uint64(int64(a) / int64(b))
	case And:
		return a & b
	case AndI:
		return a & uint64(imm)
	case Or:
		return a | b
	case Xor:
		return a ^ b
	case ShlI:
		return a << uint(imm&63)
	case ShrI:
		return a >> uint(imm&63)
	case CmpEQ:
		return b2i(a == b)
	case CmpNE:
		return b2i(a != b)
	case CmpLT:
		return b2i(int64(a) < int64(b))
	case Sel:
		if b != 0 {
			return a
		}
		return uint64(imm)
	case FAdd:
		return math.Float64bits(math.Float64frombits(a) + math.Float64frombits(b))
	case FSub:
		return math.Float64bits(math.Float64frombits(a) - math.Float64frombits(b))
	case FMul:
		return math.Float64bits(math.Float64frombits(a) * math.Float64frombits(b))
	case FDiv:
		return math.Float64bits(math.Float64frombits(a) / math.Float64frombits(b))
	case I2F:
		return math.Float64bits(float64(int64(a)))
	case F2I:
		return uint64(int64(math.Float64frombits(a)))
	default:
		panic(fmt.Sprintf("isa: Eval on non-ALU opcode %v", op))
	}
}

func b2i(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
