package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func allOps() []Op {
	ops := []Op{}
	for o := Op(0); o < numOps; o++ {
		ops = append(ops, o)
	}
	return ops
}

func TestOpMetadataTotal(t *testing.T) {
	for _, o := range allOps() {
		if o.String() == "" || strings.HasPrefix(o.String(), "op(") {
			t.Errorf("opcode %d has no mnemonic", int(o))
		}
		if o.Latency() < 1 && o != Nop {
			t.Errorf("%v: latency %d < 1", o, o.Latency())
		}
		if fu := o.FU(); fu < 0 || fu >= NumFUs {
			t.Errorf("%v: bad FU %v", o, fu)
		}
	}
}

func TestFUClasses(t *testing.T) {
	cases := map[Op]FU{
		Add: FUALU, MovI: FUALU, CmpLT: FUALU, Sel: FUALU,
		FAdd: FUFP, FDiv: FUFP, I2F: FUFP,
		Ld: FUMem, St: FUMem, Produce: FUMem, Consume: FUMem, Fence: FUMem,
		B: FUBranch, Beqz: FUBranch, Bnez: FUBranch, Halt: FUBranch,
	}
	for op, want := range cases {
		if got := op.FU(); got != want {
			t.Errorf("%v.FU() = %v, want %v", op, got, want)
		}
	}
}

func TestLatencies(t *testing.T) {
	if Mul.Latency() <= Add.Latency() {
		t.Error("multiply should be slower than add")
	}
	if FDiv.Latency() <= FMul.Latency() {
		t.Error("FP divide should be slower than FP multiply")
	}
	if Div.Latency() <= Mul.Latency() {
		t.Error("divide should be slower than multiply")
	}
}

func TestOperandMetadata(t *testing.T) {
	if !Add.WritesRd() || St.WritesRd() || Produce.WritesRd() {
		t.Error("WritesRd wrong for Add/St/Produce")
	}
	if !Consume.WritesRd() || !Ld.WritesRd() {
		t.Error("WritesRd wrong for Consume/Ld")
	}
	if MovI.ReadsRa() || !Mov.ReadsRa() || !Beqz.ReadsRa() {
		t.Error("ReadsRa wrong")
	}
	if !St.ReadsRb() || Ld.ReadsRb() || AddI.ReadsRb() {
		t.Error("ReadsRb wrong")
	}
	if !B.IsBranch() || !Beqz.IsBranch() || Add.IsBranch() {
		t.Error("IsBranch wrong")
	}
	if !Fence.IsMem() || !Produce.IsMem() || Add.IsMem() {
		t.Error("IsMem wrong")
	}
}

func TestEvalBasics(t *testing.T) {
	cases := []struct {
		op   Op
		a, b uint64
		imm  int64
		want uint64
	}{
		{Add, 3, 4, 0, 7},
		{AddI, 3, 0, 4, 7},
		{Sub, 10, 4, 0, 6},
		{Mul, 6, 7, 0, 42},
		{Div, 42, 7, 0, 6},
		{Div, 42, 0, 0, 0},                  // divide by zero defined as 0
		{Div, ^uint64(0), 1, 0, ^uint64(0)}, // -1 / 1 = -1
		{And, 0b1100, 0b1010, 0, 0b1000},
		{AndI, 0xff, 0, 0x0f, 0x0f},
		{Or, 0b1100, 0b1010, 0, 0b1110},
		{Xor, 0b1100, 0b1010, 0, 0b0110},
		{ShlI, 1, 0, 4, 16},
		{ShrI, 16, 0, 4, 1},
		{CmpEQ, 5, 5, 0, 1},
		{CmpEQ, 5, 6, 0, 0},
		{CmpNE, 5, 6, 0, 1},
		{CmpLT, ^uint64(0), 0, 0, 1}, // -1 < 0 signed
		{CmpLT, 0, ^uint64(0), 0, 0},
		{Sel, 42, 1, 7, 42},
		{Sel, 42, 0, 7, 7},
		{MovI, 0, 0, -5, ^uint64(4)}, // two's complement -5
		{Mov, 99, 0, 0, 99},
	}
	for _, c := range cases {
		if got := Eval(c.op, c.a, c.b, c.imm); got != c.want {
			t.Errorf("Eval(%v, %d, %d, %d) = %d, want %d", c.op, c.a, c.b, c.imm, got, c.want)
		}
	}
}

func TestEvalFloat(t *testing.T) {
	f := func(x float64) uint64 { return Eval(I2F, uint64(int64(x)), 0, 0) }
	two := f(2)
	three := f(3)
	if got := Eval(FAdd, two, three, 0); got != f(5) {
		t.Errorf("2.0+3.0 wrong")
	}
	if got := Eval(FMul, two, three, 0); got != f(6) {
		t.Errorf("2.0*3.0 wrong")
	}
	if got := Eval(FSub, three, two, 0); got != f(1) {
		t.Errorf("3.0-2.0 wrong")
	}
	if got := Eval(FDiv, f(6), two, 0); got != three {
		t.Errorf("6.0/2.0 wrong")
	}
	if got := Eval(F2I, f(7), 0, 0); got != 7 {
		t.Errorf("F2I(7.0) = %d", got)
	}
}

// Property: integer add/sub and xor are inverses.
func TestEvalInverseProperties(t *testing.T) {
	addSub := func(a, b uint64) bool {
		return Eval(Sub, Eval(Add, a, b, 0), b, 0) == a
	}
	if err := quick.Check(addSub, nil); err != nil {
		t.Error(err)
	}
	xorTwice := func(a, b uint64) bool {
		return Eval(Xor, Eval(Xor, a, b, 0), b, 0) == a
	}
	if err := quick.Check(xorTwice, nil); err != nil {
		t.Error(err)
	}
	cmpTrichotomy := func(a, b uint64) bool {
		lt := Eval(CmpLT, a, b, 0)
		gt := Eval(CmpLT, b, a, 0)
		eq := Eval(CmpEQ, a, b, 0)
		return lt+gt+eq == 1
	}
	if err := quick.Check(cmpTrichotomy, nil); err != nil {
		t.Error(err)
	}
}

func TestInstrString(t *testing.T) {
	cases := []struct {
		in   Instr
		want string
	}{
		{Instr{Op: Nop}, "nop"},
		{Instr{Op: MovI, Rd: 1, Imm: 42}, "movi r1, 42"},
		{Instr{Op: Add, Rd: 1, Ra: 2, Rb: 3}, "add r1, r2, r3"},
		{Instr{Op: Ld, Rd: 4, Ra: 5, Imm: 8}, "ld r4, [r5+8]"},
		{Instr{Op: St, Ra: 5, Imm: 8, Rb: 4}, "st [r5+8], r4"},
		{Instr{Op: Produce, Q: 3, Ra: 7}, "produce q3, r7"},
		{Instr{Op: Consume, Rd: 7, Q: 3}, "consume r7, q3"},
		{Instr{Op: Beqz, Ra: 1, Imm: 10}, "beqz r1, 10"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestProgramValidate(t *testing.T) {
	good := &Program{Name: "good", Instrs: []Instr{
		{Op: MovI, Rd: 1, Imm: 1},
		{Op: Beqz, Ra: 1, Imm: 0},
		{Op: Produce, Q: 3, Ra: 1},
		{Op: Halt},
	}}
	if err := good.Validate(64); err != nil {
		t.Errorf("valid program rejected: %v", err)
	}
	badBranch := &Program{Name: "bad", Instrs: []Instr{{Op: B, Imm: 5}}}
	if err := badBranch.Validate(64); err == nil {
		t.Error("out-of-range branch accepted")
	}
	badQueue := &Program{Name: "bad", Instrs: []Instr{{Op: Produce, Q: 99}}}
	if err := badQueue.Validate(64); err == nil {
		t.Error("out-of-range queue accepted")
	}
	negQueue := &Program{Name: "bad", Instrs: []Instr{{Op: Consume, Q: -1}}}
	if err := negQueue.Validate(64); err == nil {
		t.Error("negative queue accepted")
	}
}

func TestProgramString(t *testing.T) {
	p := &Program{Name: "demo", Instrs: []Instr{{Op: Halt}}}
	s := p.String()
	if !strings.Contains(s, "demo") || !strings.Contains(s, "halt") {
		t.Errorf("listing missing content: %q", s)
	}
}
