package interp

import (
	"testing"

	"hfstream/internal/asm"
	"hfstream/internal/mem"
)

func TestSingleThreadArithmetic(t *testing.T) {
	p := asm.MustParse("t", `
		movi r1, 7
		movi r2, 6
		mul  r3, r1, r2
		movi r4, 0x100
		st   [r4+0], r3
		halt
	`)
	img := mem.New()
	m := New(img, p)
	if err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	if got := img.Read8(0x100); got != 42 {
		t.Fatalf("result %d", got)
	}
	if m.Reg(0, 3) != 42 {
		t.Fatal("register state wrong")
	}
}

func TestTwoThreadQueue(t *testing.T) {
	prod := asm.MustParse("p", `
		movi r1, 5
	loop:
		produce q3, r1
		addi r1, r1, -1
		bnez r1, loop
		halt
	`)
	cons := asm.MustParse("c", `
		movi r2, 5
		movi r3, 0
	loop:
		consume r4, q3
		add  r3, r3, r4
		addi r2, r2, -1
		bnez r2, loop
		movi r5, 0x200
		st   [r5+0], r3
		halt
	`)
	img := mem.New()
	m := New(img, prod, cons)
	if err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	if got := img.Read8(0x200); got != 15 {
		t.Fatalf("sum = %d", got)
	}
	if m.QueueLen(3) != 0 {
		t.Error("queue not drained")
	}
}

func TestDeadlockDetection(t *testing.T) {
	// Consumer waits on a queue nobody fills.
	cons := asm.MustParse("c", `
		consume r1, q0
		halt
	`)
	m := New(mem.New(), cons)
	if err := m.Run(0); err == nil {
		t.Fatal("deadlock not detected")
	}
}

func TestStepBudget(t *testing.T) {
	spin := asm.MustParse("s", `
	loop:
		b loop
	`)
	m := New(mem.New(), spin)
	if err := m.Run(1000); err == nil {
		t.Fatal("infinite loop not bounded")
	}
	if m.Steps < 1000 {
		t.Errorf("steps = %d", m.Steps)
	}
}

func TestBlockedConsumeMakesNoProgressAlone(t *testing.T) {
	// One thread blocked on consume, the other producing: interleaving
	// must resolve it.
	prod := asm.MustParse("p", `
		movi r1, 9
		produce q1, r1
		halt
	`)
	cons := asm.MustParse("c", `
		consume r2, q1
		halt
	`)
	m := New(mem.New(), cons, prod) // consumer first: blocks initially
	if err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	if m.Reg(0, 2) != 9 {
		t.Errorf("consumed %d", m.Reg(0, 2))
	}
}

func TestFenceIsNoOpFunctionally(t *testing.T) {
	p := asm.MustParse("f", `
		movi r1, 1
		fence
		movi r2, 2
		halt
	`)
	m := New(mem.New(), p)
	if err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	if m.Reg(0, 1) != 1 || m.Reg(0, 2) != 2 {
		t.Error("fence disturbed execution")
	}
}
