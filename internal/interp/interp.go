// Package interp is a functional (timing-free) executor for one or more
// communicating thread programs. It serves as the correctness oracle: the
// cycle-level simulator must leave memory in exactly the state the
// interpreter computes, for every design point.
//
// Threads are interleaved one instruction at a time over unbounded
// queues, which suffices for the acyclic (pipelined) communication
// patterns DSWP produces and also lets software-queue spin loops resolve.
package interp

import (
	"fmt"

	"hfstream/internal/isa"
	"hfstream/internal/mem"
)

// Machine executes programs against a shared memory image.
type Machine struct {
	image  *mem.Memory
	progs  []*isa.Program
	regs   [][]uint64
	pcs    []int
	halted []bool
	queues map[int][]uint64

	// Steps counts executed instructions (across threads).
	Steps uint64
}

// New builds a machine over the given image.
func New(image *mem.Memory, progs ...*isa.Program) *Machine {
	m := &Machine{
		image:  image,
		progs:  progs,
		queues: make(map[int][]uint64),
	}
	for range progs {
		m.regs = append(m.regs, make([]uint64, isa.NumRegs))
		m.pcs = append(m.pcs, 0)
		m.halted = append(m.halted, false)
	}
	return m
}

// SetReg initializes a register of thread t.
func (m *Machine) SetReg(t int, r isa.Reg, v uint64) { m.regs[t][r] = v }

// Reg reads a register of thread t.
func (m *Machine) Reg(t int, r isa.Reg) uint64 { return m.regs[t][r] }

// QueueLen returns the residual occupancy of queue q (0 after a clean
// run of a well-formed pipeline that drains its queues... producers may
// legitimately leave sentinel-free queues non-empty).
func (m *Machine) QueueLen(q int) int { return len(m.queues[q]) }

// Run interleaves the threads until all halt. maxSteps bounds total
// executed instructions (0 means 100M).
func (m *Machine) Run(maxSteps uint64) error {
	if maxSteps == 0 {
		maxSteps = 100_000_000
	}
	for {
		allHalted := true
		progressed := false
		for t := range m.progs {
			if m.halted[t] {
				continue
			}
			allHalted = false
			if m.step(t) {
				progressed = true
			}
			if m.Steps > maxSteps {
				return fmt.Errorf("interp: step budget exhausted (pcs=%v)", m.pcs)
			}
		}
		if allHalted {
			return nil
		}
		if !progressed {
			return fmt.Errorf("interp: deadlock (pcs=%v, halted=%v)", m.pcs, m.halted)
		}
	}
}

// step executes one instruction of thread t; it returns false if the
// thread is blocked (consume on an empty queue).
func (m *Machine) step(t int) bool {
	prog := m.progs[t]
	in := prog.Instrs[m.pcs[t]]
	regs := m.regs[t]
	m.Steps++

	switch in.Op {
	case isa.Halt:
		m.halted[t] = true
	case isa.Nop, isa.Fence:
		m.pcs[t]++
	case isa.B:
		m.pcs[t] = int(in.Imm)
	case isa.Beqz:
		if regs[in.Ra] == 0 {
			m.pcs[t] = int(in.Imm)
		} else {
			m.pcs[t]++
		}
	case isa.Bnez:
		if regs[in.Ra] != 0 {
			m.pcs[t] = int(in.Imm)
		} else {
			m.pcs[t]++
		}
	case isa.Ld:
		regs[in.Rd] = m.image.Read8(regs[in.Ra] + uint64(in.Imm))
		m.pcs[t]++
	case isa.St:
		m.image.Write8(regs[in.Ra]+uint64(in.Imm), regs[in.Rb])
		m.pcs[t]++
	case isa.Produce:
		m.queues[in.Q] = append(m.queues[in.Q], regs[in.Ra])
		m.pcs[t]++
	case isa.Consume:
		q := m.queues[in.Q]
		if len(q) == 0 {
			m.Steps-- // blocked, not executed
			return false
		}
		regs[in.Rd] = q[0]
		m.queues[in.Q] = q[1:]
		m.pcs[t]++
	default:
		regs[in.Rd] = isa.Eval(in.Op, regs[in.Ra], regs[in.Rb], in.Imm)
		m.pcs[t]++
	}
	return true
}
