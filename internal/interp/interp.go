// Package interp is a functional (timing-free) executor for one or more
// communicating thread programs. It serves as the correctness oracle: the
// cycle-level simulator must leave memory in exactly the state the
// interpreter computes, for every design point.
//
// Threads are interleaved one instruction at a time over unbounded
// queues, which suffices for the acyclic (pipelined) communication
// patterns DSWP produces and also lets software-queue spin loops resolve.
//
// Queues follow the repo-wide ticket discipline: each queue's producer
// and consumer thread sets are derived statically (by scanning the
// programs for Produce/Consume on that queue, threads in ascending
// order), and the item with global ticket k is produced by producer
// k mod P as its (k div P)-th produce and consumed by consumer k mod C
// as its (k div C)-th consume. With one producer and one consumer this
// is exactly a FIFO — the classic dual-core behaviour — and with more
// endpoints it is the MPMC semantics the lane-based hardware lowerings
// implement, so the interpreter remains the oracle for every topology.
package interp

import (
	"fmt"
	"sort"

	"hfstream/internal/isa"
	"hfstream/internal/mem"
)

// qstate is one logical queue's storage and endpoint bookkeeping.
type qstate struct {
	producers []int // thread IDs, ascending (static scan)
	consumers []int
	slots     map[uint64]uint64 // outstanding items keyed by global ticket
	prodTick  map[int]uint64    // per-thread completed produce count
	consTick  map[int]uint64    // per-thread completed consume count
}

// Machine executes programs against a shared memory image.
type Machine struct {
	image  *mem.Memory
	progs  []*isa.Program
	regs   [][]uint64
	pcs    []int
	halted []bool
	queues map[int]*qstate

	// Steps counts executed instructions (across threads).
	Steps uint64
}

// New builds a machine over the given image. Queue endpoint roles are
// derived here by a static scan of the programs.
func New(image *mem.Memory, progs ...*isa.Program) *Machine {
	m := &Machine{
		image:  image,
		progs:  progs,
		queues: make(map[int]*qstate),
	}
	for range progs {
		m.regs = append(m.regs, make([]uint64, isa.NumRegs))
		m.pcs = append(m.pcs, 0)
		m.halted = append(m.halted, false)
	}
	for t, p := range progs {
		for _, in := range p.Instrs {
			switch in.Op {
			case isa.Produce:
				m.queue(in.Q).addProducer(t)
			case isa.Consume:
				m.queue(in.Q).addConsumer(t)
			}
		}
	}
	return m
}

func (m *Machine) queue(q int) *qstate {
	qs := m.queues[q]
	if qs == nil {
		qs = &qstate{
			slots:    make(map[uint64]uint64),
			prodTick: make(map[int]uint64),
			consTick: make(map[int]uint64),
		}
		m.queues[q] = qs
	}
	return qs
}

func (qs *qstate) addProducer(t int) { qs.producers = insertSorted(qs.producers, t) }
func (qs *qstate) addConsumer(t int) { qs.consumers = insertSorted(qs.consumers, t) }

func insertSorted(s []int, v int) []int {
	i := sort.SearchInts(s, v)
	if i < len(s) && s[i] == v {
		return s
	}
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

// Producers returns the statically derived producer thread set of queue q
// (ascending order; nil if no thread produces into it).
func (m *Machine) Producers(q int) []int {
	if qs := m.queues[q]; qs != nil {
		return qs.producers
	}
	return nil
}

// Consumers returns the statically derived consumer thread set of queue q.
func (m *Machine) Consumers(q int) []int {
	if qs := m.queues[q]; qs != nil {
		return qs.consumers
	}
	return nil
}

// SetReg initializes a register of thread t.
func (m *Machine) SetReg(t int, r isa.Reg, v uint64) { m.regs[t][r] = v }

// Reg reads a register of thread t.
func (m *Machine) Reg(t int, r isa.Reg) uint64 { return m.regs[t][r] }

// QueueLen returns the residual occupancy of queue q (0 after a clean
// run of a well-formed pipeline that drains its queues... producers may
// legitimately leave sentinel-free queues non-empty).
func (m *Machine) QueueLen(q int) int {
	if qs := m.queues[q]; qs != nil {
		return len(qs.slots)
	}
	return 0
}

// Run interleaves the threads until all halt. maxSteps bounds total
// executed instructions (0 means 100M).
func (m *Machine) Run(maxSteps uint64) error {
	if maxSteps == 0 {
		maxSteps = 100_000_000
	}
	for {
		allHalted := true
		progressed := false
		for t := range m.progs {
			if m.halted[t] {
				continue
			}
			allHalted = false
			if m.step(t) {
				progressed = true
			}
			if m.Steps > maxSteps {
				return fmt.Errorf("interp: step budget exhausted (pcs=%v)", m.pcs)
			}
		}
		if allHalted {
			return nil
		}
		if !progressed {
			return fmt.Errorf("interp: deadlock (pcs=%v, halted=%v)", m.pcs, m.halted)
		}
	}
}

// step executes one instruction of thread t; it returns false if the
// thread is blocked (consume on a ticket that has not been produced).
func (m *Machine) step(t int) bool {
	prog := m.progs[t]
	in := prog.Instrs[m.pcs[t]]
	regs := m.regs[t]
	m.Steps++

	switch in.Op {
	case isa.Halt:
		m.halted[t] = true
	case isa.Nop, isa.Fence:
		m.pcs[t]++
	case isa.B:
		m.pcs[t] = int(in.Imm)
	case isa.Beqz:
		if regs[in.Ra] == 0 {
			m.pcs[t] = int(in.Imm)
		} else {
			m.pcs[t]++
		}
	case isa.Bnez:
		if regs[in.Ra] != 0 {
			m.pcs[t] = int(in.Imm)
		} else {
			m.pcs[t]++
		}
	case isa.Ld:
		regs[in.Rd] = m.image.Read8(regs[in.Ra] + uint64(in.Imm))
		m.pcs[t]++
	case isa.St:
		m.image.Write8(regs[in.Ra]+uint64(in.Imm), regs[in.Rb])
		m.pcs[t]++
	case isa.Produce:
		qs := m.queues[in.Q]
		pIdx := indexOf(qs.producers, t)
		ticket := qs.prodTick[t]*uint64(len(qs.producers)) + uint64(pIdx)
		qs.slots[ticket] = regs[in.Ra]
		qs.prodTick[t]++
		m.pcs[t]++
	case isa.Consume:
		qs := m.queues[in.Q]
		cIdx := indexOf(qs.consumers, t)
		ticket := qs.consTick[t]*uint64(len(qs.consumers)) + uint64(cIdx)
		v, ok := qs.slots[ticket]
		if !ok {
			m.Steps-- // blocked, not executed
			return false
		}
		delete(qs.slots, ticket)
		regs[in.Rd] = v
		qs.consTick[t]++
		m.pcs[t]++
	default:
		regs[in.Rd] = isa.Eval(in.Op, regs[in.Ra], regs[in.Rb], in.Imm)
		m.pcs[t]++
	}
	return true
}

func indexOf(s []int, v int) int {
	i := sort.SearchInts(s, v)
	if i < len(s) && s[i] == v {
		return i
	}
	return -1
}
