package interp

import (
	"testing"

	"hfstream/internal/asm"
	"hfstream/internal/isa"
	"hfstream/internal/mem"
)

// mpmcProducer produces count values first, first+stride, ... into q0.
// With first = its producer index and stride = P, a producer's values are
// exactly its own global tickets.
func mpmcProducer(name string, first, stride, count int) *isa.Program {
	b := asm.NewBuilder(name)
	b.MovI(1, int64(first))
	b.MovI(2, int64(stride))
	b.MovI(3, int64(count))
	b.Label("loop")
	b.Produce(0, 1)
	b.Add(1, 1, 2)
	b.AddI(3, 3, -1)
	b.Bnez(3, "loop")
	b.Halt()
	return b.MustProgram()
}

// mpmcSummer consumes count items from q0 and stores an order-sensitive
// checksum (running prefix sum accumulated into a total) at addr.
func mpmcSummer(name string, count int, addr int64) *isa.Program {
	c := asm.NewBuilder(name)
	c.MovI(1, 0)
	c.MovI(2, 0)
	c.MovI(5, int64(count))
	c.MovI(6, addr)
	c.Label("loop")
	c.Consume(3, 0)
	c.Add(1, 1, 3)
	c.Add(2, 2, 1)
	c.AddI(5, 5, -1)
	c.Bnez(5, "loop")
	c.St(6, 0, 2)
	c.Halt()
	return c.MustProgram()
}

// Two producers and two consumers share one queue: the interpreter must
// deliver ticket k to consumer k mod C as its (k div C)-th consume,
// independent of thread stepping, so each consumer's order-sensitive
// checksum is fully determined.
func TestInterpMPMCTicketDiscipline(t *testing.T) {
	const perProducer, perConsumer = 6, 6
	p0 := mpmcProducer("p0", 0, 2, perProducer)
	p1 := mpmcProducer("p1", 1, 2, perProducer)
	c0 := mpmcSummer("c0", perConsumer, 0x300)
	c1 := mpmcSummer("c1", perConsumer, 0x308)

	img := mem.New()
	m := New(img, p0, p1, c0, c1)
	if got := m.Producers(0); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("Producers(0) = %v", got)
	}
	if got := m.Consumers(0); len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("Consumers(0) = %v", got)
	}
	if err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	// Consumer j receives tickets j, j+2, ..., j+10 in that order.
	for j := 0; j < 2; j++ {
		var want, acc uint64
		for i := 0; i < perConsumer; i++ {
			acc += uint64(i*2 + j)
			want += acc
		}
		if got := img.Read8(uint64(0x300 + 8*j)); got != want {
			t.Errorf("consumer %d checksum = %d, want %d", j, got, want)
		}
	}
	if m.QueueLen(0) != 0 {
		t.Errorf("queue not drained: %d items left", m.QueueLen(0))
	}
}

// A consumer must not receive another consumer's ticket even when the
// queue is non-empty: with one item produced (ticket 0, owned by the
// first consumer) the second consumer blocks forever.
func TestInterpMPMCConsumerBlocksOnForeignTicket(t *testing.T) {
	prod := asm.MustParse("p", `
		movi r1, 42
		produce q0, r1
		halt
	`)
	c0 := asm.MustParse("c0", `
		consume r1, q0
		halt
	`)
	c1 := asm.MustParse("c1", `
		consume r1, q0
		halt
	`)
	m := New(mem.New(), prod, c0, c1)
	if err := m.Run(0); err == nil {
		t.Fatal("second consumer stole the first consumer's ticket")
	}
	if m.Reg(1, 1) != 42 {
		t.Errorf("first consumer got %d, want 42", m.Reg(1, 1))
	}
}
