package sim_test

import (
	"errors"
	"testing"

	"hfstream/fault"
	"hfstream/internal/asm"
	"hfstream/internal/design"
	"hfstream/internal/mem"
	"hfstream/internal/sim"
)

// The fast-forward path jumps over long idle spans in one step. These
// tests pin down that cancellation, the watchdog, and unquiesced-exit
// detection behave identically whether a deadlock is crossed cycle by
// cycle or in a single jump.

// stuckConsumer is a consumer parked forever on an empty queue, paired
// with an idle peer — the canonical deadlock that exercises the longest
// possible idle span.
func stuckConsumer() []sim.Thread {
	b := asm.NewBuilder("stuck")
	b.Consume(1, 0)
	b.Halt()
	idle := asm.NewBuilder("idle")
	idle.Halt()
	return []sim.Thread{{Prog: idle.MustProgram()}, {Prog: b.MustProgram()}}
}

func ffModes(t *testing.T, f func(t *testing.T, disableFF bool)) {
	t.Helper()
	t.Run("ff-on", func(t *testing.T) { f(t, false) })
	t.Run("ff-off", func(t *testing.T) { f(t, true) })
}

// TestCancelPreClosedInsideIdleSpan: a Cancel channel closed before the
// run starts must abort promptly even when the whole run is one
// fast-forwardable idle span.
func TestCancelPreClosedInsideIdleSpan(t *testing.T) {
	ffModes(t, func(t *testing.T, disableFF bool) {
		cancel := make(chan struct{})
		close(cancel)
		cfg := design.HeavyWTConfig().SimConfig()
		cfg.WatchdogIdle = 400000 // far beyond the cancel-poll bound
		cfg.Cancel = cancel
		cfg.DisableFastForward = disableFF
		_, err := sim.Run(cfg, mem.New(), stuckConsumer())
		var ce *sim.CanceledError
		if !errors.As(err, &ce) {
			t.Fatalf("error = %v (%T), want CanceledError", err, err)
		}
		// FF-off polls every cancelCheck interval, so the abort lands
		// within a few thousand cycles. FF-on crosses the whole idle span
		// in one jump (no wall-clock elapses mid-jump) and polls right
		// after landing, so the abort cycle is bounded by the jump target
		// — the watchdog window — instead.
		limit := uint64(4096)
		if !disableFF {
			limit = cfg.WatchdogIdle + 2
		}
		if ce.Cycle > limit {
			t.Errorf("canceled only at cycle %d, want <= %d", ce.Cycle, limit)
		}
	})
}

// TestCancelMidRunInsideIdleSpan: closing Cancel from the Progress
// callback mid-deadlock must abort the run even though every remaining
// cycle is idle and fast-forwardable.
func TestCancelMidRunInsideIdleSpan(t *testing.T) {
	ffModes(t, func(t *testing.T, disableFF bool) {
		cancel := make(chan struct{})
		closed := false
		cfg := design.HeavyWTConfig().SimConfig()
		cfg.WatchdogIdle = 400000
		cfg.Cancel = cancel
		cfg.DisableFastForward = disableFF
		cfg.ProgressEvery = 512
		cfg.Progress = func(cycle, issued uint64) {
			if cycle >= 2048 && !closed {
				closed = true
				close(cancel)
			}
		}
		_, err := sim.Run(cfg, mem.New(), stuckConsumer())
		var ce *sim.CanceledError
		if !errors.As(err, &ce) {
			t.Fatalf("error = %v (%T), want CanceledError", err, err)
		}
		if ce.Cycle < 2048 || ce.Cycle > 8192 {
			t.Errorf("canceled at cycle %d, want shortly after the close at ~2048", ce.Cycle)
		}
	})
}

// TestWatchdogCycleExactUnderFastForward: the watchdog must fire on
// exactly the same cycle with and without fast-forwarding, and moving the
// window by one cycle must move the firing cycle by exactly one.
func TestWatchdogCycleExactUnderFastForward(t *testing.T) {
	fire := func(watchdog uint64, disableFF bool) uint64 {
		cfg := design.HeavyWTConfig().SimConfig()
		cfg.WatchdogIdle = watchdog
		cfg.DisableFastForward = disableFF
		_, err := sim.Run(cfg, mem.New(), stuckConsumer())
		var dl *sim.DeadlockError
		if !errors.As(err, &dl) {
			t.Fatalf("error = %v (%T), want DeadlockError", err, err)
		}
		return dl.Cycle
	}
	const w = 3000
	on, off := fire(w, false), fire(w, true)
	if on != off {
		t.Errorf("watchdog fired at cycle %d with FF, %d without", on, off)
	}
	on1 := fire(w+1, false)
	if on1 != on+1 {
		t.Errorf("window %d fires at %d, window %d at %d; want exactly +1", w, on, w+1, on1)
	}
}

// TestUnquiescedExitDiagnosisUnderFastForward: a sticky credit drop
// leaves the sync array undrained after both cores halt; the run must
// finish with UnquiescedExit and a populated Diagnosis in both FF modes.
func TestUnquiescedExitDiagnosisUnderFastForward(t *testing.T) {
	prog := func() []sim.Thread {
		p := asm.NewBuilder("p4")
		p.MovI(1, 7)
		for i := 0; i < 4; i++ {
			p.Produce(0, 1)
		}
		p.Halt()
		c := asm.NewBuilder("c4")
		for i := 0; i < 4; i++ {
			c.Consume(2, 0)
		}
		c.Halt()
		return []sim.Thread{{Prog: p.MustProgram()}, {Prog: c.MustProgram()}}
	}
	ffModes(t, func(t *testing.T, disableFF bool) {
		in := fault.Plan{Seed: 1, Events: []fault.Event{{Kind: fault.SACreditDrop, Nth: 1}}}.Injector()
		cfg := design.HeavyWTConfig().SimConfig()
		cfg.WatchdogIdle = 3000
		cfg.DisableFastForward = disableFF
		cfg.Faults = in
		res, err := sim.Run(cfg, mem.New(), prog())
		if err != nil {
			t.Fatalf("run failed: %v", err)
		}
		if !res.UnquiescedExit {
			t.Fatal("credit drop did not surface as an unquiesced exit")
		}
		if res.Diagnosis == nil {
			t.Fatal("unquiesced exit carries no Diagnosis")
		}
		if res.Diagnosis.SA == nil {
			t.Error("Diagnosis has no sync-array state for a HEAVYWT run")
		}
		if !in.LossFired() {
			t.Error("loss shot not recorded")
		}
		if len(res.FaultShots) == 0 {
			t.Error("Result.FaultShots empty despite a fired loss plan")
		}
	})
}

// TestFastForwardFaultEquivalence: a firing delay plan must produce the
// same cycle count and result with and without fast-forwarding — delay
// faults are occurrence-triggered, never wall-cycle-triggered.
func TestFastForwardFaultEquivalence(t *testing.T) {
	run := func(disableFF bool) (uint64, uint64) {
		plan := fault.Plan{Seed: 1, Events: []fault.Event{
			{Kind: fault.BusDelay, Nth: 2, Delay: 80},
			{Kind: fault.SAAckDelay, Nth: 1, Delay: 40},
		}}
		image := mem.New()
		cfg := design.HeavyWTConfig().SimConfig()
		cfg.DisableFastForward = disableFF
		cfg.Faults = plan.Injector()
		prod, cons := producerProg(60), consumerProg()
		res, err := sim.Run(cfg, image, []sim.Thread{{Prog: prod}, {Prog: cons}})
		if err != nil {
			t.Fatal(err)
		}
		return res.Cycles, image.Read8(resultAddr)
	}
	onCycles, onSum := run(false)
	offCycles, offSum := run(true)
	if onCycles != offCycles || onSum != offSum {
		t.Errorf("FF-on (cycles=%d sum=%d) != FF-off (cycles=%d sum=%d)",
			onCycles, onSum, offCycles, offSum)
	}
	if want := uint64(60 * 61 / 2); onSum != want {
		t.Errorf("sum = %d, want %d", onSum, want)
	}
}

// TestWatchdogWindowSweepExact sweeps watchdog windows of different
// magnitudes (including ones far off any power-of-two or sampling
// boundary) and requires the firing cycle to be identical with and
// without fast-forwarding for every window — no ±1 slop.
func TestWatchdogWindowSweepExact(t *testing.T) {
	fire := func(watchdog uint64, disableFF bool) uint64 {
		cfg := design.HeavyWTConfig().SimConfig()
		cfg.WatchdogIdle = watchdog
		cfg.DisableFastForward = disableFF
		_, err := sim.Run(cfg, mem.New(), stuckConsumer())
		var dl *sim.DeadlockError
		if !errors.As(err, &dl) {
			t.Fatalf("window %d: error = %v (%T), want DeadlockError", watchdog, err, err)
		}
		return dl.Cycle
	}
	for _, w := range []uint64{97, 501, 1024, 2500, 4097} {
		on, off := fire(w, false), fire(w, true)
		if on != off {
			t.Errorf("window %d: watchdog fired at cycle %d with FF, %d without", w, on, off)
		}
	}
}

// TestUnquiescedExitCycleExact: the cores-done-but-fabric-stuck exit path
// also rides the watchdog window; its Result.Cycles and diagnosis cycle
// must be identical in both FF modes.
func TestUnquiescedExitCycleExact(t *testing.T) {
	run := func(disableFF bool) (uint64, uint64) {
		p := asm.NewBuilder("p1")
		p.MovI(1, 7)
		for i := 0; i < 4; i++ {
			p.Produce(0, 1)
		}
		p.Halt()
		c := asm.NewBuilder("c1")
		for i := 0; i < 4; i++ {
			c.Consume(2, 0)
		}
		c.Halt()
		in := fault.Plan{Seed: 1, Events: []fault.Event{{Kind: fault.SACreditDrop, Nth: 1}}}.Injector()
		cfg := design.HeavyWTConfig().SimConfig()
		cfg.WatchdogIdle = 3000
		cfg.DisableFastForward = disableFF
		cfg.Faults = in
		res, err := sim.Run(cfg, mem.New(), []sim.Thread{{Prog: p.MustProgram()}, {Prog: c.MustProgram()}})
		if err != nil {
			t.Fatalf("run failed: %v", err)
		}
		if !res.UnquiescedExit || res.Diagnosis == nil {
			t.Fatal("expected an unquiesced exit with a diagnosis")
		}
		return res.Cycles, res.Diagnosis.Cycle
	}
	onCycles, onDiag := run(false)
	offCycles, offDiag := run(true)
	if onCycles != offCycles {
		t.Errorf("unquiesced exit at cycle %d with FF, %d without", onCycles, offCycles)
	}
	if onDiag != offDiag {
		t.Errorf("diagnosis cycle %d with FF, %d without", onDiag, offDiag)
	}
}
