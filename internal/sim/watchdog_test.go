package sim_test

import (
	"errors"
	"strings"
	"testing"

	"hfstream/internal/asm"
	"hfstream/internal/design"
	"hfstream/internal/isa"
	"hfstream/internal/mem"
	"hfstream/internal/sim"
)

// TestWatchdogDetectsQueueDeadlock: a consumer waiting on a queue that is
// never filled must be reported as a deadlock, not hang the simulator.
func TestWatchdogDetectsQueueDeadlock(t *testing.T) {
	b := asm.NewBuilder("stuck")
	b.Consume(1, 0)
	b.Halt()
	other := asm.NewBuilder("idle")
	other.Halt()

	cfg := design.HeavyWTConfig().SimConfig()
	cfg.WatchdogIdle = 2000
	_, err := sim.Run(cfg, mem.New(), []sim.Thread{
		{Prog: other.MustProgram()}, {Prog: b.MustProgram()},
	})
	if err == nil {
		t.Fatal("deadlock not detected")
	}
	var dl *sim.DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("error type %T, want DeadlockError", err)
	}
	if !strings.Contains(dl.Error(), "core 1") {
		t.Errorf("report missing core state: %v", dl)
	}
}

// TestWatchdogDetectsFullQueueStall: a producer with no consumer blocks
// once the queue and interconnect fill.
func TestWatchdogDetectsFullQueueStall(t *testing.T) {
	b := asm.NewBuilder("flood")
	b.MovI(1, 1)
	b.Label("loop")
	b.Produce(0, 1)
	b.B("loop")
	other := asm.NewBuilder("idle")
	other.Halt()

	cfg := design.HeavyWTConfig().SimConfig()
	cfg.WatchdogIdle = 2000
	_, err := sim.Run(cfg, mem.New(), []sim.Thread{
		{Prog: b.MustProgram()}, {Prog: other.MustProgram()},
	})
	if err == nil {
		t.Fatal("full-queue livelock not detected")
	}
}

// TestMaxCyclesBudget: the cycle budget bounds even spinning programs
// that keep issuing instructions.
func TestMaxCyclesBudget(t *testing.T) {
	b := asm.NewBuilder("spin")
	b.Label("loop")
	b.AddI(1, 1, 1)
	b.B("loop")

	cfg := design.ExistingConfig().SimConfig()
	cfg.MaxCycles = 5000
	_, err := sim.Run(cfg, mem.New(), []sim.Thread{{Prog: b.MustProgram()}})
	if err == nil {
		t.Fatal("cycle budget not enforced")
	}
}

// TestCancelAbortsRun: a closed Cancel channel stops even a spinning
// program promptly with a CanceledError.
func TestCancelAbortsRun(t *testing.T) {
	b := asm.NewBuilder("spin")
	b.Label("loop")
	b.AddI(1, 1, 1)
	b.B("loop")

	cancel := make(chan struct{})
	close(cancel)
	cfg := design.ExistingConfig().SimConfig()
	cfg.Cancel = cancel
	_, err := sim.Run(cfg, mem.New(), []sim.Thread{{Prog: b.MustProgram()}})
	var ce *sim.CanceledError
	if !errors.As(err, &ce) {
		t.Fatalf("error = %v (%T), want CanceledError", err, err)
	}
	// The poll interval bounds how far a canceled run may get.
	if ce.Cycle > 2048 {
		t.Errorf("canceled only at cycle %d, want prompt abort", ce.Cycle)
	}
}

// TestCancelUnusedDoesNotFire: an armed but never-closed Cancel channel
// must not perturb a normal run.
func TestCancelUnusedDoesNotFire(t *testing.T) {
	b := asm.NewBuilder("count")
	b.MovI(1, 2000)
	b.Label("loop")
	b.AddI(1, 1, -1)
	b.Bnez(1, "loop")
	b.Halt()

	cfg := design.ExistingConfig().SimConfig()
	cfg.Cancel = make(chan struct{})
	res, err := sim.Run(cfg, mem.New(), []sim.Thread{{Prog: b.MustProgram()}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles == 0 || res.UnquiescedExit {
		t.Errorf("unexpected result: cycles=%d unquiesced=%v", res.Cycles, res.UnquiescedExit)
	}
}

// TestValidatesQueueNumbers: bad queue indices are rejected before the
// simulation starts.
func TestValidatesQueueNumbers(t *testing.T) {
	b := asm.NewBuilder("bad")
	b.Produce(9999, 1)
	b.Halt()
	cfg := design.HeavyWTConfig().SimConfig()
	_, err := sim.Run(cfg, mem.New(), []sim.Thread{{Prog: b.MustProgram()}, {Prog: b.MustProgram()}})
	if err == nil {
		t.Fatal("invalid queue number accepted")
	}
}

// TestNoThreads rejects an empty thread list.
func TestNoThreads(t *testing.T) {
	if _, err := sim.Run(design.ExistingConfig().SimConfig(), mem.New(), nil); err == nil {
		t.Fatal("empty thread list accepted")
	}
}

// TestBreakdownsSumToCoreCycles: the attribution invariant holds on a
// real run.
func TestBreakdownsSumToCoreCycles(t *testing.T) {
	prod := asm.NewBuilder("p")
	prod.MovI(1, 50)
	prod.Label("loop")
	prod.Produce(0, 1)
	prod.AddI(1, 1, -1)
	prod.Bnez(1, "loop")
	prod.Halt()
	cons := asm.NewBuilder("c")
	cons.MovI(1, 50)
	cons.Label("loop")
	cons.Consume(2, 0)
	cons.AddI(1, 1, -1)
	cons.Bnez(1, "loop")
	cons.Halt()

	res, err := sim.Run(design.HeavyWTConfig().SimConfig(), mem.New(), []sim.Thread{
		{Prog: prod.MustProgram()}, {Prog: cons.MustProgram()},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, bd := range res.Breakdowns {
		if bd.Total() == 0 {
			t.Errorf("core %d: empty breakdown", i)
		}
		if bd.Total() > res.Cycles {
			t.Errorf("core %d: breakdown %d exceeds total %d", i, bd.Total(), res.Cycles)
		}
	}
}

// TestInitialRegisters: thread register initialization is applied.
func TestInitialRegisters(t *testing.T) {
	b := asm.NewBuilder("r")
	b.MovI(2, 0x9000)
	b.St(2, 0, 1) // store r1, set via Thread.Regs
	b.Halt()
	img := mem.New()
	_, err := sim.Run(design.ExistingConfig().SimConfig(), img, []sim.Thread{
		{Prog: b.MustProgram(), Regs: map[isa.Reg]uint64{1: 777}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if img.Read8(0x9000) != 777 {
		t.Errorf("initial register lost: %d", img.Read8(0x9000))
	}
}
