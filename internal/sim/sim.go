// Package sim assembles the CMP — cores, L2 controllers, shared bus, L3,
// memory, and the selected streaming mechanism — and runs programs to
// completion under a global cycle loop with deadlock detection.
package sim

import (
	"fmt"
	"os"

	"hfstream/fault"
	"hfstream/internal/bus"
	"hfstream/internal/cache"
	"hfstream/internal/core"
	"hfstream/internal/isa"
	"hfstream/internal/mem"
	"hfstream/internal/memsys"
	"hfstream/internal/port"
	"hfstream/internal/queue"
	"hfstream/internal/stats"
	"hfstream/trace"
)

// Config selects the machine to simulate.
type Config struct {
	Mem  memsys.Params
	Core core.Params

	// UseSyncArray routes produce/consume through the HEAVYWT dedicated
	// synchronization array instead of the memory subsystem.
	UseSyncArray bool
	SA           queue.SAParams

	// Preload lists memory regions to warm into the L2s and L3 before
	// measurement begins (the paper evaluates hot loops, not cold
	// caches). The streaming queue region is always warmed into the L3.
	Preload []mem.Region

	// MaxCycles aborts the simulation after this many cycles (0 = 500M).
	MaxCycles uint64
	// WatchdogIdle aborts if no instruction issues for this many
	// consecutive cycles (0 = 100k), catching queue/coherence deadlocks.
	WatchdogIdle uint64
	// SampleInterval collects a throughput sample every N cycles
	// (0 = off); see Result.Samples, TraceReport and CSV.
	SampleInterval uint64

	// Progress, when non-nil, is called synchronously from the cycle loop
	// every ProgressEvery cycles with the current cycle and the cumulative
	// issued-instruction count across all cores. It must not retain its
	// arguments past the call. Fast-forwarding stops exactly on each
	// reporting boundary, so the cadence is identical with and without it.
	Progress func(cycle, issued uint64)
	// ProgressEvery is the Progress reporting period in cycles
	// (0 = every 1M cycles when Progress is set).
	ProgressEvery uint64

	// Cancel aborts the run when closed (typically wired to a
	// context.Done channel by the experiment runner); Run then returns a
	// *CanceledError. The channel is polled every cancelCheckMask+1
	// cycles, so cancellation latency is bounded without a per-cycle
	// select on the hot loop.
	Cancel <-chan struct{}

	// Trace, when non-nil, receives structured issue/retire/queue-op/
	// bus-grant/stall events from every core and the shared bus. The ring
	// is bounded (see trace.NewBuffer), so tracing a long run keeps the
	// most recent events; the same buffer is echoed on Result.Trace.
	Trace *trace.Buffer

	// Faults, when non-nil, is the per-run fault injector honoured at the
	// machine's injection points (bus grants, stream forwards, bulk ACKs,
	// OzQ resolutions, synchronization-array deliveries). Injectors carry
	// per-run state: build a fresh one per Run from a fault.Plan. Delay-
	// class faults are latency-only; loss-class faults sever a protocol
	// path and must surface as a typed detection (see package fault).
	Faults *fault.Injector

	// DisableFastForward turns off the idle-cycle fast-forward, forcing
	// the kernel to tick every cycle individually. Every reported number
	// is identical either way (CI proves it by regenerating the golden
	// snapshots in both modes); the knob exists for that proof and for
	// debugging. The HFSTREAM_NO_FASTFORWARD environment variable forces
	// it on process-wide. Tracing (Trace != nil) also disables
	// fast-forwarding so event timestamps keep per-cycle granularity.
	DisableFastForward bool
}

// cancelCheckMask throttles Cancel polling to every 1024th cycle.
const cancelCheckMask = 1023

// Thread is one program plus its initial register file contents.
type Thread struct {
	Prog *isa.Program
	Regs map[isa.Reg]uint64
}

// Result reports a finished simulation.
type Result struct {
	// Cycles is the total execution time: the cycle at which every core
	// had halted and drained.
	Cycles uint64
	// Breakdowns holds each core's stall/issue breakdown; buckets sum to
	// the core's active cycles.
	Breakdowns []stats.Breakdown
	// Issued and IssuedComm are per-core dynamic instruction counts
	// (total, and communication-overhead only).
	Issued     []uint64
	IssuedComm []uint64

	// CoreCycles is each core's active cycle count (it stops counting once
	// halted and drained, so it can undercut Cycles).
	CoreCycles []uint64
	// IssueCycles counts each core's cycles with at least one instruction
	// issued; CoreCycles[i] - IssueCycles[i] is core i's total stall time.
	IssueCycles []uint64
	// Stalls attributes each core's zero-issue cycles to the blocking
	// reason; Stalls[i].Total() == CoreCycles[i] - IssueCycles[i].
	Stalls []core.StallCycles
	// StallRegions attributes the same zero-issue cycles to the machine
	// region responsible (paper Figure 6's delay decomposition).
	StallRegions []stats.Breakdown
	// Produces and Consumes are per-core issued queue-operation counts.
	Produces []uint64
	Consumes []uint64

	// QueueOcc is a per-cycle histogram of the number of stream items in
	// flight end to end (produced but not yet consumed, across all queues
	// and designs).
	QueueOcc stats.Hist
	// SAOcc is the dedicated-store occupancy histogram, recorded at each
	// delivery and consume (HEAVYWT only, nil otherwise).
	SAOcc *stats.Hist

	// Memory system counters.
	BusGrants     uint64
	BusBeats      uint64
	BusArbWait    uint64
	WrFwds        []uint64
	BulkAcks      []uint64
	Probes        []uint64
	SCHits        []uint64
	L2Hits        []uint64
	L2Misses      []uint64
	RecircRetries []uint64
	L3Hits        uint64
	L3Misses      uint64
	MemAccesses   uint64

	// HEAVYWT stats (zero unless UseSyncArray).
	SAFullStalls  uint64
	SAEmptyStalls uint64

	// Samples is the per-interval time series (empty unless
	// Config.SampleInterval was set).
	Samples []Sample

	// Trace echoes Config.Trace (nil when tracing was off), so callers can
	// export the events without keeping the config around.
	Trace *trace.Buffer

	// UnquiescedExit reports that every core halted but the memory
	// fabric never quiesced within the watchdog window (in-flight junk
	// such as an unconsumed forward). The run's outputs are still
	// verified by the harness, but callers should surface the condition
	// rather than swallow it; UnquiescedDetail carries the rendered
	// Diagnosis captured at exit.
	UnquiescedExit   bool
	UnquiescedDetail string
	// Diagnosis is the structured machine snapshot behind
	// UnquiescedDetail (nil on a clean exit).
	Diagnosis *Diagnosis

	// FaultShots lists the injected faults that fired during the run
	// (empty without fault injection).
	FaultShots []string
}

// CommRatio returns core i's dynamic communication-to-application
// instruction ratio (paper Figure 8).
func (r *Result) CommRatio(i int) float64 {
	app := r.Issued[i] - r.IssuedComm[i]
	if app == 0 {
		return 0
	}
	return float64(r.IssuedComm[i]) / float64(app)
}

// DeadlockError reports a simulation that stopped making progress.
type DeadlockError struct {
	Cycle  uint64
	Detail string
	// Diag is the structured machine snapshot taken when the condition
	// was detected (Detail is its rendered form).
	Diag *Diagnosis
}

// Error implements error.
func (e *DeadlockError) Error() string {
	return fmt.Sprintf("sim: no progress by cycle %d\n%s", e.Cycle, e.Detail)
}

// ValidationError reports a configuration or program the simulator
// rejected before running a single cycle.
type ValidationError struct {
	Reason string
}

// Error implements error.
func (e *ValidationError) Error() string { return "sim: " + e.Reason }

// CanceledError reports a run aborted through Config.Cancel before
// completion (per-job timeout or whole-experiment cancellation).
type CanceledError struct {
	Cycle uint64
}

// Error implements error.
func (e *CanceledError) Error() string {
	return fmt.Sprintf("sim: canceled at cycle %d", e.Cycle)
}

// validate rejects configurations and programs that would otherwise trip
// internal invariants (nil stream backends, unroutable queues, bad bus
// parameters) with a typed *ValidationError before any cycle runs.
func validate(cfg *Config, threads []Thread) error {
	if len(threads) == 0 {
		return &ValidationError{Reason: "no threads"}
	}
	usedQs := make(map[int]bool)
	for i, t := range threads {
		if t.Prog == nil {
			return &ValidationError{Reason: fmt.Sprintf("thread %d: nil program", i)}
		}
		if err := t.Prog.Validate(cfg.Mem.Layout.NumQueues); err != nil {
			return &ValidationError{Reason: err.Error()}
		}
		for _, in := range t.Prog.Instrs {
			if in.Op == isa.Produce || in.Op == isa.Consume {
				usedQs[in.Q] = true
			}
		}
	}
	if len(usedQs) > 0 && !cfg.UseSyncArray && !cfg.Mem.HWQueues {
		return &ValidationError{Reason: "program uses produce/consume but the design has neither " +
			"hardware queues nor a synchronization array (lower to software queues first)"}
	}
	if cfg.UseSyncArray {
		for q := range usedQs {
			if q >= cfg.SA.NumQueues {
				return &ValidationError{Reason: fmt.Sprintf(
					"queue %d out of range: synchronization array has %d queues", q, cfg.SA.NumQueues)}
			}
		}
		for q, r := range cfg.SA.MPMC {
			for _, c := range append(append([]int{}, r.Producers...), r.Consumers...) {
				if c < 0 || c >= len(threads) {
					return &ValidationError{Reason: fmt.Sprintf(
						"queue %d MPMC route references core %d outside [0,%d)", q, c, len(threads))}
				}
			}
		}
	} else if cfg.Mem.HWQueues && len(threads) != 2 {
		// Without the dual-core implicit-peer default every used queue
		// needs an explicit, in-range route.
		for q := range usedQs {
			if q >= len(cfg.Mem.QueueRoutes) {
				return &ValidationError{Reason: fmt.Sprintf(
					"queue %d has no route: %d cores need explicit QueueRoutes", q, len(threads))}
			}
			r := cfg.Mem.QueueRoutes[q]
			if r.Producer < 0 || r.Producer >= len(threads) || r.Consumer < 0 || r.Consumer >= len(threads) {
				return &ValidationError{Reason: fmt.Sprintf(
					"queue %d route (%d -> %d) references cores outside [0,%d)",
					q, r.Producer, r.Consumer, len(threads))}
			}
		}
	}
	return nil
}

// Run executes the given threads on the configured machine and returns
// the result. The memory image carries workload data and receives all
// stores; callers own pre-population and post-run inspection.
func Run(cfg Config, image *mem.Memory, threads []Thread) (*Result, error) {
	if err := validate(&cfg, threads); err != nil {
		return nil, err
	}
	maxCycles := cfg.MaxCycles
	if maxCycles == 0 {
		maxCycles = 500_000_000
	}
	watchdog := cfg.WatchdogIdle
	if watchdog == 0 {
		watchdog = 100_000
	}
	progressEvery := cfg.ProgressEvery
	if progressEvery == 0 {
		progressEvery = 1_000_000
	}

	fab, err := memsys.NewFabric(cfg.Mem, image, len(threads))
	if err != nil {
		return nil, &ValidationError{Reason: err.Error()}
	}
	fab.SetFaults(cfg.Faults)
	lineBytes := uint64(cfg.Mem.L2.LineBytes)
	for _, r := range cfg.Preload {
		base := r.Base &^ (lineBytes - 1)
		if n := int((r.End() - base + lineBytes - 1) / lineBytes); n > 0 {
			fab.PreloadRange(base, n)
		}
	}
	// Warm the queue region into the L3 so the first pass over each queue
	// line is not a compulsory memory miss.
	layout := cfg.Mem.Layout
	if base := layout.SlotAddr(0, 0); layout.RegionEnd() > base {
		n := int((layout.RegionEnd() - base + lineBytes - 1) / lineBytes)
		fab.L3().InsertRange(base, n, cache.Shared)
	}

	var sa *queue.SyncArray
	if cfg.UseSyncArray {
		sa, err = queue.NewSyncArray(cfg.SA)
		if err != nil {
			return nil, &ValidationError{Reason: err.Error()}
		}
		sa.Faults = cfg.Faults
	}

	cores := make([]*core.Core, len(threads))
	for i, t := range threads {
		var strm port.Stream
		switch {
		case cfg.UseSyncArray:
			// Each core gets its own port view: MPMC queues dispatch on
			// (core, ticket); plain queues pass straight through.
			strm = sa.Port(i)
		case cfg.Mem.HWQueues:
			strm = fab.Controller(i)
		}
		c := core.New(i, cfg.Core, t.Prog, fab.Controller(i), strm)
		c.Tracer = cfg.Trace
		c.Tokens = fab.Tokens()
		for r, v := range t.Regs {
			c.SetReg(r, v)
		}
		cores[i] = c
	}
	if sa != nil {
		sa.Tokens = fab.Tokens()
	}
	if cfg.Trace != nil {
		fab.Bus().Trace = func(cycle uint64, k bus.Kind, src int, addr uint64) {
			cfg.Trace.Add(trace.Event{Cycle: cycle, Kind: trace.KindBusGrant,
				Core: src, PC: -1, Q: -1, Op: k.String(), Val: addr})
		}
	}

	// Fast-forwarding is cycle-exact (golden snapshots are byte-identical
	// either way), but tracing wants per-cycle event granularity, so the
	// trace path keeps the classic loop.
	fastForward := !cfg.DisableFastForward && cfg.Trace == nil &&
		os.Getenv("HFSTREAM_NO_FASTFORWARD") == ""

	var cycle uint64
	lastIssued := uint64(0)
	lastProgress := uint64(0)
	var samples []Sample
	var queueOcc stats.Hist
	prevIssued := make([]uint64, len(cores))
	coreDone := make([]bool, len(cores))
	// parkUntil[i], when in the future, means core i is parked: its Tick is
	// provably a no-op until that cycle (see core.ParkWake) and the skipped
	// cycles were already charged through FastForward when it parked.
	parkUntil := make([]uint64, len(cores))
	var prevGrants uint64
	var unquiesced bool
	var unquiescedDiag *Diagnosis
	for {
		cycle++
		if cycle > maxCycles {
			d := diagnose("cycle budget exhausted", cycle, lastProgress, watchdog, cores, fab, sa, &cfg)
			return nil, &DeadlockError{Cycle: cycle, Detail: d.String(), Diag: d}
		}
		if cfg.Cancel != nil && cycle&cancelCheckMask == 0 {
			select {
			case <-cfg.Cancel:
				return nil, &CanceledError{Cycle: cycle}
			default:
			}
		}
		// Event-driven scheduling: with fast-forward on, components whose
		// cached wake time says they cannot do anything this cycle are not
		// ticked at all. With it off, everything ticks every cycle — the
		// brute-force referee mode the goldens are regenerated under.
		if sa != nil && (!fastForward || sa.WakeAt() <= cycle) {
			sa.Tick(cycle)
		}
		fab.TickDue(cycle, !fastForward)
		allDone := true
		var issuedNow, prodNow, consNow uint64
		for i, c := range cores {
			if fastForward && parkUntil[i] > cycle {
				// Parked: the skipped Ticks were pre-charged at park time.
				issuedNow += c.Issued
				prodNow += c.Produces
				consNow += c.Consumes
				allDone = false
				continue
			}
			before := c.Issued
			c.Tick(cycle)
			issuedNow += c.Issued
			prodNow += c.Produces
			consNow += c.Consumes
			coreDone[i] = c.Done(cycle)
			if !coreDone[i] {
				allDone = false
				if fastForward && c.Issued == before {
					if w, ok := c.ParkWake(cycle); ok {
						c.FastForward(w - cycle - 1)
						parkUntil[i] = w
					}
				}
			}
		}
		queueOcc.Observe(prodNow - consNow)
		if cfg.SampleInterval > 0 && cycle%cfg.SampleInterval == 0 {
			s := Sample{Cycle: cycle, Issued: make([]uint64, len(cores))}
			for i, c := range cores {
				s.Issued[i] = c.Issued - prevIssued[i]
				prevIssued[i] = c.Issued
			}
			g := fab.Bus().TotalGrants()
			s.BusGrants = g - prevGrants
			prevGrants = g
			samples = append(samples, s)
		}
		if cfg.Progress != nil && cycle%progressEvery == 0 {
			cfg.Progress(cycle, issuedNow)
		}
		if allDone && fab.Quiesced(cycle) && (sa == nil || sa.Drained()) {
			break
		}
		if issuedNow != lastIssued {
			lastIssued = issuedNow
			lastProgress = cycle
			continue
		}
		if cycle-lastProgress > watchdog {
			if allDone {
				// Cores finished but the fabric never quiesced: in-flight
				// junk (e.g. an unconsumed forward). The outputs are
				// complete, so finish the run — but record the condition
				// so callers can surface it instead of silently absorbing
				// a fabric bug.
				unquiesced = true
				unquiescedDiag = diagnose("cores done but fabric never quiesced",
					cycle, lastProgress, watchdog, cores, fab, sa, &cfg)
				break
			}
			d := diagnose("watchdog", cycle, lastProgress, watchdog, cores, fab, sa, &cfg)
			return nil, &DeadlockError{Cycle: cycle, Detail: d.String(), Diag: d}
		}
		if !fastForward {
			continue
		}
		// Idle-cycle fast-forward: no instruction issued anywhere this
		// cycle, so until the earliest next-wake event (a scheduled bus or
		// controller completion, an operand/token ready cycle, a dormant
		// consume's probe timeout, an interconnect delivery) every coming
		// cycle replays this one exactly. Jump there in one step, charging
		// each skipped cycle to the same stall buckets and counters the
		// per-cycle loop would have. The jump is capped so the watchdog,
		// cycle budget, and sampling boundaries fire on exactly the cycle
		// they would without fast-forwarding.
		wake := lastProgress + watchdog + 1
		if m := maxCycles + 1; m < wake {
			wake = m
		}
		if w := fab.NextWake(cycle); w < wake {
			wake = w
		}
		if sa != nil {
			if w := sa.NextWake(cycle); w < wake {
				wake = w
			}
		}
		for i, c := range cores {
			if coreDone[i] {
				continue
			}
			if parkUntil[i] > cycle {
				// A parked core sleeps until its park deadline by
				// construction; anything earlier its NextWake reports
				// cannot change what it does.
				if parkUntil[i] < wake {
					wake = parkUntil[i]
				}
				continue
			}
			if w := c.NextWake(cycle); w < wake {
				wake = w
			}
		}
		if cfg.SampleInterval > 0 {
			if b := cycle - cycle%cfg.SampleInterval + cfg.SampleInterval; b < wake {
				wake = b
			}
		}
		if cfg.Progress != nil {
			if b := cycle - cycle%progressEvery + progressEvery; b < wake {
				wake = b
			}
		}
		if wake <= cycle+1 {
			continue
		}
		n := wake - cycle - 1
		for i, c := range cores {
			if coreDone[i] || parkUntil[i] > cycle {
				// Parked cores were already charged through their deadline.
				continue
			}
			c.FastForward(n)
			if sa != nil {
				// The per-cycle loop would have retried the blocked queue
				// operation each cycle, bumping the SA's stall counter on
				// every failed attempt.
				switch c.LastStall {
				case core.StallQueueFull:
					sa.FullStalls += n
				case core.StallQueueEmpty:
					sa.EmptyStalls += n
				}
			}
		}
		queueOcc.ObserveN(prodNow-consNow, n)
		cycle += n
		if cfg.Cancel != nil {
			select {
			case <-cfg.Cancel:
				return nil, &CanceledError{Cycle: cycle}
			default:
			}
		}
	}

	res := &Result{
		Cycles:         cycle,
		Samples:        samples,
		Trace:          cfg.Trace,
		QueueOcc:       queueOcc,
		UnquiescedExit: unquiesced,
		Diagnosis:      unquiescedDiag,
		FaultShots:     cfg.Faults.ShotStrings(),
	}
	if unquiescedDiag != nil {
		res.UnquiescedDetail = unquiescedDiag.String()
	}
	for i, c := range cores {
		c.FinishTrace(cycle + 1)
		res.Breakdowns = append(res.Breakdowns, c.Breakdown)
		res.Issued = append(res.Issued, c.Issued)
		res.IssuedComm = append(res.IssuedComm, c.IssuedComm)
		res.CoreCycles = append(res.CoreCycles, c.Cycles)
		res.IssueCycles = append(res.IssueCycles, c.IssueCycles)
		res.Stalls = append(res.Stalls, c.Stalls)
		res.StallRegions = append(res.StallRegions, c.StallRegions)
		res.Produces = append(res.Produces, c.Produces)
		res.Consumes = append(res.Consumes, c.Consumes)
		ctrl := fab.Controller(i)
		res.WrFwds = append(res.WrFwds, ctrl.WrFwdsSent)
		res.BulkAcks = append(res.BulkAcks, ctrl.BulkAcksSent)
		res.Probes = append(res.Probes, ctrl.ProbesSent)
		res.SCHits = append(res.SCHits, ctrl.StreamCacheHits())
		res.L2Hits = append(res.L2Hits, ctrl.L2().Hits)
		res.L2Misses = append(res.L2Misses, ctrl.L2().Misses)
		res.RecircRetries = append(res.RecircRetries, ctrl.RecircRetries)
	}
	res.BusGrants = fab.Bus().TotalGrants()
	res.BusBeats = fab.Bus().BeatsCarried
	res.BusArbWait = fab.Bus().ArbWait
	res.L3Hits = fab.L3Hits
	res.L3Misses = fab.L3Misses
	res.MemAccesses = fab.MemAccesses
	if sa != nil {
		res.SAFullStalls = sa.FullStalls
		res.SAEmptyStalls = sa.EmptyStalls
		occ := sa.OccHist
		res.SAOcc = &occ
	}
	return res, nil
}
