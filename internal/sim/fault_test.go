package sim_test

import (
	"errors"
	"fmt"
	"testing"

	"hfstream/fault"
	"hfstream/internal/design"
	"hfstream/internal/lower"
	"hfstream/internal/mem"
	"hfstream/internal/sim"
)

// runPipeFaulted is runPipe with a fault injector attached; it returns the
// raw outcome instead of asserting success so loss-class tests can inspect
// the typed error.
func runPipeFaulted(t *testing.T, cfg design.Config, n int64, in *fault.Injector) (*sim.Result, uint64, error) {
	t.Helper()
	prod, cons := producerProg(n), consumerProg()
	if cfg.SoftwareQueues() {
		var err error
		prod, err = lower.Lower(prod, cfg.Layout())
		if err != nil {
			t.Fatalf("lower producer: %v", err)
		}
		cons, err = lower.Lower(cons, cfg.Layout())
		if err != nil {
			t.Fatalf("lower consumer: %v", err)
		}
	}
	image := mem.New()
	simCfg := cfg.SimConfig()
	simCfg.WatchdogIdle = 20000
	simCfg.Faults = in
	res, err := sim.Run(simCfg, image, []sim.Thread{{Prog: prod}, {Prog: cons}})
	return res, image.Read8(resultAddr), err
}

// TestDelayFaultsPreserveResults: delay-class faults are latency-only — a
// run with a firing delay plan completes and produces the same
// architectural result as the fault-free run.
func TestDelayFaultsPreserveResults(t *testing.T) {
	const n = 300
	want := uint64(n * (n + 1) / 2)
	cases := []struct {
		name string
		cfg  design.Config
		ev   fault.Event
	}{
		{"syncopti-bus-delay", design.SyncOptiConfig(), fault.Event{Kind: fault.BusDelay, Nth: 3, Delay: 40}},
		{"syncopti-forward-delay", design.SyncOptiConfig(), fault.Event{Kind: fault.ForwardDelay, Nth: 2, Delay: 25}},
		{"existing-recirc-storm", design.ExistingConfig(), fault.Event{Kind: fault.RecircStorm, Nth: 1, Count: 4}},
		{"heavywt-bus-delay", design.HeavyWTConfig(), fault.Event{Kind: fault.BusDelay, Nth: 1, Delay: 100}},
		{"heavywt-sa-ack-delay", design.HeavyWTConfig(), fault.Event{Kind: fault.SAAckDelay, Nth: 2, Delay: 30}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			plan := fault.Plan{Seed: 1, Events: []fault.Event{tc.ev}}
			if err := plan.Validate(); err != nil {
				t.Fatal(err)
			}
			in := plan.Injector()
			res, got, err := runPipeFaulted(t, tc.cfg, n, in)
			if err != nil {
				t.Fatalf("delay-class run failed: %v", err)
			}
			if got != want {
				t.Errorf("sum = %d, want %d (delay faults must not change results)", got, want)
			}
			if !in.Fired() {
				t.Error("plan never fired; test exercises nothing")
			}
			if in.LossFired() {
				t.Error("delay-class plan reported a loss shot")
			}
			if res.UnquiescedExit {
				t.Error("delay-class run exited unquiesced")
			}
		})
	}
}

// TestRandomDelayPlansOracleEquivalent: seeded random delay plans are
// latency-only across designs — the canonical pipe still computes the
// right sum on every (seed, design) pair.
func TestRandomDelayPlansOracleEquivalent(t *testing.T) {
	const n = 200
	want := uint64(n * (n + 1) / 2)
	configs := []design.Config{
		design.ExistingConfig(),
		design.SyncOptiConfig(),
		design.HeavyWTConfig(),
	}
	for _, cfg := range configs {
		for seed := int64(1); seed <= 4; seed++ {
			cfg, seed := cfg, seed
			t.Run(fmt.Sprintf("%s/seed%d", cfg.Name(), seed), func(t *testing.T) {
				in := fault.RandomDelay(seed, 3).Injector()
				_, got, err := runPipeFaulted(t, cfg, n, in)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if got != want {
					t.Errorf("seed %d: sum = %d, want %d", seed, got, want)
				}
			})
		}
	}
}

// TestLossFaultsDetected: loss-class faults sever a protocol path; the run
// must end in a typed DeadlockError carrying a populated Diagnosis — never
// a hang, never a silently wrong result.
func TestLossFaultsDetected(t *testing.T) {
	const n = 200 // enough traffic to exhaust any queue depth after the cut
	cases := []struct {
		name string
		cfg  design.Config
		kind fault.Kind
	}{
		{"syncopti-forward-drop", design.SyncOptiConfig(), fault.ForwardDrop},
		{"syncopti-stale-occupancy", design.SyncOptiConfig(), fault.StaleOccupancy},
		{"heavywt-sa-credit-drop", design.HeavyWTConfig(), fault.SACreditDrop},
		{"heavywt-sa-data-drop", design.HeavyWTConfig(), fault.SADataDrop},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			plan := fault.Plan{Seed: 1, Events: []fault.Event{{Kind: tc.kind, Nth: 1}}}
			in := plan.Injector()
			_, _, err := runPipeFaulted(t, tc.cfg, n, in)
			var dl *sim.DeadlockError
			if !errors.As(err, &dl) {
				t.Fatalf("error = %v (%T), want DeadlockError", err, err)
			}
			if dl.Diag == nil {
				t.Fatal("DeadlockError carries no Diagnosis")
			}
			if len(dl.Diag.Cores) == 0 {
				t.Error("Diagnosis has no per-core state")
			}
			if !in.LossFired() {
				t.Error("loss shot not recorded")
			}
			if len(dl.Diag.FaultShots) == 0 {
				t.Error("Diagnosis.FaultShots empty despite a fired loss plan")
			}
		})
	}
}

// TestLossPlanBenignOnSoftwareQueues: EXISTING has no hardware forward or
// sync-array path, so a loss plan never finds its injection site — the run
// completes correctly and the injector reports nothing fired.
func TestLossPlanBenignOnSoftwareQueues(t *testing.T) {
	const n = 100
	in := fault.Plan{Seed: 1, Events: []fault.Event{{Kind: fault.ForwardDrop, Nth: 1}}}.Injector()
	_, got, err := runPipeFaulted(t, design.ExistingConfig(), n, in)
	if err != nil {
		t.Fatal(err)
	}
	if want := uint64(n * (n + 1) / 2); got != want {
		t.Errorf("sum = %d, want %d", got, want)
	}
	if in.Fired() {
		t.Errorf("forward-drop fired on a software-queue design: %v", in.ShotStrings())
	}
}
