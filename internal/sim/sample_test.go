package sim_test

import (
	"strings"
	"testing"

	"hfstream/internal/asm"
	"hfstream/internal/design"
	"hfstream/internal/mem"
	"hfstream/internal/sim"
)

func sampledRun(t *testing.T, interval uint64) *sim.Result {
	t.Helper()
	b := asm.NewBuilder("work")
	b.MovI(1, 2000)
	b.Label("loop")
	b.AddI(2, 2, 3)
	b.AddI(1, 1, -1)
	b.Bnez(1, "loop")
	b.Halt()
	cfg := design.ExistingConfig().SimConfig()
	cfg.SampleInterval = interval
	res, err := sim.Run(cfg, mem.New(), []sim.Thread{{Prog: b.MustProgram()}})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSampling(t *testing.T) {
	res := sampledRun(t, 100)
	if len(res.Samples) < 10 {
		t.Fatalf("only %d samples", len(res.Samples))
	}
	var total uint64
	for _, s := range res.Samples {
		if len(s.Issued) != 1 {
			t.Fatalf("sample has %d cores", len(s.Issued))
		}
		total += s.Issued[0]
	}
	// Samples cover most of the run's instructions (the tail after the
	// last interval is not sampled).
	if total < res.Issued[0]*8/10 {
		t.Errorf("samples cover %d of %d instructions", total, res.Issued[0])
	}
	if ipc := res.Samples[2].IPC(0, 100); ipc <= 0 || ipc > 6 {
		t.Errorf("IPC %v out of range", ipc)
	}
}

func TestSamplingOff(t *testing.T) {
	res := sampledRun(t, 0)
	if len(res.Samples) != 0 {
		t.Error("samples collected with sampling off")
	}
	if res.TraceReport(0) != "" || res.CSV(0) != "" {
		t.Error("reports should be empty with sampling off")
	}
}

func TestTraceReportAndCSV(t *testing.T) {
	res := sampledRun(t, 100)
	rep := res.TraceReport(100)
	if !strings.Contains(rep, "core 0 IPC") || !strings.Contains(rep, "bus grants") {
		t.Errorf("report missing sections:\n%s", rep)
	}
	csv := res.CSV(100)
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if lines[0] != "cycle,core0_ipc,bus_grants" {
		t.Errorf("csv header = %q", lines[0])
	}
	if len(lines) != len(res.Samples)+1 {
		t.Errorf("csv rows %d, want %d", len(lines)-1, len(res.Samples)+1)
	}
}

func TestSparkline(t *testing.T) {
	s := sim.Sparkline([]float64{0, 1, 2, 4})
	if len([]rune(s)) != 4 {
		t.Fatalf("length %d", len([]rune(s)))
	}
	r := []rune(s)
	if r[0] >= r[1] || r[1] >= r[3] {
		t.Errorf("sparkline not monotone: %q", s)
	}
	if flat := sim.Sparkline([]float64{0, 0}); []rune(flat)[0] != []rune(flat)[1] {
		t.Errorf("flat series not flat: %q", flat)
	}
}
