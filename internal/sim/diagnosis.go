package sim

import (
	"encoding/json"
	"fmt"
	"strings"

	"hfstream/internal/core"
	"hfstream/internal/memsys"
	"hfstream/internal/queue"
	"hfstream/trace"
)

// Diagnosis is a structured snapshot of the machine at the moment a run
// failed to make progress: the watchdog fired, the cycle budget ran out,
// or the cores halted but the fabric never quiesced. It is attached to
// DeadlockError (and to Result on an unquiesced exit), rendered by the
// CLIs, and serializable to deterministic JSON via DiagnosisJSON.
type Diagnosis struct {
	// Reason says why the snapshot was taken ("watchdog", "cycle budget
	// exhausted", "cores done but fabric never quiesced").
	Reason string `json:"reason"`
	// Cycle is the cycle the condition was detected.
	Cycle uint64 `json:"cycle"`
	// LastProgress is the last cycle any core issued an instruction.
	LastProgress uint64 `json:"last_progress"`
	// WatchdogIdle is the configured idle window.
	WatchdogIdle uint64 `json:"watchdog_idle"`

	Cores []CoreDiag `json:"cores"`
	Bus   BusDiag    `json:"bus"`
	// SA is the synchronization-array state (HEAVYWT designs only).
	SA *SADiag `json:"sync_array,omitempty"`

	// FaultShots lists the injected faults that fired before the failure
	// (empty without fault injection) — the first thing to read when a
	// chaos run deadlocks.
	FaultShots []string `json:"fault_shots,omitempty"`
	// Events holds the last events of the trace ring, newest last (only
	// when the run traced).
	Events []string `json:"recent_events,omitempty"`
}

// CoreDiag describes one core and its L2 controller.
type CoreDiag struct {
	Core   int    `json:"core"`
	Halted bool   `json:"halted"`
	PC     int    `json:"pc"`
	Stall  string `json:"stall"`
	Issued uint64 `json:"issued"`

	// OzQ lists the controller's in-flight ordered-transaction-queue
	// entries (also its MSHRs).
	OzQ []OzQDiag `json:"ozq,omitempty"`
	// PendingLines counts lines with an in-flight bus transaction.
	PendingLines int `json:"pending_lines"`
	// PendingEvents counts scheduled controller callbacks.
	PendingEvents int `json:"pending_events"`
	// Queues holds the stream-queue counters with any traffic.
	Queues []QueueDiag `json:"queues,omitempty"`
}

// OzQDiag is one OzQ entry.
type OzQDiag struct {
	Kind      string `json:"kind"`
	State     string `json:"state"`
	Addr      string `json:"addr"`
	Q         int    `json:"q"`
	Slot      uint64 `json:"slot"`
	ReadyAt   uint64 `json:"ready_at"`
	TimeoutAt uint64 `json:"timeout_at,omitempty"`
}

// QueueDiag is one stream queue's cumulative counters at one controller.
type QueueDiag struct {
	Q            int    `json:"q"`
	SentCum      uint64 `json:"sent"`
	DoneCum      uint64 `json:"done"`
	AckedCum     uint64 `json:"acked"`
	ForwardedCum uint64 `json:"forwarded"`
	ConsumeCum   uint64 `json:"consume_issued"`
	AvailCum     uint64 `json:"avail"`
	ConsumedCum  uint64 `json:"consumed"`
	ProbeOut     bool   `json:"probe_out,omitempty"`
}

// BusDiag is the shared bus state.
type BusDiag struct {
	AddrFree uint64       `json:"addr_free"`
	DataFree uint64       `json:"data_free"`
	Pending  []BusReqDiag `json:"pending,omitempty"`
}

// BusReqDiag is one queued (ungranted) bus request.
type BusReqDiag struct {
	Kind     string `json:"kind"`
	Addr     string `json:"addr"`
	Src      int    `json:"src"`
	Q        int    `json:"q"`
	SubmitAt uint64 `json:"submit_at"`
}

// SADiag is the synchronization-array state.
type SADiag struct {
	InFlight       int       `json:"in_flight"`
	PendingCredits int       `json:"pending_credits"`
	PendingData    int       `json:"pending_data"`
	Queues         []SAQDiag `json:"queues,omitempty"`
}

// SAQDiag is one synchronization-array queue with visible state.
type SAQDiag struct {
	Q           int `json:"q"`
	Occupancy   int `json:"occupancy"`
	Outstanding int `json:"outstanding"`
}

// diagEventCap bounds the number of trace-ring events a Diagnosis keeps.
const diagEventCap = 32

// diagnose snapshots the machine. sa and the trace buffer may be nil.
func diagnose(reason string, cycle, lastProgress, watchdog uint64,
	cores []*core.Core, fab *memsys.Fabric, sa *queue.SyncArray, cfg *Config) *Diagnosis {
	d := &Diagnosis{
		Reason:       reason,
		Cycle:        cycle,
		LastProgress: lastProgress,
		WatchdogIdle: watchdog,
	}
	for _, c := range cores {
		cd := CoreDiag{
			Core:   c.ID(),
			Halted: c.Halted(),
			PC:     c.LastPC,
			Stall:  c.LastStall.String(),
			Issued: c.Issued,
		}
		snap := fab.Controller(c.ID()).Snapshot()
		cd.PendingLines = snap.PendingLines
		cd.PendingEvents = snap.Events
		for _, e := range snap.OzQ {
			cd.OzQ = append(cd.OzQ, OzQDiag{
				Kind: e.Kind, State: e.State, Addr: fmt.Sprintf("%#x", e.Addr),
				Q: e.Q, Slot: e.Slot, ReadyAt: e.ReadyAt, TimeoutAt: e.TimeoutAt,
			})
		}
		for _, q := range snap.Queues {
			cd.Queues = append(cd.Queues, QueueDiag{
				Q: q.Q, SentCum: q.SentCum, DoneCum: q.DoneCum,
				AckedCum: q.AckedCum, ForwardedCum: q.ForwardedCum,
				ConsumeCum: q.ConsumeCum, AvailCum: q.AvailCum,
				ConsumedCum: q.ConsumedCum, ProbeOut: q.ProbeOut,
			})
		}
		d.Cores = append(d.Cores, cd)
	}
	b := fab.Bus()
	d.Bus = BusDiag{AddrFree: b.AddrFree(), DataFree: b.DataFree()}
	for _, r := range b.PendingRequests() {
		d.Bus.Pending = append(d.Bus.Pending, BusReqDiag{
			Kind: r.Kind.String(), Addr: fmt.Sprintf("%#x", r.Addr),
			Src: r.Src, Q: r.Q, SubmitAt: r.SubmitAt,
		})
	}
	if sa != nil {
		snap := sa.Snapshot()
		sd := &SADiag{
			InFlight:       snap.InFlight,
			PendingCredits: snap.PendingCredits,
			PendingData:    snap.PendingData,
		}
		for _, q := range snap.Queues {
			sd.Queues = append(sd.Queues, SAQDiag{Q: q.Q, Occupancy: q.Occupancy, Outstanding: q.Outstanding})
		}
		d.SA = sd
	}
	if cfg != nil {
		d.FaultShots = cfg.Faults.ShotStrings()
		if cfg.Trace != nil {
			evs := cfg.Trace.Events()
			if len(evs) > diagEventCap {
				evs = evs[len(evs)-diagEventCap:]
			}
			for _, ev := range evs {
				d.Events = append(d.Events, formatTraceEvent(ev))
			}
		}
	}
	return d
}

func formatTraceEvent(ev trace.Event) string {
	s := fmt.Sprintf("cycle %d: %s core=%d", ev.Cycle, ev.Kind, ev.Core)
	if ev.PC >= 0 {
		s += fmt.Sprintf(" pc=%d", ev.PC)
	}
	if ev.Q >= 0 {
		s += fmt.Sprintf(" q=%d", ev.Q)
	}
	if ev.Op != "" {
		s += " " + ev.Op
	}
	if ev.Dur > 1 {
		s += fmt.Sprintf(" dur=%d", ev.Dur)
	}
	return s
}

// String renders the diagnosis for humans, one indented block per core.
func (d *Diagnosis) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (cycle %d, last progress at cycle %d, watchdog window %d)\n",
		d.Reason, d.Cycle, d.LastProgress, d.WatchdogIdle)
	for _, c := range d.Cores {
		fmt.Fprintf(&b, "  core %d: halted=%v pc=%d stall=%s issued=%d\n",
			c.Core, c.Halted, c.PC, c.Stall, c.Issued)
		fmt.Fprintf(&b, "    ctrl: ozq=%d pendingLines=%d events=%d\n",
			len(c.OzQ), c.PendingLines, c.PendingEvents)
		for _, e := range c.OzQ {
			fmt.Fprintf(&b, "    ozq %s state=%s addr=%s q=%d slot=%d readyAt=%d",
				e.Kind, e.State, e.Addr, e.Q, e.Slot, e.ReadyAt)
			if e.TimeoutAt > 0 {
				fmt.Fprintf(&b, " timeoutAt=%d", e.TimeoutAt)
			}
			b.WriteByte('\n')
		}
		for _, q := range c.Queues {
			fmt.Fprintf(&b, "    q%d: sent=%d done=%d acked=%d fwd=%d | consIssue=%d avail=%d consumed=%d",
				q.Q, q.SentCum, q.DoneCum, q.AckedCum, q.ForwardedCum,
				q.ConsumeCum, q.AvailCum, q.ConsumedCum)
			if q.ProbeOut {
				b.WriteString(" probeOut")
			}
			b.WriteByte('\n')
		}
	}
	fmt.Fprintf(&b, "  bus: addrFree=%d dataFree=%d pending=%d\n",
		d.Bus.AddrFree, d.Bus.DataFree, len(d.Bus.Pending))
	for _, r := range d.Bus.Pending {
		fmt.Fprintf(&b, "    %s addr=%s src=%d q=%d submitted=%d\n",
			r.Kind, r.Addr, r.Src, r.Q, r.SubmitAt)
	}
	if d.SA != nil {
		fmt.Fprintf(&b, "  sync array: inflight=%d pendingCredits=%d pendingData=%d\n",
			d.SA.InFlight, d.SA.PendingCredits, d.SA.PendingData)
		for _, q := range d.SA.Queues {
			fmt.Fprintf(&b, "    q%d: occupancy=%d outstanding=%d\n", q.Q, q.Occupancy, q.Outstanding)
		}
	}
	if len(d.FaultShots) > 0 {
		fmt.Fprintf(&b, "  fault shots (%d):\n", len(d.FaultShots))
		for _, s := range d.FaultShots {
			fmt.Fprintf(&b, "    %s\n", s)
		}
	}
	if len(d.Events) > 0 {
		fmt.Fprintf(&b, "  recent events (%d):\n", len(d.Events))
		for _, s := range d.Events {
			fmt.Fprintf(&b, "    %s\n", s)
		}
	}
	return b.String()
}

// DiagnosisJSON serializes a diagnosis deterministically: two-space
// indentation, fixed field order, trailing newline (the same convention
// as MetricsJSON, so goldens are stable byte-for-byte).
func DiagnosisJSON(d *Diagnosis) ([]byte, error) {
	buf, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(buf, '\n'), nil
}
