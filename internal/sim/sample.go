package sim

import (
	"fmt"
	"strings"
)

// Sample is one point of the per-interval time series the simulator can
// collect (Config.SampleInterval > 0): instruction throughput per core
// and bus activity, each as a delta over the interval.
type Sample struct {
	Cycle     uint64
	Issued    []uint64 // per-core instructions issued in the interval
	BusGrants uint64   // bus transactions granted in the interval
}

// IPC returns core i's instructions per cycle over the interval.
func (s Sample) IPC(i int, interval uint64) float64 {
	if interval == 0 {
		return 0
	}
	return float64(s.Issued[i]) / float64(interval)
}

// sparkRunes are the eight-level bar glyphs used by Sparkline.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders values as a one-line unicode bar chart, scaled to
// the series maximum.
func Sparkline(values []float64) string {
	var max float64
	for _, v := range values {
		if v > max {
			max = v
		}
	}
	if max == 0 {
		return strings.Repeat(string(sparkRunes[0]), len(values))
	}
	var sb strings.Builder
	for _, v := range values {
		idx := int(v / max * float64(len(sparkRunes)-1))
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sparkRunes) {
			idx = len(sparkRunes) - 1
		}
		sb.WriteRune(sparkRunes[idx])
	}
	return sb.String()
}

// TraceReport renders the sampled time series: one IPC sparkline per core
// plus a bus-activity line. Returns "" when sampling was off.
func (r *Result) TraceReport(interval uint64) string {
	if len(r.Samples) == 0 || interval == 0 {
		return ""
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "time series (%d samples, every %d cycles):\n", len(r.Samples), interval)
	cores := len(r.Samples[0].Issued)
	for c := 0; c < cores; c++ {
		vals := make([]float64, len(r.Samples))
		var peak float64
		for i, s := range r.Samples {
			vals[i] = s.IPC(c, interval)
			if vals[i] > peak {
				peak = vals[i]
			}
		}
		fmt.Fprintf(&sb, "  core %d IPC  %s  (peak %.2f)\n", c, Sparkline(vals), peak)
	}
	bus := make([]float64, len(r.Samples))
	var peak float64
	for i, s := range r.Samples {
		bus[i] = float64(s.BusGrants)
		if bus[i] > peak {
			peak = bus[i]
		}
	}
	fmt.Fprintf(&sb, "  bus grants  %s  (peak %.0f/interval)\n", Sparkline(bus), peak)
	return sb.String()
}

// CSV renders the samples as comma-separated values with a header row,
// for external plotting.
func (r *Result) CSV(interval uint64) string {
	if len(r.Samples) == 0 {
		return ""
	}
	var sb strings.Builder
	sb.WriteString("cycle")
	for c := range r.Samples[0].Issued {
		fmt.Fprintf(&sb, ",core%d_ipc", c)
	}
	sb.WriteString(",bus_grants\n")
	for _, s := range r.Samples {
		fmt.Fprintf(&sb, "%d", s.Cycle)
		for c := range s.Issued {
			fmt.Fprintf(&sb, ",%.3f", s.IPC(c, interval))
		}
		fmt.Fprintf(&sb, ",%d\n", s.BusGrants)
	}
	return sb.String()
}
