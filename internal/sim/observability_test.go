package sim_test

import (
	"encoding/json"
	"testing"

	"hfstream/internal/design"
	"hfstream/internal/mem"
	"hfstream/internal/sim"
	"hfstream/trace"
)

// TestStallAttributionInvariant checks the acceptance identity on every
// standard design point: per core, stall cycles by reason sum to total
// cycles minus issued-slot cycles, and the per-region stall view agrees.
func TestStallAttributionInvariant(t *testing.T) {
	for _, cfg := range design.StandardConfigs() {
		cfg := cfg
		t.Run(cfg.Name(), func(t *testing.T) {
			res := runPipe(t, cfg, 300)
			for i := range res.Stalls {
				stall := res.Stalls[i].Total()
				if want := res.CoreCycles[i] - res.IssueCycles[i]; stall != want {
					t.Errorf("core %d: stall total %d != cycles %d - issue cycles %d",
						i, stall, res.CoreCycles[i], res.IssueCycles[i])
				}
				if got := res.StallRegions[i].Total(); got != stall {
					t.Errorf("core %d: stall regions total %d != stall total %d", i, got, stall)
				}
			}
		})
	}
}

func runTraced(t *testing.T, cfg design.Config, buf *trace.Buffer) *sim.Result {
	t.Helper()
	image := mem.New()
	simCfg := cfg.SimConfig()
	simCfg.Trace = buf
	res, err := sim.Run(simCfg, image, []sim.Thread{
		{Prog: producerProg(60)}, {Prog: consumerProg()},
	})
	if err != nil {
		t.Fatalf("%s: %v", cfg.Name(), err)
	}
	return res
}

func TestTraceRecordsRun(t *testing.T) {
	buf := trace.NewBuffer(1 << 14)
	res := runTraced(t, design.HeavyWTConfig(), buf)
	if buf.Len() == 0 {
		t.Fatal("trace buffer is empty")
	}
	kinds := map[trace.Kind]int{}
	for _, e := range buf.Events() {
		kinds[e.Kind]++
	}
	for _, k := range []trace.Kind{trace.KindIssue, trace.KindQueueOp, trace.KindRetire} {
		if kinds[k] == 0 {
			t.Errorf("no %s events recorded", k)
		}
	}

	data, err := trace.ChromeJSON(buf.Events(), buf.Dropped())
	if err != nil {
		t.Fatal(err)
	}
	parsed, _, err := trace.ReadChrome(data)
	if err != nil {
		t.Fatalf("exported trace does not round-trip: %v", err)
	}
	if len(parsed) != buf.Len() {
		t.Errorf("round trip produced %d events, want %d", len(parsed), buf.Len())
	}
	if res.Trace != buf {
		t.Error("Result.Trace does not expose the configured buffer")
	}
}

func TestMetricsJSONShape(t *testing.T) {
	res := runPipe(t, design.SyncOptiConfig(), 200)
	buf, err := res.MetricsJSON()
	if err != nil {
		t.Fatal(err)
	}
	var m struct {
		Cycles uint64 `json:"cycles"`
		Cores  []struct {
			Cycles      uint64            `json:"cycles"`
			IssueCycles uint64            `json:"issue_cycles"`
			StallCycles uint64            `json:"stall_cycles"`
			Stalls      map[string]uint64 `json:"stalls"`
		} `json:"cores"`
		Bus struct {
			Grants uint64 `json:"grants"`
		} `json:"bus"`
		QueueOccupancy []struct {
			Range string `json:"range"`
			Count uint64 `json:"count"`
		} `json:"queue_occupancy"`
	}
	if err := json.Unmarshal(buf, &m); err != nil {
		t.Fatalf("metrics are not valid JSON: %v", err)
	}
	if m.Cycles != res.Cycles {
		t.Errorf("metrics cycles = %d, want %d", m.Cycles, res.Cycles)
	}
	if len(m.Cores) != 2 {
		t.Fatalf("metrics cores = %d, want 2", len(m.Cores))
	}
	for i, c := range m.Cores {
		if c.IssueCycles+c.StallCycles != c.Cycles {
			t.Errorf("core %d: issue %d + stall %d != cycles %d",
				i, c.IssueCycles, c.StallCycles, c.Cycles)
		}
		var sum uint64
		for _, n := range c.Stalls {
			sum += n
		}
		if sum != c.StallCycles {
			t.Errorf("core %d: stall map sums to %d, want %d", i, sum, c.StallCycles)
		}
	}
	if m.Bus.Grants == 0 {
		t.Error("software-queue run recorded no bus grants")
	}
	if len(m.QueueOccupancy) == 0 {
		t.Error("no queue occupancy histogram")
	}

	// Determinism: a second identical run must serialize byte-identically —
	// this is what lets CI diff golden snapshots.
	buf2, err := runPipe(t, design.SyncOptiConfig(), 200).MetricsJSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(buf) != string(buf2) {
		t.Error("metrics JSON is not deterministic across identical runs")
	}
}

func TestMetricsSAOccupancy(t *testing.T) {
	res := runPipe(t, design.HeavyWTConfig(), 200)
	m := res.Metrics()
	if len(m.SAOccupancy) == 0 {
		t.Error("HEAVYWT metrics missing synchronization-array occupancy")
	}
	if m.Cores[0].Produces == 0 || m.Cores[1].Consumes == 0 {
		t.Errorf("queue-op counts missing: produces=%d consumes=%d",
			m.Cores[0].Produces, m.Cores[1].Consumes)
	}
}
