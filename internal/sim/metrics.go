package sim

import (
	"encoding/json"

	"hfstream/internal/core"
	"hfstream/internal/stats"
)

// Metrics is the machine-readable snapshot of one run: IPC, instruction
// and communication counts, stall-cycle attribution by reason and by
// machine region, queue occupancy histograms, and the memory-system
// counters. It marshals deterministically (fixed field order, sorted
// maps), so CI can diff snapshots across commits byte for byte.
type Metrics struct {
	// Benchmark and Design are annotations filled in by the experiment
	// harness; the simulator itself does not know them.
	Benchmark string `json:"benchmark,omitempty"`
	Design    string `json:"design,omitempty"`

	Cycles         uint64 `json:"cycles"`
	UnquiescedExit bool   `json:"unquiesced_exit,omitempty"`

	Cores []CoreMetrics `json:"cores"`

	Bus struct {
		Grants  uint64 `json:"grants"`
		Beats   uint64 `json:"beats"`
		ArbWait uint64 `json:"arb_wait"`
	} `json:"bus"`

	Memory struct {
		L2Hits      []uint64 `json:"l2_hits"`
		L2Misses    []uint64 `json:"l2_misses"`
		L3Hits      uint64   `json:"l3_hits"`
		L3Misses    uint64   `json:"l3_misses"`
		MemAccesses uint64   `json:"mem_accesses"`
	} `json:"memory"`

	Streaming struct {
		WrFwds        []uint64 `json:"wr_fwds,omitempty"`
		BulkAcks      []uint64 `json:"bulk_acks,omitempty"`
		Probes        []uint64 `json:"probes,omitempty"`
		SCHits        []uint64 `json:"sc_hits,omitempty"`
		RecircRetries []uint64 `json:"recirc_retries,omitempty"`
		SAFullStalls  uint64   `json:"sa_full_stalls,omitempty"`
		SAEmptyStalls uint64   `json:"sa_empty_stalls,omitempty"`
	} `json:"streaming"`

	// QueueOccupancy is the per-cycle histogram of stream items in flight
	// end to end; SAOccupancy is the HEAVYWT dedicated-store histogram.
	QueueOccupancy []HistBucket `json:"queue_occupancy,omitempty"`
	SAOccupancy    []HistBucket `json:"sa_occupancy,omitempty"`
}

// CoreMetrics is one core's slice of the snapshot.
type CoreMetrics struct {
	IPC         float64 `json:"ipc"`
	Issued      uint64  `json:"issued"`
	IssuedComm  uint64  `json:"issued_comm"`
	CommRatio   float64 `json:"comm_ratio"`
	Cycles      uint64  `json:"cycles"`
	IssueCycles uint64  `json:"issue_cycles"`
	StallCycles uint64  `json:"stall_cycles"`
	Produces    uint64  `json:"produces,omitempty"`
	Consumes    uint64  `json:"consumes,omitempty"`
	// Stalls maps stall reason -> cycles (zero reasons omitted); values
	// sum to StallCycles.
	Stalls map[string]uint64 `json:"stalls,omitempty"`
	// Regions is the full execution-time breakdown by machine region;
	// StallRegions restricts it to zero-issue cycles.
	Regions      map[string]uint64 `json:"regions"`
	StallRegions map[string]uint64 `json:"stall_regions,omitempty"`
}

// HistBucket is one non-empty histogram bucket ("2-3" -> count).
type HistBucket struct {
	Range string `json:"range"`
	Count uint64 `json:"count"`
}

func histBuckets(h *stats.Hist) []HistBucket {
	var out []HistBucket
	for i, c := range h.Counts {
		if c > 0 {
			out = append(out, HistBucket{Range: stats.HistLabel(i), Count: c})
		}
	}
	return out
}

// Metrics builds the snapshot for this result.
func (r *Result) Metrics() *Metrics {
	m := &Metrics{Cycles: r.Cycles, UnquiescedExit: r.UnquiescedExit}
	for i := range r.Issued {
		cm := CoreMetrics{
			Issued:      r.Issued[i],
			IssuedComm:  r.IssuedComm[i],
			CommRatio:   r.CommRatio(i),
			Cycles:      r.CoreCycles[i],
			IssueCycles: r.IssueCycles[i],
			StallCycles: r.Stalls[i].Total(),
			Produces:    r.Produces[i],
			Consumes:    r.Consumes[i],
			Regions:     map[string]uint64{},
		}
		if r.CoreCycles[i] > 0 {
			cm.IPC = float64(r.Issued[i]) / float64(r.CoreCycles[i])
		}
		for reason := core.StallReason(1); reason < core.NumStallReasons; reason++ {
			if n := r.Stalls[i][reason]; n > 0 {
				if cm.Stalls == nil {
					cm.Stalls = map[string]uint64{}
				}
				cm.Stalls[reason.String()] = n
			}
		}
		for b := stats.Bucket(0); b < stats.NumBuckets; b++ {
			cm.Regions[b.String()] = r.Breakdowns[i].Cycles[b]
			if n := r.StallRegions[i].Cycles[b]; n > 0 {
				if cm.StallRegions == nil {
					cm.StallRegions = map[string]uint64{}
				}
				cm.StallRegions[b.String()] = n
			}
		}
		m.Cores = append(m.Cores, cm)
	}
	m.Bus.Grants = r.BusGrants
	m.Bus.Beats = r.BusBeats
	m.Bus.ArbWait = r.BusArbWait
	m.Memory.L2Hits = r.L2Hits
	m.Memory.L2Misses = r.L2Misses
	m.Memory.L3Hits = r.L3Hits
	m.Memory.L3Misses = r.L3Misses
	m.Memory.MemAccesses = r.MemAccesses
	m.Streaming.WrFwds = r.WrFwds
	m.Streaming.BulkAcks = r.BulkAcks
	m.Streaming.Probes = r.Probes
	m.Streaming.SCHits = r.SCHits
	m.Streaming.RecircRetries = r.RecircRetries
	m.Streaming.SAFullStalls = r.SAFullStalls
	m.Streaming.SAEmptyStalls = r.SAEmptyStalls
	occ := r.QueueOcc
	m.QueueOccupancy = histBuckets(&occ)
	if r.SAOcc != nil {
		m.SAOccupancy = histBuckets(r.SAOcc)
	}
	return m
}

// MetricsJSON renders the snapshot as indented JSON with a trailing
// newline. The output is deterministic: the simulator is deterministic,
// struct fields marshal in declaration order, and Go sorts map keys.
func (r *Result) MetricsJSON() ([]byte, error) {
	return MetricsJSON(r.Metrics())
}

// MetricsJSON marshals an (optionally annotated) snapshot.
func MetricsJSON(m *Metrics) ([]byte, error) {
	buf, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(buf, '\n'), nil
}
