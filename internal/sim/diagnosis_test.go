package sim_test

import (
	"bytes"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"hfstream/internal/design"
	"hfstream/internal/mem"
	"hfstream/internal/sim"
)

var updateGolden = flag.Bool("update", false, "rewrite the diagnosis golden snapshot")

// canonicalDeadlock runs the canonical forced deadlock — a HEAVYWT
// consumer parked on an empty queue beside an idle peer — and returns its
// Diagnosis.
func canonicalDeadlock(t *testing.T, disableFF bool) *sim.Diagnosis {
	t.Helper()
	cfg := design.HeavyWTConfig().SimConfig()
	cfg.WatchdogIdle = 2000
	cfg.DisableFastForward = disableFF
	_, err := sim.Run(cfg, mem.New(), stuckConsumer())
	var dl *sim.DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("error = %v (%T), want DeadlockError", err, err)
	}
	if dl.Diag == nil {
		t.Fatal("DeadlockError carries no Diagnosis")
	}
	return dl.Diag
}

// TestDiagnosisGolden locks the Diagnosis JSON serialization for the
// canonical deadlock against a checked-in snapshot, so forensic output is
// versioned the same way the metrics goldens are. Regenerate with
//
//	go test ./internal/sim -run TestDiagnosisGolden -update
func TestDiagnosisGolden(t *testing.T) {
	d := canonicalDeadlock(t, false)
	got, err := sim.DiagnosisJSON(d)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "diagnosis_golden.json")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (regenerate with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("diagnosis JSON drifted from %s; rerun with -update if intended\ngot:\n%s", path, got)
	}
}

// TestDiagnosisFastForwardInvariant: the forensic snapshot must be
// byte-identical whether the deadlock was reached cycle by cycle or
// through idle-span jumps.
func TestDiagnosisFastForwardInvariant(t *testing.T) {
	on, err := sim.DiagnosisJSON(canonicalDeadlock(t, false))
	if err != nil {
		t.Fatal(err)
	}
	off, err := sim.DiagnosisJSON(canonicalDeadlock(t, true))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(on, off) {
		t.Errorf("diagnosis differs across FF modes\nFF-on:\n%s\nFF-off:\n%s", on, off)
	}
}

// TestDiagnosisString: the human rendering keeps the per-core stall lines
// tooling greps for, and names the stuck core.
func TestDiagnosisString(t *testing.T) {
	d := canonicalDeadlock(t, false)
	s := d.String()
	for _, want := range []string{"watchdog", "core 0", "core 1", "stall="} {
		if !bytes.Contains([]byte(s), []byte(want)) {
			t.Errorf("Diagnosis.String() missing %q:\n%s", want, s)
		}
	}
}
