package sim_test

import (
	"testing"

	"hfstream/internal/asm"
	"hfstream/internal/design"
	"hfstream/internal/isa"
	"hfstream/internal/lower"
	"hfstream/internal/mem"
	"hfstream/internal/sim"
)

const resultAddr = 0x1000

// producerProg produces 1..n on queue 0 followed by a zero sentinel.
func producerProg(n int64) *isa.Program {
	b := asm.NewBuilder("producer")
	b.MovI(1, 1) // r1 = i
	b.MovI(2, n) // r2 = n
	b.MovI(3, 1) // r3 = 1
	b.Label("loop")
	b.Produce(0, 1)   // produce i
	b.Add(1, 1, 3)    // i++
	b.CmpLT(4, 2, 1)  // r4 = n < i
	b.Beqz(4, "loop") // while i <= n
	b.MovI(5, 0)
	b.Produce(0, 5) // sentinel
	b.Halt()
	return b.MustProgram()
}

// consumerProg sums queue 0 until the zero sentinel, storing the sum.
func consumerProg() *isa.Program {
	b := asm.NewBuilder("consumer")
	b.MovI(1, 0) // r1 = acc
	b.MovI(2, resultAddr)
	b.Label("loop")
	b.Consume(3, 0)
	b.Beqz(3, "done")
	b.Add(1, 1, 3)
	b.B("loop")
	b.Label("done")
	b.St(2, 0, 1)
	b.Halt()
	return b.MustProgram()
}

func runPipe(t *testing.T, cfg design.Config, n int64) *sim.Result {
	t.Helper()
	prod, cons := producerProg(n), consumerProg()
	if cfg.SoftwareQueues() {
		var err error
		prod, err = lower.Lower(prod, cfg.Layout())
		if err != nil {
			t.Fatalf("lower producer: %v", err)
		}
		cons, err = lower.Lower(cons, cfg.Layout())
		if err != nil {
			t.Fatalf("lower consumer: %v", err)
		}
	}
	image := mem.New()
	res, err := sim.Run(cfg.SimConfig(), image, []sim.Thread{{Prog: prod}, {Prog: cons}})
	if err != nil {
		t.Fatalf("%s: %v", cfg.Name(), err)
	}
	want := uint64(n * (n + 1) / 2)
	if got := image.Read8(resultAddr); got != want {
		t.Fatalf("%s: consumer sum = %d, want %d", cfg.Name(), got, want)
	}
	return res
}

func TestPipelineAllDesigns(t *testing.T) {
	configs := []design.Config{
		design.ExistingConfig(),
		design.MemOptiConfig(),
		design.SyncOptiConfig(),
		design.SyncOptiQ64Config(),
		design.SyncOptiSCConfig(),
		design.SyncOptiSCQ64Config(),
		design.HeavyWTConfig(),
	}
	for _, cfg := range configs {
		cfg := cfg
		t.Run(cfg.Name(), func(t *testing.T) {
			res := runPipe(t, cfg, 500)
			t.Logf("%s: %d cycles, bus grants %d", cfg.Name(), res.Cycles, res.BusGrants)
			if res.Cycles == 0 {
				t.Fatal("zero cycles")
			}
		})
	}
}

func TestDesignOrdering(t *testing.T) {
	heavy := runPipe(t, design.HeavyWTConfig(), 800).Cycles
	sync := runPipe(t, design.SyncOptiConfig(), 800).Cycles
	scq64 := runPipe(t, design.SyncOptiSCQ64Config(), 800).Cycles
	existing := runPipe(t, design.ExistingConfig(), 800).Cycles
	t.Logf("HEAVYWT=%d SYNCOPTI=%d SC+Q64=%d EXISTING=%d", heavy, sync, scq64, existing)
	if !(heavy <= sync) {
		t.Errorf("HEAVYWT (%d) should beat SYNCOPTI (%d)", heavy, sync)
	}
	if !(sync < existing) {
		t.Errorf("SYNCOPTI (%d) should beat EXISTING (%d)", sync, existing)
	}
	if !(scq64 < existing) {
		t.Errorf("SC+Q64 (%d) should beat EXISTING (%d)", scq64, existing)
	}
}

func TestSingleCore(t *testing.T) {
	b := asm.NewBuilder("single")
	b.MovI(1, 0)
	b.MovI(2, 100)
	b.MovI(3, 1)
	b.MovI(4, 0) // i
	b.Label("loop")
	b.Add(1, 1, 4)
	b.Add(4, 4, 3)
	b.CmpLT(5, 4, 2)
	b.Bnez(5, "loop")
	b.MovI(6, resultAddr)
	b.St(6, 0, 1)
	b.Halt()
	prog := b.MustProgram()

	image := mem.New()
	cfg := design.ExistingConfig().SimConfig()
	res, err := sim.Run(cfg, image, []sim.Thread{{Prog: prog}})
	if err != nil {
		t.Fatal(err)
	}
	if got := image.Read8(resultAddr); got != 4950 {
		t.Fatalf("sum = %d, want 4950", got)
	}
	if res.Cycles == 0 || res.Cycles > 10000 {
		t.Fatalf("suspicious cycle count %d", res.Cycles)
	}
}
