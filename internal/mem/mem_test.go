package mem

import (
	"testing"
	"testing/quick"
)

func TestMemoryReadWrite(t *testing.T) {
	m := New()
	if got := m.Read8(0x1000); got != 0 {
		t.Errorf("unwritten word = %d, want 0", got)
	}
	m.Write8(0x1000, 42)
	if got := m.Read8(0x1000); got != 42 {
		t.Errorf("read back %d, want 42", got)
	}
	// Unaligned addresses resolve to the containing word.
	m.Write8(0x2003, 7)
	if got := m.Read8(0x2000); got != 7 {
		t.Errorf("unaligned write landed wrong: %d", got)
	}
	if m.Len() != 2 {
		t.Errorf("Len = %d, want 2", m.Len())
	}
}

func TestMemoryRoundTripProperty(t *testing.T) {
	m := New()
	f := func(addr, val uint64) bool {
		m.Write8(addr, val)
		return m.Read8(addr) == val && m.Read8(addr&^7) == val
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAllocatorNonOverlapping(t *testing.T) {
	a := NewAllocator(0x1000, 128)
	r1 := a.Alloc("a", 100)
	r2 := a.Alloc("b", 1)
	r3 := a.Alloc("c", 4096)
	regs := []Region{r1, r2, r3}
	for i, r := range regs {
		if r.Base%128 != 0 {
			t.Errorf("region %d base %#x not aligned", i, r.Base)
		}
		if r.Size%128 != 0 {
			t.Errorf("region %d size %#x not aligned", i, r.Size)
		}
		for j, s := range regs {
			if i == j {
				continue
			}
			if r.Base < s.End() && s.Base < r.End() {
				t.Errorf("regions %d and %d overlap", i, j)
			}
		}
	}
	if got := len(a.Regions()); got != 3 {
		t.Errorf("Regions() returned %d entries, want 3", got)
	}
}

func TestAllocatorBadAlignment(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-power-of-two alignment accepted")
		}
	}()
	NewAllocator(0, 100)
}

func TestRegionContains(t *testing.T) {
	r := Region{Name: "x", Base: 0x100, Size: 0x80}
	if !r.Contains(0x100) || !r.Contains(0x17f) {
		t.Error("Contains misses interior")
	}
	if r.Contains(0xff) || r.Contains(0x180) {
		t.Error("Contains includes exterior")
	}
	if r.End() != 0x180 {
		t.Errorf("End = %#x", r.End())
	}
}
