// Package mem provides the functional (value-carrying) memory image shared
// by all cores, plus a simple region allocator used by workloads to lay
// out their data. Timing is modeled elsewhere; this package answers "what
// value does this address hold once the access completes".
package mem

import "fmt"

// Memory is a sparse 64-bit-word-addressable functional memory. Addresses
// are byte addresses; accesses are 8-byte aligned words (the simulator's
// ISA moves 64-bit values only).
type Memory struct {
	words map[uint64]uint64
}

// New returns an empty memory image.
func New() *Memory { return &Memory{words: make(map[uint64]uint64)} }

// Read8 returns the 8-byte word at addr (0 if never written).
func (m *Memory) Read8(addr uint64) uint64 { return m.words[addr&^7] }

// Write8 stores an 8-byte word at addr.
func (m *Memory) Write8(addr, val uint64) { m.words[addr&^7] = val }

// Len returns the number of distinct words ever written.
func (m *Memory) Len() int { return len(m.words) }

// Region is a contiguous chunk of the address space.
type Region struct {
	Name string
	Base uint64
	Size uint64
}

// Contains reports whether addr falls inside the region.
func (r Region) Contains(addr uint64) bool {
	return addr >= r.Base && addr < r.Base+r.Size
}

// End returns the first address past the region.
func (r Region) End() uint64 { return r.Base + r.Size }

// Allocator hands out non-overlapping regions, cache-line aligned.
type Allocator struct {
	next    uint64
	align   uint64
	regions []Region
}

// NewAllocator returns an allocator starting at base with the given
// alignment (typically the L2 line size).
func NewAllocator(base, align uint64) *Allocator {
	if align == 0 || align&(align-1) != 0 {
		panic(fmt.Sprintf("mem: alignment %d must be a power of two", align))
	}
	return &Allocator{next: (base + align - 1) &^ (align - 1), align: align}
}

// Alloc reserves size bytes and returns the region.
func (a *Allocator) Alloc(name string, size uint64) Region {
	size = (size + a.align - 1) &^ (a.align - 1)
	r := Region{Name: name, Base: a.next, Size: size}
	a.next += size
	a.regions = append(a.regions, r)
	return r
}

// Regions returns all allocated regions in allocation order.
func (a *Allocator) Regions() []Region { return append([]Region(nil), a.regions...) }
