// Package mem provides the functional (value-carrying) memory image shared
// by all cores, plus a simple region allocator used by workloads to lay
// out their data. Timing is modeled elsewhere; this package answers "what
// value does this address hold once the access completes".
package mem

import "fmt"

// pageShift sizes a memory page at 4096 words (32 KiB), and
// maxDirectPages caps the paged radix at 256 MiB of address space.
// Workload images are laid out contiguously from a low base, so a paged
// array keeps the functional memory sparse without putting a hash map on
// the simulator's hottest path (every load/store resolution reads or
// writes it); addresses beyond the cap fall back to a map so arbitrary
// 64-bit addresses stay usable.
const (
	pageShift      = 12
	pageMask       = 1<<pageShift - 1
	maxDirectPages = 1 << 13
)

// Memory is a sparse 64-bit-word-addressable functional memory. Addresses
// are byte addresses; accesses are 8-byte aligned words (the simulator's
// ISA moves 64-bit values only).
//
// Two paged windows cover the simulator's real traffic: the low window
// starts at address zero (program/workload images), and the high window
// anchors itself at the first out-of-window page written (the software
// queue region sits at a fixed high base, far from the data image).
// Anything outside both windows falls back to the far map.
type Memory struct {
	pages   [][]uint64 // low window: pages [0, maxDirectPages)
	hiBase  uint64     // first page of the high window (valid when hiPages != nil)
	hiPages [][]uint64 // high window: pages [hiBase, hiBase+maxDirectPages)
	far     map[uint64]uint64
	written int

	// arena carves new pages out of geometrically grown blocks, so building
	// a multi-megabyte workload image costs a handful of large allocations
	// instead of one 32 KiB allocation (and GC object) per page.
	arena      []uint64
	arenaPages int // pages in the next block (doubles up to arenaMaxPages)
}

const (
	pageWords     = 1 << pageShift
	arenaMinPages = 4
	arenaMaxPages = 64
)

// newPage returns a zeroed page carved from the arena.
func (m *Memory) newPage() []uint64 {
	if len(m.arena) < pageWords {
		if m.arenaPages < arenaMinPages {
			m.arenaPages = arenaMinPages
		}
		m.arena = make([]uint64, m.arenaPages*pageWords)
		if m.arenaPages < arenaMaxPages {
			m.arenaPages *= 2
		}
	}
	p := m.arena[:pageWords:pageWords]
	m.arena = m.arena[pageWords:]
	return p
}

// New returns an empty memory image.
func New() *Memory { return &Memory{} }

// Read8 returns the 8-byte word at addr (0 if never written).
func (m *Memory) Read8(addr uint64) uint64 {
	w := addr >> 3
	pn := w >> pageShift
	if pn < uint64(len(m.pages)) {
		if p := m.pages[pn]; p != nil {
			return p[w&pageMask]
		}
		return 0
	}
	if pn < maxDirectPages {
		return 0
	}
	if hi := pn - m.hiBase; hi < uint64(len(m.hiPages)) {
		if p := m.hiPages[hi]; p != nil {
			return p[w&pageMask]
		}
		return 0
	}
	return m.far[w]
}

// Write8 stores an 8-byte word at addr.
func (m *Memory) Write8(addr, val uint64) {
	w := addr >> 3
	pn := w >> pageShift
	m.written++
	if pn < maxDirectPages {
		if pn >= uint64(len(m.pages)) {
			grown := make([][]uint64, pn+1)
			copy(grown, m.pages)
			m.pages = grown
		}
		p := m.pages[pn]
		if p == nil {
			p = m.newPage()
			m.pages[pn] = p
		}
		p[w&pageMask] = val
		return
	}
	if m.hiPages == nil {
		// Anchor the high window at the first high page touched.
		m.hiBase = pn
		m.hiPages = make([][]uint64, 0, 16)
	}
	if hi := pn - m.hiBase; hi < maxDirectPages {
		if hi >= uint64(len(m.hiPages)) {
			grown := make([][]uint64, hi+1)
			copy(grown, m.hiPages)
			m.hiPages = grown
		}
		p := m.hiPages[hi]
		if p == nil {
			p = m.newPage()
			m.hiPages[hi] = p
		}
		p[w&pageMask] = val
		return
	}
	if m.far == nil {
		m.far = make(map[uint64]uint64)
	}
	m.far[w] = val
}

// Len returns the number of stores ever performed (a rough occupancy
// signal for diagnostics and tests).
func (m *Memory) Len() int { return m.written }

// Region is a contiguous chunk of the address space.
type Region struct {
	Name string
	Base uint64
	Size uint64
}

// Contains reports whether addr falls inside the region.
func (r Region) Contains(addr uint64) bool {
	return addr >= r.Base && addr < r.Base+r.Size
}

// End returns the first address past the region.
func (r Region) End() uint64 { return r.Base + r.Size }

// Allocator hands out non-overlapping regions, cache-line aligned.
type Allocator struct {
	next    uint64
	align   uint64
	regions []Region
}

// NewAllocator returns an allocator starting at base with the given
// alignment (typically the L2 line size).
func NewAllocator(base, align uint64) *Allocator {
	if align == 0 || align&(align-1) != 0 {
		panic(fmt.Sprintf("mem: alignment %d must be a power of two", align))
	}
	return &Allocator{next: (base + align - 1) &^ (align - 1), align: align}
}

// Alloc reserves size bytes and returns the region.
func (a *Allocator) Alloc(name string, size uint64) Region {
	size = (size + a.align - 1) &^ (a.align - 1)
	r := Region{Name: name, Base: a.next, Size: size}
	a.next += size
	a.regions = append(a.regions, r)
	return r
}

// Regions returns all allocated regions in allocation order.
func (a *Allocator) Regions() []Region { return append([]Region(nil), a.regions...) }
