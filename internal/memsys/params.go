// Package memsys models the memory subsystem of the dual-core CMP: the
// per-core write-through L1s and write-back L2s with their OzQ transaction
// queues, the snoop-based write-invalidate coherence over the shared
// split-transaction bus, the shared L3 and main memory, and the streaming
// machinery layered on top of them (write-forwarding, occupancy counters,
// stream-address generation and the stream cache).
//
// The same package implements three of the paper's four design points:
// EXISTING (plain software queues), MEMOPTI (EXISTING + QLU-aware
// write-forwarding) and SYNCOPTI (produce/consume instructions with
// distributed occupancy counters). HEAVYWT's dedicated store lives in
// package queue; its loads and stores still go through this package.
package memsys

import (
	"fmt"

	"hfstream/internal/bus"
	"hfstream/internal/cache"
	"hfstream/internal/queue"
)

// Params configures the memory subsystem (paper Table 2 defaults via
// DefaultParams).
type Params struct {
	L1 cache.Params // per-core L1D: 16 KB, 4-way, 64 B, 1 cycle
	L2 cache.Params // per-core L2: 256 KB, 8-way, 128 B, 5-9 cycles
	L3 cache.Params // shared L3: 1.5 MB, 12-way, 128 B, >12 cycles

	// MemLat is the main-memory access latency in cycles (141).
	MemLat int
	// Bus configures the shared L3 bus.
	Bus bus.Params

	// OzQSize is the depth of each L2 controller's ordered transaction
	// queue, whose entries double as MSHRs.
	OzQSize int
	// L2Ports is the number of OzQ entries that may access the L2 array
	// per cycle.
	L2Ports int
	// RecircInterval is the retry cadence, in cycles, of OzQ entries that
	// recirculate (blocked by memory-fence ordering); each retry consumes
	// an L2 port, modeling the paper's recirculation port pollution.
	RecircInterval int

	// Layout describes the streaming queue region.
	Layout queue.Layout

	// WriteForward enables QLU-aware write-forwarding of streaming lines
	// to the consumer's L2 (MEMOPTI, SYNCOPTI).
	WriteForward bool
	// ForwardThroughOzQ routes write-forward operations through the
	// producer's OzQ where they compete for L2 ports (MEMOPTI). SYNCOPTI's
	// forwarding logic is in the cache controller and bypasses the OzQ.
	ForwardThroughOzQ bool
	// HWQueues enables produce/consume instruction support in the L2
	// controller with distributed occupancy counters (SYNCOPTI).
	HWQueues bool
	// StreamAddrGenLat is the stream-address-generation latency of
	// produce/consume instructions, overlapped with the L1 access (2).
	StreamAddrGenLat int
	// StreamCacheEntries sizes the fully-associative stream cache
	// (entries of one queue item each; paper: 1 KB = 64 entries).
	// 0 disables the stream cache.
	StreamCacheEntries int
	// ConsumeTimeout is the number of cycles a consume waits on an empty
	// queue before probing the producer to elicit a partial-line flush.
	ConsumeTimeout int

	// QueueRoutes maps queue numbers to their producing and consuming
	// cores for machines with more than two cores (multi-stage
	// pipelines). Nil selects the paper's dual-core default, where each
	// core's peer is the other core. Queues beyond the slice keep the
	// dual-core behaviour.
	QueueRoutes []QueueRoute
}

// QueueRoute names the cores on either end of one queue.
type QueueRoute struct {
	Producer int
	Consumer int
}

// DefaultParams returns the Table 2 baseline with the given queue layout.
func DefaultParams(layout queue.Layout) Params {
	return Params{
		L1:               cache.Params{SizeBytes: 16 << 10, Ways: 4, LineBytes: 64, Latency: 1},
		L2:               cache.Params{SizeBytes: 256 << 10, Ways: 8, LineBytes: 128, Latency: 5},
		L3:               cache.Params{SizeBytes: 1536 << 10, Ways: 12, LineBytes: 128, Latency: 12},
		MemLat:           141,
		Bus:              bus.DefaultParams(),
		OzQSize:          32,
		L2Ports:          4,
		RecircInterval:   4,
		Layout:           layout,
		StreamAddrGenLat: 2,
		ConsumeTimeout:   50,
	}
}

// Validate checks parameter consistency.
func (p Params) Validate() error {
	for _, c := range []cache.Params{p.L1, p.L2, p.L3} {
		if err := c.Validate(); err != nil {
			return err
		}
	}
	if p.L2.LineBytes != p.L3.LineBytes {
		return fmt.Errorf("memsys: L2/L3 line sizes differ (%d vs %d)", p.L2.LineBytes, p.L3.LineBytes)
	}
	if p.OzQSize <= 0 || p.L2Ports <= 0 {
		return fmt.Errorf("memsys: OzQ size %d and ports %d must be positive", p.OzQSize, p.L2Ports)
	}
	if err := p.Bus.Validate(); err != nil {
		return err
	}
	if err := p.Layout.Validate(); err != nil {
		return err
	}
	if p.Layout.LineBytes != p.L2.LineBytes {
		return fmt.Errorf("memsys: queue layout line size %d != L2 line size %d",
			p.Layout.LineBytes, p.L2.LineBytes)
	}
	return nil
}
