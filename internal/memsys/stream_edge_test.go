package memsys

import (
	"testing"

	"hfstream/internal/port"
	"hfstream/internal/queue"
)

// TestSyncOptiDenseLayout runs the Q64 configuration: 64-entry queues
// packed 16 items per line (no flag words), bulk ACKs every 16 items.
func TestSyncOptiDenseLayout(t *testing.T) {
	r := newRig(t, func(p *Params) {
		syncParams(p)
		p.Layout = queue.Layout{NumQueues: 8, Depth: 64, QLU: 16, LineBytes: 128}
	})
	prod, cons := r.fab.Controller(0), r.fab.Controller(1)
	r.step(1)
	const n = 48
	for i := 0; i < n; i++ {
		tok, ok := prod.Produce(r.cycle, 0, uint64(i*2))
		if !ok {
			r.step(1)
			tok, ok = prod.Produce(r.cycle, 0, uint64(i*2))
			if !ok {
				t.Fatalf("produce %d rejected twice", i)
			}
		}
		r.wait(tok)
	}
	r.step(300)
	for i := 0; i < n; i++ {
		tok, ok := cons.Consume(r.cycle, 0)
		if !ok {
			t.Fatalf("consume %d rejected", i)
		}
		r.wait(tok)
		if tok.Value != uint64(i*2) {
			t.Fatalf("consume %d = %d, want %d", i, tok.Value, i*2)
		}
	}
	// 48 items = 3 full 16-item lines -> 3 forwards, 3 bulk ACKs.
	if prod.WrFwdsSent != 3 {
		t.Errorf("forwards = %d, want 3", prod.WrFwdsSent)
	}
	if cons.BulkAcksSent != 3 {
		t.Errorf("bulk ACKs = %d, want 3", cons.BulkAcksSent)
	}
}

// TestSyncOptiSurvivesTinyL2 evicts forwarded stream lines before they
// are consumed; the consumer must demand-fetch and still see FIFO order.
func TestSyncOptiSurvivesTinyL2(t *testing.T) {
	r := newRig(t, func(p *Params) {
		syncParams(p)
		p.L2.SizeBytes = 4 << 10 // 32 lines: constant capacity pressure
		p.L2.Ways = 2
	})
	prod, cons := r.fab.Controller(0), r.fab.Controller(1)
	r.step(1)
	const n = 24 // within the queue depth: the producer never blocks
	done := 0
	for i := 0; i < n; i++ {
		for {
			tok, ok := prod.Produce(r.cycle, 3, uint64(1000+i))
			if ok {
				r.wait(tok)
				break
			}
			r.step(1)
		}
		// Interleave noise loads that thrash the consumer's tiny L2.
		noise := cons.Load(r.cycle, uint64(0x40_0000+i*128))
		r.wait(noise)
		done++
	}
	for i := 0; i < n; i++ {
		var tok *port.Token
		for {
			var ok bool
			tok, ok = cons.Consume(r.cycle, 3)
			if ok {
				break
			}
			r.step(1)
		}
		r.wait(tok)
		if tok.Value != uint64(1000+i) {
			t.Fatalf("consume %d = %d, want %d (FIFO broken under eviction)", i, tok.Value, 1000+i)
		}
	}
}

// TestProbeWithNothingProduced re-arms and eventually succeeds once the
// producer shows up.
func TestProbeWithNothingProduced(t *testing.T) {
	r := newRig(t, func(p *Params) {
		syncParams(p)
		p.ConsumeTimeout = 30
	})
	prod, cons := r.fab.Controller(0), r.fab.Controller(1)
	r.step(1)
	tok, ok := cons.Consume(r.cycle, 5)
	if !ok {
		t.Fatal("consume not accepted into the OzQ")
	}
	// Let several empty probes fire.
	r.step(200)
	if tok.Done(r.cycle) {
		t.Fatal("consume completed without data")
	}
	if cons.ProbesSent == 0 {
		t.Fatal("no probes while starving")
	}
	p, _ := prod.Produce(r.cycle, 5, 42)
	r.wait(p)
	r.wait(tok)
	if tok.Value != 42 {
		t.Fatalf("value %d", tok.Value)
	}
}

// TestMemOptiForwardSkippedIfLineStolen: if the consumer demand-fetches
// the line before the forward wins a port, the forward becomes a no-op
// rather than corrupting state.
func TestMemOptiForwardSkippedIfLineStolen(t *testing.T) {
	r := newRig(t, func(p *Params) {
		p.WriteForward = true
		p.ForwardThroughOzQ = true
		p.L2Ports = 1 // starve the forward work item
	})
	prod, cons := r.fab.Controller(0), r.fab.Controller(1)
	layout := testLayout()
	r.step(1)
	for s := 0; s < 8; s++ {
		r.wait(prod.Store(r.cycle, layout.SlotAddr(0, s), uint64(s)))
		r.wait(prod.Store(r.cycle, layout.FlagAddr(0, s), 1))
	}
	// Steal the line with a demand load before the forward drains.
	ld := cons.Load(r.cycle, layout.SlotAddr(0, 0))
	r.wait(ld)
	if ld.Value != 0 {
		t.Fatalf("stolen line value %d", ld.Value)
	}
	r.step(2000)
	if !r.fab.Quiesced(r.cycle) {
		t.Fatal("forward work item never drained")
	}
}

// TestManyFencesDrain: back-to-back fences interleaved with stores keep
// strict order and all complete.
func TestManyFencesDrain(t *testing.T) {
	r := newRig(t, nil)
	c := r.fab.Controller(0)
	r.step(1)
	var toks []*port.Token
	var kinds []string
	for i := 0; i < 6; i++ {
		for !c.CanAccept() {
			r.step(1)
		}
		toks = append(toks, c.Store(r.cycle, uint64(0x50000+i*4096), uint64(i)))
		kinds = append(kinds, "store")
		for !c.CanAccept() {
			r.step(1)
		}
		toks = append(toks, c.Fence(r.cycle))
		kinds = append(kinds, "fence")
	}
	for _, tok := range toks {
		r.wait(tok)
	}
	for i := 1; i < len(toks); i++ {
		if kinds[i] == "fence" && toks[i].DoneAt < toks[i-1].DoneAt {
			t.Errorf("fence %d completed before its store", i)
		}
	}
}

// TestStreamDrainedAccounting verifies the StreamDrained invariant used
// by the property tests.
func TestStreamDrainedAccounting(t *testing.T) {
	r := newRig(t, syncParams)
	prod, cons := r.fab.Controller(0), r.fab.Controller(1)
	r.step(1)
	if !prod.StreamDrained() || !cons.StreamDrained() {
		t.Fatal("fresh controllers should be drained")
	}
	tok, _ := prod.Produce(r.cycle, 0, 1)
	if prod.StreamDrained() {
		t.Fatal("pending produce but drained")
	}
	r.wait(tok)
	if !prod.StreamDrained() {
		t.Fatal("completed produce but not drained")
	}
	ctok, ok := cons.Consume(r.cycle, 0)
	if !ok {
		t.Fatal("consume rejected")
	}
	if cons.StreamDrained() {
		t.Fatal("pending consume but drained")
	}
	r.wait(ctok)
	if !cons.StreamDrained() {
		t.Fatal("completed consume but not drained")
	}
}
