package memsys

// streamCache models SYNCOPTI's small fully-associative stream cache
// (paper §5): filled by reverse-mapping forwarded lines to (queue, slot)
// pairs, hit entries invalidated by the consume that reads them, fills
// ignored when full.
type streamCache struct {
	capacity int
	entries  map[uint64]uint64 // key(q,slot) -> value

	Hits, MissesEmpty, FillsDropped uint64
}

func newStreamCache(entries int) *streamCache {
	return &streamCache{capacity: entries, entries: make(map[uint64]uint64)}
}

func scKey(q int, slot uint64) uint64 { return uint64(q)<<32 | slot }

// fill inserts an item; full caches drop fills.
func (sc *streamCache) fill(q int, slot uint64, v uint64) {
	if len(sc.entries) >= sc.capacity {
		sc.FillsDropped++
		return
	}
	sc.entries[scKey(q, slot)] = v
}

// take returns and invalidates the entry for (q, slot) if present.
func (sc *streamCache) take(q int, slot uint64) (uint64, bool) {
	k := scKey(q, slot)
	v, ok := sc.entries[k]
	if ok {
		delete(sc.entries, k)
		sc.Hits++
		return v, true
	}
	sc.MissesEmpty++
	return 0, false
}

// len returns the current occupancy.
func (sc *streamCache) len() int { return len(sc.entries) }
