package memsys

import (
	"hfstream/internal/bus"
	"hfstream/internal/cache"
	"hfstream/internal/stats"
)

// pendingFwd is a MEMOPTI write-forward work item waiting for an OzQ slot.
type pendingFwd struct {
	lineAddr uint64
	count    int
}

// mshr is one outstanding-miss slot: a line with a bus transaction in
// flight, plus any snoop action deferred until the fill commits.
type mshr struct {
	addr     uint64
	deferred bool
	snoop    cache.State
}

// mshrFor returns the outstanding-miss slot for la, if any.
func (c *Controller) mshrFor(la uint64) *mshr {
	for i := range c.mshrs {
		if c.mshrs[i].addr == la {
			return &c.mshrs[i]
		}
	}
	return nil
}

// resolve handles an entry whose L2 array access just finished.
func (c *Controller) resolve(cycle uint64, e *ozEntry) {
	switch e.kind {
	case opLoad:
		c.resolveLoad(cycle, e)
	case opStore:
		c.resolveStore(cycle, e)
	case opProduce:
		c.resolveProduce(cycle, e)
	case opConsume:
		c.resolveConsume(cycle, e)
	case opForward:
		c.resolveForward(cycle, e)
	}
}

func (c *Controller) retryLater(cycle uint64, e *ozEntry) {
	e.state = stWaitPort
	e.readyAt = cycle + uint64(c.p.RecircInterval)
}

func (c *Controller) resolveLoad(cycle uint64, e *ozEntry) {
	if c.olderStoreTo(e.addr, e.seq) {
		// Store-to-load ordering: an older store to the same word has not
		// committed yet; recirculate.
		c.RecircRetries++
		c.retryLater(cycle, e)
		return
	}
	if c.l2.Lookup(e.addr) != nil {
		e.tok.Complete(cycle, c.fab.mem.Read8(e.addr))
		e.state = stDone
		c.LoadsServiced++
		c.installL1(e.addr)
		return
	}
	c.needLine(cycle, e, bus.Read)
}

func (c *Controller) resolveStore(cycle uint64, e *ozEntry) {
	if c.olderStoreTo(e.addr, e.seq) {
		// Store-store ordering to the same word.
		c.RecircRetries++
		c.retryLater(cycle, e)
		return
	}
	line := c.l2.Lookup(e.addr)
	switch {
	case line == nil:
		c.needLine(cycle, e, bus.ReadX)
	case line.State == cache.Shared:
		c.needLine(cycle, e, bus.Upgrade)
	default: // Modified: commit
		c.fab.mem.Write8(e.addr, e.val)
		e.tok.Complete(cycle, e.val)
		e.state = stDone
		c.storeDone(e)
		c.StoresServiced++
		c.afterStreamStore(cycle, e, line)
	}
}

// needLine parks the entry until a bus transaction brings its line into
// the required state, merging with an in-flight request when one exists.
func (c *Controller) needLine(cycle uint64, e *ozEntry, kind bus.Kind) {
	la := c.l2.LineAddr(e.addr)
	e.state = stWaitFill
	e.tok.Loc = stats.Bus
	if c.mshrFor(la) != nil {
		return
	}
	c.mshrs = append(c.mshrs, mshr{addr: la})
	req := c.newReq()
	req.Kind, req.Addr, req.Src, req.Owner = kind, la, c.id, c
	c.fab.submit(cycle, req)
}

// ReqNote implements bus.Owner: line-granting transactions re-attribute
// the tokens waiting on the line to whoever services the miss.
func (c *Controller) ReqNote(r *bus.Req, supplier int) {
	switch r.Kind {
	case bus.Read, bus.ReadX, bus.Upgrade:
		c.noteSupplier(r.Addr, supplier)
	}
}

// ReqDone implements bus.Owner: it schedules the completion-side work of
// a granted transaction from the request's fields (the context the old
// per-request closures captured) and recycles the request.
func (c *Controller) ReqDone(r *bus.Req, done uint64) {
	switch r.Kind {
	case bus.Read, bus.ReadX, bus.Upgrade:
		c.schedule(done, event{kind: evFill, addr: r.Addr})
	case bus.WriteForward:
		if c.p.HWQueues {
			c.streamForwardDone(r, done)
		} else {
			c.memoptiForwardDone(r, done)
		}
	case bus.BulkAck:
		c.bulkAckDone(r, done)
	case bus.Probe:
		c.probeDone(r, done)
	}
	c.reqFree = append(c.reqFree, r)
}

// memoptiForwardDone finishes a granted MEMOPTI write-forward: the OzQ
// slot retires when the transfer completes and the consumer installs the
// line at the same cycle.
func (c *Controller) memoptiForwardDone(r *bus.Req, done uint64) {
	c.schedule(done, event{kind: evForwardDone, e: r.Ref.(*ozEntry)})
	la := r.Addr
	var dest *Controller
	if q, _, ok := c.p.Layout.SlotOfAddr(la); ok {
		dest = c.fab.consumerOf(q, c.id)
	} else {
		dest = c.fab.other(c.id)
	}
	dest.schedule(done, event{kind: evAcceptLine, addr: la})
}

// noteSupplier updates the attribution bucket of every token waiting on
// the given line, based on who services the miss.
func (c *Controller) noteSupplier(la uint64, supplier int) {
	var b stats.Bucket
	switch supplier {
	case bus.SupplierL3:
		b = stats.L3
	case bus.SupplierMem:
		b = stats.Mem
	default:
		b = stats.Bus
	}
	for _, e := range c.ozq {
		if e.state == stWaitFill && e.kind != opForward && c.l2.LineAddr(e.addr) == la {
			e.tok.Loc = b
		}
	}
}

// fill completes a line-granting bus transaction. Coherence state was
// already applied at grant time by the fabric (the address/snoop phase);
// fill resolves the waiting entries immediately — the pending miss
// commits as its data arrives, before a rival core's invalidation can
// steal the line again (avoiding the classic write-write livelock; the
// losing core simply re-requests, which is the false-sharing ping-pong
// the paper's software queues exhibit).
func (c *Controller) fill(cycle, la uint64) {
	deferred := false
	var snoop cache.State
	for i := range c.mshrs {
		if c.mshrs[i].addr == la {
			deferred, snoop = c.mshrs[i].deferred, c.mshrs[i].snoop
			last := len(c.mshrs) - 1
			c.mshrs[i] = c.mshrs[last]
			c.mshrs = c.mshrs[:last]
			break
		}
	}
	for _, e := range c.ozq {
		if e.state == stWaitFill && e.kind != opForward && c.l2.LineAddr(e.addr) == la {
			e.state = stAccess
			e.readyAt = cycle
			e.tok.Loc = stats.L2
			c.resolve(cycle, e)
		}
	}
	// Apply snoops that arrived while the fill was in flight.
	if deferred {
		if snoop == cache.Invalid {
			c.applyInvalidate(la)
		} else {
			c.applyDowngrade(la)
		}
	}
}

// install puts a line into the L2, evicting (and writing back) a victim
// if needed, and keeping the write-through L1 inclusive.
func (c *Controller) install(cycle, la uint64, st cache.State) {
	victim, evicted := c.l2.Insert(la, st)
	if evicted {
		c.l1.InvalidateRange(victim.Addr, uint64(c.p.L2.LineBytes))
		if victim.State == cache.Modified {
			c.fab.writeback(cycle, c.id, victim.Addr)
		}
	}
}

func (c *Controller) installL1(addr uint64) {
	c.l1.Insert(addr, cache.Shared)
}

// invalidateLine is called by the fabric when a snoop invalidates one of
// this controller's lines. If this controller has its own fill in flight
// for the line, the invalidation defers until the fill commits.
func (c *Controller) invalidateLine(la uint64) {
	if m := c.mshrFor(la); m != nil {
		m.deferred, m.snoop = true, cache.Invalid
		return
	}
	c.applyInvalidate(la)
}

func (c *Controller) applyInvalidate(la uint64) {
	c.l2.Invalidate(la)
	// The write-through L1 may hold fragments of the line regardless of
	// the L2 state; keep it inclusive.
	c.l1.InvalidateRange(la, uint64(c.p.L2.LineBytes))
}

// downgradeLine is called by the fabric when a snoop hit forces M -> S,
// with the same deferral rule as invalidateLine.
func (c *Controller) downgradeLine(la uint64) {
	if m := c.mshrFor(la); m != nil {
		if !m.deferred || m.snoop != cache.Invalid {
			m.deferred, m.snoop = true, cache.Shared
		}
		return
	}
	c.applyDowngrade(la)
}

func (c *Controller) applyDowngrade(la uint64) {
	if line := c.l2.Peek(la); line != nil && line.State == cache.Modified {
		line.State = cache.Shared
	}
}

// ---- software-queue (EXISTING / MEMOPTI) streaming support ----

// afterStreamStore runs MEMOPTI's QLU-aware forwarding bookkeeping after a
// committed store: once all QLU entries of a streaming line have had their
// full flags set, the line is queued for forwarding to the consumer's L2.
func (c *Controller) afterStreamStore(cycle uint64, e *ozEntry, line *cache.Line) {
	if !c.p.WriteForward || c.p.HWQueues || !c.p.Layout.InRegion(e.addr) {
		return
	}
	slotBytes := uint64(c.p.Layout.SlotBytes())
	if e.addr%slotBytes != 8 || e.val == 0 {
		return // not a flag-set store
	}
	slotInLine := (e.addr % uint64(c.p.Layout.LineBytes)) / slotBytes
	line.StreamWritten |= 1 << slotInLine
	if popcount(line.StreamWritten) >= uint32(c.p.Layout.QLU) {
		line.StreamWritten = 0
		c.pendingForwards = append(c.pendingForwards, pendingFwd{
			lineAddr: line.Addr,
			count:    c.p.Layout.QLU,
		})
		c.injectForwards(cycle)
	}
}

// injectForwards moves queued MEMOPTI forwards into free OzQ slots, where
// they compete with regular requests for L2 ports (the paper's
// write-forwarding OzQ pollution).
func (c *Controller) injectForwards(cycle uint64) {
	for len(c.pendingForwards) > 0 && c.CanAccept() {
		f := c.pendingForwards[0]
		c.pendingForwards = c.pendingForwards[1:]
		e := c.alloc()
		*e = ozEntry{
			kind: opForward, state: stWaitPort, addr: f.lineAddr,
			tok: c.newDonelessToken(), readyAt: cycle + 1,
		}
		c.push(e)
		if e.readyAt < c.scanWake {
			// Forwards injected after compact's pass still count toward
			// the tick's recomputed wake.
			c.scanWake = e.readyAt
		}
	}
}

// resolveForward reads the line out of the local L2 and pushes it to the
// consumer over the shared bus; the OzQ slot is held until the transfer
// completes.
func (c *Controller) resolveForward(cycle uint64, e *ozEntry) {
	line := c.l2.Peek(e.addr)
	if line == nil || line.State != cache.Modified {
		// The line was stolen or demand-fetched before we forwarded it;
		// nothing to do.
		e.state = stDone
		return
	}
	e.state = stWaitFill
	c.WrFwdsSent++
	// The entry rides along as Ref: it stays in stWaitFill (so compact
	// cannot recycle it) until the scheduled evForwardDone retires it.
	req := c.newReq()
	req.Kind, req.Addr, req.Src, req.Aux = bus.WriteForward, e.addr, c.id, c.p.Layout.QLU
	req.Owner, req.Ref = c, e
	c.fab.submit(cycle, req)
}

// acceptForwardLine installs a forwarded software-queue line (MEMOPTI).
func (c *Controller) acceptForwardLine(cycle, la uint64) {
	c.install(cycle, la, cache.Shared)
}

func popcount(x uint32) uint32 {
	var n uint32
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}
