package memsys

import (
	"fmt"

	"hfstream/internal/bus"
	"hfstream/internal/cache"
	"hfstream/internal/evq"
	"hfstream/internal/port"
	"hfstream/internal/stats"
)

type ozKind int

const (
	opLoad ozKind = iota
	opStore
	opFence
	opProduce
	opConsume
	opForward // MEMOPTI write-forward work item occupying an OzQ slot
)

func (k ozKind) String() string {
	switch k {
	case opLoad:
		return "load"
	case opStore:
		return "store"
	case opFence:
		return "fence"
	case opProduce:
		return "produce"
	case opConsume:
		return "consume"
	case opForward:
		return "forward"
	default:
		return fmt.Sprintf("ozKind(%d)", int(k))
	}
}

type ozState int

const (
	stWaitPort ozState = iota // waiting to win an L2 port
	stAccess                  // L2 array access in flight
	stWaitFill                // waiting for a bus transaction on its line
	stWaitSync                // dormant: waiting on queue synchronization
	stDone
)

func (s ozState) String() string {
	switch s {
	case stWaitPort:
		return "wait-port"
	case stAccess:
		return "access"
	case stWaitFill:
		return "wait-fill"
	case stWaitSync:
		return "wait-sync"
	case stDone:
		return "done"
	default:
		return fmt.Sprintf("ozState(%d)", int(s))
	}
}

// ozEntry is one slot of the L2 controller's ordered transaction queue
// (the Itanium 2 OzQ), whose entries also serve as MSHRs.
type ozEntry struct {
	kind  ozKind
	state ozState
	seq   uint64
	addr  uint64 // effective address (line-aligned for opForward)
	val   uint64 // store value
	q     int    // queue number (produce/consume/forward)
	slot  uint64 // cumulative stream slot index (produce/consume)
	tok   *port.Token

	readyAt   uint64 // cycle the current phase ends / next retry
	timeoutAt uint64 // consume empty-queue probe deadline (0 = unset)
	scHit     bool   // consume serviced by the stream cache
}

// evKind discriminates the controller's scheduled events. Events used to
// be closures; the typed form costs no allocation per event and makes the
// schedule inspectable.
type evKind uint8

const (
	evFill          evKind = iota // a bus transaction delivered addr's line
	evForwardDone                 // a MEMOPTI forward's OzQ slot may retire
	evAcceptLine                  // install a forwarded MEMOPTI line
	evAcceptForward               // install forwarded SYNCOPTI queue items
	evBulkAck                     // the consumer bulk-acked n items
	evProbeReply                  // a probe reply (possibly empty) arrived
	evProbeClear                  // clear the probe-outstanding flag only
)

// event is one scheduled controller action; the meaning of the payload
// fields depends on kind. Queue indexes and item counts are small, so
// 32-bit fields keep the event (copied on every heap sift) compact.
type event struct {
	addr uint64   // line address (fills, MEMOPTI forwards)
	slot uint64   // cumulative starting slot (stream forwards)
	e    *ozEntry // the OzQ slot behind a MEMOPTI forward
	q    int32
	n    int32 // item count (forwards, acks, probe replies)
	kind evKind
}

// Controller is one core's private memory-side machinery: L1D, L2 array,
// the OzQ, and the streaming support selected by Params. It implements
// port.Mem always and port.Stream when HWQueues is enabled (SYNCOPTI).
type Controller struct {
	id  int
	p   Params
	fab *Fabric
	l1  *cache.Cache
	l2  *cache.Cache

	ozq     []*ozEntry
	free    []*ozEntry // recycled entries (the OzQ is the kernel's hottest allocation site)
	seq     uint64
	events  evq.Queue[event]
	reqFree []*bus.Req // recycled bus requests (recyclable once ReqDone returns)

	// wakeAt caches the earliest cycle at which ticking this controller
	// can do anything: the next scheduled event, retry, access completion,
	// or probe timeout. Mutations that create work lower it (noteWake);
	// Tick recomputes it from live state. The wake-gated kernel skips
	// Tick calls before it.
	wakeAt uint64
	// scanWake accumulates the OzQ entries' wake contributions during the
	// tick's compact pass (see entryWake); Tick combines it with the event
	// queue's minimum to recompute wakeAt without a dedicated scan.
	scanWake uint64

	// stores lists the OzQ's incomplete store entries in seq order, so the
	// store-to-load ordering check on every load walks only the (few)
	// stores in flight instead of the whole OzQ. Entries join at issue and
	// leave when their store commits.
	stores []*ozEntry

	// mshrs tracks lines with an in-flight bus transaction (MSHR merge):
	// entries that need such a line wait in stWaitFill. Each slot also
	// carries any snoop action (invalidate/downgrade) deferred against the
	// pending fill; deferrals apply after the fill commits its waiting
	// accesses, guaranteeing forward progress under write-write contention
	// (false sharing ping-pong instead of livelock). Outstanding misses
	// are few, so a linear table beats a hash map on the snoop/fill path.
	mshrs []mshr

	// Producer-side per-queue stream state (cumulative item counts).
	sentCum      []uint64 // produce slots assigned at issue
	doneCum      []uint64 // produces completed (data written)
	ackedCum     []uint64 // items bulk-acked by the consumer
	forwardedCum []uint64 // items covered by forwards/probe flushes

	// Consumer-side per-queue stream state.
	consumeIssueCum []uint64 // consume slots assigned at issue
	availCum        []uint64 // items made available by forwards/probes
	consumedCum     []uint64 // consumes completed
	probeOut        []bool   // a probe for this queue is in flight

	// pendingForwards holds MEMOPTI write-forward work items waiting for
	// a free OzQ slot.
	pendingForwards []pendingFwd

	sc *streamCache

	portUsed  int
	portCycle uint64

	// depthMask is Layout.Depth-1 when the depth is a power of two (the
	// standard configurations), letting the hot slot-index reduction mask
	// instead of divide; -1 selects the modulo fallback.
	depthMask int

	// Stats.
	WrFwdsSent     uint64
	BulkAcksSent   uint64
	ProbesSent     uint64
	RecircRetries  uint64
	PortConflicts  uint64
	ProduceStalls  uint64 // produce resolutions deferred on full queue
	ConsumeStalls  uint64 // consume resolutions deferred on empty queue
	LoadsServiced  uint64
	StoresServiced uint64
}

func newController(id int, p Params, fab *Fabric) *Controller {
	nq := p.Layout.NumQueues
	c := &Controller{
		id:  id,
		p:   p,
		fab: fab,
		l1:  cache.New(p.L1),
		l2:  cache.New(p.L2),

		sentCum:         make([]uint64, nq),
		doneCum:         make([]uint64, nq),
		ackedCum:        make([]uint64, nq),
		forwardedCum:    make([]uint64, nq),
		consumeIssueCum: make([]uint64, nq),
		availCum:        make([]uint64, nq),
		consumedCum:     make([]uint64, nq),
		probeOut:        make([]bool, nq),
		wakeAt:          ^uint64(0),
		depthMask:       -1,
	}
	if d := p.Layout.Depth; d&(d-1) == 0 {
		c.depthMask = d - 1
	}
	if p.StreamCacheEntries > 0 {
		c.sc = newStreamCache(p.StreamCacheEntries)
	}
	return c
}

// ID returns the controller's core index.
func (c *Controller) ID() int { return c.id }

// L1 returns the L1D array (for tests and stats).
func (c *Controller) L1() *cache.Cache { return c.l1 }

// L2 returns the L2 array (for tests and stats).
func (c *Controller) L2() *cache.Cache { return c.l2 }

// StreamCacheHits returns stream cache hit count (0 without a stream cache).
func (c *Controller) StreamCacheHits() uint64 {
	if c.sc == nil {
		return 0
	}
	return c.sc.Hits
}

// noteWake lowers the controller's cached wake; call whenever new work
// appears that the next Tick must look at.
func (c *Controller) noteWake(at uint64) {
	if at < c.wakeAt {
		c.wakeAt = at
	}
}

// WakeAt returns the cached earliest cycle at which ticking this
// controller can have any effect. Ticking earlier is a harmless no-op.
func (c *Controller) WakeAt() uint64 { return c.wakeAt }

func (c *Controller) schedule(at uint64, ev event) {
	c.events.Push(at, ev)
	c.noteWake(at)
}

// runEvent executes one due scheduled event.
func (c *Controller) runEvent(cycle uint64, ev event) {
	switch ev.kind {
	case evFill:
		c.fill(cycle, ev.addr)
	case evForwardDone:
		ev.e.state = stDone
	case evAcceptLine:
		c.acceptForwardLine(cycle, ev.addr)
	case evAcceptForward:
		c.acceptStreamForward(cycle, int(ev.q), ev.slot, int(ev.n))
	case evBulkAck:
		c.onBulkAck(cycle, int(ev.q), int(ev.n))
	case evProbeReply:
		c.onProbeReply(cycle, int(ev.q), int(ev.n), ev.slot)
	case evProbeClear:
		c.probeOut[ev.q] = false
	}
}

// newReq returns a zeroed bus request, recycling a retired one when
// possible (requests are recyclable once their ReqDone dispatch returns).
func (c *Controller) newReq() *bus.Req {
	if n := len(c.reqFree); n > 0 {
		r := c.reqFree[n-1]
		c.reqFree = c.reqFree[:n-1]
		*r = bus.Req{}
		return r
	}
	return &bus.Req{}
}

// CanAccept implements port.Mem.
func (c *Controller) CanAccept() bool { return len(c.ozq) < c.p.OzQSize }

// slotIdx reduces a cumulative slot index modulo the queue depth.
func (c *Controller) slotIdx(slot uint64) int {
	if c.depthMask >= 0 {
		return int(slot) & c.depthMask
	}
	return int(slot) % c.p.Layout.Depth
}

func (c *Controller) push(e *ozEntry) *ozEntry {
	c.seq++
	e.seq = c.seq
	c.ozq = append(c.ozq, e)
	c.noteWake(e.readyAt)
	return e
}

// alloc returns a zeroed OzQ entry, reusing a retired one when possible.
// Entries are recycled in compact once they reach stDone; nothing holds a
// reference past that point (tokens are separate objects the core owns).
func (c *Controller) alloc() *ozEntry {
	if n := len(c.free); n > 0 {
		e := c.free[n-1]
		c.free = c.free[:n-1]
		return e
	}
	return &ozEntry{}
}

// Load implements port.Mem. L1 hits complete without an OzQ entry.
func (c *Controller) Load(cycle, addr uint64) *port.Token {
	tok := c.fab.tokens.Get(stats.PreL2)
	if c.l1.Lookup(addr) != nil && !c.olderStoreTo(addr, c.seq+1) {
		tok.Complete(cycle+uint64(c.p.L1.Latency), c.fab.mem.Read8(addr))
		return tok
	}
	tok.Loc = stats.L2
	e := c.alloc()
	*e = ozEntry{kind: opLoad, state: stWaitPort, addr: addr, tok: tok, readyAt: cycle + 1}
	c.push(e)
	return tok
}

// Store implements port.Mem. The L1 is write-through no-allocate; every
// store takes an OzQ entry to the L2.
func (c *Controller) Store(cycle, addr, val uint64) *port.Token {
	tok := c.fab.tokens.Get(stats.L2)
	e := c.alloc()
	*e = ozEntry{kind: opStore, state: stWaitPort, addr: addr, val: val, tok: tok, readyAt: cycle + 1}
	c.push(e)
	c.stores = append(c.stores, e)
	return tok
}

// Fence implements port.Mem.
func (c *Controller) Fence(cycle uint64) *port.Token {
	tok := c.fab.tokens.Get(stats.L2)
	e := c.alloc()
	*e = ozEntry{kind: opFence, state: stWaitPort, tok: tok, readyAt: cycle}
	c.push(e)
	return tok
}

// Produce implements port.Stream for SYNCOPTI: the instruction is renamed
// to a stream address and parked in the OzQ, dormant until the occupancy
// counters admit it.
func (c *Controller) Produce(cycle uint64, q int, v uint64) (*port.Token, bool) {
	if !c.p.HWQueues {
		panic("memsys: Produce on a design without hardware queues")
	}
	if !c.CanAccept() {
		return nil, false
	}
	slot := c.sentCum[q]
	c.sentCum[q]++
	tok := c.fab.tokens.Get(stats.PreL2)
	e := c.alloc()
	*e = ozEntry{
		kind: opProduce, state: stWaitPort, q: q, slot: slot, val: v, tok: tok,
		addr:    c.p.Layout.SlotAddr(q, c.slotIdx(slot)),
		readyAt: cycle + uint64(c.p.StreamAddrGenLat),
	}
	c.push(e)
	return tok, true
}

// Consume implements port.Stream for SYNCOPTI. A stream-cache hit returns
// the value at stream-address-generation latency; the instruction still
// visits the L2 to keep occupancy counters in sync.
func (c *Controller) Consume(cycle uint64, q int) (*port.Token, bool) {
	if !c.p.HWQueues {
		panic("memsys: Consume on a design without hardware queues")
	}
	if !c.CanAccept() {
		return nil, false
	}
	slot := c.consumeIssueCum[q]
	c.consumeIssueCum[q]++
	tok := c.fab.tokens.Get(stats.L2)
	e := c.alloc()
	*e = ozEntry{
		kind: opConsume, state: stWaitPort, q: q, slot: slot, tok: tok,
		addr:    c.p.Layout.SlotAddr(q, c.slotIdx(slot)),
		readyAt: cycle + uint64(c.p.StreamAddrGenLat),
	}
	if c.sc != nil {
		if v, ok := c.sc.take(q, slot); ok {
			// Stream-cache hit: data available at address-generation
			// latency; the OzQ entry continues for bookkeeping only.
			tok.Complete(cycle+uint64(c.p.StreamAddrGenLat), v)
			e.scHit = true
		}
	}
	c.push(e)
	return tok, true
}

// olderStoreTo reports whether an incomplete store to addr's word precedes
// seq in the OzQ (store-to-load ordering). Only the in-flight store list is
// walked; it holds exactly the OzQ's incomplete stores in seq order.
func (c *Controller) olderStoreTo(addr, seq uint64) bool {
	w := addr &^ 7
	for _, e := range c.stores {
		if e.seq >= seq {
			break
		}
		if e.addr&^7 == w {
			return true
		}
	}
	return false
}

// storeDone removes a committed store from the in-flight store list,
// preserving seq order.
func (c *Controller) storeDone(e *ozEntry) {
	for i, s := range c.stores {
		if s == e {
			c.stores = append(c.stores[:i], c.stores[i+1:]...)
			return
		}
	}
}

// Debug returns a human-readable dump of the OzQ and stream state, used
// in deadlock reports.
func (c *Controller) Debug() string {
	s := fmt.Sprintf("ctrl %d: ozq=%d pendingLines=%d events=%d\n", c.id, len(c.ozq), len(c.mshrs), c.events.Len())
	for _, e := range c.ozq {
		s += fmt.Sprintf("  %s state=%d addr=%#x q=%d slot=%d readyAt=%d\n", e.kind, e.state, e.addr, e.q, e.slot, e.readyAt)
	}
	for q := range c.sentCum {
		if c.sentCum[q]+c.consumeIssueCum[q] > 0 {
			s += fmt.Sprintf("  q%d: sent=%d done=%d acked=%d fwd=%d | consIssue=%d avail=%d consumed=%d\n",
				q, c.sentCum[q], c.doneCum[q], c.ackedCum[q], c.forwardedCum[q],
				c.consumeIssueCum[q], c.availCum[q], c.consumedCum[q])
		}
	}
	return s
}

// OzQEntryInfo is a diagnostic snapshot of one OzQ entry.
type OzQEntryInfo struct {
	Kind      string
	State     string
	Addr      uint64
	Q         int
	Slot      uint64
	ReadyAt   uint64
	TimeoutAt uint64
}

// QueueCounters is a diagnostic snapshot of one stream queue's cumulative
// counters at this controller.
type QueueCounters struct {
	Q            int
	SentCum      uint64
	DoneCum      uint64
	AckedCum     uint64
	ForwardedCum uint64
	ConsumeCum   uint64
	AvailCum     uint64
	ConsumedCum  uint64
	ProbeOut     bool
}

// Snapshot is a diagnostic snapshot of a controller's in-flight state,
// used for deadlock forensics.
type Snapshot struct {
	ID           int
	OzQ          []OzQEntryInfo
	PendingLines int
	Events       int
	Queues       []QueueCounters // only queues with any traffic
}

// Snapshot captures the controller's current OzQ and stream-queue state.
func (c *Controller) Snapshot() Snapshot {
	s := Snapshot{ID: c.id, PendingLines: len(c.mshrs), Events: c.events.Len()}
	for _, e := range c.ozq {
		s.OzQ = append(s.OzQ, OzQEntryInfo{
			Kind: e.kind.String(), State: e.state.String(),
			Addr: e.addr, Q: e.q, Slot: e.slot,
			ReadyAt: e.readyAt, TimeoutAt: e.timeoutAt,
		})
	}
	for q := range c.sentCum {
		if c.sentCum[q]+c.consumeIssueCum[q] == 0 {
			continue
		}
		s.Queues = append(s.Queues, QueueCounters{
			Q: q, SentCum: c.sentCum[q], DoneCum: c.doneCum[q],
			AckedCum: c.ackedCum[q], ForwardedCum: c.forwardedCum[q],
			ConsumeCum: c.consumeIssueCum[q], AvailCum: c.availCum[q],
			ConsumedCum: c.consumedCum[q], ProbeOut: c.probeOut[q],
		})
	}
	return s
}

// Quiesced reports whether the controller has no in-flight work.
func (c *Controller) Quiesced() bool {
	return len(c.ozq) == 0 && c.events.Len() == 0 && len(c.mshrs) == 0
}

// Tick advances the controller one cycle. Call after the bus has ticked.
func (c *Controller) Tick(cycle uint64) {
	c.scanWake = ^uint64(0)
	c.tick(cycle)
	// compact (the last full pass of the tick) folded the surviving OzQ
	// entries' wake contributions into scanWake, so recomputing the cached
	// wake needs no extra scan.
	w := c.events.Min()
	if c.scanWake < w {
		w = c.scanWake
	}
	if w <= cycle {
		w = cycle + 1
	}
	c.wakeAt = w
}

func (c *Controller) tick(cycle uint64) {
	c.runEvents(cycle)
	c.portCycle = cycle
	c.portUsed = 0

	fenceBlocked := false // an incomplete fence has been seen in the scan
	for _, e := range c.ozq {
		switch e.state {
		case stDone, stWaitFill:
			continue
		case stWaitSync:
			c.tickDormant(cycle, e)
			continue
		}
		if e.kind == opFence {
			if !c.olderIncomplete(e.seq) {
				e.state = stDone
				e.tok.Complete(cycle, 0)
			} else {
				fenceBlocked = true
			}
			continue
		}
		if e.readyAt > cycle {
			continue
		}
		if fenceBlocked {
			// Memory-fence ordering: the entry recirculates through the
			// OzQ, consuming an L2 port on every retry (paper §4.4).
			if c.takePort() {
				c.RecircRetries++
				e.readyAt = cycle + uint64(c.p.RecircInterval)
			}
			continue
		}
		switch e.state {
		case stWaitPort:
			if !c.takePort() {
				c.PortConflicts++
				continue
			}
			e.state = stAccess
			e.readyAt = cycle + uint64(c.p.L2.Latency)
		case stAccess:
			if n := c.fab.faults.RecircStorm(cycle); n > 0 {
				// Injected fault: the resolution loses its port and
				// recirculates n extra times before trying again.
				c.RecircRetries += n
				e.state = stWaitPort
				e.readyAt = cycle + n*uint64(c.p.RecircInterval)
				continue
			}
			c.resolve(cycle, e)
		}
	}
	c.compact(cycle)
}

func (c *Controller) runEvents(cycle uint64) {
	for {
		ev, ok := c.events.PopDue(cycle)
		if !ok {
			return
		}
		c.runEvent(cycle, ev)
	}
}

func (c *Controller) takePort() bool {
	if c.portUsed >= c.p.L2Ports {
		return false
	}
	c.portUsed++
	return true
}

func (c *Controller) olderIncomplete(seq uint64) bool {
	for _, e := range c.ozq {
		if e.seq >= seq {
			return false
		}
		if e.state != stDone {
			return true
		}
	}
	return false
}

// entryWake returns the cycle at which e can make progress on its own:
// its retry/access-completion cycle, or a dormant consume's probe timeout.
// Entries waiting on a bus fill or on queue synchronization are event-
// driven and contribute no wake (fences wake with the entries they order
// behind).
func entryWake(e *ozEntry) uint64 {
	switch e.state {
	case stWaitSync:
		if e.kind == opConsume && e.timeoutAt > 0 {
			return e.timeoutAt
		}
	case stWaitPort, stAccess:
		if e.kind != opFence {
			return e.readyAt
		}
	}
	return ^uint64(0)
}

func (c *Controller) compact(cycle uint64) {
	w := c.scanWake
	// Read-only prescan: most ticks retire nothing, and rewriting the
	// whole queue of pointers costs a write barrier per entry.
	i, n := 0, len(c.ozq)
	for i < n {
		e := c.ozq[i]
		if e.state == stDone {
			break
		}
		if v := entryWake(e); v < w {
			w = v
		}
		i++
	}
	if i == n {
		c.scanWake = w
		c.injectForwards(cycle)
		return
	}
	kept := c.ozq[:i]
	for ; i < n; i++ {
		e := c.ozq[i]
		if e.state != stDone {
			if v := entryWake(e); v < w {
				w = v
			}
			kept = append(kept, e)
		} else {
			if e.kind == opForward {
				// Hardware-generated work items own their doneless token;
				// recycle it with the slot (cores recycle all the others).
				c.fab.tokens.Put(e.tok)
			}
			*e = ozEntry{}
			c.free = append(c.free, e)
		}
	}
	c.ozq = kept
	c.scanWake = w
	c.injectForwards(cycle)
}
