package memsys

import (
	"testing"

	"hfstream/internal/mem"
	"hfstream/internal/port"
	"hfstream/internal/queue"
)

func testLayout() queue.Layout {
	return queue.Layout{NumQueues: 8, Depth: 32, QLU: 8, LineBytes: 128}
}

type rig struct {
	t     *testing.T
	fab   *Fabric
	img   *mem.Memory
	cycle uint64
}

func newRig(t *testing.T, mutate func(*Params)) *rig {
	t.Helper()
	p := DefaultParams(testLayout())
	if mutate != nil {
		mutate(&p)
	}
	img := mem.New()
	fab, err := NewFabric(p, img, 2)
	if err != nil {
		t.Fatal(err)
	}
	return &rig{t: t, fab: fab, img: img, cycle: 0}
}

func (r *rig) step(n int) {
	for i := 0; i < n; i++ {
		r.cycle++
		r.fab.Tick(r.cycle)
	}
}

// wait advances until the token completes (or fails the test).
func (r *rig) wait(tok *port.Token) uint64 {
	r.t.Helper()
	for i := 0; i < 100000; i++ {
		if tok.Done(r.cycle) {
			return r.cycle
		}
		r.step(1)
	}
	r.t.Fatal("token never completed")
	return 0
}

func TestLoadMissThenL1Hit(t *testing.T) {
	r := newRig(t, nil)
	r.img.Write8(0x1000, 77)
	c := r.fab.Controller(0)

	r.step(1)
	tok := c.Load(r.cycle, 0x1000)
	first := r.wait(tok) - r.cycle + r.wait(tok)
	_ = first
	missLat := tok.DoneAt
	if tok.Value != 77 {
		t.Fatalf("load value %d", tok.Value)
	}
	// Second load to the same line: L1 hit, 1 cycle.
	start := r.cycle
	tok2 := c.Load(r.cycle, 0x1008)
	r.wait(tok2)
	if tok2.DoneAt-start > 2 {
		t.Errorf("L1 hit took %d cycles", tok2.DoneAt-start)
	}
	if missLat <= tok2.DoneAt-start {
		t.Errorf("miss (%d) should be slower than hit", missLat)
	}
}

func TestStoreVisibleToOtherCore(t *testing.T) {
	r := newRig(t, nil)
	c0, c1 := r.fab.Controller(0), r.fab.Controller(1)
	r.step(1)
	st := c0.Store(r.cycle, 0x2000, 123)
	r.wait(st)
	ld := c1.Load(r.cycle, 0x2000)
	r.wait(ld)
	if ld.Value != 123 {
		t.Fatalf("remote load got %d", ld.Value)
	}
	// Now core 1 writes the same line: core 0's copy must be invalidated
	// so its next load sees the new value.
	st2 := c1.Store(r.cycle, 0x2000, 456)
	r.wait(st2)
	ld2 := c0.Load(r.cycle, 0x2000)
	r.wait(ld2)
	if ld2.Value != 456 {
		t.Fatalf("core 0 read stale %d after invalidation", ld2.Value)
	}
}

func TestAtMostOneModifiedCopy(t *testing.T) {
	r := newRig(t, nil)
	c0, c1 := r.fab.Controller(0), r.fab.Controller(1)
	r.step(1)
	// Alternate writers on one line, then check MSI invariant.
	for i := 0; i < 6; i++ {
		var tok *port.Token
		if i%2 == 0 {
			tok = c0.Store(r.cycle, 0x3000, uint64(i))
		} else {
			tok = c1.Store(r.cycle, 0x3000, uint64(i))
		}
		r.wait(tok)
		m := 0
		for _, c := range []*Controller{c0, c1} {
			if line := c.L2().Peek(0x3000); line != nil && line.State.String() == "M" {
				m++
			}
		}
		if m > 1 {
			t.Fatalf("two modified copies after store %d", i)
		}
	}
}

func TestFenceOrdersStores(t *testing.T) {
	r := newRig(t, nil)
	c := r.fab.Controller(0)
	r.step(1)
	// First store misses (cold line, slow); the fence must hold the
	// second store until the first completes.
	st1 := c.Store(r.cycle, 0x4000, 1)
	fe := c.Fence(r.cycle)
	st2 := c.Store(r.cycle, 0x5000, 2)
	r.wait(st2)
	if !(st1.DoneAt <= fe.DoneAt && fe.DoneAt <= st2.DoneAt) {
		t.Errorf("ordering violated: st1@%d fence@%d st2@%d", st1.DoneAt, fe.DoneAt, st2.DoneAt)
	}
}

func TestStoreToLoadSameWord(t *testing.T) {
	r := newRig(t, nil)
	c := r.fab.Controller(0)
	r.step(1)
	c.Store(r.cycle, 0x6000, 9)
	ld := c.Load(r.cycle, 0x6000)
	r.wait(ld)
	if ld.Value != 9 {
		t.Fatalf("load bypassed older store: got %d", ld.Value)
	}
}

func TestOzQBackpressure(t *testing.T) {
	r := newRig(t, func(p *Params) { p.OzQSize = 4 })
	c := r.fab.Controller(0)
	r.step(1)
	n := 0
	for c.CanAccept() {
		c.Store(r.cycle, uint64(0x7000+n*128), uint64(n))
		n++
	}
	if n != 4 {
		t.Errorf("accepted %d entries, want 4", n)
	}
	r.step(2000)
	if !c.CanAccept() {
		t.Error("OzQ never drained")
	}
}

func syncParams(p *Params) {
	p.HWQueues = true
	p.WriteForward = true
}

func TestSyncOptiFIFO(t *testing.T) {
	r := newRig(t, syncParams)
	prod, cons := r.fab.Controller(0), r.fab.Controller(1)
	r.step(1)
	var toks []*port.Token
	for i := 0; i < 20; i++ {
		tok, ok := prod.Produce(r.cycle, 2, uint64(100+i))
		if !ok {
			t.Fatalf("produce %d rejected", i)
		}
		toks = append(toks, tok)
		r.step(3)
	}
	for _, tok := range toks {
		r.wait(tok)
	}
	r.step(500) // let forwards propagate
	for i := 0; i < 20; i++ {
		tok, ok := cons.Consume(r.cycle, 2)
		if !ok {
			t.Fatalf("consume %d rejected", i)
		}
		r.wait(tok)
		if tok.Value != uint64(100+i) {
			t.Fatalf("consume %d = %d, want %d", i, tok.Value, 100+i)
		}
	}
	if prod.WrFwdsSent == 0 {
		t.Error("no write-forwards sent")
	}
	if cons.BulkAcksSent == 0 {
		t.Error("no bulk ACKs sent")
	}
}

func TestSyncOptiFullQueueDormant(t *testing.T) {
	r := newRig(t, syncParams)
	prod := r.fab.Controller(0)
	r.step(1)
	// Produce depth+4 items without any consumer.
	var last *port.Token
	for i := 0; i < 36; i++ {
		for !prod.CanAccept() {
			r.step(1)
		}
		tok, ok := prod.Produce(r.cycle, 0, uint64(i))
		if !ok {
			r.step(1)
			continue
		}
		last = tok
		r.step(2)
	}
	r.step(2000)
	// The overflow produces must still be pending (dormant), not
	// completed: only Depth items fit.
	if last.Done(r.cycle) {
		t.Error("produce beyond queue depth completed without a consumer")
	}
	if prod.ProduceStalls == 0 {
		t.Error("expected produce full-queue stalls")
	}
	// A consumer draining the queue unblocks them.
	cons := r.fab.Controller(1)
	for i := 0; i < 8; i++ {
		tok, ok := cons.Consume(r.cycle, 0)
		if !ok {
			t.Fatal("consume rejected")
		}
		r.wait(tok)
	}
	r.step(500)
	if !last.Done(r.cycle) {
		t.Error("dormant produce never woke after bulk ACK")
	}
}

func TestSyncOptiProbeFlushesPartialLine(t *testing.T) {
	r := newRig(t, func(p *Params) {
		syncParams(p)
		p.ConsumeTimeout = 40
	})
	prod, cons := r.fab.Controller(0), r.fab.Controller(1)
	r.step(1)
	// Produce only 3 items: less than a QLU line, so no forward happens.
	for i := 0; i < 3; i++ {
		tok, _ := prod.Produce(r.cycle, 1, uint64(7+i))
		r.wait(tok)
	}
	// The consume must eventually succeed via the probe path.
	tok, ok := cons.Consume(r.cycle, 1)
	if !ok {
		t.Fatal("consume rejected")
	}
	r.wait(tok)
	if tok.Value != 7 {
		t.Fatalf("consume got %d, want 7", tok.Value)
	}
	if cons.ProbesSent == 0 {
		t.Error("no probe sent for the partial line")
	}
}

func TestStreamCacheHits(t *testing.T) {
	r := newRig(t, func(p *Params) {
		syncParams(p)
		p.StreamCacheEntries = 64
	})
	prod, cons := r.fab.Controller(0), r.fab.Controller(1)
	r.step(1)
	for i := 0; i < 8; i++ { // exactly one line -> one forward
		tok, _ := prod.Produce(r.cycle, 0, uint64(i))
		r.wait(tok)
	}
	r.step(300)
	fast := 0
	for i := 0; i < 8; i++ {
		start := r.cycle
		tok, ok := cons.Consume(r.cycle, 0)
		if !ok {
			t.Fatal("consume rejected")
		}
		r.wait(tok)
		if tok.Value != uint64(i) {
			t.Fatalf("FIFO violated at %d", i)
		}
		if tok.DoneAt-start <= uint64(r.fab.Controller(1).p.StreamAddrGenLat) {
			fast++
		}
	}
	if cons.StreamCacheHits() != 8 {
		t.Errorf("stream cache hits = %d, want 8", cons.StreamCacheHits())
	}
	if fast < 8 {
		t.Errorf("only %d consumes were stream-cache fast", fast)
	}
}

func TestMemOptiForwardTriggersOnFullLine(t *testing.T) {
	r := newRig(t, func(p *Params) {
		p.WriteForward = true
		p.ForwardThroughOzQ = true
	})
	prod := r.fab.Controller(0)
	layout := testLayout()
	r.step(1)
	// Software-queue style: write data + set flag for all 8 slots of the
	// first line of queue 0.
	for s := 0; s < 8; s++ {
		d := prod.Store(r.cycle, layout.SlotAddr(0, s), uint64(s))
		r.wait(d)
		f := prod.Store(r.cycle, layout.FlagAddr(0, s), 1)
		r.wait(f)
	}
	r.step(1000)
	if prod.WrFwdsSent != 1 {
		t.Errorf("write-forwards sent = %d, want 1", prod.WrFwdsSent)
	}
	// The consumer's L2 should now hold the line.
	if r.fab.Controller(1).L2().Peek(layout.LineOf(0, 0)) == nil {
		t.Error("forwarded line absent from consumer L2")
	}
}

func TestExistingSendsNoForwards(t *testing.T) {
	r := newRig(t, nil)
	prod := r.fab.Controller(0)
	layout := testLayout()
	r.step(1)
	for s := 0; s < 8; s++ {
		r.wait(prod.Store(r.cycle, layout.SlotAddr(0, s), uint64(s)))
		r.wait(prod.Store(r.cycle, layout.FlagAddr(0, s), 1))
	}
	r.step(500)
	if prod.WrFwdsSent != 0 {
		t.Errorf("EXISTING sent %d forwards", prod.WrFwdsSent)
	}
}

func TestQuiesced(t *testing.T) {
	r := newRig(t, nil)
	c := r.fab.Controller(0)
	r.step(1)
	if !r.fab.Quiesced(r.cycle) {
		t.Error("fresh fabric not quiesced")
	}
	tok := c.Load(r.cycle, 0x9000)
	if r.fab.Quiesced(r.cycle) {
		t.Error("fabric quiesced with in-flight load")
	}
	r.wait(tok)
	r.step(5)
	if !r.fab.Quiesced(r.cycle) {
		t.Error("fabric not quiesced after drain")
	}
}

func TestPreloadWarmsCaches(t *testing.T) {
	r := newRig(t, nil)
	r.img.Write8(0xA000, 5)
	r.fab.Preload(0xA000)
	c := r.fab.Controller(0)
	r.step(1)
	start := r.cycle
	tok := c.Load(r.cycle, 0xA000)
	r.wait(tok)
	// L2 hit: port + array latency, well under a bus round trip.
	if tok.DoneAt-start > 12 {
		t.Errorf("preloaded load took %d cycles", tok.DoneAt-start)
	}
}

func TestL3EvictionStillCorrect(t *testing.T) {
	// Touch more lines than the L3 holds; values must remain correct.
	r := newRig(t, func(p *Params) {
		// Tiny L3 (4-way, 128B lines, 32 sets) to force capacity misses.
		p.L3.SizeBytes = 16 << 10
		p.L3.Ways = 4
	})
	c := r.fab.Controller(0)
	r.step(1)
	const n = 300
	for i := 0; i < n; i++ {
		r.img.Write8(uint64(0x100000+i*128), uint64(i))
	}
	for i := 0; i < n; i++ {
		tok := c.Load(r.cycle, uint64(0x100000+i*128))
		r.wait(tok)
		if tok.Value != uint64(i) {
			t.Fatalf("load %d got %d", i, tok.Value)
		}
	}
	if r.fab.MemAccesses == 0 {
		t.Error("expected main-memory accesses")
	}
}

func TestControllerDebugNonEmpty(t *testing.T) {
	r := newRig(t, syncParams)
	c := r.fab.Controller(0)
	r.step(1)
	c.Produce(r.cycle, 0, 1)
	if s := c.Debug(); s == "" {
		t.Error("empty debug dump")
	}
}
