package memsys

import (
	"fmt"

	"hfstream/fault"
	"hfstream/internal/bus"
	"hfstream/internal/cache"
	"hfstream/internal/mem"
	"hfstream/internal/port"
)

// Fabric owns the shared part of the memory subsystem: the split-
// transaction bus, the shared L3, main memory timing, and the per-core L2
// controllers. It acts as the snoop broker: coherence state changes are
// applied atomically at bus-grant time (the address/snoop phase), while
// data availability follows the bus's data-phase timing.
type Fabric struct {
	p     Params
	mem   *mem.Memory
	bus   *bus.Bus
	l3    *cache.Cache
	ctrls []*Controller

	// faults, when non-nil, injects deterministic faults into the
	// streaming protocol paths (see package fault).
	faults *fault.Injector

	// tokens is the run-scoped token arena shared by the controllers (and,
	// when the sim kernel wires it through, the cores and sync array).
	tokens *port.TokenPool

	// Stats.
	MemAccesses uint64
	L3Hits      uint64
	L3Misses    uint64
}

// NewFabric builds the memory subsystem for n cores.
func NewFabric(p Params, m *mem.Memory, n int) (*Fabric, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if n < 1 {
		return nil, fmt.Errorf("memsys: need at least one core, got %d", n)
	}
	f := &Fabric{p: p, mem: m, l3: cache.New(p.L3), tokens: port.NewTokenPool()}
	f.bus = bus.New(p.Bus, n, f.handle)
	for i := 0; i < n; i++ {
		f.ctrls = append(f.ctrls, newController(i, p, f))
	}
	return f, nil
}

// SetFaults installs a fault injector on the fabric and its bus. Call
// before the first Tick; a nil injector disables injection.
func (f *Fabric) SetFaults(in *fault.Injector) {
	f.faults = in
	f.bus.Faults = in
}

// Controller returns core i's L2 controller.
func (f *Fabric) Controller(i int) *Controller { return f.ctrls[i] }

// Bus returns the shared bus (for stats).
func (f *Fabric) Bus() *bus.Bus { return f.bus }

// L3 returns the shared L3 array (for stats and tests).
func (f *Fabric) L3() *cache.Cache { return f.l3 }

// Mem returns the functional memory image.
func (f *Fabric) Mem() *mem.Memory { return f.mem }

// Tokens returns the run-scoped token arena so the sim kernel can share
// it with the cores and the sync array.
func (f *Fabric) Tokens() *port.TokenPool { return f.tokens }

// Preload installs a line into the shared L3 and, in shared state, into
// every private L2. It warms the hierarchy before measurement so results
// reflect the paper's steady-state hot loops; regions larger than a cache
// simply wrap its LRU state and keep their natural miss behaviour.
func (f *Fabric) Preload(lineAddr uint64) {
	f.l3.Insert(lineAddr, cache.Shared)
	for _, c := range f.ctrls {
		c.l2.Insert(lineAddr, cache.Shared)
	}
}

// PreloadRange preloads n consecutive lines starting at base, exactly as n
// Preload calls would (each cache keeps its own LRU clock, so the per-line
// interleaving across caches is immaterial) but in bulk: ranges larger than
// a cache skip straight to the tail that survives. The lines must not
// already be present anywhere (preload runs before the first access).
func (f *Fabric) PreloadRange(base uint64, n int) {
	f.l3.InsertRange(base, n, cache.Shared)
	for _, c := range f.ctrls {
		c.l2.InsertRange(base, n, cache.Shared)
	}
}

// Tick advances the whole memory subsystem one cycle.
func (f *Fabric) Tick(cycle uint64) {
	f.bus.Tick(cycle)
	for _, c := range f.ctrls {
		c.Tick(cycle)
	}
}

// TickDue advances only the components whose cached wake time says they
// can do work this cycle. With force set, everything ticks (the referee
// mode the fast-forward goldens are checked against).
func (f *Fabric) TickDue(cycle uint64, force bool) {
	if force || f.bus.WakeAt() <= cycle {
		f.bus.Tick(cycle)
	}
	for _, c := range f.ctrls {
		if force || c.WakeAt() <= cycle {
			c.Tick(cycle)
		}
	}
}

// NextWake returns the earliest future cycle at which any part of the
// memory subsystem can change state without a new request from a core:
// the bus's next grant/drain cycle or any controller's next event, retry,
// or probe timeout. Returns ^uint64(0) when the whole fabric is dormant.
func (f *Fabric) NextWake(cycle uint64) uint64 {
	// The cached per-controller wakes are exact after this cycle's TickDue
	// (a ticked controller just recomputed; an unticked one had nothing to
	// do and every work-creating mutation lowers the cache), so no rescans.
	w := f.bus.NextWake(cycle)
	for _, c := range f.ctrls {
		if c.wakeAt < w {
			w = c.wakeAt
		}
	}
	return w
}

// Quiesced reports whether no transaction is in flight anywhere.
func (f *Fabric) Quiesced(cycle uint64) bool {
	if !f.bus.Idle(cycle) {
		return false
	}
	for _, c := range f.ctrls {
		if !c.Quiesced() {
			return false
		}
	}
	return true
}

func (f *Fabric) submit(cycle uint64, r *bus.Req) { f.bus.Submit(cycle, r) }

// other returns the peer controller in the dual-core configuration.
func (f *Fabric) other(id int) *Controller {
	if len(f.ctrls) != 2 {
		panic("memsys: implicit peer requires the dual-core configuration (set QueueRoutes)")
	}
	return f.ctrls[1-id]
}

// consumerOf returns the controller consuming queue q (messages from the
// producer side: write-forwards).
func (f *Fabric) consumerOf(q, fromID int) *Controller {
	if q < len(f.p.QueueRoutes) {
		return f.ctrls[f.p.QueueRoutes[q].Consumer]
	}
	return f.other(fromID)
}

// producerOf returns the controller producing queue q (messages from the
// consumer side: bulk ACKs and probes).
func (f *Fabric) producerOf(q, fromID int) *Controller {
	if q < len(f.p.QueueRoutes) {
		return f.ctrls[f.p.QueueRoutes[q].Producer]
	}
	return f.other(fromID)
}

// writeback pushes an evicted dirty line to the L3 over the bus.
func (f *Fabric) writeback(cycle uint64, src int, addr uint64) {
	c := f.ctrls[src]
	req := c.newReq()
	req.Kind, req.Addr, req.Src, req.Owner = bus.Writeback, addr, src, c
	f.submit(cycle, req)
}

func (f *Fabric) note(r *bus.Req, supplier int) {
	if r.Owner != nil {
		r.Owner.ReqNote(r, supplier)
	} else if r.Note != nil {
		r.Note(supplier)
	}
}

// handle is the bus grant handler: it performs the snoop, applies
// coherence state transitions, decides the supplier, and returns the
// service latency plus data-phase occupancy.
func (f *Fabric) handle(r *bus.Req, grantCycle uint64) (serviceLat, beats int) {
	lineBytes := f.p.L2.LineBytes
	fullBeats := f.bus.BeatsForBytes(lineBytes)
	slotBytes := f.p.Layout.SlotBytes()

	switch r.Kind {
	case bus.Read, bus.ReadX:
		remoteM := false
		for i, c := range f.ctrls {
			if i == r.Src {
				continue
			}
			line := c.l2.Peek(r.Addr)
			if line == nil {
				continue
			}
			if line.State == cache.Modified {
				remoteM = true
				// The dirty line also lands in the L3 (folded into the
				// cache-to-cache transfer).
				f.l3.Insert(r.Addr, cache.Shared)
			}
			if r.Kind == bus.ReadX {
				c.invalidateLine(r.Addr)
			} else if line.State == cache.Modified {
				c.downgradeLine(r.Addr)
			}
		}
		st := cache.Shared
		if r.Kind == bus.ReadX {
			st = cache.Modified
		}
		f.ctrls[r.Src].install(grantCycle, r.Addr, st)
		if remoteM {
			f.note(r, bus.SupplierRemoteL2)
			return f.p.L2.Latency, fullBeats
		}
		if f.l3.Lookup(r.Addr) != nil {
			f.L3Hits++
			f.note(r, bus.SupplierL3)
			return f.p.L3.Latency, fullBeats
		}
		f.L3Misses++
		f.MemAccesses++
		f.l3.Insert(r.Addr, cache.Shared)
		f.note(r, bus.SupplierMem)
		return f.p.L3.Latency + f.p.MemLat, fullBeats

	case bus.Upgrade:
		for i, c := range f.ctrls {
			if i != r.Src {
				c.invalidateLine(r.Addr)
			}
		}
		if line := f.ctrls[r.Src].l2.Peek(r.Addr); line != nil {
			line.State = cache.Modified
		}
		return 0, 0

	case bus.Writeback:
		f.l3.Insert(r.Addr, cache.Shared)
		return 0, fullBeats

	case bus.WriteForward:
		// Producer keeps a shared copy; the L3 also captures the line so
		// a consumer-side eviction does not force a memory round trip.
		f.ctrls[r.Src].downgradeLine(r.Addr)
		f.l3.Insert(r.Addr, cache.Shared)
		n := r.Aux * slotBytes
		if n <= 0 || n > lineBytes {
			n = lineBytes
		}
		return f.p.L2.Latency, f.bus.BeatsForBytes(n)

	case bus.BulkAck, bus.OccUpdate:
		return 0, 1

	case bus.Probe:
		prod := f.producerOf(r.Q, r.Src)
		start, count := prod.flushForProbe(r.Q)
		r.Slot, r.Aux = start, count
		n := count * slotBytes
		if n < 1 {
			return f.p.L2.Latency, 1
		}
		return f.p.L2.Latency, f.bus.BeatsForBytes(n)
	}
	return 0, 0
}
