package memsys

import (
	"hfstream/internal/bus"
	"hfstream/internal/cache"
	"hfstream/internal/port"
	"hfstream/internal/stats"
)

// newDonelessToken returns a token nobody waits on (hardware-generated
// OzQ work items still carry one so shared code paths stay uniform); it
// is recycled by compact when the work item's slot retires.
func (c *Controller) newDonelessToken() *port.Token { return c.fab.tokens.Get(stats.L2) }

// ---- SYNCOPTI produce path ----

// resolveProduce runs when a produce instruction's L2 access completes:
// the occupancy counters arbitrate whether it may write its queue slot.
// Blocked produces go dormant in their OzQ slot without consuming ports
// (paper §4.4), unlike the recirculating software-queue requests.
func (c *Controller) resolveProduce(cycle uint64, e *ozEntry) {
	if e.slot != c.doneCum[e.q] {
		// In-order completion per queue: wait for the predecessor.
		e.state = stWaitSync
		e.tok.Loc = stats.PreL2
		return
	}
	if e.slot-c.ackedCum[e.q] >= uint64(c.p.Layout.Depth) {
		// Queue full: the producer also must not damage the consumer's
		// spatial locality by wrapping onto a line that is still being
		// consumed; bulk ACK granularity enforces exactly that.
		c.ProduceStalls++
		e.state = stWaitSync
		e.tok.Loc = stats.PreL2
		return
	}
	la := c.l2.LineAddr(e.addr)
	line := c.l2.Lookup(e.addr)
	switch {
	case line == nil:
		c.needLine(cycle, e, bus.ReadX)
		return
	case line.State == cache.Shared:
		c.needLine(cycle, e, bus.Upgrade)
		return
	}
	// Commit the queue item.
	c.fab.mem.Write8(e.addr, e.val)
	c.doneCum[e.q]++
	e.tok.Complete(cycle, e.val)
	e.state = stDone
	c.wakeStream(cycle, e.q, opProduce)
	if c.p.WriteForward && c.doneCum[e.q]%uint64(c.p.Layout.QLU) == 0 {
		c.sendStreamForward(cycle, e.q, la)
	}
}

// sendStreamForward pushes the just-completed streaming line to the
// consumer's L2. SYNCOPTI's forwarding logic lives in the cache controller
// and bypasses the OzQ, so it does not compete for L2 ports.
func (c *Controller) sendStreamForward(cycle uint64, q int, la uint64) {
	count := int(c.doneCum[q] - c.forwardedCum[q])
	if count <= 0 {
		return
	}
	start := c.forwardedCum[q]
	c.forwardedCum[q] = c.doneCum[q]
	c.WrFwdsSent++
	req := c.newReq()
	req.Kind, req.Addr, req.Src = bus.WriteForward, la, c.id
	req.Aux, req.Q, req.Slot = count, q, start
	req.Owner = c
	c.fab.submit(cycle, req)
}

// streamForwardDone finishes a granted SYNCOPTI write-forward: the
// consumer installs the items when the transfer completes.
func (c *Controller) streamForwardDone(r *bus.Req, done uint64) {
	drop, delay := c.fab.faults.ForwardFate(done, r.Q)
	if drop {
		// Injected loss: the forwarded items vanish in flight, so the
		// consumer's availability counter never advances.
		return
	}
	done += delay
	dest := c.fab.consumerOf(r.Q, c.id)
	dest.schedule(done, event{kind: evAcceptForward, q: int32(r.Q), slot: r.Slot, n: int32(r.Aux)})
}

// acceptStreamForward installs forwarded queue items at the consumer:
// the line lands in the L2, the occupancy counter advances, and the
// stream cache is filled by reverse-mapping the line to (queue, slot)
// pairs (paper §5).
func (c *Controller) acceptStreamForward(cycle uint64, q int, start uint64, count int) {
	for i := 0; i < count; i++ {
		slotCum := start + uint64(i)
		addr := c.p.Layout.SlotAddr(q, c.slotIdx(slotCum))
		c.install(cycle, c.l2.LineAddr(addr), cache.Shared)
		if c.sc != nil {
			c.sc.fill(q, slotCum, c.fab.mem.Read8(addr))
		}
	}
	c.availCum[q] += uint64(count)
	c.wakeStream(cycle, q, opConsume)
}

// ---- SYNCOPTI consume path ----

func (c *Controller) resolveConsume(cycle uint64, e *ozEntry) {
	if e.slot != c.consumedCum[e.q] {
		e.state = stWaitSync
		if !e.scHit {
			e.tok.Loc = stats.PreL2
		}
		return
	}
	if c.availCum[e.q] <= e.slot {
		// Queue empty: go dormant and arm the probe timeout that elicits
		// a partial-line flush from the producer (stream termination).
		c.ConsumeStalls++
		e.state = stWaitSync
		if e.timeoutAt == 0 {
			e.timeoutAt = cycle + uint64(c.p.ConsumeTimeout)
		}
		if !e.scHit {
			e.tok.Loc = stats.PreL2
		}
		return
	}
	if e.scHit {
		// Data already delivered from the stream cache; this visit only
		// updates the occupancy counters.
		c.finishConsume(cycle, e, true)
		return
	}
	if c.l2.Lookup(e.addr) == nil {
		// Forwarded line was evicted before we got to it; demand-fetch.
		c.needLine(cycle, e, bus.Read)
		return
	}
	e.tok.Complete(cycle, c.fab.mem.Read8(e.addr))
	c.finishConsume(cycle, e, false)
}

func (c *Controller) finishConsume(cycle uint64, e *ozEntry, scHit bool) {
	c.consumedCum[e.q]++
	e.state = stDone
	if c.sc != nil && !scHit {
		// Keep the stream cache coherent: drop any stale copy.
		c.sc.take(e.q, e.slot)
	}
	c.wakeStream(cycle, e.q, opConsume)
	if c.consumedCum[e.q]%uint64(c.p.Layout.QLU) == 0 {
		c.sendBulkAck(cycle, e.q, c.p.Layout.QLU)
	}
}

// sendBulkAck notifies the producer's occupancy tracker that a whole
// line's worth of items has been consumed.
func (c *Controller) sendBulkAck(cycle uint64, q, n int) {
	c.BulkAcksSent++
	req := c.newReq()
	req.Kind, req.Src, req.Q, req.Aux = bus.BulkAck, c.id, q, n
	req.Owner = c
	c.fab.submit(cycle, req)
}

// bulkAckDone finishes a granted bulk ACK at the consumer side: the
// producer's occupancy tracker advances when the message lands.
func (c *Controller) bulkAckDone(r *bus.Req, done uint64) {
	if c.fab.faults.AckSwallowed(done, r.Q) {
		// Injected loss: the producer's occupancy view goes stale.
		return
	}
	dest := c.fab.producerOf(r.Q, c.id)
	dest.schedule(done, event{kind: evBulkAck, q: int32(r.Q), n: int32(r.Aux)})
}

func (c *Controller) onBulkAck(cycle uint64, q, n int) {
	c.ackedCum[q] += uint64(n)
	c.wakeStream(cycle, q, opProduce)
}

// ---- dormant entries, probes and wakes ----

// tickDormant checks the probe timeout of dormant consumes.
func (c *Controller) tickDormant(cycle uint64, e *ozEntry) {
	if e.kind != opConsume || e.timeoutAt == 0 || cycle < e.timeoutAt {
		return
	}
	if c.availCum[e.q] > e.slot {
		// Data arrived; the wake already requeued us (or will).
		e.timeoutAt = 0
		return
	}
	if !c.probeOut[e.q] {
		c.probeOut[e.q] = true
		c.ProbesSent++
		req := c.newReq()
		req.Kind, req.Src, req.Q = bus.Probe, c.id, e.q
		req.Owner = c
		c.fab.submit(cycle, req)
	}
	e.timeoutAt = cycle + uint64(c.p.ConsumeTimeout)
}

// probeDone finishes a granted probe. The grant handler stowed the flush
// payload in r.Aux (count) and r.Slot (start).
func (c *Controller) probeDone(r *bus.Req, done uint64) {
	q := r.Q
	if r.Aux > 0 {
		// Item-carrying flushes travel the forward path and share its
		// injected fate; empty replies carry nothing to lose.
		drop, delay := c.fab.faults.ForwardFate(done, q)
		if drop {
			// Still clear the probe-outstanding flag so the consumer keeps
			// probing (and the hang is detectable).
			c.schedule(done, event{kind: evProbeClear, q: int32(q)})
			return
		}
		done += delay
	}
	c.schedule(done, event{kind: evProbeReply, q: int32(q), n: int32(r.Aux), slot: r.Slot})
}

// onProbeReply installs the partial-line flush elicited by a probe.
// count items starting at cumulative slot start become available.
func (c *Controller) onProbeReply(cycle uint64, q, count int, start uint64) {
	c.probeOut[q] = false
	if count > 0 {
		c.acceptStreamForward(cycle, q, start, count)
	}
}

// flushForProbe runs at the producer when a probe is granted: it returns
// the items produced but not yet forwarded and marks them forwarded.
func (c *Controller) flushForProbe(q int) (start uint64, count int) {
	start = c.forwardedCum[q]
	count = int(c.doneCum[q] - c.forwardedCum[q])
	if count > 0 {
		c.forwardedCum[q] = c.doneCum[q]
		// The flushed line(s) leave this cache in shared state.
		for i := 0; i < count; i++ {
			addr := c.p.Layout.SlotAddr(q, c.slotIdx(start+uint64(i)))
			c.downgradeLine(c.l2.LineAddr(addr))
		}
	}
	return start, count
}

// wakeStream requeues dormant produce/consume entries of queue q so they
// re-check their synchronization condition.
func (c *Controller) wakeStream(cycle uint64, q int, kind ozKind) {
	for _, e := range c.ozq {
		if e.state == stWaitSync && e.kind == kind && e.q == q {
			e.state = stWaitPort
			e.readyAt = cycle
		}
	}
}

// StreamDrained reports whether all streaming state is quiescent: every
// produced item was consumed.
func (c *Controller) StreamDrained() bool {
	for q := range c.sentCum {
		if c.sentCum[q] != c.doneCum[q] {
			return false
		}
	}
	for q := range c.consumeIssueCum {
		if c.consumeIssueCum[q] != c.consumedCum[q] {
			return false
		}
	}
	return true
}
