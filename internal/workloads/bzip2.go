package workloads

import (
	"hfstream/internal/asm"
	"hfstream/internal/isa"
	"hfstream/internal/mem"
)

// bzip2 parameters: groups of symbols decoded by a two-deep loop nest.
// Both loop levels communicate (inner: decoded symbols on q0; outer: the
// per-group header checksum on q1, produced only after the producer
// finishes the group's inner iterations). The two threads run at nearly
// equal per-group rates with bursty phase alternation — the consumer
// stops draining symbols during its per-group bookkeeping — so the
// benchmark has poor decoupling at the outer-loop level and is the one
// most sensitive to inter-core transit latency (paper Figure 6).
const (
	bzipGroups = 20
	bzipK      = 128 // symbols per group (exceeds the 32-entry queue)
)

// buildBzip2 is 256.bzip2's getAndMoveToFrontDecode loop, hand-partitioned
// (the IR models single-level loops only; the StreamIt benchmarks in the
// paper were likewise hand-parallelized).
func buildBzip2() *Benchmark {
	a := newAlloc()
	syms := a.Alloc("bzip2.syms", bzipGroups*bzipK*8)
	hdrs := a.Alloc("bzip2.hdrs", bzipGroups*8)
	out := a.Alloc("bzip2.out", 128)

	prod := bzip2Producer(syms, hdrs)
	cons := bzip2Consumer(out)
	single := bzip2Single(syms, hdrs, out)

	return &Benchmark{
		Name: "bzip2", Suite: "SPEC CINT2000", Function: "getAndMoveToFrontDecode", ExecPct: 17,
		Iterations:   bzipGroups * bzipK,
		Out:          out,
		InputRegions: a.Regions(),
		hand: &handPartition{
			threads: [2]*isa.Program{prod, cons},
			single:  single,
			queues:  2,
		},
		setup: func(img *mem.Memory) {
			r := newRng(9)
			for i := 0; i < bzipGroups*bzipK; i++ {
				img.Write8(syms.Base+uint64(i*8), uint64(r.intn(256)))
			}
			for g := 0; g < bzipGroups; g++ {
				img.Write8(hdrs.Base+uint64(g*8), uint64(r.intn(1<<16)))
			}
		},
	}
}

// selectorChain emits the per-group selector/table recomputation: a long
// serial multiply chain (real getAndMoveToFrontDecode recomputes
// unzftab/selector state between groups). rState accumulates, rHdr is the
// group header, rT is scratch.
func selectorChain(b *asm.Builder, rState, rHdr, rT isa.Reg) {
	shifts := []int64{3, 5, 7, 4, 6, 3, 5, 7, 4, 6, 3, 5, 7, 4, 6, 3, 5, 7, 4, 6, 3, 5, 7, 4}
	b.Xor(rState, rState, rHdr)
	for _, s := range shifts {
		b.Mul(rT, rState, rHdr)
		b.ShrI(rT, rT, s)
		b.Xor(rState, rState, rT)
	}
}

// bzip2Producer walks the symbol stream: the front-end stage. Its inner
// loop is unrolled and fast (it slams each group into the queue faster
// than the consumer drains it, hitting the queue-full boundary), while
// its per-group selector recomputation is a long serial chain during
// which nothing is produced and the consumer drains the queue dry. The
// resulting full/empty oscillation each group is what makes bzip2
// sensitive to interconnect transit latency (paper Figure 6).
func bzip2Producer(syms, hdrs mem.Region) *isa.Program {
	b := asm.NewBuilder("bzip2.t0")
	b.MovI(1, int64(syms.Base)) // r1 = symbol pointer
	b.MovI(2, int64(hdrs.Base)) // r2 = header pointer
	b.MovI(3, bzipK)            // r3 = inner trip count
	b.MovI(4, bzipGroups)       // r4 = outer trip count
	b.MovI(5, 0)                // r5 = group index
	b.MovI(12, 1)               // r12 = selector state
	b.Label("outer")
	b.MovI(6, 0) // r6 = inner index
	b.Label("inner")
	b.Ld(7, 1, 0) // 4-way unrolled symbol streaming
	b.Ld(16, 1, 8)
	b.Ld(17, 1, 16)
	b.Ld(18, 1, 24)
	b.Produce(0, 7)
	b.Produce(0, 16)
	b.Produce(0, 17)
	b.Produce(0, 18)
	b.AddI(1, 1, 32)
	b.AddI(6, 6, 4)
	b.CmpLT(9, 6, 3)
	b.Bnez(9, "inner")
	b.Ld(8, 2, 0)   // r8 = *hdr
	b.AddI(2, 2, 8) // hdr++
	selectorChain(b, 12, 8, 13)
	b.Produce(1, 12) // q1 <- group selector state
	b.AddI(5, 5, 1)  // gi++
	b.CmpLT(9, 5, 4) // gi < G
	b.Bnez(9, "outer")
	b.Halt()
	return b.MustProgram()
}

func bzip2Consumer(out mem.Region) *isa.Program {
	b := asm.NewBuilder("bzip2.t1")
	b.MovI(1, 0) // r1 = MTF accumulator
	b.MovI(2, 0) // r2 = selector sum
	b.MovI(3, bzipK)
	b.MovI(4, bzipGroups)
	b.MovI(5, 0)
	b.MovI(10, int64(out.Base))
	b.Label("outer")
	b.MovI(6, 0)
	b.Label("inner")
	b.Consume(7, 0)  // symbols, 4-way unrolled
	b.Consume(16, 0) //
	b.Consume(17, 0) //
	b.Consume(18, 0) //
	b.Xor(11, 1, 7)  // MTF-ish mix
	b.Add(12, 11, 16)
	b.Add(13, 12, 17)
	b.Add(1, 13, 18)
	b.AddI(6, 6, 4)
	b.CmpLT(9, 6, 3)
	b.Bnez(9, "inner")
	b.Consume(8, 1) // group selector state
	b.Add(2, 2, 8)
	b.St(10, 0, 1)
	b.St(10, 8, 2)
	b.AddI(5, 5, 1)
	b.CmpLT(9, 5, 4)
	b.Bnez(9, "outer")
	b.Halt()
	return b.MustProgram()
}

// bzip2Single is the unpartitioned loop nest (the Figure 9 baseline).
func bzip2Single(syms, hdrs, out mem.Region) *isa.Program {
	b := asm.NewBuilder("bzip2.single")
	b.MovI(1, int64(syms.Base))
	b.MovI(2, int64(hdrs.Base))
	b.MovI(3, bzipK)
	b.MovI(4, bzipGroups)
	b.MovI(5, 0)
	b.MovI(10, int64(out.Base))
	b.MovI(13, 0) // r13 = MTF accumulator
	b.MovI(14, 0) // r14 = selector sum
	b.MovI(12, 1) // r12 = selector state
	b.Label("outer")
	b.MovI(6, 0)
	b.Label("inner")
	b.Ld(7, 1, 0)
	b.Ld(16, 1, 8)
	b.Ld(17, 1, 16)
	b.Ld(18, 1, 24)
	b.AddI(1, 1, 32)
	b.Xor(11, 13, 7)
	b.Add(21, 11, 16)
	b.Add(22, 21, 17)
	b.Add(13, 22, 18)
	b.AddI(6, 6, 4)
	b.CmpLT(9, 6, 3)
	b.Bnez(9, "inner")
	b.Ld(8, 2, 0)
	b.AddI(2, 2, 8)
	selectorChain(b, 12, 8, 15)
	b.Add(14, 14, 12)
	b.St(10, 0, 13)
	b.St(10, 8, 14)
	b.AddI(5, 5, 1)
	b.CmpLT(9, 5, 4)
	b.Bnez(9, "outer")
	b.Halt()
	return b.MustProgram()
}
