package workloads_test

import (
	"testing"

	"hfstream/internal/dswp"
	"hfstream/internal/isa"
	"hfstream/internal/workloads"
)

// partitionOf returns the DSWP partition of an IR benchmark.
func partitionOf(t *testing.T, name string) *dswp.Result {
	t.Helper()
	b, err := workloads.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	if b.Loop == nil {
		t.Fatalf("%s has no IR", name)
	}
	res, err := dswp.Partition(b.Loop)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestWcPartitionStructure pins down the paper's wc characterization:
// three consumes per consumer iteration, replicated counted control.
func TestWcPartitionStructure(t *testing.T) {
	res := partitionOf(t, "wc")
	if res.QueueCount != 3 {
		t.Errorf("wc queues = %d, want 3 (the paper's three consumes)", res.QueueCount)
	}
	if res.CondStreamed {
		t.Error("wc's counted control should be replicated")
	}
	consumes := 0
	for _, in := range res.Threads[1].Instrs {
		if in.Op == isa.Consume {
			consumes++
		}
	}
	if consumes != 3 {
		t.Errorf("wc consumer has %d consumes per iteration, want 3", consumes)
	}
}

// TestMcfPartitionStructure: the pointer chase forces a streamed exit
// condition owned by the first stage (paper Figure 2's while(ptr) form).
func TestMcfPartitionStructure(t *testing.T) {
	res := partitionOf(t, "mcf")
	if !res.CondStreamed {
		t.Error("mcf's load-dependent exit must be streamed")
	}
	if len(res.Replicated) != 0 {
		t.Error("nothing is replicable in mcf's control slice")
	}
	// The producer runs the traversal: it must contain both loads.
	loads := 0
	for _, in := range res.Threads[0].Instrs {
		if in.Op == isa.Ld {
			loads++
		}
	}
	if loads == 0 {
		t.Error("mcf stage 0 has no loads; the chase moved out of the front end")
	}
}

// TestFirPartitionStructure: the delay line needs both a direct and a
// loop-carried crossing of the sample value.
func TestFirPartitionStructure(t *testing.T) {
	res := partitionOf(t, "fir")
	direct, carried := 0, 0
	cons := res.Threads[1]
	atEnd := false
	for _, in := range cons.Instrs {
		if in.Op == isa.Consume {
			if atEnd {
				carried++
			} else {
				direct++
			}
		}
		if in.Op == isa.Mov || in.Op.IsBranch() {
			atEnd = true
		}
	}
	if direct == 0 {
		t.Error("fir consumer has no top-of-body consumes")
	}
	if res.QueueCount < 2 {
		t.Errorf("fir should cross at least a direct and a carried value, got %d queues", res.QueueCount)
	}
}

// TestFpKernelsUseFpUnits: the FP benchmarks must actually exercise FP
// functional units in their consumer stage.
func TestFpKernelsUseFpUnits(t *testing.T) {
	for _, name := range []string{"art", "equake", "fir", "fft2"} {
		res := partitionOf(t, name)
		fp := 0
		for _, p := range res.Threads {
			for _, in := range p.Instrs {
				if in.Op.FU() == isa.FUFP {
					fp++
				}
			}
		}
		if fp < 2 {
			t.Errorf("%s uses only %d FP instructions", name, fp)
		}
	}
}

// TestIntegerKernelsAvoidFp: the integer benchmarks stay integer.
func TestIntegerKernelsAvoidFp(t *testing.T) {
	for _, name := range []string{"wc", "adpcmdec", "epicdec", "mcf"} {
		res := partitionOf(t, name)
		for _, p := range res.Threads {
			for _, in := range p.Instrs {
				if in.Op.FU() == isa.FUFP {
					t.Errorf("%s contains FP instruction %v", name, in)
				}
			}
		}
	}
}

// TestRegionSizing pins the memory-behaviour knobs: equake's vector
// misses the L2, mcf's pool exceeds the L3, wc stays cache-resident.
func TestRegionSizing(t *testing.T) {
	sizes := map[string]uint64{}
	for _, b := range workloads.All() {
		var total uint64
		for _, r := range b.InputRegions {
			total += r.Size
		}
		sizes[b.Name] = total
	}
	if sizes["mcf"] < 3<<20 {
		t.Errorf("mcf footprint %d, should exceed the 1.5MB L3", sizes["mcf"])
	}
	if sizes["equake"] < 512<<10 {
		t.Errorf("equake footprint %d, should exceed the 256KB L2", sizes["equake"])
	}
	if sizes["wc"] > 128<<10 {
		t.Errorf("wc footprint %d, should be cache-resident", sizes["wc"])
	}
}
