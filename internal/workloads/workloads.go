// Package workloads defines the paper's nine benchmark loops (Table 1 and
// the two StreamIt kernels) as loop-IR kernels whose instruction mix,
// communication frequency and memory behaviour match the published
// characterization: communication once every 5-20 dynamic application
// instructions, FP-heavy StreamIt/art/equake kernels, pointer-chasing
// memory-bound mcf, and bzip2's two-deep loop nest with inter-thread
// communication at both levels.
//
// The original SPEC/Mediabench sources and the authors' DSWP-modified
// OpenIMPACT compiler are not available; these kernels are the synthetic
// equivalents documented in DESIGN.md. Eight are partitioned by the
// package dswp implementation; bzip2's nested loop is hand-partitioned
// (as the paper's StreamIt codes were).
package workloads

import (
	"fmt"
	"math"

	"hfstream/internal/dswp"
	"hfstream/internal/ir"
	"hfstream/internal/isa"
	"hfstream/internal/mem"
)

// Benchmark is one workload: a loop kernel plus its data environment.
type Benchmark struct {
	Name     string
	Suite    string
	Function string
	// ExecPct is the fraction of whole-program execution time the paper
	// attributes to this loop (Table 1).
	ExecPct int
	// Iterations is the simulated loop trip count.
	Iterations int

	// Loop is the IR kernel; nil for hand-partitioned benchmarks.
	Loop *ir.Loop

	// Out is the region whose final contents define correctness.
	Out mem.Region
	// InputRegions lists the benchmark's data regions; the harness
	// preloads them into the cache hierarchy so measurements reflect the
	// paper's warmed, steady-state loops rather than compulsory misses.
	// Regions larger than a cache keep their natural miss behaviour
	// (mcf's 4MB pool still runs out of the L3/memory).
	InputRegions []mem.Region

	setup func(img *mem.Memory)
	hand  *handPartition
}

// handPartition carries pre-built thread programs for kernels the IR
// cannot express (bzip2's nested loop).
type handPartition struct {
	threads [2]*isa.Program
	single  *isa.Program
	queues  int
}

// Setup writes the benchmark's input data into the image.
func (b *Benchmark) Setup(img *mem.Memory) {
	if b.setup != nil {
		b.setup(img)
	}
}

// Pipelined returns the two-thread pipelined programs (with
// produce/consume instructions) and the number of queues used.
func (b *Benchmark) Pipelined() ([2]*isa.Program, int, error) {
	if b.hand != nil {
		return b.hand.threads, b.hand.queues, nil
	}
	res, err := dswp.Partition(b.Loop)
	if err != nil {
		return [2]*isa.Program{}, 0, fmt.Errorf("workloads: %s: %w", b.Name, err)
	}
	return [2]*isa.Program{res.Threads[0], res.Threads[1]}, res.QueueCount, nil
}

// Single returns the single-threaded version of the kernel (the Figure 9
// baseline).
func (b *Benchmark) Single() (*isa.Program, error) {
	if b.hand != nil {
		return b.hand.single, nil
	}
	p, err := dswp.Single(b.Loop)
	if err != nil {
		return nil, fmt.Errorf("workloads: %s: %w", b.Name, err)
	}
	return p, nil
}

// ByName returns the named benchmark or an error listing valid names.
func ByName(name string) (*Benchmark, error) {
	for _, b := range All() {
		if b.Name == name {
			return b, nil
		}
	}
	names := ""
	for _, b := range All() {
		names += " " + b.Name
	}
	return nil, fmt.Errorf("workloads: unknown benchmark %q (have:%s)", name, names)
}

// All returns the nine benchmarks in the paper's figure order.
func All() []*Benchmark {
	return []*Benchmark{
		buildArt(),
		buildEquake(),
		buildMcf(),
		buildBzip2(),
		buildAdpcmdec(),
		buildEpicdec(),
		buildWc(),
		buildFir(),
		buildFft2(),
	}
}

// rng is a small deterministic xorshift64* generator so workload data is
// reproducible across runs and platforms.
type rng struct{ s uint64 }

func newRng(seed uint64) *rng {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &rng{s: seed}
}

func (r *rng) next() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 0x2545f4914f6cdd1d
}

// intn returns a value in [0, n).
func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// float returns a value in [0, 1).
func (r *rng) float() float64 { return float64(r.next()>>11) / float64(1<<53) }

// fbits returns the bit pattern of a random float in [lo, hi).
func (r *rng) fbits(lo, hi float64) uint64 {
	return math.Float64bits(lo + r.float()*(hi-lo))
}

// workload data lives above the program/result scratch space and well
// below the queue region.
const dataBase = 0x10_0000

func newAlloc() *mem.Allocator { return mem.NewAllocator(dataBase, 128) }
