package workloads

import (
	"math"

	"hfstream/internal/ir"
	"hfstream/internal/isa"
	"hfstream/internal/mem"
)

// counted sets up an N-iteration counted loop and returns the index node
// (values 0..N-1). The exit condition is pure arithmetic, so DSWP
// replicates it into both threads.
func counted(l *ir.Loop, n int) *ir.Node {
	idx := l.Counter(-1, 1)
	cond := l.Op(isa.CmpLT, ir.V(idx), ir.C(int64(n-1)))
	l.SetExit(cond)
	return idx
}

// buildWc is the Unix `wc` cnt loop: the tightest kernel (100% of
// execution time). The producer classifies each character; the consumer
// maintains line/word counters. Three values cross the pipeline each
// iteration (the paper notes wc's three consumes per iteration).
func buildWc() *Benchmark {
	const n = 2500
	a := newAlloc()
	text := a.Alloc("wc.text", n*8)
	out := a.Alloc("wc.out", 128)

	l := ir.NewLoop("wc")
	idx := counted(l, n)
	off := l.Op(isa.ShlI, ir.V(idx), ir.C(3))
	addr := l.Op(isa.AddI, ir.V(off), ir.C(int64(text.Base)))
	c := l.Load(&text, ir.V(addr), 0)
	isNL := l.Op(isa.CmpEQ, ir.V(c), ir.C(10))
	isSP := l.Op(isa.CmpEQ, ir.V(c), ir.C(32))
	// The character classification belongs to the front-end stage, as in
	// the paper's partition (its consumer performs three consumes per
	// iteration: the newline flag plus direct and carried uses of the
	// space flag).
	l.Pin(isNL, 0)
	l.Pin(isSP, 0)

	lines := l.Acc(isa.Add, ir.V(isNL), 0)
	notSP := l.Op(isa.Xor, ir.V(isSP), ir.C(1))
	start := l.Op(isa.And, ir.Carried(isSP, 1), ir.V(notSP))
	words := l.Acc(isa.Add, ir.V(start), 0)
	l.Store(&out, ir.C(int64(out.Base)), 0, ir.V(lines))
	l.Store(&out, ir.C(int64(out.Base)), 8, ir.V(words))

	return &Benchmark{
		Name: "wc", Suite: "Unix utility", Function: "cnt", ExecPct: 100,
		Iterations: n, Loop: l, Out: out, InputRegions: a.Regions(),
		setup: func(img *mem.Memory) {
			r := newRng(1)
			for i := 0; i < n; i++ {
				var ch uint64
				switch v := r.intn(100); {
				case v < 5:
					ch = 10 // newline
				case v < 22:
					ch = 32 // space
				default:
					ch = uint64(97 + r.intn(26))
				}
				img.Write8(text.Base+uint64(i*8), ch)
			}
		},
	}
}

// buildAdpcmdec is the Mediabench ADPCM decoder loop: a tight integer
// kernel with carried predictor/step state in the consumer.
func buildAdpcmdec() *Benchmark {
	const n = 2000
	a := newAlloc()
	input := a.Alloc("adpcm.in", n*8)
	out := a.Alloc("adpcm.out", 128)

	l := ir.NewLoop("adpcmdec")
	idx := counted(l, n)
	off := l.Op(isa.ShlI, ir.V(idx), ir.C(3))
	addr := l.Op(isa.AddI, ir.V(off), ir.C(int64(input.Base)))
	delta := l.Load(&input, ir.V(addr), 0)

	sign := l.Op(isa.AndI, ir.V(delta), ir.C(8))
	mag := l.Op(isa.AndI, ir.V(delta), ir.C(7))
	// Step-size adaptation: a bounded carried pair (sum then mask).
	sAdj := l.Op(isa.ShlI, ir.V(mag), ir.C(2))
	var sMask *ir.Node
	sSum := l.Op(isa.Add, ir.V(sAdj), ir.C(0)) // patched below to carry sMask
	sMask = l.Op(isa.AndI, ir.V(sSum), ir.C(255))
	sSum.Args[1] = ir.Carried(sMask, 16)
	// Predictor update.
	d1 := l.Op(isa.Mul, ir.V(mag), ir.Carried(sMask, 16))
	d2 := l.Op(isa.ShrI, ir.V(d1), ir.C(3))
	d3 := l.Op(isa.Xor, ir.V(d2), ir.V(sign))
	val := l.Acc(isa.Add, ir.V(d3), 0)
	chk := l.Acc(isa.Xor, ir.V(val), 0)
	l.Store(&out, ir.C(int64(out.Base)), 0, ir.V(val))
	l.Store(&out, ir.C(int64(out.Base)), 8, ir.V(chk))

	return &Benchmark{
		Name: "adpcmdec", Suite: "Mediabench", Function: "adpcm_decoder", ExecPct: 98,
		Iterations: n, Loop: l, Out: out, InputRegions: a.Regions(),
		setup: func(img *mem.Memory) {
			r := newRng(2)
			for i := 0; i < n; i++ {
				img.Write8(input.Base+uint64(i*8), uint64(r.intn(16)))
			}
		},
	}
}

// buildEquake is 183.equake's smvp sparse matrix-vector kernel: indirect
// FP loads over a ~1MB vector (L2-resident data does not fit; most vector
// accesses hit the L3).
func buildEquake() *Benchmark {
	const (
		n        = 2000
		vecWords = 128 * 1024 // 1 MB vector
	)
	a := newAlloc()
	colidx := a.Alloc("equake.colidx", n*8)
	avals := a.Alloc("equake.avals", n*8)
	vec := a.Alloc("equake.vec", vecWords*8)
	out := a.Alloc("equake.out", 128)

	l := ir.NewLoop("equake")
	idx := counted(l, n)
	off := l.Op(isa.ShlI, ir.V(idx), ir.C(3))
	iaddr := l.Op(isa.AddI, ir.V(off), ir.C(int64(colidx.Base)))
	col := l.Load(&colidx, ir.V(iaddr), 0)
	voff := l.Op(isa.ShlI, ir.V(col), ir.C(3))
	vaddr := l.Op(isa.AddI, ir.V(voff), ir.C(int64(vec.Base)))
	v := l.Load(&vec, ir.V(vaddr), 0)
	aaddr := l.Op(isa.AddI, ir.V(off), ir.C(int64(avals.Base)))
	av := l.Load(&avals, ir.V(aaddr), 0)

	prod := l.Op(isa.FMul, ir.V(av), ir.V(v))
	acc := l.Acc(isa.FAdd, ir.V(prod), 0)
	scaled := l.Op(isa.FMul, ir.V(prod), ir.C(int64(math.Float64bits(0.5))))
	acc2 := l.Acc(isa.FAdd, ir.V(scaled), 0)
	l.Store(&out, ir.C(int64(out.Base)), 0, ir.V(acc))
	l.Store(&out, ir.C(int64(out.Base)), 8, ir.V(acc2))

	return &Benchmark{
		Name: "equake", Suite: "SPEC CFP2000", Function: "smvp", ExecPct: 68,
		Iterations: n, Loop: l, Out: out, InputRegions: a.Regions(),
		setup: func(img *mem.Memory) {
			r := newRng(3)
			for i := 0; i < n; i++ {
				img.Write8(colidx.Base+uint64(i*8), uint64(r.intn(vecWords)))
				img.Write8(avals.Base+uint64(i*8), r.fbits(0, 1))
			}
			// Only the vector entries the kernel touches need values, but
			// populate a deterministic subset for realism.
			for i := 0; i < vecWords; i += 16 {
				img.Write8(vec.Base+uint64(i*8), r.fbits(0, 1))
			}
		},
	}
}

// buildMcf is 181.mcf's refresh_potential loop: a pointer chase over a
// 4MB arc/node pool, far exceeding the L3, so the producer is dominated
// by main-memory latency.
func buildMcf() *Benchmark {
	const (
		n        = 1200
		poolSize = 4 << 20 // 4 MB
	)
	a := newAlloc()
	pool := a.Alloc("mcf.nodes", poolSize)
	out := a.Alloc("mcf.out", 128)

	l := ir.NewLoop("mcf")
	// ptr = load(ptr->next): the cyclic traversal SCC.
	ptr := l.Load(&pool, ir.C(0), 0)
	ptr.Args[0] = ir.Operand{Node: ptr, Carried: true, Init: int64(pool.Base)}
	ptr.Name = "ptr"
	cost := l.Load(&pool, ir.V(ptr), 8)
	pot := l.Acc(isa.Add, ir.V(cost), 0)
	chk := l.Acc(isa.Xor, ir.V(pot), 0)
	l.Store(&out, ir.C(int64(out.Base)), 0, ir.V(pot))
	l.Store(&out, ir.C(int64(out.Base)), 8, ir.V(chk))
	cond := l.Op(isa.CmpNE, ir.V(ptr), ir.C(0))
	l.SetExit(cond)

	return &Benchmark{
		Name: "mcf", Suite: "SPEC CINT2000", Function: "refresh_potential", ExecPct: 30,
		Iterations: n, Loop: l, Out: out, InputRegions: a.Regions(),
		setup: func(img *mem.Memory) {
			r := newRng(4)
			lines := poolSize / 128
			// A random cycle-free chain over n distinct cache lines.
			perm := make([]int, 0, n)
			seen := map[int]bool{0: true}
			perm = append(perm, 0)
			for len(perm) < n {
				ln := r.intn(lines)
				if !seen[ln] {
					seen[ln] = true
					perm = append(perm, ln)
				}
			}
			for i := 0; i < n; i++ {
				nodeAddr := pool.Base + uint64(perm[i]*128)
				next := uint64(0)
				if i+1 < n {
					next = pool.Base + uint64(perm[i+1]*128)
				}
				img.Write8(nodeAddr, next)
				img.Write8(nodeAddr+8, uint64(r.intn(1000)))
			}
		},
	}
}

// buildEpicdec is the EPIC decoder's read-and-huffman-decode loop: very
// tight, one value crossing per iteration.
func buildEpicdec() *Benchmark {
	const n = 2500
	a := newAlloc()
	input := a.Alloc("epic.in", n*8)
	out := a.Alloc("epic.out", 128)

	l := ir.NewLoop("epicdec")
	idx := counted(l, n)
	off := l.Op(isa.ShlI, ir.V(idx), ir.C(3))
	addr := l.Op(isa.AddI, ir.V(off), ir.C(int64(input.Base)))
	code := l.Load(&input, ir.V(addr), 0)

	low := l.Op(isa.AndI, ir.V(code), ir.C(255))
	sym := l.Acc(isa.Xor, ir.V(low), 0)
	cnt := l.Acc(isa.Add, ir.V(sym), 0)
	l.Store(&out, ir.C(int64(out.Base)), 0, ir.V(sym))
	l.Store(&out, ir.C(int64(out.Base)), 8, ir.V(cnt))

	return &Benchmark{
		Name: "epicdec", Suite: "Mediabench", Function: "read_and_huffman_decode", ExecPct: 21,
		Iterations: n, Loop: l, Out: out, InputRegions: a.Regions(),
		setup: func(img *mem.Memory) {
			r := newRng(5)
			for i := 0; i < n; i++ {
				img.Write8(input.Base+uint64(i*8), r.next()&0xffff)
			}
		},
	}
}

// buildArt is 179.art's match loop: streaming FP over ~512KB of weights
// (256-byte stride misses the L2 on every access).
func buildArt() *Benchmark {
	const (
		n      = 2000
		stride = 256
	)
	a := newAlloc()
	weights := a.Alloc("art.weights", n*stride)
	inputs := a.Alloc("art.inputs", n*8)
	out := a.Alloc("art.out", 128)

	l := ir.NewLoop("art")
	idx := counted(l, n)
	woff := l.Op(isa.ShlI, ir.V(idx), ir.C(8))
	waddr := l.Op(isa.AddI, ir.V(woff), ir.C(int64(weights.Base)))
	w := l.Load(&weights, ir.V(waddr), 0)
	ioff := l.Op(isa.ShlI, ir.V(idx), ir.C(3))
	iaddr := l.Op(isa.AddI, ir.V(ioff), ir.C(int64(inputs.Base)))
	x := l.Load(&inputs, ir.V(iaddr), 0)

	p := l.Op(isa.FMul, ir.V(w), ir.V(x))
	acc := l.Acc(isa.FAdd, ir.V(p), 0)
	y := l.Op(isa.FMul, ir.V(p), ir.C(int64(math.Float64bits(0.25))))
	acc2 := l.Acc(isa.FAdd, ir.V(y), 0)
	l.Store(&out, ir.C(int64(out.Base)), 0, ir.V(acc))
	l.Store(&out, ir.C(int64(out.Base)), 8, ir.V(acc2))

	return &Benchmark{
		Name: "art", Suite: "SPEC CFP2000", Function: "match", ExecPct: 20,
		Iterations: n, Loop: l, Out: out, InputRegions: a.Regions(),
		setup: func(img *mem.Memory) {
			r := newRng(6)
			for i := 0; i < n; i++ {
				img.Write8(weights.Base+uint64(i*stride), r.fbits(0, 1))
				img.Write8(inputs.Base+uint64(i*8), r.fbits(0, 1))
			}
		},
	}
}

// buildFir is the StreamIt FIR filter: the producer streams samples; the
// consumer runs a 6-tap delay line (both a direct and a loop-carried use
// of the sample cross the pipeline, as in the hand-parallelized StreamIt
// version).
func buildFir() *Benchmark {
	const n = 1500
	a := newAlloc()
	samples := a.Alloc("fir.samples", n*8)
	out := a.Alloc("fir.out", 128)

	taps := []float64{0.128, 0.244, 0.371, 0.371, 0.244, 0.128}

	l := ir.NewLoop("fir")
	idx := counted(l, n)
	off := l.Op(isa.ShlI, ir.V(idx), ir.C(3))
	addr := l.Op(isa.AddI, ir.V(off), ir.C(int64(samples.Base)))
	x := l.Load(&samples, ir.V(addr), 0)

	// Delay line: d1 is last iteration's sample, d2 the one before, ...
	d1 := l.Op(isa.Mov, ir.Carried(x, 0))
	d2 := l.Op(isa.Mov, ir.Carried(d1, 0))
	d3 := l.Op(isa.Mov, ir.Carried(d2, 0))
	d4 := l.Op(isa.Mov, ir.Carried(d3, 0))
	d5 := l.Op(isa.Mov, ir.Carried(d4, 0))
	delays := []*ir.Node{x, d1, d2, d3, d4, d5}

	var y *ir.Node
	for i, tap := range taps {
		m := l.Op(isa.FMul, ir.V(delays[i]), ir.C(int64(math.Float64bits(tap))))
		if y == nil {
			y = m
		} else {
			y = l.Op(isa.FAdd, ir.V(y), ir.V(m))
		}
	}
	acc := l.Acc(isa.FAdd, ir.V(y), 0)
	l.Store(&out, ir.C(int64(out.Base)), 0, ir.V(acc))

	return &Benchmark{
		Name: "fir", Suite: "StreamIt", Function: "fir", ExecPct: 100,
		Iterations: n, Loop: l, Out: out, InputRegions: a.Regions(),
		setup: func(img *mem.Memory) {
			r := newRng(7)
			for i := 0; i < n; i++ {
				img.Write8(samples.Base+uint64(i*8), r.fbits(-1, 1))
			}
		},
	}
}

// buildFft2 is the StreamIt fft2 butterfly: four FP values cross the
// pipeline each iteration; the consumer computes the radix-2 butterfly
// with a twiddle multiply and accumulates checksums.
func buildFft2() *Benchmark {
	const n = 1500
	a := newAlloc()
	reA := a.Alloc("fft2.reA", n*8)
	imA := a.Alloc("fft2.imA", n*8)
	reB := a.Alloc("fft2.reB", n*8)
	imB := a.Alloc("fft2.imB", n*8)
	out := a.Alloc("fft2.out", 128)

	cosW := int64(math.Float64bits(0.92387953251))
	sinW := int64(math.Float64bits(0.38268343236))

	l := ir.NewLoop("fft2")
	idx := counted(l, n)
	off := l.Op(isa.ShlI, ir.V(idx), ir.C(3))
	arA := l.Op(isa.AddI, ir.V(off), ir.C(int64(reA.Base)))
	aiA := l.Op(isa.AddI, ir.V(off), ir.C(int64(imA.Base)))
	arB := l.Op(isa.AddI, ir.V(off), ir.C(int64(reB.Base)))
	aiB := l.Op(isa.AddI, ir.V(off), ir.C(int64(imB.Base)))
	ar := l.Load(&reA, ir.V(arA), 0)
	ai := l.Load(&imA, ir.V(aiA), 0)
	br := l.Load(&reB, ir.V(arB), 0)
	bi := l.Load(&imB, ir.V(aiB), 0)

	sumR := l.Op(isa.FAdd, ir.V(ar), ir.V(br))
	sumI := l.Op(isa.FAdd, ir.V(ai), ir.V(bi))
	difR := l.Op(isa.FSub, ir.V(ar), ir.V(br))
	difI := l.Op(isa.FSub, ir.V(ai), ir.V(bi))
	m1 := l.Op(isa.FMul, ir.V(difR), ir.C(cosW))
	m2 := l.Op(isa.FMul, ir.V(difI), ir.C(sinW))
	m3 := l.Op(isa.FMul, ir.V(difR), ir.C(sinW))
	m4 := l.Op(isa.FMul, ir.V(difI), ir.C(cosW))
	twR := l.Op(isa.FSub, ir.V(m1), ir.V(m2))
	twI := l.Op(isa.FAdd, ir.V(m3), ir.V(m4))

	accR := l.Acc(isa.FAdd, ir.V(sumR), 0)
	accI := l.Acc(isa.FAdd, ir.V(sumI), 0)
	accT := l.Acc(isa.FAdd, ir.V(twR), 0)
	accU := l.Acc(isa.FAdd, ir.V(twI), 0)
	l.Store(&out, ir.C(int64(out.Base)), 0, ir.V(accR))
	l.Store(&out, ir.C(int64(out.Base)), 8, ir.V(accI))
	l.Store(&out, ir.C(int64(out.Base)), 16, ir.V(accT))
	l.Store(&out, ir.C(int64(out.Base)), 24, ir.V(accU))

	return &Benchmark{
		Name: "fft2", Suite: "StreamIt", Function: "fft2", ExecPct: 100,
		Iterations: n, Loop: l, Out: out, InputRegions: a.Regions(),
		setup: func(img *mem.Memory) {
			r := newRng(8)
			for i := 0; i < n; i++ {
				img.Write8(reA.Base+uint64(i*8), r.fbits(-1, 1))
				img.Write8(imA.Base+uint64(i*8), r.fbits(-1, 1))
				img.Write8(reB.Base+uint64(i*8), r.fbits(-1, 1))
				img.Write8(imB.Base+uint64(i*8), r.fbits(-1, 1))
			}
		},
	}
}
