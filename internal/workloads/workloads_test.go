package workloads_test

import (
	"testing"

	"hfstream/internal/design"
	"hfstream/internal/exp"
	"hfstream/internal/interp"
	"hfstream/internal/mem"
	"hfstream/internal/workloads"
)

// TestPipelinedMatchesSingleFunctionally checks DSWP correctness: the
// pipelined threads leave the output region in exactly the state the
// single-threaded kernel does, under the functional interpreter.
func TestPipelinedMatchesSingleFunctionally(t *testing.T) {
	for _, b := range workloads.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			want, err := exp.Expected(b)
			if err != nil {
				t.Fatal(err)
			}
			threads, queues, err := b.Pipelined()
			if err != nil {
				t.Fatal(err)
			}
			if queues < 1 {
				t.Fatalf("expected at least one queue, got %d", queues)
			}
			img := mem.New()
			b.Setup(img)
			m := interp.New(img, threads[0], threads[1])
			if err := m.Run(0); err != nil {
				t.Fatal(err)
			}
			for a := b.Out.Base; a < b.Out.End(); a += 8 {
				if got, exp := img.Read8(a), want.Read8(a); got != exp {
					t.Fatalf("out[%#x] = %#x, want %#x", a, got, exp)
				}
			}
		})
	}
}

// TestAllDesignsAllBenchmarks is the big end-to-end matrix: every
// benchmark on every design point must terminate and produce the oracle
// output.
func TestAllDesignsAllBenchmarks(t *testing.T) {
	if testing.Short() {
		t.Skip("full matrix in long mode only")
	}
	configs := []design.Config{
		design.ExistingConfig(),
		design.MemOptiConfig(),
		design.SyncOptiConfig(),
		design.SyncOptiSCQ64Config(),
		design.HeavyWTConfig(),
	}
	for _, b := range workloads.All() {
		for _, cfg := range configs {
			b, cfg := b, cfg
			t.Run(b.Name+"/"+cfg.Name(), func(t *testing.T) {
				res, err := exp.RunBenchmark(b, cfg)
				if err != nil {
					t.Fatal(err)
				}
				t.Logf("%s on %s: %d cycles, comm ratio p=%.2f c=%.2f",
					b.Name, cfg.Name(), res.Cycles, res.CommRatio(0), res.CommRatio(1))
			})
		}
	}
}

// TestSingleThreadedRuns checks the Figure 9 baselines.
func TestSingleThreadedRuns(t *testing.T) {
	for _, b := range workloads.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			res, err := exp.RunSingle(b)
			if err != nil {
				t.Fatal(err)
			}
			if res.Cycles == 0 {
				t.Fatal("zero cycles")
			}
		})
	}
}
