package workloads_test

import (
	"testing"

	"hfstream/internal/design"
	"hfstream/internal/exp"
	"hfstream/internal/lower"
	"hfstream/internal/workloads"
)

// TestCommunicationFrequencyBand checks the paper's headline workload
// characterization: pipelined streaming threads communicate once every
// ~5-20 dynamic application instructions (wc is tighter; memory-bound
// mcf's producer is tighter still).
func TestCommunicationFrequencyBand(t *testing.T) {
	for _, b := range workloads.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			res, err := exp.RunBenchmark(b, design.HeavyWTConfig())
			if err != nil {
				t.Fatal(err)
			}
			for core := 0; core < 2; core++ {
				r := res.CommRatio(core)
				if r <= 0 {
					t.Fatalf("core %d has no communication", core)
				}
				per := 1 / r
				if per < 1.5 || per > 25 {
					t.Errorf("core %d communicates once per %.1f app instrs, outside (1.5, 25)", core, per)
				}
			}
		})
	}
}

// TestTable1Metadata checks the static benchmark inventory.
func TestTable1Metadata(t *testing.T) {
	suites := map[string]int{}
	for _, b := range workloads.All() {
		suites[b.Suite]++
		if b.ExecPct <= 0 || b.ExecPct > 100 {
			t.Errorf("%s: bad exec%%: %d", b.Name, b.ExecPct)
		}
		if len(b.InputRegions) == 0 {
			t.Errorf("%s: no input regions for cache warming", b.Name)
		}
		found := false
		for _, r := range b.InputRegions {
			if r.Base == b.Out.Base {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: output region not in input regions", b.Name)
		}
	}
	if suites["StreamIt"] != 2 {
		t.Errorf("want 2 StreamIt benchmarks, got %d", suites["StreamIt"])
	}
	if suites["SPEC CINT2000"]+suites["SPEC CFP2000"] != 4 {
		t.Errorf("want 4 SPEC benchmarks")
	}
}

// TestAllBenchmarksLowerCleanly: every pipelined kernel must survive the
// software-queue lowering used by EXISTING/MEMOPTI.
func TestAllBenchmarksLowerCleanly(t *testing.T) {
	layout := design.ExistingConfig().Layout()
	for _, b := range workloads.All() {
		threads, queues, err := b.Pipelined()
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		if queues > layout.NumQueues {
			t.Fatalf("%s: uses %d queues, layout has %d", b.Name, queues, layout.NumQueues)
		}
		for i, th := range threads {
			lp, err := lower.Lower(th, layout)
			if err != nil {
				t.Fatalf("%s thread %d: %v", b.Name, i, err)
			}
			if err := lp.Validate(layout.NumQueues); err != nil {
				t.Fatalf("%s thread %d: lowered program invalid: %v", b.Name, i, err)
			}
		}
	}
}

// TestMemoryBehaviourCharacterization: mcf must be memory-bound, and the
// small kernels must not touch main memory at all after warming.
func TestMemoryBehaviourCharacterization(t *testing.T) {
	mcf, err := workloads.ByName("mcf")
	if err != nil {
		t.Fatal(err)
	}
	res, err := exp.RunBenchmark(mcf, design.HeavyWTConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.MemAccesses < 500 {
		t.Errorf("mcf made only %d memory accesses; its pool should exceed the L3", res.MemAccesses)
	}
	if share := res.Breakdowns[0].Share(4); share < 0.5 { // stats.Mem
		t.Errorf("mcf producer MEM share = %.2f, want memory-bound", share)
	}

	wc, err := workloads.ByName("wc")
	if err != nil {
		t.Fatal(err)
	}
	res, err = exp.RunBenchmark(wc, design.HeavyWTConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.MemAccesses > 50 {
		t.Errorf("wc made %d memory accesses; its working set fits the caches", res.MemAccesses)
	}
}

// TestSyncOptiVariantsAgreeFunctionally: all SYNCOPTI variants produce
// identical (oracle-verified) outputs — the optimizations change timing
// only.
func TestSyncOptiVariantsAgreeFunctionally(t *testing.T) {
	if testing.Short() {
		t.Skip("runs several designs")
	}
	b, err := workloads.ByName("fft2")
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []design.Config{
		design.SyncOptiConfig(), design.SyncOptiQ64Config(),
		design.SyncOptiSCConfig(), design.SyncOptiSCQ64Config(),
	} {
		if _, err := exp.RunBenchmark(b, cfg); err != nil {
			t.Errorf("%s: %v", cfg.Name(), err)
		}
	}
}

// TestStreamCacheActuallyHits: the SC variant must service most consumes
// from the stream cache.
func TestStreamCacheActuallyHits(t *testing.T) {
	b, err := workloads.ByName("epicdec")
	if err != nil {
		t.Fatal(err)
	}
	res, err := exp.RunBenchmark(b, design.SyncOptiSCConfig())
	if err != nil {
		t.Fatal(err)
	}
	hits := res.SCHits[0] + res.SCHits[1]
	if hits < uint64(b.Iterations)/2 {
		t.Errorf("stream cache hits = %d over %d iterations", hits, b.Iterations)
	}
	// And the SC design must beat plain SYNCOPTI.
	plain, err := exp.RunBenchmark(b, design.SyncOptiConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles >= plain.Cycles {
		t.Errorf("SC (%d cycles) should beat plain SYNCOPTI (%d)", res.Cycles, plain.Cycles)
	}
}

// TestWriteForwardingActive: MEMOPTI must actually forward lines for at
// least some benchmarks (decoupled ones).
func TestWriteForwardingActive(t *testing.T) {
	total := uint64(0)
	for _, name := range []string{"adpcmdec", "epicdec", "fir"} {
		b, err := workloads.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		res, err := exp.RunBenchmark(b, design.MemOptiConfig())
		if err != nil {
			t.Fatal(err)
		}
		total += res.WrFwds[0] + res.WrFwds[1]
	}
	if total == 0 {
		t.Error("MEMOPTI never forwarded a line")
	}
}
