// Package stats provides counters, execution-time breakdowns and small
// numeric helpers shared by the simulator and the experiment harness.
//
// The breakdown buckets mirror the stacked bars in the paper's Figures 7,
// 10, 11 and 12: every core cycle is attributed to exactly one bucket, so
// the buckets always sum to the core's total cycle count.
package stats

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strings"
)

// Bucket identifies the machine region responsible for a core cycle.
type Bucket int

// Breakdown buckets, in the paper's stacking order (bottom to top).
const (
	// PreL2 covers everything before the L2 cache: useful issue, scoreboard
	// and FU stalls, L1 activity, and back-pressure from a full OzQ.
	PreL2 Bucket = iota
	// L2 covers cycles spent waiting on the local L2 array (ports,
	// occupancy, recirculation).
	L2
	// Bus covers shared-bus arbitration, snoop and data-transfer waits.
	Bus
	// L3 covers shared L3 cache access waits.
	L3
	// Mem covers main-memory access waits.
	Mem
	// PostL2 covers the post-L2 commit path: L1 fills and writeback of
	// completed instructions.
	PostL2

	// NumBuckets is the number of breakdown buckets.
	NumBuckets
)

// String returns the paper's label for the bucket.
func (b Bucket) String() string {
	switch b {
	case PreL2:
		return "PreL2"
	case L2:
		return "L2"
	case Bus:
		return "BUS"
	case L3:
		return "L3"
	case Mem:
		return "MEM"
	case PostL2:
		return "PostL2"
	default:
		return fmt.Sprintf("Bucket(%d)", int(b))
	}
}

// Breakdown accumulates cycles per bucket for one core.
type Breakdown struct {
	Cycles [NumBuckets]uint64
}

// Add attributes n cycles to bucket b.
func (bd *Breakdown) Add(b Bucket, n uint64) { bd.Cycles[b] += n }

// Total returns the sum over all buckets.
func (bd *Breakdown) Total() uint64 {
	var t uint64
	for _, c := range bd.Cycles {
		t += c
	}
	return t
}

// Share returns bucket b's fraction of the total (0 if the total is 0).
func (bd *Breakdown) Share(b Bucket) float64 {
	t := bd.Total()
	if t == 0 {
		return 0
	}
	return float64(bd.Cycles[b]) / float64(t)
}

// Scaled returns the breakdown normalized so the total equals norm.
// It is used to plot bars normalized to a baseline design's runtime.
func (bd *Breakdown) Scaled(norm float64) [NumBuckets]float64 {
	var out [NumBuckets]float64
	t := bd.Total()
	if t == 0 {
		return out
	}
	for i, c := range bd.Cycles {
		out[i] = float64(c) / float64(t) * norm
	}
	return out
}

// String renders the breakdown as "PreL2=… L2=… BUS=… L3=… MEM=… PostL2=…".
func (bd *Breakdown) String() string {
	parts := make([]string, 0, NumBuckets)
	for b := Bucket(0); b < NumBuckets; b++ {
		parts = append(parts, fmt.Sprintf("%s=%d", b, bd.Cycles[b]))
	}
	return strings.Join(parts, " ")
}

// HistBuckets is the number of Hist buckets: 0, 1, 2-3, 4-7, ... up to a
// final bucket absorbing everything >= 2^15.
const HistBuckets = 17

// Hist is a power-of-two-bucket histogram of small non-negative values
// (queue occupancies, burst lengths). Bucket 0 counts zeros and bucket
// i >= 1 counts values in [2^(i-1), 2^i).
type Hist struct {
	Counts [HistBuckets]uint64
}

// Observe records one value.
func (h *Hist) Observe(v uint64) {
	b := bits.Len64(v)
	if b >= HistBuckets {
		b = HistBuckets - 1
	}
	h.Counts[b]++
}

// ObserveN records the same value n times, exactly as n Observe calls
// would (the simulator's fast-forward path observes a frozen occupancy
// once per skipped cycle).
func (h *Hist) ObserveN(v, n uint64) {
	b := bits.Len64(v)
	if b >= HistBuckets {
		b = HistBuckets - 1
	}
	h.Counts[b] += n
}

// Total returns the number of observations.
func (h *Hist) Total() uint64 {
	var t uint64
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// HistLabel names bucket i ("0", "1", "2-3", ..., ">=32768").
func HistLabel(i int) string {
	switch {
	case i <= 1:
		return fmt.Sprintf("%d", i)
	case i == HistBuckets-1:
		return fmt.Sprintf(">=%d", 1<<(i-1))
	default:
		return fmt.Sprintf("%d-%d", 1<<(i-1), 1<<i-1)
	}
}

// Counters is a named set of event counters.
type Counters struct {
	m map[string]uint64
}

// NewCounters returns an empty counter set.
func NewCounters() *Counters { return &Counters{m: make(map[string]uint64)} }

// Inc adds n to the named counter.
func (c *Counters) Inc(name string, n uint64) { c.m[name] += n }

// Get returns the named counter's value.
func (c *Counters) Get(name string) uint64 { return c.m[name] }

// Names returns all counter names in sorted order.
func (c *Counters) Names() []string {
	names := make([]string, 0, len(c.m))
	for k := range c.m {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// Merge adds all counters from other into c.
func (c *Counters) Merge(other *Counters) {
	for k, v := range other.m {
		c.m[k] += v
	}
}

// GeomeanErr returns the geometric mean of xs. It returns 0 for an empty
// slice and an error on non-positive inputs, which always indicate a bug
// in the caller's normalization (e.g. a zero-cycle baseline run).
func GeomeanErr(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, nil
	}
	sum := 0.0
	for i, x := range xs {
		if x <= 0 || math.IsNaN(x) {
			return 0, fmt.Errorf("stats: geomean input %d is non-positive (%v)", i, x)
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs))), nil
}

// Geomean is GeomeanErr for callers that cannot fail: a degenerate input
// yields NaN (rendered as such in tables) instead of aborting the whole
// regeneration.
func Geomean(xs []float64) float64 {
	g, err := GeomeanErr(xs)
	if err != nil {
		return math.NaN()
	}
	return g
}

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}
