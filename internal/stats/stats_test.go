package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestBreakdownSums(t *testing.T) {
	var bd Breakdown
	bd.Add(PreL2, 10)
	bd.Add(Bus, 5)
	bd.Add(Mem, 85)
	if bd.Total() != 100 {
		t.Fatalf("Total = %d", bd.Total())
	}
	if got := bd.Share(Mem); got != 0.85 {
		t.Errorf("Share(Mem) = %v", got)
	}
	scaled := bd.Scaled(2.0)
	sum := 0.0
	for _, v := range scaled {
		sum += v
	}
	if math.Abs(sum-2.0) > 1e-9 {
		t.Errorf("Scaled parts sum to %v, want 2.0", sum)
	}
}

func TestBreakdownEmpty(t *testing.T) {
	var bd Breakdown
	if bd.Share(PreL2) != 0 {
		t.Error("empty breakdown share should be 0")
	}
	if s := bd.Scaled(1.0); s != [NumBuckets]float64{} {
		t.Error("empty breakdown scaled should be zero")
	}
}

func TestBucketNames(t *testing.T) {
	want := []string{"PreL2", "L2", "BUS", "L3", "MEM", "PostL2"}
	for b := Bucket(0); b < NumBuckets; b++ {
		if b.String() != want[b] {
			t.Errorf("bucket %d = %q, want %q", b, b.String(), want[b])
		}
	}
}

func TestBreakdownString(t *testing.T) {
	var bd Breakdown
	bd.Add(L2, 3)
	s := bd.String()
	if !strings.Contains(s, "L2=3") || !strings.Contains(s, "MEM=0") {
		t.Errorf("String() = %q", s)
	}
}

func TestCounters(t *testing.T) {
	c := NewCounters()
	c.Inc("a", 2)
	c.Inc("a", 3)
	c.Inc("b", 1)
	if c.Get("a") != 5 || c.Get("b") != 1 || c.Get("nope") != 0 {
		t.Error("counter values wrong")
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("Names = %v", names)
	}
	d := NewCounters()
	d.Inc("a", 10)
	c.Merge(d)
	if c.Get("a") != 15 {
		t.Errorf("merged a = %d", c.Get("a"))
	}
}

func TestGeomean(t *testing.T) {
	if g := Geomean([]float64{2, 8}); math.Abs(g-4) > 1e-9 {
		t.Errorf("Geomean(2,8) = %v", g)
	}
	if g := Geomean(nil); g != 0 {
		t.Errorf("Geomean(nil) = %v", g)
	}
	// Property: geomean of a constant slice is the constant.
	f := func(x float64, n uint8) bool {
		x = math.Abs(x)
		if x < 1e-6 || x > 1e6 || n == 0 {
			return true
		}
		xs := make([]float64, int(n%16)+1)
		for i := range xs {
			xs[i] = x
		}
		return math.Abs(Geomean(xs)-x) < x*1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Property: geomean lies between min and max.
	g := func(a, b float64) bool {
		a, b = math.Abs(a)+1e-3, math.Abs(b)+1e-3
		if a > 1e6 || b > 1e6 {
			return true
		}
		gm := Geomean([]float64{a, b})
		lo, hi := math.Min(a, b), math.Max(a, b)
		return gm >= lo-1e-9 && gm <= hi+1e-9
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

func TestGeomeanErr(t *testing.T) {
	if g, err := GeomeanErr([]float64{2, 8}); err != nil || math.Abs(g-4) > 1e-9 {
		t.Errorf("GeomeanErr(2,8) = %v, %v", g, err)
	}
	if g, err := GeomeanErr(nil); err != nil || g != 0 {
		t.Errorf("GeomeanErr(nil) = %v, %v", g, err)
	}
	for _, bad := range [][]float64{{1, 0}, {-2}, {1, math.NaN()}} {
		if _, err := GeomeanErr(bad); err == nil {
			t.Errorf("GeomeanErr(%v): no error", bad)
		}
	}
}

// TestGeomeanNonPositiveIsNaN: the infallible wrapper degrades to NaN so a
// single degenerate row cannot crash a whole figure regeneration.
func TestGeomeanNonPositiveIsNaN(t *testing.T) {
	if g := Geomean([]float64{1, 0}); !math.IsNaN(g) {
		t.Errorf("Geomean(1,0) = %v, want NaN", g)
	}
}

func TestMean(t *testing.T) {
	if m := Mean([]float64{1, 2, 3}); m != 2 {
		t.Errorf("Mean = %v", m)
	}
	if m := Mean(nil); m != 0 {
		t.Errorf("Mean(nil) = %v", m)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Title", "A", "B")
	tb.AddRow("x", "y")
	tb.AddRowf(1.5, 2)
	tb.AddRow("only-one")
	s := tb.String()
	for _, want := range []string{"Title", "A", "B", "x", "1.500", "2", "only-one", "---"} {
		if !strings.Contains(s, want) {
			t.Errorf("table missing %q:\n%s", want, s)
		}
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 6 { // title, header, separator, 3 rows
		t.Errorf("got %d lines, want 6:\n%s", len(lines), s)
	}
}
