// Package cache provides set-associative cache arrays with MSI coherence
// state and per-line streaming metadata, used for the private L1/L2 caches
// and the shared L3 (paper Table 2).
package cache

import (
	"fmt"
	"math/bits"
)

// State is a line's MSI coherence state.
type State uint8

// MSI states.
const (
	Invalid State = iota
	Shared
	Modified
)

// String names the state.
func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Modified:
		return "M"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Line is one cache line's bookkeeping (data lives in the functional
// memory image; the cache tracks presence, coherence and stream state).
type Line struct {
	Addr  uint64 // line-aligned address
	State State
	lru   uint64

	// Stream metadata for write-forwarding (QLU-aware): bitmask of queue
	// slots on this line whose flag/data has been written since the line
	// was last forwarded, and count of slots consumed.
	StreamWritten  uint32
	StreamConsumed uint32
}

// Params configures a cache array.
type Params struct {
	SizeBytes int
	Ways      int
	LineBytes int
	// Latency is the array access latency in cycles.
	Latency int
}

// Sets returns the number of sets implied by the parameters.
func (p Params) Sets() int { return p.SizeBytes / (p.Ways * p.LineBytes) }

// Validate checks the geometry.
func (p Params) Validate() error {
	if p.SizeBytes <= 0 || p.Ways <= 0 || p.LineBytes <= 0 {
		return fmt.Errorf("cache: non-positive parameter: %+v", p)
	}
	if p.LineBytes&(p.LineBytes-1) != 0 {
		return fmt.Errorf("cache: line size %d not a power of two", p.LineBytes)
	}
	if p.SizeBytes%(p.Ways*p.LineBytes) != 0 {
		return fmt.Errorf("cache: size %d not divisible by ways*line (%d*%d)",
			p.SizeBytes, p.Ways, p.LineBytes)
	}
	sets := p.Sets()
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache: set count %d not a power of two", sets)
	}
	return nil
}

// Cache is a set-associative array with LRU replacement.
type Cache struct {
	p Params
	// lines is the whole array in one backing slice (sets are consecutive
	// runs of p.Ways lines), so building a cache costs one allocation
	// instead of one per set.
	lines     []Line
	setMask   uint64
	lineShift uint // log2(LineBytes): set indexing shifts instead of dividing
	clock     uint64

	// Stats.
	Hits, Misses, Evictions uint64
}

// New builds a cache; it panics on invalid geometry (a configuration bug).
func New(p Params) *Cache {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	sets := p.Sets()
	return &Cache{p: p, lines: make([]Line, sets*p.Ways), setMask: uint64(sets - 1),
		lineShift: uint(bits.TrailingZeros(uint(p.LineBytes)))}
}

// Params returns the cache geometry.
func (c *Cache) Params() Params { return c.p }

// LineAddr returns addr rounded down to its line boundary.
func (c *Cache) LineAddr(addr uint64) uint64 { return addr &^ (uint64(c.p.LineBytes) - 1) }

func (c *Cache) setOf(lineAddr uint64) []Line {
	idx := (lineAddr >> c.lineShift) & c.setMask
	w := uint64(c.p.Ways)
	return c.lines[idx*w : idx*w+w]
}

// Lookup returns the line containing addr if present (state != Invalid),
// updating LRU and hit/miss statistics.
func (c *Cache) Lookup(addr uint64) *Line {
	la := c.LineAddr(addr)
	set := c.setOf(la)
	c.clock++
	for i := range set {
		if set[i].State != Invalid && set[i].Addr == la {
			set[i].lru = c.clock
			c.Hits++
			return &set[i]
		}
	}
	c.Misses++
	return nil
}

// Peek returns the line containing addr without touching LRU or stats.
// Snoops use Peek.
func (c *Cache) Peek(addr uint64) *Line {
	la := c.LineAddr(addr)
	set := c.setOf(la)
	for i := range set {
		if set[i].State != Invalid && set[i].Addr == la {
			return &set[i]
		}
	}
	return nil
}

// Victim describes a line evicted by Insert.
type Victim struct {
	Addr  uint64
	State State
	// Stream metadata travels with the victim so streaming lines evicted
	// mid-fill can flush their occupancy info (paper §4.2).
	StreamWritten  uint32
	StreamConsumed uint32
}

// Insert installs addr's line in the given state, evicting the LRU way if
// needed. It returns the victim (valid when evicted is true). Inserting a
// line that is already present just updates its state.
func (c *Cache) Insert(addr uint64, st State) (victim Victim, evicted bool) {
	la := c.LineAddr(addr)
	set := c.setOf(la)
	c.clock++
	// One pass finds the line if present, the first free way, and the LRU
	// victim among valid ways (only consulted when no way is free, i.e.
	// when every way is valid, so the valid-only LRU tracking is exact).
	freeIdx, lruIdx := -1, 0
	for i := range set {
		if set[i].State == Invalid {
			if freeIdx < 0 {
				freeIdx = i
			}
			continue
		}
		if set[i].Addr == la {
			// Already present: update in place.
			set[i].State = st
			set[i].lru = c.clock
			return Victim{}, false
		}
		if set[i].lru < set[lruIdx].lru {
			lruIdx = i
		}
	}
	if freeIdx >= 0 {
		set[freeIdx] = Line{Addr: la, State: st, lru: c.clock}
		return Victim{}, false
	}
	// Evict LRU.
	v := Victim{
		Addr:           set[lruIdx].Addr,
		State:          set[lruIdx].State,
		StreamWritten:  set[lruIdx].StreamWritten,
		StreamConsumed: set[lruIdx].StreamConsumed,
	}
	c.Evictions++
	set[lruIdx] = Line{Addr: la, State: st, lru: c.clock}
	return v, true
}

// InsertRange installs n consecutive lines starting at base's line in the
// given state, exactly as n sequential Insert calls would — same final
// lines, LRU stamps, clock, and eviction count — but without replaying
// inserts that cannot survive. Consecutive lines fill sets round-robin, so
// the last sets*ways inserts alone overwrite every set completely; earlier
// inserts only advance the clock and evict. The addresses must not already
// be present (preload feeds it distinct, never-inserted lines).
func (c *Cache) InsertRange(base uint64, n int, st State) {
	ways := c.p.Ways
	sets := int(c.setMask) + 1
	capLines := sets * ways
	if n > capLines {
		skip := n - capLines
		// Account the skipped prefix: every insert beyond a set's capacity
		// evicts. Set s receives k_s inserts in total; with its e_s already
		// valid ways that is max(0, e_s+k_s-ways) evictions, of which the
		// replayed suffix (exactly `ways` inserts per set, landing in a set
		// it fully overwrites) observes max(0, e_s+min(k_s,ways)-ways) = e_s.
		// Charge the rest here, before the clock advances past the prefix.
		firstSet := int((base >> c.lineShift) & c.setMask)
		for s := 0; s < sets; s++ {
			// Inserts landing in set s across the whole range.
			k := n / sets
			if (s-firstSet+sets)%sets < n%sets {
				k++
			}
			e := 0
			for _, ln := range c.lines[s*ways : s*ways+ways] {
				if ln.State != Invalid {
					e++
				}
			}
			if over := e + k - ways; over > 0 {
				c.Evictions += uint64(over - e)
			}
		}
		c.clock += uint64(skip)
		base += uint64(skip) << c.lineShift
		n = capLines
	}
	for la, i := base, 0; i < n; i++ {
		c.Insert(la, st)
		la += uint64(c.p.LineBytes)
	}
}

// Invalidate removes addr's line, returning its previous state.
func (c *Cache) Invalidate(addr uint64) State {
	la := c.LineAddr(addr)
	set := c.setOf(la)
	for i := range set {
		if set[i].State != Invalid && set[i].Addr == la {
			st := set[i].State
			set[i] = Line{}
			return st
		}
	}
	return Invalid
}

// InvalidateRange removes every line overlapping [base, base+size). It is
// used to keep the write-through L1 inclusive in the L2: when an L2 line
// is invalidated or evicted, the covered L1 lines must go too.
func (c *Cache) InvalidateRange(base, size uint64) int {
	n := 0
	for a := c.LineAddr(base); a < base+size; a += uint64(c.p.LineBytes) {
		if c.Invalidate(a) != Invalid {
			n++
		}
	}
	return n
}

// CountValid returns the number of valid lines (for tests).
func (c *Cache) CountValid() int {
	n := 0
	for i := range c.lines {
		if c.lines[i].State != Invalid {
			n++
		}
	}
	return n
}
