package cache

import (
	"testing"
	"testing/quick"
)

func smallCache() *Cache {
	return New(Params{SizeBytes: 1024, Ways: 2, LineBytes: 64, Latency: 1}) // 8 sets
}

func TestParamsValidate(t *testing.T) {
	good := Params{SizeBytes: 16 << 10, Ways: 4, LineBytes: 64, Latency: 1}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Params{
		{SizeBytes: 0, Ways: 4, LineBytes: 64},
		{SizeBytes: 16 << 10, Ways: 4, LineBytes: 60}, // not power of two
		{SizeBytes: 1000, Ways: 4, LineBytes: 64},     // not divisible
		{SizeBytes: 192 * 64, Ways: 1, LineBytes: 64}, // sets not power of two
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad params %d accepted: %+v", i, p)
		}
	}
	if got := good.Sets(); got != 64 {
		t.Errorf("Sets = %d", got)
	}
}

func TestLookupInsertInvalidate(t *testing.T) {
	c := smallCache()
	if c.Lookup(0x1000) != nil {
		t.Fatal("hit in empty cache")
	}
	c.Insert(0x1000, Shared)
	line := c.Lookup(0x1010) // same line, different offset
	if line == nil || line.State != Shared || line.Addr != 0x1000 {
		t.Fatalf("lookup after insert: %+v", line)
	}
	if c.Hits != 1 || c.Misses != 1 {
		t.Errorf("hits=%d misses=%d", c.Hits, c.Misses)
	}
	if st := c.Invalidate(0x1000); st != Shared {
		t.Errorf("Invalidate returned %v", st)
	}
	if c.Lookup(0x1000) != nil {
		t.Error("line survived invalidation")
	}
	if st := c.Invalidate(0x1000); st != Invalid {
		t.Errorf("double invalidate returned %v", st)
	}
}

func TestInsertUpdatesInPlace(t *testing.T) {
	c := smallCache()
	c.Insert(0x1000, Shared)
	if _, evicted := c.Insert(0x1000, Modified); evicted {
		t.Error("re-insert evicted")
	}
	if line := c.Peek(0x1000); line.State != Modified {
		t.Error("state not updated")
	}
	if c.CountValid() != 1 {
		t.Errorf("CountValid = %d", c.CountValid())
	}
}

func TestLRUEviction(t *testing.T) {
	c := smallCache()             // 2 ways, 8 sets, 64B lines: set = (addr/64) % 8
	a1 := uint64(0 * 64 * 8 * 64) // set 0
	a2 := a1 + 8*64               // set 0, different tag
	a3 := a2 + 8*64               // set 0, third tag
	c.Insert(a1, Modified)
	c.Insert(a2, Shared)
	c.Lookup(a1) // make a1 most recent
	victim, evicted := c.Insert(a3, Shared)
	if !evicted {
		t.Fatal("expected eviction")
	}
	if victim.Addr != a2 || victim.State != Shared {
		t.Errorf("evicted %+v, want a2/Shared", victim)
	}
	if c.Peek(a1) == nil || c.Peek(a3) == nil || c.Peek(a2) != nil {
		t.Error("post-eviction contents wrong")
	}
}

func TestVictimCarriesStreamMeta(t *testing.T) {
	c := smallCache()
	c.Insert(0x0, Modified)
	c.Peek(0x0).StreamWritten = 0xAB
	c.Insert(8*64, Modified)                   // same set
	victim, evicted := c.Insert(16*64, Shared) // evicts LRU = 0x0
	if !evicted || victim.StreamWritten != 0xAB {
		t.Errorf("victim meta lost: %+v", victim)
	}
}

func TestPeekDoesNotTouchStats(t *testing.T) {
	c := smallCache()
	c.Insert(0x40, Shared)
	h, m := c.Hits, c.Misses
	c.Peek(0x40)
	c.Peek(0x4000)
	if c.Hits != h || c.Misses != m {
		t.Error("Peek affected stats")
	}
}

func TestInvalidateRange(t *testing.T) {
	c := smallCache()
	c.Insert(0x000, Shared)
	c.Insert(0x040, Shared)
	c.Insert(0x080, Shared)
	if n := c.InvalidateRange(0x000, 0x80); n != 2 {
		t.Errorf("invalidated %d lines, want 2", n)
	}
	if c.Peek(0x080) == nil {
		t.Error("line outside range invalidated")
	}
}

func TestLineAddr(t *testing.T) {
	c := smallCache()
	if c.LineAddr(0x7f) != 0x40 {
		t.Errorf("LineAddr(0x7f) = %#x", c.LineAddr(0x7f))
	}
}

// Property: after inserting any sequence of addresses, every hit returns
// a line whose Addr matches the lookup's line address, and occupancy
// never exceeds capacity.
func TestCacheInvariantsProperty(t *testing.T) {
	f := func(addrs []uint32) bool {
		c := smallCache()
		capacity := c.Params().Sets() * c.Params().Ways
		for _, a := range addrs {
			addr := uint64(a)
			c.Insert(addr, Shared)
			if line := c.Lookup(addr); line == nil || line.Addr != c.LineAddr(addr) {
				return false
			}
			if c.CountValid() > capacity {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestStateString(t *testing.T) {
	if Invalid.String() != "I" || Shared.String() != "S" || Modified.String() != "M" {
		t.Error("state names wrong")
	}
}

func TestNewPanicsOnBadGeometry(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad geometry accepted")
		}
	}()
	New(Params{SizeBytes: 100, Ways: 3, LineBytes: 60})
}
