// Package bus models the shared split-transaction L3 bus: round-robin
// arbitration, a configurable width and CPU-cycle-to-bus-cycle ratio, and
// optional pipelining (paper Table 2: 16-byte, 1-cycle, 3-stage pipelined
// split-transaction bus with round-robin arbitration; Figures 10 and 11
// vary the cycle ratio and width).
//
// The bus is a pure timing device: semantics (snooping, data supply) are
// provided by a Handler the owner installs. On grant, the handler performs
// the snoop atomically and returns how long servicing takes and how many
// data beats the reply occupies; the bus then schedules completion on the
// data path, modeling contention.
package bus

import (
	"fmt"

	"hfstream/fault"
)

// Kind classifies bus transactions.
type Kind int

// Transaction kinds.
const (
	// Read requests a line for reading (install shared).
	Read Kind = iota
	// ReadX requests a line for writing (install modified, invalidate
	// other copies).
	ReadX
	// Upgrade promotes a shared copy to modified (no data transfer).
	Upgrade
	// Writeback pushes a dirty line back to the L3.
	Writeback
	// WriteForward pushes a streaming line from the producer's L2 into the
	// consumer's L2 (MEMOPTI / SYNCOPTI).
	WriteForward
	// OccUpdate carries a SYNCOPTI occupancy-counter update.
	OccUpdate
	// BulkAck is the consumer's per-line consumption notification that
	// updates the producer's occupancy tracker (SYNCOPTI).
	BulkAck
	// Probe is the timeout-initiated request eliciting a writeback of a
	// partially-filled streaming line (SYNCOPTI stream termination).
	Probe
	numKinds
)

// String names the transaction kind.
func (k Kind) String() string {
	switch k {
	case Read:
		return "Read"
	case ReadX:
		return "ReadX"
	case Upgrade:
		return "Upgrade"
	case Writeback:
		return "Writeback"
	case WriteForward:
		return "WriteForward"
	case OccUpdate:
		return "OccUpdate"
	case BulkAck:
		return "BulkAck"
	case Probe:
		return "Probe"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Supplier identifies which machine region services a granted request;
// requesters use it to attribute subsequent waiting time.
const (
	SupplierNone = iota
	SupplierRemoteL2
	SupplierL3
	SupplierMem
)

// Owner receives a request's grant callbacks without per-request
// closures: the bus (and the fabric's snoop broker) dispatch back to the
// submitting component, which recovers its context from the request's
// fields. Implementations may recycle the request once ReqDone returns —
// the bus holds no reference past that call.
type Owner interface {
	// ReqNote is invoked at grant time with the Supplier constant
	// describing who services the request.
	ReqNote(r *Req, supplier int)
	// ReqDone is invoked during grant processing with the future CPU
	// cycle at which the transaction completes (data delivered /
	// invalidation globally visible). The receiver must not act on the
	// result before that cycle.
	ReqDone(r *Req, done uint64)
}

// Req is one bus transaction request.
type Req struct {
	Kind Kind
	Addr uint64
	Src  int    // requester id (core/L2 index)
	Aux  int    // kind-specific payload (e.g. item count for forwards)
	Q    int    // stream queue number for streaming transactions
	Slot uint64 // cumulative starting slot for streaming transactions

	// Owner, if non-nil, receives the grant callbacks (preferred: no
	// per-request closures). Ref is an opaque cookie the owner may use to
	// carry extra context (e.g. the OzQ entry behind a forward).
	Owner Owner
	Ref   any

	// Note, if non-nil and Owner is nil, is invoked at grant time with
	// the Supplier constant describing who services the request.
	Note func(supplier int)

	// Done, if non-nil and Owner is nil, is invoked during grant
	// processing with the future completion cycle (see Owner.ReqDone).
	Done func(cycle uint64)

	granted  bool
	submitAt uint64
}

// Handler performs the semantic part of a granted transaction: snooping
// other caches, looking up the L3, updating directory/occupancy state. It
// returns the supplier latency in CPU cycles (e.g. remote L2 access, L3 or
// memory latency) and the number of data-bus beats the reply occupies
// (0 for address-only transactions).
type Handler func(r *Req, grantCycle uint64) (serviceLat, beats int)

// Params configures the bus.
type Params struct {
	WidthBytes int  // bytes transferred per data beat (Table 2: 16)
	CPB        int  // CPU cycles per bus cycle (Table 2: 1; Figure 10: 4)
	Pipelined  bool // 3-stage pipelined split-transaction bus when true
	ArbLat     int  // arbitration latency in bus cycles (1)
	SnoopLat   int  // address/snoop phase latency in bus cycles (2)
}

// DefaultParams returns the Table 2 baseline bus.
func DefaultParams() Params {
	return Params{WidthBytes: 16, CPB: 1, Pipelined: true, ArbLat: 1, SnoopLat: 2}
}

// Validate reports whether the parameters describe a constructible bus.
// Callers that accept user-supplied configuration should check this before
// New, which treats bad parameters as an internal invariant violation.
func (p Params) Validate() error {
	if p.WidthBytes <= 0 {
		return fmt.Errorf("bus: width must be positive, got %d bytes", p.WidthBytes)
	}
	if p.CPB <= 0 {
		return fmt.Errorf("bus: cycles-per-bus-cycle must be positive, got %d", p.CPB)
	}
	return nil
}

// srcQueue is one source's FIFO of ungranted requests. Popping advances
// head instead of re-slicing, so the backing array is reused across the
// whole run instead of creeping forward and reallocating.
type srcQueue struct {
	reqs []*Req
	head int
}

func (q *srcQueue) len() int { return len(q.reqs) - q.head }

func (q *srcQueue) push(r *Req) { q.reqs = append(q.reqs, r) }

func (q *srcQueue) pop() *Req {
	r := q.reqs[q.head]
	q.reqs[q.head] = nil
	q.head++
	if q.head == len(q.reqs) {
		q.reqs = q.reqs[:0]
		q.head = 0
	}
	return r
}

// Bus is the shared split-transaction bus.
type Bus struct {
	p       Params
	handler Handler

	queues   []srcQueue // per-source request queues
	rrNext   int        // round-robin pointer
	addrFree uint64     // next CPU cycle the address path is free
	dataFree uint64     // next CPU cycle the data path is free

	// wakeAt caches the earliest cycle Tick can do anything (see WakeAt);
	// Submit lowers it, Tick recomputes it.
	wakeAt uint64

	// Stats.
	Grants       [numKinds]uint64
	BeatsCarried uint64
	// ArbWait accumulates CPU cycles requests spent waiting for a grant.
	ArbWait uint64

	// Trace, when non-nil, observes every address-phase grant (the
	// simulator wires it to the structured event trace).
	Trace func(cycle uint64, k Kind, src int, addr uint64)

	// Faults, when non-nil, injects deterministic faults: each grant may
	// have its service latency stretched (fault.BusDelay). Nil means no
	// fault injection.
	Faults *fault.Injector
}

// New creates a bus with n requesters.
func New(p Params, n int, h Handler) *Bus {
	if p.WidthBytes <= 0 || p.CPB <= 0 {
		panic(fmt.Sprintf("bus: bad params %+v", p))
	}
	if p.ArbLat <= 0 {
		p.ArbLat = 1
	}
	if p.SnoopLat <= 0 {
		p.SnoopLat = 1
	}
	return &Bus{
		p:       p,
		handler: h,
		queues:  make([]srcQueue, n),
		wakeAt:  ^uint64(0),
	}
}

// Params returns the bus configuration.
func (b *Bus) Params() Params { return b.p }

// BeatsForBytes returns the number of data beats needed for n bytes.
func (b *Bus) BeatsForBytes(n int) int {
	return (n + b.p.WidthBytes - 1) / b.p.WidthBytes
}

// Submit enqueues a request for arbitration.
func (b *Bus) Submit(cycle uint64, r *Req) {
	if r.Src < 0 || r.Src >= len(b.queues) {
		panic(fmt.Sprintf("bus: bad source %d", r.Src))
	}
	b.queues[r.Src].push(r)
	r.submitAt = cycle
	// The earliest possible grant is the next tick (components submit
	// after the bus has ticked this cycle); Tick tightens the wake to the
	// real address-path availability.
	if cycle+1 < b.wakeAt {
		b.wakeAt = cycle + 1
	}
}

// PendingFor returns the number of queued (ungranted) requests from src.
func (b *Bus) PendingFor(src int) int { return b.queues[src].len() }

// Idle reports whether the bus has no queued requests and both paths free.
func (b *Bus) Idle(cycle uint64) bool {
	for i := range b.queues {
		if b.queues[i].len() > 0 {
			return false
		}
	}
	return b.addrFree <= cycle && b.dataFree <= cycle
}

// WakeAt returns the cached earliest cycle at which ticking the bus can
// have any effect (grant a request or drain a path and flip Idle). The
// wake-gated kernel skips Tick calls before it; ticking earlier is
// harmless, just wasted work.
func (b *Bus) WakeAt() uint64 { return b.wakeAt }

// NextWake returns the earliest future cycle at which the bus can change
// state on its own: the next grant opportunity when requests are queued,
// or the cycle its address/data paths drain (which can flip Idle and so
// let the machine quiesce). Returns ^uint64(0) when nothing is pending.
func (b *Bus) NextWake(cycle uint64) uint64 {
	for i := range b.queues {
		if b.queues[i].len() > 0 {
			if b.addrFree > cycle {
				return b.addrFree
			}
			return cycle + 1
		}
	}
	w := ^uint64(0)
	if b.addrFree > cycle {
		w = b.addrFree
	}
	if b.dataFree > cycle && b.dataFree < w {
		w = b.dataFree
	}
	return w
}

// Tick advances the bus one CPU cycle, granting at most one address phase
// when the address path is free.
func (b *Bus) Tick(cycle uint64) {
	b.tick(cycle)
	b.wakeAt = b.NextWake(cycle)
}

func (b *Bus) tick(cycle uint64) {
	if cycle < b.addrFree {
		return
	}
	// Round-robin across sources with pending requests.
	n := len(b.queues)
	for i := 0; i < n; i++ {
		src := (b.rrNext + i) % n
		if b.queues[src].len() == 0 {
			continue
		}
		r := b.queues[src].pop()
		b.rrNext = (src + 1) % n
		b.grant(cycle, r)
		return
	}
}

func (b *Bus) grant(cycle uint64, r *Req) {
	r.granted = true
	b.Grants[r.Kind]++
	if b.Trace != nil {
		b.Trace(cycle, r.Kind, r.Src, r.Addr)
	}
	b.ArbWait += cycle - r.submitAt
	cpb := uint64(b.p.CPB)
	addrPhase := uint64(b.p.ArbLat+b.p.SnoopLat) * cpb

	serviceLat, beats := 0, 0
	if b.handler != nil {
		serviceLat, beats = b.handler(r, cycle)
	}
	b.BeatsCarried += uint64(beats)

	ready := cycle + addrPhase + uint64(serviceLat) + b.Faults.BusDelay(cycle)
	done := ready
	if beats > 0 {
		start := max64(ready, b.dataFree)
		done = start + uint64(beats)*cpb
		b.dataFree = done
	}
	if b.p.Pipelined {
		// A pipelined bus can accept a new address phase every bus cycle.
		b.addrFree = cycle + cpb
	} else {
		// A non-pipelined bus is occupied for the whole transaction.
		b.addrFree = done
	}
	if r.Owner != nil {
		r.Owner.ReqDone(r, done)
	} else if r.Done != nil {
		r.Done(done)
	}
}

// ReqInfo is a diagnostic snapshot of one queued (ungranted) request.
type ReqInfo struct {
	Kind     Kind
	Addr     uint64
	Src      int
	Q        int
	SubmitAt uint64
}

// PendingRequests snapshots every queued request in source order, for
// deadlock forensics.
func (b *Bus) PendingRequests() []ReqInfo {
	var out []ReqInfo
	for i := range b.queues {
		q := &b.queues[i]
		for _, r := range q.reqs[q.head:] {
			out = append(out, ReqInfo{Kind: r.Kind, Addr: r.Addr, Src: r.Src, Q: r.Q, SubmitAt: r.submitAt})
		}
	}
	return out
}

// AddrFree returns the next CPU cycle the address path is free.
func (b *Bus) AddrFree() uint64 { return b.addrFree }

// DataFree returns the next CPU cycle the data path is free.
func (b *Bus) DataFree() uint64 { return b.dataFree }

// TotalGrants returns the number of granted transactions across kinds.
func (b *Bus) TotalGrants() uint64 {
	var t uint64
	for _, g := range b.Grants {
		t += g
	}
	return t
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
