package bus

import (
	"testing"
)

func TestBeatsForBytes(t *testing.T) {
	b := New(DefaultParams(), 2, nil)
	cases := map[int]int{1: 1, 16: 1, 17: 2, 128: 8, 0: 0}
	for n, want := range cases {
		if got := b.BeatsForBytes(n); got != want {
			t.Errorf("BeatsForBytes(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestKindStrings(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		if s := k.String(); s == "" || s[0] == 'K' && s != "Kind(0)" {
			t.Errorf("kind %d has suspicious name %q", int(k), s)
		}
	}
}

// TestGrantTiming checks a single transaction's latency composition.
func TestGrantTiming(t *testing.T) {
	var doneAt uint64
	handler := func(r *Req, grant uint64) (int, int) { return 10, 8 }
	b := New(DefaultParams(), 1, handler)
	b.Submit(0, &Req{Kind: Read, Addr: 0x1000, Src: 0,
		Done: func(c uint64) { doneAt = c }})
	b.Tick(1)
	// grant at 1; address phase (arb 1 + snoop 2) = 3; service 10;
	// 8 beats at CPB 1 = 8 -> done at 1+3+10+8 = 22.
	if doneAt != 22 {
		t.Errorf("done at %d, want 22", doneAt)
	}
	if b.TotalGrants() != 1 || b.Grants[Read] != 1 {
		t.Error("grant counters wrong")
	}
	if b.BeatsCarried != 8 {
		t.Errorf("beats = %d", b.BeatsCarried)
	}
}

// TestRoundRobinFairness alternates grants between two hot requesters.
func TestRoundRobinFairness(t *testing.T) {
	order := []int{}
	handler := func(r *Req, grant uint64) (int, int) { return 0, 0 }
	b := New(DefaultParams(), 2, handler)
	for i := 0; i < 4; i++ {
		src := i % 2
		s := src
		b.Submit(0, &Req{Kind: Upgrade, Src: src, Done: func(uint64) { order = append(order, s) }})
	}
	for c := uint64(1); c <= 10; c++ {
		b.Tick(c)
	}
	if len(order) != 4 {
		t.Fatalf("granted %d, want 4", len(order))
	}
	for i := 1; i < len(order); i++ {
		if order[i] == order[i-1] {
			t.Errorf("round robin violated: %v", order)
		}
	}
}

// TestPipelinedVsUnpipelined: the unpipelined bus holds the address path
// for the whole transaction; the pipelined bus accepts one per cycle.
func TestPipelinedVsUnpipelined(t *testing.T) {
	run := func(pipelined bool) uint64 {
		p := DefaultParams()
		p.Pipelined = pipelined
		var last uint64
		handler := func(r *Req, grant uint64) (int, int) { return 5, 8 }
		b := New(p, 1, handler)
		for i := 0; i < 4; i++ {
			b.Submit(0, &Req{Kind: Read, Src: 0, Addr: uint64(i * 128),
				Done: func(c uint64) {
					if c > last {
						last = c
					}
				}})
		}
		for c := uint64(1); c <= 200; c++ {
			b.Tick(c)
		}
		return last
	}
	pipe, noPipe := run(true), run(false)
	if pipe >= noPipe {
		t.Errorf("pipelined (%d) should finish before unpipelined (%d)", pipe, noPipe)
	}
}

// TestDataBusSerializes: back-to-back line transfers queue on the data
// path even on a pipelined bus.
func TestDataBusSerializes(t *testing.T) {
	var times []uint64
	handler := func(r *Req, grant uint64) (int, int) { return 0, 8 }
	b := New(DefaultParams(), 1, handler)
	for i := 0; i < 3; i++ {
		b.Submit(0, &Req{Kind: Read, Src: 0, Done: func(c uint64) { times = append(times, c) }})
	}
	for c := uint64(1); c <= 100; c++ {
		b.Tick(c)
	}
	if len(times) != 3 {
		t.Fatalf("completed %d", len(times))
	}
	for i := 1; i < 3; i++ {
		if times[i]-times[i-1] < 8 {
			t.Errorf("transfers %d and %d overlap on the data bus: %v", i-1, i, times)
		}
	}
}

// TestCPBScalesLatency: a 4-CPU-cycle bus takes 4x the beats time.
func TestCPBScalesLatency(t *testing.T) {
	run := func(cpb int) uint64 {
		p := DefaultParams()
		p.CPB = cpb
		var done uint64
		b := New(p, 1, func(r *Req, g uint64) (int, int) { return 0, 8 })
		b.Submit(0, &Req{Kind: Read, Src: 0, Done: func(c uint64) { done = c }})
		b.Tick(1)
		return done
	}
	if d1, d4 := run(1), run(4); d4 <= d1 || d4-1 < (d1-1)*3 {
		t.Errorf("CPB scaling wrong: cpb1 done %d, cpb4 done %d", d1, d4)
	}
}

func TestIdleAndPending(t *testing.T) {
	b := New(DefaultParams(), 2, func(r *Req, g uint64) (int, int) { return 0, 0 })
	if !b.Idle(1) {
		t.Error("fresh bus should be idle")
	}
	b.Submit(1, &Req{Kind: Upgrade, Src: 1})
	if b.Idle(1) {
		t.Error("bus with queued request is not idle")
	}
	if b.PendingFor(1) != 1 || b.PendingFor(0) != 0 {
		t.Error("PendingFor wrong")
	}
	b.Tick(2)
	if b.PendingFor(1) != 0 {
		t.Error("request not drained")
	}
}

func TestArbWaitAccumulates(t *testing.T) {
	b := New(DefaultParams(), 1, func(r *Req, g uint64) (int, int) { return 0, 0 })
	b.Submit(1, &Req{Kind: Upgrade, Src: 0})
	b.Submit(1, &Req{Kind: Upgrade, Src: 0})
	b.Tick(5)
	b.Tick(6)
	if b.ArbWait != (5-1)+(6-1) {
		t.Errorf("ArbWait = %d, want %d", b.ArbWait, (5-1)+(6-1))
	}
}

func TestBadSourcePanics(t *testing.T) {
	b := New(DefaultParams(), 1, nil)
	defer func() {
		if recover() == nil {
			t.Error("bad source accepted")
		}
	}()
	b.Submit(0, &Req{Src: 7})
}

func TestNoteCallback(t *testing.T) {
	noted := -1
	h := func(r *Req, g uint64) (int, int) {
		if r.Note != nil {
			r.Note(SupplierMem)
		}
		return 0, 0
	}
	b := New(DefaultParams(), 1, h)
	b.Submit(0, &Req{Kind: Read, Src: 0, Note: func(s int) { noted = s }})
	b.Tick(1)
	if noted != SupplierMem {
		t.Errorf("Note got %d", noted)
	}
}
