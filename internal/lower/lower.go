// Package lower rewrites produce/consume instructions into the
// shared-memory software-queue sequences used by the EXISTING and MEMOPTI
// design points (paper Figure 4 and Section 4.3): spin on a full/empty
// flag, transfer the data word, fence, update the flag, and advance the
// stream address — roughly ten instructions per communication with a
// dependence height of about four.
//
// Queues with a declared multi-producer/multi-consumer route lower to the
// ticket-striped variant instead: endpoint i of P starts at slot i and
// strides by P, so the item with global ticket k always lives in slot
// k mod Depth and is handled by producer k mod P / consumer k mod C. Each
// slot then has exactly one writer and one clearer, which is what makes
// the flag handshake — and the queue contents — independent of how the
// endpoints interleave. The striped sequences give up the two SPSC cache
// tunings (the producer's guard-line slip and the consumer's batched
// line clear) because both assume exclusive ownership of whole lines.
package lower

import (
	"fmt"

	"hfstream/internal/isa"
	"hfstream/internal/queue"
)

// scratch registers claimed from the top of the register file.
const (
	regAddr  = isa.Reg(isa.NumRegs - 1) // current slot address
	regTmp   = isa.Reg(isa.NumRegs - 2) // flag scratch
	regGuard = isa.Reg(isa.NumRegs - 3) // producer guard-slot address
	// per-queue offset registers are allocated downward from regQBase.
	regQBase = isa.Reg(isa.NumRegs - 4)
)

// Lower rewrites prog's produce/consume instructions into software-queue
// sequences over the given layout. It returns a new program; the input is
// not modified. All queues are treated as 1:1 (the classic dual-core
// case); use LowerRoles for MPMC topologies.
func Lower(prog *isa.Program, layout queue.Layout) (*isa.Program, error) {
	return LowerRoles(prog, layout, 0, nil)
}

// qmode carries one queue's per-thread lowering parameters.
type qmode struct {
	mpmc       bool
	prodInit   int64 // initial producer offset (bytes)
	prodStride int64 // producer offset stride (bytes)
	consInit   int64
	consStride int64
}

// LowerRoles is Lower with MPMC awareness: core is the ID this program
// will run on, and roles maps queue IDs to their declared endpoint sets.
// Queues without a route (or with a 1:1 route) emit the classic
// sequences bit-for-bit; MPMC queues emit ticket-striped sequences in
// which this core touches only the slots its role index owns.
func LowerRoles(prog *isa.Program, layout queue.Layout, core int, roles map[int]queue.MPMCRoute) (*isa.Program, error) {
	if !layout.HasFlags() {
		return nil, fmt.Errorf("lower: layout QLU %d leaves no room for flag words", layout.QLU)
	}
	// Collect the queues this thread touches and check register usage.
	queues := []int{}
	seen := map[int]bool{}
	produces := map[int]bool{}
	consumes := map[int]bool{}
	maxReg := isa.Reg(0)
	for _, in := range prog.Instrs {
		if in.Op == isa.Produce || in.Op == isa.Consume {
			if !seen[in.Q] {
				seen[in.Q] = true
				queues = append(queues, in.Q)
			}
			if in.Op == isa.Produce {
				produces[in.Q] = true
			} else {
				consumes[in.Q] = true
			}
		}
		if in.Op.WritesRd() && in.Rd > maxReg {
			maxReg = in.Rd
		}
		if in.Op.ReadsRa() && in.Ra > maxReg {
			maxReg = in.Ra
		}
		if in.Op.ReadsRb() && in.Rb > maxReg {
			maxReg = in.Rb
		}
	}
	if len(queues) == 0 {
		return prog, nil
	}

	qBytes := int64(layout.QueueBytes())
	slotBytes := int64(layout.SlotBytes())
	slots := qBytes / slotBytes

	modes := map[int]qmode{}
	for _, q := range queues {
		m := qmode{prodStride: slotBytes, consStride: slotBytes}
		if r, ok := roles[q]; ok && r.IsMPMC() {
			if produces[q] && consumes[q] {
				return nil, fmt.Errorf("lower: program %s both produces and consumes MPMC q%d (one offset register cannot track two roles)", prog.Name, q)
			}
			if slots%int64(r.P()) != 0 || slots%int64(r.C()) != 0 {
				return nil, fmt.Errorf("lower: MPMC q%d endpoints (%dP/%dC) do not divide the %d-slot layout (slot ownership would drift across wraps)",
					q, r.P(), r.C(), slots)
			}
			m.mpmc = true
			if produces[q] {
				pIdx := r.ProducerIndex(core)
				if pIdx < 0 {
					return nil, fmt.Errorf("lower: program %s on core %d produces MPMC q%d but the route lists producers %v", prog.Name, core, q, r.Producers)
				}
				m.prodInit = int64(pIdx) * slotBytes
				m.prodStride = int64(r.P()) * slotBytes
			}
			if consumes[q] {
				cIdx := r.ConsumerIndex(core)
				if cIdx < 0 {
					return nil, fmt.Errorf("lower: program %s on core %d consumes MPMC q%d but the route lists consumers %v", prog.Name, core, q, r.Consumers)
				}
				m.consInit = int64(cIdx) * slotBytes
				m.consStride = int64(r.C()) * slotBytes
			}
		}
		modes[q] = m
	}

	offReg := map[int]isa.Reg{}
	baseReg := map[int]isa.Reg{}
	next := regQBase
	for _, q := range queues {
		offReg[q] = next
		next--
		baseReg[q] = next
		next--
	}
	if maxReg >= next+1 {
		return nil, fmt.Errorf("lower: program %s uses register r%d, which collides with lowering scratch registers (r%d and up)",
			prog.Name, maxReg, next+1)
	}

	out := &isa.Program{Name: prog.Name + ".swq"}

	emit := func(in isa.Instr) { out.Instrs = append(out.Instrs, in) }
	comm := func(in isa.Instr) {
		in.Comm = true
		emit(in)
	}

	// Prologue: base addresses and offsets. An MPMC endpoint starts at
	// the slot its role index owns.
	for _, q := range queues {
		off := modes[q].prodInit
		if consumes[q] {
			off = modes[q].consInit
		}
		comm(isa.Instr{Op: isa.MovI, Rd: baseReg[q], Imm: int64(layout.SlotAddr(q, 0))})
		comm(isa.Instr{Op: isa.MovI, Rd: offReg[q], Imm: off})
	}
	prologue := len(out.Instrs)

	// First pass: map original instruction index -> lowered index.
	newIndex := make([]int, len(prog.Instrs)+1)
	idx := prologue
	for i, in := range prog.Instrs {
		newIndex[i] = idx
		switch in.Op {
		case isa.Produce:
			if modes[in.Q].mpmc {
				idx += mpmcProduceLen
			} else {
				idx += produceLen
			}
		case isa.Consume:
			if modes[in.Q].mpmc {
				idx += mpmcConsumeLen
			} else {
				idx += consumeLen(layout)
			}
		default:
			idx++
		}
	}
	newIndex[len(prog.Instrs)] = idx

	// Second pass: emit.
	for _, in := range prog.Instrs {
		switch in.Op {
		case isa.Produce:
			m := modes[in.Q]
			if m.mpmc {
				emitProduceMPMC(comm, in, offReg[in.Q], baseReg[in.Q], len(out.Instrs), m.prodStride, qBytes)
			} else {
				emitProduce(comm, in, offReg[in.Q], baseReg[in.Q], len(out.Instrs), slotBytes, qBytes, int64(layout.LineBytes))
			}
		case isa.Consume:
			m := modes[in.Q]
			if m.mpmc {
				emitConsumeMPMC(comm, in, offReg[in.Q], baseReg[in.Q], len(out.Instrs), m.consStride, qBytes)
			} else {
				emitConsume(comm, in, offReg[in.Q], baseReg[in.Q], len(out.Instrs), layout)
			}
		default:
			if in.Op.IsBranch() {
				in.Imm = int64(newIndex[in.Imm])
			}
			emit(in)
		}
	}
	// A trailing consume's skip branch lands one instruction past its
	// expansion; when the consume ends the program that target needs a
	// real landing pad for the lowered program to validate.
	if n := len(prog.Instrs); n > 0 && prog.Instrs[n-1].Op == isa.Consume {
		emit(isa.Instr{Op: isa.Halt})
	}
	return out, nil
}

// MustLower is Lower but panics on error.
func MustLower(prog *isa.Program, layout queue.Layout) *isa.Program {
	p, err := Lower(prog, layout)
	if err != nil {
		panic(err)
	}
	return p
}

// produceLen is the emitted produce sequence length; the index mapping in
// Lower depends on it. The consume length depends on the layout's QLU
// (its batched flag clear writes one store per slot on the line).
const produceLen = 12

func consumeLen(layout queue.Layout) int { return 10 + layout.QLU }

// mpmcProduceLen / mpmcConsumeLen size the ticket-striped sequences.
const (
	mpmcProduceLen = 9
	mpmcConsumeLen = 9
)

// emitProduce writes the producer-side sequence. The spin checks the
// guard slot one cache line ahead (a standard tuned-software-queue slip:
// the producer stays a line behind the consumer's wrap point), so its
// polling read does not steal the line the consumer is actively
// clearing. The guard flag being empty implies the current slot's flag
// is empty too, since the consumer clears flags in order.
//
//	addi rGuard, rOff, line    ; guard-slot offset (one line ahead)
//	andi rGuard, rGuard, qmask
//	add  rGuard, rBase, rGuard
//	ld   rTmp, [rGuard+8]      ; spin: load guard full flag
//	bnez rTmp, spin            ; spin while full
//	add  rAddr, rBase, rOff    ; stream address
//	st   [rAddr+0], value      ; data transfer
//	fence                      ; data before flag
//	movi rTmp, 1
//	st   [rAddr+8], rTmp       ; mark full
//	addi rOff, rOff, slot      ; advance stream address
//	andi rOff, rOff, qmask
func emitProduce(comm func(isa.Instr), in isa.Instr, rOff, rBase isa.Reg, at int, slotBytes, qBytes, lineBytes int64) {
	spin := int64(at + 3)
	comm(isa.Instr{Op: isa.AddI, Rd: regGuard, Ra: rOff, Imm: lineBytes})
	comm(isa.Instr{Op: isa.AndI, Rd: regGuard, Ra: regGuard, Imm: qBytes - 1})
	comm(isa.Instr{Op: isa.Add, Rd: regGuard, Ra: rBase, Rb: regGuard})
	comm(isa.Instr{Op: isa.Ld, Rd: regTmp, Ra: regGuard, Imm: 8})
	comm(isa.Instr{Op: isa.Bnez, Ra: regTmp, Imm: spin})
	comm(isa.Instr{Op: isa.Add, Rd: regAddr, Ra: rBase, Rb: rOff})
	comm(isa.Instr{Op: isa.St, Ra: regAddr, Imm: 0, Rb: in.Ra})
	comm(isa.Instr{Op: isa.Fence})
	comm(isa.Instr{Op: isa.MovI, Rd: regTmp, Imm: 1})
	comm(isa.Instr{Op: isa.St, Ra: regAddr, Imm: 8, Rb: regTmp})
	comm(isa.Instr{Op: isa.AddI, Rd: rOff, Ra: rOff, Imm: slotBytes})
	comm(isa.Instr{Op: isa.AndI, Rd: rOff, Ra: rOff, Imm: qBytes - 1})
}

// emitConsume writes the consumer-side sequence with batched lazy flag
// clearing: per-item the consumer only spins on its slot's full flag and
// reads the data; once it finishes the last slot of a cache line it
// clears the whole line's flags in one burst (a single upgrade of a line
// it already holds). Combined with the producer's guard-slot slip this
// keeps hot queue lines read-shared instead of ping-ponging per item —
// the standard tuned software-queue discipline.
//
//	add  rAddr, rBase, rOff
//	ld   rTmp, [rAddr+8]      ; spin: load full flag
//	beqz rTmp, spin           ; spin while empty
//	ld   rd, [rAddr+0]        ; data transfer
//	addi rOff, rOff, slot     ; advance stream address
//	andi rOff, rOff, qmask
//	andi rTmp, rOff, line-1   ; crossed a line boundary?
//	bnez rTmp, skip
//	fence                     ; reads precede the batched clear
//	movi rTmp, 0
//	st   [rAddr+8-16k], rTmp  ; clear the QLU flags of the finished line
//	...
//
// skip:
func emitConsume(comm func(isa.Instr), in isa.Instr, rOff, rBase isa.Reg, at int, layout queue.Layout) {
	slotBytes := int64(layout.SlotBytes())
	qBytes := int64(layout.QueueBytes())
	lineBytes := int64(layout.LineBytes)
	spin := int64(at + 1)
	skip := int64(at + 10 + layout.QLU)
	comm(isa.Instr{Op: isa.Add, Rd: regAddr, Ra: rBase, Rb: rOff})
	comm(isa.Instr{Op: isa.Ld, Rd: regTmp, Ra: regAddr, Imm: 8})
	comm(isa.Instr{Op: isa.Beqz, Ra: regTmp, Imm: spin})
	comm(isa.Instr{Op: isa.Ld, Rd: in.Rd, Ra: regAddr, Imm: 0})
	comm(isa.Instr{Op: isa.AddI, Rd: rOff, Ra: rOff, Imm: slotBytes})
	comm(isa.Instr{Op: isa.AndI, Rd: rOff, Ra: rOff, Imm: qBytes - 1})
	comm(isa.Instr{Op: isa.AndI, Rd: regTmp, Ra: rOff, Imm: lineBytes - 1})
	comm(isa.Instr{Op: isa.Bnez, Ra: regTmp, Imm: skip})
	comm(isa.Instr{Op: isa.Fence})
	comm(isa.Instr{Op: isa.MovI, Rd: regTmp, Imm: 0})
	for i := 0; i < layout.QLU; i++ {
		comm(isa.Instr{Op: isa.St, Ra: regAddr, Imm: 8 - int64(i)*slotBytes, Rb: regTmp})
	}
	// skip: lands on the instruction after the sequence.
}

// emitProduceMPMC writes the ticket-striped producer sequence: spin on
// this producer's own slot (the consumer that emptied it last cleared its
// flag directly — no guard-line slip, since the line is shared with other
// endpoints anyway), then advance by P slots.
//
//	add  rAddr, rBase, rOff
//	ld   rTmp, [rAddr+8]      ; spin: own slot's full flag
//	bnez rTmp, spin           ; spin while full
//	st   [rAddr+0], value     ; data transfer
//	fence                     ; data before flag
//	movi rTmp, 1
//	st   [rAddr+8], rTmp      ; mark full
//	addi rOff, rOff, P*slot   ; next owned slot
//	andi rOff, rOff, qmask
func emitProduceMPMC(comm func(isa.Instr), in isa.Instr, rOff, rBase isa.Reg, at int, stride, qBytes int64) {
	spin := int64(at + 1)
	comm(isa.Instr{Op: isa.Add, Rd: regAddr, Ra: rBase, Rb: rOff})
	comm(isa.Instr{Op: isa.Ld, Rd: regTmp, Ra: regAddr, Imm: 8})
	comm(isa.Instr{Op: isa.Bnez, Ra: regTmp, Imm: spin})
	comm(isa.Instr{Op: isa.St, Ra: regAddr, Imm: 0, Rb: in.Ra})
	comm(isa.Instr{Op: isa.Fence})
	comm(isa.Instr{Op: isa.MovI, Rd: regTmp, Imm: 1})
	comm(isa.Instr{Op: isa.St, Ra: regAddr, Imm: 8, Rb: regTmp})
	comm(isa.Instr{Op: isa.AddI, Rd: rOff, Ra: rOff, Imm: stride})
	comm(isa.Instr{Op: isa.AndI, Rd: rOff, Ra: rOff, Imm: qBytes - 1})
}

// emitConsumeMPMC writes the ticket-striped consumer sequence: per-slot
// eager flag clear (the batched line clear would wipe slots owned by
// other consumers), then advance by C slots.
//
//	add  rAddr, rBase, rOff
//	ld   rTmp, [rAddr+8]      ; spin: own slot's full flag
//	beqz rTmp, spin           ; spin while empty
//	ld   rd, [rAddr+0]        ; data transfer
//	fence                     ; read precedes the clear
//	movi rTmp, 0
//	st   [rAddr+8], rTmp      ; mark empty
//	addi rOff, rOff, C*slot   ; next owned slot
//	andi rOff, rOff, qmask
func emitConsumeMPMC(comm func(isa.Instr), in isa.Instr, rOff, rBase isa.Reg, at int, stride, qBytes int64) {
	spin := int64(at + 1)
	comm(isa.Instr{Op: isa.Add, Rd: regAddr, Ra: rBase, Rb: rOff})
	comm(isa.Instr{Op: isa.Ld, Rd: regTmp, Ra: regAddr, Imm: 8})
	comm(isa.Instr{Op: isa.Beqz, Ra: regTmp, Imm: spin})
	comm(isa.Instr{Op: isa.Ld, Rd: in.Rd, Ra: regAddr, Imm: 0})
	comm(isa.Instr{Op: isa.Fence})
	comm(isa.Instr{Op: isa.MovI, Rd: regTmp, Imm: 0})
	comm(isa.Instr{Op: isa.St, Ra: regAddr, Imm: 8, Rb: regTmp})
	comm(isa.Instr{Op: isa.AddI, Rd: rOff, Ra: rOff, Imm: stride})
	comm(isa.Instr{Op: isa.AndI, Rd: rOff, Ra: rOff, Imm: qBytes - 1})
}
