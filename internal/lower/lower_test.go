package lower

import (
	"testing"

	"hfstream/internal/asm"
	"hfstream/internal/interp"
	"hfstream/internal/isa"
	"hfstream/internal/mem"
	"hfstream/internal/queue"
)

func layout() queue.Layout {
	return queue.Layout{NumQueues: 64, Depth: 32, QLU: 8, LineBytes: 128}
}

func pipelinePair(n int64) (*isa.Program, *isa.Program) {
	b := asm.NewBuilder("prod")
	b.MovI(1, 1)
	b.MovI(2, n)
	b.Label("loop")
	b.Produce(0, 1)
	b.AddI(1, 1, 1)
	b.CmpLT(4, 2, 1)
	b.Beqz(4, "loop")
	b.MovI(5, 0)
	b.Produce(0, 5)
	b.Halt()
	prod := b.MustProgram()

	c := asm.NewBuilder("cons")
	c.MovI(1, 0)
	c.MovI(2, 0x8000)
	c.Label("loop")
	c.Consume(3, 0)
	c.Beqz(3, "done")
	c.Add(1, 1, 3)
	c.B("loop")
	c.Label("done")
	c.St(2, 0, 1)
	c.Halt()
	return prod, c.MustProgram()
}

func TestLowerRemovesStreamOps(t *testing.T) {
	prod, cons := pipelinePair(100)
	for _, p := range []*isa.Program{prod, cons} {
		lp, err := Lower(p, layout())
		if err != nil {
			t.Fatal(err)
		}
		for _, in := range lp.Instrs {
			if in.Op == isa.Produce || in.Op == isa.Consume {
				t.Fatalf("%s still contains %v", lp.Name, in)
			}
		}
		if len(lp.Instrs) <= len(p.Instrs) {
			t.Error("lowered program should be longer")
		}
	}
}

func TestLowerPreservesSemantics(t *testing.T) {
	const n = 100
	prod, cons := pipelinePair(n)
	lp, err := Lower(prod, layout())
	if err != nil {
		t.Fatal(err)
	}
	lc, err := Lower(cons, layout())
	if err != nil {
		t.Fatal(err)
	}
	img := mem.New()
	m := interp.New(img, lp, lc)
	if err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	want := uint64(n * (n + 1) / 2)
	if got := img.Read8(0x8000); got != want {
		t.Fatalf("sum = %d, want %d", got, want)
	}
}

func TestLowerCommTagging(t *testing.T) {
	prod, _ := pipelinePair(10)
	lp, err := Lower(prod, layout())
	if err != nil {
		t.Fatal(err)
	}
	comm := 0
	for _, in := range lp.Instrs {
		if in.Comm {
			comm++
		}
	}
	// 2 produce sites x produceLen + 2 prologue movi per queue.
	want := 2*produceLen + 2
	if comm != want {
		t.Errorf("comm-tagged instrs = %d, want %d", comm, want)
	}
}

func TestLowerBranchRemap(t *testing.T) {
	prod, _ := pipelinePair(10)
	lp, err := Lower(prod, layout())
	if err != nil {
		t.Fatal(err)
	}
	if err := lp.Validate(64); err != nil {
		t.Fatalf("lowered branch targets invalid: %v", err)
	}
	// The loop back-edge must land on the start of the lowered produce
	// sequence (the original branch targeted the produce).
	var backEdge *isa.Instr
	for i := range lp.Instrs {
		if lp.Instrs[i].Op == isa.Beqz {
			backEdge = &lp.Instrs[i]
		}
	}
	if backEdge == nil {
		t.Fatal("no back edge found")
	}
	// Target is the prologue (2 instructions) plus the two leading movi
	// instructions of the original program.
	if backEdge.Imm != 4 {
		t.Errorf("back edge targets %d, want 4", backEdge.Imm)
	}
}

func TestLowerNoQueuesIsIdentity(t *testing.T) {
	b := asm.NewBuilder("plain")
	b.MovI(1, 1)
	b.Halt()
	p := b.MustProgram()
	lp, err := Lower(p, layout())
	if err != nil {
		t.Fatal(err)
	}
	if lp != p {
		t.Error("program without queues should be returned unchanged")
	}
}

func TestLowerRegisterConflict(t *testing.T) {
	b := asm.NewBuilder("greedy")
	b.MovI(63, 1) // collides with lowering scratch registers
	b.Produce(0, 63)
	b.Halt()
	if _, err := Lower(b.MustProgram(), layout()); err == nil {
		t.Error("register conflict accepted")
	}
}

func TestLowerRejectsFlaglessLayout(t *testing.T) {
	dense := queue.Layout{NumQueues: 64, Depth: 64, QLU: 16, LineBytes: 128}
	prod, _ := pipelinePair(10)
	if _, err := Lower(prod, dense); err == nil {
		t.Error("flagless layout accepted for software queues")
	}
}

func TestGuardSlipCapacity(t *testing.T) {
	// The producer's guard slot keeps it one line behind the wrap point:
	// with depth 32 and QLU 8 it can run at most 24 items ahead. Verify
	// by producing without a consumer in the interpreter: the producer
	// must spin (never halt) after exactly depth-QLU items.
	c := asm.NewBuilder("p2")
	c.MovI(1, 1)
	c.MovI(2, 100)
	c.Label("loop")
	c.Produce(0, 1)
	c.AddI(1, 1, 1)
	c.CmpLT(4, 2, 1)
	c.Beqz(4, "loop")
	c.Halt()
	lp, err := Lower(c.MustProgram(), layout())
	if err != nil {
		t.Fatal(err)
	}
	img := mem.New()
	m := interp.New(img, lp)
	err = m.Run(2_000_000)
	if err == nil {
		t.Fatal("producer without consumer should spin forever")
	}
	// Count the flags it managed to set: depth - QLU items.
	l := layout()
	set := 0
	for s := 0; s < l.Depth; s++ {
		if img.Read8(l.FlagAddr(0, s)) == 1 {
			set++
		}
	}
	if set != l.Depth-l.QLU {
		t.Errorf("producer ran %d items ahead, want %d", set, l.Depth-l.QLU)
	}
}
