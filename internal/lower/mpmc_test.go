package lower

import (
	"reflect"
	"testing"

	"hfstream/internal/asm"
	"hfstream/internal/interp"
	"hfstream/internal/isa"
	"hfstream/internal/mem"
	"hfstream/internal/queue"
)

// mpmcProducer emits `count` produces of values first, first+stride, ...
// into q0 — under the ticket discipline a producer's values are exactly
// its own global tickets when first is its role index and stride is P.
func mpmcProducer(name string, first, stride, count int64) *isa.Program {
	b := asm.NewBuilder(name)
	b.MovI(1, first)
	b.MovI(2, stride)
	b.MovI(3, count)
	b.Label("loop")
	b.Produce(0, 1)
	b.Add(1, 1, 2)
	b.AddI(3, 3, -1)
	b.Bnez(3, "loop")
	b.Halt()
	return b.MustProgram()
}

// mpmcSummer consumes `count` items from q0 and stores an order-sensitive
// checksum (total += running prefix sum) at 0x8000.
func mpmcSummer(count int64) *isa.Program {
	c := asm.NewBuilder("sum")
	c.MovI(1, 0) // prefix accumulator
	c.MovI(2, 0) // checksum
	c.MovI(5, count)
	c.MovI(6, 0x8000)
	c.Label("loop")
	c.Consume(3, 0)
	c.Add(1, 1, 3)
	c.Add(2, 2, 1)
	c.AddI(5, 5, -1)
	c.Bnez(5, "loop")
	c.St(6, 0, 2)
	c.Halt()
	return c.MustProgram()
}

// Two producers fan into one consumer through a software MPMC queue. The
// lowered programs must compute the same order-sensitive checksum as the
// unlowered programs on the functional interpreter (the ticket oracle),
// which pins both the value set and the reconstruction order.
func TestLowerRolesMPMCFanIn(t *testing.T) {
	const n = 24
	roles := map[int]queue.MPMCRoute{
		0: {Producers: []int{0, 1}, Consumers: []int{2}},
	}
	prod0 := mpmcProducer("p0", 0, 2, n/2)
	prod1 := mpmcProducer("p1", 1, 2, n/2)
	cons := mpmcSummer(n)

	// Oracle: native produce/consume under the interpreter's ticket
	// discipline. Consumer sees tickets 0..n-1 in order, so the checksum
	// is sum of prefix sums of 0..n-1.
	var want, acc uint64
	for i := uint64(0); i < n; i++ {
		acc += i
		want += acc
	}
	img1 := mem.New()
	if err := interp.New(img1, prod0, prod1, cons).Run(0); err != nil {
		t.Fatal(err)
	}
	if got := img1.Read8(0x8000); got != want {
		t.Fatalf("oracle checksum = %d, want %d", got, want)
	}

	lowered := make([]*isa.Program, 3)
	for i, p := range []*isa.Program{prod0, prod1, cons} {
		lp, err := LowerRoles(p, layout(), i, roles)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		for _, in := range lp.Instrs {
			if in.Op == isa.Produce || in.Op == isa.Consume {
				t.Fatalf("%s still contains %v", lp.Name, in)
			}
		}
		lowered[i] = lp
	}
	img2 := mem.New()
	if err := interp.New(img2, lowered...).Run(0); err != nil {
		t.Fatal(err)
	}
	if got := img2.Read8(0x8000); got != want {
		t.Fatalf("lowered checksum = %d, want %d", got, want)
	}
}

// Queues without an MPMC route must lower bit-identically through
// LowerRoles and Lower, whatever core ID is supplied — the dual-core
// goldens depend on it. A 1:1 route is SPSC and must also change nothing.
func TestLowerRolesSPSCIdentity(t *testing.T) {
	prod, cons := pipelinePair(50)
	spsc := map[int]queue.MPMCRoute{0: {Producers: []int{0}, Consumers: []int{1}}}
	for i, p := range []*isa.Program{prod, cons} {
		want, err := Lower(p, layout())
		if err != nil {
			t.Fatal(err)
		}
		for _, roles := range []map[int]queue.MPMCRoute{nil, spsc} {
			got, err := LowerRoles(p, layout(), i, roles)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got.Instrs, want.Instrs) {
				t.Fatalf("%s: LowerRoles(roles=%v) differs from Lower", p.Name, roles)
			}
		}
	}
}

func TestLowerRolesMPMCErrors(t *testing.T) {
	prod := mpmcProducer("p", 0, 2, 4)

	// Core not in the declared producer set.
	roles := map[int]queue.MPMCRoute{0: {Producers: []int{0, 1}, Consumers: []int{2}}}
	if _, err := LowerRoles(prod, layout(), 5, roles); err == nil {
		t.Error("undeclared producer core accepted")
	}

	// Endpoint count not dividing the slot count (3 !| 32).
	bad := map[int]queue.MPMCRoute{0: {Producers: []int{0, 1, 2}, Consumers: []int{3}}}
	if _, err := LowerRoles(prod, layout(), 0, bad); err == nil {
		t.Error("non-dividing endpoint count accepted")
	}

	// One thread holding both roles of an MPMC queue.
	b := asm.NewBuilder("both")
	b.MovI(1, 7)
	b.Produce(0, 1)
	b.Consume(2, 0)
	b.Halt()
	both := b.MustProgram()
	dual := map[int]queue.MPMCRoute{0: {Producers: []int{0, 1}, Consumers: []int{0, 2}}}
	if _, err := LowerRoles(both, layout(), 0, dual); err == nil {
		t.Error("both-roles program accepted for an MPMC queue")
	}
}
