package lower

import (
	"testing"

	"hfstream/internal/asm"
	"hfstream/internal/isa"
	"hfstream/internal/queue"
)

// FuzzLower feeds assembler output through the software-queue lowering
// and checks the pipeline never panics: any program the assembler accepts
// and validation passes must either lower cleanly — to a program that
// validates and contains no residual produce/consume — or be rejected
// with a typed error (scratch-register collision). Run a real session
// with `go test -fuzz=FuzzLower ./internal/lower`.
func FuzzLower(f *testing.F) {
	seeds := []string{
		"halt",
		"produce q0, r1\nhalt",
		"consume r2, q0\nhalt",
		"movi r1, 1\nloop:\nproduce q0, r1\naddi r1, r1, 1\nbnez r1, loop\nhalt",
		"produce q0, r1\nproduce q1, r1\nconsume r2, q0\nconsume r3, q1\nhalt",
		"movi r49, 5\nproduce q0, r49\nhalt",  // highest legal register
		"movi r50, 5\nproduce q0, r50\nhalt",  // collides with scratch
		"movi r63, 5\nproduce q63, r63\nhalt", // collides, max queue
		"ld r1, [r2+8]\nproduce q3, r1\nst [r2+16], r1\nfence\nhalt",
		"consume r1, q0\nbeqz r1, done\nproduce q1, r1\ndone:\nhalt",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	layout := queue.Layout{NumQueues: 64, Depth: 32, QLU: 8, LineBytes: 128}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := asm.Parse("fuzz", src)
		if err != nil {
			return
		}
		if p.Validate(layout.NumQueues) != nil {
			return
		}
		low, err := Lower(p, layout)
		if err != nil {
			return // typed rejection (e.g. scratch-register collision) is fine
		}
		if err := low.Validate(layout.NumQueues); err != nil {
			t.Fatalf("lowered program fails validation: %v", err)
		}
		for i, in := range low.Instrs {
			if in.Op == isa.Produce || in.Op == isa.Consume {
				t.Fatalf("residual queue op at %d: %v", i, in)
			}
		}
	})
}
