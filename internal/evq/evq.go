// Package evq provides the simulator's calendar queue: a monotone
// min-heap of (cycle, payload) pairs with FIFO tie-breaking. Components
// schedule future work by pushing an event at its wake cycle and the
// owner pops everything due each tick, so the cost of waiting is paid
// per event rather than per cycle.
//
// Determinism contract: PopDue returns due events ordered first by wake
// cycle, then by insertion order. Because every event is scheduled at or
// after the cycle it is pushed, an owner that is ticked at every event's
// wake cycle (the wake-gating kernel guarantees this) pops each event on
// exactly the cycle it was scheduled for — identical to a brute-force
// per-cycle scan of the same events in insertion order.
package evq

// Queue is a min-heap of events keyed by (At, insertion sequence).
// The zero value is an empty queue ready for use.
type Queue[T any] struct {
	h   []item[T]
	seq uint64
}

type item[T any] struct {
	at  uint64
	seq uint64
	v   T
}

// less orders the heap by wake cycle, breaking ties by insertion order so
// same-cycle events replay in the order they were scheduled.
func (q *Queue[T]) less(i, j int) bool {
	if q.h[i].at != q.h[j].at {
		return q.h[i].at < q.h[j].at
	}
	return q.h[i].seq < q.h[j].seq
}

// Len returns the number of pending events.
func (q *Queue[T]) Len() int { return len(q.h) }

// Min returns the earliest pending wake cycle, or ^uint64(0) when empty.
func (q *Queue[T]) Min() uint64 {
	if len(q.h) == 0 {
		return ^uint64(0)
	}
	return q.h[0].at
}

// Push schedules v to become due at cycle at.
func (q *Queue[T]) Push(at uint64, v T) {
	q.seq++
	q.h = append(q.h, item[T]{at: at, seq: q.seq, v: v})
	q.up(len(q.h) - 1)
}

// PopDue removes and returns the earliest event due at or before cycle.
// ok is false when nothing is due.
func (q *Queue[T]) PopDue(cycle uint64) (v T, ok bool) {
	if len(q.h) == 0 || q.h[0].at > cycle {
		return v, false
	}
	v = q.h[0].v
	last := len(q.h) - 1
	q.h[0] = q.h[last]
	q.h[last] = item[T]{} // release the payload for GC
	q.h = q.h[:last]
	if last > 0 {
		q.down(0)
	}
	return v, true
}

func (q *Queue[T]) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			return
		}
		q.h[i], q.h[parent] = q.h[parent], q.h[i]
		i = parent
	}
}

func (q *Queue[T]) down(i int) {
	n := len(q.h)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && q.less(l, smallest) {
			smallest = l
		}
		if r < n && q.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		q.h[i], q.h[smallest] = q.h[smallest], q.h[i]
		i = smallest
	}
}
