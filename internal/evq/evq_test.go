package evq

import (
	"math/rand"
	"sort"
	"testing"
)

// TestOrderAndTies: due events pop in (cycle, insertion) order.
func TestOrderAndTies(t *testing.T) {
	var q Queue[int]
	q.Push(10, 0)
	q.Push(5, 1)
	q.Push(10, 2)
	q.Push(5, 3)
	q.Push(7, 4)
	want := []int{1, 3, 4, 0, 2}
	for _, w := range want {
		v, ok := q.PopDue(100)
		if !ok || v != w {
			t.Fatalf("PopDue = %d,%v; want %d", v, ok, w)
		}
	}
	if _, ok := q.PopDue(100); ok {
		t.Fatal("queue not drained")
	}
}

// TestNothingDue: PopDue must not surface future events.
func TestNothingDue(t *testing.T) {
	var q Queue[string]
	q.Push(42, "later")
	if _, ok := q.PopDue(41); ok {
		t.Fatal("future event popped early")
	}
	if q.Min() != 42 {
		t.Fatalf("Min = %d, want 42", q.Min())
	}
	if v, ok := q.PopDue(42); !ok || v != "later" {
		t.Fatalf("event not due at its own cycle: %q %v", v, ok)
	}
	if q.Min() != ^uint64(0) {
		t.Fatalf("empty Min = %d, want ^0", q.Min())
	}
}

// TestPropertyMonotoneNoSkip drives randomized interleaved pushes and a
// cycle-by-cycle drain, checking three properties against a brute-force
// reference: popped wake cycles are monotone non-decreasing, no registered
// event is ever skipped or delivered before its cycle, and the pop order
// matches a per-cycle linear scan over the same schedule.
func TestPropertyMonotoneNoSkip(t *testing.T) {
	type ev struct {
		at  uint64
		id  int
		seq int // insertion order, the reference tie-break
	}
	for trial := 0; trial < 50; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		var q Queue[int]
		var ref []ev
		var got []ev
		nextID := 0
		cycle := uint64(0)
		lastPopped := uint64(0)
		for step := 0; step < 400; step++ {
			// Random pushes at or after the current cycle (the simulator
			// never schedules into the past).
			for n := rng.Intn(3); n > 0; n-- {
				at := cycle + uint64(rng.Intn(20))
				q.Push(at, nextID)
				ref = append(ref, ev{at: at, id: nextID, seq: len(ref)})
				nextID++
			}
			// Advance by a random stride and drain everything due, the way
			// a wake-gated owner would after a jump.
			cycle += uint64(1 + rng.Intn(5))
			if m := q.Min(); m != ^uint64(0) && m < lastPopped {
				t.Fatalf("trial %d: Min %d regressed below last pop %d", trial, m, lastPopped)
			}
			for {
				id, ok := q.PopDue(cycle)
				if !ok {
					break
				}
				got = append(got, ev{id: id})
			}
			// Nothing due may remain after a drain.
			if m := q.Min(); m <= cycle && q.Len() > 0 {
				t.Fatalf("trial %d: due event left behind at cycle %d (min %d)", trial, cycle, m)
			}
		}
		// Drain the tail.
		for {
			id, ok := q.PopDue(^uint64(0))
			if !ok {
				break
			}
			got = append(got, ev{id: id})
		}
		if len(got) != len(ref) {
			t.Fatalf("trial %d: popped %d of %d events", trial, len(got), len(ref))
		}
		// Brute-force reference order: stable sort by wake cycle.
		sort.SliceStable(ref, func(i, j int) bool { return ref[i].at < ref[j].at })
		for i := range ref {
			if got[i].id != ref[i].id {
				t.Fatalf("trial %d: pop %d = event %d, reference says %d",
					trial, i, got[i].id, ref[i].id)
			}
		}
	}
}

// TestPopDueRespectsCycleBoundary: every popped event's wake cycle is <=
// the drain cycle and >= any previously popped cycle within the drain.
func TestPopDueRespectsCycleBoundary(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var q Queue[uint64]
	for i := 0; i < 1000; i++ {
		at := uint64(rng.Intn(500))
		q.Push(at, at)
	}
	var last uint64
	for cycle := uint64(0); cycle < 600; cycle += uint64(1 + rng.Intn(13)) {
		for {
			at, ok := q.PopDue(cycle)
			if !ok {
				break
			}
			if at > cycle {
				t.Fatalf("event for cycle %d popped at cycle %d", at, cycle)
			}
			if at < last {
				t.Fatalf("wake cycles not monotone: %d after %d", at, last)
			}
			last = at
		}
	}
	if q.Len() != 0 {
		t.Fatalf("%d events skipped", q.Len())
	}
}
