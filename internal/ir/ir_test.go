package ir

import (
	"testing"

	"hfstream/internal/isa"
	"hfstream/internal/mem"
)

func TestValidateRequiresExit(t *testing.T) {
	l := NewLoop("t")
	l.Counter(0, 1)
	if err := l.Validate(); err == nil {
		t.Error("loop without exit accepted")
	}
}

func TestValidateGood(t *testing.T) {
	l := NewLoop("t")
	idx := l.Counter(-1, 1)
	cond := l.Op(isa.CmpLT, V(idx), C(9))
	l.SetExit(cond)
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateTopologicalOrder(t *testing.T) {
	l := NewLoop("t")
	a := l.Op(isa.AddI, C(0), C(1))
	b := l.Op(isa.AddI, V(a), C(1))
	// Force a forward non-carried reference: a reads b.
	a.Args[0] = V(b)
	l.SetExit(b)
	if err := l.Validate(); err == nil {
		t.Error("forward non-carried reference accepted")
	}
}

func TestValidateMemNeedsRegion(t *testing.T) {
	l := NewLoop("t")
	n := l.Op(isa.Ld, C(0x1000))
	l.SetExit(n)
	if err := l.Validate(); err == nil {
		t.Error("load without region accepted")
	}
}

func TestValidateForeignNode(t *testing.T) {
	l1 := NewLoop("a")
	x := l1.Counter(0, 1)
	l2 := NewLoop("b")
	y := l2.Op(isa.AddI, V(x), C(1))
	l2.SetExit(y)
	if err := l2.Validate(); err == nil {
		t.Error("foreign node reference accepted")
	}
}

func TestCarriedForwardReferenceAllowed(t *testing.T) {
	// Mutually recursive pair via a carried edge (the adpcm step-size
	// pattern) must validate.
	l := NewLoop("t")
	sum := l.Op(isa.Add, C(1), C(0)) // patched below
	mask := l.Op(isa.AndI, V(sum), C(255))
	sum.Args[1] = Carried(mask, 16)
	cond := l.Op(isa.CmpNE, V(mask), C(0))
	l.SetExit(cond)
	if err := l.Validate(); err != nil {
		t.Fatalf("carried forward reference rejected: %v", err)
	}
}

func TestAccShape(t *testing.T) {
	l := NewLoop("t")
	x := l.Counter(0, 1)
	acc := l.Acc(isa.Add, V(x), 5)
	if len(acc.Args) != 2 || !acc.Args[1].Carried || acc.Args[1].Node != acc {
		t.Error("Acc should carry itself")
	}
	if acc.Args[1].Init != 5 {
		t.Error("Acc init lost")
	}
}

func TestWeights(t *testing.T) {
	l := NewLoop("t")
	r := mem.Region{Name: "r", Base: 0, Size: 128}
	ld := l.Load(&r, C(0), 0)
	st := l.Store(&r, C(0), 0, V(ld))
	mul := l.Op(isa.Mul, V(ld), V(ld))
	if ld.Weight() <= st.Weight() {
		t.Error("loads should outweigh stores")
	}
	if mul.Weight() != isa.Mul.Latency() {
		t.Error("ALU weight should equal latency")
	}
	if l.TotalWeight() != ld.Weight()+st.Weight()+mul.Weight() {
		t.Error("TotalWeight mismatch")
	}
}

func TestPin(t *testing.T) {
	l := NewLoop("t")
	n := l.Counter(0, 1)
	l.Pin(n, 1)
	if l.Pins[n.ID] != 1 {
		t.Error("pin not recorded")
	}
}
